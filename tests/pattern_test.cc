#include <gtest/gtest.h>

#include "core/pattern.h"

namespace ngd {
namespace {

TEST(PatternTest, AddNodesAndFindVar) {
  Pattern p;
  int x = p.AddNode("x", 1);
  int y = p.AddNode("y", 2);
  EXPECT_EQ(p.NumNodes(), 2u);
  EXPECT_EQ(p.FindVar("x"), x);
  EXPECT_EQ(p.FindVar("y"), y);
  EXPECT_EQ(p.FindVar("z"), -1);
}

TEST(PatternTest, AddEdgeValidation) {
  Pattern p;
  int x = p.AddNode("x", 1);
  int y = p.AddNode("y", 2);
  EXPECT_TRUE(p.AddEdge(x, y, 5).ok());
  EXPECT_EQ(p.AddEdge(x, y, 5).code(), StatusCode::kAlreadyExists);
  EXPECT_TRUE(p.AddEdge(y, x, 5).ok());  // reverse is distinct
  EXPECT_TRUE(p.AddEdge(x, y, 6).ok());  // other label is distinct
  EXPECT_EQ(p.AddEdge(x, 7, 5).code(), StatusCode::kInvalidArgument);
}

TEST(PatternTest, AdjacencyHasDirections) {
  Pattern p;
  int x = p.AddNode("x", 1);
  int y = p.AddNode("y", 2);
  ASSERT_TRUE(p.AddEdge(x, y, 5).ok());
  const auto& adj_x = p.Adjacency(x);
  ASSERT_EQ(adj_x.size(), 1u);
  EXPECT_EQ(adj_x[0].other, y);
  EXPECT_TRUE(adj_x[0].out);
  const auto& adj_y = p.Adjacency(y);
  ASSERT_EQ(adj_y.size(), 1u);
  EXPECT_FALSE(adj_y[0].out);
}

TEST(PatternTest, ConnectivitySingleNode) {
  Pattern p;
  p.AddNode("x", 1);
  EXPECT_TRUE(p.IsConnected());
  EXPECT_EQ(p.Diameter(), 0);
}

TEST(PatternTest, ConnectivityDisconnected) {
  Pattern p;
  p.AddNode("x", 1);
  p.AddNode("y", 2);
  EXPECT_FALSE(p.IsConnected());
  EXPECT_EQ(p.Diameter(), -1);
}

TEST(PatternTest, DiameterPath) {
  // x -> y -> z: diameter 2 (undirected).
  Pattern p;
  int x = p.AddNode("x", 1);
  int y = p.AddNode("y", 1);
  int z = p.AddNode("z", 1);
  ASSERT_TRUE(p.AddEdge(x, y, 5).ok());
  ASSERT_TRUE(p.AddEdge(y, z, 5).ok());
  EXPECT_TRUE(p.IsConnected());
  EXPECT_EQ(p.Diameter(), 2);
}

TEST(PatternTest, DiameterStar) {
  // Center with 3 leaves: diameter 2.
  Pattern p;
  int c = p.AddNode("c", 1);
  for (int i = 0; i < 3; ++i) {
    int leaf = p.AddNode("l" + std::to_string(i), 2);
    ASSERT_TRUE(p.AddEdge(c, leaf, 5).ok());
  }
  EXPECT_EQ(p.Diameter(), 2);
}

TEST(PatternTest, DiameterCycleIgnoresDirection) {
  // Directed triangle: undirected diameter 1.
  Pattern p;
  int a = p.AddNode("a", 1);
  int b = p.AddNode("b", 1);
  int c = p.AddNode("c", 1);
  ASSERT_TRUE(p.AddEdge(a, b, 5).ok());
  ASSERT_TRUE(p.AddEdge(b, c, 5).ok());
  ASSERT_TRUE(p.AddEdge(c, a, 5).ok());
  EXPECT_EQ(p.Diameter(), 1);
}

TEST(PatternTest, SetNodeLabelRefinesWildcard) {
  Pattern p;
  int x = p.AddNode("x", kWildcardLabel);
  EXPECT_EQ(p.node(x).label, kWildcardLabel);
  p.SetNodeLabel(x, 7);
  EXPECT_EQ(p.node(x).label, 7u);
}

TEST(PatternTest, ToStringListsNodesAndEdges) {
  SchemaPtr schema = Schema::Create();
  LabelId person = schema->InternLabel("person");
  LabelId knows = schema->InternLabel("knows");
  Pattern p;
  int x = p.AddNode("x", person);
  int y = p.AddNode("y", kWildcardLabel);
  ASSERT_TRUE(p.AddEdge(x, y, knows).ok());
  std::string s = p.ToString(schema->labels());
  EXPECT_NE(s.find("(x:person)"), std::string::npos);
  EXPECT_NE(s.find("(y:_)"), std::string::npos);
  EXPECT_NE(s.find("-[knows]->"), std::string::npos);
}

TEST(PatternTest, SelfLoopPatternEdge) {
  Pattern p;
  int x = p.AddNode("x", 1);
  ASSERT_TRUE(p.AddEdge(x, x, 5).ok());
  EXPECT_TRUE(p.IsConnected());
  EXPECT_EQ(p.Diameter(), 0);
  // Self-loop contributes two adjacency entries on the same node.
  EXPECT_EQ(p.Adjacency(x).size(), 2u);
}

}  // namespace
}  // namespace ngd
