#include <gtest/gtest.h>

#include "graph/error_injector.h"
#include "graph/generators.h"

namespace ngd {
namespace {

TEST(GeneratorsTest, ProducesRequestedSizes) {
  GraphGenConfig cfg = SyntheticConfig(2000, 5000, /*seed=*/3);
  SchemaPtr schema = Schema::Create();
  auto g = GenerateGraph(cfg, schema);
  EXPECT_EQ(g->NumNodes(), 2000u);
  // Edge dedup may fall slightly short of the target; never exceeds.
  EXPECT_LE(g->NumEdges(GraphView::kNew), 5000u);
  EXPECT_GE(g->NumEdges(GraphView::kNew), 4500u);
}

TEST(GeneratorsTest, DeterministicForSeed) {
  SchemaPtr s1 = Schema::Create(), s2 = Schema::Create();
  auto g1 = GenerateGraph(SyntheticConfig(500, 1200, 9), s1);
  auto g2 = GenerateGraph(SyntheticConfig(500, 1200, 9), s2);
  ASSERT_EQ(g1->NumNodes(), g2->NumNodes());
  ASSERT_EQ(g1->NumEdges(GraphView::kNew), g2->NumEdges(GraphView::kNew));
  for (NodeId v = 0; v < g1->NumNodes(); ++v) {
    EXPECT_EQ(g1->NodeLabel(v), g2->NodeLabel(v));
    EXPECT_EQ(g1->Attrs(v), g2->Attrs(v));
  }
}

TEST(GeneratorsTest, DifferentSeedsDiffer) {
  SchemaPtr s1 = Schema::Create(), s2 = Schema::Create();
  auto g1 = GenerateGraph(SyntheticConfig(500, 1200, 9), s1);
  auto g2 = GenerateGraph(SyntheticConfig(500, 1200, 10), s2);
  size_t differing = 0;
  for (NodeId v = 0; v < 500; ++v) {
    if (g1->NodeLabel(v) != g2->NodeLabel(v)) ++differing;
  }
  EXPECT_GT(differing, 0u);
}

TEST(GeneratorsTest, AttributeValuesWithinRange) {
  GraphGenConfig cfg = SyntheticConfig(300, 600, 4);
  SchemaPtr schema = Schema::Create();
  auto g = GenerateGraph(cfg, schema);
  for (NodeId v = 0; v < g->NumNodes(); ++v) {
    for (const auto& [attr, value] : g->Attrs(v)) {
      ASSERT_TRUE(value.is_int());
      EXPECT_GE(value.AsInt(), cfg.value_min);
      EXPECT_LE(value.AsInt(), cfg.value_max);
    }
  }
}

TEST(GeneratorsTest, SameLabelNodesShareAttributeNames) {
  GraphGenConfig cfg = SyntheticConfig(400, 800, 5);
  SchemaPtr schema = Schema::Create();
  auto g = GenerateGraph(cfg, schema);
  // Pick two nodes with the same label; their attr id sets must agree
  // (typed entities carry the same attribute names).
  for (NodeId a = 0; a < g->NumNodes(); ++a) {
    for (NodeId b = a + 1; b < std::min<NodeId>(g->NumNodes(), a + 50); ++b) {
      if (g->NodeLabel(a) != g->NodeLabel(b)) continue;
      ASSERT_EQ(g->Attrs(a).size(), g->Attrs(b).size());
      for (size_t k = 0; k < g->Attrs(a).size(); ++k) {
        EXPECT_EQ(g->Attrs(a)[k].first, g->Attrs(b)[k].first);
      }
      return;  // one pair suffices
    }
  }
}

TEST(GeneratorsTest, PresetsMatchPaperAlphabets) {
  GraphGenConfig db = DBpediaLikeConfig(0.001);
  EXPECT_EQ(db.num_node_labels, 200u);
  EXPECT_EQ(db.num_edge_labels, 160u);
  EXPECT_EQ(db.num_nodes, 28000u);
  GraphGenConfig yago = Yago2LikeConfig(0.001);
  EXPECT_EQ(yago.num_node_labels, 13u);
  EXPECT_EQ(yago.num_edge_labels, 36u);
  GraphGenConfig pokec = PokecLikeConfig(0.001);
  EXPECT_EQ(pokec.num_node_labels, 269u);
  EXPECT_EQ(pokec.num_edge_labels, 11u);
  GraphGenConfig synth = SyntheticConfig(10, 20);
  EXPECT_EQ(synth.num_node_labels, 500u);
  EXPECT_EQ(synth.value_max - synth.value_min + 1, 2000);
}

TEST(GeneratorsTest, SocialPresetIsSkewedHeavier) {
  // Pokec-like graphs should show a heavier-tailed degree distribution
  // than yago-like at equal size.
  SchemaPtr s1 = Schema::Create(), s2 = Schema::Create();
  GraphGenConfig social = PokecLikeConfig(0.0005, 3);
  GraphGenConfig kb = Yago2LikeConfig(0.0005, 3);
  kb.num_nodes = social.num_nodes;
  kb.num_edges = social.num_edges;
  auto gs = GenerateGraph(social, s1);
  auto gk = GenerateGraph(kb, s2);
  size_t max_social = 0, max_kb = 0;
  for (NodeId v = 0; v < gs->NumNodes(); ++v) {
    max_social = std::max(max_social, gs->AdjSize(v));
  }
  for (NodeId v = 0; v < gk->NumNodes(); ++v) {
    max_kb = std::max(max_kb, gk->AdjSize(v));
  }
  EXPECT_GT(max_social, max_kb);
}

// ---- Error injector ----------------------------------------------------------

TEST(ErrorInjectorTest, PlantsRequestedCountsAndErrors) {
  SchemaPtr schema = Schema::Create();
  Graph g(schema);
  ErrorInjector inj(&g, 17);
  MotifStats s = inj.PlantPopulation(200, 0.25);
  EXPECT_EQ(s.instances, 200u);
  EXPECT_GT(s.errors, 20u);
  EXPECT_LT(s.errors, 90u);
}

TEST(ErrorInjectorTest, ZeroErrorRatePlantsCleanData) {
  SchemaPtr schema = Schema::Create();
  Graph g(schema);
  ErrorInjector inj(&g, 17);
  EXPECT_EQ(inj.PlantLifespan(50, 0.0).errors, 0u);
  EXPECT_EQ(inj.PlantOlympicNations(50, 0.0).errors, 0u);
  EXPECT_EQ(inj.PlantF1Wins(50, 0.0).errors, 0u);
}

TEST(ErrorInjectorTest, PopulationMotifInternallyConsistentWhenClean) {
  SchemaPtr schema = Schema::Create();
  Graph g(schema);
  ErrorInjector inj(&g, 23);
  inj.PlantPopulation(30, 0.0);
  AttrId val = *schema->attrs().Find("val");
  LabelId fem = *schema->labels().Find("femalePopulation");
  LabelId mal = *schema->labels().Find("malePopulation");
  LabelId tot = *schema->labels().Find("populationTotal");
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    int64_t f = -1, m = -1, t = -1;
    for (const auto& e : g.OutEdges(v)) {
      int64_t x = g.GetAttr(e.other, val)->AsInt();
      if (e.label == fem) f = x;
      if (e.label == mal) m = x;
      if (e.label == tot) t = x;
    }
    if (f >= 0 && m >= 0 && t >= 0) {
      EXPECT_EQ(f + m, t);
    }
  }
}

TEST(ErrorInjectorTest, AllMotifsProduceNodesAndEdges) {
  SchemaPtr schema = Schema::Create();
  Graph g(schema);
  ErrorInjector inj(&g, 5);
  inj.PlantLifespan(10, 0.5);
  inj.PlantPopulation(10, 0.5);
  inj.PlantPopulationRank(10, 0.5);
  inj.PlantFakeAccounts(10, 0.5);
  inj.PlantLivingPeople(10, 0.5);
  inj.PlantOlympicNations(10, 0.5);
  inj.PlantF1Wins(10, 0.5);
  inj.PlantConstantBinding(10, 0.5);
  EXPECT_GT(g.NumNodes(), 200u);
  EXPECT_GT(g.NumEdges(GraphView::kNew), 200u);
}

}  // namespace
}  // namespace ngd
