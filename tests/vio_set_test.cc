// The arena-backed VioSet must be observationally identical to the
// unordered_set<Violation> layout it replaced. Three layers of evidence:
//
//   1. unit semantics — every public operation (Add / AppendUnchecked /
//      Contains / Merge / MergeDisjointUnchecked / Remove / Sorted /
//      ApplyDelta / RemapNgdIndices) fuzzed against a reference model
//      built on std::unordered_set<Violation, ViolationHash>, the exact
//      previous implementation;
//   2. hash quality — a bucket-distribution regression for ViolationHash
//      on the structured tuple families (ngd_index 0, sequential and
//      strided node ids) where the previous ad-hoc mix degenerated;
//   3. engine differential — a randomized sweep running all four
//      detection engines and requiring byte-identical Sorted() output
//      and ApplyDelta round-trips, so the unchecked emission paths
//      (VioEmitter, AppendUnchecked, MergeDisjointUnchecked) are held to
//      exact set semantics end to end.
//
// The sweep is sized by NGD_VIO_CASES (sanitizer CI shrinks it); a
// failure reproduces from the printed seed via NGD_VIO_SEED.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <unordered_set>
#include <vector>

#include "detect/dect.h"
#include "detect/inc_dect.h"
#include "detect/violation.h"
#include "graph/updates.h"
#include "parallel/pdect.h"
#include "parallel/pinc_dect.h"
#include "test_util.h"

namespace ngd {
namespace {

size_t CaseCount() {
  const char* env = std::getenv("NGD_VIO_CASES");
  if (env != nullptr) {
    const long n = std::strtol(env, nullptr, 10);
    if (n > 0) return static_cast<size_t>(n);
  }
  return 150;
}

Violation V(int f, std::vector<NodeId> nodes) {
  return Violation{f, std::move(nodes)};
}

/// The previous VioSet storage, kept as the reference model.
using LegacyModel = std::unordered_set<Violation, ViolationHash>;

std::vector<Violation> SortedOf(const LegacyModel& m) {
  std::vector<Violation> out(m.begin(), m.end());
  std::sort(out.begin(), out.end(),
            [](const Violation& a, const Violation& b) {
              if (a.ngd_index != b.ngd_index) return a.ngd_index < b.ngd_index;
              return a.nodes < b.nodes;
            });
  return out;
}

void ExpectSameSorted(const std::vector<Violation>& want,
                      const std::vector<Violation>& got,
                      const std::string& what) {
  ASSERT_EQ(want.size(), got.size()) << what;
  for (size_t i = 0; i < want.size(); ++i) {
    ASSERT_TRUE(want[i] == got[i])
        << what << ": Sorted()[" << i << "] differs (rule " << want[i].ngd_index
        << " vs " << got[i].ngd_index << ")";
  }
}

// ---- 2. hash quality -----------------------------------------------------

/// Buckets `tuples` into a power-of-two table at load factor 1/2 (the
/// VioSet table shape) and checks the occupancy doesn't collapse: the
/// previous mix sent strided single-node families with ngd_index == 0
/// into O(stride) distinct buckets.
void ExpectWellSpread(const std::vector<Violation>& tuples,
                      const char* family) {
  ViolationHash hash;
  size_t table = 16;
  while (table < tuples.size() * 2) table <<= 1;
  const size_t mask = table - 1;
  std::vector<uint32_t> load(table, 0);
  for (const Violation& v : tuples) ++load[hash(v) & mask];
  size_t distinct = 0;
  uint32_t max_load = 0;
  for (uint32_t l : load) {
    distinct += l > 0 ? 1 : 0;
    max_load = std::max(max_load, l);
  }
  // An ideal hash at load 1/2 fills ~39% of buckets (1 - e^-0.5) with a
  // max load well under 10; the degenerate mix left >90% of buckets
  // empty on these families. The thresholds sit between the two.
  EXPECT_GT(distinct, tuples.size() / 4) << family;
  EXPECT_LT(max_load, 16u) << family;
}

TEST(ViolationHashTest, SpreadsStructuredTupleFamilies) {
  constexpr size_t kN = 4096;
  std::vector<Violation> sequential, strided, pairs, hub;
  for (size_t i = 0; i < kN; ++i) {
    const NodeId n = static_cast<NodeId>(i);
    sequential.push_back(V(0, {n}));
    strided.push_back(V(0, {static_cast<NodeId>(i * 64)}));
    pairs.push_back(V(0, {n, n + 1}));
    // Hub-sweep shape: one shared hub, spokes sequential — the
    // violation-heavy benchmark's dominant family.
    hub.push_back(V(0, {7, n, 7, n + 1}));
  }
  ExpectWellSpread(sequential, "sequential single-node, ngd 0");
  ExpectWellSpread(strided, "strided single-node, ngd 0");
  ExpectWellSpread(pairs, "sequential pairs, ngd 0");
  ExpectWellSpread(hub, "hub 4-tuples, ngd 0");
}

// ---- 1. unit semantics vs the legacy model -------------------------------

TEST(VioSetTest, FuzzMatchesLegacyModel) {
  Rng rng(20260808);
  for (int round = 0; round < 40; ++round) {
    VioSet set;
    LegacyModel model;
    // Small universe so collisions, repeats and removals are common;
    // tuple lengths straddle the inline/spill boundary (4).
    auto random_vio = [&] {
      const int f = static_cast<int>(rng.UniformInt(0, 3));
      const size_t len = static_cast<size_t>(rng.UniformInt(1, 6));
      std::vector<NodeId> nodes(len);
      for (NodeId& n : nodes) {
        n = static_cast<NodeId>(rng.UniformInt(0, 11));
      }
      return V(f, std::move(nodes));
    };
    const int ops = 300;
    for (int op = 0; op < ops; ++op) {
      const int kind = static_cast<int>(rng.UniformInt(0, 9));
      if (kind < 5) {  // checked insert
        const Violation v = random_vio();
        EXPECT_EQ(model.insert(v).second, set.Add(v));
      } else if (kind < 7) {  // unchecked append of a verified-new tuple
        const Violation v = random_vio();
        if (model.insert(v).second) {
          set.AppendUnchecked(v.ngd_index, v.nodes.data(), v.nodes.size());
        }
      } else if (kind == 7) {  // membership probe
        const Violation v = random_vio();
        EXPECT_EQ(model.count(v) > 0, set.Contains(v));
      } else if (kind == 8) {  // remove a random batch
        VioSet victim;
        for (int k = 0; k < 5; ++k) victim.Add(random_vio());
        for (const Violation& v : victim.items()) model.erase(v);
        set.Remove(victim);
      } else {  // merge a random batch (checked union)
        VioSet other;
        for (int k = 0; k < 8; ++k) {
          const Violation v = random_vio();
          other.Add(v);
        }
        for (const Violation& v : other.items()) model.insert(v);
        set.Merge(std::move(other));
      }
      EXPECT_EQ(model.size(), set.size()) << "round " << round << " op " << op;
    }
    ExpectSameSorted(SortedOf(model), set.Sorted(), "fuzz round end");
    // items() agrees with Sorted() on the same live records.
    size_t seen = 0;
    for (const Violation& v : set.items()) {
      EXPECT_TRUE(model.count(v) > 0);
      ++seen;
    }
    EXPECT_EQ(model.size(), seen);
  }
}

TEST(VioSetTest, UncheckedDuplicatesAreRepairedByIndexedOps) {
  VioSet set;
  // Contract breach on purpose: the same tuple appended unchecked twice
  // may be visible until the next indexed operation repairs it.
  const Violation v = V(2, {5, 6, 7, 8, 9});  // spilled (len > 4)
  set.AppendUnchecked(v.ngd_index, v.nodes.data(), v.nodes.size());
  set.AppendUnchecked(v.ngd_index, v.nodes.data(), v.nodes.size());
  set.AppendUnchecked(0, v.nodes.data(), 2);
  EXPECT_TRUE(set.Contains(v));  // indexed op triggers the batched repair
  EXPECT_EQ(2u, set.size());
  EXPECT_EQ(2u, set.Sorted().size());
  EXPECT_FALSE(set.Add(v));  // still a member, exactly once
  EXPECT_EQ(2u, set.size());
}

TEST(VioSetTest, RemoveThenReAddRevives) {
  VioSet set;
  const Violation v = V(1, {3, 4});
  EXPECT_TRUE(set.Add(v));
  VioSet victim;
  victim.Add(v);
  set.Remove(victim);
  EXPECT_FALSE(set.Contains(v));
  EXPECT_EQ(0u, set.size());
  EXPECT_TRUE(set.Add(v));
  EXPECT_TRUE(set.Contains(v));
  EXPECT_EQ(1u, set.size());
  EXPECT_EQ(1u, set.Sorted().size());
}

TEST(VioSetTest, RemoveThenUncheckedReAppendSurvivesIndexCatchUp) {
  // Regression: the remove leaves a dead-but-tabled record equal to the
  // re-appended tuple; the index catch-up must treat the new live record
  // as superseding it, not repair it away as a duplicate.
  VioSet set;
  const Violation v = V(1, {3, 4});
  ASSERT_TRUE(set.Add(v));
  VioSet victim;
  victim.Add(v);
  set.Remove(victim);
  ASSERT_EQ(0u, set.size());
  set.AppendUnchecked(v.ngd_index, v.nodes.data(), v.nodes.size());
  EXPECT_EQ(1u, set.size());
  EXPECT_TRUE(set.Contains(v));  // indexed op triggers the catch-up
  EXPECT_EQ(1u, set.size());
  EXPECT_FALSE(set.Add(v));
  EXPECT_EQ(1u, set.size());
  EXPECT_EQ(1u, set.Sorted().size());
  // And the same removal works a second time around.
  set.Remove(victim);
  EXPECT_FALSE(set.Contains(v));
  EXPECT_EQ(0u, set.size());
}

TEST(VioSetTest, IteratorsFromDifferentSetsNeverCompareEqual) {
  // Regression: operator== compared only the record index, so begin() of
  // two distinct sets (both index 0) compared equal — a range-for over
  // one set could terminate against another's end().
  VioSet a, b;
  a.Add(V(0, {1}));
  b.Add(V(0, {1}));
  EXPECT_FALSE(a.items().begin() == b.items().begin());
  EXPECT_TRUE(a.items().begin() != b.items().begin());
  EXPECT_TRUE(a.items().begin() == a.items().begin());
  EXPECT_FALSE(a.items().begin() == a.items().end());
}

TEST(VioSetTest, MergeDisjointRebasesSpilledTuples) {
  VioSet a, b;
  LegacyModel model;
  // Both sides hold spilled tuples so the arena offset rebase is load-
  // bearing, plus inline ones for the union shape.
  for (NodeId n = 0; n < 20; ++n) {
    const Violation longer = V(0, {n, n, n, n, n, n});
    const Violation shorter = V(1, {n});
    (n % 2 == 0 ? a : b).Add(longer);
    (n % 2 == 0 ? a : b).Add(shorter);
    model.insert(longer);
    model.insert(shorter);
  }
  a.MergeDisjointUnchecked(std::move(b));
  EXPECT_EQ(model.size(), a.size());
  ExpectSameSorted(SortedOf(model), a.Sorted(), "disjoint merge");
  for (const Violation& v : SortedOf(model)) EXPECT_TRUE(a.Contains(v));
}

TEST(VioSetTest, MergeIntoEmptyMovesWholesale) {
  VioSet a, b;
  b.Add(V(0, {1, 2, 3, 4, 5}));
  b.Add(V(3, {9}));
  a.MergeDisjointUnchecked(std::move(b));
  EXPECT_EQ(2u, a.size());
  VioSet c, d;
  d.Add(V(1, {4}));
  c.Merge(std::move(d));
  EXPECT_EQ(1u, c.size());
  EXPECT_TRUE(c.Contains(V(1, {4})));
}

TEST(VioSetTest, RemapNgdIndicesPreservesTuples) {
  VioSet set;
  set.Add(V(0, {1}));
  set.Add(V(1, {2, 3, 4, 5, 6}));
  set.Add(V(2, {7, 8}));
  set.RemapNgdIndices({2, 5, 9});
  const std::vector<Violation> got = set.Sorted();
  ASSERT_EQ(3u, got.size());
  EXPECT_TRUE(got[0] == V(2, {1}));
  EXPECT_TRUE(got[1] == V(5, {2, 3, 4, 5, 6}));
  EXPECT_TRUE(got[2] == V(9, {7, 8}));
  EXPECT_TRUE(set.Contains(V(5, {2, 3, 4, 5, 6})));  // index rebuilt lazily
  EXPECT_FALSE(set.Contains(V(1, {2, 3, 4, 5, 6})));
}

TEST(VioSetTest, EmitterFlushesBlocksAndHonorsLimit) {
  for (const size_t tuple_len : {3u, 6u}) {  // inline and spilled
    VioSet batched, checked;
    {
      VioEmitter em(&batched, 4, tuple_len);
      Binding b(tuple_len);
      for (NodeId n = 0; n < 1000; ++n) {  // crosses several flush blocks
        for (size_t k = 0; k < tuple_len; ++k) {
          b[k] = n + static_cast<NodeId>(k);
        }
        EXPECT_TRUE(em.Emit(b));
        checked.Add(V(4, b));
      }
      EXPECT_EQ(1000u, em.emitted());
    }  // destructor flushes the tail block
    EXPECT_EQ(checked.size(), batched.size());
    ExpectSameSorted(checked.Sorted(), batched.Sorted(), "emitter");
  }
  // The limit mirrors the old max_violations_per_ngd callback counting:
  // the Nth emission is recorded and returns false (stop enumerating).
  VioSet out;
  VioEmitter em(&out, 0, 1, /*limit=*/3);
  Binding b(1);
  b[0] = 1;
  EXPECT_TRUE(em.Emit(b));
  b[0] = 2;
  EXPECT_TRUE(em.Emit(b));
  b[0] = 3;
  EXPECT_FALSE(em.Emit(b));
  em.Flush();
  EXPECT_EQ(3u, out.size());
}

TEST(VioSetTest, ApplyDeltaMatchesLegacySemantics) {
  Rng rng(77);
  for (int round = 0; round < 20; ++round) {
    VioSet base;
    DeltaVio delta;
    LegacyModel model;
    for (int k = 0; k < 40; ++k) {
      std::vector<NodeId> nodes(static_cast<size_t>(rng.UniformInt(1, 5)));
      for (NodeId& n : nodes) n = static_cast<NodeId>(rng.UniformInt(0, 9));
      const Violation v = V(static_cast<int>(rng.UniformInt(0, 2)),
                            std::move(nodes));
      const int where = static_cast<int>(rng.UniformInt(0, 3));
      if (where == 0) {
        base.Add(v);
      } else if (where == 1) {
        delta.added.Add(v);
      } else if (where == 2) {
        delta.removed.Add(v);
      } else {  // in base AND removed — the must-disappear shape
        base.Add(v);
        delta.removed.Add(v);
      }
    }
    for (const Violation& v : base.items()) {
      if (!delta.removed.Contains(v)) model.insert(v);
    }
    for (const Violation& v : delta.added.items()) model.insert(v);
    ExpectSameSorted(SortedOf(model), ApplyDelta(base, delta).Sorted(),
                     "ApplyDelta");
  }
}

// ---- 3. engine differential ----------------------------------------------

/// One randomized case: all four engines over one (graph, Σ, ΔG)
/// workload, every result compared by byte-identical Sorted() against
/// the kNever sequential oracle (checked-insert path) and the ΔVio
/// round-trip checked through ApplyDelta.
void RunEngineCase(uint64_t seed) {
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 11);
  testing_util::RandomWorkload w =
      testing_util::MakeRandomWorkload(seed, &rng);
  std::ostringstream repro_os;
  repro_os << "repro: NGD_VIO_SEED=" << seed << " (nodes=" << w.nodes
           << " edges=" << w.edges << ")";
  const std::string repro = repro_os.str();
  if (w.sigma.empty()) return;

  // Oracle: sequential live engine. Its emission runs through VioEmitter
  // too, so cross-check it against a checked-insert rebuild first: any
  // duplicate leaked by the unchecked block appends would shrink it.
  DectOptions live;
  live.snapshot_mode = SnapshotMode::kNever;
  const VioSet before = Dect(*w.graph, w.sigma, live);
  VioSet rebuilt;
  for (const Violation& v : before.items()) {
    EXPECT_TRUE(rebuilt.Add(v)) << repro << ": duplicate in Dect output";
  }
  EXPECT_EQ(rebuilt.size(), before.size()) << repro;
  const std::vector<Violation> want = before.Sorted();

  {
    DectOptions o;
    o.snapshot_mode = SnapshotMode::kAlways;
    ExpectSameSorted(want, Dect(*w.graph, w.sigma, o).Sorted(),
                     repro + " snapshot Dect");
  }
  {
    PDectOptions o;
    o.num_processors = static_cast<int>(rng.UniformInt(2, 4));
    ExpectSameSorted(want, PDect(*w.graph, w.sigma, o).vio.Sorted(),
                     repro + " PDect");
  }

  if (!ValidateForIncremental(w.sigma).ok()) return;
  UpdateGenOptions up;
  up.fraction = 0.2;
  up.insert_fraction = 0.5;
  up.seed = seed + 3;
  UpdateBatch batch = GenerateUpdateBatch(w.graph.get(), up);
  ASSERT_TRUE(ApplyUpdateBatch(w.graph.get(), &batch).ok()) << repro;
  const VioSet after = Dect(*w.graph, w.sigma, live);

  IncDectOptions io;
  io.snapshot_mode = SnapshotMode::kNever;
  auto inc = IncDect(*w.graph, w.sigma, batch, io);
  ASSERT_TRUE(inc.ok()) << repro;
  ExpectSameSorted(after.Sorted(), ApplyDelta(before, *inc).Sorted(),
                   repro + " IncDect ApplyDelta");

  PIncDectOptions po;
  po.num_processors = static_cast<int>(rng.UniformInt(2, 4));
  auto pinc = PIncDect(*w.graph, w.sigma, batch, po);
  ASSERT_TRUE(pinc.ok()) << repro;
  ExpectSameSorted(inc->added.Sorted(), pinc->delta.added.Sorted(),
                   repro + " PIncDect ΔVio+");
  ExpectSameSorted(inc->removed.Sorted(), pinc->delta.removed.Sorted(),
                   repro + " PIncDect ΔVio-");
  ExpectSameSorted(after.Sorted(), ApplyDelta(before, pinc->delta).Sorted(),
                   repro + " PIncDect ApplyDelta");
}

TEST(VioSetEngineDifferentialTest, AllEnginesByteIdenticalSorted) {
  const char* pinned = std::getenv("NGD_VIO_SEED");
  if (pinned != nullptr) {
    RunEngineCase(static_cast<uint64_t>(std::strtoull(pinned, nullptr, 10)));
    return;
  }
  const size_t cases = CaseCount();
  for (uint64_t seed = 1; seed <= cases; ++seed) {
    RunEngineCase(seed);
    if (HasFailure()) {
      FAIL() << "first failing case: NGD_VIO_SEED=" << seed;
    }
  }
}

}  // namespace
}  // namespace ngd
