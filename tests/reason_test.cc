// The paper's Example 5 and §4 analyses, end to end.

#include <gtest/gtest.h>

#include "core/parser.h"
#include "reason/implication.h"
#include "reason/satisfiability.h"
#include "test_util.h"

namespace ngd {
namespace {

using testing_util::MustParse;

// φ5 = Q[x](∅ -> x.A = 7 ∧ x.B = 7), Q a single wildcard node.
constexpr const char* kPhi5 = R"(
ngd phi5 { match (x:_) then x.A = 7, x.B = 7 }
)";
// φ6 = Q[x](∅ -> x.A + x.B = 11), same wildcard pattern.
constexpr const char* kPhi6 = R"(
ngd phi6 { match (x:_) then x.A + x.B = 11 }
)";
// φ6' with pattern labelled 'a'.
constexpr const char* kPhi6a = R"(
ngd phi6a { match (x:a) then x.A + x.B = 11 }
)";

TEST(SatisfiabilityTest, SingleRuleIsSatisfiable) {
  SchemaPtr schema = Schema::Create();
  NgdSet sigma = MustParse(kPhi5, schema);
  auto report = CheckSatisfiability(sigma, schema);
  EXPECT_EQ(report.satisfiable, Decision::kYes);
  EXPECT_NE(report.detail.find("=7"), std::string::npos);
}

TEST(SatisfiabilityTest, Example5ConflictIsUnsatisfiable) {
  // φ5 and φ6 on the same wildcard pattern: A = B = 7 but A + B = 11.
  SchemaPtr schema = Schema::Create();
  NgdSet sigma = MustParse(std::string(kPhi5) + kPhi6, schema);
  ASSERT_EQ(sigma.size(), 2u);
  auto report = CheckSatisfiability(sigma, schema);
  EXPECT_EQ(report.satisfiable, Decision::kNo);
}

TEST(SatisfiabilityTest, Example5LabelledVariantIsSatisfiable) {
  // Replacing φ6's pattern with label 'a' makes Σ0 satisfiable: a model
  // whose only node carries a different label (the paper's node labelled
  // 'b'; here a fresh wildcard stand-in) satisfies both.
  SchemaPtr schema = Schema::Create();
  NgdSet sigma = MustParse(std::string(kPhi5) + kPhi6a, schema);
  auto report = CheckSatisfiability(sigma, schema);
  EXPECT_EQ(report.satisfiable, Decision::kYes);
}

TEST(SatisfiabilityTest, Example5LabelledVariantNotStronglySatisfiable) {
  // But strong satisfiability fails: once the 'a' pattern must also find
  // a match, the wildcard pattern of φ5 hits that node too.
  SchemaPtr schema = Schema::Create();
  NgdSet sigma = MustParse(std::string(kPhi5) + kPhi6a, schema);
  auto report = CheckStrongSatisfiability(sigma, schema);
  EXPECT_EQ(report.satisfiable, Decision::kNo);
}

TEST(SatisfiabilityTest, Example5ComparisonTrioUnsatisfiable) {
  // φ7 = x.A <= 3 -> x.B > 6; φ8 = x.A > 3 -> x.B > 6;
  // φ9 = ∅ -> x.B < 6 ∧ x.A != 0. Together unsatisfiable.
  SchemaPtr schema = Schema::Create();
  NgdSet sigma = MustParse(R"(
    ngd phi7 { match (x:_) where x.A <= 3 then x.B > 6 }
    ngd phi8 { match (x:_) where x.A > 3 then x.B > 6 }
    ngd phi9 { match (x:_) then x.B < 6, x.A != 0 }
  )",
                           schema);
  ASSERT_EQ(sigma.size(), 3u);
  auto report = CheckSatisfiability(sigma, schema);
  EXPECT_EQ(report.satisfiable, Decision::kNo);
}

TEST(SatisfiabilityTest, AttributeAbsenceSatisfiesImplications) {
  // x.A <= 3 -> x.B > 6 alone IS satisfiable: a node without attribute A
  // vacuously satisfies the implication (condition (a)).
  SchemaPtr schema = Schema::Create();
  NgdSet sigma = MustParse(
      "ngd phi7 { match (x:_) where x.A <= 3 then x.B > 6 }", schema);
  auto report = CheckSatisfiability(sigma, schema);
  EXPECT_EQ(report.satisfiable, Decision::kYes);
}

TEST(SatisfiabilityTest, StringConstantRules) {
  SchemaPtr schema = Schema::Create();
  // Satisfiable: category may be something else.
  NgdSet ok = MustParse(
      R"(ngd s1 { match (x:person) where x.birth < 1800
                 then x.cat != "living people" })",
      schema);
  EXPECT_EQ(CheckSatisfiability(ok, schema).satisfiable, Decision::kYes);
  // Unsatisfiable pair: cat must equal two different constants.
  NgdSet bad = MustParse(
      R"(ngd s2 { match (x:person) then x.cat = "alpha" }
         ngd s3 { match (x:person) then x.cat = "beta" })",
      schema);
  EXPECT_EQ(CheckSatisfiability(bad, schema).satisfiable, Decision::kNo);
}

TEST(SatisfiabilityTest, AbsRulesAreCaseSplit) {
  SchemaPtr schema = Schema::Create();
  // |x.A| = -1 is unsatisfiable.
  NgdSet bad =
      MustParse("ngd a1 { match (x:t) then abs(x.A) = 0 - 1 }", schema);
  EXPECT_EQ(CheckSatisfiability(bad, schema).satisfiable, Decision::kNo);
  // |x.A| = 5 with x.A < 0 forces x.A = -5: satisfiable.
  NgdSet ok = MustParse(
      "ngd a2 { match (x:t) then abs(x.A) = 5, x.A < 0 }", schema);
  EXPECT_EQ(CheckSatisfiability(ok, schema).satisfiable, Decision::kYes);
}

TEST(SatisfiabilityTest, PaperRulesAreStronglySatisfiable) {
  // The four running-example rules do not conflict with one another.
  SchemaPtr schema = Schema::Create();
  NgdSet sigma = MustParse(std::string(testing_util::kPhi1) +
                               testing_util::kPhi2 + testing_util::kPhi4,
                           schema);
  auto report = CheckStrongSatisfiability(sigma, schema);
  EXPECT_EQ(report.satisfiable, Decision::kYes) << report.detail;
}

TEST(SatisfiabilityTest, RejectsNonLinearWithUnknown) {
  SchemaPtr schema = Schema::Create();
  AttrId a = schema->InternAttr("A");
  Pattern p;
  int x = p.AddNode("x", schema->InternLabel("t"));
  NgdSet sigma;
  sigma.Add(Ngd("quad", std::move(p), {},
                {Literal(Expr::Mul(Expr::Var(x, a), Expr::Var(x, a)),
                         CmpOp::kEq, Expr::IntConst(4))}));
  auto report = CheckSatisfiability(sigma, schema);
  EXPECT_EQ(report.satisfiable, Decision::kUnknown);
  EXPECT_NE(report.detail.find("Theorem 3"), std::string::npos);
}

// ---- Implication -------------------------------------------------------------

TEST(ImplicationTest, ArithmeticConsequenceIsImplied) {
  // {φ5} |= Q[x](∅ -> x.A + x.B = 14).
  SchemaPtr schema = Schema::Create();
  NgdSet sigma = MustParse(kPhi5, schema);
  auto phi = ParseNgd("ngd c { match (x:_) then x.A + x.B = 14 }", schema);
  ASSERT_TRUE(phi.ok());
  auto report = CheckImplication(sigma, *phi, schema);
  EXPECT_EQ(report.implied, Decision::kYes) << report.detail;
}

TEST(ImplicationTest, NonConsequenceHasWitness) {
  // {φ5} does not imply x.A + x.B = 15.
  SchemaPtr schema = Schema::Create();
  NgdSet sigma = MustParse(kPhi5, schema);
  auto phi = ParseNgd("ngd c { match (x:_) then x.A + x.B = 15 }", schema);
  ASSERT_TRUE(phi.ok());
  auto report = CheckImplication(sigma, *phi, schema);
  EXPECT_EQ(report.implied, Decision::kNo);
  EXPECT_NE(report.detail.find("counterexample"), std::string::npos);
}

TEST(ImplicationTest, ComparisonWeakeningIsImplied) {
  // {x.A = 7} |= x.A >= 5.
  SchemaPtr schema = Schema::Create();
  NgdSet sigma = MustParse("ngd s { match (x:t) then x.A = 7 }", schema);
  auto phi = ParseNgd("ngd w { match (x:t) then x.A >= 5 }", schema);
  ASSERT_TRUE(phi.ok());
  EXPECT_EQ(CheckImplication(sigma, *phi, schema).implied, Decision::kYes);
}

TEST(ImplicationTest, DifferentLabelIsNotImplied) {
  // Σ constrains label 't' nodes; φ talks about label 'u' nodes.
  SchemaPtr schema = Schema::Create();
  NgdSet sigma = MustParse("ngd s { match (x:t) then x.A = 7 }", schema);
  auto phi = ParseNgd("ngd u { match (x:u) then x.A = 7 }", schema);
  ASSERT_TRUE(phi.ok());
  EXPECT_EQ(CheckImplication(sigma, *phi, schema).implied, Decision::kNo);
}

TEST(ImplicationTest, EmptySigmaImpliesNothingFalsifiable) {
  SchemaPtr schema = Schema::Create();
  auto phi = ParseNgd("ngd c { match (x:t) then x.A = 1 }", schema);
  ASSERT_TRUE(phi.ok());
  EXPECT_EQ(CheckImplication(NgdSet{}, *phi, schema).implied, Decision::kNo);
}

TEST(ImplicationTest, SelfImplication) {
  SchemaPtr schema = Schema::Create();
  NgdSet sigma = MustParse("ngd s { match (x:t) then x.A <= 3 }", schema);
  auto phi = ParseNgd("ngd c { match (x:t) then x.A <= 3 }", schema);
  ASSERT_TRUE(phi.ok());
  EXPECT_EQ(CheckImplication(sigma, *phi, schema).implied, Decision::kYes);
}

TEST(ImplicationTest, PreconditionedRuleImplication) {
  // {x.A > 10 -> x.B = 1} |= {x.A > 20 -> x.B = 1} (stronger premise).
  SchemaPtr schema = Schema::Create();
  NgdSet sigma = MustParse(
      "ngd s { match (x:t) where x.A > 10 then x.B = 1 }", schema);
  auto phi = ParseNgd(
      "ngd c { match (x:t) where x.A > 20 then x.B = 1 }", schema);
  ASSERT_TRUE(phi.ok());
  EXPECT_EQ(CheckImplication(sigma, *phi, schema).implied, Decision::kYes);
  // And not vice versa.
  NgdSet sigma2 = MustParse(
      "ngd s2 { match (x:t) where x.A > 20 then x.B = 1 }", schema);
  auto phi2 = ParseNgd(
      "ngd c2 { match (x:t) where x.A > 10 then x.B = 1 }", schema);
  ASSERT_TRUE(phi2.ok());
  EXPECT_EQ(CheckImplication(sigma2, *phi2, schema).implied, Decision::kNo);
}

// ---- Canonical model construction ---------------------------------------------

TEST(CanonicalModelTest, WildcardsGetFreshLabels) {
  SchemaPtr schema = Schema::Create();
  Pattern p;
  p.AddNode("x", kWildcardLabel);
  p.AddNode("y", schema->InternLabel("city"));
  ASSERT_TRUE(p.AddEdge(0, 1, schema->InternLabel("e")).ok());
  std::vector<NodeId> offsets;
  auto model = BuildCanonicalModel({&p}, schema, &offsets);
  ASSERT_EQ(model->NumNodes(), 2u);
  EXPECT_EQ(offsets, (std::vector<NodeId>{0}));
  EXPECT_NE(model->NodeLabel(0), kWildcardLabel);
  EXPECT_NE(model->NodeLabelName(0), "city");
  EXPECT_EQ(model->NodeLabelName(1), "city");
  EXPECT_TRUE(model->HasEdge(0, 1, *schema->labels().Find("e"),
                             GraphView::kNew));
}

TEST(CanonicalModelTest, FreshLabelsAreUniqueAcrossPatterns) {
  SchemaPtr schema = Schema::Create();
  Pattern p1, p2;
  p1.AddNode("x", kWildcardLabel);
  p2.AddNode("x", kWildcardLabel);
  auto model = BuildCanonicalModel({&p1, &p2}, schema, nullptr);
  ASSERT_EQ(model->NumNodes(), 2u);
  EXPECT_NE(model->NodeLabel(0), model->NodeLabel(1));
}

}  // namespace
}  // namespace ngd
