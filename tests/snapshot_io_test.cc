// Binary snapshot persistence correctness (graph/snapshot_io.{h,cc}).
//
// Coverage:
//   1. Round-trip: serialize -> deserialize reproduces the CSR content
//      exactly (public-API spot checks + fingerprint), including string
//      attributes and randomized generator graphs.
//   2. Robustness: bad magic, version/endian mismatch, truncation at
//      every prefix length, payload and table corruption, schema
//      conflicts, and on-disk damage through the file path (truncation
//      targeted at section boundaries, randomized single-bit flips) —
//      all fail with kCorruption, never crash.
//   3. Equivalence into detection results: the same graph ingested as
//      TSV text and as a binary snapshot produces identical violations
//      from all four engines (Dect/PDect fed the loaded snapshot
//      directly, IncDect/PIncDect using it as the DeltaView base), with
//      the batch violation serialization compared byte-for-byte.
//
// NGD_IO_CASES resizes the randomized sweeps (sanitizer CI runs a
// reduced one); `ctest -L io` runs this suite with graph_io_test.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "detect/dect.h"
#include "detect/inc_dect.h"
#include "discovery/ngd_generator.h"
#include "graph/generators.h"
#include "graph/graph_io.h"
#include "graph/snapshot.h"
#include "graph/snapshot_io.h"
#include "graph/updates.h"
#include "parallel/pdect.h"
#include "parallel/pinc_dect.h"

namespace ngd {
namespace {

size_t CaseCount() {
  const char* env = std::getenv("NGD_IO_CASES");
  if (env != nullptr) {
    const long n = std::strtol(env, nullptr, 10);
    if (n > 0) return static_cast<size_t>(n);
  }
  return 25;
}

std::string MustSerialize(const GraphSnapshot& snap) {
  auto bytes = SerializeSnapshot(snap);
  EXPECT_TRUE(bytes.ok()) << bytes.status().ToString();
  return std::move(bytes).value();
}

/// A small graph with labels, int and (hostile) string attrs, and
/// multi-label adjacency.
std::unique_ptr<Graph> MakeSmallGraph(SchemaPtr schema) {
  auto g = std::make_unique<Graph>(schema);
  NodeId a = g->AddNode("person");
  NodeId b = g->AddNode("person");
  NodeId c = g->AddNode("city");
  g->SetAttr(a, "age", Value(int64_t{30}));
  g->SetAttr(a, "name", Value("al\t\"ice\"\n"));
  g->SetAttr(b, "age", Value(int64_t{-7}));
  g->SetAttr(c, "name", Value(""));
  EXPECT_TRUE(g->AddEdge(a, b, "knows").ok());
  EXPECT_TRUE(g->AddEdge(b, a, "knows").ok());
  EXPECT_TRUE(g->AddEdge(a, c, "lives_in").ok());
  EXPECT_TRUE(g->AddEdge(b, c, "lives_in").ok());
  return g;
}

/// Deterministic byte form of a violation set (rule names + node ids).
std::string VioBytes(const VioSet& vio, const NgdSet& sigma) {
  std::ostringstream os;
  for (const Violation& v : vio.Sorted()) {
    os << sigma[v.ngd_index].name() << ":";
    for (NodeId n : v.nodes) os << " " << n;
    os << "\n";
  }
  return os.str();
}

// ---- Round-trip -----------------------------------------------------------

TEST(SnapshotIoTest, RoundTripSmallGraph) {
  SchemaPtr schema = Schema::Create();
  auto g = MakeSmallGraph(schema);
  GraphSnapshot snap(*g, GraphView::kNew);
  const std::string bytes = MustSerialize(snap);

  SchemaPtr schema2 = Schema::Create();
  auto loaded = DeserializeSnapshot(bytes, schema2);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const GraphSnapshot& snap2 = **loaded;

  EXPECT_EQ(snap2.view(), GraphView::kNew);
  ASSERT_EQ(snap2.NumNodes(), snap.NumNodes());
  EXPECT_EQ(snap2.NumEdges(), snap.NumEdges());
  // Same intern order: ids transfer directly.
  EXPECT_EQ(schema2->labels().size(), schema->labels().size());
  EXPECT_EQ(schema2->attrs().size(), schema->attrs().size());
  const LabelId knows = *schema2->labels().Find("knows");
  const AttrId name = *schema2->attrs().Find("name");
  EXPECT_TRUE(snap2.HasEdge(0, 1, knows));
  EXPECT_TRUE(snap2.HasEdge(1, 0, knows));
  EXPECT_FALSE(snap2.HasEdge(0, 2, knows));
  ASSERT_NE(snap2.GetAttr(0, name), nullptr);
  EXPECT_EQ(snap2.GetAttr(0, name)->AsString(), "al\t\"ice\"\n");
  ASSERT_NE(snap2.GetAttr(2, name), nullptr);
  EXPECT_EQ(snap2.GetAttr(2, name)->AsString(), "");
  EXPECT_EQ(snap2.NodesWithLabel(*schema2->labels().Find("person")).size(),
            2u);
  EXPECT_EQ(SnapshotFingerprint(snap2), SnapshotFingerprint(snap));
}

TEST(SnapshotIoTest, RoundTripRandomGraphs) {
  const size_t cases = CaseCount();
  for (size_t c = 0; c < cases; ++c) {
    GraphGenConfig config;
    config.num_nodes = 30 + 17 * c;
    config.num_edges = 60 + 23 * c;
    config.num_node_labels = 1 + c % 9;
    config.num_edge_labels = 1 + c % 7;
    config.seed = 4000 + c;
    SchemaPtr schema = Schema::Create();
    auto g = GenerateGraph(config, schema);
    for (GraphView view : {GraphView::kNew, GraphView::kOld}) {
      GraphSnapshot snap(*g, view);
      auto loaded = DeserializeSnapshot(MustSerialize(snap), Schema::Create());
      ASSERT_TRUE(loaded.ok()) << "case " << c << ": "
                               << loaded.status().ToString();
      EXPECT_EQ((*loaded)->view(), view);
      EXPECT_EQ(SnapshotFingerprint(**loaded), SnapshotFingerprint(snap))
          << "case " << c;
    }
  }
}

TEST(SnapshotIoTest, MaterializeRebuildsTheSameSnapshot) {
  SchemaPtr schema = Schema::Create();
  auto g = MakeSmallGraph(schema);
  GraphSnapshot snap(*g, GraphView::kNew);
  auto back = MaterializeGraph(snap);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ((*back)->NumNodes(), g->NumNodes());
  EXPECT_EQ((*back)->NumEdges(GraphView::kNew), g->NumEdges(GraphView::kNew));
  GraphSnapshot again(**back, GraphView::kNew);
  EXPECT_EQ(SnapshotFingerprint(again), SnapshotFingerprint(snap));
}

TEST(SnapshotIoTest, FileRoundTripAndSniffing) {
  SchemaPtr schema = Schema::Create();
  auto g = MakeSmallGraph(schema);
  GraphSnapshot snap(*g, GraphView::kNew);
  const std::string path = ::testing::TempDir() + "/snapshot_io_test.ngds";
  ASSERT_TRUE(SaveSnapshotFile(snap, path).ok());
  EXPECT_TRUE(SniffSnapshotFile(path));
  auto loaded = LoadSnapshotFile(path, Schema::Create());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(SnapshotFingerprint(**loaded), SnapshotFingerprint(snap));
  std::remove(path.c_str());
  EXPECT_FALSE(SniffSnapshotFile(path));  // gone
}

// ---- Robustness -----------------------------------------------------------

class SnapshotIoCorruptionTest : public ::testing::Test {
 protected:
  SnapshotIoCorruptionTest() {
    SchemaPtr schema = Schema::Create();
    auto g = MakeSmallGraph(schema);
    GraphSnapshot snap(*g, GraphView::kNew);
    bytes_ = MustSerialize(snap);
  }

  Status LoadStatus(const std::string& bytes) {
    auto r = DeserializeSnapshot(bytes, Schema::Create());
    return r.ok() ? Status::OK() : r.status();
  }

  std::string bytes_;
};

TEST_F(SnapshotIoCorruptionTest, BadMagicIsRejected) {
  std::string bad = bytes_;
  bad[0] = 'X';
  Status s = LoadStatus(bad);
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
  EXPECT_NE(s.message().find("magic"), std::string::npos) << s.ToString();
}

TEST_F(SnapshotIoCorruptionTest, VersionMismatchIsRejected) {
  std::string bad = bytes_;
  bad[8] = static_cast<char>(kSnapshotFormatVersion + 1);  // version field
  Status s = LoadStatus(bad);
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
  EXPECT_NE(s.message().find("version"), std::string::npos) << s.ToString();
}

TEST_F(SnapshotIoCorruptionTest, EndianMismatchIsRejected) {
  std::string bad = bytes_;
  bad[12] = ~bad[12];  // endian marker field
  Status s = LoadStatus(bad);
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
  EXPECT_NE(s.message().find("byte order"), std::string::npos) << s.ToString();
}

TEST_F(SnapshotIoCorruptionTest, EveryTruncationIsRejected) {
  // Every proper prefix must fail cleanly (header cut, table cut, payload
  // cut) — this is the "truncated file" acceptance case, exhaustively.
  for (size_t len = 0; len < bytes_.size(); ++len) {
    Status s = LoadStatus(bytes_.substr(0, len));
    ASSERT_FALSE(s.ok()) << "prefix of " << len << " bytes parsed";
    ASSERT_EQ(s.code(), StatusCode::kCorruption) << s.ToString();
  }
}

TEST_F(SnapshotIoCorruptionTest, PayloadBitflipsNeverCorruptSilently) {
  // Flipping any single payload byte must either trip a checksum (or a
  // structural validation) or — when it lands in the unchecksummed
  // alignment padding between sections — leave the loaded content
  // bit-identical. A flip that parses AND changes the content would be
  // silent corruption.
  SchemaPtr ref_schema = Schema::Create();
  auto ref = DeserializeSnapshot(bytes_, ref_schema);
  ASSERT_TRUE(ref.ok());
  const uint64_t want = SnapshotFingerprint(**ref);
  const size_t header_and_table = 40 + 19 * 32;
  for (size_t pos = header_and_table; pos < bytes_.size();
       pos += 7) {  // stride keeps the sweep fast; offsets cover all sections
    std::string bad = bytes_;
    bad[pos] = static_cast<char>(bad[pos] ^ 0x2f);
    auto r = DeserializeSnapshot(bad, Schema::Create());
    if (r.ok()) {
      EXPECT_EQ(SnapshotFingerprint(**r), want)
          << "bit flip at byte " << pos << " parsed with changed content";
    }
  }
}

TEST_F(SnapshotIoCorruptionTest, TableCorruptionIsRejected) {
  for (size_t pos = 40; pos < 40 + 19 * 32; pos += 5) {
    std::string bad = bytes_;
    bad[pos] = static_cast<char>(bad[pos] ^ 0x55);
    Status s = LoadStatus(bad);
    EXPECT_FALSE(s.ok()) << "table flip at byte " << pos << " parsed";
  }
}

TEST_F(SnapshotIoCorruptionTest, ConflictingSchemaIsRejected) {
  SchemaPtr schema = Schema::Create();
  schema->InternLabel("occupied");  // id 1 taken; file expects "person"
  auto r = DeserializeSnapshot(bytes_, schema);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  EXPECT_NE(r.status().message().find("schema"), std::string::npos)
      << r.status().ToString();
}

TEST_F(SnapshotIoCorruptionTest, MatchingSchemaIsAccepted) {
  // Pre-interning the exact same names in the same order is fine.
  SchemaPtr schema = Schema::Create();
  schema->InternLabel("person");
  auto r = DeserializeSnapshot(bytes_, schema);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
}

// ---- Hostile but checksum-consistent files --------------------------------
//
// Bitflip tests never get past the checksums; an attacker (or a buggy
// writer) recomputes them. These tests forge structurally hostile files
// with VALID checksums and require a clean kCorruption — no OOB reads,
// no uncaught allocation failure, no side effects on the schema.

class SnapshotIoHostileTest : public SnapshotIoCorruptionTest {
 protected:
  static constexpr size_t kHeaderBytes = 40;
  static constexpr size_t kEntryBytes = 32;
  static constexpr size_t kNumSections = 19;

  static uint64_t Fnv1a(const void* data, size_t n) {
    uint64_t h = 14695981039346656037ULL;
    const auto* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= 1099511628211ULL;
    }
    return h;
  }

  struct Entry {
    uint32_t id;
    uint32_t elem_bytes;
    uint64_t count;
    uint64_t offset;
    uint64_t checksum;
  };

  Entry ReadEntry(const std::string& bytes, size_t slot) {
    Entry e;
    std::memcpy(&e, bytes.data() + kHeaderBytes + slot * kEntryBytes,
                sizeof(e));
    return e;
  }

  void WriteEntry(std::string* bytes, size_t slot, const Entry& e) {
    std::memcpy(&(*bytes)[kHeaderBytes + slot * kEntryBytes], &e, sizeof(e));
  }

  size_t SlotOf(const std::string& bytes, uint32_t id) {
    for (size_t s = 0; s < kNumSections; ++s) {
      if (ReadEntry(bytes, s).id == id) return s;
    }
    ADD_FAILURE() << "section " << id << " not found";
    return 0;
  }

  /// Recomputes one section's payload checksum and the table checksum,
  /// so forged structural corruption survives the integrity pass.
  void RefreshChecksums(std::string* bytes, size_t slot) {
    Entry e = ReadEntry(*bytes, slot);
    e.checksum = Fnv1a(bytes->data() + e.offset, e.elem_bytes * e.count);
    WriteEntry(bytes, slot, e);
    const uint64_t table = Fnv1a(bytes->data() + kHeaderBytes,
                                 kNumSections * kEntryBytes);
    std::memcpy(&(*bytes)[32], &table, sizeof(table));
  }
};

TEST_F(SnapshotIoHostileTest, SpikedGroupOffsetIsRejectedWithoutOobRead) {
  // group_off[1] spiked past groups.size() with a valid checksum: the
  // validator must bound-check before dereferencing groups[].
  std::string bad = bytes_;
  const size_t slot = SlotOf(bad, /*kOutGroupOff=*/4);
  const Entry e = ReadEntry(bad, slot);
  ASSERT_GE(e.count, 2u);
  const uint32_t spiked = 1000;
  std::memcpy(&bad[e.offset + 4], &spiked, sizeof(spiked));
  RefreshChecksums(&bad, slot);
  Status s = LoadStatus(bad);
  ASSERT_EQ(s.code(), StatusCode::kCorruption) << s.ToString();
  EXPECT_NE(s.message().find("invariant"), std::string::npos) << s.ToString();
}

TEST_F(SnapshotIoHostileTest, OverflowingSectionCountIsRejected) {
  // elem_bytes * count wraps uint64 to a tiny length; the bounds check
  // must divide instead of multiply, and never reach resize(count).
  std::string bad = bytes_;
  const size_t slot = SlotOf(bad, /*kOutNbr=*/2);
  Entry e = ReadEntry(bad, slot);
  e.count = uint64_t{1} << 62;  // 4 * 2^62 == 0 (mod 2^64)
  e.checksum = Fnv1a(bad.data() + e.offset, 0);
  WriteEntry(&bad, slot, e);
  RefreshChecksums(&bad, slot);
  Status s = LoadStatus(bad);
  ASSERT_EQ(s.code(), StatusCode::kCorruption) << s.ToString();
  EXPECT_NE(s.message().find("past end"), std::string::npos) << s.ToString();
}

TEST_F(SnapshotIoHostileTest, NonTransposeInAdjacencyIsRejected) {
  // Rewrite one in-neighbor to another valid node id, keeping the
  // in-direction internally well-formed (sorted, in range) and the
  // checksums valid: the load must still reject, because in_ no longer
  // transposes out_ — the half of the structure the per-direction
  // checks cannot see.
  std::string bad = bytes_;
  const size_t slot = SlotOf(bad, /*kInNbr=*/5);
  const Entry e = ReadEntry(bad, slot);
  ASSERT_GE(e.count, 1u);
  // MakeSmallGraph node 2's lives_in in-range is [0, 1]; 1 -> 2 keeps it
  // strictly ascending but claims a 2 -> 2 edge out_ does not have.
  uint32_t last;
  std::memcpy(&last, &bad[e.offset + (e.count - 1) * 4], sizeof(last));
  const uint32_t forged = 2;
  ASSERT_NE(last, forged);
  std::memcpy(&bad[e.offset + (e.count - 1) * 4], &forged, sizeof(forged));
  RefreshChecksums(&bad, slot);
  Status s = LoadStatus(bad);
  ASSERT_EQ(s.code(), StatusCode::kCorruption) << s.ToString();
  EXPECT_NE(s.message().find("transpose"), std::string::npos) << s.ToString();
}

TEST_F(SnapshotIoHostileTest, RejectedLoadLeavesSchemaUntouched) {
  // A file whose dictionaries are fine but whose CSR arrays fail a later
  // invariant must not intern anything into the caller's schema.
  std::string bad = bytes_;
  const size_t slot = SlotOf(bad, /*kOutGroupOff=*/4);
  const Entry e = ReadEntry(bad, slot);
  const uint32_t spiked = 1000;
  std::memcpy(&bad[e.offset + 4], &spiked, sizeof(spiked));
  RefreshChecksums(&bad, slot);
  SchemaPtr schema = Schema::Create();
  auto r = DeserializeSnapshot(bad, schema);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(schema->labels().size(), 1u);  // just the wildcard
  EXPECT_EQ(schema->attrs().size(), 0u);
}

// ---- On-disk damage (the file path, not the byte-image path) --------------
//
// The in-memory sweeps above cover every prefix and a strided multi-bit
// byte flip through DeserializeSnapshot. These drive the same policy
// through SaveSnapshotFile/LoadSnapshotFile: truncation targeted at each
// section boundary plus a few bytes either side (where a partial write
// or a lost tail block actually lands), and randomized single-bit flips
// (bit rot flips one bit, not a 0x2f pattern). Both must yield a clean
// kCorruption or a bit-identical load — never a crash, never silently
// changed content.

class SnapshotIoFileDamageTest : public SnapshotIoHostileTest {
 protected:
  static std::string TestPath(const std::string& name) {
    const std::string p = ::testing::TempDir() + "/" + name;
    std::remove(p.c_str());
    return p;
  }

  static void WriteBytes(const std::string& path, const std::string& bytes) {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(os.good()) << "cannot write " << path;
  }

  Status LoadFileStatus(const std::string& path) {
    auto r = LoadSnapshotFile(path, Schema::Create());
    return r.ok() ? Status::OK() : r.status();
  }
};

TEST_F(SnapshotIoFileDamageTest, TruncationAtSectionBoundariesIsRejected) {
  std::set<size_t> cuts = {0, kHeaderBytes,
                           kHeaderBytes + kNumSections * kEntryBytes};
  for (size_t s = 0; s < kNumSections; ++s) {
    const Entry e = ReadEntry(bytes_, s);
    cuts.insert(static_cast<size_t>(e.offset));
    cuts.insert(
        static_cast<size_t>(e.offset + uint64_t{e.elem_bytes} * e.count));
  }
  const std::string path = TestPath("snapshot_io_cut.ngds");
  for (size_t cut : cuts) {
    for (int delta = -3; delta <= 3; ++delta) {
      if (delta < 0 && cut < static_cast<size_t>(-delta)) continue;
      const size_t len = cut + static_cast<size_t>(delta);
      if (len >= bytes_.size()) continue;  // not a truncation
      WriteBytes(path, bytes_.substr(0, len));
      Status s = LoadFileStatus(path);
      ASSERT_FALSE(s.ok()) << "file cut to " << len << " bytes parsed";
      ASSERT_EQ(s.code(), StatusCode::kCorruption)
          << "cut to " << len << ": " << s.ToString();
    }
  }
}

TEST_F(SnapshotIoFileDamageTest, RandomizedSingleBitFlipsNeverCorruptSilently) {
  auto ref = DeserializeSnapshot(bytes_, Schema::Create());
  ASSERT_TRUE(ref.ok());
  const uint64_t want = SnapshotFingerprint(**ref);
  const std::string path = TestPath("snapshot_io_bitflip.ngds");
  uint64_t state = 0x9e3779b97f4a7c15ULL;  // fixed seed: reproducible sweep
  const size_t flips = CaseCount() * 8;
  for (size_t i = 0; i < flips; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    const size_t pos = static_cast<size_t>((state >> 17) % bytes_.size());
    const unsigned bit = static_cast<unsigned>((state >> 11) & 7);
    std::string bad = bytes_;
    bad[pos] = static_cast<char>(bad[pos] ^ (1u << bit));
    WriteBytes(path, bad);
    auto r = LoadSnapshotFile(path, Schema::Create());
    if (r.ok()) {
      EXPECT_EQ(SnapshotFingerprint(**r), want)
          << "bit " << bit << " of byte " << pos
          << " flipped, file parsed with changed content";
    }
  }
}

// ---- Text-vs-binary equivalence into detection results --------------------

TEST(SnapshotIoEquivalenceTest, TextAndBinaryIngestAgreeOnAllFourEngines) {
  const size_t cases = std::max<size_t>(1, CaseCount() / 5);
  for (size_t c = 0; c < cases; ++c) {
    // Canonical source: a generated graph serialized to TSV once, then
    // re-parsed — so every ingestion path below interns in file order
    // and the same Σ (generated against the parsed graph) applies to all.
    GraphGenConfig config;
    config.num_nodes = 120 + 40 * c;
    config.num_edges = 300 + 90 * c;
    config.num_node_labels = 6;
    config.num_edge_labels = 5;
    config.seed = 5100 + c;
    std::string text;
    {
      SchemaPtr gen_schema = Schema::Create();
      auto g0 = GenerateGraph(config, gen_schema);
      std::ostringstream os;
      ASSERT_TRUE(WriteGraphText(*g0, &os).ok());
      text = os.str();
    }

    // Path T (text): parse the TSV.
    SchemaPtr schema_t = Schema::Create();
    auto gt = ParseGraphText(text, schema_t);
    ASSERT_TRUE(gt.ok()) << gt.status().ToString();

    NgdGenOptions gen;
    gen.count = 6;
    gen.max_diameter = 2;
    gen.seed = 600 + c;
    gen.violation_rate = 0.5;
    const NgdSet sigma = GenerateNgdSet(**gt, gen);
    if (sigma.empty()) continue;

    // Path B (binary): snapshot the parsed graph, round-trip it through
    // the codec, materialize the live graph from the loaded snapshot.
    GraphSnapshot snap(**gt, GraphView::kNew);
    SchemaPtr schema_b = Schema::Create();
    auto loaded = DeserializeSnapshot(MustSerialize(snap), schema_b);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    auto gb = MaterializeGraph(**loaded);
    ASSERT_TRUE(gb.ok()) << gb.status().ToString();

    // Batch: Dect and PDect, text path vs loaded-snapshot path; the
    // violation byte serialization must be identical.
    DectOptions dopts_t;
    const VioSet vio_t = Dect(**gt, sigma, dopts_t);
    DectOptions dopts_b;
    dopts_b.snapshot = loaded->get();
    const VioSet vio_b = Dect(**gb, sigma, dopts_b);
    EXPECT_EQ(VioBytes(vio_t, sigma), VioBytes(vio_b, sigma)) << "case " << c;

    PDectOptions popts_t;
    popts_t.num_processors = 3;
    const VioSet pvio_t = PDect(**gt, sigma, popts_t).vio;
    PDectOptions popts_b = popts_t;
    popts_b.snapshot = loaded->get();
    const VioSet pvio_b = PDect(**gb, sigma, popts_b).vio;
    EXPECT_EQ(VioBytes(pvio_t, sigma), VioBytes(pvio_b, sigma))
        << "case " << c;

    // Incremental: the loaded snapshot serves as the DeltaView base for
    // the binary path; the text path runs the live oracle.
    UpdateGenOptions up;
    up.fraction = 0.15;
    up.new_node_prob = 0.0;
    up.seed = 700 + c;
    UpdateBatch batch_t = GenerateUpdateBatch(gt->get(), up);
    ASSERT_TRUE(ApplyUpdateBatch(gt->get(), &batch_t).ok());
    UpdateBatch batch_b = batch_t;
    ASSERT_TRUE(ApplyUpdateBatch(gb->get(), &batch_b).ok());
    ASSERT_EQ(batch_t.size(), batch_b.size()) << "case " << c;

    IncDectOptions iopts_t;
    iopts_t.snapshot_mode = SnapshotMode::kNever;
    auto delta_t = IncDect(**gt, sigma, batch_t, iopts_t);
    ASSERT_TRUE(delta_t.ok()) << delta_t.status().ToString();
    IncDectOptions iopts_b;
    iopts_b.base_snapshot = loaded->get();
    auto delta_b = IncDect(**gb, sigma, batch_b, iopts_b);
    ASSERT_TRUE(delta_b.ok()) << delta_b.status().ToString();
    EXPECT_EQ(VioBytes(delta_t->added, sigma), VioBytes(delta_b->added, sigma))
        << "case " << c;
    EXPECT_EQ(VioBytes(delta_t->removed, sigma),
              VioBytes(delta_b->removed, sigma))
        << "case " << c;

    PIncDectOptions piopts_b;
    piopts_b.num_processors = 3;
    piopts_b.base_snapshot = loaded->get();
    auto pdelta_b = PIncDect(**gb, sigma, batch_b, piopts_b);
    ASSERT_TRUE(pdelta_b.ok()) << pdelta_b.status().ToString();
    EXPECT_EQ(VioBytes(delta_t->added, sigma),
              VioBytes(pdelta_b->delta.added, sigma))
        << "case " << c;
    EXPECT_EQ(VioBytes(delta_t->removed, sigma),
              VioBytes(pdelta_b->delta.removed, sigma))
        << "case " << c;
  }
}

}  // namespace
}  // namespace ngd
