#include <gtest/gtest.h>

#include "core/parser.h"
#include "detect/dect.h"
#include "detect/inc_dect.h"
#include "discovery/ngd_generator.h"
#include "graph/generators.h"
#include "parallel/pinc_dect.h"

namespace ngd {
namespace {

struct Workload {
  SchemaPtr schema;
  std::unique_ptr<Graph> graph;
  NgdSet sigma;
  UpdateBatch batch;
  DeltaVio expected;
};

Workload MakeWorkload(uint64_t seed, size_t nodes = 500, size_t edges = 1300,
                      double fraction = 0.12) {
  Workload w;
  w.schema = Schema::Create();
  w.graph = GenerateGraph(SyntheticConfig(nodes, edges, seed), w.schema);
  NgdGenOptions gen;
  gen.count = 10;
  gen.max_diameter = 3;
  gen.seed = seed + 1;
  gen.violation_rate = 0.25;
  w.sigma = GenerateNgdSet(*w.graph, gen);
  UpdateGenOptions up;
  up.fraction = fraction;
  up.seed = seed + 2;
  w.batch = GenerateUpdateBatch(w.graph.get(), up);
  EXPECT_TRUE(ApplyUpdateBatch(w.graph.get(), &w.batch).ok());
  auto delta = IncDect(*w.graph, w.sigma, w.batch);
  EXPECT_TRUE(delta.ok());
  w.expected = std::move(delta).value();
  return w;
}

void ExpectSameDelta(const DeltaVio& expected, const DeltaVio& actual) {
  EXPECT_EQ(expected.added.size(), actual.added.size());
  EXPECT_EQ(expected.removed.size(), actual.removed.size());
  for (const auto& v : expected.added.items()) {
    EXPECT_TRUE(actual.added.Contains(v));
  }
  for (const auto& v : expected.removed.items()) {
    EXPECT_TRUE(actual.removed.Contains(v));
  }
}

class PIncDectProcessorsTest : public ::testing::TestWithParam<int> {};

TEST_P(PIncDectProcessorsTest, MatchesSequentialIncDect) {
  Workload w = MakeWorkload(31);
  PIncDectOptions opts;
  opts.num_processors = GetParam();
  opts.balance_interval_ms = 5;
  auto result = PIncDect(*w.graph, w.sigma, w.batch, opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectSameDelta(w.expected, result->delta);
  EXPECT_GT(result->work_units, 0u);
  EXPECT_GT(result->candidate_neighborhood_nodes, 0u);
}

INSTANTIATE_TEST_SUITE_P(Processors, PIncDectProcessorsTest,
                         ::testing::Values(1, 2, 4, 8));

struct VariantCase {
  const char* name;
  bool split;
  bool balance;
};

class PIncDectVariantTest : public ::testing::TestWithParam<VariantCase> {};

TEST_P(PIncDectVariantTest, AblationVariantsAreAllCorrect) {
  Workload w = MakeWorkload(37);
  PIncDectOptions opts;
  opts.num_processors = 4;
  opts.enable_split = GetParam().split;
  opts.enable_balance = GetParam().balance;
  opts.balance_interval_ms = 5;
  auto result = PIncDect(*w.graph, w.sigma, w.batch, opts);
  ASSERT_TRUE(result.ok());
  ExpectSameDelta(w.expected, result->delta);
  if (!GetParam().split) {
    EXPECT_EQ(result->splits, 0u);
  }
  if (!GetParam().balance) {
    EXPECT_EQ(result->balance_moves, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Variants, PIncDectVariantTest,
    ::testing::Values(VariantCase{"full", true, true},
                      VariantCase{"ns_no_split", false, true},
                      VariantCase{"nb_no_balance", true, false},
                      VariantCase{"NO_neither", false, false}),
    [](const ::testing::TestParamInfo<VariantCase>& info) {
      return info.param.name;
    });

TEST(PIncDectTest, SplittingTriggersOnHubs) {
  // A hub with a huge adjacency list must trigger the hybrid splitter
  // when C is small.
  SchemaPtr schema = Schema::Create();
  Graph g(schema);
  LabelId n = schema->InternLabel("n");
  LabelId e = schema->InternLabel("e");
  AttrId v = schema->InternAttr("v");
  NodeId hub = g.AddNode(n);
  g.SetAttr(hub, v, Value(int64_t{0}));
  for (int i = 0; i < 600; ++i) {
    NodeId leaf = g.AddNode(n);
    g.SetAttr(leaf, v, Value(int64_t{i}));
    ASSERT_TRUE(g.AddEdge(hub, leaf, e).ok());
  }
  NodeId src = g.AddNode(n);
  g.SetAttr(src, v, Value(int64_t{50}));

  auto parsed = ParseNgds(
      "ngd r { match (x:n)-[e]->(y:n), (y)-[e]->(z:n) then x.v <= z.v }",
      schema);
  ASSERT_TRUE(parsed.ok());

  UpdateBatch batch;
  batch.updates.push_back({UpdateKind::kInsert, src, hub, e});
  ASSERT_TRUE(ApplyUpdateBatch(&g, &batch).ok());

  auto sequential = IncDect(g, *parsed, batch);
  ASSERT_TRUE(sequential.ok());

  PIncDectOptions opts;
  opts.num_processors = 4;
  opts.latency_c = 1.0;  // aggressive splitting
  opts.min_split_adjacency = 8;
  auto result = PIncDect(g, *parsed, batch, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->splits, 0u);
  ExpectSameDelta(*sequential, result->delta);
}

TEST(PIncDectTest, LargeLatencyDisablesSplitting) {
  Workload w = MakeWorkload(41);
  PIncDectOptions opts;
  opts.num_processors = 4;
  opts.latency_c = 1e9;
  auto result = PIncDect(*w.graph, w.sigma, w.batch, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->splits, 0u);
  ExpectSameDelta(w.expected, result->delta);
}

TEST(PIncDectTest, DeterministicDeltaAcrossRuns) {
  Workload w = MakeWorkload(43);
  PIncDectOptions opts;
  opts.num_processors = 4;
  opts.balance_interval_ms = 1;
  auto r1 = PIncDect(*w.graph, w.sigma, w.batch, opts);
  auto r2 = PIncDect(*w.graph, w.sigma, w.batch, opts);
  ASSERT_TRUE(r1.ok() && r2.ok());
  ExpectSameDelta(r1->delta, r2->delta);
}

TEST(PIncDectTest, ReplicationMetricsScaleWithProcessors) {
  Workload w = MakeWorkload(47);
  PIncDectOptions p2;
  p2.num_processors = 2;
  PIncDectOptions p8;
  p8.num_processors = 8;
  auto r2 = PIncDect(*w.graph, w.sigma, w.batch, p2);
  auto r8 = PIncDect(*w.graph, w.sigma, w.batch, p8);
  ASSERT_TRUE(r2.ok() && r8.ok());
  EXPECT_EQ(r2->candidate_neighborhood_nodes,
            r8->candidate_neighborhood_nodes);
  EXPECT_GT(r8->replicated_nodes, r2->replicated_nodes);
}

TEST(PIncDectTest, RejectsEdgelessPattern) {
  SchemaPtr schema = Schema::Create();
  Graph g(schema);
  g.AddNode("n");
  auto parsed = ParseNgds("ngd r { match (x:n) then x.v >= 0 }", schema);
  ASSERT_TRUE(parsed.ok());
  UpdateBatch batch;
  PIncDectOptions opts;
  auto result = PIncDect(g, *parsed, batch, opts);
  EXPECT_FALSE(result.ok());
}

TEST(PIncDectTest, EmptyBatchTerminatesImmediately) {
  Workload w = MakeWorkload(53, 100, 200, 0.0);
  PIncDectOptions opts;
  opts.num_processors = 4;
  auto result = PIncDect(*w.graph, w.sigma, w.batch, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->delta.empty());
}

}  // namespace
}  // namespace ngd
