// Cross-module integration: the full pipeline a downstream user runs —
// generate/load a graph, parse rules, batch-detect, then maintain the
// violation set incrementally (sequentially and in parallel) across a
// stream of update batches.

#include <gtest/gtest.h>

#include <sstream>

#include "detect/dect.h"
#include "detect/inc_dect.h"
#include "discovery/miner.h"
#include "discovery/ngd_generator.h"
#include "graph/error_injector.h"
#include "graph/generators.h"
#include "graph/graph_io.h"
#include "parallel/pdect.h"
#include "parallel/pinc_dect.h"
#include "test_util.h"

namespace ngd {
namespace {

TEST(IntegrationTest, MotifGraphFullPipeline) {
  SchemaPtr schema = Schema::Create();
  Graph g(schema);
  ErrorInjector inj(&g, 71);
  MotifStats life = inj.PlantLifespan(40, 0.2);
  MotifStats pop = inj.PlantPopulation(40, 0.2);
  MotifStats acct = inj.PlantFakeAccounts(30, 0.2);

  NgdSet rules = testing_util::MustParse(
      std::string(testing_util::kPhi1) + testing_util::kPhi2 +
          testing_util::kPhi4,
      schema);

  VioSet vio = Dect(g, rules);
  // Every planted error is caught, and nothing else: for these motifs
  // each error yields exactly one violating match... except φ4 motifs,
  // where the suspicious account pairs with the real one exactly once.
  EXPECT_EQ(vio.size(), life.errors + pop.errors + acct.errors);

  // Parallel batch agrees.
  PDectOptions popts;
  popts.num_processors = 4;
  EXPECT_EQ(PDect(g, rules, popts).vio.size(), vio.size());
}

TEST(IntegrationTest, IncrementalMaintenanceStream) {
  SchemaPtr schema = Schema::Create();
  auto g = GenerateGraph(SyntheticConfig(600, 1600, 91), schema);
  NgdGenOptions gen;
  gen.count = 10;
  gen.max_diameter = 3;
  gen.seed = 92;
  gen.violation_rate = 0.3;
  NgdSet sigma = GenerateNgdSet(*g, gen);
  ASSERT_GT(sigma.size(), 0u);

  VioSet maintained = Dect(*g, sigma);
  for (int round = 0; round < 3; ++round) {
    UpdateGenOptions up;
    up.fraction = 0.1;
    up.seed = 900 + round;
    UpdateBatch batch = GenerateUpdateBatch(g.get(), up);
    ASSERT_TRUE(ApplyUpdateBatch(g.get(), &batch).ok());

    // Sequential and parallel incremental agree with each other.
    auto seq = IncDect(*g, sigma, batch);
    ASSERT_TRUE(seq.ok());
    PIncDectOptions popts;
    popts.num_processors = 4;
    auto par = PIncDect(*g, sigma, batch, popts);
    ASSERT_TRUE(par.ok());
    EXPECT_EQ(seq->added.size(), par->delta.added.size());
    EXPECT_EQ(seq->removed.size(), par->delta.removed.size());

    maintained = ApplyDelta(maintained, *seq);
    g->Commit();
    VioSet fresh = Dect(*g, sigma);
    ASSERT_EQ(maintained.size(), fresh.size()) << "round " << round;
  }
}

TEST(IntegrationTest, SaveLoadDetectRoundTrip) {
  // Detection results survive serialization: violations on the loaded
  // graph equal violations on the original.
  SchemaPtr schema = Schema::Create();
  Graph g(schema);
  ErrorInjector inj(&g, 73);
  inj.PlantPopulation(25, 0.3);
  NgdSet rules = testing_util::MustParse(testing_util::kPhi2, schema);
  VioSet original = Dect(g, rules);

  std::ostringstream os;
  ASSERT_TRUE(WriteGraphText(g, &os).ok());
  std::istringstream is(os.str());
  SchemaPtr schema2 = Schema::Create();
  auto loaded = ReadGraphText(&is, schema2);
  ASSERT_TRUE(loaded.ok());
  NgdSet rules2 = testing_util::MustParse(testing_util::kPhi2, schema2);
  EXPECT_EQ(Dect(**loaded, rules2).size(), original.size());
}

TEST(IntegrationTest, MixedRuleSetNumericAndGfd) {
  // NGDs and GFD-fragment rules evaluated uniformly in one Σ.
  SchemaPtr schema = Schema::Create();
  Graph g(schema);
  ErrorInjector inj(&g, 79);
  MotifStats olympic = inj.PlantOlympicNations(30, 0.2);
  MotifStats constant = inj.PlantConstantBinding(30, 0.2);
  NgdSet rules = testing_util::MustParse(R"(
    ngd olympic {
      match (x:competition)-[nations]->(y:integer),
            (x)-[competitors]->(z:integer)
      where x.type = "Olympic"
      then y.val <= z.val
    }
    ngd capital_kind {
      match (x:capital)-[locatedIn]->(y:country)
      then x.kind = "capital-city"
    }
  )",
                                         schema);
  ASSERT_EQ(rules.size(), 2u);
  EXPECT_FALSE(rules[0].IsGfd());
  EXPECT_TRUE(rules[1].IsGfd());
  VioSet vio = Dect(g, rules);
  EXPECT_EQ(vio.size(), olympic.errors + constant.errors);
}

TEST(IntegrationTest, LocalityIncDectTouchesOnlyNeighborhood) {
  // Build two disjoint communities; update only one. IncDect must not
  // report violations in the untouched one even though batch Dect sees
  // its violations.
  SchemaPtr schema = Schema::Create();
  Graph g(schema);
  LabelId n = schema->InternLabel("n");
  LabelId e = schema->InternLabel("e");
  AttrId v = schema->InternAttr("v");
  auto mk_pair = [&](int64_t xv, int64_t yv) {
    NodeId a = g.AddNode(n), b = g.AddNode(n);
    g.SetAttr(a, v, Value(xv));
    g.SetAttr(b, v, Value(yv));
    EXPECT_TRUE(g.AddEdge(a, b, e).ok());
    return std::make_pair(a, b);
  };
  mk_pair(10, 1);               // community A: existing violation
  auto [c, d] = mk_pair(1, 10); // community B: clean
  NgdSet rules = testing_util::MustParse(
      "ngd r { match (x:n)-[e]->(y:n) then x.v <= y.v }", schema);

  // Batch sees the community-A violation.
  EXPECT_EQ(Dect(g, rules).size(), 1u);

  // Update community B only: no delta at all.
  UpdateBatch batch;
  batch.updates.push_back({UpdateKind::kDelete, c, d, e});
  ASSERT_TRUE(ApplyUpdateBatch(&g, &batch).ok());
  auto delta = IncDect(g, rules, batch);
  ASSERT_TRUE(delta.ok());
  EXPECT_TRUE(delta->empty());
}

TEST(IntegrationTest, MinedRulesDriveIncrementalDetection) {
  // Rules mined from clean data catch errors introduced by later updates.
  SchemaPtr schema = Schema::Create();
  Graph g(schema);
  ErrorInjector inj(&g, 83);
  inj.PlantLifespan(60, 0.0);

  // Hand-written stand-in for the mined lifespan rule (the miner's
  // pairwise literal x.val <= y.val over (created, destroyed) pairs needs
  // the 3-node shape, which DiscoverNgds finds as a fan-out pattern).
  MinerOptions mopts;
  mopts.min_support = 20;
  mopts.max_rules = 60;
  NgdSet mined = DiscoverNgds(g, mopts);
  ASSERT_TRUE(Validate(g, mined));
  ASSERT_TRUE(ValidateForIncremental(mined).ok());

  // Re-wire one created/destroyed pair so the dates invert.
  LabelId created = *schema->labels().Find("wasCreatedOnDate");
  LabelId destroyed = *schema->labels().Find("wasDestroyedOnDate");
  NodeId org = kInvalidNode, c_node = kInvalidNode, d_node = kInvalidNode;
  for (NodeId u = 0; u < g.NumNodes() && org == kInvalidNode; ++u) {
    NodeId cn = kInvalidNode, dn = kInvalidNode;
    for (const auto& adj : g.OutEdges(u)) {
      if (adj.label == created) cn = adj.other;
      if (adj.label == destroyed) dn = adj.other;
    }
    if (cn != kInvalidNode && dn != kInvalidNode) {
      org = u;
      c_node = cn;
      d_node = dn;
    }
  }
  ASSERT_NE(org, kInvalidNode);
  UpdateBatch batch;
  batch.updates.push_back({UpdateKind::kDelete, org, c_node, created});
  batch.updates.push_back({UpdateKind::kDelete, org, d_node, destroyed});
  batch.updates.push_back({UpdateKind::kInsert, org, d_node, created});
  batch.updates.push_back({UpdateKind::kInsert, org, c_node, destroyed});
  ASSERT_TRUE(ApplyUpdateBatch(&g, &batch).ok());
  auto delta = IncDect(g, mined, batch);
  ASSERT_TRUE(delta.ok());
  // The inverted lifespan must surface as a new violation of some mined
  // rule (created.val <= destroyed.val mined from clean data).
  EXPECT_GT(delta->added.size(), 0u);
}

}  // namespace
}  // namespace ngd
