#include <gtest/gtest.h>

#include "core/ngd.h"
#include "test_util.h"

namespace ngd {
namespace {

class NgdTest : public ::testing::Test {
 protected:
  NgdTest() : schema_(Schema::Create()) {
    person_ = schema_->InternLabel("person");
    knows_ = schema_->InternLabel("knows");
    age_ = schema_->InternAttr("age");
  }

  Pattern TwoNodePattern() {
    Pattern p;
    int x = p.AddNode("x", person_);
    int y = p.AddNode("y", person_);
    EXPECT_TRUE(p.AddEdge(x, y, knows_).ok());
    return p;
  }

  SchemaPtr schema_;
  LabelId person_, knows_;
  AttrId age_;
};

TEST_F(NgdTest, ValidateAcceptsLinearRule) {
  Ngd ngd("ok", TwoNodePattern(),
          {Literal(Expr::Var(0, age_), CmpOp::kGe, Expr::IntConst(0))},
          {Literal(Expr::Add(Expr::Var(0, age_), Expr::Var(1, age_)),
                   CmpOp::kLe, Expr::IntConst(300))});
  EXPECT_TRUE(ngd.Validate().ok());
}

TEST_F(NgdTest, ValidateRejectsEmptyPattern) {
  Ngd ngd("empty", Pattern{}, {}, {});
  EXPECT_EQ(ngd.Validate().code(), StatusCode::kInvalidArgument);
}

TEST_F(NgdTest, ValidateRejectsDuplicateVariables) {
  Pattern p;
  p.AddNode("x", person_);
  p.AddNode("x", person_);
  Ngd ngd("dup", std::move(p), {}, {});
  EXPECT_EQ(ngd.Validate().code(), StatusCode::kInvalidArgument);
}

TEST_F(NgdTest, ValidateRejectsOutOfRangeVariable) {
  Ngd ngd("oob", TwoNodePattern(), {},
          {Literal(Expr::Var(5, age_), CmpOp::kEq, Expr::IntConst(1))});
  Status s = ngd.Validate();
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("outside the pattern"), std::string::npos);
}

TEST_F(NgdTest, ValidateRejectsNonLinearCitingTheorem3) {
  // x.age * y.age — degree 2, undecidable territory.
  Ngd ngd("quad", TwoNodePattern(), {},
          {Literal(Expr::Mul(Expr::Var(0, age_), Expr::Var(1, age_)),
                   CmpOp::kEq, Expr::IntConst(100))});
  Status s = ngd.Validate();
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("Theorem 3"), std::string::npos);
}

TEST_F(NgdTest, ValidateRejectsVariableDivisor) {
  Ngd ngd("vardiv", TwoNodePattern(), {},
          {Literal(Expr::Div(Expr::Var(0, age_), Expr::Var(1, age_)),
                   CmpOp::kEq, Expr::IntConst(1))});
  EXPECT_EQ(ngd.Validate().code(), StatusCode::kInvalidArgument);
}

TEST_F(NgdTest, GfdClassification) {
  // GFD: x.age = 30 -> y.age = 30.
  Ngd gfd("gfd", TwoNodePattern(),
          {Literal(Expr::Var(0, age_), CmpOp::kEq, Expr::IntConst(30))},
          {Literal(Expr::Var(1, age_), CmpOp::kEq, Expr::IntConst(30))});
  EXPECT_TRUE(gfd.IsGfd());
  EXPECT_FALSE(gfd.UsesArithmetic());
  EXPECT_FALSE(gfd.UsesComparison());

  // Comparison predicate beyond '=': a proper NGD.
  Ngd cmp("cmp", TwoNodePattern(), {},
          {Literal(Expr::Var(0, age_), CmpOp::kLe, Expr::Var(1, age_))});
  EXPECT_FALSE(cmp.IsGfd());
  EXPECT_TRUE(cmp.UsesComparison());
  EXPECT_FALSE(cmp.UsesArithmetic());

  // Arithmetic with '=' only: also a proper NGD.
  Ngd arith("arith", TwoNodePattern(), {},
            {Literal(Expr::Add(Expr::Var(0, age_), Expr::Var(1, age_)),
                     CmpOp::kEq, Expr::IntConst(60))});
  EXPECT_FALSE(arith.IsGfd());
  EXPECT_TRUE(arith.UsesArithmetic());
  EXPECT_FALSE(arith.UsesComparison());
}

TEST_F(NgdTest, PaperRulesClassifyAsNgds) {
  SchemaPtr schema = Schema::Create();
  NgdSet rules = testing_util::MustParse(
      std::string(testing_util::kPhi1) + testing_util::kPhi2 +
          testing_util::kPhi3 + testing_util::kPhi4,
      schema);
  ASSERT_EQ(rules.size(), 4u);
  for (const auto& ngd : rules.ngds()) {
    EXPECT_FALSE(ngd.IsGfd()) << ngd.name();
  }
  // φ2 uses arithmetic; φ3 uses comparisons; φ4 uses both.
  EXPECT_TRUE(rules[1].UsesArithmetic());
  EXPECT_TRUE(rules[2].UsesComparison());
  EXPECT_TRUE(rules[3].UsesArithmetic());
  EXPECT_TRUE(rules[3].UsesComparison());
}

TEST_F(NgdTest, MaxDiameterOverSet) {
  SchemaPtr schema = Schema::Create();
  NgdSet rules = testing_util::MustParse(
      std::string(testing_util::kPhi1) + testing_util::kPhi3, schema);
  ASSERT_EQ(rules.size(), 2u);
  EXPECT_EQ(rules[0].pattern().Diameter(), 2);  // φ1: star
  EXPECT_EQ(rules[1].pattern().Diameter(), 4);  // φ3: rank pattern
  EXPECT_EQ(rules.MaxDiameter(), 4);
}

TEST_F(NgdTest, ToStringRoundTripsThroughParser) {
  SchemaPtr schema = Schema::Create();
  NgdSet rules =
      testing_util::MustParse(testing_util::kPhi2, schema);
  ASSERT_EQ(rules.size(), 1u);
  std::string text = rules[0].ToString(schema->labels(), schema->attrs());
  auto reparsed = ParseNgd(text, schema);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString() << "\n" << text;
  EXPECT_EQ(reparsed->name(), "phi2");
  EXPECT_EQ(reparsed->pattern().NumNodes(), 4u);
  EXPECT_EQ(reparsed->pattern().NumEdges(), 3u);
  EXPECT_EQ(reparsed->Y().size(), 1u);
}

TEST_F(NgdTest, SetValidateAggregates) {
  NgdSet set;
  set.Add(Ngd("ok", TwoNodePattern(), {},
              {Literal(Expr::Var(0, age_), CmpOp::kGe, Expr::IntConst(0))}));
  EXPECT_TRUE(set.Validate().ok());
  set.Add(Ngd("bad", TwoNodePattern(), {},
              {Literal(Expr::Mul(Expr::Var(0, age_), Expr::Var(1, age_)),
                       CmpOp::kEq, Expr::IntConst(1))}));
  EXPECT_FALSE(set.Validate().ok());
}

}  // namespace
}  // namespace ngd
