#include <gtest/gtest.h>

#include "detect/dect.h"
#include "discovery/ngd_generator.h"
#include "graph/generators.h"
#include "parallel/pdect.h"
#include "test_util.h"

namespace ngd {
namespace {

class PDectTest : public ::testing::TestWithParam<int> {};

TEST_P(PDectTest, MatchesSequentialDect) {
  SchemaPtr schema = Schema::Create();
  auto g = GenerateGraph(SyntheticConfig(600, 1500, 21), schema);
  NgdGenOptions gen;
  gen.count = 10;
  gen.max_diameter = 3;
  gen.seed = 22;
  gen.violation_rate = 0.25;
  NgdSet sigma = GenerateNgdSet(*g, gen);
  ASSERT_GT(sigma.size(), 0u);

  VioSet sequential = Dect(*g, sigma);
  PDectOptions opts;
  opts.num_processors = GetParam();
  PDectResult parallel = PDect(*g, sigma, opts);
  EXPECT_EQ(parallel.vio.size(), sequential.size());
  for (const auto& v : sequential.items()) {
    EXPECT_TRUE(parallel.vio.Contains(v));
  }
  EXPECT_GT(parallel.elapsed_seconds, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Processors, PDectTest,
                         ::testing::Values(1, 2, 4, 8));

TEST(PDectFixedTest, FindsPaperFig1Violations) {
  auto g = testing_util::BuildG4();
  NgdSet rules = testing_util::MustParse(testing_util::kPhi4, g.schema);
  PDectOptions opts;
  opts.num_processors = 3;
  PDectResult r = PDect(*g.graph, rules, opts);
  EXPECT_EQ(r.vio.size(), 1u);
}

TEST(PDectFixedTest, EmptyRuleSetYieldsNoViolations) {
  SchemaPtr schema = Schema::Create();
  auto g = GenerateGraph(SyntheticConfig(100, 200, 1), schema);
  PDectOptions opts;
  opts.num_processors = 2;
  EXPECT_TRUE(PDect(*g, NgdSet{}, opts).vio.empty());
}

}  // namespace
}  // namespace ngd
