// Update journal correctness (graph/update_log.{h,cc}).
//
// Coverage:
//   1. EpochRecord capture/replay round-trip, including batches that
//      introduce new nodes, and idempotent re-application (the
//      RotateState crash window).
//   2. The append/scan protocol: ReadLogRecords round-trip, strictly
//      consecutive epoch ids, torn-tail truncation at every byte cut
//      (recovering exactly the durable record prefix, with appends
//      resuming afterwards), and mid-file corruption rejected as
//      kCorruption — never a crash.
//   3. RecoverState over every file-presence combination and RotateState
//      compaction, with the recovered graph fingerprint-checked against
//      the never-crashed live graph.
//
// Fault-injection sweeps that kill the whole workload at every failpoint
// live in recovery_test.cc; this suite covers the file-format contract.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/snapshot.h"
#include "graph/snapshot_io.h"
#include "graph/update_log.h"
#include "graph/updates.h"
#include "util/failpoint.h"

namespace ngd {
namespace {

namespace fs = std::filesystem;

uint64_t Fingerprint(const Graph& g) {
  return SnapshotFingerprint(GraphSnapshot(g, GraphView::kNew));
}

std::string ReadBytes(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(f.is_open()) << path;
  std::string bytes((std::istreambuf_iterator<char>(f)),
                    std::istreambuf_iterator<char>());
  return bytes;
}

void WriteBytes(const std::string& path, const std::string& bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(f.is_open()) << path;
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  f.flush();
  ASSERT_TRUE(f.good()) << path;
}

std::string TestPath(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

/// One full epoch following the journal protocol: mutate, journal, sync,
/// commit. Returns the effective batch size so tests can require real
/// work happened.
size_t AdvanceEpoch(Graph* g, UpdateLog* wal, uint64_t seed,
                    double new_node_prob = 0.25) {
  UpdateGenOptions up;
  up.fraction = 0.1;
  up.insert_fraction = 0.6;
  up.new_node_prob = new_node_prob;
  up.seed = seed;
  const NodeId first_new = static_cast<NodeId>(g->NumNodes());
  UpdateBatch batch = GenerateUpdateBatch(g, up);
  EXPECT_TRUE(ApplyUpdateBatch(g, &batch).ok());
  const EpochRecord rec =
      EpochRecord::Capture(*g, batch, first_new, wal->last_epoch() + 1);
  Status a = wal->Append(rec);
  EXPECT_TRUE(a.ok()) << a.ToString();
  Status s = wal->Sync();
  EXPECT_TRUE(s.ok()) << s.ToString();
  g->Commit();
  return batch.size();
}

std::unique_ptr<Graph> BaseGraph(SchemaPtr schema, uint64_t seed = 11) {
  return GenerateGraph(SyntheticConfig(60, 150, seed), schema);
}

// ---- EpochRecord capture/replay -------------------------------------------

TEST(EpochRecordTest, CaptureReplayRoundTripWithNewNodes) {
  SchemaPtr schema = Schema::Create();
  auto g = BaseGraph(schema);
  SchemaPtr replica_schema = Schema::Create();
  auto replica = GenerateGraph(SyntheticConfig(60, 150, 11), replica_schema);
  ASSERT_EQ(Fingerprint(*g), Fingerprint(*replica));

  for (int e = 1; e <= 4; ++e) {
    UpdateGenOptions up;
    up.fraction = 0.15;
    up.insert_fraction = 0.6;
    up.new_node_prob = 0.3;
    up.seed = 500 + static_cast<uint64_t>(e);
    const NodeId first_new = static_cast<NodeId>(g->NumNodes());
    UpdateBatch batch = GenerateUpdateBatch(g.get(), up);
    ASSERT_TRUE(ApplyUpdateBatch(g.get(), &batch).ok());
    const EpochRecord rec = EpochRecord::Capture(
        *g, batch, first_new, static_cast<uint64_t>(e));
    g->Commit();
    Status applied = rec.ApplyTo(replica.get());
    ASSERT_TRUE(applied.ok()) << applied.ToString();
    EXPECT_EQ(Fingerprint(*g), Fingerprint(*replica)) << "epoch " << e;
    // Idempotence: re-applying a record whose effects are already present
    // (the RotateState crash window) must be a no-op.
    Status again = rec.ApplyTo(replica.get());
    ASSERT_TRUE(again.ok()) << again.ToString();
    EXPECT_EQ(Fingerprint(*g), Fingerprint(*replica)) << "replay epoch " << e;
  }
}

TEST(EpochRecordTest, ReplayOntoTooSmallGraphIsCorruption) {
  SchemaPtr schema = Schema::Create();
  auto g = BaseGraph(schema);
  EpochRecord rec;
  rec.epoch = 1;
  rec.first_new_node = static_cast<NodeId>(g->NumNodes()) + 5;  // gap
  Status s = rec.ApplyTo(g.get());
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
}

TEST(EpochRecordTest, ReplayWithOutOfRangeEndpointIsCorruption) {
  SchemaPtr schema = Schema::Create();
  auto g = BaseGraph(schema);
  EpochRecord rec;
  rec.epoch = 1;
  rec.first_new_node = static_cast<NodeId>(g->NumNodes());
  rec.updates.push_back(EpochRecord::EdgeUpdate{
      UpdateKind::kInsert, 0, static_cast<NodeId>(g->NumNodes()) + 99, "e0"});
  const uint64_t before = Fingerprint(*g);
  Status s = rec.ApplyTo(g.get());
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
  EXPECT_EQ(Fingerprint(*g), before);  // rolled back
}

// ---- Append/scan protocol -------------------------------------------------

TEST(UpdateLogTest, AppendReadRecoverRoundTrip) {
  const std::string wal_path = TestPath("update_log_roundtrip.wal");
  const std::string snap_path = TestPath("update_log_roundtrip.ngds");
  SchemaPtr schema = Schema::Create();
  auto g = BaseGraph(schema);
  ASSERT_TRUE(
      SaveSnapshotFile(GraphSnapshot(*g, GraphView::kNew), snap_path).ok());

  auto wal_or = UpdateLog::Create(wal_path, 0);
  ASSERT_TRUE(wal_or.ok()) << wal_or.status().ToString();
  std::unique_ptr<UpdateLog> wal = std::move(*wal_or);
  size_t total_updates = 0;
  for (int e = 1; e <= 5; ++e) {
    total_updates += AdvanceEpoch(g.get(), wal.get(), 600 + e);
  }
  ASSERT_GT(total_updates, 0u);
  EXPECT_EQ(wal->last_epoch(), 5u);
  wal.reset();  // close

  UpdateLog::OpenInfo info;
  auto records = ReadLogRecords(wal_path, &info);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ(records->size(), 5u);
  EXPECT_EQ(info.base_epoch, 0u);
  EXPECT_EQ(info.last_epoch, 5u);
  EXPECT_EQ(info.truncated_bytes, 0u);
  for (size_t i = 0; i < records->size(); ++i) {
    EXPECT_EQ((*records)[i].epoch, i + 1);
  }

  auto rec = RecoverState(snap_path, wal_path, Schema::Create());
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_TRUE(rec->snapshot_loaded);
  EXPECT_EQ(rec->last_epoch, 5u);
  EXPECT_EQ(rec->replayed_records, 5u);
  EXPECT_EQ(rec->truncated_bytes, 0u);
  EXPECT_EQ(Fingerprint(*rec->graph), Fingerprint(*g));
}

TEST(UpdateLogTest, EpochIdsMustBeStrictlyConsecutive) {
  const std::string wal_path = TestPath("update_log_epochs.wal");
  SchemaPtr schema = Schema::Create();
  auto g = BaseGraph(schema);
  auto wal_or = UpdateLog::Create(wal_path, 7);
  ASSERT_TRUE(wal_or.ok());
  std::unique_ptr<UpdateLog> wal = std::move(*wal_or);
  EXPECT_EQ(wal->base_epoch(), 7u);
  EXPECT_EQ(wal->last_epoch(), 7u);

  EpochRecord rec;
  rec.first_new_node = static_cast<NodeId>(g->NumNodes());
  rec.epoch = 7;  // stale
  EXPECT_EQ(wal->Append(rec).code(), StatusCode::kInvalidArgument);
  rec.epoch = 9;  // gap
  EXPECT_EQ(wal->Append(rec).code(), StatusCode::kInvalidArgument);
  rec.epoch = 8;  // the only accepted id
  EXPECT_TRUE(wal->Append(rec).ok());
  EXPECT_TRUE(wal->Sync().ok());
  EXPECT_EQ(wal->last_epoch(), 8u);
}

TEST(UpdateLogTest, EveryTornTailCutRecoversTheDurablePrefix) {
  const std::string wal_path = TestPath("update_log_torn.wal");
  SchemaPtr schema = Schema::Create();
  auto g = BaseGraph(schema);
  auto wal_or = UpdateLog::Create(wal_path, 0);
  ASSERT_TRUE(wal_or.ok());
  std::unique_ptr<UpdateLog> wal = std::move(*wal_or);
  // size_after[k] = file length with exactly k durable records.
  std::vector<uintmax_t> size_after = {fs::file_size(wal_path)};
  for (int e = 1; e <= 3; ++e) {
    AdvanceEpoch(g.get(), wal.get(), 700 + e);
    size_after.push_back(fs::file_size(wal_path));
  }
  wal.reset();
  const std::string bytes = ReadBytes(wal_path);
  ASSERT_EQ(bytes.size(), size_after[3]);

  const std::string cut_path = TestPath("update_log_torn_cut.wal");
  for (size_t len = 0; len <= bytes.size(); ++len) {
    WriteBytes(cut_path, bytes.substr(0, len));
    UpdateLog::OpenInfo info;
    auto reopened = UpdateLog::Open(cut_path, &info);
    if (len == 0) {
      // Empty file: a fresh journal, not a torn one.
      ASSERT_TRUE(reopened.ok());
      EXPECT_TRUE(info.created);
      continue;
    }
    if (len < size_after[0]) {
      // A partial header cannot be a torn append of this writer.
      ASSERT_FALSE(reopened.ok()) << "cut at " << len;
      EXPECT_EQ(reopened.status().code(), StatusCode::kCorruption);
      continue;
    }
    ASSERT_TRUE(reopened.ok())
        << "cut at " << len << ": " << reopened.status().ToString();
    size_t durable = 0;
    while (durable + 1 < size_after.size() && size_after[durable + 1] <= len) {
      ++durable;
    }
    EXPECT_EQ(info.records, durable) << "cut at " << len;
    EXPECT_EQ(info.last_epoch, durable) << "cut at " << len;
    EXPECT_EQ(info.truncated_bytes, len - size_after[durable])
        << "cut at " << len;
    // The torn tail is gone from the file: appends resume cleanly
    // (sampled — the append itself is the expensive part of the sweep).
    EXPECT_EQ(fs::file_size(cut_path), size_after[durable]);
    if (len % 41 == 0) {
      AdvanceEpoch(g.get(), reopened->get(), 900 + len);
      EXPECT_EQ((*reopened)->last_epoch(), durable + 1);
    }
  }
}

TEST(UpdateLogTest, MidFileCorruptionIsRejectedNeverTruncated) {
  const std::string wal_path = TestPath("update_log_midfile.wal");
  SchemaPtr schema = Schema::Create();
  auto g = BaseGraph(schema);
  auto wal_or = UpdateLog::Create(wal_path, 0);
  ASSERT_TRUE(wal_or.ok());
  std::unique_ptr<UpdateLog> wal = std::move(*wal_or);
  std::vector<uintmax_t> size_after = {fs::file_size(wal_path)};
  for (int e = 1; e <= 3; ++e) {
    AdvanceEpoch(g.get(), wal.get(), 800 + e);
    size_after.push_back(fs::file_size(wal_path));
  }
  wal.reset();
  const std::string bytes = ReadBytes(wal_path);

  // A flipped payload byte in a record with bytes after it trips that
  // record's checksum, and a checksum failure followed by more data
  // cannot be a torn append: Open and ReadLogRecords must reject. (A
  // flip in a record *header* length field can instead swallow the tail
  // and read as torn — covered by the failpoint test below — so this
  // sweep stays inside the payloads, where the policy is exact.)
  constexpr size_t kRecordHeaderBytes = 24;
  const std::string bad_path = TestPath("update_log_midfile_bad.wal");
  for (size_t r = 0; r < 2; ++r) {
    for (size_t pos = size_after[r] + kRecordHeaderBytes;
         pos < size_after[r + 1]; pos += 11) {
      std::string bad = bytes;
      bad[pos] = static_cast<char>(bad[pos] ^ 0x40);
      WriteBytes(bad_path, bad);
      auto reopened = UpdateLog::Open(bad_path);
      ASSERT_FALSE(reopened.ok()) << "flip at " << pos << " accepted";
      EXPECT_EQ(reopened.status().code(), StatusCode::kCorruption)
          << reopened.status().ToString();
      auto records = ReadLogRecords(bad_path, nullptr);
      EXPECT_FALSE(records.ok()) << "flip at " << pos;
    }
  }
}

TEST(UpdateLogTest, InjectedBitRotNeverCorruptsSilently) {
  // A silently corrupted append (the write "succeeds" with one bit
  // flipped — failpoint mode bitflip) must never survive as wrong data.
  // Depending on which bit the injector picks, the damage either trips
  // the record checksum or mangles a header field; the reader may report
  // it as kCorruption or — when it is indistinguishable from a torn
  // append — drop the record and everything after it. Both are honest;
  // replaying the rotten record as-is would not be.
  const std::string wal_path = TestPath("update_log_bitrot.wal");
  SchemaPtr schema = Schema::Create();
  auto g = BaseGraph(schema);
  auto wal_or = UpdateLog::Create(wal_path, 0);
  ASSERT_TRUE(wal_or.ok());
  std::unique_ptr<UpdateLog> wal = std::move(*wal_or);
  AdvanceEpoch(g.get(), wal.get(), 810, /*new_node_prob=*/0.0);

  failpoint::Reset();
  failpoint::ArmSite("wal_append", failpoint::Mode::kBitFlip);
  AdvanceEpoch(g.get(), wal.get(), 811, /*new_node_prob=*/0.0);
  failpoint::Reset();
  wal.reset();

  UpdateLog::OpenInfo info;
  auto reopened = UpdateLog::Open(wal_path, &info);
  if (reopened.ok()) {
    // Dropped as torn: only the clean epoch-1 record may survive.
    EXPECT_LE(info.last_epoch, 1u);
    EXPECT_GT(info.truncated_bytes, 0u);
  } else {
    EXPECT_EQ(reopened.status().code(), StatusCode::kCorruption);
  }
}

// ---- RecoverState / RotateState -------------------------------------------

TEST(RecoverStateTest, MissingFilesYieldTheEmptyBase) {
  const std::string snap_path = TestPath("recover_missing.ngds");
  const std::string wal_path = TestPath("recover_missing.wal");
  auto rec = RecoverState(snap_path, wal_path, Schema::Create());
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_FALSE(rec->snapshot_loaded);
  EXPECT_EQ(rec->last_epoch, 0u);
  EXPECT_EQ(rec->replayed_records, 0u);
  EXPECT_EQ(rec->graph->NumNodes(), 0u);
}

TEST(RecoverStateTest, SnapshotOnlyAndJournalSuffix) {
  const std::string snap_path = TestPath("recover_combo.ngds");
  const std::string wal_path = TestPath("recover_combo.wal");
  SchemaPtr schema = Schema::Create();
  auto g = BaseGraph(schema);
  ASSERT_TRUE(
      SaveSnapshotFile(GraphSnapshot(*g, GraphView::kNew), snap_path).ok());
  const uint64_t base_fp = Fingerprint(*g);

  // Snapshot alone: the base state at epoch 0.
  {
    auto rec = RecoverState(snap_path, wal_path, Schema::Create());
    ASSERT_TRUE(rec.ok()) << rec.status().ToString();
    EXPECT_TRUE(rec->snapshot_loaded);
    EXPECT_EQ(rec->last_epoch, 0u);
    EXPECT_EQ(Fingerprint(*rec->graph), base_fp);
  }

  auto wal_or = UpdateLog::Create(wal_path, 0);
  ASSERT_TRUE(wal_or.ok());
  std::unique_ptr<UpdateLog> wal = std::move(*wal_or);
  for (int e = 1; e <= 3; ++e) AdvanceEpoch(g.get(), wal.get(), 820 + e);
  wal.reset();

  auto rec = RecoverState(snap_path, wal_path, Schema::Create());
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(rec->last_epoch, 3u);
  EXPECT_EQ(Fingerprint(*rec->graph), Fingerprint(*g));
}

TEST(RotateStateTest, CompactsAndSurvivesTheCrashWindow) {
  const std::string snap_path = TestPath("rotate.ngds");
  const std::string wal_path = TestPath("rotate.wal");
  SchemaPtr schema = Schema::Create();
  auto g = BaseGraph(schema);
  ASSERT_TRUE(
      SaveSnapshotFile(GraphSnapshot(*g, GraphView::kNew), snap_path).ok());
  auto wal_or = UpdateLog::Create(wal_path, 0);
  ASSERT_TRUE(wal_or.ok());
  std::unique_ptr<UpdateLog> wal = std::move(*wal_or);
  for (int e = 1; e <= 4; ++e) AdvanceEpoch(g.get(), wal.get(), 830 + e);
  const std::string old_wal_bytes = ReadBytes(wal_path);

  Status rotated = RotateState(*g, snap_path, &wal);
  ASSERT_TRUE(rotated.ok()) << rotated.ToString();
  EXPECT_EQ(wal->base_epoch(), 4u);
  EXPECT_EQ(wal->last_epoch(), 4u);
  // The fresh journal is just a header; state lives in the snapshot now.
  {
    auto rec = RecoverState(snap_path, wal_path, Schema::Create());
    ASSERT_TRUE(rec.ok()) << rec.status().ToString();
    EXPECT_EQ(rec->last_epoch, 4u);
    EXPECT_EQ(rec->replayed_records, 0u);
    EXPECT_EQ(Fingerprint(*rec->graph), Fingerprint(*g));
  }

  // The rotation crash window: new snapshot written, old journal still in
  // place. Replay is idempotent, so recovery converges to the same state.
  WriteBytes(wal_path, old_wal_bytes);
  auto rec = RecoverState(snap_path, wal_path, Schema::Create());
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(rec->last_epoch, 4u);
  EXPECT_EQ(rec->replayed_records, 4u);
  EXPECT_EQ(Fingerprint(*rec->graph), Fingerprint(*g));

  // Appends continue on the rotated journal.
  AdvanceEpoch(g.get(), wal.get(), 840);
  EXPECT_EQ(wal->last_epoch(), 5u);
}

}  // namespace
}  // namespace ngd
