// Streaming-results contract (detect/vio_stream.{h,cc}):
//
//   1. unit mechanics — a spill-enabled VioSet flushes page-floored,
//      checksummed segments past its budget; the cursor streams segments
//      plus the resident tail back in exactly Sorted() order, resumes
//      from any offset, and applies post-spill Σ-remaps at read time;
//   2. engine differential — a randomized sweep running all four engines
//      with spill thresholds {0, one page, default} and requiring the
//      cursor stream to be byte-identical to the same engine's
//      non-spilled Sorted() oracle;
//   3. fault injection — a flush killed at the "vioseg_write" failpoint
//      keeps every record (resident, sticky error, stream still exact),
//      and a silently bit-flipped segment fails OpenCursor with
//      kCorruption before the first record;
//   4. the violation-heavy acceptance run — >= 10^6 violations under an
//      8 MiB budget with the peak resident footprint held under it
//      (gated by NGD_SPILL_HEAVY=0 for sanitizer CI).
//
// The sweep is sized by NGD_SPILL_CASES; a failure reproduces from the
// printed seed via NGD_SPILL_SEED.

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "detect/dect.h"
#include "detect/inc_dect.h"
#include "detect/vio_stream.h"
#include "detect/violation.h"
#include "graph/updates.h"
#include "parallel/pdect.h"
#include "parallel/pinc_dect.h"
#include "test_util.h"
#include "util/failpoint.h"

namespace ngd {
namespace {

size_t CaseCount() {
  const char* env = std::getenv("NGD_SPILL_CASES");
  if (env != nullptr) {
    const long n = std::strtol(env, nullptr, 10);
    if (n > 0) return static_cast<size_t>(n);
  }
  return 12;
}

std::string TempPrefix(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

/// Drains a cursor and requires the stream to equal `want` exactly.
/// position() is an absolute stream offset, so a resumed cursor ends at
/// its starting offset plus the records drained here.
void ExpectStreamEquals(const std::vector<Violation>& want, VioCursor* cursor,
                        const std::string& what) {
  const uint64_t start = cursor->position();
  Violation v;
  size_t i = 0;
  while (cursor->Next(&v)) {
    ASSERT_LT(i, want.size()) << what << ": stream longer than oracle";
    ASSERT_TRUE(want[i] == v)
        << what << ": record " << i << " differs (rule " << want[i].ngd_index
        << " vs " << v.ngd_index << ")";
    ++i;
  }
  ASSERT_TRUE(cursor->status().ok()) << what << ": " << cursor->status().ToString();
  ASSERT_EQ(i, want.size()) << what << ": stream shorter than oracle";
  ASSERT_EQ(cursor->position(), start + want.size()) << what;
}

void ExpectSetStreams(const std::vector<Violation>& want, const VioSet& set,
                      const std::string& what) {
  ASSERT_EQ(set.size(), want.size()) << what << ": size() disagrees";
  auto cursor = set.OpenCursor();
  ASSERT_TRUE(cursor.ok()) << what << ": " << cursor.status().ToString();
  ExpectStreamEquals(want, &*cursor, what);
}

// ---- 1. unit mechanics ---------------------------------------------------

TEST(VioSpillTest, SpillsSegmentsAndStreamsInSortedOrder) {
  VioSet plain;
  VioSet spilled;
  VioSpillOptions opts;
  opts.path_prefix = TempPrefix("spill_sorted");
  opts.budget_bytes = 0;  // page-floored: every ~4 KiB becomes a segment
  spilled.EnableSpill(opts);
  // Descending appends across two rules: segments are internally sorted
  // runs, and the k-way merge must interleave them globally.
  for (int r = 1; r >= 0; --r) {
    for (NodeId n = 2000; n > 0; --n) {
      const NodeId tuple[2] = {n, n + 1};
      plain.AppendUnchecked(r, tuple, 2);
      spilled.AppendUnchecked(r, tuple, 2);
    }
  }
  EXPECT_GT(spilled.num_spill_segments(), 1u);
  EXPECT_GT(spilled.spilled_records(), 0u);
  EXPECT_TRUE(spilled.spill_status().ok());
  ExpectSetStreams(plain.Sorted(), spilled, "descending two-rule spill");
}

TEST(VioSpillTest, BudgetKeepsPeakResidentUnderBudget) {
  VioSet set;
  VioSpillOptions opts;
  opts.path_prefix = TempPrefix("spill_budget");
  opts.budget_bytes = size_t{1} << 20;  // 1 MiB: > headroom, real budget
  set.EnableSpill(opts);
  for (NodeId n = 0; n < 200000; ++n) {
    set.AppendUnchecked(0, &n, 1);
  }
  EXPECT_GT(set.num_spill_segments(), 0u);
  EXPECT_LT(set.peak_resident_bytes(), opts.budget_bytes);
  EXPECT_EQ(set.size(), 200000u);
}

TEST(VioSpillTest, CursorResumesFromAnyOffset) {
  VioSet plain;
  VioSet set;
  VioSpillOptions opts;
  opts.path_prefix = TempPrefix("spill_resume");
  opts.budget_bytes = 0;
  set.EnableSpill(opts);
  for (NodeId n = 0; n < 3000; ++n) {
    const NodeId tuple[1] = {static_cast<NodeId>(2999 - n)};
    plain.AppendUnchecked(0, tuple, 1);
    set.AppendUnchecked(0, tuple, 1);
  }
  const std::vector<Violation> want = plain.Sorted();
  // Page through with a mid-stream handoff: read k records, reopen at
  // position(), and require the tail to line up.
  auto first = set.OpenCursor();
  ASSERT_TRUE(first.ok());
  Violation v;
  for (int i = 0; i < 1234; ++i) ASSERT_TRUE(first->Next(&v));
  ASSERT_EQ(first->position(), 1234u);
  auto resumed = set.OpenCursor(first->position());
  ASSERT_TRUE(resumed.ok());
  const std::vector<Violation> tail(want.begin() + 1234, want.end());
  ExpectStreamEquals(tail, &*resumed, "resumed cursor");
}

TEST(VioSpillTest, RemapAppliesToSegmentsWrittenBeforeIt) {
  VioSet plain;
  VioSet set;
  VioSpillOptions opts;
  opts.path_prefix = TempPrefix("spill_remap");
  opts.budget_bytes = 0;
  set.EnableSpill(opts);
  for (NodeId n = 0; n < 2000; ++n) {
    const int r = static_cast<int>(n % 2);
    set.AppendUnchecked(r, &n, 1);
    plain.AppendUnchecked(r, &n, 1);
  }
  ASSERT_GT(set.num_spill_segments(), 0u);
  // Σ-minimized run: kept[i] = original index of minimized rule i. The
  // segments on disk hold pre-remap indices; the cursor must remap them.
  const std::vector<int> kept = {3, 7};
  set.RemapNgdIndices(kept);
  plain.RemapNgdIndices(kept);
  ExpectSetStreams(plain.Sorted(), set, "remapped spilled set");
}

TEST(VioSinkTest, ReadPagePagesTheWholeStream) {
  VioSpillOptions opts;
  opts.path_prefix = TempPrefix("sink_page");
  opts.budget_bytes = 0;
  VioSink sink(opts);
  VioSet plain;
  for (NodeId n = 0; n < 1000; ++n) {
    const NodeId tuple[1] = {static_cast<NodeId>(999 - n)};
    sink.set()->AppendUnchecked(0, tuple, 1);
    plain.AppendUnchecked(0, tuple, 1);
  }
  ASSERT_TRUE(sink.Finish().ok());
  EXPECT_EQ(sink.set()->resident_bytes(), 0u);  // fully flushed
  const std::vector<Violation> want = plain.Sorted();
  std::vector<Violation> got;
  uint64_t offset = 0;
  while (got.size() < want.size()) {
    auto next = sink.ReadPage(offset, 137, &got);
    ASSERT_TRUE(next.ok()) << next.status().ToString();
    ASSERT_GT(*next, offset) << "paging made no progress";
    offset = *next;
  }
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) ASSERT_TRUE(want[i] == got[i]);
}

// ---- 3. fault injection --------------------------------------------------

TEST(VioSpillFaultTest, FailedFlushKeepsRecordsAndStreamExact) {
  failpoint::Reset();
  failpoint::ArmSite("vioseg_write", failpoint::Mode::kEnospc, 1);
  VioSet plain;
  VioSet set;
  VioSpillOptions opts;
  opts.path_prefix = TempPrefix("spill_enospc");
  opts.budget_bytes = 0;
  set.EnableSpill(opts);
  for (NodeId n = 0; n < 4000; ++n) {
    set.AppendUnchecked(0, &n, 1);
    plain.AppendUnchecked(0, &n, 1);
  }
  failpoint::Reset();
  // The second flush hit ENOSPC: the error is sticky, the records of the
  // failed flush (and everything after) stayed resident, and the stream
  // still returns every appended record exactly once.
  EXPECT_FALSE(set.spill_status().ok());
  EXPECT_EQ(set.size(), 4000u);
  ExpectSetStreams(plain.Sorted(), set, "post-ENOSPC stream");
}

TEST(VioSpillFaultTest, TornFlushLosesNothing) {
  failpoint::Reset();
  failpoint::ArmSite("vioseg_write", failpoint::Mode::kShortWrite, 0);
  VioSet plain;
  VioSet set;
  VioSpillOptions opts;
  opts.path_prefix = TempPrefix("spill_short");
  opts.budget_bytes = 0;
  set.EnableSpill(opts);
  for (NodeId n = 0; n < 4000; ++n) {
    set.AppendUnchecked(0, &n, 1);
    plain.AppendUnchecked(0, &n, 1);
  }
  failpoint::Reset();
  // WriteFileAtomic writes to a temp file and renames, so a short write
  // never leaves a torn segment behind — the flush reports failure and
  // the records stay resident.
  EXPECT_FALSE(set.spill_status().ok());
  ExpectSetStreams(plain.Sorted(), set, "post-short-write stream");
}

TEST(VioSpillFaultTest, BitflippedSegmentFailsOpenWithCorruption) {
  failpoint::Reset();
  failpoint::ArmSite("vioseg_write", failpoint::Mode::kBitFlip, 0);
  VioSet set;
  VioSpillOptions opts;
  opts.path_prefix = TempPrefix("spill_bitflip");
  opts.budget_bytes = 0;
  set.EnableSpill(opts);
  for (NodeId n = 0; n < 4000; ++n) {
    set.AppendUnchecked(0, &n, 1);
  }
  failpoint::Reset();
  ASSERT_GT(set.num_spill_segments(), 0u);
  // The bit flip "succeeded" (silent corruption); the open-time streamed
  // checksum pass must refuse before the first record is served.
  auto cursor = set.OpenCursor();
  ASSERT_FALSE(cursor.ok());
  EXPECT_EQ(cursor.status().code(), StatusCode::kCorruption)
      << cursor.status().ToString();
}

// ---- 2. engine differential ----------------------------------------------

/// One randomized case: all four engines at one spill threshold, every
/// spilled stream compared record-for-record against the same engine's
/// non-spilled Sorted().
void RunEngineSpillCase(uint64_t seed, size_t budget, const char* regime) {
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 17);
  testing_util::RandomWorkload w = testing_util::MakeRandomWorkload(seed, &rng);
  std::ostringstream repro_os;
  repro_os << "repro: NGD_SPILL_SEED=" << seed << " budget=" << regime
           << " (nodes=" << w.nodes << " edges=" << w.edges << ")";
  const std::string repro = repro_os.str();
  if (w.sigma.empty()) return;
  const std::string prefix =
      TempPrefix("engine_" + std::to_string(seed) + "_" + regime);

  VioSpillOptions spill;
  spill.budget_bytes = budget;

  DectOptions live;
  live.snapshot_mode = SnapshotMode::kNever;
  const std::vector<Violation> want = Dect(*w.graph, w.sigma, live).Sorted();

  {
    DectOptions o = live;
    spill.path_prefix = prefix + ".dect";
    o.spill = &spill;
    ExpectSetStreams(want, Dect(*w.graph, w.sigma, o), repro + " Dect");
  }
  {
    PDectOptions o;
    o.num_processors = static_cast<int>(rng.UniformInt(2, 4));
    spill.path_prefix = prefix + ".pdect";
    o.spill = &spill;
    ExpectSetStreams(want, PDect(*w.graph, w.sigma, o).vio, repro + " PDect");
  }

  if (!ValidateForIncremental(w.sigma).ok()) return;
  UpdateGenOptions up;
  up.fraction = 0.2;
  up.insert_fraction = 0.5;
  up.seed = seed + 3;
  UpdateBatch batch = GenerateUpdateBatch(w.graph.get(), up);
  ASSERT_TRUE(ApplyUpdateBatch(w.graph.get(), &batch).ok()) << repro;

  IncDectOptions io;
  io.snapshot_mode = SnapshotMode::kNever;
  auto oracle = IncDect(*w.graph, w.sigma, batch, io);
  ASSERT_TRUE(oracle.ok()) << repro;
  const std::vector<Violation> want_add = oracle->added.Sorted();
  const std::vector<Violation> want_rem = oracle->removed.Sorted();

  {
    IncDectOptions o = io;
    spill.path_prefix = prefix + ".inc";
    o.spill = &spill;
    auto inc = IncDect(*w.graph, w.sigma, batch, o);
    ASSERT_TRUE(inc.ok()) << repro;
    ExpectSetStreams(want_add, inc->added, repro + " IncDect ΔVio+");
    ExpectSetStreams(want_rem, inc->removed, repro + " IncDect ΔVio-");
  }
  {
    PIncDectOptions o;
    o.num_processors = static_cast<int>(rng.UniformInt(2, 4));
    spill.path_prefix = prefix + ".pinc";
    o.spill = &spill;
    auto pinc = PIncDect(*w.graph, w.sigma, batch, o);
    ASSERT_TRUE(pinc.ok()) << repro;
    ExpectSetStreams(want_add, pinc->delta.added, repro + " PIncDect ΔVio+");
    ExpectSetStreams(want_rem, pinc->delta.removed, repro + " PIncDect ΔVio-");
  }
}

TEST(VioStreamEngineDifferentialTest, SpilledStreamsMatchSortedOracle) {
  const char* pinned = std::getenv("NGD_SPILL_SEED");
  const VioSpillOptions defaults;
  const struct {
    size_t budget;
    const char* regime;
  } kRegimes[] = {
      {0, "zero"},            // page-floored segments, spills constantly
      {4096, "page"},         // one-page budget
      {defaults.budget_bytes, "default"},  // enabled but never trips
  };
  if (pinned != nullptr) {
    const uint64_t seed = std::strtoull(pinned, nullptr, 10);
    for (const auto& r : kRegimes) RunEngineSpillCase(seed, r.budget, r.regime);
    return;
  }
  const size_t cases = CaseCount();
  for (size_t i = 0; i < cases; ++i) {
    for (const auto& r : kRegimes) {
      RunEngineSpillCase(0xA11CE + i, r.budget, r.regime);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

// ---- 4. violation-heavy acceptance ---------------------------------------

/// ~30 hubs x 200 observations each; the rule pairs every two
/// observations of one hub, so each hub contributes 200^2 ordered pairs:
/// 1.2M violations total, none of which fit an 8 MiB resident budget.
TEST(VioStreamHeavyTest, MillionViolationsStayUnderBudget) {
  const char* heavy = std::getenv("NGD_SPILL_HEAVY");
  if (heavy != nullptr && std::strtol(heavy, nullptr, 10) == 0) {
    GTEST_SKIP() << "NGD_SPILL_HEAVY=0";
  }
  constexpr int kHubs = 30;
  constexpr int kObs = 200;
  SchemaPtr schema = Schema::Create();
  Graph g(schema);
  for (int h = 0; h < kHubs; ++h) {
    const NodeId hub = g.AddNode("hub");
    for (int i = 0; i < kObs; ++i) {
      const NodeId obs = g.AddNode("integer");
      g.SetAttr(obs, "val", Value(int64_t{i}));
      (void)g.AddEdge(hub, obs, "obs");  // fresh nodes: cannot fail
    }
  }
  NgdSet sigma = testing_util::MustParse(R"(
ngd pairwise {
  match (x:hub)-[obs]->(y:integer), (x)-[obs]->(z:integer)
  then y.val - z.val > 1000000
}
)",
                                         schema);
  ASSERT_EQ(sigma.size(), 1u);

  VioSpillOptions spill;
  spill.path_prefix = TempPrefix("heavy");
  spill.budget_bytes = size_t{8} << 20;
  DectOptions o;
  o.spill = &spill;
  VioSet vio = Dect(g, sigma, o);
  const size_t expect =
      size_t{kHubs} * static_cast<size_t>(kObs) * static_cast<size_t>(kObs);
  ASSERT_GE(vio.size(), size_t{1000000});
  ASSERT_EQ(vio.size(), expect);
  EXPECT_GT(vio.num_spill_segments(), 0u);
  EXPECT_LT(vio.peak_resident_bytes(), spill.budget_bytes);
  EXPECT_TRUE(vio.spill_status().ok());

  // Oracle: the same detection fully resident; the stream must reproduce
  // its Sorted() byte-for-byte.
  const std::vector<Violation> want = Dect(g, sigma, DectOptions{}).Sorted();
  ExpectSetStreams(want, vio, "heavy stream");
}

}  // namespace
}  // namespace ngd
