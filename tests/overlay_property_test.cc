// Randomized model-checking of the Graph edge-state overlay.
//
// The overlay (kBase/kInserted/kDeleted with kOld/kNew views) is the
// foundation every incremental result rests on, so it is fuzzed here
// against a trivially-correct reference model: two plain edge sets (old
// view, new view) updated by the same random operation sequence. After
// every operation and after Commit/Rollback the views must agree exactly.

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "graph/graph.h"
#include "util/rng.h"

namespace ngd {
namespace {

using EdgeTuple = std::tuple<NodeId, NodeId, LabelId>;

struct ReferenceModel {
  std::set<EdgeTuple> old_view;
  std::set<EdgeTuple> new_view;
};

class OverlayFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OverlayFuzzTest, ViewsMatchReferenceModel) {
  Rng rng(GetParam());
  SchemaPtr schema = Schema::Create();
  Graph g(schema);
  constexpr int kNodes = 12;
  constexpr int kLabels = 3;
  for (int i = 0; i < kNodes; ++i) g.AddNode("n");
  std::vector<LabelId> labels;
  for (int i = 0; i < kLabels; ++i) {
    labels.push_back(schema->InternLabel("e" + std::to_string(i)));
  }

  ReferenceModel ref;
  auto check = [&](const char* when, int step) {
    for (NodeId s = 0; s < kNodes; ++s) {
      for (NodeId d = 0; d < kNodes; ++d) {
        for (LabelId l : labels) {
          EdgeTuple key{s, d, l};
          ASSERT_EQ(g.HasEdge(s, d, l, GraphView::kOld),
                    ref.old_view.count(key) > 0)
              << when << " step " << step << " old view edge " << s << "->"
              << d;
          ASSERT_EQ(g.HasEdge(s, d, l, GraphView::kNew),
                    ref.new_view.count(key) > 0)
              << when << " step " << step << " new view edge " << s << "->"
              << d;
        }
      }
    }
    ASSERT_EQ(g.NumEdges(GraphView::kOld), ref.old_view.size());
    ASSERT_EQ(g.NumEdges(GraphView::kNew), ref.new_view.size());
  };

  // Seed some base edges.
  for (int i = 0; i < 20; ++i) {
    NodeId s = static_cast<NodeId>(rng.UniformInt(0, kNodes - 1));
    NodeId d = static_cast<NodeId>(rng.UniformInt(0, kNodes - 1));
    LabelId l = rng.PickFrom(labels);
    if (s == d) continue;
    if (g.AddEdge(s, d, l).ok()) {
      ref.old_view.insert({s, d, l});
      ref.new_view.insert({s, d, l});
    }
  }
  check("after seeding", -1);

  for (int step = 0; step < 300; ++step) {
    NodeId s = static_cast<NodeId>(rng.UniformInt(0, kNodes - 1));
    NodeId d = static_cast<NodeId>(rng.UniformInt(0, kNodes - 1));
    LabelId l = rng.PickFrom(labels);
    EdgeTuple key{s, d, l};
    int op = static_cast<int>(rng.UniformInt(0, 9));
    if (op < 4) {
      // InsertEdge: succeeds iff absent from the new view.
      bool expect_ok = ref.new_view.count(key) == 0 && s < kNodes &&
                       d < kNodes;
      Status st = g.InsertEdge(s, d, l);
      ASSERT_EQ(st.ok(), expect_ok) << st.ToString();
      if (st.ok()) ref.new_view.insert(key);
    } else if (op < 8) {
      // DeleteEdge: succeeds iff present in the new view.
      bool expect_ok = ref.new_view.count(key) > 0;
      Status st = g.DeleteEdge(s, d, l);
      ASSERT_EQ(st.ok(), expect_ok) << st.ToString();
      if (st.ok()) ref.new_view.erase(key);
    } else if (op == 8) {
      g.Commit();
      ref.old_view = ref.new_view;
    } else {
      g.Rollback();
      ref.new_view = ref.old_view;
    }
    check("after op", step);
  }

  // Terminal commit must leave a consistent, overlay-free graph.
  g.Commit();
  ref.old_view = ref.new_view;
  EXPECT_FALSE(g.HasPendingUpdate());
  check("after final commit", 301);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OverlayFuzzTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// Adjacency-list consistency under the same fuzz: every edge visible in a
// view must appear in both endpoint adjacency lists with the right state.
TEST(OverlayAdjacencyTest, AdjacencyMirrorsEdgeIndex) {
  Rng rng(99);
  SchemaPtr schema = Schema::Create();
  Graph g(schema);
  for (int i = 0; i < 10; ++i) g.AddNode("n");
  LabelId l = schema->InternLabel("e");
  for (int step = 0; step < 200; ++step) {
    NodeId s = static_cast<NodeId>(rng.UniformInt(0, 9));
    NodeId d = static_cast<NodeId>(rng.UniformInt(0, 9));
    if (s == d) continue;
    // Random ops legitimately fail (duplicate insert, missing delete);
    // the property under test only cares about the surviving edge set.
    switch (rng.UniformInt(0, 3)) {
      case 0:
        (void)g.AddEdge(s, d, l);
        break;
      case 1:
        (void)g.InsertEdge(s, d, l);
        break;
      case 2:
        (void)g.DeleteEdge(s, d, l);
        break;
      default:
        if (rng.Bernoulli(0.5)) {
          g.Commit();
        } else {
          g.Rollback();
        }
    }
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      for (const auto& e : g.OutEdges(v)) {
        auto state = g.EdgeStateOf(v, e.other, e.label);
        ASSERT_TRUE(state.has_value());
        ASSERT_EQ(*state, e.state);
        // The mirror entry exists in the in-list with the same state.
        bool found = false;
        for (const auto& in : g.InEdges(e.other)) {
          if (in.other == v && in.label == e.label) {
            ASSERT_EQ(in.state, e.state);
            found = true;
          }
        }
        ASSERT_TRUE(found);
      }
    }
  }
}

}  // namespace
}  // namespace ngd
