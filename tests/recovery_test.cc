// Crash-recovery property tests under fault injection (util/failpoint.h
// + graph/update_log.h).
//
// The durability contract: a process following the journal protocol
// (mutate -> Append -> Sync -> Commit, with RotateState compaction) may
// die at ANY IO failpoint — mid snapshot write, mid append, at an fsync,
// inside rotation — and recovery must converge to a consistent epoch
// boundary:
//
//   * RecoverState never fails on post-crash state (torn tails are
//     truncated, a half-written atomic replace leaves the old file);
//   * the recovered epoch k lies in [last synced, last appended];
//   * the recovered graph is bit-identical (snapshot fingerprint) to the
//     never-crashed oracle at epoch k, and Dect reports identical
//     violations on both.
//
// The sweep arms a kill at every failpoint traversal of the workload
// (counted by a clean instrumented run), once per crash mode. The
// randomized tail draws seeds/crash points per NGD_RECOVERY_CASES
// (sanitizer CI runs a reduced count). `ctest -L recovery` runs this
// suite with update_log_test.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "detect/dect.h"
#include "discovery/ngd_generator.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/snapshot.h"
#include "graph/snapshot_io.h"
#include "graph/update_log.h"
#include "graph/updates.h"
#include "util/failpoint.h"

namespace ngd {
namespace {

size_t CaseCount() {
  const char* env = std::getenv("NGD_RECOVERY_CASES");
  if (env != nullptr) {
    const long n = std::strtol(env, nullptr, 10);
    if (n > 0) return static_cast<size_t>(n);
  }
  return 8;
}

constexpr int kEpochs = 5;
constexpr int kRotateAfter = 2;  // RotateState after this epoch commits

uint64_t Fingerprint(const Graph& g) {
  return SnapshotFingerprint(GraphSnapshot(g, GraphView::kNew));
}

std::string TestPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void RemoveStateFiles(const std::string& snap, const std::string& wal) {
  for (const std::string& p : {snap, wal, snap + ".tmp", wal + ".tmp"}) {
    std::remove(p.c_str());
  }
}

std::unique_ptr<Graph> BuildBase(SchemaPtr schema, uint64_t seed) {
  return GenerateGraph(SyntheticConfig(60, 150, seed), schema);
}

UpdateBatch NextBatch(Graph* g, uint64_t seed, int epoch) {
  UpdateGenOptions up;
  up.fraction = 0.08;
  up.insert_fraction = 0.6;
  up.new_node_prob = 0.2;
  up.seed = seed * 1000 + static_cast<uint64_t>(epoch);
  return GenerateUpdateBatch(g, up);
}

/// What became durable before the (possible) crash. `synced` counts
/// epochs whose Sync returned OK; `appended` epochs whose Append returned
/// OK (their bytes may be on disk even if the later Sync failed).
struct WorkloadOutcome {
  bool crashed = false;
  bool snapshot_durable = false;
  uint64_t appended = 0;
  uint64_t synced = 0;
};

/// The crash-prone workload: save the base snapshot, journal kEpochs
/// batches, rotate once in the middle. Every IO error is treated as the
/// process dying right there — in-memory state is abandoned and only the
/// files survive.
WorkloadOutcome RunWorkload(const std::string& snap_path,
                            const std::string& wal_path, uint64_t seed) {
  WorkloadOutcome out;
  SchemaPtr schema = Schema::Create();
  std::unique_ptr<Graph> g = BuildBase(schema, seed);
  if (!SaveSnapshotFile(GraphSnapshot(*g, GraphView::kNew), snap_path).ok()) {
    out.crashed = true;
    return out;
  }
  out.snapshot_durable = true;
  auto wal_or = UpdateLog::Create(wal_path, 0);
  if (!wal_or.ok()) {
    out.crashed = true;
    return out;
  }
  std::unique_ptr<UpdateLog> wal = std::move(*wal_or);
  for (int e = 1; e <= kEpochs; ++e) {
    const NodeId first_new = static_cast<NodeId>(g->NumNodes());
    UpdateBatch batch = NextBatch(g.get(), seed, e);
    EXPECT_TRUE(ApplyUpdateBatch(g.get(), &batch).ok());  // in-memory
    const EpochRecord rec =
        EpochRecord::Capture(*g, batch, first_new, wal->last_epoch() + 1);
    if (!wal->Append(rec).ok()) {
      out.crashed = true;
      return out;
    }
    out.appended = static_cast<uint64_t>(e);
    if (!wal->Sync().ok()) {
      out.crashed = true;
      return out;
    }
    out.synced = static_cast<uint64_t>(e);
    g->Commit();
    if (e == kRotateAfter && !RotateState(*g, snap_path, &wal).ok()) {
      out.crashed = true;
      return out;
    }
  }
  return out;
}

/// The never-crashed oracle at epoch k: the same seeds replayed in
/// memory. Batch generation only depends on prior committed epochs, so
/// the crashed run saw these exact batches.
std::unique_ptr<Graph> OracleAt(uint64_t seed, uint64_t k,
                                SchemaPtr* schema_out = nullptr) {
  SchemaPtr schema = Schema::Create();
  std::unique_ptr<Graph> g = BuildBase(schema, seed);
  for (uint64_t e = 1; e <= k; ++e) {
    UpdateBatch batch = NextBatch(g.get(), seed, static_cast<int>(e));
    EXPECT_TRUE(ApplyUpdateBatch(g.get(), &batch).ok());
    g->Commit();
  }
  if (schema_out != nullptr) *schema_out = schema;
  return g;
}

NgdSet SigmaFor(const Graph& base, uint64_t seed) {
  NgdGenOptions gen;
  gen.count = 5;
  gen.max_diameter = 2;
  gen.seed = seed + 17;
  gen.violation_rate = 0.5;
  return GenerateNgdSet(base, gen);
}

std::string VioBytes(const VioSet& vio, const NgdSet& sigma) {
  std::ostringstream os;
  for (const Violation& v : vio.Sorted()) {
    os << sigma[v.ngd_index].name() << ":";
    for (NodeId n : v.nodes) os << " " << n;
    os << "\n";
  }
  return os.str();
}

struct OracleState {
  uint64_t fingerprint = 0;
  std::string vio;
};

/// Checks one post-crash recovery against the oracle. `oracles` caches
/// per-epoch oracle states across sweep iterations.
void CheckRecovery(const std::string& snap_path, const std::string& wal_path,
                   uint64_t seed, const WorkloadOutcome& run,
                   const NgdSet& sigma,
                   std::map<uint64_t, OracleState>* oracles,
                   const std::string& what) {
  auto rec = RecoverState(snap_path, wal_path, Schema::Create());
  ASSERT_TRUE(rec.ok()) << what << ": " << rec.status().ToString();
  if (!run.snapshot_durable) {
    // The base snapshot never hit the disk; there is nothing to recover.
    EXPECT_FALSE(rec->snapshot_loaded) << what;
    EXPECT_EQ(rec->graph->NumNodes(), 0u) << what;
    return;
  }
  // The recovered epoch is a consistent boundary between the last synced
  // epoch (guaranteed durable) and the last appended one (bytes possibly
  // on disk when only the fsync failed).
  EXPECT_GE(rec->last_epoch, run.synced) << what;
  EXPECT_LE(rec->last_epoch, std::max(run.appended, run.synced)) << what;
  auto it = oracles->find(rec->last_epoch);
  if (it == oracles->end()) {
    std::unique_ptr<Graph> oracle = OracleAt(seed, rec->last_epoch);
    OracleState st;
    st.fingerprint = Fingerprint(*oracle);
    st.vio = VioBytes(Dect(*oracle, sigma), sigma);
    it = oracles->emplace(rec->last_epoch, std::move(st)).first;
  }
  EXPECT_EQ(Fingerprint(*rec->graph), it->second.fingerprint) << what;
  EXPECT_EQ(VioBytes(Dect(*rec->graph, sigma), sigma), it->second.vio)
      << what;
}

// ---- The kill-at-every-failpoint sweep ------------------------------------

TEST(RecoveryTest, KillAtEveryFailpointConvergesToTheOracle) {
  const std::string snap_path = TestPath("recovery_sweep.ngds");
  const std::string wal_path = TestPath("recovery_sweep.wal");
  const uint64_t seed = 31;

  // Clean instrumented run: counts the failpoint traversals to kill at.
  RemoveStateFiles(snap_path, wal_path);
  failpoint::Reset();
  failpoint::Enable(true);
  const WorkloadOutcome clean = RunWorkload(snap_path, wal_path, seed);
  const uint64_t total = failpoint::Traversals();
  failpoint::Reset();
  ASSERT_FALSE(clean.crashed);
  ASSERT_EQ(clean.synced, static_cast<uint64_t>(kEpochs));
  ASSERT_GT(total, 0u);

  SchemaPtr sigma_schema;
  std::unique_ptr<Graph> base = OracleAt(seed, 0, &sigma_schema);
  const NgdSet sigma = SigmaFor(*base, seed);
  ASSERT_FALSE(sigma.empty());

  std::map<uint64_t, OracleState> oracles;
  const failpoint::Mode kCrashModes[] = {
      failpoint::Mode::kShortWrite, failpoint::Mode::kTornWrite,
      failpoint::Mode::kEnospc, failpoint::Mode::kSyncFail};
  for (failpoint::Mode mode : kCrashModes) {
    for (uint64_t n = 1; n <= total; ++n) {
      RemoveStateFiles(snap_path, wal_path);
      failpoint::Reset();
      failpoint::ArmNth(mode, n);
      const WorkloadOutcome run = RunWorkload(snap_path, wal_path, seed);
      failpoint::Reset();
      ASSERT_TRUE(run.crashed)
          << failpoint::ModeName(mode) << " at traversal " << n
          << " did not fire";
      std::ostringstream what;
      what << failpoint::ModeName(mode) << " at traversal " << n;
      CheckRecovery(snap_path, wal_path, seed, run, sigma, &oracles,
                    what.str());
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
  RemoveStateFiles(snap_path, wal_path);
}

// ---- Per-site arming -------------------------------------------------------

// Every NGD_FAILPOINT site on the journal/snapshot path must be
// individually armable, surface its injected failure as a Status, and
// leave state recovery can converge from. ngdlint enforces that each
// site string is named by at least one test; this is that test for the
// durability sites (vioseg_write lives in vio_stream_test, and
// fragment_write in fragment_dect_test).
TEST(RecoveryTest, EveryDurabilitySiteFiresAndRecovers) {
  const std::string snap_path = TestPath("recovery_site.ngds");
  const std::string wal_path = TestPath("recovery_site.wal");
  const uint64_t seed = 7;

  SchemaPtr sigma_schema;
  std::unique_ptr<Graph> base = OracleAt(seed, 0, &sigma_schema);
  const NgdSet sigma = SigmaFor(*base, seed);

  std::map<uint64_t, OracleState> oracles;
  for (const char* site : {"snapshot_write", "wal_create", "wal_append",
                           "wal_sync", "rotate_snapshot"}) {
    RemoveStateFiles(snap_path, wal_path);
    failpoint::Reset();
    failpoint::ArmSite(site, failpoint::Mode::kEnospc);
    const WorkloadOutcome run = RunWorkload(snap_path, wal_path, seed);
    failpoint::Reset();
    ASSERT_TRUE(run.crashed)
        << "site " << site << " is not on the workload's path";
    CheckRecovery(snap_path, wal_path, seed, run, sigma, &oracles, site);
    if (::testing::Test::HasFatalFailure()) return;
  }
  RemoveStateFiles(snap_path, wal_path);
}

// ---- Randomized seeds and crash points ------------------------------------

TEST(RecoveryTest, RandomizedCrashesConvergeAcrossWorkloads) {
  const size_t cases = CaseCount();
  const failpoint::Mode kCrashModes[] = {
      failpoint::Mode::kShortWrite, failpoint::Mode::kTornWrite,
      failpoint::Mode::kEnospc, failpoint::Mode::kSyncFail};
  for (size_t c = 0; c < cases; ++c) {
    const uint64_t seed = 4000 + 13 * c;
    const std::string snap_path =
        TestPath("recovery_rand_" + std::to_string(c) + ".ngds");
    const std::string wal_path =
        TestPath("recovery_rand_" + std::to_string(c) + ".wal");

    RemoveStateFiles(snap_path, wal_path);
    failpoint::Reset();
    failpoint::Enable(true);
    const WorkloadOutcome clean = RunWorkload(snap_path, wal_path, seed);
    const uint64_t total = failpoint::Traversals();
    failpoint::Reset();
    ASSERT_FALSE(clean.crashed) << "case " << c;
    ASSERT_GT(total, 0u);

    std::unique_ptr<Graph> base = OracleAt(seed, 0);
    const NgdSet sigma = SigmaFor(*base, seed);

    std::map<uint64_t, OracleState> oracles;
    // A seed-derived crash point per mode, spread over the traversals.
    for (size_t m = 0; m < 4; ++m) {
      const uint64_t n = 1 + (seed * 7 + m * 5) % total;
      RemoveStateFiles(snap_path, wal_path);
      failpoint::Reset();
      failpoint::ArmNth(kCrashModes[m], n);
      const WorkloadOutcome run = RunWorkload(snap_path, wal_path, seed);
      failpoint::Reset();
      ASSERT_TRUE(run.crashed) << "case " << c << " mode " << m;
      std::ostringstream what;
      what << "case " << c << ": " << failpoint::ModeName(kCrashModes[m])
           << " at traversal " << n;
      CheckRecovery(snap_path, wal_path, seed, run, sigma, &oracles,
                    what.str());
      if (::testing::Test::HasFatalFailure()) return;
    }
    RemoveStateFiles(snap_path, wal_path);
  }
}

// ---- Double faults: crash during recovery's own repair --------------------

TEST(RecoveryTest, RecoveryAfterTornTailRepairCrashIsStillConsistent) {
  // Open() repairs a torn tail by ftruncate. If the process dies right
  // after the repair (or the repair itself is interrupted before the
  // truncate), the NEXT recovery sees either the torn file again or the
  // repaired one — both converge. Simulate by recovering twice.
  const std::string snap_path = TestPath("recovery_double.ngds");
  const std::string wal_path = TestPath("recovery_double.wal");
  const uint64_t seed = 77;
  RemoveStateFiles(snap_path, wal_path);

  failpoint::Reset();
  // Torn write on the very last append of the workload.
  failpoint::ArmSite("wal_append", failpoint::Mode::kTornWrite,
                     /*skip=*/kEpochs - 1);
  const WorkloadOutcome run = RunWorkload(snap_path, wal_path, seed);
  failpoint::Reset();
  ASSERT_TRUE(run.crashed);
  ASSERT_EQ(run.synced, static_cast<uint64_t>(kEpochs - 1));

  auto first = RecoverState(snap_path, wal_path, Schema::Create());
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto second = RecoverState(snap_path, wal_path, Schema::Create());
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(first->last_epoch, second->last_epoch);
  EXPECT_EQ(Fingerprint(*first->graph), Fingerprint(*second->graph));
  EXPECT_EQ(first->last_epoch, static_cast<uint64_t>(kEpochs - 1));
  RemoveStateFiles(snap_path, wal_path);
}

}  // namespace
}  // namespace ngd
