#include <gtest/gtest.h>

#include "core/parser.h"
#include "detect/inc_dect.h"
#include "graph/generators.h"
#include "graph/updates.h"

namespace ngd {
namespace {

TEST(UpdatesTest, GeneratesRequestedFraction) {
  SchemaPtr schema = Schema::Create();
  auto g = GenerateGraph(SyntheticConfig(1000, 3000, 7), schema);
  size_t edges = g->NumEdges(GraphView::kNew);
  UpdateGenOptions opts;
  opts.fraction = 0.10;
  opts.seed = 1;
  UpdateBatch batch = GenerateUpdateBatch(g.get(), opts);
  // Within 20% of the target (insert rewires can be skipped on conflicts).
  EXPECT_GT(batch.size(), static_cast<size_t>(0.07 * edges));
  EXPECT_LE(batch.size(), static_cast<size_t>(0.12 * edges));
}

TEST(UpdatesTest, InsertDeleteRatio) {
  SchemaPtr schema = Schema::Create();
  auto g = GenerateGraph(SyntheticConfig(1000, 3000, 7), schema);
  UpdateGenOptions opts;
  opts.fraction = 0.2;
  opts.insert_fraction = 0.5;
  opts.seed = 2;
  UpdateBatch batch = GenerateUpdateBatch(g.get(), opts);
  double ratio = static_cast<double>(batch.NumInsertions()) /
                 std::max<size_t>(1, batch.NumDeletions());
  EXPECT_GT(ratio, 0.7);
  EXPECT_LT(ratio, 1.3);
}

TEST(UpdatesTest, DeletionsReferenceExistingBaseEdges) {
  SchemaPtr schema = Schema::Create();
  auto g = GenerateGraph(SyntheticConfig(300, 900, 7), schema);
  UpdateGenOptions opts;
  opts.fraction = 0.3;
  opts.seed = 3;
  UpdateBatch batch = GenerateUpdateBatch(g.get(), opts);
  for (const auto& u : batch.updates) {
    if (u.kind == UpdateKind::kDelete) {
      EXPECT_TRUE(g->HasEdge(u.src, u.dst, u.label, GraphView::kOld));
    }
  }
}

TEST(UpdatesTest, ApplyCreatesOverlayAndFiltersNoOps) {
  SchemaPtr schema = Schema::Create();
  Graph g(schema);
  NodeId a = g.AddNode("a"), b = g.AddNode("b"), c = g.AddNode("c");
  LabelId l = schema->InternLabel("e");
  ASSERT_TRUE(g.AddEdge(a, b, l).ok());

  UpdateBatch batch;
  batch.updates.push_back({UpdateKind::kInsert, b, c, l});
  batch.updates.push_back({UpdateKind::kInsert, a, b, l});  // no-op: exists
  batch.updates.push_back({UpdateKind::kDelete, a, c, l});  // no-op: absent
  batch.updates.push_back({UpdateKind::kDelete, a, b, l});
  ASSERT_TRUE(ApplyUpdateBatch(&g, &batch).ok());
  EXPECT_EQ(batch.size(), 2u);  // the two no-ops were dropped
  EXPECT_TRUE(g.HasEdge(b, c, l, GraphView::kNew));
  EXPECT_FALSE(g.HasEdge(a, b, l, GraphView::kNew));
  EXPECT_TRUE(g.HasEdge(a, b, l, GraphView::kOld));
}

TEST(UpdatesTest, PartialFailureLeavesBatchEqualToOverlay) {
  // The documented contract: on a mid-batch failure the applied prefix
  // stays applied AND the batch is truncated to exactly that prefix, so
  // `batch` always describes the overlay on `g` — running IncDect on it
  // or rolling back are both sound. The out-of-range endpoint in the
  // middle is a real error (kInvalidArgument), not a droppable no-op.
  SchemaPtr schema = Schema::Create();
  Graph g(schema);
  NodeId a = g.AddNode("a"), b = g.AddNode("b"), c = g.AddNode("c");
  LabelId l = schema->InternLabel("e");
  ASSERT_TRUE(g.AddEdge(a, b, l).ok());

  UpdateBatch batch;
  batch.updates.push_back({UpdateKind::kInsert, b, c, l});
  batch.updates.push_back({UpdateKind::kInsert, a, c, l});
  batch.updates.push_back({UpdateKind::kInsert, a, kInvalidNode, l});  // bad
  batch.updates.push_back({UpdateKind::kDelete, a, b, l});  // never reached

  size_t failed_record = 0;
  Status s = ApplyUpdateBatch(&g, &batch, &failed_record);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(failed_record, 2u);

  // The batch now holds exactly the applied prefix...
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch.updates[0].dst, c);
  EXPECT_EQ(batch.updates[1].src, a);
  // ...and the overlay matches it record for record.
  EXPECT_TRUE(g.HasEdge(b, c, l, GraphView::kNew));
  EXPECT_TRUE(g.HasEdge(a, c, l, GraphView::kNew));
  EXPECT_TRUE(g.HasEdge(a, b, l, GraphView::kNew));  // delete never ran
  EXPECT_TRUE(g.HasPendingUpdate());

  // Rollback restores the pre-batch graph, as the contract promises.
  g.Rollback();
  EXPECT_FALSE(g.HasPendingUpdate());
  EXPECT_FALSE(g.HasEdge(b, c, l, GraphView::kNew));
  EXPECT_TRUE(g.HasEdge(a, b, l, GraphView::kNew));
}

TEST(UpdatesTest, PartialFailurePrefixIsDetectable) {
  // The truncated prefix is a well-formed batch: incremental detection
  // over it agrees with batch recomputation, instead of the pre-fix
  // half-checked state (overlay ahead of the batch description).
  SchemaPtr schema = Schema::Create();
  Graph g(schema);
  LabelId n = schema->InternLabel("n");
  LabelId e = schema->InternLabel("e");
  AttrId v = schema->InternAttr("v");
  NodeId a = g.AddNode(n), b = g.AddNode(n);
  g.SetAttr(a, v, Value(int64_t{10}));
  g.SetAttr(b, v, Value(int64_t{5}));

  UpdateBatch batch;
  batch.updates.push_back({UpdateKind::kInsert, a, b, e});   // violating
  batch.updates.push_back({UpdateKind::kInsert, kInvalidNode, b, e});
  ASSERT_FALSE(ApplyUpdateBatch(&g, &batch).ok());
  ASSERT_EQ(batch.size(), 1u);

  auto rules =
      ParseNgds("ngd r { match (x:n)-[e]->(y:n) then x.v <= y.v }", schema);
  ASSERT_TRUE(rules.ok());
  auto delta = IncDect(g, *rules, batch);
  ASSERT_TRUE(delta.ok()) << delta.status().ToString();
  EXPECT_EQ(delta->added.size(), 1u);
  EXPECT_TRUE(delta->added.Contains(Violation{0, {a, b}}));
}

TEST(UpdatesTest, NewNodeInsertionsCloneLabelAndAttrs) {
  SchemaPtr schema = Schema::Create();
  auto g = GenerateGraph(SyntheticConfig(200, 600, 7), schema);
  size_t nodes_before = g->NumNodes();
  UpdateGenOptions opts;
  opts.fraction = 0.5;
  opts.insert_fraction = 1.0;
  opts.new_node_prob = 1.0;  // every insertion creates a node
  opts.seed = 4;
  UpdateBatch batch = GenerateUpdateBatch(g.get(), opts);
  EXPECT_GT(g->NumNodes(), nodes_before);
  EXPECT_GT(batch.NumInsertions(), 0u);
  EXPECT_EQ(batch.NumDeletions(), 0u);
  // New nodes carry attributes (cloned shape).
  bool found_attr = false;
  for (NodeId v = static_cast<NodeId>(nodes_before); v < g->NumNodes(); ++v) {
    if (!g->Attrs(v).empty()) found_attr = true;
  }
  EXPECT_TRUE(found_attr);
}

TEST(UpdatesTest, GammaBiasControlsGrowth) {
  SchemaPtr schema = Schema::Create();
  auto g = GenerateGraph(SyntheticConfig(500, 1500, 7), schema);
  UpdateGenOptions opts;
  opts.fraction = 0.2;
  opts.insert_fraction = 0.9;  // γ = 9: mostly insertions
  opts.seed = 5;
  UpdateBatch batch = GenerateUpdateBatch(g.get(), opts);
  EXPECT_GT(batch.NumInsertions(), batch.NumDeletions() * 4);
}

TEST(UpdatesTest, GeneratedInsertionsApplyCleanly) {
  SchemaPtr schema = Schema::Create();
  auto g = GenerateGraph(SyntheticConfig(400, 1200, 7), schema);
  size_t before_new = g->NumEdges(GraphView::kNew);
  UpdateGenOptions opts;
  opts.fraction = 0.15;
  opts.seed = 6;
  UpdateBatch batch = GenerateUpdateBatch(g.get(), opts);
  size_t declared = batch.size();
  ASSERT_TRUE(ApplyUpdateBatch(g.get(), &batch).ok());
  // Most generated updates are effective (duplicates within the batch are
  // the only shrink source).
  EXPECT_GE(batch.size(), declared * 9 / 10);
  size_t after_new = g->NumEdges(GraphView::kNew);
  EXPECT_EQ(after_new,
            before_new + batch.NumInsertions() - batch.NumDeletions());
}

}  // namespace
}  // namespace ngd
