#include <gtest/gtest.h>

#include "detect/dect.h"
#include "detect/inc_dect.h"
#include "test_util.h"

namespace ngd {
namespace {

using testing_util::BuildG4;
using testing_util::MustParse;

class IncDectTest : public ::testing::Test {
 protected:
  IncDectTest() : schema_(Schema::Create()), g_(schema_) {
    n_ = schema_->InternLabel("n");
    e_ = schema_->InternLabel("e");
    v_ = schema_->InternAttr("v");
    rules_ = MustParse("ngd r { match (x:n)-[e]->(y:n) then x.v <= y.v }",
                       schema_);
  }

  NodeId AddValueNode(int64_t value) {
    NodeId id = g_.AddNode(n_);
    g_.SetAttr(id, v_, Value(value));
    return id;
  }

  SchemaPtr schema_;
  Graph g_;
  LabelId n_, e_;
  AttrId v_;
  NgdSet rules_;
};

TEST_F(IncDectTest, InsertionIntroducesViolation) {
  NodeId a = AddValueNode(10), b = AddValueNode(5);
  UpdateBatch batch;
  batch.updates.push_back({UpdateKind::kInsert, a, b, e_});
  ASSERT_TRUE(ApplyUpdateBatch(&g_, &batch).ok());
  auto delta = IncDect(g_, rules_, batch);
  ASSERT_TRUE(delta.ok()) << delta.status().ToString();
  EXPECT_EQ(delta->added.size(), 1u);
  EXPECT_TRUE(delta->removed.empty());
  EXPECT_TRUE(delta->added.Contains(Violation{0, {a, b}}));
}

TEST_F(IncDectTest, InsertionOfCleanEdgeAddsNothing) {
  NodeId a = AddValueNode(5), b = AddValueNode(10);
  UpdateBatch batch;
  batch.updates.push_back({UpdateKind::kInsert, a, b, e_});
  ASSERT_TRUE(ApplyUpdateBatch(&g_, &batch).ok());
  auto delta = IncDect(g_, rules_, batch);
  ASSERT_TRUE(delta.ok());
  EXPECT_TRUE(delta->empty());
}

TEST_F(IncDectTest, DeletionRemovesViolation) {
  NodeId a = AddValueNode(10), b = AddValueNode(5);
  ASSERT_TRUE(g_.AddEdge(a, b, e_).ok());
  UpdateBatch batch;
  batch.updates.push_back({UpdateKind::kDelete, a, b, e_});
  ASSERT_TRUE(ApplyUpdateBatch(&g_, &batch).ok());
  auto delta = IncDect(g_, rules_, batch);
  ASSERT_TRUE(delta.ok());
  EXPECT_TRUE(delta->added.empty());
  EXPECT_EQ(delta->removed.size(), 1u);
  EXPECT_TRUE(delta->removed.Contains(Violation{0, {a, b}}));
}

TEST_F(IncDectTest, DeletionOfCleanEdgeRemovesNothing) {
  NodeId a = AddValueNode(5), b = AddValueNode(10);
  ASSERT_TRUE(g_.AddEdge(a, b, e_).ok());
  UpdateBatch batch;
  batch.updates.push_back({UpdateKind::kDelete, a, b, e_});
  ASSERT_TRUE(ApplyUpdateBatch(&g_, &batch).ok());
  auto delta = IncDect(g_, rules_, batch);
  ASSERT_TRUE(delta.ok());
  EXPECT_TRUE(delta->empty());
}

TEST_F(IncDectTest, CancelledUpdatesProduceNoDelta) {
  NodeId a = AddValueNode(10), b = AddValueNode(5);
  ASSERT_TRUE(g_.AddEdge(a, b, e_).ok());
  UpdateBatch batch;
  batch.updates.push_back({UpdateKind::kDelete, a, b, e_});
  batch.updates.push_back({UpdateKind::kInsert, a, b, e_});  // reinsert
  ASSERT_TRUE(ApplyUpdateBatch(&g_, &batch).ok());
  auto delta = IncDect(g_, rules_, batch);
  ASSERT_TRUE(delta.ok());
  EXPECT_TRUE(delta->empty()) << "delete+reinsert must cancel out";
}

TEST_F(IncDectTest, MatchWithTwoInsertedEdgesReportedOnce) {
  // Pattern x->y->z; both edges inserted in the same batch.
  NgdSet rules = MustParse(
      "ngd r2 { match (x:n)-[e]->(y:n), (y)-[e]->(z:n) then x.v <= z.v }",
      schema_);
  NodeId a = AddValueNode(10), b = AddValueNode(7), c = AddValueNode(5);
  UpdateBatch batch;
  batch.updates.push_back({UpdateKind::kInsert, a, b, e_});
  batch.updates.push_back({UpdateKind::kInsert, b, c, e_});
  ASSERT_TRUE(ApplyUpdateBatch(&g_, &batch).ok());
  auto delta = IncDect(g_, rules, batch);
  ASSERT_TRUE(delta.ok());
  EXPECT_EQ(delta->added.size(), 1u);
}

TEST_F(IncDectTest, HomomorphicFoldOnPivotEdgeReportedOnce) {
  // Pattern x->y, y->z where both pattern edges can map onto the SAME
  // inserted graph edge via folding (a->a self-loop).
  NgdSet rules = MustParse(
      "ngd r2 { match (x:n)-[e]->(y:n), (y)-[e]->(z:n) then x.v <= z.v }",
      schema_);
  NodeId a = AddValueNode(10);
  // Self-loop insertion: x=y=z=a. x.v <= z.v holds (10 <= 10): clean.
  UpdateBatch batch;
  batch.updates.push_back({UpdateKind::kInsert, a, a, e_});
  ASSERT_TRUE(ApplyUpdateBatch(&g_, &batch).ok());
  auto delta = IncDect(g_, rules, batch);
  ASSERT_TRUE(delta.ok());
  EXPECT_TRUE(delta->empty());

  g_.Commit();
  // Now a violating fold: y.v > z.v impossible on a fold... use a second
  // node with a cycle a->b, b->a and values 10, 5: matches (a,b,a) clean
  // 10<=10, (b,a,b) clean 5<=5, (a,b: x=a,y=b,z=a)... all folds land on
  // x=z so x.v <= z.v always holds. Use x.v < z.v to force violations.
  NgdSet strict = MustParse(
      "ngd r3 { match (x:n)-[e]->(y:n), (y)-[e]->(z:n) then x.v < z.v }",
      schema_);
  NodeId b = AddValueNode(5);
  UpdateBatch batch2;
  batch2.updates.push_back({UpdateKind::kInsert, a, b, e_});
  batch2.updates.push_back({UpdateKind::kInsert, b, a, e_});
  ASSERT_TRUE(ApplyUpdateBatch(&g_, &batch2).ok());
  auto delta2 = IncDect(g_, strict, batch2);
  ASSERT_TRUE(delta2.ok());
  // Violating matches in G ⊕ ΔG using the new edges:
  //   (a,b,a): 10 < 10 false -> violation
  //   (b,a,b): 5 < 5 false  -> violation
  //   (a,a,b) etc. need self-loop a->a which exists from batch 1 (now
  //   base): (a,a,b): 10 < 5 false -> violation (uses inserted a->b);
  //   (b,a,a): uses inserted b->a and base a->a: 5 < 10 true -> clean;
  //   (a,a,a): base only -> not update-driven, and 10 < 10 is false but
  //   it was already a violation before this batch.
  EXPECT_EQ(delta2->added.size(), 3u);
  for (const auto& v : delta2->added.items()) {
    EXPECT_EQ(v.nodes.size(), 3u);
  }
}

TEST_F(IncDectTest, MixedBatchProducesBothDeltas) {
  NodeId a = AddValueNode(10), b = AddValueNode(5);
  NodeId c = AddValueNode(9), d = AddValueNode(3);
  ASSERT_TRUE(g_.AddEdge(a, b, e_).ok());  // existing violation
  UpdateBatch batch;
  batch.updates.push_back({UpdateKind::kDelete, a, b, e_});
  batch.updates.push_back({UpdateKind::kInsert, c, d, e_});
  ASSERT_TRUE(ApplyUpdateBatch(&g_, &batch).ok());
  auto delta = IncDect(g_, rules_, batch);
  ASSERT_TRUE(delta.ok());
  EXPECT_EQ(delta->added.size(), 1u);
  EXPECT_EQ(delta->removed.size(), 1u);
  EXPECT_TRUE(delta->added.Contains(Violation{0, {c, d}}));
  EXPECT_TRUE(delta->removed.Contains(Violation{0, {a, b}}));
}

TEST_F(IncDectTest, LiteralXPreconditionRespected) {
  NgdSet rules = MustParse(
      "ngd r { match (x:n)-[e]->(y:n) where x.v >= 100 then y.v >= 50 }",
      schema_);
  NodeId rich = AddValueNode(200), poor = AddValueNode(10);
  NodeId low = AddValueNode(5);
  UpdateBatch batch;
  batch.updates.push_back({UpdateKind::kInsert, rich, low, e_});
  batch.updates.push_back({UpdateKind::kInsert, poor, low, e_});
  ASSERT_TRUE(ApplyUpdateBatch(&g_, &batch).ok());
  auto delta = IncDect(g_, rules, batch);
  ASSERT_TRUE(delta.ok());
  // Only the rich->low edge satisfies X and violates Y.
  ASSERT_EQ(delta->added.size(), 1u);
  EXPECT_TRUE(delta->added.Contains(Violation{0, {rich, low}}));
}

TEST_F(IncDectTest, RejectsEdgelessPattern) {
  NgdSet rules = MustParse("ngd r { match (x:n) then x.v >= 0 }", schema_);
  UpdateBatch batch;
  auto delta = IncDect(g_, rules, batch);
  ASSERT_FALSE(delta.ok());
  EXPECT_EQ(delta.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(IncDectTest, RejectsDisconnectedPattern) {
  NgdSet rules = MustParse(
      "ngd r { match (x:n)-[e]->(y:n), (a:n)-[e]->(b:n) then x.v <= y.v }",
      schema_);
  ASSERT_EQ(rules.size(), 1u);
  UpdateBatch batch;
  auto delta = IncDect(g_, rules, batch);
  ASSERT_FALSE(delta.ok());
  EXPECT_NE(delta.status().message().find("disconnected"),
            std::string::npos);
}

TEST_F(IncDectTest, EmptyBatchEmptyDelta) {
  AddValueNode(1);
  UpdateBatch batch;
  auto delta = IncDect(g_, rules_, batch);
  ASSERT_TRUE(delta.ok());
  EXPECT_TRUE(delta->empty());
}

TEST_F(IncDectTest, Example6NatWestScenario) {
  // Paper Example 6: deleting the fake account's status edge removes the
  // φ4 violation; inserting a clean helper account adds none.
  testing_util::G4Nodes nodes;
  auto g = BuildG4(&nodes);
  NgdSet rules = MustParse(testing_util::kPhi4, g.schema);

  VioSet before = Dect(*g.graph, rules);
  ASSERT_EQ(before.size(), 1u);

  LabelId status = *g.schema->labels().Find("status");
  UpdateBatch batch;
  batch.updates.push_back(
      {UpdateKind::kDelete, nodes.fake_account, nodes.fake_status, status});
  ASSERT_TRUE(ApplyUpdateBatch(g.graph.get(), &batch).ok());
  auto delta = IncDect(*g.graph, rules, batch);
  ASSERT_TRUE(delta.ok()) << delta.status().ToString();
  EXPECT_TRUE(delta->added.empty());
  EXPECT_EQ(delta->removed.size(), 1u);
  // ΔVio- applied to Vio(Σ, G) leaves the graph clean.
  VioSet after = ApplyDelta(before, *delta);
  EXPECT_TRUE(after.empty());
  g.graph->Commit();
  EXPECT_TRUE(Dect(*g.graph, rules).empty());
}

// ---- UpdateIndex duplicate-suppression edge cases -----------------------
//
// Each scenario runs under both backends (live overlay and DeltaView) and
// asserts the exact ΔVio contents — the observable form of exactly-once
// emission — plus, where the scenario is about pivot canonicality, the
// IsCanonicalPivot tie-break directly.

class IncDectEdgeCaseTest : public IncDectTest {
 protected:
  /// Runs IncDect under the given backend; fails the test on error.
  DeltaVio Delta(const NgdSet& rules, const UpdateBatch& batch,
                 SnapshotMode mode,
                 const GraphSnapshot* base = nullptr) {
    IncDectOptions opts;
    opts.snapshot_mode = mode;
    opts.base_snapshot = base;
    auto delta = IncDect(g_, rules, batch, opts);
    EXPECT_TRUE(delta.ok()) << delta.status().ToString();
    return delta.ok() ? *std::move(delta) : DeltaVio{};
  }
};

TEST_F(IncDectEdgeCaseTest, DeleteThenReinsertSuppressedExactlyOnce) {
  // a->b violates; the batch deletes and reinserts it (net no-op on that
  // edge) while inserting a genuinely new violating edge c->d. The
  // cancelled pair must spawn no pivot at all: ΔVio+ = {(c,d)} exactly,
  // ΔVio- empty — the (a,b) violation neither "removes" nor "re-adds".
  NodeId a = AddValueNode(10), b = AddValueNode(5);
  NodeId c = AddValueNode(9), d = AddValueNode(3);
  ASSERT_TRUE(g_.AddEdge(a, b, e_).ok());
  UpdateBatch batch;
  batch.updates.push_back({UpdateKind::kDelete, a, b, e_});
  batch.updates.push_back({UpdateKind::kInsert, a, b, e_});  // reinsert
  batch.updates.push_back({UpdateKind::kInsert, c, d, e_});
  ASSERT_TRUE(ApplyUpdateBatch(&g_, &batch).ok());

  UpdateIndex index(g_, batch);
  ASSERT_EQ(index.updates().size(), 1u)
      << "delete+reinsert must cancel out of the pivot order";
  EXPECT_FALSE(
      index.IndexOf(UpdateKind::kDelete, EdgeKey{a, b, e_}).has_value());
  EXPECT_FALSE(
      index.IndexOf(UpdateKind::kInsert, EdgeKey{a, b, e_}).has_value());

  for (SnapshotMode mode : {SnapshotMode::kNever, SnapshotMode::kAlways}) {
    DeltaVio delta = Delta(rules_, batch, mode);
    EXPECT_EQ(delta.added.size(), 1u);
    EXPECT_TRUE(delta.added.Contains(Violation{0, {c, d}}));
    EXPECT_TRUE(delta.removed.empty());
  }
}

TEST_F(IncDectEdgeCaseTest, UpdateEdgeMatchedByTwoPatternEdgesOfOneRule) {
  // Pattern (x)-[e]->(y), (x)-[e]->(z): both pattern edges carry the same
  // label, so one inserted edge a->b forms a pivot with each of them, and
  // the folded match h = (a, b, b) maps BOTH pattern edges onto that one
  // update edge. The lexicographic (update, pattern-edge) minimum must
  // make exactly one pivot canonical for it.
  NgdSet rules = MustParse(
      "ngd two { match (x:n)-[e]->(y:n), (x)-[e]->(z:n) then y.v < z.v }",
      schema_);
  NodeId a = AddValueNode(1), b = AddValueNode(5), c = AddValueNode(5);
  ASSERT_TRUE(g_.AddEdge(a, c, e_).ok());
  UpdateBatch batch;
  batch.updates.push_back({UpdateKind::kInsert, a, b, e_});
  ASSERT_TRUE(ApplyUpdateBatch(&g_, &batch).ok());

  UpdateIndex index(g_, batch);
  std::vector<PivotTask> tasks = EnumeratePivotTasks(g_, rules, index);
  ASSERT_EQ(tasks.size(), 2u) << "one pivot per label-compatible edge";

  // The folded match binds y = z = b; pattern edge 0 wins the tie-break.
  Binding folded{a, b, b};
  EXPECT_TRUE(IsCanonicalPivot(g_, rules[0].pattern(), folded, index,
                               UpdateKind::kInsert, /*update_index=*/0,
                               /*pattern_edge=*/0));
  EXPECT_FALSE(IsCanonicalPivot(g_, rules[0].pattern(), folded, index,
                                UpdateKind::kInsert, /*update_index=*/0,
                                /*pattern_edge=*/1));

  // Violations in G ⊕ ΔG using the inserted edge (y.v < z.v must fail):
  //   (a,b,b) 5<5, (a,b,c) 5<5, (a,c,b) 5<5 — and not the pre-existing
  //   (a,c,c). Each exactly once, on both backends.
  for (SnapshotMode mode : {SnapshotMode::kNever, SnapshotMode::kAlways}) {
    DeltaVio delta = Delta(rules, batch, mode);
    EXPECT_EQ(delta.added.size(), 3u);
    EXPECT_TRUE(delta.added.Contains(Violation{0, {a, b, b}}));
    EXPECT_TRUE(delta.added.Contains(Violation{0, {a, b, c}}));
    EXPECT_TRUE(delta.added.Contains(Violation{0, {a, c, b}}));
    EXPECT_TRUE(delta.removed.empty());
  }
}

TEST_F(IncDectEdgeCaseTest, InsertionsOntoBrandNewNodeSeedPivot) {
  // The base snapshot predates the batch, whose insertions attach a node
  // the snapshot has never seen — the pivot seeds at an id beyond
  // base.NumNodes(), reading its label/attrs from the live graph and its
  // adjacency purely from the delta ranges.
  NodeId a = AddValueNode(10);
  GraphSnapshot base(g_, GraphView::kOld);  // before the batch's node
  NodeId fresh = AddValueNode(4);
  ASSERT_GE(fresh, base.NumNodes());
  UpdateBatch batch;
  batch.updates.push_back({UpdateKind::kInsert, a, fresh, e_});
  ASSERT_TRUE(ApplyUpdateBatch(&g_, &batch).ok());

  DeltaVio live = Delta(rules_, batch, SnapshotMode::kNever);
  DeltaVio delta = Delta(rules_, batch, SnapshotMode::kAlways, &base);
  for (const DeltaVio* d : {&live, &delta}) {
    EXPECT_EQ(d->added.size(), 1u);
    EXPECT_TRUE(d->added.Contains(Violation{0, {a, fresh}}));
    EXPECT_TRUE(d->removed.empty());
  }
}

TEST_F(IncDectTest, DeltaMatchesBatchRecomputation) {
  // The defining correctness property, on a hand-built case.
  NodeId a = AddValueNode(10), b = AddValueNode(5), c = AddValueNode(20);
  ASSERT_TRUE(g_.AddEdge(a, b, e_).ok());
  ASSERT_TRUE(g_.AddEdge(b, c, e_).ok());
  VioSet before = Dect(g_, rules_, DectOptions{GraphView::kNew});

  UpdateBatch batch;
  batch.updates.push_back({UpdateKind::kDelete, a, b, e_});
  batch.updates.push_back({UpdateKind::kInsert, c, b, e_});
  ASSERT_TRUE(ApplyUpdateBatch(&g_, &batch).ok());

  auto delta = IncDect(g_, rules_, batch);
  ASSERT_TRUE(delta.ok());
  VioSet incremental = ApplyDelta(before, *delta);
  VioSet batch_after = Dect(g_, rules_, DectOptions{GraphView::kNew});
  EXPECT_EQ(incremental.Sorted().size(), batch_after.Sorted().size());
  for (const auto& v : batch_after.items()) {
    EXPECT_TRUE(incremental.Contains(v));
  }
}

}  // namespace
}  // namespace ngd
