#include <gtest/gtest.h>

#include "detect/dect.h"
#include "detect/inc_dect.h"
#include "test_util.h"

namespace ngd {
namespace {

using testing_util::BuildG4;
using testing_util::MustParse;

class IncDectTest : public ::testing::Test {
 protected:
  IncDectTest() : schema_(Schema::Create()), g_(schema_) {
    n_ = schema_->InternLabel("n");
    e_ = schema_->InternLabel("e");
    v_ = schema_->InternAttr("v");
    rules_ = MustParse("ngd r { match (x:n)-[e]->(y:n) then x.v <= y.v }",
                       schema_);
  }

  NodeId AddValueNode(int64_t value) {
    NodeId id = g_.AddNode(n_);
    g_.SetAttr(id, v_, Value(value));
    return id;
  }

  SchemaPtr schema_;
  Graph g_;
  LabelId n_, e_;
  AttrId v_;
  NgdSet rules_;
};

TEST_F(IncDectTest, InsertionIntroducesViolation) {
  NodeId a = AddValueNode(10), b = AddValueNode(5);
  UpdateBatch batch;
  batch.updates.push_back({UpdateKind::kInsert, a, b, e_});
  ASSERT_TRUE(ApplyUpdateBatch(&g_, &batch).ok());
  auto delta = IncDect(g_, rules_, batch);
  ASSERT_TRUE(delta.ok()) << delta.status().ToString();
  EXPECT_EQ(delta->added.size(), 1u);
  EXPECT_TRUE(delta->removed.empty());
  EXPECT_TRUE(delta->added.Contains(Violation{0, {a, b}}));
}

TEST_F(IncDectTest, InsertionOfCleanEdgeAddsNothing) {
  NodeId a = AddValueNode(5), b = AddValueNode(10);
  UpdateBatch batch;
  batch.updates.push_back({UpdateKind::kInsert, a, b, e_});
  ASSERT_TRUE(ApplyUpdateBatch(&g_, &batch).ok());
  auto delta = IncDect(g_, rules_, batch);
  ASSERT_TRUE(delta.ok());
  EXPECT_TRUE(delta->empty());
}

TEST_F(IncDectTest, DeletionRemovesViolation) {
  NodeId a = AddValueNode(10), b = AddValueNode(5);
  ASSERT_TRUE(g_.AddEdge(a, b, e_).ok());
  UpdateBatch batch;
  batch.updates.push_back({UpdateKind::kDelete, a, b, e_});
  ASSERT_TRUE(ApplyUpdateBatch(&g_, &batch).ok());
  auto delta = IncDect(g_, rules_, batch);
  ASSERT_TRUE(delta.ok());
  EXPECT_TRUE(delta->added.empty());
  EXPECT_EQ(delta->removed.size(), 1u);
  EXPECT_TRUE(delta->removed.Contains(Violation{0, {a, b}}));
}

TEST_F(IncDectTest, DeletionOfCleanEdgeRemovesNothing) {
  NodeId a = AddValueNode(5), b = AddValueNode(10);
  ASSERT_TRUE(g_.AddEdge(a, b, e_).ok());
  UpdateBatch batch;
  batch.updates.push_back({UpdateKind::kDelete, a, b, e_});
  ASSERT_TRUE(ApplyUpdateBatch(&g_, &batch).ok());
  auto delta = IncDect(g_, rules_, batch);
  ASSERT_TRUE(delta.ok());
  EXPECT_TRUE(delta->empty());
}

TEST_F(IncDectTest, CancelledUpdatesProduceNoDelta) {
  NodeId a = AddValueNode(10), b = AddValueNode(5);
  ASSERT_TRUE(g_.AddEdge(a, b, e_).ok());
  UpdateBatch batch;
  batch.updates.push_back({UpdateKind::kDelete, a, b, e_});
  batch.updates.push_back({UpdateKind::kInsert, a, b, e_});  // reinsert
  ASSERT_TRUE(ApplyUpdateBatch(&g_, &batch).ok());
  auto delta = IncDect(g_, rules_, batch);
  ASSERT_TRUE(delta.ok());
  EXPECT_TRUE(delta->empty()) << "delete+reinsert must cancel out";
}

TEST_F(IncDectTest, MatchWithTwoInsertedEdgesReportedOnce) {
  // Pattern x->y->z; both edges inserted in the same batch.
  NgdSet rules = MustParse(
      "ngd r2 { match (x:n)-[e]->(y:n), (y)-[e]->(z:n) then x.v <= z.v }",
      schema_);
  NodeId a = AddValueNode(10), b = AddValueNode(7), c = AddValueNode(5);
  UpdateBatch batch;
  batch.updates.push_back({UpdateKind::kInsert, a, b, e_});
  batch.updates.push_back({UpdateKind::kInsert, b, c, e_});
  ASSERT_TRUE(ApplyUpdateBatch(&g_, &batch).ok());
  auto delta = IncDect(g_, rules, batch);
  ASSERT_TRUE(delta.ok());
  EXPECT_EQ(delta->added.size(), 1u);
}

TEST_F(IncDectTest, HomomorphicFoldOnPivotEdgeReportedOnce) {
  // Pattern x->y, y->z where both pattern edges can map onto the SAME
  // inserted graph edge via folding (a->a self-loop).
  NgdSet rules = MustParse(
      "ngd r2 { match (x:n)-[e]->(y:n), (y)-[e]->(z:n) then x.v <= z.v }",
      schema_);
  NodeId a = AddValueNode(10);
  // Self-loop insertion: x=y=z=a. x.v <= z.v holds (10 <= 10): clean.
  UpdateBatch batch;
  batch.updates.push_back({UpdateKind::kInsert, a, a, e_});
  ASSERT_TRUE(ApplyUpdateBatch(&g_, &batch).ok());
  auto delta = IncDect(g_, rules, batch);
  ASSERT_TRUE(delta.ok());
  EXPECT_TRUE(delta->empty());

  g_.Commit();
  // Now a violating fold: y.v > z.v impossible on a fold... use a second
  // node with a cycle a->b, b->a and values 10, 5: matches (a,b,a) clean
  // 10<=10, (b,a,b) clean 5<=5, (a,b: x=a,y=b,z=a)... all folds land on
  // x=z so x.v <= z.v always holds. Use x.v < z.v to force violations.
  NgdSet strict = MustParse(
      "ngd r3 { match (x:n)-[e]->(y:n), (y)-[e]->(z:n) then x.v < z.v }",
      schema_);
  NodeId b = AddValueNode(5);
  UpdateBatch batch2;
  batch2.updates.push_back({UpdateKind::kInsert, a, b, e_});
  batch2.updates.push_back({UpdateKind::kInsert, b, a, e_});
  ASSERT_TRUE(ApplyUpdateBatch(&g_, &batch2).ok());
  auto delta2 = IncDect(g_, strict, batch2);
  ASSERT_TRUE(delta2.ok());
  // Violating matches in G ⊕ ΔG using the new edges:
  //   (a,b,a): 10 < 10 false -> violation
  //   (b,a,b): 5 < 5 false  -> violation
  //   (a,a,b) etc. need self-loop a->a which exists from batch 1 (now
  //   base): (a,a,b): 10 < 5 false -> violation (uses inserted a->b);
  //   (b,a,a): uses inserted b->a and base a->a: 5 < 10 true -> clean;
  //   (a,a,a): base only -> not update-driven, and 10 < 10 is false but
  //   it was already a violation before this batch.
  EXPECT_EQ(delta2->added.size(), 3u);
  for (const auto& v : delta2->added.items()) {
    EXPECT_EQ(v.nodes.size(), 3u);
  }
}

TEST_F(IncDectTest, MixedBatchProducesBothDeltas) {
  NodeId a = AddValueNode(10), b = AddValueNode(5);
  NodeId c = AddValueNode(9), d = AddValueNode(3);
  ASSERT_TRUE(g_.AddEdge(a, b, e_).ok());  // existing violation
  UpdateBatch batch;
  batch.updates.push_back({UpdateKind::kDelete, a, b, e_});
  batch.updates.push_back({UpdateKind::kInsert, c, d, e_});
  ASSERT_TRUE(ApplyUpdateBatch(&g_, &batch).ok());
  auto delta = IncDect(g_, rules_, batch);
  ASSERT_TRUE(delta.ok());
  EXPECT_EQ(delta->added.size(), 1u);
  EXPECT_EQ(delta->removed.size(), 1u);
  EXPECT_TRUE(delta->added.Contains(Violation{0, {c, d}}));
  EXPECT_TRUE(delta->removed.Contains(Violation{0, {a, b}}));
}

TEST_F(IncDectTest, LiteralXPreconditionRespected) {
  NgdSet rules = MustParse(
      "ngd r { match (x:n)-[e]->(y:n) where x.v >= 100 then y.v >= 50 }",
      schema_);
  NodeId rich = AddValueNode(200), poor = AddValueNode(10);
  NodeId low = AddValueNode(5);
  UpdateBatch batch;
  batch.updates.push_back({UpdateKind::kInsert, rich, low, e_});
  batch.updates.push_back({UpdateKind::kInsert, poor, low, e_});
  ASSERT_TRUE(ApplyUpdateBatch(&g_, &batch).ok());
  auto delta = IncDect(g_, rules, batch);
  ASSERT_TRUE(delta.ok());
  // Only the rich->low edge satisfies X and violates Y.
  ASSERT_EQ(delta->added.size(), 1u);
  EXPECT_TRUE(delta->added.Contains(Violation{0, {rich, low}}));
}

TEST_F(IncDectTest, RejectsEdgelessPattern) {
  NgdSet rules = MustParse("ngd r { match (x:n) then x.v >= 0 }", schema_);
  UpdateBatch batch;
  auto delta = IncDect(g_, rules, batch);
  ASSERT_FALSE(delta.ok());
  EXPECT_EQ(delta.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(IncDectTest, RejectsDisconnectedPattern) {
  NgdSet rules = MustParse(
      "ngd r { match (x:n)-[e]->(y:n), (a:n)-[e]->(b:n) then x.v <= y.v }",
      schema_);
  ASSERT_EQ(rules.size(), 1u);
  UpdateBatch batch;
  auto delta = IncDect(g_, rules, batch);
  ASSERT_FALSE(delta.ok());
  EXPECT_NE(delta.status().message().find("disconnected"),
            std::string::npos);
}

TEST_F(IncDectTest, EmptyBatchEmptyDelta) {
  AddValueNode(1);
  UpdateBatch batch;
  auto delta = IncDect(g_, rules_, batch);
  ASSERT_TRUE(delta.ok());
  EXPECT_TRUE(delta->empty());
}

TEST_F(IncDectTest, Example6NatWestScenario) {
  // Paper Example 6: deleting the fake account's status edge removes the
  // φ4 violation; inserting a clean helper account adds none.
  testing_util::G4Nodes nodes;
  auto g = BuildG4(&nodes);
  NgdSet rules = MustParse(testing_util::kPhi4, g.schema);

  VioSet before = Dect(*g.graph, rules);
  ASSERT_EQ(before.size(), 1u);

  LabelId status = *g.schema->labels().Find("status");
  UpdateBatch batch;
  batch.updates.push_back(
      {UpdateKind::kDelete, nodes.fake_account, nodes.fake_status, status});
  ASSERT_TRUE(ApplyUpdateBatch(g.graph.get(), &batch).ok());
  auto delta = IncDect(*g.graph, rules, batch);
  ASSERT_TRUE(delta.ok()) << delta.status().ToString();
  EXPECT_TRUE(delta->added.empty());
  EXPECT_EQ(delta->removed.size(), 1u);
  // ΔVio- applied to Vio(Σ, G) leaves the graph clean.
  VioSet after = ApplyDelta(before, *delta);
  EXPECT_TRUE(after.empty());
  g.graph->Commit();
  EXPECT_TRUE(Dect(*g.graph, rules).empty());
}

TEST_F(IncDectTest, DeltaMatchesBatchRecomputation) {
  // The defining correctness property, on a hand-built case.
  NodeId a = AddValueNode(10), b = AddValueNode(5), c = AddValueNode(20);
  ASSERT_TRUE(g_.AddEdge(a, b, e_).ok());
  ASSERT_TRUE(g_.AddEdge(b, c, e_).ok());
  VioSet before = Dect(g_, rules_, DectOptions{GraphView::kNew, 0});

  UpdateBatch batch;
  batch.updates.push_back({UpdateKind::kDelete, a, b, e_});
  batch.updates.push_back({UpdateKind::kInsert, c, b, e_});
  ASSERT_TRUE(ApplyUpdateBatch(&g_, &batch).ok());

  auto delta = IncDect(g_, rules_, batch);
  ASSERT_TRUE(delta.ok());
  VioSet incremental = ApplyDelta(before, *delta);
  VioSet batch_after = Dect(g_, rules_, DectOptions{GraphView::kNew, 0});
  EXPECT_EQ(incremental.Sorted().size(), batch_after.Sorted().size());
  for (const auto& v : batch_after.items()) {
    EXPECT_TRUE(incremental.Contains(v));
  }
}

}  // namespace
}  // namespace ngd
