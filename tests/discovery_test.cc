#include <gtest/gtest.h>

#include <set>

#include "detect/dect.h"
#include "detect/inc_dect.h"
#include "discovery/miner.h"
#include "discovery/ngd_generator.h"
#include "graph/error_injector.h"
#include "graph/generators.h"

namespace ngd {
namespace {

// ---- NgdGenerator --------------------------------------------------------------

class NgdGeneratorTest : public ::testing::Test {
 protected:
  NgdGeneratorTest() : schema_(Schema::Create()) {
    graph_ = GenerateGraph(SyntheticConfig(800, 2000, 13), schema_);
  }
  SchemaPtr schema_;
  std::unique_ptr<Graph> graph_;
};

TEST_F(NgdGeneratorTest, ProducesRequestedCount) {
  NgdGenOptions opts;
  opts.count = 30;
  opts.seed = 1;
  NgdSet set = GenerateNgdSet(*graph_, opts);
  EXPECT_EQ(set.size(), 30u);
}

TEST_F(NgdGeneratorTest, AllRulesValidAndIncrementalReady) {
  NgdGenOptions opts;
  opts.count = 40;
  opts.seed = 2;
  NgdSet set = GenerateNgdSet(*graph_, opts);
  EXPECT_TRUE(set.Validate().ok());
  EXPECT_TRUE(ValidateForIncremental(set).ok());
}

TEST_F(NgdGeneratorTest, DiametersWithinRequestedRange) {
  NgdGenOptions opts;
  opts.count = 25;
  opts.min_diameter = 1;
  opts.max_diameter = 4;
  opts.seed = 3;
  NgdSet set = GenerateNgdSet(*graph_, opts);
  for (const auto& ngd : set.ngds()) {
    int d = ngd.pattern().Diameter();
    EXPECT_GE(d, 1);
    EXPECT_LE(d, 6);  // walk may close cycles; stays near the target
  }
  EXPECT_LE(set.MaxDiameter(), 6);
}

TEST_F(NgdGeneratorTest, PatternsAreMostlyDistinct) {
  NgdGenOptions opts;
  opts.count = 40;
  opts.seed = 4;
  NgdSet set = GenerateNgdSet(*graph_, opts);
  std::set<std::string> shapes;
  for (const auto& ngd : set.ngds()) {
    shapes.insert(ngd.pattern().ToString(schema_->labels()));
  }
  // ≥90% distinct patterns, as in §7.
  EXPECT_GE(shapes.size() * 10, set.size() * 9);
}

TEST_F(NgdGeneratorTest, DeterministicForSeed) {
  NgdGenOptions opts;
  opts.count = 10;
  opts.seed = 5;
  NgdSet a = GenerateNgdSet(*graph_, opts);
  NgdSet b = GenerateNgdSet(*graph_, opts);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].ToString(schema_->labels(), schema_->attrs()),
              b[i].ToString(schema_->labels(), schema_->attrs()));
  }
}

TEST_F(NgdGeneratorTest, RulesProduceDetectableViolations) {
  NgdGenOptions opts;
  opts.count = 20;
  opts.seed = 6;
  opts.violation_rate = 0.5;
  NgdSet set = GenerateNgdSet(*graph_, opts);
  VioSet vio = Dect(*graph_, set);
  // Calibrated thresholds guarantee the sampled instances violate for
  // roughly half the rules.
  EXPECT_GT(vio.size(), 0u);
}

// ---- Miner ----------------------------------------------------------------------

TEST(MinerTest, RecoversPlantedSumRule) {
  SchemaPtr schema = Schema::Create();
  Graph g(schema);
  ErrorInjector inj(&g, 31);
  inj.PlantPopulation(60, 0.0);  // clean: female + male = total holds

  MinerOptions opts;
  opts.min_support = 20;
  opts.min_confidence = 1.0;
  opts.max_rules = 200;
  NgdSet mined = DiscoverNgds(g, opts);
  ASSERT_GT(mined.size(), 0u);

  // Some mined rule must be the population-sum dependency: the 4-node
  // fan-out pattern with a sum literal that the clean graph satisfies.
  bool found_sum = false;
  for (const auto& ngd : mined.ngds()) {
    if (ngd.pattern().NumNodes() == 4 && ngd.UsesArithmetic()) {
      found_sum = true;
    }
  }
  EXPECT_TRUE(found_sum);
  // All mined rules hold on the graph they were mined from.
  EXPECT_TRUE(Validate(g, mined));
}

TEST(MinerTest, MinedRulesCatchSubsequentErrors) {
  SchemaPtr schema = Schema::Create();
  Graph g(schema);
  ErrorInjector inj(&g, 37);
  inj.PlantPopulation(50, 0.0);
  MinerOptions opts;
  opts.min_support = 20;
  opts.max_rules = 100;
  NgdSet mined = DiscoverNgds(g, opts);
  ASSERT_TRUE(Validate(g, mined));

  // Now corrupt one motif; mined rules must flag it.
  ErrorInjector inj2(&g, 38);
  inj2.PlantPopulation(5, 1.0);  // all erroneous
  EXPECT_FALSE(Validate(g, mined));
}

TEST(MinerTest, SupportThresholdFiltersRarePatterns) {
  SchemaPtr schema = Schema::Create();
  Graph g(schema);
  ErrorInjector inj(&g, 41);
  inj.PlantPopulation(5, 0.0);  // only 5 instances
  MinerOptions opts;
  opts.min_support = 50;  // above the instance count
  EXPECT_EQ(DiscoverNgds(g, opts).size(), 0u);
}

TEST(MinerTest, ConfidenceThresholdAllowsNoise) {
  SchemaPtr schema = Schema::Create();
  Graph g(schema);
  ErrorInjector inj(&g, 43);
  inj.PlantOlympicNations(80, 0.05);  // 5% noise
  MinerOptions strict;
  strict.min_support = 20;
  strict.min_confidence = 1.0;
  strict.mine_two_edge_patterns = true;
  NgdSet strict_rules = DiscoverNgds(g, strict);
  MinerOptions relaxed = strict;
  relaxed.min_confidence = 0.9;
  NgdSet relaxed_rules = DiscoverNgds(g, relaxed);
  EXPECT_GE(relaxed_rules.size(), strict_rules.size());
}

TEST(MinerTest, RespectsMaxRules) {
  SchemaPtr schema = Schema::Create();
  Graph g(schema);
  ErrorInjector inj(&g, 47);
  inj.PlantPopulation(40, 0.0);
  inj.PlantOlympicNations(40, 0.0);
  MinerOptions opts;
  opts.min_support = 10;
  opts.max_rules = 3;
  EXPECT_LE(DiscoverNgds(g, opts).size(), 3u);
}

}  // namespace
}  // namespace ngd
