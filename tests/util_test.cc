#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <set>

#include "util/rational.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/string_util.h"

namespace ngd {
namespace {

// ---- Status / StatusOr ----------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad rule");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad rule");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad rule");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode c :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kOutOfRange,
        StatusCode::kCorruption, StatusCode::kUnimplemented,
        StatusCode::kInternal, StatusCode::kResourceExhausted}) {
    EXPECT_STRNE(StatusCodeName(c), "Unknown");
  }
}

StatusOr<int> ParsePositive(int v) {
  if (v <= 0) return Status::OutOfRange("not positive");
  return v;
}

TEST(StatusOrTest, HoldsValueOrStatus) {
  StatusOr<int> good = ParsePositive(4);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 4);
  StatusOr<int> bad = ParsePositive(-1);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kOutOfRange);
}

StatusOr<int> UsesAssignOrReturn(int v) {
  NGD_ASSIGN_OR_RETURN(int doubled, ParsePositive(v));
  return doubled * 2;
}

TEST(StatusOrTest, AssignOrReturnMacro) {
  auto ok = UsesAssignOrReturn(3);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 6);
  EXPECT_FALSE(UsesAssignOrReturn(0).ok());
}

// ---- Rng -------------------------------------------------------------------

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool differ = false;
  for (int i = 0; i < 10; ++i) {
    if (a.NextUint64() != b.NextUint64()) differ = true;
  }
  EXPECT_TRUE(differ);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-5, 9);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 9);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.UniformInt(0, 4));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ZipfSkewsTowardLowRanks) {
  Rng rng(5);
  size_t low = 0;
  const size_t trials = 4000;
  for (size_t i = 0; i < trials; ++i) {
    if (rng.Zipf(50, 1.2) < 5) ++low;
  }
  // Uniform would put ~10% in the first 5 ranks; zipf(1.2) far more.
  EXPECT_GT(low, trials / 4);
}

TEST(RngTest, ZipfStaysInRange) {
  Rng rng(5);
  for (size_t n : {size_t{1}, size_t{10}, size_t{100}, size_t{5000}}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.Zipf(n, 0.9), n);
    }
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(42);
  Rng child = a.Fork();
  EXPECT_NE(a.NextUint64(), child.NextUint64());
}

// ---- Rational --------------------------------------------------------------

TEST(RationalTest, NormalizesSignAndGcd) {
  Rational r(6, -4);
  EXPECT_EQ(r.num(), -3);
  EXPECT_EQ(r.den(), 2);
  EXPECT_EQ(Rational(0, 7), Rational(0));
}

TEST(RationalTest, Arithmetic) {
  Rational half(1, 2), third(1, 3);
  EXPECT_EQ(half + third, Rational(5, 6));
  EXPECT_EQ(half - third, Rational(1, 6));
  EXPECT_EQ(half * third, Rational(1, 6));
  EXPECT_EQ(half / third, Rational(3, 2));
  EXPECT_EQ(-half, Rational(-1, 2));
  EXPECT_EQ(Rational(-7, 3).Abs(), Rational(7, 3));
}

TEST(RationalTest, DivisionRoundTripsExactly) {
  // (x / 2) * 2 == x must hold for odd x — the reason evaluation is
  // rational rather than integer-truncating.
  Rational x(7);
  EXPECT_EQ(x / Rational(2) * Rational(2), x);
}

TEST(RationalTest, Comparisons) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_LE(Rational(2, 4), Rational(1, 2));
  EXPECT_GT(Rational(-1, 3), Rational(-1, 2));
  EXPECT_NE(Rational(1, 3), Rational(2, 3));
}

TEST(RationalTest, LargeValueComparisonDoesNotOverflow) {
  Rational big1(int64_t{3037000498}, 1);
  Rational big2(int64_t{3037000499}, 1);
  EXPECT_LT(big1, big2);
  EXPECT_LT(Rational(1, int64_t{1000000007}),
            Rational(2, int64_t{1000000007}));
}

TEST(RationalTest, ToStringAndToInteger) {
  EXPECT_EQ(Rational(5).ToString(), "5");
  EXPECT_EQ(Rational(5, 2).ToString(), "5/2");
  EXPECT_TRUE(Rational(10, 5).IsInteger());
  EXPECT_EQ(Rational(10, 5).ToInteger(), 2);
}

TEST(RationalTest, NormalizeAtInt64Min) {
  // Negating INT64_MIN was signed-overflow UB in 64-bit normalization;
  // these must be exact (and clean under UBSan).
  Rational min_over_one(INT64_MIN, 1);
  EXPECT_EQ(min_over_one.num(), INT64_MIN);
  EXPECT_EQ(min_over_one.den(), 1);

  // den < 0 flips both signs: -INT64_MIN/2 = 2^62 is representable after
  // gcd reduction.
  Rational flipped(INT64_MIN, -2);
  EXPECT_EQ(flipped.num(), int64_t{1} << 62);
  EXPECT_EQ(flipped.den(), 1);

  Rational halved(INT64_MIN, 2);
  EXPECT_EQ(halved.num(), -(int64_t{1} << 62));
  EXPECT_EQ(halved.den(), 1);

  EXPECT_EQ(Rational(INT64_MIN, INT64_MIN), Rational(1));
}

TEST(RationalTest, ArithmeticAtInt64Extremes) {
  // Abs/negation of the most negative representable fraction p/q with
  // q > 1 (INT64_MIN is even, so pair it with an odd denominator).
  Rational r(INT64_MIN + 1, 3);
  EXPECT_EQ((-r).num(), -(INT64_MIN + 1));
  EXPECT_EQ(r.Abs(), -r);

  // Multiplication routes through 128 bits: cross-reduction alone used
  // to leave a silently wrapping 64-bit multiply.
  Rational big(int64_t{1} << 40);
  EXPECT_EQ(big * Rational(int64_t{1} << 22), Rational(int64_t{1} << 62));
  EXPECT_EQ(Rational(INT64_MAX) * Rational(1, INT64_MAX), Rational(1));
  EXPECT_EQ(Rational(INT64_MAX, 2) * Rational(2, INT64_MAX), Rational(1));
  EXPECT_EQ(Rational(INT64_MAX) / Rational(INT64_MAX), Rational(1));

  // (x ÷ 2) × 2 = x at the extremes — the exactness Rational exists for.
  EXPECT_EQ(Rational(INT64_MAX) / 2 * 2, Rational(INT64_MAX));
  EXPECT_EQ(Rational(INT64_MIN) / 2 * 2, Rational(INT64_MIN));

  // Subtraction and division go through exact 128-bit intermediates: a
  // representable result must never abort, even where the negated or
  // reciprocal operand would be unrepresentable on its own.
  EXPECT_EQ(Rational(INT64_MIN) - Rational(INT64_MIN), Rational(0));
  EXPECT_EQ(Rational(INT64_MIN) / Rational(INT64_MIN), Rational(1));
  EXPECT_EQ(Rational(INT64_MIN) / Rational(2), Rational(-(int64_t{1} << 62)));
  EXPECT_EQ(Rational(2) / Rational(INT64_MIN),
            Rational(-1, int64_t{1} << 62));
}

TEST(RationalTest, ToDoubleIsExactOnRepresentableValues) {
  EXPECT_EQ(Rational(0).ToDouble(), 0.0);
  EXPECT_EQ(Rational(1, 2).ToDouble(), 0.5);
  EXPECT_EQ(Rational(-3, 4).ToDouble(), -0.75);
  EXPECT_EQ(Rational(1, 3).ToDouble(), 1.0 / 3.0);
  // Integers up to 2^53 and dyadic fractions are exact by contract.
  EXPECT_EQ(Rational(int64_t{1} << 53).ToDouble(),
            9007199254740992.0);
  EXPECT_EQ(Rational((int64_t{1} << 53) - 1, int64_t{1} << 10).ToDouble(),
            9007199254740991.0 / 1024.0);
  // Sign and magnitude survive at the int64 rim (never overflows).
  EXPECT_EQ(Rational(INT64_MIN).ToDouble(), -9223372036854775808.0);
  EXPECT_GT(Rational(INT64_MAX, 3).ToDouble(), 3.0e18);
}

TEST(RationalTest, ToDoubleHugeNumeratorRegression) {
  // Huge-component quotients: the old double(num)/double(den) rounded
  // each int64 to 53 bits BEFORE dividing, compounding to multi-ulp
  // error. The widest-hardware-float contract requires ≤ 1 ulp of the
  // naive value always, and — where long double carries a 64-bit
  // mantissa (x86-64) — the correctly-rounded quotient itself.
  struct Case {
    int64_t num, den;
  };
  const Case cases[] = {
      {65087388489954841, 5299475676119306768},
      {12344750046124580, 29779593377879467},
      {165921603844198924, 19101073637333688},
      {806883593148498509, 154759624768608863},
      {192279616572508575, 500964903060065220},
      {62060824326624300, 59358982281248434},
      {16018723570806404, 1369904483839597488},
      {751810329574314310, 232059269233279135},
  };
  size_t differs_from_naive = 0;
  for (const Case& c : cases) {
    const Rational r(c.num, c.den);
    const double got = r.ToDouble();
    const double reference = static_cast<double>(
        static_cast<long double>(r.num()) /
        static_cast<long double>(r.den()));
    EXPECT_EQ(got, reference) << c.num << "/" << c.den;
    const double naive = static_cast<double>(r.num()) /
                         static_cast<double>(r.den());
    // Never drift beyond a neighbouring double of the naive quotient.
    EXPECT_LE(std::abs(got - naive),
              std::abs(std::nextafter(naive, got) - naive) +
                  std::abs(naive) * 1e-15)
        << c.num << "/" << c.den;
    if (got != naive) ++differs_from_naive;
  }
  // On a 64-bit-mantissa long double these pairs are the ones where the
  // naive division was off (a few reduce under gcd normalization and
  // coincide again); if the platform's long double is no wider than
  // double the two always coincide and the sweep is vacuous.
  if (static_cast<long double>((int64_t{1} << 60) + 1) !=
      static_cast<long double>(int64_t{1} << 60)) {
    EXPECT_GE(differs_from_naive, 4u);
  }
}

TEST(RationalDeathTest, GuardsStayActiveInReleaseBuilds) {
  // Zero denominators, division by zero, and unrepresentable results are
  // fatal even under NDEBUG — silent wraparound would corrupt detection.
  EXPECT_DEATH(Rational(1, 0), "zero denominator");
  EXPECT_DEATH(Rational(1) / Rational(0), "division by zero");
  EXPECT_DEATH(-Rational(INT64_MIN), "negation overflow");
  EXPECT_DEATH(Rational(INT64_MAX) * Rational(INT64_MAX),
               "multiplication overflow");
  EXPECT_DEATH(Rational(INT64_MAX) + Rational(1), "addition overflow");
  EXPECT_DEATH(Rational(INT64_MIN, -1), "normalization overflow");
}

// ---- String helpers ---------------------------------------------------------

TEST(StringUtilTest, StrSplit) {
  auto parts = StrSplit("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(StrSplit("", ',').size(), 1u);
}

TEST(StringUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x y \t\n"), "x y");
  EXPECT_EQ(StripWhitespace("   "), "");
}

TEST(StringUtilTest, ParseInt64) {
  EXPECT_EQ(ParseInt64("42").value(), 42);
  EXPECT_EQ(ParseInt64(" -7 ").value(), -7);
  EXPECT_FALSE(ParseInt64("12x").has_value());
  EXPECT_FALSE(ParseInt64("").has_value());
}

TEST(StringUtilTest, JoinAndStartsWith) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_TRUE(StartsWith("ngdlib", "ngd"));
  EXPECT_FALSE(StartsWith("ng", "ngd"));
}

}  // namespace
}  // namespace ngd
