// Fragment-native parallel detection, locked to the sequential oracles.
//
// Three layers of coverage:
//   - FragmentSnapshot structure: the induced CSR keeps exactly the
//     edges among members ∪ halo, candidates enumerate owned nodes only,
//     halo owner tags agree with the partition;
//   - persistence: FragmentRuntime::Save/Load round-trips bit-exactly
//     enough to reproduce detection, and corrupt files are rejected;
//   - differential: fragment-native PDect (p ∈ {1,2,4,8}) and
//     fragment-affine PIncDect reproduce the Dect/IncDect violation sets
//     exactly on randomized seed-reproducible workloads.
//
// NGD_FRAG_CASES resizes the randomized sweeps (sanitizer CI shrinks it).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <string>

#include "detect/dect.h"
#include "detect/inc_dect.h"
#include "parallel/cluster.h"
#include "parallel/pdect.h"
#include "parallel/pinc_dect.h"
#include "test_util.h"
#include "util/failpoint.h"
#include "util/rng.h"

namespace ngd {
namespace {

using testing_util::MakeRandomWorkload;
using testing_util::RandomWorkload;

int FragCases() {
  const char* env = std::getenv("NGD_FRAG_CASES");
  if (env != nullptr) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 6;
}

void ExpectSameVio(const VioSet& expected, const VioSet& actual) {
  EXPECT_EQ(expected.size(), actual.size());
  for (const auto& v : expected.items()) {
    EXPECT_TRUE(actual.Contains(v)) << "missing a violation of rule "
                                    << v.ngd_index;
  }
  for (const auto& v : actual.items()) {
    EXPECT_TRUE(expected.Contains(v)) << "extra violation of rule "
                                      << v.ngd_index;
  }
}

// ---- FragmentSnapshot structure -----------------------------------------

TEST(FragmentSnapshotTest, InducedCsrKeepsExactlyTheIncludedEdges) {
  SchemaPtr schema = Schema::Create();
  auto g = GenerateGraph(SyntheticConfig(300, 900, 71), schema);
  const int p = 3;
  Partition part = PartitionGraph(*g, p);
  for (int f = 0; f < p; ++f) {
    FragmentSnapshot frag =
        BuildFragmentSnapshot(*g, part, f, GraphView::kNew, 2);
    ASSERT_NE(frag.csr, nullptr);
    EXPECT_EQ(frag.csr->NumNodes(), g->NumNodes());
    EXPECT_EQ(frag.candidates.NumOwned(), frag.members.size());
    NodeSet include(g->NumNodes());
    for (NodeId v : frag.members) include.Add(v);
    for (NodeId v : frag.halo) include.Add(v);
    // Halo owner tags agree with the partition, and no halo node is owned.
    ASSERT_EQ(frag.halo.size(), frag.halo_owner.size());
    for (size_t i = 0; i < frag.halo.size(); ++i) {
      EXPECT_FALSE(frag.Owns(frag.halo[i]));
      EXPECT_EQ(frag.halo_owner[i], part.fragment_of[frag.halo[i]]);
    }
    // Edge sets: per included node, the induced adjacency is the global
    // adjacency filtered to included endpoints; excluded nodes are husks.
    for (NodeId v = 0; v < g->NumNodes(); ++v) {
      size_t induced = 0;
      frag.csr->ForEachOutEdge(v, [&](LabelId label, NodeId w) {
        ++induced;
        EXPECT_TRUE(include.Contains(v));
        EXPECT_TRUE(include.Contains(w));
        EXPECT_TRUE(g->HasEdge(v, w, label, GraphView::kNew));
      });
      if (!include.Contains(v)) {
        EXPECT_EQ(induced, 0u);
        continue;
      }
      size_t expected = 0;
      for (const AdjEntry& e : g->OutEdges(v)) {
        if (EdgeInView(e.state, GraphView::kNew) && include.Contains(e.other)) {
          ++expected;
        }
      }
      EXPECT_EQ(induced, expected) << "node " << v << " fragment " << f;
    }
  }
}

TEST(FragmentSnapshotTest, OwnedCandidatesPartitionTheLabel) {
  SchemaPtr schema = Schema::Create();
  auto g = GenerateGraph(SyntheticConfig(200, 500, 73), schema);
  const int p = 4;
  FragmentRuntime rt(*g, p, GraphView::kNew, 1);
  // Every node appears in exactly one fragment's candidate range for its
  // label (owner-computes: each seed is enumerated once cluster-wide).
  for (NodeId v = 0; v < g->NumNodes(); ++v) {
    const LabelId l = g->NodeLabel(v);
    int owners = 0;
    for (int f = 0; f < p; ++f) {
      const auto range = rt.fragment(f).candidates.Range(l);
      if (std::binary_search(range.begin(), range.end(), v)) ++owners;
    }
    EXPECT_EQ(owners, 1) << "node " << v;
  }
}

// ---- Persistence ---------------------------------------------------------

TEST(FragmentRuntimeTest, SaveLoadRoundTripsDetection) {
  SchemaPtr schema = Schema::Create();
  Rng rng(101);
  RandomWorkload w = MakeRandomWorkload(101, &rng);
  const int p = 4;
  const int d = w.sigma.MaxDiameter();
  FragmentRuntime rt(*w.graph, p, GraphView::kNew, d);
  const std::string prefix = ::testing::TempDir() + "/frag_rt";
  ASSERT_TRUE(rt.Save(prefix).ok());

  auto loaded = FragmentRuntime::Load(prefix, p, w.schema);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_fragments(), p);
  EXPECT_EQ(loaded->halo_hops(), d);
  EXPECT_EQ(loaded->view(), GraphView::kNew);
  EXPECT_EQ(loaded->partition().fragment_of, rt.partition().fragment_of);
  EXPECT_EQ(loaded->partition().crossing_edges,
            rt.partition().crossing_edges);
  EXPECT_EQ(loaded->total_halo_nodes(), rt.total_halo_nodes());
  for (int f = 0; f < p; ++f) {
    EXPECT_EQ(loaded->fragment(f).members, rt.fragment(f).members);
    EXPECT_EQ(loaded->fragment(f).halo, rt.fragment(f).halo);
  }

  const VioSet oracle = Dect(*w.graph, w.sigma);
  PDectOptions opts;
  opts.num_processors = p;
  opts.runtime = &*loaded;
  PDectResult r = PDect(*w.graph, w.sigma, opts);
  ExpectSameVio(oracle, r.vio);
  EXPECT_EQ(r.metrics.replicated_nodes, loaded->total_halo_nodes());
}

// The fragment_write failpoint site must be armable and surface its
// injected failure as a Status from Save (per-site coverage enforced by
// ngdlint's failpoint-unarmed rule).
TEST(FragmentRuntimeTest, FragmentWriteFailpointSurfacesFailure) {
  SchemaPtr schema = Schema::Create();
  auto g = GenerateGraph(SyntheticConfig(60, 150, 55), schema);
  FragmentRuntime rt(*g, 2, GraphView::kNew, 1);
  const std::string prefix = ::testing::TempDir() + "/frag_fp";
  failpoint::Reset();
  failpoint::ArmSite("fragment_write", failpoint::Mode::kEnospc);
  const Status st = rt.Save(prefix);
  failpoint::Reset();
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted) << st.ToString();
}

TEST(FragmentRuntimeTest, CorruptFragmentFileIsRejected) {
  SchemaPtr schema = Schema::Create();
  auto g = GenerateGraph(SyntheticConfig(120, 300, 77), schema);
  FragmentRuntime rt(*g, 2, GraphView::kNew, 1);
  const std::string prefix = ::testing::TempDir() + "/frag_corrupt";
  ASSERT_TRUE(rt.Save(prefix).ok());
  const std::string path = prefix + ".f1.ngdfrag";
  // Flip one byte in the middle of the file.
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_GT(bytes.size(), 100u);
  bytes[bytes.size() / 2] ^= 0x40;
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  auto loaded = FragmentRuntime::Load(prefix, 2, schema);
  EXPECT_FALSE(loaded.ok());
}

// ---- Differential: PDect vs Dect ----------------------------------------

class FragmentPDectTest : public ::testing::TestWithParam<int> {};

TEST_P(FragmentPDectTest, MatchesSequentialDectOnRandomWorkloads) {
  const int p = GetParam();
  const int cases = FragCases();
  for (int c = 0; c < cases; ++c) {
    const uint64_t seed = 1000 + 17 * static_cast<uint64_t>(c);
    SCOPED_TRACE("seed " + std::to_string(seed) + " p " + std::to_string(p));
    Rng rng(seed);
    RandomWorkload w = MakeRandomWorkload(seed, &rng);
    if (w.sigma.size() == 0) continue;
    const VioSet oracle = Dect(*w.graph, w.sigma);

    PDectOptions opts;
    opts.num_processors = p;
    PDectResult r = PDect(*w.graph, w.sigma, opts);
    ExpectSameVio(oracle, r.vio);
    EXPECT_EQ(r.fragments, p);
    if (p > 1) {
      // Halo replication is real whenever the cut is non-trivial.
      EXPECT_EQ(r.metrics.replicated_nodes > 0, r.crossing_edges > 0);
    }

    // Same seed, same engine: the violation set is reproducible.
    PDectResult again = PDect(*w.graph, w.sigma, opts);
    ExpectSameVio(r.vio, again.vio);
  }
}

INSTANTIATE_TEST_SUITE_P(Processors, FragmentPDectTest,
                         ::testing::Values(1, 2, 4, 8));

TEST(FragmentPDectTest, ForwardingResolvesBoundaryCrossingHubs) {
  // 8 selective 'a' seeds point at one hub with 600 spokes: expanding z
  // from the hub is a halo-anchored scan for every fragment that does not
  // own the hub, and with C = 1 the cost model must ship those partial
  // matches to the hub's owner instead.
  SchemaPtr schema = Schema::Create();
  Graph g(schema);
  LabelId a = schema->InternLabel("a");
  LabelId n = schema->InternLabel("n");
  LabelId e = schema->InternLabel("e");
  AttrId val = schema->InternAttr("v");
  NodeId hub = g.AddNode(n);
  g.SetAttr(hub, val, Value(int64_t{0}));
  for (int i = 0; i < 600; ++i) {
    NodeId leaf = g.AddNode(n);
    g.SetAttr(leaf, val, Value(int64_t{i}));
    ASSERT_TRUE(g.AddEdge(hub, leaf, e).ok());
  }
  for (int i = 0; i < 8; ++i) {
    NodeId src = g.AddNode(a);
    g.SetAttr(src, val, Value(int64_t{50}));
    ASSERT_TRUE(g.AddEdge(src, hub, e).ok());
  }
  NgdSet sigma = testing_util::MustParse(
      "ngd r { match (x:a)-[e]->(y:n), (y)-[e]->(z:n) then x.v <= z.v }",
      schema);
  ASSERT_EQ(sigma.size(), 1u);

  const VioSet oracle = Dect(g, sigma);
  ASSERT_GT(oracle.size(), 0u);

  PDectOptions opts;
  opts.num_processors = 4;
  opts.latency_c = 1.0;  // aggressive shipping
  opts.min_forward_adjacency = 8;
  PDectResult r = PDect(g, sigma, opts);
  ExpectSameVio(oracle, r.vio);
  EXPECT_GT(r.metrics.replicated_nodes, 0u);
  EXPECT_GT(r.metrics.messages, 0u);
  EXPECT_GT(r.metrics.forwards, 0u);

  // The hybrid knobs only move work around; the result set is invariant.
  PDectOptions local_only = opts;
  local_only.enable_forward = false;
  local_only.enable_split = false;
  local_only.enable_steal = false;
  PDectResult r2 = PDect(g, sigma, local_only);
  ExpectSameVio(oracle, r2.vio);
  EXPECT_EQ(r2.metrics.forwards, 0u);
  EXPECT_EQ(r2.metrics.steals, 0u);
  EXPECT_EQ(r2.metrics.splits, 0u);
  EXPECT_GT(r2.metrics.messages, 0u);  // halo scans remain
}

// ---- Differential: fragment-affine PIncDect vs IncDect -------------------

TEST(FragmentPIncDectTest, RuntimePlacementAndStealingMatchOracle) {
  const int cases = std::max(1, FragCases() / 2);
  for (int c = 0; c < cases; ++c) {
    const uint64_t seed = 2000 + 29 * static_cast<uint64_t>(c);
    SCOPED_TRACE("seed " + std::to_string(seed));
    SchemaPtr schema = Schema::Create();
    auto g = GenerateGraph(SyntheticConfig(400, 1100, seed), schema);
    NgdGenOptions gen;
    gen.count = 8;
    gen.max_diameter = 3;
    gen.seed = seed + 1;
    gen.violation_rate = 0.25;
    NgdSet sigma = GenerateNgdSet(*g, gen);
    UpdateGenOptions up;
    up.fraction = 0.12;
    up.seed = seed + 2;
    UpdateBatch batch = GenerateUpdateBatch(g.get(), up);
    ASSERT_TRUE(ApplyUpdateBatch(g.get(), &batch).ok());

    auto oracle = IncDect(*g, sigma, batch);
    ASSERT_TRUE(oracle.ok());

    FragmentRuntime rt(*g, 4, GraphView::kNew, 0);
    PIncDectOptions opts;
    opts.num_processors = 4;
    opts.runtime = &rt;
    opts.enable_steal = true;
    opts.balance_interval_ms = 5;
    auto result = PIncDect(*g, sigma, batch, opts);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(oracle->added.size(), result->delta.added.size());
    EXPECT_EQ(oracle->removed.size(), result->delta.removed.size());
    for (const auto& v : oracle->added.items()) {
      EXPECT_TRUE(result->delta.added.Contains(v));
    }
    for (const auto& v : oracle->removed.items()) {
      EXPECT_TRUE(result->delta.removed.Contains(v));
    }

    // Steal-off control: same result, zero steals metered.
    PIncDectOptions no_steal = opts;
    no_steal.enable_steal = false;
    auto r2 = PIncDect(*g, sigma, batch, no_steal);
    ASSERT_TRUE(r2.ok());
    EXPECT_EQ(r2->steals, 0u);
    EXPECT_EQ(r2->delta.added.size(), result->delta.added.size());
    EXPECT_EQ(r2->delta.removed.size(), result->delta.removed.size());
  }
}

}  // namespace
}  // namespace ngd
