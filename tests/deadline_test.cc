// Deadline and cancellation plumbing across all four detection engines
// (util/cancel.h threaded through Dect/IncDect/PDect/PIncDect).
//
// Graceful-degradation contract:
//   * a cancelled or deadlined run returns promptly with `truncated` set
//     and per-rule completion marks (DetectRunInfo);
//   * whatever it returns is a SUBSET of the full run's violations —
//     partial, never wrong;
//   * an untruncated run marks every rule complete;
//   * on the hub workload (quadratic per-hub enumeration, the worst case
//     for bounded response), a deadlined run returns within 2x the
//     requested deadline.
//
// The deterministic tests use a pre-cancelled token (checked on every
// step); the timing test uses a real deadline and skips itself on
// machines fast enough to finish inside it.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "detect/dect.h"
#include "detect/inc_dect.h"
#include "graph/graph.h"
#include "graph/updates.h"
#include "parallel/pdect.h"
#include "parallel/pinc_dect.h"
#include "test_util.h"
#include "util/cancel.h"

namespace ngd {
namespace {

using testing_util::MustParse;

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

std::set<std::string> VioLines(const VioSet& vio, const NgdSet& sigma) {
  std::set<std::string> lines;
  for (const Violation& v : vio.Sorted()) {
    std::ostringstream os;
    os << sigma[v.ngd_index].name() << ":";
    for (NodeId n : v.nodes) os << " " << n;
    lines.insert(os.str());
  }
  return lines;
}

/// Every violation of `part` must appear in `full` — partial, never wrong.
void ExpectSubset(const VioSet& part, const VioSet& full, const NgdSet& sigma,
                  const std::string& what) {
  const std::set<std::string> full_lines = VioLines(full, sigma);
  for (const std::string& line : VioLines(part, sigma)) {
    EXPECT_TRUE(full_lines.count(line) > 0)
        << what << ": truncated run reported a violation the full run "
        << "did not: " << line;
  }
}

/// The hub workload: `hubs` star centers, each with `spokes` integer
/// spokes over one edge label. The rule enumerates ordered spoke pairs
/// per hub — Theta(spokes^2) matches per hub, nearly all violating — so
/// full detection is slow while any prefix of it is valid output.
constexpr const char* kHubRule = R"(
ngd hubpairs {
  match (x:hub)-[m]->(a:integer), (x)-[m]->(b:integer)
  where a.val < b.val
  then b.val - a.val >= 1000000
}
)";

struct HubWorkload {
  SchemaPtr schema;
  std::unique_ptr<Graph> graph;
  NgdSet sigma;
  std::vector<NodeId> hubs;
  std::vector<NodeId> spokes;  // all spokes, hub-major
};

HubWorkload BuildHubWorkload(size_t hubs, size_t spokes) {
  HubWorkload w;
  w.schema = Schema::Create();
  w.graph = std::make_unique<Graph>(w.schema);
  for (size_t h = 0; h < hubs; ++h) {
    const NodeId hub = w.graph->AddNode("hub");
    w.hubs.push_back(hub);
    for (size_t s = 0; s < spokes; ++s) {
      const NodeId v = w.graph->AddNode("integer");
      w.graph->SetAttr(
          v, "val", Value(static_cast<int64_t>((h * 131 + s * 7) % 1999)));
      EXPECT_TRUE(w.graph->AddEdge(hub, v, "m").ok());
      w.spokes.push_back(v);
    }
  }
  w.sigma = MustParse(kHubRule, w.schema);
  EXPECT_EQ(w.sigma.size(), 1u);
  return w;
}

/// A batch wiring each hub to a few spokes of the next hub: every insert
/// is an update pivot whose expansion scans the whole adjacency of its
/// hub.
UpdateBatch CrossHubBatch(const HubWorkload& w, size_t per_hub) {
  UpdateBatch batch;
  const LabelId m = *w.schema->labels().Find("m");
  const size_t spokes = w.spokes.size() / w.hubs.size();
  for (size_t h = 0; h < w.hubs.size(); ++h) {
    const size_t other = (h + 1) % w.hubs.size();
    for (size_t k = 0; k < per_hub && k < spokes; ++k) {
      batch.updates.push_back(UnitUpdate{
          UpdateKind::kInsert, w.hubs[h], w.spokes[other * spokes + k], m});
    }
  }
  return batch;
}

// ---- Deterministic cancellation (pre-cancelled token) ---------------------

TEST(CancelTest, PreCancelledTokenTruncatesBatchEngines) {
  HubWorkload w = BuildHubWorkload(3, 60);
  const VioSet full = Dect(*w.graph, w.sigma);
  ASSERT_GT(full.Sorted().size(), 0u);

  CancelToken token;
  token.Cancel();

  DectOptions dopts;
  DetectRunInfo info;
  dopts.cancel = &token;
  dopts.run_info = &info;
  const VioSet vio = Dect(*w.graph, w.sigma, dopts);
  EXPECT_TRUE(info.truncated);
  ASSERT_EQ(info.rule_completed.size(), w.sigma.size());
  EXPECT_EQ(info.rule_completed[0], 0);
  ExpectSubset(vio, full, w.sigma, "Dect");
  EXPECT_LT(vio.Sorted().size(), full.Sorted().size());

  PDectOptions popts;
  popts.num_processors = 3;
  DetectRunInfo pinfo;
  popts.cancel = &token;
  popts.run_info = &pinfo;
  const PDectResult pres = PDect(*w.graph, w.sigma, popts);
  EXPECT_TRUE(pres.truncated);
  EXPECT_TRUE(pinfo.truncated);
  ASSERT_EQ(pinfo.rule_completed.size(), w.sigma.size());
  EXPECT_EQ(pinfo.rule_completed[0], 0);
  ExpectSubset(pres.vio, full, w.sigma, "PDect");
  EXPECT_LT(pres.vio.Sorted().size(), full.Sorted().size());
}

TEST(CancelTest, PreCancelledTokenTruncatesIncrementalEngines) {
  HubWorkload w = BuildHubWorkload(3, 60);
  UpdateBatch batch = CrossHubBatch(w, 8);
  ASSERT_TRUE(ApplyUpdateBatch(w.graph.get(), &batch).ok());
  ASSERT_GT(batch.size(), 0u);

  IncDectOptions base_opts;
  auto full = IncDect(*w.graph, w.sigma, batch, base_opts);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  ASSERT_GT(full->added.Sorted().size(), 0u);

  CancelToken token;
  token.Cancel();

  IncDectOptions iopts;
  DetectRunInfo info;
  iopts.cancel = &token;
  iopts.run_info = &info;
  auto delta = IncDect(*w.graph, w.sigma, batch, iopts);
  ASSERT_TRUE(delta.ok()) << delta.status().ToString();
  EXPECT_TRUE(info.truncated);
  ASSERT_EQ(info.rule_completed.size(), w.sigma.size());
  EXPECT_EQ(info.rule_completed[0], 0);
  ExpectSubset(delta->added, full->added, w.sigma, "IncDect added");
  ExpectSubset(delta->removed, full->removed, w.sigma, "IncDect removed");

  PIncDectOptions piopts;
  piopts.num_processors = 3;
  DetectRunInfo pinfo;
  piopts.cancel = &token;
  piopts.run_info = &pinfo;
  auto pdelta = PIncDect(*w.graph, w.sigma, batch, piopts);
  ASSERT_TRUE(pdelta.ok()) << pdelta.status().ToString();
  EXPECT_TRUE(pdelta->truncated);
  EXPECT_TRUE(pinfo.truncated);
  ASSERT_EQ(pinfo.rule_completed.size(), w.sigma.size());
  EXPECT_EQ(pinfo.rule_completed[0], 0);
  ExpectSubset(pdelta->delta.added, full->added, w.sigma, "PIncDect added");
  ExpectSubset(pdelta->delta.removed, full->removed, w.sigma,
               "PIncDect removed");
  w.graph->Rollback();
}

TEST(CancelTest, UntruncatedRunsMarkEveryRuleComplete) {
  HubWorkload w = BuildHubWorkload(2, 25);

  DectOptions dopts;
  DetectRunInfo info;
  dopts.run_info = &info;
  (void)Dect(*w.graph, w.sigma, dopts);
  EXPECT_FALSE(info.truncated);
  ASSERT_EQ(info.rule_completed.size(), w.sigma.size());
  EXPECT_EQ(info.rule_completed[0], 1);

  // A token that never fires behaves exactly like no token.
  CancelToken idle;
  DectOptions copts;
  DetectRunInfo cinfo;
  copts.cancel = &idle;
  copts.run_info = &cinfo;
  const VioSet with_token = Dect(*w.graph, w.sigma, copts);
  EXPECT_FALSE(cinfo.truncated);
  EXPECT_EQ(VioLines(with_token, w.sigma),
            VioLines(Dect(*w.graph, w.sigma), w.sigma));

  PDectOptions popts;
  popts.num_processors = 3;
  DetectRunInfo pinfo;
  popts.run_info = &pinfo;
  const PDectResult pres = PDect(*w.graph, w.sigma, popts);
  EXPECT_FALSE(pres.truncated);
  EXPECT_FALSE(pinfo.truncated);
  ASSERT_EQ(pinfo.rule_completed.size(), w.sigma.size());
  EXPECT_EQ(pinfo.rule_completed[0], 1);

  UpdateBatch batch = CrossHubBatch(w, 4);
  ASSERT_TRUE(ApplyUpdateBatch(w.graph.get(), &batch).ok());
  IncDectOptions iopts;
  DetectRunInfo iinfo;
  iopts.run_info = &iinfo;
  auto delta = IncDect(*w.graph, w.sigma, batch, iopts);
  ASSERT_TRUE(delta.ok());
  EXPECT_FALSE(iinfo.truncated);
  EXPECT_EQ(iinfo.rule_completed[0], 1);

  PIncDectOptions piopts;
  piopts.num_processors = 3;
  DetectRunInfo piinfo;
  piopts.run_info = &piinfo;
  auto pdelta = PIncDect(*w.graph, w.sigma, batch, piopts);
  ASSERT_TRUE(pdelta.ok());
  EXPECT_FALSE(pdelta->truncated);
  EXPECT_FALSE(piinfo.truncated);
  EXPECT_EQ(piinfo.rule_completed[0], 1);
  w.graph->Rollback();
}

// ---- Deadline-bounded response on the hub workload ------------------------

TEST(DeadlineTest, HubWorkloadRespondsWithinTwiceTheDeadline) {
  // Quadratic enumeration: 6 hubs x 600 spokes ~ 2.2M ordered pairs.
  HubWorkload w = BuildHubWorkload(6, 600);

  const auto full_start = std::chrono::steady_clock::now();
  const VioSet full = Dect(*w.graph, w.sigma);
  const double full_s = Seconds(full_start);
  ASSERT_GT(full.Sorted().size(), 0u);
  // A fifth of the full run, floored at 50ms so the clock-polling stride
  // has room to fire: adapts to the machine instead of hardcoding speed.
  const int64_t kDeadlineMs =
      std::max<int64_t>(50, static_cast<int64_t>(full_s * 1000.0 / 5.0));
  const double kBound = 2.0 * kDeadlineMs / 1000.0;
  if (full_s < 3.0 * kDeadlineMs / 1000.0) {
    GTEST_SKIP() << "full run took " << full_s
                 << "s — too fast to observe a " << kDeadlineMs
                 << "ms deadline truncating";
  }

  {
    DectOptions dopts;
    DetectRunInfo info;
    dopts.deadline = Deadline::After(kDeadlineMs);
    dopts.run_info = &info;
    const auto start = std::chrono::steady_clock::now();
    const VioSet vio = Dect(*w.graph, w.sigma, dopts);
    const double elapsed = Seconds(start);
    EXPECT_LE(elapsed, kBound) << "Dect overran its deadline";
    EXPECT_TRUE(info.truncated);
    ExpectSubset(vio, full, w.sigma, "Dect deadline");
  }

  {
    PDectOptions popts;
    popts.num_processors = 4;
    DetectRunInfo info;
    popts.deadline = Deadline::After(kDeadlineMs);
    popts.run_info = &info;
    const auto start = std::chrono::steady_clock::now();
    const PDectResult pres = PDect(*w.graph, w.sigma, popts);
    const double elapsed = Seconds(start);
    EXPECT_LE(elapsed, kBound) << "PDect overran its deadline";
    // With 4 workers the deadline (sized off the sequential run) may not
    // fire; then the result must be the complete one.
    EXPECT_EQ(pres.truncated, info.truncated);
    if (pres.truncated) {
      ExpectSubset(pres.vio, full, w.sigma, "PDect deadline");
    } else {
      EXPECT_EQ(VioLines(pres.vio, w.sigma), VioLines(full, w.sigma));
    }
  }
}

TEST(DeadlineTest, IncrementalHubWorkloadRespondsWithinTwiceTheDeadline) {
  HubWorkload w = BuildHubWorkload(6, 600);
  UpdateBatch batch = CrossHubBatch(w, 150);
  ASSERT_TRUE(ApplyUpdateBatch(w.graph.get(), &batch).ok());

  IncDectOptions base_opts;
  const auto full_start = std::chrono::steady_clock::now();
  auto full = IncDect(*w.graph, w.sigma, batch, base_opts);
  const double full_s = Seconds(full_start);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  const int64_t kDeadlineMs =
      std::max<int64_t>(50, static_cast<int64_t>(full_s * 1000.0 / 5.0));
  const double kBound = 2.0 * kDeadlineMs / 1000.0;
  if (full_s < 3.0 * kDeadlineMs / 1000.0) {
    GTEST_SKIP() << "full incremental run took " << full_s
                 << "s — too fast to observe a " << kDeadlineMs
                 << "ms deadline truncating";
  }

  {
    IncDectOptions iopts;
    DetectRunInfo info;
    iopts.deadline = Deadline::After(kDeadlineMs);
    iopts.run_info = &info;
    const auto start = std::chrono::steady_clock::now();
    auto delta = IncDect(*w.graph, w.sigma, batch, iopts);
    const double elapsed = Seconds(start);
    ASSERT_TRUE(delta.ok()) << delta.status().ToString();
    EXPECT_LE(elapsed, kBound) << "IncDect overran its deadline";
    EXPECT_TRUE(info.truncated);
    ExpectSubset(delta->added, full->added, w.sigma, "IncDect deadline");
  }

  {
    PIncDectOptions piopts;
    piopts.num_processors = 4;
    DetectRunInfo info;
    piopts.deadline = Deadline::After(kDeadlineMs);
    piopts.run_info = &info;
    const auto start = std::chrono::steady_clock::now();
    auto pdelta = PIncDect(*w.graph, w.sigma, batch, piopts);
    const double elapsed = Seconds(start);
    ASSERT_TRUE(pdelta.ok()) << pdelta.status().ToString();
    EXPECT_LE(elapsed, kBound) << "PIncDect overran its deadline";
    // As above: 4 workers may beat the sequentially-sized deadline.
    EXPECT_EQ(pdelta->truncated, info.truncated);
    if (pdelta->truncated) {
      ExpectSubset(pdelta->delta.added, full->added, w.sigma,
                   "PIncDect deadline");
    } else {
      EXPECT_EQ(VioLines(pdelta->delta.added, w.sigma),
                VioLines(full->added, w.sigma));
    }
  }
  w.graph->Rollback();
}

// ---- RemapRunInfo: completion through the implication cover --------------
//
// Under Σ-minimization a truncated run must still report honest per-rule
// marks for the DROPPED rules: a dropped rule's violations are covered by
// the rules that implied it, so its report is complete exactly when every
// (transitive) implier finished enumerating — not only when the whole
// minimized run did.

OptimizeReport MakeReport(std::vector<int> kept, std::vector<int> dropped,
                          std::vector<std::vector<int>> implied_by) {
  OptimizeReport r;
  r.kept = std::move(kept);
  r.dropped = std::move(dropped);
  r.implied_by = std::move(implied_by);
  return r;
}

TEST(RemapRunInfoTest, DroppedRuleCompleteWhenImplierCompleted) {
  // Σ = {0,1,2}; 1 and 2 dropped, implied in a chain 2 <- 1 <- 0. The
  // minimized run (just rule 0) was truncated AFTER finishing rule 0 —
  // impossible for a single-rule sweep in practice, so model the
  // interesting shape with two kept rules below; here rule 0 completed.
  const OptimizeReport report =
      MakeReport({0}, {1, 2}, {{}, {0}, {1}});
  DetectRunInfo inner;
  inner.truncated = true;
  inner.rule_completed = {1};
  DetectRunInfo out;
  RemapRunInfo(inner, report, 3, &out);
  EXPECT_TRUE(out.truncated);
  ASSERT_EQ(out.rule_completed.size(), 3u);
  // Rule 0 finished, so the chain of rules it implies is fully covered
  // despite the truncation.
  EXPECT_EQ(out.rule_completed[0], 1);
  EXPECT_EQ(out.rule_completed[1], 1);
  EXPECT_EQ(out.rule_completed[2], 1);
}

TEST(RemapRunInfoTest, DroppedRuleIncompleteWhenAnyImplierTruncated) {
  // Σ = {0..4}; kept {0,3}, dropped {1,2,4}. The truncated run finished
  // rule 0 but not rule 3. 1 (implied by 0) is complete; 2 (implied by
  // 3) and 4 (implied by both) are not.
  const OptimizeReport report =
      MakeReport({0, 3}, {1, 2, 4}, {{}, {0}, {3}, {}, {0, 3}});
  DetectRunInfo inner;
  inner.truncated = true;
  inner.rule_completed = {1, 0};
  DetectRunInfo out;
  RemapRunInfo(inner, report, 5, &out);
  EXPECT_TRUE(out.truncated);
  ASSERT_EQ(out.rule_completed.size(), 5u);
  EXPECT_EQ(out.rule_completed[0], 1);
  EXPECT_EQ(out.rule_completed[1], 1);
  EXPECT_EQ(out.rule_completed[2], 0);
  EXPECT_EQ(out.rule_completed[3], 0);
  EXPECT_EQ(out.rule_completed[4], 0);
}

TEST(RemapRunInfoTest, TransitiveChainResolvesThroughDroppedImpliers) {
  // 3 implied by 2, 2 implied by 1, 1 implied by 0 (kept). Completion of
  // 0 must propagate down the whole chain; incompletion likewise.
  const OptimizeReport report =
      MakeReport({0}, {1, 2, 3}, {{}, {0}, {1}, {2}});
  for (const int completed : {0, 1}) {
    DetectRunInfo inner;
    inner.truncated = true;
    inner.rule_completed = {static_cast<char>(completed)};
    DetectRunInfo out;
    RemapRunInfo(inner, report, 4, &out);
    for (size_t r = 0; r < 4; ++r) {
      EXPECT_EQ(out.rule_completed[r], completed) << "rule " << r;
    }
  }
}

TEST(RemapRunInfoTest, FallsBackWithoutRecordedCover) {
  // A report without implied_by (e.g. a pre-upgrade cache entry) keeps
  // the conservative semantics: dropped rules complete iff untruncated.
  const OptimizeReport report = MakeReport({0}, {1, 2}, {});
  DetectRunInfo truncated_inner;
  truncated_inner.truncated = true;
  truncated_inner.rule_completed = {1};
  DetectRunInfo out;
  RemapRunInfo(truncated_inner, report, 3, &out);
  EXPECT_EQ(out.rule_completed[0], 1);  // kept rule keeps its own mark
  EXPECT_EQ(out.rule_completed[1], 0);
  EXPECT_EQ(out.rule_completed[2], 0);

  DetectRunInfo clean_inner;
  clean_inner.truncated = false;
  clean_inner.rule_completed = {1};
  RemapRunInfo(clean_inner, report, 3, &out);
  EXPECT_EQ(out.rule_completed[1], 1);
  EXPECT_EQ(out.rule_completed[2], 1);
}

TEST(RemapRunInfoTest, MinimizeSigmaRecordsResolvableCover) {
  // End-to-end: a catalog with an exact duplicate must come back with an
  // implication-cover edge from the duplicate to the first copy, and
  // every dropped rule's cover must resolve transitively to kept rules.
  SchemaPtr schema = Schema::Create();
  NgdSet sigma = MustParse(std::string(testing_util::kPhi1) +
                               testing_util::kPhi2 + testing_util::kPhi1,
                           schema);
  ASSERT_EQ(sigma.size(), 3u);
  const MinimizedSigma m = MinimizeSigma(sigma, schema);
  ASSERT_EQ(m.report.implied_by.size(), 3u);
  ASSERT_FALSE(m.report.dropped.empty());
  for (const int d : m.report.dropped) {
    // Resolve the cover transitively; it must terminate in kept rules.
    std::vector<int> frontier = m.report.implied_by[static_cast<size_t>(d)];
    ASSERT_FALSE(frontier.empty()) << "dropped rule " << d << " has no cover";
    for (size_t guard = 0; !frontier.empty() && guard < 16; ++guard) {
      std::vector<int> next;
      for (const int j : frontier) {
        ASSERT_GE(j, 0);
        ASSERT_LT(static_cast<size_t>(j), sigma.size());
        ASSERT_NE(j, d) << "self-implication edge";
        if (std::find(m.report.kept.begin(), m.report.kept.end(), j) ==
            m.report.kept.end()) {
          const auto& up = m.report.implied_by[static_cast<size_t>(j)];
          ASSERT_FALSE(up.empty()) << "dangling cover at rule " << j;
          next.insert(next.end(), up.begin(), up.end());
        }
      }
      frontier = std::move(next);
    }
    EXPECT_TRUE(frontier.empty()) << "cover of rule " << d
                                  << " did not resolve to kept rules";
  }
  // The duplicate copy (index 2) is implied by the first copy (index 0).
  ASSERT_EQ(m.report.implied_by[2].size(), 1u);
  EXPECT_EQ(m.report.implied_by[2][0], 0);
}

}  // namespace
}  // namespace ngd
