#include <gtest/gtest.h>

#include <sstream>

#include "graph/graph.h"
#include "graph/graph_io.h"
#include "graph/neighborhood.h"

namespace ngd {
namespace {

class GraphTest : public ::testing::Test {
 protected:
  GraphTest() : schema_(Schema::Create()), g_(schema_) {}

  SchemaPtr schema_;
  Graph g_;
};

TEST_F(GraphTest, AddNodesAndLabels) {
  NodeId a = g_.AddNode("person");
  NodeId b = g_.AddNode("person");
  NodeId c = g_.AddNode("city");
  EXPECT_EQ(g_.NumNodes(), 3u);
  EXPECT_EQ(g_.NodeLabelName(a), "person");
  EXPECT_EQ(g_.NodeLabel(a), g_.NodeLabel(b));
  EXPECT_NE(g_.NodeLabel(a), g_.NodeLabel(c));
}

TEST_F(GraphTest, LabelIndex) {
  NodeId a = g_.AddNode("person");
  g_.AddNode("city");
  NodeId c = g_.AddNode("person");
  const auto& people = g_.NodesWithLabel(g_.NodeLabel(a));
  ASSERT_EQ(people.size(), 2u);
  EXPECT_EQ(people[0], a);
  EXPECT_EQ(people[1], c);
  EXPECT_TRUE(g_.NodesWithLabel(9999).empty());
}

TEST_F(GraphTest, AttributesSetGetOverwrite) {
  NodeId v = g_.AddNode("person");
  EXPECT_EQ(g_.GetAttr(v, 0), nullptr);
  g_.SetAttr(v, "age", Value(int64_t{30}));
  g_.SetAttr(v, "name", Value("alice"));
  AttrId age = *schema_->attrs().Find("age");
  ASSERT_NE(g_.GetAttr(v, age), nullptr);
  EXPECT_EQ(g_.GetAttr(v, age)->AsInt(), 30);
  g_.SetAttr(v, "age", Value(int64_t{31}));
  EXPECT_EQ(g_.GetAttr(v, age)->AsInt(), 31);
  EXPECT_EQ(g_.Attrs(v).size(), 2u);
}

TEST_F(GraphTest, AttrsSortedById) {
  NodeId v = g_.AddNode("n");
  g_.SetAttr(v, "z", Value(int64_t{1}));
  g_.SetAttr(v, "a", Value(int64_t{2}));
  g_.SetAttr(v, "m", Value(int64_t{3}));
  const auto& attrs = g_.Attrs(v);
  for (size_t i = 1; i < attrs.size(); ++i) {
    EXPECT_LT(attrs[i - 1].first, attrs[i].first);
  }
}

TEST_F(GraphTest, AddEdgeAndDuplicates) {
  NodeId a = g_.AddNode("a"), b = g_.AddNode("b");
  LabelId knows = schema_->InternLabel("knows");
  EXPECT_TRUE(g_.AddEdge(a, b, knows).ok());
  EXPECT_EQ(g_.AddEdge(a, b, knows).code(), StatusCode::kAlreadyExists);
  // Same endpoints, different label: a distinct edge.
  EXPECT_TRUE(g_.AddEdge(a, b, "likes").ok());
  // Reverse direction is distinct.
  EXPECT_TRUE(g_.AddEdge(b, a, knows).ok());
  EXPECT_EQ(g_.NumEdges(GraphView::kNew), 3u);
}

TEST_F(GraphTest, EdgeEndpointValidation) {
  NodeId a = g_.AddNode("a");
  EXPECT_EQ(g_.AddEdge(a, 99, 0).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(g_.InsertEdge(99, a, 0).code(), StatusCode::kInvalidArgument);
}

TEST_F(GraphTest, HasEdgePerView) {
  NodeId a = g_.AddNode("a"), b = g_.AddNode("b");
  LabelId l = schema_->InternLabel("e");
  ASSERT_TRUE(g_.AddEdge(a, b, l).ok());
  EXPECT_TRUE(g_.HasEdge(a, b, l, GraphView::kOld));
  EXPECT_TRUE(g_.HasEdge(a, b, l, GraphView::kNew));
  EXPECT_FALSE(g_.HasEdge(b, a, l, GraphView::kNew));
}

TEST_F(GraphTest, OverlayInsertVisibleOnlyInNewView) {
  NodeId a = g_.AddNode("a"), b = g_.AddNode("b");
  LabelId l = schema_->InternLabel("e");
  ASSERT_TRUE(g_.InsertEdge(a, b, l).ok());
  EXPECT_FALSE(g_.HasEdge(a, b, l, GraphView::kOld));
  EXPECT_TRUE(g_.HasEdge(a, b, l, GraphView::kNew));
  EXPECT_EQ(g_.NumEdges(GraphView::kOld), 0u);
  EXPECT_EQ(g_.NumEdges(GraphView::kNew), 1u);
  EXPECT_TRUE(g_.HasPendingUpdate());
}

TEST_F(GraphTest, OverlayDeleteVisibleOnlyInOldView) {
  NodeId a = g_.AddNode("a"), b = g_.AddNode("b");
  LabelId l = schema_->InternLabel("e");
  ASSERT_TRUE(g_.AddEdge(a, b, l).ok());
  ASSERT_TRUE(g_.DeleteEdge(a, b, l).ok());
  EXPECT_TRUE(g_.HasEdge(a, b, l, GraphView::kOld));
  EXPECT_FALSE(g_.HasEdge(a, b, l, GraphView::kNew));
  EXPECT_EQ(g_.NumEdges(GraphView::kOld), 1u);
  EXPECT_EQ(g_.NumEdges(GraphView::kNew), 0u);
}

TEST_F(GraphTest, DeleteNonexistentEdgeFails) {
  NodeId a = g_.AddNode("a"), b = g_.AddNode("b");
  LabelId l = schema_->InternLabel("e");
  EXPECT_EQ(g_.DeleteEdge(a, b, l).code(), StatusCode::kNotFound);
  ASSERT_TRUE(g_.AddEdge(a, b, l).ok());
  ASSERT_TRUE(g_.DeleteEdge(a, b, l).ok());
  // Double delete: the edge is no longer in G ⊕ ΔG.
  EXPECT_EQ(g_.DeleteEdge(a, b, l).code(), StatusCode::kNotFound);
}

TEST_F(GraphTest, DeleteCancelsPendingInsert) {
  NodeId a = g_.AddNode("a"), b = g_.AddNode("b");
  LabelId l = schema_->InternLabel("e");
  ASSERT_TRUE(g_.InsertEdge(a, b, l).ok());
  ASSERT_TRUE(g_.DeleteEdge(a, b, l).ok());
  EXPECT_FALSE(g_.HasEdge(a, b, l, GraphView::kOld));
  EXPECT_FALSE(g_.HasEdge(a, b, l, GraphView::kNew));
  EXPECT_FALSE(g_.HasPendingUpdate());
  EXPECT_FALSE(g_.EdgeStateOf(a, b, l).has_value());
}

TEST_F(GraphTest, ReinsertDeletedEdgeFoldsToBase) {
  NodeId a = g_.AddNode("a"), b = g_.AddNode("b");
  LabelId l = schema_->InternLabel("e");
  ASSERT_TRUE(g_.AddEdge(a, b, l).ok());
  ASSERT_TRUE(g_.DeleteEdge(a, b, l).ok());
  ASSERT_TRUE(g_.InsertEdge(a, b, l).ok());
  EXPECT_TRUE(g_.HasEdge(a, b, l, GraphView::kOld));
  EXPECT_TRUE(g_.HasEdge(a, b, l, GraphView::kNew));
  EXPECT_FALSE(g_.HasPendingUpdate());
  EXPECT_EQ(*g_.EdgeStateOf(a, b, l), EdgeState::kBase);
}

TEST_F(GraphTest, CommitFoldsOverlay) {
  NodeId a = g_.AddNode("a"), b = g_.AddNode("b"), c = g_.AddNode("c");
  LabelId l = schema_->InternLabel("e");
  ASSERT_TRUE(g_.AddEdge(a, b, l).ok());
  ASSERT_TRUE(g_.DeleteEdge(a, b, l).ok());
  ASSERT_TRUE(g_.InsertEdge(b, c, l).ok());
  g_.Commit();
  EXPECT_FALSE(g_.HasPendingUpdate());
  EXPECT_FALSE(g_.HasEdge(a, b, l, GraphView::kOld));
  EXPECT_TRUE(g_.HasEdge(b, c, l, GraphView::kOld));
  EXPECT_EQ(g_.NumEdges(GraphView::kOld), 1u);
  EXPECT_EQ(g_.NumEdges(GraphView::kNew), 1u);
}

TEST_F(GraphTest, RollbackRestoresOldView) {
  NodeId a = g_.AddNode("a"), b = g_.AddNode("b"), c = g_.AddNode("c");
  LabelId l = schema_->InternLabel("e");
  ASSERT_TRUE(g_.AddEdge(a, b, l).ok());
  ASSERT_TRUE(g_.DeleteEdge(a, b, l).ok());
  ASSERT_TRUE(g_.InsertEdge(b, c, l).ok());
  g_.Rollback();
  EXPECT_FALSE(g_.HasPendingUpdate());
  EXPECT_TRUE(g_.HasEdge(a, b, l, GraphView::kNew));
  EXPECT_FALSE(g_.HasEdge(b, c, l, GraphView::kNew));
}

TEST_F(GraphTest, DegreeRespectsView) {
  NodeId a = g_.AddNode("a"), b = g_.AddNode("b"), c = g_.AddNode("c");
  LabelId l = schema_->InternLabel("e");
  ASSERT_TRUE(g_.AddEdge(a, b, l).ok());
  ASSERT_TRUE(g_.InsertEdge(a, c, l).ok());
  EXPECT_EQ(g_.Degree(a, GraphView::kOld), 1u);
  EXPECT_EQ(g_.Degree(a, GraphView::kNew), 2u);
  EXPECT_EQ(g_.AdjSize(a), 2u);
}

TEST_F(GraphTest, InOutAdjacencyConsistent) {
  NodeId a = g_.AddNode("a"), b = g_.AddNode("b");
  LabelId l = schema_->InternLabel("e");
  ASSERT_TRUE(g_.AddEdge(a, b, l).ok());
  ASSERT_EQ(g_.OutEdges(a).size(), 1u);
  EXPECT_EQ(g_.OutEdges(a)[0].other, b);
  ASSERT_EQ(g_.InEdges(b).size(), 1u);
  EXPECT_EQ(g_.InEdges(b)[0].other, a);
  EXPECT_TRUE(g_.OutEdges(b).empty());
}

// ---- d-hop neighborhoods ----------------------------------------------------

TEST_F(GraphTest, DHopNeighborhoodPath) {
  // 0 -> 1 -> 2 -> 3 -> 4 (chain).
  LabelId l = schema_->InternLabel("e");
  for (int i = 0; i < 5; ++i) g_.AddNode("n");
  for (NodeId i = 0; i + 1 < 5; ++i) ASSERT_TRUE(g_.AddEdge(i, i + 1, l).ok());
  NodeSet ball = DHopNeighborhood(g_, {2}, 1, GraphView::kNew);
  EXPECT_EQ(ball.size(), 3u);  // {1, 2, 3} — undirected hops
  EXPECT_TRUE(ball.Contains(1));
  EXPECT_TRUE(ball.Contains(3));
  EXPECT_FALSE(ball.Contains(0));
  NodeSet ball2 = DHopNeighborhood(g_, {2}, 2, GraphView::kNew);
  EXPECT_EQ(ball2.size(), 5u);
}

TEST_F(GraphTest, DHopNeighborhoodRespectsView) {
  LabelId l = schema_->InternLabel("e");
  NodeId a = g_.AddNode("a"), b = g_.AddNode("b"), c = g_.AddNode("c");
  ASSERT_TRUE(g_.AddEdge(a, b, l).ok());
  ASSERT_TRUE(g_.InsertEdge(b, c, l).ok());
  NodeSet old_ball = DHopNeighborhood(g_, {a}, 2, GraphView::kOld);
  EXPECT_FALSE(old_ball.Contains(c));
  NodeSet new_ball = DHopNeighborhood(g_, {a}, 2, GraphView::kNew);
  EXPECT_TRUE(new_ball.Contains(c));
}

TEST_F(GraphTest, NeighborhoodAdjSize) {
  LabelId l = schema_->InternLabel("e");
  NodeId a = g_.AddNode("a"), b = g_.AddNode("b");
  ASSERT_TRUE(g_.AddEdge(a, b, l).ok());
  NodeSet all = DHopNeighborhood(g_, {a}, 1, GraphView::kNew);
  EXPECT_EQ(NeighborhoodAdjSize(g_, all), 2u);  // one edge seen from both
}

// ---- Text I/O ---------------------------------------------------------------

TEST(GraphIoTest, RoundTrip) {
  SchemaPtr schema = Schema::Create();
  Graph g(schema);
  NodeId a = g.AddNode("person");
  g.SetAttr(a, "age", Value(int64_t{30}));
  g.SetAttr(a, "name", Value("alice"));
  NodeId b = g.AddNode("city");
  ASSERT_TRUE(g.AddEdge(a, b, "lives_in").ok());

  std::ostringstream os;
  ASSERT_TRUE(WriteGraphText(g, &os).ok());

  std::istringstream is(os.str());
  SchemaPtr schema2 = Schema::Create();
  auto loaded = ReadGraphText(&is, schema2);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const Graph& g2 = **loaded;
  ASSERT_EQ(g2.NumNodes(), 2u);
  EXPECT_EQ(g2.NodeLabelName(0), "person");
  AttrId age = *schema2->attrs().Find("age");
  AttrId name = *schema2->attrs().Find("name");
  EXPECT_EQ(g2.GetAttr(0, age)->AsInt(), 30);
  EXPECT_EQ(g2.GetAttr(0, name)->AsString(), "alice");
  EXPECT_TRUE(
      g2.HasEdge(0, 1, *schema2->labels().Find("lives_in"), GraphView::kNew));
}

TEST(GraphIoTest, RejectsMalformedInput) {
  SchemaPtr schema = Schema::Create();
  {
    std::istringstream is("X\tweird\n");
    EXPECT_FALSE(ReadGraphText(&is, schema).ok());
  }
  {
    std::istringstream is("N\tperson\tage=abc\n");
    EXPECT_FALSE(ReadGraphText(&is, schema).ok());
  }
  {
    std::istringstream is("N\tp\nE\t0\t5\te\n");
    EXPECT_FALSE(ReadGraphText(&is, schema).ok());
  }
}

TEST(GraphIoTest, SkipsCommentsAndBlankLines) {
  SchemaPtr schema = Schema::Create();
  std::istringstream is("# comment\n\nN\tperson\n");
  auto loaded = ReadGraphText(&is, schema);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ((*loaded)->NumNodes(), 1u);
}

// ---- Values -----------------------------------------------------------------

TEST(ValueTest, TypesAndEquality) {
  Value i(int64_t{42}), s("hello");
  EXPECT_TRUE(i.is_int());
  EXPECT_TRUE(s.is_string());
  EXPECT_EQ(i.AsInt(), 42);
  EXPECT_EQ(s.AsString(), "hello");
  EXPECT_EQ(i, Value(int64_t{42}));
  EXPECT_NE(i, Value(int64_t{43}));
  EXPECT_NE(Value(int64_t{1}), Value("1"));  // typed inequality
  EXPECT_EQ(i.ToString(), "42");
  EXPECT_EQ(s.ToString(), "\"hello\"");
  EXPECT_NE(i.Hash(), s.Hash());
}

}  // namespace
}  // namespace ngd
