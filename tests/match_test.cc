#include <gtest/gtest.h>

#include "match/homomorphism.h"
#include "test_util.h"

namespace ngd {
namespace {

class MatchTest : public ::testing::Test {
 protected:
  MatchTest() : schema_(Schema::Create()), g_(schema_) {
    person_ = schema_->InternLabel("person");
    city_ = schema_->InternLabel("city");
    knows_ = schema_->InternLabel("knows");
    lives_ = schema_->InternLabel("lives_in");
  }

  std::vector<Binding> AllMatches(const Pattern& pattern,
                                  GraphView view = GraphView::kNew) {
    SearchConfig cfg;
    cfg.graph = &g_;
    cfg.pattern = &pattern;
    cfg.view = view;
    cfg.find_violations = false;
    std::vector<Binding> out;
    RunBatchSearch(cfg, [&](const Binding& h) {
      out.push_back(h);
      return true;
    });
    return out;
  }

  SchemaPtr schema_;
  Graph g_;
  LabelId person_, city_, knows_, lives_;
};

TEST_F(MatchTest, SingleEdgePattern) {
  NodeId a = g_.AddNode(person_), b = g_.AddNode(person_),
         c = g_.AddNode(person_);
  ASSERT_TRUE(g_.AddEdge(a, b, knows_).ok());
  ASSERT_TRUE(g_.AddEdge(b, c, knows_).ok());

  Pattern p;
  int x = p.AddNode("x", person_);
  int y = p.AddNode("y", person_);
  ASSERT_TRUE(p.AddEdge(x, y, knows_).ok());

  auto matches = AllMatches(p);
  ASSERT_EQ(matches.size(), 2u);
}

TEST_F(MatchTest, LabelsFilterCandidates) {
  NodeId a = g_.AddNode(person_), b = g_.AddNode(city_);
  ASSERT_TRUE(g_.AddEdge(a, b, lives_).ok());

  Pattern wrong;
  int x = wrong.AddNode("x", city_);
  int y = wrong.AddNode("y", city_);
  ASSERT_TRUE(wrong.AddEdge(x, y, lives_).ok());
  EXPECT_TRUE(AllMatches(wrong).empty());

  Pattern right;
  x = right.AddNode("x", person_);
  y = right.AddNode("y", city_);
  ASSERT_TRUE(right.AddEdge(x, y, lives_).ok());
  EXPECT_EQ(AllMatches(right).size(), 1u);
}

TEST_F(MatchTest, EdgeLabelsMustAgree) {
  NodeId a = g_.AddNode(person_), b = g_.AddNode(person_);
  ASSERT_TRUE(g_.AddEdge(a, b, knows_).ok());
  Pattern p;
  int x = p.AddNode("x", person_);
  int y = p.AddNode("y", person_);
  ASSERT_TRUE(p.AddEdge(x, y, lives_).ok());
  EXPECT_TRUE(AllMatches(p).empty());
}

TEST_F(MatchTest, DirectionMatters) {
  NodeId a = g_.AddNode(person_), b = g_.AddNode(person_);
  ASSERT_TRUE(g_.AddEdge(a, b, knows_).ok());
  Pattern p;
  int x = p.AddNode("x", person_);
  int y = p.AddNode("y", person_);
  ASSERT_TRUE(p.AddEdge(y, x, knows_).ok());
  auto matches = AllMatches(p);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0][x], b);
  EXPECT_EQ(matches[0][y], a);
}

TEST_F(MatchTest, WildcardMatchesAnyNodeLabel) {
  NodeId a = g_.AddNode(person_), b = g_.AddNode(city_);
  ASSERT_TRUE(g_.AddEdge(a, b, lives_).ok());
  Pattern p;
  int x = p.AddNode("x", kWildcardLabel);
  int y = p.AddNode("y", kWildcardLabel);
  ASSERT_TRUE(p.AddEdge(x, y, lives_).ok());
  EXPECT_EQ(AllMatches(p).size(), 1u);
}

TEST_F(MatchTest, HomomorphismAllowsNodeFolding) {
  // Graph: a -> a (self loop). Pattern x -> y can fold both onto a.
  NodeId a = g_.AddNode(person_);
  ASSERT_TRUE(g_.AddEdge(a, a, knows_).ok());
  Pattern p;
  int x = p.AddNode("x", person_);
  int y = p.AddNode("y", person_);
  ASSERT_TRUE(p.AddEdge(x, y, knows_).ok());
  auto matches = AllMatches(p);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0][x], a);
  EXPECT_EQ(matches[0][y], a);
}

TEST_F(MatchTest, TrianglePatternRequiresAllEdges) {
  NodeId a = g_.AddNode(person_), b = g_.AddNode(person_),
         c = g_.AddNode(person_);
  ASSERT_TRUE(g_.AddEdge(a, b, knows_).ok());
  ASSERT_TRUE(g_.AddEdge(b, c, knows_).ok());
  Pattern tri;
  int x = tri.AddNode("x", person_);
  int y = tri.AddNode("y", person_);
  int z = tri.AddNode("z", person_);
  ASSERT_TRUE(tri.AddEdge(x, y, knows_).ok());
  ASSERT_TRUE(tri.AddEdge(y, z, knows_).ok());
  ASSERT_TRUE(tri.AddEdge(x, z, knows_).ok());
  EXPECT_TRUE(AllMatches(tri).empty());
  ASSERT_TRUE(g_.AddEdge(a, c, knows_).ok());
  EXPECT_EQ(AllMatches(tri).size(), 1u);
}

TEST_F(MatchTest, ViewDisciplineOldVsNew) {
  NodeId a = g_.AddNode(person_), b = g_.AddNode(person_),
         c = g_.AddNode(person_);
  ASSERT_TRUE(g_.AddEdge(a, b, knows_).ok());
  ASSERT_TRUE(g_.DeleteEdge(a, b, knows_).ok());
  ASSERT_TRUE(g_.InsertEdge(b, c, knows_).ok());
  Pattern p;
  int x = p.AddNode("x", person_);
  int y = p.AddNode("y", person_);
  ASSERT_TRUE(p.AddEdge(x, y, knows_).ok());
  auto old_matches = AllMatches(p, GraphView::kOld);
  ASSERT_EQ(old_matches.size(), 1u);
  EXPECT_EQ(old_matches[0][x], a);
  auto new_matches = AllMatches(p, GraphView::kNew);
  ASSERT_EQ(new_matches.size(), 1u);
  EXPECT_EQ(new_matches[0][x], b);
}

TEST_F(MatchTest, SeededSearchRespectsSeedLabelsAndEdges) {
  NodeId a = g_.AddNode(person_), b = g_.AddNode(city_);
  ASSERT_TRUE(g_.AddEdge(a, b, lives_).ok());
  Pattern p;
  int x = p.AddNode("x", person_);
  int y = p.AddNode("y", city_);
  ASSERT_TRUE(p.AddEdge(x, y, lives_).ok());
  MatchPlan plan = BuildMatchPlan(p, {x, y}, nullptr, nullptr);
  SearchConfig cfg;
  cfg.graph = &g_;
  cfg.pattern = &p;
  cfg.find_violations = false;
  int count = 0;
  Binding binding = {a, b};
  RunSeededSearch(cfg, plan, &binding, [&](const Binding&) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, 1);
  // Wrong seed labels: no match, no crash.
  Binding bad = {b, a};
  count = 0;
  RunSeededSearch(cfg, plan, &bad, [&](const Binding&) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, 0);
}

TEST_F(MatchTest, EarlyExitStopsSearch) {
  for (int i = 0; i < 10; ++i) {
    NodeId a = g_.AddNode(person_), b = g_.AddNode(person_);
    ASSERT_TRUE(g_.AddEdge(a, b, knows_).ok());
  }
  Pattern p;
  int x = p.AddNode("x", person_);
  int y = p.AddNode("y", person_);
  ASSERT_TRUE(p.AddEdge(x, y, knows_).ok());
  SearchConfig cfg;
  cfg.graph = &g_;
  cfg.pattern = &p;
  cfg.find_violations = false;
  int count = 0;
  bool completed = RunBatchSearch(cfg, [&](const Binding&) {
    ++count;
    return false;  // stop immediately
  });
  EXPECT_FALSE(completed);
  EXPECT_EQ(count, 1);
}

TEST_F(MatchTest, LiteralPruningFindsOnlyViolations) {
  AttrId v = schema_->InternAttr("v");
  // Three knows-edges with different attribute configurations.
  auto mk = [&](int64_t xv, int64_t yv) {
    NodeId a = g_.AddNode(person_), b = g_.AddNode(person_);
    g_.SetAttr(a, v, Value(xv));
    g_.SetAttr(b, v, Value(yv));
    EXPECT_TRUE(g_.AddEdge(a, b, knows_).ok());
    return std::make_pair(a, b);
  };
  mk(1, 2);                 // X holds (x.v=1), Y holds (y.v=2)
  auto bad = mk(1, 99);     // X holds, Y fails -> violation
  mk(5, 99);                // X fails -> not a violation

  Pattern p;
  int x = p.AddNode("x", person_);
  int y = p.AddNode("y", person_);
  ASSERT_TRUE(p.AddEdge(x, y, knows_).ok());
  std::vector<Literal> X{
      Literal(Expr::Var(x, v), CmpOp::kEq, Expr::IntConst(1))};
  std::vector<Literal> Y{
      Literal(Expr::Var(y, v), CmpOp::kEq, Expr::IntConst(2))};

  SearchConfig cfg;
  cfg.graph = &g_;
  cfg.pattern = &p;
  cfg.x = &X;
  cfg.y = &Y;
  cfg.find_violations = true;
  std::vector<Binding> violations;
  RunBatchSearch(cfg, [&](const Binding& h) {
    violations.push_back(h);
    return true;
  });
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0][x], bad.first);
  EXPECT_EQ(violations[0][y], bad.second);
}

TEST_F(MatchTest, MissingAttributeMakesYFailAndXFail) {
  AttrId v = schema_->InternAttr("v");
  NodeId a = g_.AddNode(person_), b = g_.AddNode(person_);
  ASSERT_TRUE(g_.AddEdge(a, b, knows_).ok());
  // No attributes set at all.
  Pattern p;
  int x = p.AddNode("x", person_);
  int y = p.AddNode("y", person_);
  ASSERT_TRUE(p.AddEdge(x, y, knows_).ok());

  // Empty X, Y references missing attr: every match is a violation.
  std::vector<Literal> empty_x;
  std::vector<Literal> Y{
      Literal(Expr::Var(y, v), CmpOp::kGe, Expr::IntConst(0))};
  SearchConfig cfg;
  cfg.graph = &g_;
  cfg.pattern = &p;
  cfg.x = &empty_x;
  cfg.y = &Y;
  int count = 0;
  RunBatchSearch(cfg, [&](const Binding&) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, 1);

  // X references missing attr: precondition never holds, no violations.
  std::vector<Literal> X{
      Literal(Expr::Var(x, v), CmpOp::kGe, Expr::IntConst(0))};
  cfg.x = &X;
  count = 0;
  RunBatchSearch(cfg, [&](const Binding&) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, 0);
}

TEST_F(MatchTest, NodeScopeRestrictsCandidates) {
  NodeId a = g_.AddNode(person_), b = g_.AddNode(person_),
         c = g_.AddNode(person_), d = g_.AddNode(person_);
  ASSERT_TRUE(g_.AddEdge(a, b, knows_).ok());
  ASSERT_TRUE(g_.AddEdge(c, d, knows_).ok());
  Pattern p;
  int x = p.AddNode("x", person_);
  int y = p.AddNode("y", person_);
  ASSERT_TRUE(p.AddEdge(x, y, knows_).ok());
  NodeSet scope(g_.NumNodes());
  scope.Add(a);
  scope.Add(b);
  SearchConfig cfg;
  cfg.graph = &g_;
  cfg.pattern = &p;
  cfg.node_scope = &scope;
  cfg.find_violations = false;
  std::vector<Binding> matches;
  RunBatchSearch(cfg, [&](const Binding& h) {
    matches.push_back(h);
    return true;
  });
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0][x], a);
}

// ---- MatchPlan structure ------------------------------------------------------

TEST_F(MatchTest, PlanCoversAllNodesConnected) {
  SchemaPtr schema = Schema::Create();
  NgdSet rules = testing_util::MustParse(testing_util::kPhi4, schema);
  ASSERT_EQ(rules.size(), 1u);
  const Pattern& p = rules[0].pattern();
  // Seed on the first pattern edge's endpoints.
  const PatternEdge& pe = p.edge(0);
  MatchPlan plan = BuildMatchPlan(p, {pe.src, pe.dst}, &rules[0].X(),
                                  &rules[0].Y());
  EXPECT_EQ(plan.seeds.size(), 2u);
  EXPECT_EQ(plan.steps.size(), p.NumNodes() - 2);
  // Every step's anchor must already be matched.
  std::vector<char> bound(p.NumNodes(), 0);
  for (int s : plan.seeds) bound[s] = 1;
  for (const auto& step : plan.steps) {
    EXPECT_TRUE(bound[step.anchor_node]);
    EXPECT_FALSE(bound[step.node]);
    bound[step.node] = 1;
  }
  // All pattern edges are covered exactly once (anchor or check).
  std::vector<int> edge_seen(p.NumEdges(), 0);
  for (int e : plan.seed_check_edges) ++edge_seen[e];
  for (const auto& step : plan.steps) {
    ++edge_seen[step.anchor_edge];
    for (int e : step.check_edges) ++edge_seen[e];
  }
  for (size_t e = 0; e < p.NumEdges(); ++e) {
    EXPECT_EQ(edge_seen[e], 1) << "edge " << e;
  }
}

TEST_F(MatchTest, PlanMarksLiteralsReadyExactlyOnce) {
  SchemaPtr schema = Schema::Create();
  NgdSet rules = testing_util::MustParse(testing_util::kPhi4, schema);
  const Pattern& p = rules[0].pattern();
  const PatternEdge& pe = p.edge(0);
  MatchPlan plan =
      BuildMatchPlan(p, {pe.src, pe.dst}, &rules[0].X(), &rules[0].Y());
  std::vector<int> x_ready(rules[0].X().size(), 0);
  std::vector<int> y_ready(rules[0].Y().size(), 0);
  for (int i : plan.seed_ready_x) ++x_ready[i];
  for (int i : plan.seed_ready_y) ++y_ready[i];
  for (const auto& step : plan.steps) {
    for (int i : step.ready_x) ++x_ready[i];
    for (int i : step.ready_y) ++y_ready[i];
  }
  for (int c : x_ready) EXPECT_EQ(c, 1);
  for (int c : y_ready) EXPECT_EQ(c, 1);
}

TEST_F(MatchTest, ChooseStartPrefersSelectiveLabel) {
  // 100 persons, 1 city.
  for (int i = 0; i < 100; ++i) g_.AddNode(person_);
  NodeId c = g_.AddNode(city_);
  ASSERT_TRUE(g_.AddEdge(0, c, lives_).ok());
  Pattern p;
  p.AddNode("x", person_);
  int y = p.AddNode("y", city_);
  ASSERT_TRUE(p.AddEdge(0, y, lives_).ok());
  EXPECT_EQ(ChooseStartNode(p, g_), y);
}

}  // namespace
}  // namespace ngd
