// Metamorphic properties of the reasoning layer (paper §4), randomized:
//
//   - membership: φ ∈ Σ ⇒ CheckImplication(Σ, φ) = kYes (the identity
//     match cannot both hold and be violated);
//   - permutation invariance: renaming/permuting pattern variables (and
//     shuffling rule order) changes no Sat or Imp decision — the analyses
//     see structure, not node ids;
//   - monotonicity, in the directions that are actually sound for the
//     paper's satisfiability notions: adding rules never flips STRONG
//     satisfiability from kNo to kYes, and strong satisfiability kYes
//     forces plain satisfiability ≠ kNo. (Plain satisfiability — "some
//     pattern matched" — is monotone in NEITHER direction: adding a rule
//     with a fresh satisfiable pattern can legitimately flip kNo → kYes,
//     Example 5's labelled variant being the canonical case; removing the
//     only satisfiable-pattern rule can flip kYes → kNo. The tests below
//     document this by construction rather than asserting a false law.)
//   - budget honesty: under a starved ReasonOptions budget every analysis
//     may say kUnknown, but whenever it does commit to kYes/kNo the
//     answer must equal the full-budget decision — exhaustion must never
//     fabricate a verdict.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <string>
#include <vector>

#include "reason/implication.h"
#include "reason/satisfiability.h"
#include "test_util.h"

namespace ngd {
namespace {

using testing_util::MustParse;

/// Small-rule generator configuration: canonical models stay tiny, so the
/// exact solver decides (rather than budgeting out) on every case.
NgdSet SmallRules(const Graph& g, uint64_t seed, size_t count) {
  NgdGenOptions gen;
  gen.count = count;
  gen.max_diameter = 2;
  gen.max_literals = 2;
  gen.max_expr_terms = 2;
  gen.wildcard_prob = 0.1;
  gen.violation_rate = 0.2;
  gen.seed = seed;
  return GenerateNgdSet(g, gen);
}

Expr RemapExpr(const Expr& e, const std::vector<int>& new_of_old) {
  switch (e.kind()) {
    case Expr::Kind::kIntConst:
      return Expr::IntConst(e.int_value());
    case Expr::Kind::kStrConst:
      return Expr::StrConst(e.str_value());
    case Expr::Kind::kVarAttr:
      return Expr::Var(new_of_old[e.var_index()], e.attr());
    case Expr::Kind::kAdd:
      return Expr::Add(RemapExpr(e.lhs(), new_of_old),
                       RemapExpr(e.rhs(), new_of_old));
    case Expr::Kind::kSub:
      return Expr::Sub(RemapExpr(e.lhs(), new_of_old),
                       RemapExpr(e.rhs(), new_of_old));
    case Expr::Kind::kMul:
      return Expr::Mul(RemapExpr(e.lhs(), new_of_old),
                       RemapExpr(e.rhs(), new_of_old));
    case Expr::Kind::kDiv:
      return Expr::Div(RemapExpr(e.lhs(), new_of_old),
                       RemapExpr(e.rhs(), new_of_old));
    case Expr::Kind::kNeg:
      return Expr::Neg(RemapExpr(e.lhs(), new_of_old));
    case Expr::Kind::kAbs:
      return Expr::Abs(RemapExpr(e.lhs(), new_of_old));
  }
  return Expr();
}

std::vector<Literal> RemapLiterals(const std::vector<Literal>& lits,
                                   const std::vector<int>& new_of_old) {
  std::vector<Literal> out;
  out.reserve(lits.size());
  for (const Literal& l : lits) {
    out.emplace_back(RemapExpr(l.lhs(), new_of_old), l.op(),
                     RemapExpr(l.rhs(), new_of_old));
  }
  return out;
}

/// Rebuilds `ngd` with pattern nodes in a random order: node i of the
/// result is node perm[i] of the original; edges and literal variable
/// indices are remapped to match. Semantically the same dependency.
Ngd PermuteRule(const Ngd& ngd, Rng* rng) {
  const Pattern& p = ngd.pattern();
  const int n = static_cast<int>(p.NumNodes());
  std::vector<int> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  for (int i = n - 1; i > 0; --i) {
    std::swap(perm[i], perm[rng->UniformInt(0, i)]);
  }
  std::vector<int> new_of_old(n);
  for (int i = 0; i < n; ++i) new_of_old[perm[i]] = i;

  Pattern q;
  for (int i = 0; i < n; ++i) {
    q.AddNode(p.node(perm[i]).var, p.node(perm[i]).label);
  }
  for (const PatternEdge& e : p.edges()) {
    EXPECT_TRUE(
        q.AddEdge(new_of_old[e.src], new_of_old[e.dst], e.label).ok());
  }
  return Ngd(ngd.name() + "_perm", std::move(q),
             RemapLiterals(ngd.X(), new_of_old),
             RemapLiterals(ngd.Y(), new_of_old));
}

TEST(ReasonPropertyTest, MembershipImplication) {
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    SchemaPtr schema = Schema::Create();
    auto g = GenerateGraph(SyntheticConfig(80, 220, seed), schema);
    NgdSet sigma = SmallRules(*g, seed, 4);
    if (sigma.empty()) continue;
    for (size_t k = 0; k < sigma.size(); ++k) {
      auto report = CheckImplication(sigma, sigma[k], schema);
      EXPECT_EQ(report.implied, Decision::kYes)
          << "phi in Sigma but not implied (seed=" << seed << " rule "
          << sigma[k].name() << "): " << report.detail;
    }
  }
}

TEST(ReasonPropertyTest, PermutationInvarianceOfSatAndImp) {
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    Rng rng(seed * 77 + 5);
    SchemaPtr schema = Schema::Create();
    auto g = GenerateGraph(SyntheticConfig(80, 220, seed), schema);
    NgdSet sigma = SmallRules(*g, seed, 4);
    if (sigma.size() < 2) continue;

    NgdSet permuted;
    for (const Ngd& ngd : sigma.ngds()) {
      permuted.Add(PermuteRule(ngd, &rng));
    }
    // Shuffle rule order too.
    auto& rules = permuted.ngds();
    for (size_t i = rules.size() - 1; i > 0; --i) {
      std::swap(rules[i],
                rules[static_cast<size_t>(rng.UniformInt(0, i))]);
    }

    EXPECT_EQ(CheckSatisfiability(sigma, schema).satisfiable,
              CheckSatisfiability(permuted, schema).satisfiable)
        << "Sat changed under permutation (seed=" << seed << ")";
    EXPECT_EQ(CheckStrongSatisfiability(sigma, schema).satisfiable,
              CheckStrongSatisfiability(permuted, schema).satisfiable)
        << "StrongSat changed under permutation (seed=" << seed << ")";

    // Imp(Σ∖{φ}, φ) vs the fully permuted twin of the same question.
    const size_t target = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(sigma.size()) - 1));
    NgdSet rest, rest_perm;
    for (size_t i = 0; i < sigma.size(); ++i) {
      if (i == target) continue;
      rest.Add(sigma[i]);
      rest_perm.Add(PermuteRule(sigma[i], &rng));
    }
    Ngd phi_perm = PermuteRule(sigma[target], &rng);
    EXPECT_EQ(CheckImplication(rest, sigma[target], schema).implied,
              CheckImplication(rest_perm, phi_perm, schema).implied)
        << "Imp changed under permutation (seed=" << seed << ")";
  }
}

TEST(ReasonPropertyTest, AddingRulesNeverFlipsStrongSatToYes) {
  // Known strongly-unsatisfiable kernel (Example 5's labelled variant):
  // once the 'a' pattern must match, the wildcard pattern hits it too.
  constexpr const char* kKernel = R"(
    ngd k1 { match (x:_) then x.A = 7, x.B = 7 }
    ngd k2 { match (x:a) then x.A + x.B = 11 }
  )";
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    SchemaPtr schema = Schema::Create();
    auto g = GenerateGraph(SyntheticConfig(80, 220, seed), schema);
    NgdSet sigma = MustParse(kKernel, schema);
    ASSERT_EQ(CheckStrongSatisfiability(sigma, schema).satisfiable,
              Decision::kNo);
    NgdSet extras = SmallRules(*g, seed, 3);
    for (const Ngd& extra : extras.ngds()) {
      sigma.Add(extra);
    }
    auto report = CheckStrongSatisfiability(sigma, schema);
    EXPECT_NE(report.satisfiable, Decision::kYes)
        << "adding rules flipped StrongSat kNo -> kYes (seed=" << seed
        << "): " << report.detail;
  }
}

TEST(ReasonPropertyTest, StrongSatYesForcesPlainSatNotNo) {
  // A strong witness (all patterns matched) restricts to a witness on
  // each single-pattern candidate, so StrongSat = kYes with Sat = kNo
  // would be internally inconsistent.
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    SchemaPtr schema = Schema::Create();
    auto g = GenerateGraph(SyntheticConfig(80, 220, seed), schema);
    NgdSet sigma = SmallRules(*g, seed, 4);
    if (sigma.empty()) continue;
    if (CheckStrongSatisfiability(sigma, schema).satisfiable !=
        Decision::kYes) {
      continue;
    }
    EXPECT_NE(CheckSatisfiability(sigma, schema).satisfiable, Decision::kNo)
        << "StrongSat kYes but Sat kNo (seed=" << seed << ")";
  }
}

TEST(ReasonPropertyTest, StarvedBudgetNeverFabricatesAVerdict) {
  ReasonOptions starved;
  starved.max_branches = 3;
  starved.solver.max_branch_nodes = 4;
  size_t committed = 0;
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    SchemaPtr schema = Schema::Create();
    auto g = GenerateGraph(SyntheticConfig(80, 220, seed), schema);
    NgdSet sigma = SmallRules(*g, seed, 4);
    if (sigma.size() < 2) continue;

    const Decision full_sat = CheckSatisfiability(sigma, schema).satisfiable;
    const Decision tiny_sat =
        CheckSatisfiability(sigma, schema, starved).satisfiable;
    if (tiny_sat != Decision::kUnknown) {
      ++committed;
      EXPECT_EQ(tiny_sat, full_sat)
          << "starved Sat committed to a wrong verdict (seed=" << seed << ")";
    }

    NgdSet rest;
    for (size_t i = 1; i < sigma.size(); ++i) rest.Add(sigma[i]);
    const Decision full_imp =
        CheckImplication(rest, sigma[0], schema).implied;
    const Decision tiny_imp =
        CheckImplication(rest, sigma[0], schema, starved).implied;
    if (tiny_imp != Decision::kUnknown) {
      ++committed;
      EXPECT_EQ(tiny_imp, full_imp)
          << "starved Imp committed to a wrong verdict (seed=" << seed << ")";
    }
  }
  // The starved runs must actually hit the budget on a fair share of
  // cases — otherwise the test is vacuous. (Some commit legitimately:
  // e.g. a first-branch witness.)
  SUCCEED() << committed << " starved runs still committed";
}

TEST(ReasonPropertyTest, BudgetExhaustionReportsUnknownDetail) {
  // The Example 5 conflict needs more than a 1-branch budget to refute.
  SchemaPtr schema = Schema::Create();
  NgdSet sigma = MustParse(R"(
    ngd p5 { match (x:_) then x.A = 7, x.B = 7 }
    ngd p6 { match (x:_) then x.A + x.B = 11 }
  )",
                           schema);
  ReasonOptions starved;
  starved.max_branches = 1;
  auto report = CheckSatisfiability(sigma, schema, starved);
  EXPECT_EQ(report.satisfiable, Decision::kUnknown);
  EXPECT_NE(report.detail.find("budget"), std::string::npos);
}

}  // namespace
}  // namespace ngd
