// GraphSnapshot (CSR, label-partitioned adjacency) correctness.
//
// Two layers of coverage:
//   1. Structural unit tests: the CSR ranges, candidate arrays, flat
//      attributes and binary-search HasEdge agree with the live Graph on
//      hand-built graphs, including overlay states and both views.
//   2. An equivalence property test (random graphs × generated Σ, both
//      views): snapshot-based Dect returns exactly the same VioSet as
//      live-graph Dect — the pre-snapshot engine is kept as the oracle
//      via DectOptions snapshot_mode = kNever. Runs under ASan/UBSan in
//      the sanitizer CI job like every other suite.

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "detect/dect.h"
#include "discovery/ngd_generator.h"
#include "graph/accessor.h"
#include "graph/generators.h"
#include "graph/snapshot.h"
#include "graph/updates.h"
#include "parallel/pdect.h"
#include "test_util.h"

namespace ngd {
namespace {

std::vector<NodeId> ToVector(GraphSnapshot::IdRange r) {
  return std::vector<NodeId>(r.begin(), r.end());
}

class SnapshotTest : public ::testing::Test {
 protected:
  SnapshotTest() : schema_(Schema::Create()), g_(schema_) {
    person_ = schema_->InternLabel("person");
    city_ = schema_->InternLabel("city");
    knows_ = schema_->InternLabel("knows");
    likes_ = schema_->InternLabel("likes");
    lives_ = schema_->InternLabel("lives_in");
  }

  SchemaPtr schema_;
  Graph g_;
  LabelId person_, city_, knows_, likes_, lives_;
};

TEST_F(SnapshotTest, LabelPartitionedRangesAreSortedAndComplete) {
  NodeId a = g_.AddNode(person_), b = g_.AddNode(person_),
         c = g_.AddNode(person_), d = g_.AddNode(city_);
  // Interleave labels so the partitioning actually has to regroup.
  ASSERT_TRUE(g_.AddEdge(a, c, knows_).ok());
  ASSERT_TRUE(g_.AddEdge(a, d, lives_).ok());
  ASSERT_TRUE(g_.AddEdge(a, b, knows_).ok());
  ASSERT_TRUE(g_.AddEdge(a, b, likes_).ok());
  ASSERT_TRUE(g_.AddEdge(b, a, knows_).ok());

  GraphSnapshot snap(g_, GraphView::kNew);
  EXPECT_EQ(snap.NumNodes(), 4u);
  EXPECT_EQ(snap.NumEdges(), 5u);

  EXPECT_EQ(ToVector(snap.OutNeighbors(a, knows_)),
            (std::vector<NodeId>{b, c}));  // sorted by id
  EXPECT_EQ(ToVector(snap.OutNeighbors(a, likes_)),
            (std::vector<NodeId>{b}));
  EXPECT_EQ(ToVector(snap.OutNeighbors(a, lives_)),
            (std::vector<NodeId>{d}));
  EXPECT_TRUE(snap.OutNeighbors(a, person_).empty());  // not an edge label
  EXPECT_EQ(snap.OutDegree(a), 4u);
  EXPECT_EQ(snap.InDegree(a), 1u);

  EXPECT_EQ(ToVector(snap.InNeighbors(b, knows_)),
            (std::vector<NodeId>{a}));
  EXPECT_EQ(ToVector(snap.InNeighbors(d, lives_)),
            (std::vector<NodeId>{a}));
  EXPECT_TRUE(snap.OutNeighbors(d, lives_).empty());
}

TEST_F(SnapshotTest, HasEdgeMatchesLiveGraph) {
  NodeId a = g_.AddNode(person_), b = g_.AddNode(person_),
         c = g_.AddNode(city_);
  ASSERT_TRUE(g_.AddEdge(a, b, knows_).ok());
  ASSERT_TRUE(g_.AddEdge(a, a, knows_).ok());  // self-loop
  ASSERT_TRUE(g_.AddEdge(b, c, lives_).ok());

  GraphSnapshot snap(g_, GraphView::kNew);
  for (NodeId s = 0; s < g_.NumNodes(); ++s) {
    for (NodeId d = 0; d < g_.NumNodes(); ++d) {
      for (LabelId l : {knows_, likes_, lives_}) {
        EXPECT_EQ(snap.HasEdge(s, d, l),
                  g_.HasEdge(s, d, l, GraphView::kNew))
            << s << "->" << d << " label " << l;
      }
    }
  }
  EXPECT_FALSE(snap.HasEdge(a, 99, knows_));  // out-of-range endpoint
}

TEST_F(SnapshotTest, ViewsResolveOverlayStates) {
  NodeId a = g_.AddNode(person_), b = g_.AddNode(person_),
         c = g_.AddNode(person_);
  ASSERT_TRUE(g_.AddEdge(a, b, knows_).ok());
  ASSERT_TRUE(g_.DeleteEdge(a, b, knows_).ok());   // kOld only
  ASSERT_TRUE(g_.InsertEdge(b, c, knows_).ok());   // kNew only
  ASSERT_TRUE(g_.AddEdge(c, a, knows_).ok());      // both

  GraphSnapshot old_snap(g_, GraphView::kOld);
  GraphSnapshot new_snap(g_, GraphView::kNew);

  EXPECT_TRUE(old_snap.HasEdge(a, b, knows_));
  EXPECT_FALSE(new_snap.HasEdge(a, b, knows_));
  EXPECT_FALSE(old_snap.HasEdge(b, c, knows_));
  EXPECT_TRUE(new_snap.HasEdge(b, c, knows_));
  EXPECT_TRUE(old_snap.HasEdge(c, a, knows_));
  EXPECT_TRUE(new_snap.HasEdge(c, a, knows_));
  EXPECT_EQ(old_snap.NumEdges(), 2u);
  EXPECT_EQ(new_snap.NumEdges(), 2u);
}

TEST_F(SnapshotTest, CandidateArraysAndAttributes) {
  AttrId age = schema_->InternAttr("age");
  AttrId name = schema_->InternAttr("name");
  NodeId a = g_.AddNode(person_);
  NodeId b = g_.AddNode(city_);
  NodeId c = g_.AddNode(person_);
  g_.SetAttr(a, age, Value(int64_t{41}));
  g_.SetAttr(c, name, Value("carol"));
  g_.SetAttr(c, age, Value(int64_t{7}));

  GraphSnapshot snap(g_, GraphView::kNew);
  EXPECT_EQ(ToVector(snap.NodesWithLabel(person_)),
            (std::vector<NodeId>{a, c}));
  EXPECT_EQ(ToVector(snap.NodesWithLabel(city_)), (std::vector<NodeId>{b}));
  EXPECT_EQ(snap.CandidateCount(person_), 2u);
  EXPECT_TRUE(snap.NodesWithLabel(kWildcardLabel).empty());

  ASSERT_NE(snap.GetAttr(a, age), nullptr);
  EXPECT_EQ(snap.GetAttr(a, age)->AsInt(), 41);
  EXPECT_EQ(snap.GetAttr(a, name), nullptr);
  ASSERT_NE(snap.GetAttr(c, name), nullptr);
  EXPECT_EQ(snap.GetAttr(c, name)->AsString(), "carol");
  ASSERT_NE(snap.GetAttr(c, age), nullptr);
  EXPECT_EQ(snap.GetAttr(c, age)->AsInt(), 7);
  EXPECT_EQ(snap.GetAttr(b, age), nullptr);
}

TEST_F(SnapshotTest, AccessorServesBothBackendsIdentically) {
  NodeId a = g_.AddNode(person_), b = g_.AddNode(person_),
         c = g_.AddNode(city_);
  ASSERT_TRUE(g_.AddEdge(a, b, knows_).ok());
  ASSERT_TRUE(g_.AddEdge(b, c, lives_).ok());
  GraphSnapshot snap(g_, GraphView::kNew);

  GraphAccessor live(g_, GraphView::kNew);
  GraphAccessor frozen(snap);
  for (const GraphAccessor* acc : {&live, &frozen}) {
    EXPECT_EQ(acc->NumNodes(), 3u);
    EXPECT_EQ(acc->NodeLabel(c), city_);
    EXPECT_TRUE(acc->HasEdge(a, b, knows_));
    EXPECT_FALSE(acc->HasEdge(b, a, knows_));
    EXPECT_EQ(acc->CandidateCount(person_), 2u);
    EXPECT_EQ(acc->CandidateCount(kWildcardLabel), 3u);
    std::vector<NodeId> nbrs;
    acc->ForEachNeighbor(a, /*out=*/true, knows_, [&](NodeId w) {
      nbrs.push_back(w);
      return true;
    });
    EXPECT_EQ(nbrs, (std::vector<NodeId>{b}));
    std::vector<NodeId> cands;
    acc->ForEachCandidate(person_, [&](NodeId v) {
      cands.push_back(v);
      return true;
    });
    std::sort(cands.begin(), cands.end());
    EXPECT_EQ(cands, (std::vector<NodeId>{a, b}));
  }
}

TEST_F(SnapshotTest, WantSnapshotCostModel) {
  // Empty graph: nothing to amortize.
  NgdSet empty_sigma;
  EXPECT_FALSE(WantSnapshot(g_, empty_sigma));

  for (int i = 0; i < 50; ++i) {
    NodeId a = g_.AddNode(person_), b = g_.AddNode(person_);
    ASSERT_TRUE(g_.AddEdge(a, b, knows_).ok());
  }
  NodeId lone_city = g_.AddNode(city_);
  ASSERT_TRUE(g_.AddEdge(0, lone_city, lives_).ok());

  auto make_rule = [&](LabelId start_label) {
    Pattern p;
    int x = p.AddNode("x", start_label);
    int y = p.AddNode("y", kWildcardLabel);
    EXPECT_TRUE(
        p.AddEdge(x, y, start_label == city_ ? lives_ : knows_).ok());
    return Ngd("r", std::move(p), {}, {});
  };

  // A handful of selective rules (one candidate each): live engine.
  NgdSet selective;
  for (int i = 0; i < 4; ++i) selective.Add(make_rule(city_));
  EXPECT_FALSE(WantSnapshot(g_, selective));

  // Many unselective rules (every person is a seed): seed volume crosses
  // the 8|V| threshold and the snapshot build amortizes.
  NgdSet broad;
  for (int i = 0; i < 12; ++i) broad.Add(make_rule(person_));
  EXPECT_TRUE(WantSnapshot(g_, broad));

  // Pending-overlay regression: delete every edge (pending, uncommitted).
  // kNew is now edge-empty — a snapshot of it would be pointless — while
  // kOld still holds the full graph. The guard and the seed counting must
  // agree on the view being detected: the old code summed kNew+kOld edges
  // but counted candidates on kNew, so this graph took the wrong branch.
  std::vector<std::tuple<NodeId, NodeId, LabelId>> edges;
  GraphAccessor acc(g_, GraphView::kNew);
  for (NodeId v = 0; v < g_.NumNodes(); ++v) {
    for (const LabelId lbl : {knows_, lives_}) {
      acc.ForEachNeighbor(v, /*out=*/true, lbl, [&](NodeId w) {
        edges.emplace_back(v, w, lbl);
        return true;
      });
    }
  }
  ASSERT_FALSE(edges.empty());
  for (const auto& [src, dst, lbl] : edges) {
    ASSERT_TRUE(g_.DeleteEdge(src, dst, lbl).ok());
  }
  ASSERT_EQ(g_.NumEdges(GraphView::kNew), 0u);
  ASSERT_GT(g_.NumEdges(GraphView::kOld), 0u);
  EXPECT_FALSE(WantSnapshot(g_, broad));                  // detected view kNew
  EXPECT_FALSE(WantSnapshot(g_, broad, GraphView::kNew));
  EXPECT_TRUE(WantSnapshot(g_, broad, GraphView::kOld));  // kOld unaffected
  g_.Rollback();
}

// ---- Equivalence property: snapshot Dect == live Dect ----------------------

struct EquivCase {
  const char* name;
  size_t nodes;
  size_t edges;
  size_t rules;
  double wildcard_prob;
  uint64_t seed;
};

void PrintTo(const EquivCase& c, std::ostream* os) { *os << c.name; }

class SnapshotEquivalenceTest : public ::testing::TestWithParam<EquivCase> {};

TEST_P(SnapshotEquivalenceTest, DectAgreesOnBothViews) {
  const EquivCase& ec = GetParam();
  SchemaPtr schema = Schema::Create();
  auto g = GenerateGraph(SyntheticConfig(ec.nodes, ec.edges, ec.seed),
                         schema);

  NgdGenOptions gen;
  gen.count = ec.rules;
  gen.max_diameter = 3;
  gen.seed = ec.seed + 1;
  gen.violation_rate = 0.2;
  gen.wildcard_prob = ec.wildcard_prob;
  NgdSet sigma = GenerateNgdSet(*g, gen);
  ASSERT_GT(sigma.size(), 0u);

  // Put the overlay in play so kOld and kNew genuinely differ.
  UpdateGenOptions up;
  up.fraction = 0.12;
  up.seed = ec.seed + 2;
  UpdateBatch batch = GenerateUpdateBatch(g.get(), up);
  ASSERT_TRUE(ApplyUpdateBatch(g.get(), &batch).ok());

  for (GraphView view : {GraphView::kOld, GraphView::kNew}) {
    DectOptions live_opts{view, 0, SnapshotMode::kNever};
    DectOptions snap_opts{view, 0, SnapshotMode::kAlways};
    VioSet live = Dect(*g, sigma, live_opts);
    VioSet snap = Dect(*g, sigma, snap_opts);
    ASSERT_EQ(live.size(), snap.size())
        << ec.name << " view " << static_cast<int>(view);
    for (const auto& v : live.items()) {
      EXPECT_TRUE(snap.Contains(v))
          << "snapshot Dect missing a violation of rule "
          << sigma[v.ngd_index].name();
    }
    // PDect over the shared snapshot agrees too.
    PDectOptions popts;
    popts.num_processors = 3;
    popts.view = view;
    VioSet parallel = PDect(*g, sigma, popts).vio;
    EXPECT_EQ(parallel.size(), live.size());
    for (const auto& v : parallel.items()) {
      EXPECT_TRUE(live.Contains(v));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Randomized, SnapshotEquivalenceTest,
    ::testing::Values(
        EquivCase{"small", 300, 700, 12, 0.05, 201},
        EquivCase{"medium", 800, 2000, 12, 0.05, 202},
        EquivCase{"dense", 400, 2400, 10, 0.05, 203},
        EquivCase{"wildcard_heavy", 400, 1200, 10, 0.5, 204},
        EquivCase{"sparse", 1200, 1500, 10, 0.15, 205},
        EquivCase{"seed_variant", 500, 1200, 12, 0.25, 206}),
    [](const ::testing::TestParamInfo<EquivCase>& info) {
      return info.param.name;
    });

// The hand-written paper fixture must agree as well: G4 × φ4 is the
// Example 3 fake-account violation (multi-edge pattern, linear literal
// with coefficients).
TEST(SnapshotFixtureTest, PaperRulesAgreeLiveVsSnapshot) {
  testing_util::NamedGraph g4 = testing_util::BuildG4();
  NgdSet rules = testing_util::MustParse(testing_util::kPhi4, g4.schema);
  ASSERT_EQ(rules.size(), 1u);

  DectOptions live_opts{GraphView::kNew, 0, SnapshotMode::kNever};
  DectOptions snap_opts{GraphView::kNew, 0, SnapshotMode::kAlways};
  VioSet live = Dect(*g4.graph, rules, live_opts);
  VioSet snap = Dect(*g4.graph, rules, snap_opts);
  EXPECT_EQ(live.size(), 1u);  // the Example 3 violation
  ASSERT_EQ(snap.size(), live.size());
  for (const auto& v : live.items()) EXPECT_TRUE(snap.Contains(v));
}

}  // namespace
}  // namespace ngd
