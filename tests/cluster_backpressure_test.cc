// Producer backpressure in WorkStealingPool (parallel/cluster.h).
//
// ROADMAP item 3's named bug: on a starved consumer (the 1-core
// fig4_il configuration — p worker threads sharing one core), mid-run
// split broadcasts and forwards accumulated unbounded queue state. The
// fix bounds every mid-run Spawn/Forward with `max_queue_depth`: a
// saturated target pushes back and the unit executes inline on the
// producing worker instead of enqueueing.
//
// Evidence here:
//   1. a fan-out storm aimed at one queue — bounded run processes every
//      unit exactly once AND holds the observed peak queue depth at the
//      bound (plus the documented one-producer-per-queue slack), while
//      the unbounded control only guarantees the count;
//   2. the engines under the tightest bound — PDect and PIncDect with
//      max_queue_depth = 1 stay byte-identical to the sequential
//      oracles on randomized workloads, so inline execution changes
//      scheduling only, never results.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <sstream>
#include <vector>

#include "detect/dect.h"
#include "detect/inc_dect.h"
#include "graph/updates.h"
#include "parallel/cluster.h"
#include "parallel/pdect.h"
#include "parallel/pinc_dect.h"
#include "test_util.h"

namespace ngd {
namespace {

struct FanoutUnit {
  int depth = 0;
};

/// Binary fan-out of the given depth, every spawn aimed at queue
/// `target`: the worst-case producer storm for one consumer. Returns the
/// metrics after the drain; `processed` counts process-fn invocations
/// (queued and inline alike).
ClusterMetricsSnapshot RunStorm(int p, size_t max_queue_depth, int fan_depth,
                                int target, std::atomic<uint64_t>* processed) {
  ClusterMetrics metrics;
  WorkStealingPool<FanoutUnit> pool(p, &metrics, /*enable_steal=*/false,
                                    max_queue_depth);
  for (int i = 0; i < p; ++i) pool.Seed(i, FanoutUnit{0});
  pool.Run(
      [&](int worker, FanoutUnit& unit) {
        processed->fetch_add(1, std::memory_order_relaxed);
        if (unit.depth >= fan_depth) return;
        pool.Spawn(worker, target, FanoutUnit{unit.depth + 1});
        pool.Spawn(worker, target, FanoutUnit{unit.depth + 1});
      },
      []() {});
  return SnapshotOf(metrics);
}

TEST(ClusterBackpressureTest, BoundedStormProcessesAllAndHoldsTheBound) {
  constexpr int kP = 4;
  constexpr int kDepth = 7;
  // Strictly below kDepth: the owner queue is LIFO, so even a lone
  // worker descending its tree depth-first holds queue-0 size at about
  // the current depth and must attempt a push at >= kBound before
  // reaching the leaves — the inline path fires under any scheduling,
  // not just when the other producers' spawns land mid-descent.
  constexpr size_t kBound = 4;
  std::atomic<uint64_t> processed{0};
  ClusterMetricsSnapshot m = RunStorm(kP, kBound, kDepth, /*target=*/0,
                                      &processed);
  // p seeds, each the root of a full binary tree of height kDepth.
  const uint64_t expect = uint64_t{kP} * ((uint64_t{1} << (kDepth + 1)) - 1);
  EXPECT_EQ(processed.load(), expect);
  // The size check and the push are not one atomic step, so each of the
  // p producers can overshoot by one unit.
  EXPECT_LE(m.peak_queue_depth, kBound + kP);
  // The storm exceeds the bound by orders of magnitude, so the
  // backpressure path must actually have run.
  EXPECT_GT(m.inline_runs, 0u);
}

TEST(ClusterBackpressureTest, UnboundedControlStillProcessesAll) {
  constexpr int kP = 4;
  constexpr int kDepth = 7;
  std::atomic<uint64_t> processed{0};
  ClusterMetricsSnapshot m = RunStorm(kP, /*max_queue_depth=*/0, kDepth,
                                      /*target=*/0, &processed);
  const uint64_t expect = uint64_t{kP} * ((uint64_t{1} << (kDepth + 1)) - 1);
  EXPECT_EQ(processed.load(), expect);
  EXPECT_EQ(m.inline_runs, 0u);
  // The control documents the bug being fixed: everything the storm
  // spawned at queue 0 piled up (the consumer can't drain 2^depth units
  // as fast as p producers emit them). No depth assertion — the point of
  // the bounded variant is that there, one exists.
  EXPECT_GT(m.peak_queue_depth, 0u);
}

TEST(ClusterBackpressureTest, ForwardInlinesWithoutChargingMessages) {
  ClusterMetrics metrics;
  // Depth bound 1 on 2 queues: with both queues non-empty, every mid-run
  // Forward must take the inline path, charging inline_runs but never
  // forwards/messages.
  WorkStealingPool<FanoutUnit> pool(2, &metrics, /*enable_steal=*/false,
                                    /*max_queue_depth=*/1);
  for (int i = 0; i < 2; ++i) {
    pool.Seed(i, FanoutUnit{0});
    pool.Seed(i, FanoutUnit{0});
  }
  std::atomic<uint64_t> processed{0};
  pool.Run(
      [&](int worker, FanoutUnit& unit) {
        processed.fetch_add(1, std::memory_order_relaxed);
        if (unit.depth >= 3) return;
        pool.Forward(worker, 1 - worker, FanoutUnit{unit.depth + 1});
      },
      []() {});
  ClusterMetricsSnapshot m = SnapshotOf(metrics);
  EXPECT_EQ(processed.load(), 4u * 4u);  // 4 seeds, chains of length 4
  EXPECT_EQ(m.forwards + m.inline_runs, 4u * 3u);
  EXPECT_EQ(m.messages, m.forwards);
}

// ---- Engines under the tightest bound ------------------------------------

void ExpectSameSorted(const std::vector<Violation>& want,
                      const std::vector<Violation>& got,
                      const std::string& what) {
  ASSERT_EQ(want.size(), got.size()) << what;
  for (size_t i = 0; i < want.size(); ++i) {
    ASSERT_TRUE(want[i] == got[i]) << what << ": record " << i << " differs";
  }
}

TEST(ClusterBackpressureTest, EnginesAgreeWithOracleAtDepthOne) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed * 0x9e3779b97f4a7c15ULL + 23);
    testing_util::RandomWorkload w =
        testing_util::MakeRandomWorkload(seed, &rng);
    std::ostringstream repro_os;
    repro_os << "repro: seed=" << seed;
    const std::string repro = repro_os.str();
    if (w.sigma.empty()) continue;

    DectOptions live;
    live.snapshot_mode = SnapshotMode::kNever;
    const std::vector<Violation> want = Dect(*w.graph, w.sigma, live).Sorted();
    {
      PDectOptions o;
      o.num_processors = 4;
      o.max_queue_depth = 1;
      // Shrink the split/forward thresholds so the cost model actually
      // fires on these small graphs and the inline paths get exercised.
      o.min_forward_adjacency = 1;
      o.min_split_adjacency = 2;
      o.latency_c = 0.0;
      ExpectSameSorted(want, PDect(*w.graph, w.sigma, o).vio.Sorted(),
                       repro + " PDect depth-1");
    }

    if (!ValidateForIncremental(w.sigma).ok()) continue;
    UpdateGenOptions up;
    up.fraction = 0.2;
    up.insert_fraction = 0.5;
    up.seed = seed + 3;
    UpdateBatch batch = GenerateUpdateBatch(w.graph.get(), up);
    ASSERT_TRUE(ApplyUpdateBatch(w.graph.get(), &batch).ok()) << repro;
    IncDectOptions io;
    io.snapshot_mode = SnapshotMode::kNever;
    auto inc = IncDect(*w.graph, w.sigma, batch, io);
    ASSERT_TRUE(inc.ok()) << repro;
    PIncDectOptions po;
    po.num_processors = 4;
    po.max_queue_depth = 1;
    po.min_split_adjacency = 1;
    po.latency_c = 0.0;
    auto pinc = PIncDect(*w.graph, w.sigma, batch, po);
    ASSERT_TRUE(pinc.ok()) << repro;
    ExpectSameSorted(inc->added.Sorted(), pinc->delta.added.Sorted(),
                     repro + " PIncDect ΔVio+ depth-1");
    ExpectSameSorted(inc->removed.Sorted(), pinc->delta.removed.Sorted(),
                     repro + " PIncDect ΔVio- depth-1");
  }
}

}  // namespace
}  // namespace ngd
