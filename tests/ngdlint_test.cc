// ngdlint rule coverage: each rule must fire, with the right file:line,
// on a seeded fixture tree — and stay silent where suppressed — plus a
// clean-tree self-check against the real repository (the same invariant
// CI enforces, so a regression fails here first).
//
// Fixture trees are materialized under the gtest temp dir; the linter
// core (tools/ngdlint.h) is driven in-process.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "ngdlint.h"

namespace {

namespace fs = std::filesystem;
using ngdlint::Finding;
using ngdlint::LintTree;

class FixtureTree {
 public:
  explicit FixtureTree(const std::string& name)
      : root_(fs::path(::testing::TempDir()) / name) {
    fs::remove_all(root_);
    fs::create_directories(root_ / "src");
    fs::create_directories(root_ / "tests");
  }
  ~FixtureTree() { fs::remove_all(root_); }

  void Write(const std::string& rel, const std::string& text) {
    const fs::path p = root_ / rel;
    fs::create_directories(p.parent_path());
    std::ofstream(p) << text;
  }

  std::vector<Finding> Lint() const { return LintTree(root_.string()); }

  std::string root() const { return root_.string(); }

 private:
  fs::path root_;
};

std::vector<Finding> WithRule(const std::vector<Finding>& all,
                              const std::string& rule) {
  std::vector<Finding> out;
  for (const Finding& f : all) {
    if (f.rule == rule) out.push_back(f);
  }
  return out;
}

// A minimal header that trips no rule, to keep fixtures single-issue.
constexpr char kCleanHeader[] =
    "#ifndef NGD_X_H_\n"
    "#define NGD_X_H_\n"
    "#endif\n";

// All four magics defined once, so magic-missing stays quiet in
// fixtures that exercise other rules.
constexpr char kAllMagics[] =
    "#ifndef NGD_MAGICS_H_\n"
    "#define NGD_MAGICS_H_\n"
    "inline constexpr char kA[8] = {'N','G','D','W','A','L','1',0};\n"
    "inline constexpr char kB[8] = {'N','G','D','S','N','A','P','1'};\n"
    "inline constexpr char kC[8] = {'N','G','D','V','S','E','G','1'};\n"
    "inline constexpr char kD[8] = {'N','G','D','F','R','A','G','1'};\n"
    "#endif\n";

TEST(NgdlintTest, UnarmedFailpointFires) {
  FixtureTree t("ngdlint_failpoint");
  t.Write("src/magics.h", kAllMagics);
  t.Write("src/io.cc",
          "// a write path\n"
          "static const char* s = NGD_FAILPOINT(\"ghost_write\");\n");
  t.Write("tests/io_test.cc", "// arms nothing\n");
  const auto hits = WithRule(t.Lint(), "failpoint-unarmed");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].file, "src/io.cc");
  EXPECT_EQ(hits[0].line, 2);
  EXPECT_NE(hits[0].message.find("ghost_write"), std::string::npos);
}

TEST(NgdlintTest, ArmedFailpointIsQuiet) {
  FixtureTree t("ngdlint_failpoint_armed");
  t.Write("src/magics.h", kAllMagics);
  t.Write("src/io.cc",
          "static const char* s = NGD_FAILPOINT(\"ghost_write\");\n");
  t.Write("tests/io_test.cc",
          "void f() { ArmSite(\"ghost_write\", Mode::kEnospc); }\n");
  EXPECT_TRUE(WithRule(t.Lint(), "failpoint-unarmed").empty());
}

TEST(NgdlintTest, DuplicatedMagicFires) {
  FixtureTree t("ngdlint_magic");
  t.Write("src/magics.h", kAllMagics);
  t.Write("src/zz_fork.h",
          "#ifndef NGD_ZZ_FORK_H_\n"
          "#define NGD_ZZ_FORK_H_\n"
          "// a second copy of the WAL magic, split across lines\n"
          "inline constexpr char kMagic[8] = {'N', 'G', 'D', 'W',\n"
          "                                   'A', 'L', '1', 0};\n"
          "#endif\n");
  const auto hits = WithRule(t.Lint(), "magic-duplicate");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].file, "src/zz_fork.h");
  EXPECT_EQ(hits[0].line, 4);
  EXPECT_NE(hits[0].message.find("NGDWAL1"), std::string::npos);
  EXPECT_TRUE(WithRule(t.Lint(), "magic-missing").empty());
}

TEST(NgdlintTest, MagicInErrorMessageDoesNotCount) {
  FixtureTree t("ngdlint_magic_msg");
  t.Write("src/magics.h", kAllMagics);
  t.Write("src/reader.cc",
          "static const char* err = \"not an NGDWAL1 journal\";\n");
  EXPECT_TRUE(WithRule(t.Lint(), "magic-duplicate").empty());
}

TEST(NgdlintTest, MissingMagicFires) {
  FixtureTree t("ngdlint_magic_missing");
  t.Write("src/x.h", kCleanHeader);
  const auto hits = WithRule(t.Lint(), "magic-missing");
  EXPECT_EQ(hits.size(), 4u);  // none of the four magics defined
}

TEST(NgdlintTest, BannedConstructsFireWithSuppression) {
  FixtureTree t("ngdlint_banned");
  t.Write("src/magics.h", kAllMagics);
  t.Write("src/bad.cc",
          "void f() {\n"
          "  int* p = new int;\n"
          "  int r = rand();\n"
          "  std::cout << std::endl;\n"
          "  long now = time(nullptr);\n"
          "  static X* x = new X();  // ngdlint:allow(naked-new)\n"
          "  const char* s = \"new rand() time( std::endl\";  // literal\n"
          "}\n");
  const auto all = t.Lint();
  ASSERT_EQ(WithRule(all, "naked-new").size(), 1u);
  EXPECT_EQ(WithRule(all, "naked-new")[0].line, 2);
  ASSERT_EQ(WithRule(all, "banned-rand").size(), 1u);
  EXPECT_EQ(WithRule(all, "banned-rand")[0].line, 3);
  ASSERT_EQ(WithRule(all, "banned-endl").size(), 1u);
  EXPECT_EQ(WithRule(all, "banned-endl")[0].line, 4);
  ASSERT_EQ(WithRule(all, "banned-time").size(), 1u);
  EXPECT_EQ(WithRule(all, "banned-time")[0].line, 5);
}

TEST(NgdlintTest, MissingIncludeFires) {
  FixtureTree t("ngdlint_include");
  t.Write("src/magics.h", kAllMagics);
  t.Write("src/uses_vector.h",
          "#ifndef NGD_USES_VECTOR_H_\n"
          "#define NGD_USES_VECTOR_H_\n"
          "#include <string>\n"
          "std::vector<int> v();\n"
          "std::string s();\n"
          "#endif\n");
  const auto hits = WithRule(t.Lint(), "missing-include");
  ASSERT_EQ(hits.size(), 1u);  // <string> is included; <vector> is not
  EXPECT_EQ(hits[0].file, "src/uses_vector.h");
  EXPECT_EQ(hits[0].line, 4);
  EXPECT_NE(hits[0].message.find("<vector>"), std::string::npos);
}

TEST(NgdlintTest, IncludeCycleFires) {
  FixtureTree t("ngdlint_cycle");
  t.Write("src/magics.h", kAllMagics);
  t.Write("src/a.h",
          "#ifndef NGD_A_H_\n#define NGD_A_H_\n"
          "#include \"b.h\"\n#endif\n");
  t.Write("src/b.h",
          "#ifndef NGD_B_H_\n#define NGD_B_H_\n"
          "#include \"a.h\"\n#endif\n");
  const auto hits = WithRule(t.Lint(), "include-cycle");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].line, 3);
}

TEST(NgdlintTest, MissingIncludeGuardFires) {
  FixtureTree t("ngdlint_guard");
  t.Write("src/magics.h", kAllMagics);
  t.Write("src/unguarded.h", "#pragma once\nint f();\n");
  const auto hits = WithRule(t.Lint(), "include-guard");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].file, "src/unguarded.h");
}

TEST(NgdlintTest, FormatFindingIsFileLineRuleMessage) {
  const Finding f{"src/a.cc", 12, "naked-new", "naked new"};
  EXPECT_EQ(ngdlint::FormatFinding(f), "src/a.cc:12: [naked-new] naked new");
  const Finding whole{"src", 0, "magic-missing", "m"};
  EXPECT_EQ(ngdlint::FormatFinding(whole), "src: [magic-missing] m");
}

// The invariant CI enforces: the real tree is clean. NGDLINT_REPO_ROOT
// is injected by CMake.
TEST(NgdlintTest, RealTreeIsClean) {
  const auto findings = LintTree(NGDLINT_REPO_ROOT);
  for (const Finding& f : findings) {
    ADD_FAILURE() << ngdlint::FormatFinding(f);
  }
}

}  // namespace
