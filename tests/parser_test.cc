#include <gtest/gtest.h>

#include "core/parser.h"
#include "test_util.h"

namespace ngd {
namespace {

class ParserTest : public ::testing::Test {
 protected:
  SchemaPtr schema_ = Schema::Create();
};

TEST_F(ParserTest, ParsesMinimalRule) {
  auto ngd = ParseNgd(R"(
    ngd r1 {
      match (x:person)
      then x.age >= 0
    })",
                      schema_);
  ASSERT_TRUE(ngd.ok()) << ngd.status().ToString();
  EXPECT_EQ(ngd->name(), "r1");
  EXPECT_EQ(ngd->pattern().NumNodes(), 1u);
  EXPECT_EQ(ngd->pattern().NumEdges(), 0u);
  EXPECT_TRUE(ngd->X().empty());
  EXPECT_EQ(ngd->Y().size(), 1u);
}

TEST_F(ParserTest, ParsesEdgesAndLabels) {
  auto ngd = ParseNgd(R"(
    ngd r {
      match (x:person)-[knows]->(y:person), (y)-[lives_in]->(z:city)
      then z.population >= 0
    })",
                      schema_);
  ASSERT_TRUE(ngd.ok()) << ngd.status().ToString();
  EXPECT_EQ(ngd->pattern().NumNodes(), 3u);
  EXPECT_EQ(ngd->pattern().NumEdges(), 2u);
  // y was declared with a label at first mention, bare at second.
  int y = ngd->pattern().FindVar("y");
  EXPECT_EQ(ngd->pattern().node(y).label, *schema_->labels().Find("person"));
}

TEST_F(ParserTest, WildcardAndLateLabeling) {
  auto ngd = ParseNgd(R"(
    ngd r {
      match (x)-[e]->(y), (x:city)
      then x.population >= 0
    })",
                      schema_);
  ASSERT_TRUE(ngd.ok()) << ngd.status().ToString();
  int x = ngd->pattern().FindVar("x");
  int y = ngd->pattern().FindVar("y");
  EXPECT_EQ(ngd->pattern().node(x).label, *schema_->labels().Find("city"));
  EXPECT_EQ(ngd->pattern().node(y).label, kWildcardLabel);
}

TEST_F(ParserTest, ExplicitWildcardLabel) {
  auto ngd = ParseNgd(R"(
    ngd r { match (x:_)-[e]->(y:date) then y.val >= 0 })",
                      schema_);
  ASSERT_TRUE(ngd.ok());
  EXPECT_EQ(ngd->pattern().node(0).label, kWildcardLabel);
}

TEST_F(ParserTest, WhereTrueMeansEmptyX) {
  auto ngd = ParseNgd(R"(
    ngd r { match (x:a)-[e]->(y:b) where true then x.v = y.v })",
                      schema_);
  ASSERT_TRUE(ngd.ok());
  EXPECT_TRUE(ngd->X().empty());
}

TEST_F(ParserTest, MultipleLiteralsAndOperators) {
  auto ngd = ParseNgd(R"(
    ngd r {
      match (x:a)-[e]->(y:b)
      where x.v >= 1, x.v != 7, y.w <= 10
      then x.v < y.w, x.v + y.w > 0
    })",
                      schema_);
  ASSERT_TRUE(ngd.ok()) << ngd.status().ToString();
  EXPECT_EQ(ngd->X().size(), 3u);
  EXPECT_EQ(ngd->Y().size(), 2u);
  EXPECT_EQ(ngd->X()[1].op(), CmpOp::kNe);
}

TEST_F(ParserTest, ArithmeticPrecedenceAndParens) {
  auto ngd = ParseNgd(R"(
    ngd r {
      match (x:a)-[e]->(y:b)
      then 2 * (x.v - y.v) + x.v / 4 >= -3
    })",
                      schema_);
  ASSERT_TRUE(ngd.ok()) << ngd.status().ToString();
  // Check via evaluation: x.v = 8, y.v = 2 -> 2*(6) + 2 = 14 >= -3 true.
  SchemaPtr s2 = schema_;
  Graph g(s2);
  NodeId a = g.AddNode("a"), b = g.AddNode("b");
  g.SetAttr(a, "v", Value(int64_t{8}));
  g.SetAttr(b, "v", Value(int64_t{2}));
  Binding h = {a, b};
  EXPECT_EQ(ngd->Y()[0].Evaluate(g, h), Truth::kTrue);
}

TEST_F(ParserTest, AbsFunction) {
  auto ngd = ParseNgd(R"(
    ngd r { match (x:a)-[e]->(y:a) then abs(x.v - y.v) <= 5 })",
                      schema_);
  ASSERT_TRUE(ngd.ok()) << ngd.status().ToString();
}

TEST_F(ParserTest, StringLiterals) {
  auto ngd = ParseNgd(R"(
    ngd r {
      match (x:event)-[has]->(y:tag)
      where x.type = "Olympic"
      then y.val != "living people"
    })",
                      schema_);
  ASSERT_TRUE(ngd.ok()) << ngd.status().ToString();
}

TEST_F(ParserTest, QuotedEdgeAndNodeLabels) {
  auto ngd = ParseNgd(R"(
    ngd r { match (x:"weird label")-["has-part"]->(y:b) then y.v >= 0 })",
                      schema_);
  ASSERT_TRUE(ngd.ok()) << ngd.status().ToString();
  EXPECT_TRUE(schema_->labels().Find("weird label").has_value());
  EXPECT_TRUE(schema_->labels().Find("has-part").has_value());
}

TEST_F(ParserTest, CommentsAreIgnored) {
  auto set = ParseNgds(R"(
    # leading comment
    ngd r { // trailing comment
      match (x:a)-[e]->(y:b)  # mid comment
      then x.v = y.v
    })",
                       schema_);
  ASSERT_TRUE(set.ok());
  EXPECT_EQ(set->size(), 1u);
}

TEST_F(ParserTest, MultipleRulesInOneFile) {
  auto set = ParseNgds(std::string(testing_util::kPhi1) +
                           testing_util::kPhi2 + testing_util::kPhi3 +
                           testing_util::kPhi4,
                       schema_);
  ASSERT_TRUE(set.ok()) << set.status().ToString();
  EXPECT_EQ(set->size(), 4u);
  // φ4: x, y, w, m1, m2, n1, n2, s1, s2 — 9 pattern nodes.
  EXPECT_EQ((*set)[3].pattern().NumNodes(), 9u);
  EXPECT_EQ((*set)[3].X().size(), 2u);
}

TEST_F(ParserTest, OperatorAliases) {
  auto ngd = ParseNgd(R"(
    ngd r { match (x:a)-[e]->(y:b) where x.v == 1, x.w <> 2 then y.v = 0 })",
                      schema_);
  ASSERT_TRUE(ngd.ok()) << ngd.status().ToString();
  EXPECT_EQ(ngd->X()[0].op(), CmpOp::kEq);
  EXPECT_EQ(ngd->X()[1].op(), CmpOp::kNe);
}

// ---- Error cases ------------------------------------------------------------

TEST_F(ParserTest, RejectsUnknownVariableInLiteral) {
  auto ngd = ParseNgd(
      "ngd r { match (x:a)-[e]->(y:b) then z.v = 1 }", schema_);
  ASSERT_FALSE(ngd.ok());
  EXPECT_NE(ngd.status().message().find("unknown pattern variable"),
            std::string::npos);
}

TEST_F(ParserTest, RejectsInconsistentRelabeling) {
  auto ngd = ParseNgd(
      "ngd r { match (x:a)-[e]->(y:b), (x:c)-[e]->(y) then y.v = 1 }",
      schema_);
  ASSERT_FALSE(ngd.ok());
  EXPECT_NE(ngd.status().message().find("relabelled"), std::string::npos);
}

TEST_F(ParserTest, RejectsNonLinearRule) {
  auto ngd = ParseNgd(
      "ngd r { match (x:a)-[e]->(y:b) then x.v * y.v = 1 }", schema_);
  ASSERT_FALSE(ngd.ok());
  EXPECT_NE(ngd.status().message().find("Theorem 3"), std::string::npos);
}

TEST_F(ParserTest, RejectsWildcardEdgeLabel) {
  auto ngd =
      ParseNgd("ngd r { match (x:a)-[_]->(y:b) then y.v = 1 }", schema_);
  ASSERT_FALSE(ngd.ok());
}

TEST_F(ParserTest, RejectsMissingThen) {
  auto ngd = ParseNgd("ngd r { match (x:a)-[e]->(y:b) }", schema_);
  ASSERT_FALSE(ngd.ok());
}

TEST_F(ParserTest, RejectsUnterminatedString) {
  auto ngd = ParseNgd(
      "ngd r { match (x:a) then x.v = \"oops }", schema_);
  ASSERT_FALSE(ngd.ok());
}

TEST_F(ParserTest, RejectsDuplicatePatternEdge) {
  auto ngd = ParseNgd(
      "ngd r { match (x:a)-[e]->(y:b), (x)-[e]->(y) then y.v = 1 }",
      schema_);
  ASSERT_FALSE(ngd.ok());
}

TEST_F(ParserTest, ErrorsCarryLineNumbers) {
  auto ngd = ParseNgd("ngd r {\n  match (x:a)\n  then z.v = 1\n}", schema_);
  ASSERT_FALSE(ngd.ok());
  EXPECT_NE(ngd.status().message().find("line 3"), std::string::npos);
}

}  // namespace
}  // namespace ngd
