#include <gtest/gtest.h>

#include "graph/generators.h"
#include "parallel/partitioner.h"
#include "parallel/work_unit.h"

namespace ngd {
namespace {

TEST(PartitionerTest, CoversAllNodes) {
  SchemaPtr schema = Schema::Create();
  auto g = GenerateGraph(SyntheticConfig(500, 1500, 3), schema);
  PartitionResult r = PartitionGraph(*g, 4);
  ASSERT_EQ(r.fragment_of.size(), g->NumNodes());
  size_t total = 0;
  for (size_t s : r.fragment_sizes) total += s;
  EXPECT_EQ(total, g->NumNodes());
  for (int f : r.fragment_of) {
    EXPECT_GE(f, 0);
    EXPECT_LT(f, 4);
  }
}

TEST(PartitionerTest, FragmentsAreBalanced) {
  SchemaPtr schema = Schema::Create();
  auto g = GenerateGraph(SyntheticConfig(1000, 3000, 4), schema);
  PartitionResult r = PartitionGraph(*g, 5);
  size_t expected = g->NumNodes() / 5;
  for (size_t s : r.fragment_sizes) {
    EXPECT_GE(s, expected * 7 / 10);
    EXPECT_LE(s, expected * 13 / 10);
  }
}

TEST(PartitionerTest, SinglePartitionHasNoCrossingEdges) {
  SchemaPtr schema = Schema::Create();
  auto g = GenerateGraph(SyntheticConfig(200, 500, 5), schema);
  PartitionResult r = PartitionGraph(*g, 1);
  EXPECT_EQ(r.crossing_edges, 0u);
  EXPECT_EQ(r.fragment_sizes[0], g->NumNodes());
}

TEST(PartitionerTest, LocalityBeatsRandomAssignment) {
  // LDG should cut fewer edges than a hash partition on a clustered graph.
  SchemaPtr schema = Schema::Create();
  Graph g(schema);
  LabelId n = schema->InternLabel("n");
  LabelId e = schema->InternLabel("e");
  // 10 dense cliques of 20 nodes, loosely chained.
  for (int c = 0; c < 10; ++c) {
    NodeId base = static_cast<NodeId>(g.NumNodes());
    for (int i = 0; i < 20; ++i) g.AddNode(n);
    for (NodeId i = 0; i < 20; ++i) {
      for (NodeId j = i + 1; j < 20; ++j) {
        ASSERT_TRUE(g.AddEdge(base + i, base + j, e).ok());
      }
    }
    if (c > 0) {
      ASSERT_TRUE(g.AddEdge(base - 1, base, e).ok());
    }
  }
  PartitionResult ldg = PartitionGraph(g, 5);
  size_t random_cut = 0;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    for (const auto& adj : g.OutEdges(v)) {
      if (v % 5 != adj.other % 5) ++random_cut;
    }
  }
  EXPECT_LT(ldg.crossing_edges, random_cut / 2);
}

TEST(SkewnessTest, ComputesRelativeLoad) {
  std::vector<double> skew = ComputeSkewness({30, 10, 10, 10});
  ASSERT_EQ(skew.size(), 4u);
  EXPECT_DOUBLE_EQ(skew[0], 2.0);  // 30 / avg(15)
  EXPECT_DOUBLE_EQ(skew[1], 10.0 / 15.0);
}

TEST(SkewnessTest, HandlesEmptyAndZero) {
  EXPECT_TRUE(ComputeSkewness({}).empty());
  std::vector<double> zeros = ComputeSkewness({0, 0});
  EXPECT_DOUBLE_EQ(zeros[0], 0.0);
}

}  // namespace
}  // namespace ngd
