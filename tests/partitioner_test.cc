#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.h"
#include "parallel/partitioner.h"
#include "parallel/work_unit.h"

namespace ngd {
namespace {

/// Brute-force recount of the partition's derived structure straight from
/// the graph: crossing edges, per-fragment sizes, and boundary sets.
struct Recount {
  size_t crossing_edges = 0;
  std::vector<size_t> sizes;
  std::vector<std::vector<NodeId>> boundary;
};

Recount RecountFromGraph(const Graph& g, const Partition& r,
                         GraphView view = GraphView::kNew) {
  Recount out;
  out.sizes.assign(r.num_fragments, 0);
  out.boundary.resize(r.num_fragments);
  std::vector<bool> crossing(g.NumNodes(), false);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    ++out.sizes[r.fragment_of[v]];
    for (const AdjEntry& e : g.OutEdges(v)) {
      if (!EdgeInView(e.state, view)) continue;
      if (r.fragment_of[v] != r.fragment_of[e.other]) {
        ++out.crossing_edges;
        crossing[v] = true;
        crossing[e.other] = true;
      }
    }
  }
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    if (crossing[v]) out.boundary[r.fragment_of[v]].push_back(v);
  }
  return out;
}

TEST(PartitionerTest, CoversAllNodes) {
  SchemaPtr schema = Schema::Create();
  auto g = GenerateGraph(SyntheticConfig(500, 1500, 3), schema);
  Partition r = PartitionGraph(*g, 4);
  ASSERT_EQ(r.fragment_of.size(), g->NumNodes());
  size_t total = 0;
  for (size_t s : r.fragment_sizes) total += s;
  EXPECT_EQ(total, g->NumNodes());
  for (int f : r.fragment_of) {
    EXPECT_GE(f, 0);
    EXPECT_LT(f, 4);
  }
}

TEST(PartitionerTest, FragmentsAreBalanced) {
  SchemaPtr schema = Schema::Create();
  auto g = GenerateGraph(SyntheticConfig(1000, 3000, 4), schema);
  Partition r = PartitionGraph(*g, 5);
  size_t expected = g->NumNodes() / 5;
  for (size_t s : r.fragment_sizes) {
    EXPECT_GE(s, expected * 7 / 10);
    EXPECT_LE(s, expected * 13 / 10);
  }
}

TEST(PartitionerTest, SinglePartitionHasNoCrossingEdges) {
  SchemaPtr schema = Schema::Create();
  auto g = GenerateGraph(SyntheticConfig(200, 500, 5), schema);
  Partition r = PartitionGraph(*g, 1);
  EXPECT_EQ(r.crossing_edges, 0u);
  EXPECT_EQ(r.fragment_sizes[0], g->NumNodes());
  EXPECT_TRUE(r.boundary[0].empty());
}

TEST(PartitionerTest, LocalityBeatsRandomAssignment) {
  // LDG should cut fewer edges than a hash partition on a clustered graph.
  SchemaPtr schema = Schema::Create();
  Graph g(schema);
  LabelId n = schema->InternLabel("n");
  LabelId e = schema->InternLabel("e");
  // 10 dense cliques of 20 nodes, loosely chained.
  for (int c = 0; c < 10; ++c) {
    NodeId base = static_cast<NodeId>(g.NumNodes());
    for (int i = 0; i < 20; ++i) g.AddNode(n);
    for (NodeId i = 0; i < 20; ++i) {
      for (NodeId j = i + 1; j < 20; ++j) {
        ASSERT_TRUE(g.AddEdge(base + i, base + j, e).ok());
      }
    }
    if (c > 0) {
      ASSERT_TRUE(g.AddEdge(base - 1, base, e).ok());
    }
  }
  Partition ldg = PartitionGraph(g, 5);
  size_t random_cut = 0;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    for (const auto& adj : g.OutEdges(v)) {
      if (v % 5 != adj.other % 5) ++random_cut;
    }
  }
  EXPECT_LT(ldg.crossing_edges, random_cut / 2);
}

TEST(PartitionerTest, DerivedStructureMatchesBruteForce) {
  // members/boundary/crossing_edges are all consistent with fragment_of,
  // recomputed independently from the graph.
  SchemaPtr schema = Schema::Create();
  for (uint64_t seed : {11u, 12u, 13u}) {
    auto g = GenerateGraph(SyntheticConfig(300, 900, seed), schema);
    for (int p : {2, 3, 8}) {
      Partition r = PartitionGraph(*g, p);
      Recount want = RecountFromGraph(*g, r);
      EXPECT_EQ(r.crossing_edges, want.crossing_edges)
          << "seed " << seed << " p " << p;
      ASSERT_EQ(r.members.size(), static_cast<size_t>(p));
      for (int f = 0; f < p; ++f) {
        EXPECT_EQ(r.fragment_sizes[f], want.sizes[f]);
        EXPECT_EQ(r.members[f].size(), want.sizes[f]);
        EXPECT_TRUE(std::is_sorted(r.members[f].begin(), r.members[f].end()));
        for (NodeId v : r.members[f]) EXPECT_EQ(r.fragment_of[v], f);
        EXPECT_EQ(r.boundary[f], want.boundary[f])
            << "seed " << seed << " p " << p << " fragment " << f;
      }
    }
  }
}

TEST(PartitionerTest, DeterministicAcrossRuns) {
  SchemaPtr schema = Schema::Create();
  auto g = GenerateGraph(SyntheticConfig(400, 1200, 9), schema);
  Partition a = PartitionGraph(*g, 4);
  Partition b = PartitionGraph(*g, 4);
  EXPECT_EQ(a.fragment_of, b.fragment_of);
  EXPECT_EQ(a.crossing_edges, b.crossing_edges);
}

TEST(PartitionerTest, OverflowFallsBackToLeastLoaded) {
  // 16 isolated nodes, capacity 2, p = 4: no node has placed neighbors,
  // so every placement overflows once fragments fill. The fallback must
  // spread to the least-loaded fragment — {4,4,4,4}, not {10,2,2,2} (the
  // old code skewed every overflow onto fragment 0).
  SchemaPtr schema = Schema::Create();
  Graph g(schema);
  LabelId n = schema->InternLabel("n");
  for (int i = 0; i < 16; ++i) g.AddNode(n);
  PartitionOptions opts;
  opts.capacity = 2;
  Partition r = PartitionGraph(g, 4, GraphView::kNew, opts);
  for (size_t s : r.fragment_sizes) EXPECT_EQ(s, 4u);
}

TEST(PartitionerTest, RespectsGraphView) {
  // An edge pending deletion keeps its endpoints together in kOld but not
  // necessarily in kNew; at minimum the views must count crossing edges
  // against their own edge sets.
  SchemaPtr schema = Schema::Create();
  Graph g(schema);
  LabelId n = schema->InternLabel("n");
  LabelId e = schema->InternLabel("e");
  for (int i = 0; i < 8; ++i) g.AddNode(n);
  for (NodeId v = 0; v + 1 < 8; ++v) ASSERT_TRUE(g.AddEdge(v, v + 1, e).ok());
  ASSERT_TRUE(g.DeleteEdge(2, 3, e).ok());  // pending: gone in kNew only
  Partition rold = PartitionGraph(g, 2, GraphView::kOld);
  Partition rnew = PartitionGraph(g, 2, GraphView::kNew);
  EXPECT_EQ(rold.crossing_edges,
            RecountFromGraph(g, rold, GraphView::kOld).crossing_edges);
  EXPECT_EQ(rnew.crossing_edges,
            RecountFromGraph(g, rnew, GraphView::kNew).crossing_edges);
}

TEST(SkewnessTest, ComputesRelativeLoad) {
  std::vector<double> skew = ComputeSkewness({30, 10, 10, 10});
  ASSERT_EQ(skew.size(), 4u);
  EXPECT_DOUBLE_EQ(skew[0], 2.0);  // 30 / avg(15)
  EXPECT_DOUBLE_EQ(skew[1], 10.0 / 15.0);
}

TEST(SkewnessTest, HandlesEmptyAndZero) {
  EXPECT_TRUE(ComputeSkewness({}).empty());
  std::vector<double> zeros = ComputeSkewness({0, 0});
  EXPECT_DOUBLE_EQ(zeros[0], 0.0);
}

}  // namespace
}  // namespace ngd
