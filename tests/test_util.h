// Shared fixtures: the paper's Fig. 1 graphs G1–G4 and Example 3 rules
// φ1–φ4, the randomized (graph, Σ) workload generator both differential
// harnesses draw from, plus small helpers used across the suite.

#ifndef NGD_TESTS_TEST_UTIL_H_
#define NGD_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/parser.h"
#include "discovery/ngd_generator.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace ngd {
namespace testing_util {

// ---- Example 3 rules (φ1–φ4), in the DSL --------------------------------

// φ1: an entity cannot be destroyed within c = 100 days of its creation.
inline constexpr const char* kPhi1 = R"(
ngd phi1 {
  match (x:_)-[wasCreatedOnDate]->(y:date), (x)-[wasDestroyedOnDate]->(z:date)
  then z.val - y.val >= 100
}
)";

// φ2: total population = female + male.
inline constexpr const char* kPhi2 = R"(
ngd phi2 {
  match (x:area)-[femalePopulation]->(y:integer),
        (x)-[malePopulation]->(z:integer),
        (x)-[populationTotal]->(w:integer)
  then y.val + z.val = w.val
}
)";

// φ3: smaller population in the same census => numerically larger
// (worse) populationRank.
inline constexpr const char* kPhi3 = R"(
ngd phi3 {
  match (x:place)-[partof]->(z:place), (y:place)-[partof]->(z:place),
        (x)-[population]->(m1:integer), (y)-[population]->(m2:integer),
        (x)-[populationRank]->(n1:integer), (y)-[populationRank]->(n2:integer),
        (m1)-[date]->(w:date), (m2)-[date]->(w:date)
  where m1.val < m2.val
  then n1.val > n2.val
}
)";

// φ4: a = b = 1, c = 10000: big follower/following deficit vs a real
// account means the other account must be flagged fake (status 0).
inline constexpr const char* kPhi4 = R"(
ngd phi4 {
  match (x:account)-[keys]->(w:company), (y:account)-[keys]->(w:company),
        (x)-[following]->(m1:integer), (y)-[following]->(m2:integer),
        (x)-[follower]->(n1:integer), (y)-[follower]->(n2:integer),
        (x)-[status]->(s1:boolean), (y)-[status]->(s2:boolean)
  where s1.val = 1,
        1 * (m1.val - m2.val) + 1 * (n1.val - n2.val) > 10000
  then s2.val = 0
}
)";

// ---- Fig. 1 graphs -------------------------------------------------------

struct NamedGraph {
  SchemaPtr schema;
  std::unique_ptr<Graph> graph;
};

/// Fixture edges always join freshly created nodes under base labels, so
/// AddEdge cannot fail; the check-discard keeps the builders readable
/// without dropping the Status on the floor.
inline void MustEdge(Status s) { EXPECT_TRUE(s.ok()) << s.ToString(); }

/// G1: BBC_Trust created 2007, destroyed 1946 (violates φ1).
/// val attributes are day numbers; any created > destroyed pair works.
inline NamedGraph BuildG1() {
  NamedGraph g{Schema::Create(), nullptr};
  g.graph = std::make_unique<Graph>(g.schema);
  NodeId trust = g.graph->AddNode("institution");
  NodeId created = g.graph->AddNode("date");
  g.graph->SetAttr(created, "val", Value(int64_t{732800}));  // 2007-ish
  NodeId destroyed = g.graph->AddNode("date");
  g.graph->SetAttr(destroyed, "val", Value(int64_t{710700}));  // 1946-08-28
  MustEdge(g.graph->AddEdge(trust, created, "wasCreatedOnDate"));
  MustEdge(g.graph->AddEdge(trust, destroyed, "wasDestroyedOnDate"));
  return g;
}

/// G2: Bhonpur, 600 female + 722 male but total 1572 (violates φ2).
inline NamedGraph BuildG2() {
  NamedGraph g{Schema::Create(), nullptr};
  g.graph = std::make_unique<Graph>(g.schema);
  NodeId area = g.graph->AddNode("area");
  auto add_int = [&](const char* label, int64_t v) {
    NodeId n = g.graph->AddNode(label);
    g.graph->SetAttr(n, "val", Value(v));
    return n;
  };
  MustEdge(g.graph->AddEdge(area, add_int("integer", 600), "femalePopulation"));
  MustEdge(g.graph->AddEdge(area, add_int("integer", 722), "malePopulation"));
  MustEdge(g.graph->AddEdge(area, add_int("integer", 1572), "populationTotal"));
  return g;
}

/// G3: Corona (pop 160000, rank 33) vs Downey (pop 111772, rank 11) in
/// California — Downey has fewer people but a better rank (violates φ3).
inline NamedGraph BuildG3() {
  NamedGraph g{Schema::Create(), nullptr};
  g.graph = std::make_unique<Graph>(g.schema);
  NodeId california = g.graph->AddNode("place");
  NodeId corona = g.graph->AddNode("place");
  NodeId downey = g.graph->AddNode("place");
  MustEdge(g.graph->AddEdge(corona, california, "partof"));
  MustEdge(g.graph->AddEdge(downey, california, "partof"));
  auto add_int = [&](int64_t v) {
    NodeId n = g.graph->AddNode("integer");
    g.graph->SetAttr(n, "val", Value(v));
    return n;
  };
  NodeId pop_corona = add_int(160000);
  NodeId pop_downey = add_int(111772);
  NodeId rank_corona = add_int(33);
  NodeId rank_downey = add_int(11);
  MustEdge(g.graph->AddEdge(corona, pop_corona, "population"));
  MustEdge(g.graph->AddEdge(downey, pop_downey, "population"));
  MustEdge(g.graph->AddEdge(corona, rank_corona, "populationRank"));
  MustEdge(g.graph->AddEdge(downey, rank_downey, "populationRank"));
  NodeId census = g.graph->AddNode("date");
  g.graph->SetAttr(census, "val", Value(int64_t{20140401}));
  MustEdge(g.graph->AddEdge(pop_corona, census, "date"));
  MustEdge(g.graph->AddEdge(pop_downey, census, "date"));
  return g;
}

/// G4: NatWest with a real account (75900 followers / 22000 following /
/// status 1) and NatWest_Help (2 followers / 1 following / status 1 —
/// claims real, violates φ4).
struct G4Nodes {
  NodeId company;
  NodeId real_account;
  NodeId fake_account;
  NodeId fake_status;
};

inline NamedGraph BuildG4(G4Nodes* nodes = nullptr) {
  NamedGraph g{Schema::Create(), nullptr};
  g.graph = std::make_unique<Graph>(g.schema);
  NodeId natwest = g.graph->AddNode("company");
  auto add_int = [&](const char* label, int64_t v) {
    NodeId n = g.graph->AddNode(label);
    g.graph->SetAttr(n, "val", Value(v));
    return n;
  };
  NodeId real = g.graph->AddNode("account");
  MustEdge(g.graph->AddEdge(real, natwest, "keys"));
  MustEdge(g.graph->AddEdge(real, add_int("integer", 75900), "follower"));
  MustEdge(g.graph->AddEdge(real, add_int("integer", 22000), "following"));
  MustEdge(g.graph->AddEdge(real, add_int("boolean", 1), "status"));
  NodeId fake = g.graph->AddNode("account");
  NodeId fake_status = add_int("boolean", 1);  // claims to be real: error
  MustEdge(g.graph->AddEdge(fake, natwest, "keys"));
  MustEdge(g.graph->AddEdge(fake, add_int("integer", 2), "follower"));
  MustEdge(g.graph->AddEdge(fake, add_int("integer", 1), "following"));
  MustEdge(g.graph->AddEdge(fake, fake_status, "status"));
  if (nodes != nullptr) {
    *nodes = G4Nodes{natwest, real, fake, fake_status};
  }
  return g;
}

// ---- Randomized differential workloads ----------------------------------
//
// The PR 3 incremental differential harness and the Σ-optimizer harness
// stress the same space: a synthetic graph of a seed-derived size with a
// generated rule set calibrated against it. Both draw their workloads
// here so a seed means the same (graph, Σ) in either suite.

struct RandomWorkload {
  SchemaPtr schema;
  std::unique_ptr<Graph> graph;
  NgdSet sigma;
  size_t nodes = 0;
  size_t edges = 0;
};

/// Derives a randomized (graph, Σ) workload. Size and diameter draws come
/// from *rng (the caller's per-case stream); graph topology and rule
/// content derive from `seed` directly, as GenerateGraph/GenerateNgdSet
/// are seeded components. `violation_rate` 0 gives mostly-clean graphs
/// (the validation regime), larger values seed real violations.
inline RandomWorkload MakeRandomWorkload(uint64_t seed, Rng* rng,
                                         size_t rule_count = 5,
                                         double violation_rate = 0.25) {
  RandomWorkload w;
  w.nodes = 40 + static_cast<size_t>(rng->UniformInt(0, 100));
  w.edges =
      w.nodes + static_cast<size_t>(rng->UniformInt(
                    static_cast<int64_t>(w.nodes) / 2,
                    static_cast<int64_t>(w.nodes) * 2));
  w.schema = Schema::Create();
  w.graph = GenerateGraph(SyntheticConfig(w.nodes, w.edges, seed), w.schema);
  NgdGenOptions gen;
  gen.count = rule_count;
  gen.max_diameter = rng->Bernoulli(0.5) ? 2 : 3;
  gen.seed = seed + 1;
  gen.violation_rate = violation_rate;
  w.sigma = GenerateNgdSet(*w.graph, gen);
  return w;
}

/// Parses a rule set or aborts the test.
inline NgdSet MustParse(const std::string& text, const SchemaPtr& schema) {
  auto result = ParseNgds(text, schema);
  if (!result.ok()) {
    ADD_FAILURE() << "parse failed: " << result.status().ToString();
    return NgdSet{};
  }
  return std::move(result).value();
}

}  // namespace testing_util
}  // namespace ngd

#endif  // NGD_TESTS_TEST_UTIL_H_
