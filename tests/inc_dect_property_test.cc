// Property-based correctness of incremental detection (paper §5.2):
//
//   Vio(Σ, G ⊕ ΔG) = Vio(Σ, G) ⊕ ΔVio(Σ, G, ΔG)
//
// For randomized graphs, generated rule sets and random update batches,
// IncDect's delta applied to the batch result on G must equal the batch
// result on G ⊕ ΔG, and ΔVio+/ΔVio- must be disjoint from/contained in
// the respective sides.

#include <gtest/gtest.h>

#include "detect/dect.h"
#include "detect/inc_dect.h"
#include "discovery/ngd_generator.h"
#include "graph/generators.h"

namespace ngd {
namespace {

struct PropertyCase {
  const char* name;
  size_t nodes;
  size_t edges;
  double update_fraction;
  double insert_fraction;
  uint64_t seed;
};

void PrintTo(const PropertyCase& c, std::ostream* os) { *os << c.name; }

class IncDectPropertyTest : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(IncDectPropertyTest, DeltaEqualsBatchDiff) {
  const PropertyCase& pc = GetParam();
  SchemaPtr schema = Schema::Create();
  auto g = GenerateGraph(SyntheticConfig(pc.nodes, pc.edges, pc.seed),
                         schema);

  NgdGenOptions gen;
  gen.count = 12;
  gen.max_diameter = 3;
  gen.seed = pc.seed + 1;
  gen.violation_rate = 0.2;
  NgdSet sigma = GenerateNgdSet(*g, gen);
  ASSERT_GT(sigma.size(), 0u);
  ASSERT_TRUE(ValidateForIncremental(sigma).ok());

  // Batch result on G.
  VioSet before = Dect(*g, sigma, DectOptions{GraphView::kNew});

  UpdateGenOptions up;
  up.fraction = pc.update_fraction;
  up.insert_fraction = pc.insert_fraction;
  up.seed = pc.seed + 2;
  UpdateBatch batch = GenerateUpdateBatch(g.get(), up);
  ASSERT_TRUE(ApplyUpdateBatch(g.get(), &batch).ok());

  // The old view still reproduces Vio(Σ, G).
  VioSet before_check = Dect(*g, sigma, DectOptions{GraphView::kOld});
  EXPECT_EQ(before.size(), before_check.size());

  auto delta = IncDect(*g, sigma, batch);
  ASSERT_TRUE(delta.ok()) << delta.status().ToString();

  // ΔVio+ contains only genuinely new violations; ΔVio- only old ones.
  for (const auto& v : delta->added.items()) {
    EXPECT_FALSE(before.Contains(v)) << "ΔVio+ item already in Vio(Σ,G)";
  }
  for (const auto& v : delta->removed.items()) {
    EXPECT_TRUE(before.Contains(v)) << "ΔVio- item not in Vio(Σ,G)";
  }

  VioSet incremental = ApplyDelta(before, *delta);
  VioSet after = Dect(*g, sigma, DectOptions{GraphView::kNew});
  EXPECT_EQ(incremental.size(), after.size());
  for (const auto& v : after.items()) {
    EXPECT_TRUE(incremental.Contains(v))
        << "missing violation for rule " << sigma[v.ngd_index].name();
  }
  for (const auto& v : incremental.items()) {
    EXPECT_TRUE(after.Contains(v))
        << "spurious violation for rule " << sigma[v.ngd_index].name();
  }

  // After Commit, the new view is the only view and must agree.
  g->Commit();
  VioSet committed = Dect(*g, sigma, DectOptions{GraphView::kNew});
  EXPECT_EQ(committed.size(), after.size());
}

INSTANTIATE_TEST_SUITE_P(
    Randomized, IncDectPropertyTest,
    ::testing::Values(
        PropertyCase{"small_balanced", 300, 700, 0.10, 0.5, 101},
        PropertyCase{"small_insert_heavy", 300, 700, 0.15, 0.9, 102},
        PropertyCase{"small_delete_heavy", 300, 700, 0.15, 0.1, 103},
        PropertyCase{"medium_balanced", 800, 2000, 0.10, 0.5, 104},
        PropertyCase{"medium_big_batch", 800, 2000, 0.30, 0.5, 105},
        PropertyCase{"dense", 400, 2400, 0.10, 0.5, 106},
        PropertyCase{"sparse", 1200, 1500, 0.10, 0.5, 107},
        PropertyCase{"tiny_graph", 60, 150, 0.25, 0.5, 108},
        PropertyCase{"seed_variant_a", 500, 1200, 0.12, 0.5, 109},
        PropertyCase{"seed_variant_b", 500, 1200, 0.12, 0.5, 110}),
    [](const ::testing::TestParamInfo<PropertyCase>& info) {
      return info.param.name;
    });

// Sequences of batches: incremental maintenance across commits.
TEST(IncDectSequenceTest, MaintainsViolationSetAcrossBatches) {
  SchemaPtr schema = Schema::Create();
  auto g = GenerateGraph(SyntheticConfig(400, 1000, 55), schema);
  NgdGenOptions gen;
  gen.count = 8;
  gen.max_diameter = 3;
  gen.seed = 56;
  NgdSet sigma = GenerateNgdSet(*g, gen);
  ASSERT_GT(sigma.size(), 0u);

  VioSet vio = Dect(*g, sigma, DectOptions{GraphView::kNew});
  for (int round = 0; round < 4; ++round) {
    UpdateGenOptions up;
    up.fraction = 0.08;
    up.seed = 200 + round;
    UpdateBatch batch = GenerateUpdateBatch(g.get(), up);
    ASSERT_TRUE(ApplyUpdateBatch(g.get(), &batch).ok());
    auto delta = IncDect(*g, sigma, batch);
    ASSERT_TRUE(delta.ok());
    vio = ApplyDelta(vio, *delta);
    g->Commit();
    VioSet check = Dect(*g, sigma, DectOptions{GraphView::kNew});
    ASSERT_EQ(vio.size(), check.size()) << "round " << round;
    for (const auto& v : check.items()) {
      ASSERT_TRUE(vio.Contains(v)) << "round " << round;
    }
  }
}

// Insert/delete ratio γ insensitivity (paper Exp-1(e)): correctness holds
// across the γ spectrum and deltas stay consistent.
class GammaSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(GammaSweepTest, CorrectForAllRatios) {
  SchemaPtr schema = Schema::Create();
  auto g = GenerateGraph(SyntheticConfig(300, 800, 77), schema);
  NgdGenOptions gen;
  gen.count = 6;
  gen.max_diameter = 2;
  gen.seed = 78;
  NgdSet sigma = GenerateNgdSet(*g, gen);
  VioSet before = Dect(*g, sigma, DectOptions{GraphView::kNew});

  UpdateGenOptions up;
  up.fraction = 0.15;
  up.insert_fraction = GetParam();
  up.seed = 79;
  UpdateBatch batch = GenerateUpdateBatch(g.get(), up);
  ASSERT_TRUE(ApplyUpdateBatch(g.get(), &batch).ok());
  auto delta = IncDect(*g, sigma, batch);
  ASSERT_TRUE(delta.ok());
  VioSet incremental = ApplyDelta(before, *delta);
  VioSet after = Dect(*g, sigma, DectOptions{GraphView::kNew});
  EXPECT_EQ(incremental.size(), after.size());
}

INSTANTIATE_TEST_SUITE_P(Gamma, GammaSweepTest,
                         ::testing::Values(0.0, 0.25, 0.5, 0.75, 1.0));

}  // namespace
}  // namespace ngd
