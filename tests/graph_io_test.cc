// TSV ingest-path correctness (graph/graph_io.{h,cc}).
//
// Three layers of coverage:
//   1. Unit tests for the hardened record syntax: string-attr escaping
//      round-trips hostile values (quotes, tabs, newlines, backslashes),
//      malformed names/values/endpoints are rejected with kCorruption and
//      the offending line number, and write-side validation refuses
//      graphs whose names the format cannot represent.
//   2. A view-consistency regression over a graph carrying a pending
//      overlay (inserts AND deletes): the kNew serialization round-trips
//      to the committed graph, the kOld serialization to the rolled-back
//      graph.
//   3. A randomized round-trip property suite (generator graphs with
//      hostile string attrs injected, save -> load -> name-based
//      structural equality) that also pins the chunk-parallel parser to
//      the sequential oracle: same graph, same schema intern order, same
//      canonical re-serialization, any thread count.
//
// NGD_IO_CASES resizes the property sweep (sanitizer CI runs a reduced
// one); `ctest -L io` runs this suite together with snapshot_io_test.

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "graph/generators.h"
#include "graph/graph_io.h"
#include "util/rng.h"

namespace ngd {
namespace {

size_t CaseCount() {
  const char* env = std::getenv("NGD_IO_CASES");
  if (env != nullptr) {
    const long n = std::strtol(env, nullptr, 10);
    if (n > 0) return static_cast<size_t>(n);
  }
  return 25;
}

std::string Serialize(const Graph& g, GraphView view = GraphView::kNew) {
  std::ostringstream os;
  Status s = WriteGraphText(g, &os, view);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return os.str();
}

StatusOr<std::unique_ptr<Graph>> Parse(const std::string& text,
                                       int threads = 1) {
  IngestOptions opts;
  opts.threads = threads;
  opts.min_parallel_bytes = 0;  // exercise the chunked path on small inputs
  return ParseGraphText(text, Schema::Create(), opts);
}

/// Name-based structural equality: schemas may intern in different
/// orders, so labels and attrs are compared through their names.
void ExpectSameGraph(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.NumNodes(), b.NumNodes());
  ASSERT_EQ(a.NumEdges(GraphView::kNew), b.NumEdges(GraphView::kNew));
  const auto& aschema = *a.schema();
  const auto& bschema = *b.schema();
  for (NodeId v = 0; v < a.NumNodes(); ++v) {
    EXPECT_EQ(a.NodeLabelName(v), b.NodeLabelName(v)) << "node " << v;
    const auto& attrs_a = a.Attrs(v);
    const auto& attrs_b = b.Attrs(v);
    ASSERT_EQ(attrs_a.size(), attrs_b.size()) << "node " << v;
    for (const auto& [attr, val] : attrs_a) {
      auto id = bschema.attrs().Find(aschema.attrs().NameOf(attr));
      ASSERT_TRUE(id.has_value()) << aschema.attrs().NameOf(attr);
      const Value* other = b.GetAttr(v, *id);
      ASSERT_NE(other, nullptr) << aschema.attrs().NameOf(attr);
      EXPECT_EQ(val, *other) << "node " << v << " attr "
                             << aschema.attrs().NameOf(attr);
    }
  }
  for (NodeId v = 0; v < a.NumNodes(); ++v) {
    for (const AdjEntry& e : a.OutEdges(v)) {
      if (!EdgeInView(e.state, GraphView::kNew)) continue;
      auto label = bschema.labels().Find(aschema.labels().NameOf(e.label));
      ASSERT_TRUE(label.has_value());
      EXPECT_TRUE(b.HasEdge(v, e.other, *label, GraphView::kNew))
          << v << " -[" << aschema.labels().NameOf(e.label) << "]-> "
          << e.other;
    }
  }
}

// ---- Escaping -------------------------------------------------------------

TEST(GraphIoEscapingTest, HostileStringAttrsRoundTrip) {
  SchemaPtr schema = Schema::Create();
  Graph g(schema);
  NodeId a = g.AddNode("person");
  const std::vector<std::string> hostile = {
      "plain",
      "with \"quotes\"",
      "tab\there",
      "newline\nhere",
      "back\\slash",
      "carriage\rreturn",
      "\t\n\r\\\"",
      "",
      "trailing space ",
      " leading space",
      "looks=like_attr",
      "unicode \xc3\xa9\xe2\x82\xac",
  };
  for (size_t i = 0; i < hostile.size(); ++i) {
    g.SetAttr(a, "s" + std::to_string(i), Value(hostile[i]));
  }
  g.SetAttr(a, "n", Value(int64_t{-42}));

  auto loaded = Parse(Serialize(g));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectSameGraph(g, **loaded);
}

TEST(GraphIoEscapingTest, ReaderRejectsMalformedStrings) {
  const std::vector<std::pair<std::string, std::string>> cases = {
      {"N\tp\ta=\"unterminated\n", "unterminated"},
      {"N\tp\ta=\"bad\\q escape\"\n", "unknown escape"},
      {"N\tp\ta=\"dangling\\\n", "dangling escape"},
      {"N\tp\ta=\"mid\"dle\"\n", "garbage after closing quote"},
  };
  for (const auto& [text, want] : cases) {
    auto r = Parse(text);
    ASSERT_FALSE(r.ok()) << text;
    EXPECT_EQ(r.status().code(), StatusCode::kCorruption) << text;
    EXPECT_NE(r.status().message().find("line 1"), std::string::npos)
        << r.status().ToString();
    EXPECT_NE(r.status().message().find(want), std::string::npos)
        << r.status().ToString();
  }
}

// ---- Name validation ------------------------------------------------------

TEST(GraphIoNameTest, WriterRejectsUnserializableAttrNames) {
  for (const char* name : {"a=b", "a b", "a\tb", "a\"b", "a\nb"}) {
    SchemaPtr schema = Schema::Create();
    Graph g(schema);
    NodeId v = g.AddNode("person");
    g.SetAttr(v, name, Value(int64_t{1}));
    std::ostringstream os;
    Status s = WriteGraphText(g, &os);
    EXPECT_FALSE(s.ok()) << "attr name: " << name;
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
    // Validation runs before emission: a rejected graph must not leave
    // a truncated partial serialization behind.
    EXPECT_EQ(os.str(), "") << "attr name: " << name;
  }
}

TEST(GraphIoNameTest, WriterRejectsUnserializableLabels) {
  SchemaPtr schema = Schema::Create();
  Graph g(schema);
  g.AddNode("bad\tlabel");
  std::ostringstream os;
  EXPECT_EQ(WriteGraphText(g, &os).code(), StatusCode::kInvalidArgument);
}

TEST(GraphIoNameTest, ReaderRejectsBadAttrAndLabelNames) {
  for (const char* text :
       {"N\tp\ta b=1\n",        // whitespace in attr name
        "N\tp\t=1\n",           // empty attr name
        "N\tp\t\"q\"=1\n",      // quote in attr name
        "N\t\n",                // empty label
        "N\ta b\n"}) {          // whitespace in label
    auto r = Parse(text);
    ASSERT_FALSE(r.ok()) << text;
    EXPECT_EQ(r.status().code(), StatusCode::kCorruption) << text;
    EXPECT_NE(r.status().message().find("line 1"), std::string::npos)
        << r.status().ToString();
  }
}

// ---- Edge endpoint validation ---------------------------------------------

TEST(GraphIoEndpointTest, RejectsNegativeEndpointsWithLineNumber) {
  auto r = Parse("N\tp\nN\tp\nE\t-1\t0\tknows\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  EXPECT_NE(r.status().message().find("line 3"), std::string::npos)
      << r.status().ToString();
  EXPECT_NE(r.status().message().find("negative"), std::string::npos)
      << r.status().ToString();
}

TEST(GraphIoEndpointTest, RejectsOutOfRangeEndpointsWithLineNumber) {
  auto r = Parse("N\tp\nE\t0\t5\tknows\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  EXPECT_NE(r.status().message().find("line 2"), std::string::npos)
      << r.status().ToString();
  EXPECT_NE(r.status().message().find("out of range"), std::string::npos)
      << r.status().ToString();
}

TEST(GraphIoEndpointTest, RejectsUnsignedWraparoundIds) {
  // 2^32 + 1 used to wrap to node 1 through the NodeId cast and load a
  // bogus edge silently; it must be out-of-range now.
  auto r = Parse("N\tp\nN\tp\nE\t0\t4294967297\tknows\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  EXPECT_NE(r.status().message().find("line 3"), std::string::npos)
      << r.status().ToString();
}

TEST(GraphIoEndpointTest, ForwardReferencesToLaterNodesAreAllowed) {
  // Endpoint validation runs against the final node count, so an edge
  // record may precede the declarations of its endpoints.
  auto r = Parse("E\t0\t1\tknows\nN\tp\nN\tp\n");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Graph& g = **r;
  EXPECT_TRUE(
      g.HasEdge(0, 1, *g.schema()->labels().Find("knows"), GraphView::kNew));
}

TEST(GraphIoEndpointTest, DuplicateEdgeIsCorruptionWithLineNumber) {
  auto r = Parse("N\tp\nN\tp\nE\t0\t1\tk\nE\t0\t1\tk\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  EXPECT_NE(r.status().message().find("line 4"), std::string::npos)
      << r.status().ToString();
}

// ---- View consistency with a pending overlay ------------------------------

TEST(GraphIoViewTest, PendingOverlayRoundTripsPerView) {
  SchemaPtr schema = Schema::Create();
  Graph g(schema);
  NodeId a = g.AddNode("person");
  NodeId b = g.AddNode("person");
  NodeId c = g.AddNode("city");
  g.SetAttr(a, "age", Value(int64_t{30}));
  LabelId knows = schema->InternLabel("knows");
  LabelId lives = schema->InternLabel("lives_in");
  ASSERT_TRUE(g.AddEdge(a, b, knows).ok());
  ASSERT_TRUE(g.AddEdge(a, c, lives).ok());
  // Pending overlay: delete a base edge, insert a fresh one.
  ASSERT_TRUE(g.DeleteEdge(a, b, knows).ok());
  ASSERT_TRUE(g.InsertEdge(b, c, lives).ok());
  ASSERT_TRUE(g.HasPendingUpdate());

  const std::string text_new = Serialize(g, GraphView::kNew);
  const std::string text_old = Serialize(g, GraphView::kOld);

  // kNew must equal the committed graph...
  Graph committed = g;
  committed.Commit();
  auto loaded_new = Parse(text_new);
  ASSERT_TRUE(loaded_new.ok()) << loaded_new.status().ToString();
  ExpectSameGraph(committed, **loaded_new);
  // The regression: the deleted edge must NOT appear in the kNew output.
  EXPECT_EQ(text_new.find("E\t0\t1\tknows"), std::string::npos);

  // ...and kOld the rolled-back (pre-update) graph.
  Graph rolled = g;
  rolled.Rollback();
  auto loaded_old = Parse(text_old);
  ASSERT_TRUE(loaded_old.ok()) << loaded_old.status().ToString();
  ExpectSameGraph(rolled, **loaded_old);
  EXPECT_EQ(text_old.find("E\t1\t2\tlives_in"), std::string::npos);
}

// ---- Randomized round-trip property suite ---------------------------------

TEST(GraphIoPropertyTest, RandomGraphsRoundTripAcrossThreadCounts) {
  const size_t cases = CaseCount();
  const std::string hostile[] = {
      "x\ty", "a\"b\"c", "line\nbreak", "w\\e\\i\\r\\d", "", "=", "\r\n",
  };
  for (size_t c = 0; c < cases; ++c) {
    Rng rng(1700 + c);
    GraphGenConfig config;
    config.num_nodes = 20 + static_cast<size_t>(rng.UniformInt(0, 200));
    config.num_edges = config.num_nodes +
                       static_cast<size_t>(rng.UniformInt(0, 400));
    config.num_node_labels = 1 + static_cast<size_t>(rng.UniformInt(0, 12));
    config.num_edge_labels = 1 + static_cast<size_t>(rng.UniformInt(0, 8));
    config.num_attrs = 1 + static_cast<size_t>(rng.UniformInt(0, 6));
    config.attrs_per_node = static_cast<size_t>(rng.UniformInt(0, 4));
    config.seed = 9000 + c;
    SchemaPtr schema = Schema::Create();
    std::unique_ptr<Graph> g = GenerateGraph(config, schema);
    // Sprinkle hostile string attrs over random nodes.
    const AttrId s_attr = schema->InternAttr("hostile");
    for (int k = 0; k < 8; ++k) {
      const NodeId v = static_cast<NodeId>(
          rng.UniformInt(0, static_cast<int64_t>(g->NumNodes()) - 1));
      g->SetAttr(v, s_attr,
                 Value(hostile[static_cast<size_t>(rng.UniformInt(
                     0, static_cast<int64_t>(std::size(hostile)) - 1))]));
    }

    const std::string text = Serialize(*g);
    const int threads = 1 + static_cast<int>(c % 4);
    auto loaded = Parse(text, threads);
    ASSERT_TRUE(loaded.ok()) << "case " << c << ": "
                             << loaded.status().ToString();
    ExpectSameGraph(*g, **loaded);

    // Canonical form: a parsed graph's schema is in file order, so from
    // the first round trip on, save∘load is byte-idempotent. (The very
    // first save need not be canonical — the generator's intern order
    // can differ from file-first-occurrence order.)
    const std::string canon = Serialize(**loaded);
    auto reparsed = Parse(canon, threads);
    ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
    EXPECT_EQ(Serialize(**reparsed), canon) << "case " << c;

    // The chunk-parallel parse matches the sequential oracle exactly —
    // including the schema intern order (file order of first occurrence).
    auto seq = Parse(text, 1);
    ASSERT_TRUE(seq.ok());
    const auto& lseq = (*seq)->schema()->labels();
    const auto& lpar = (*loaded)->schema()->labels();
    ASSERT_EQ(lseq.size(), lpar.size()) << "case " << c;
    for (size_t i = 0; i < lseq.size(); ++i) {
      EXPECT_EQ(lseq.NameOf(static_cast<uint32_t>(i)),
                lpar.NameOf(static_cast<uint32_t>(i)))
          << "case " << c << " label id " << i;
    }
  }
}

TEST(GraphIoPropertyTest, ParallelErrorsMatchSequentialOracle) {
  // An error deep in the file must surface with the same code and line
  // number from every thread count.
  std::string text;
  for (int i = 0; i < 200; ++i) text += "N\tp\tk=" + std::to_string(i) + "\n";
  text += "E\t0\t9999\tknows\n";  // line 201: out of range
  for (int i = 0; i < 200; ++i) text += "E\t" + std::to_string(i) + "\t" +
                                        std::to_string((i + 1) % 200) +
                                        "\tknows\n";
  for (int threads : {1, 2, 3, 8}) {
    auto r = Parse(text, threads);
    ASSERT_FALSE(r.ok()) << threads << " threads";
    EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
    EXPECT_NE(r.status().message().find("line 201"), std::string::npos)
        << threads << " threads: " << r.status().ToString();
  }
}

}  // namespace
}  // namespace ngd
