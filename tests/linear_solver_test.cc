#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <sstream>
#include <vector>

#include "reason/linear_solver.h"
#include "util/rng.h"

namespace ngd {
namespace {

LinConstraint C(std::vector<LinTerm> terms, CmpOp op, int64_t rhs) {
  return LinConstraint{std::move(terms), op, rhs};
}

TEST(LinearSolverTest, TrivialSystemIsSat) {
  LinearSolver solver(1);
  solver.AddConstraint(C({{0, 1}}, CmpOp::kGe, 3));
  solver.AddConstraint(C({{0, 1}}, CmpOp::kLe, 5));
  std::vector<int64_t> sol;
  ASSERT_EQ(solver.Solve(&sol), SolveResult::kSat);
  EXPECT_GE(sol[0], 3);
  EXPECT_LE(sol[0], 5);
}

TEST(LinearSolverTest, EmptyIntervalIsUnsat) {
  LinearSolver solver(1);
  solver.AddConstraint(C({{0, 1}}, CmpOp::kGe, 6));
  solver.AddConstraint(C({{0, 1}}, CmpOp::kLe, 5));
  EXPECT_EQ(solver.Solve(), SolveResult::kUnsat);
}

TEST(LinearSolverTest, StrictInequalitiesOnIntegers) {
  // 3 < x < 5 over Z forces x = 4.
  LinearSolver solver(1);
  solver.AddConstraint(C({{0, 1}}, CmpOp::kGt, 3));
  solver.AddConstraint(C({{0, 1}}, CmpOp::kLt, 5));
  std::vector<int64_t> sol;
  ASSERT_EQ(solver.Solve(&sol), SolveResult::kSat);
  EXPECT_EQ(sol[0], 4);
  // 3 < x < 4 over Z is empty.
  LinearSolver solver2(1);
  solver2.AddConstraint(C({{0, 1}}, CmpOp::kGt, 3));
  solver2.AddConstraint(C({{0, 1}}, CmpOp::kLt, 4));
  EXPECT_EQ(solver2.Solve(), SolveResult::kUnsat);
}

TEST(LinearSolverTest, EqualityPropagates) {
  // x = 7, x + y = 11 -> y = 4 (Example 5 arithmetic).
  LinearSolver solver(2);
  solver.AddConstraint(C({{0, 1}}, CmpOp::kEq, 7));
  solver.AddConstraint(C({{0, 1}, {1, 1}}, CmpOp::kEq, 11));
  std::vector<int64_t> sol;
  ASSERT_EQ(solver.Solve(&sol), SolveResult::kSat);
  EXPECT_EQ(sol[0], 7);
  EXPECT_EQ(sol[1], 4);
}

TEST(LinearSolverTest, Example5Conflict) {
  // x.A = 7, x.B = 7, x.A + x.B = 11: unsatisfiable (paper Example 5).
  LinearSolver solver(2);
  solver.AddConstraint(C({{0, 1}}, CmpOp::kEq, 7));
  solver.AddConstraint(C({{1, 1}}, CmpOp::kEq, 7));
  solver.AddConstraint(C({{0, 1}, {1, 1}}, CmpOp::kEq, 11));
  EXPECT_EQ(solver.Solve(), SolveResult::kUnsat);
}

TEST(LinearSolverTest, DisequalityForcesSplit) {
  // 0 <= x <= 1, x != 0, x != 1: unsat.
  LinearSolver solver(1);
  solver.AddConstraint(C({{0, 1}}, CmpOp::kGe, 0));
  solver.AddConstraint(C({{0, 1}}, CmpOp::kLe, 1));
  solver.AddConstraint(C({{0, 1}}, CmpOp::kNe, 0));
  solver.AddConstraint(C({{0, 1}}, CmpOp::kNe, 1));
  EXPECT_EQ(solver.Solve(), SolveResult::kUnsat);
  // Allowing x = 2 makes it sat.
  LinearSolver solver2(1);
  solver2.AddConstraint(C({{0, 1}}, CmpOp::kGe, 0));
  solver2.AddConstraint(C({{0, 1}}, CmpOp::kLe, 2));
  solver2.AddConstraint(C({{0, 1}}, CmpOp::kNe, 0));
  solver2.AddConstraint(C({{0, 1}}, CmpOp::kNe, 1));
  std::vector<int64_t> sol;
  ASSERT_EQ(solver2.Solve(&sol), SolveResult::kSat);
  EXPECT_EQ(sol[0], 2);
}

TEST(LinearSolverTest, NegativeCoefficients) {
  // 2x - 3y <= -1, x >= 2 -> y >= (2x+1)/3 >= 5/3 -> y >= 2.
  LinearSolver solver(2);
  solver.AddConstraint(C({{0, 2}, {1, -3}}, CmpOp::kLe, -1));
  solver.AddConstraint(C({{0, 1}}, CmpOp::kGe, 2));
  solver.AddConstraint(C({{1, 1}}, CmpOp::kLe, 10));
  std::vector<int64_t> sol;
  ASSERT_EQ(solver.Solve(&sol), SolveResult::kSat);
  EXPECT_GE(2 * sol[0] - 3 * sol[1], -100);
  EXPECT_LE(2 * sol[0] - 3 * sol[1], -1);
}

TEST(LinearSolverTest, WitnessSatisfiesAllConstraints) {
  LinearSolver solver(3);
  solver.AddConstraint(C({{0, 1}, {1, 1}, {2, 1}}, CmpOp::kEq, 10));
  solver.AddConstraint(C({{0, 1}}, CmpOp::kGe, 1));
  solver.AddConstraint(C({{1, 1}}, CmpOp::kGe, 2));
  solver.AddConstraint(C({{2, 1}}, CmpOp::kGe, 3));
  solver.AddConstraint(C({{0, 1}, {1, -1}}, CmpOp::kNe, 0));
  std::vector<int64_t> sol;
  ASSERT_EQ(solver.Solve(&sol), SolveResult::kSat);
  EXPECT_EQ(sol[0] + sol[1] + sol[2], 10);
  EXPECT_NE(sol[0], sol[1]);
}

TEST(LinearSolverTest, UnboundedSatFindsSmallWitness) {
  LinearSolver solver(1);
  solver.AddConstraint(C({{0, 1}}, CmpOp::kGe, -1000000));
  std::vector<int64_t> sol;
  EXPECT_EQ(solver.Solve(&sol), SolveResult::kSat);
}

TEST(LinearSolverTest, NoConstraintsIsSat) {
  LinearSolver solver(2);
  std::vector<int64_t> sol;
  EXPECT_EQ(solver.Solve(&sol), SolveResult::kSat);
  EXPECT_EQ(sol.size(), 2u);
}

TEST(LinearSolverTest, ConstantOnlyConstraints) {
  LinearSolver ok(0);
  ok.AddConstraint(C({}, CmpOp::kLe, 5));  // 0 <= 5
  EXPECT_EQ(ok.Solve(), SolveResult::kSat);
  LinearSolver bad(0);
  bad.AddConstraint(C({}, CmpOp::kGe, 5));  // 0 >= 5
  EXPECT_EQ(bad.Solve(), SolveResult::kUnsat);
}

TEST(LinearSolverTest, DuplicateVarTermsAreCombined) {
  // x + x <= 4 -> x <= 2.
  LinearSolver solver(1);
  solver.AddConstraint(C({{0, 1}, {0, 1}}, CmpOp::kLe, 4));
  solver.AddConstraint(C({{0, 1}}, CmpOp::kGe, 2));
  std::vector<int64_t> sol;
  ASSERT_EQ(solver.Solve(&sol), SolveResult::kSat);
  EXPECT_EQ(sol[0], 2);
}

TEST(LinearSolverTest, ChainPropagation) {
  // x0 = x1 + 1 = x2 + 2 = ... = x5 + 5, x5 = 0 -> x0 = 5.
  LinearSolver solver(6);
  for (int i = 0; i < 5; ++i) {
    solver.AddConstraint(C({{i, 1}, {i + 1, -1}}, CmpOp::kEq, 1));
  }
  solver.AddConstraint(C({{5, 1}}, CmpOp::kEq, 0));
  std::vector<int64_t> sol;
  ASSERT_EQ(solver.Solve(&sol), SolveResult::kSat);
  EXPECT_EQ(sol[0], 5);
}

TEST(LinearSolverTest, ManyDisequalitiesStillExact) {
  // x in [0, 20], x != 0..9 -> x >= 10 exists.
  LinearSolver solver(1);
  solver.AddConstraint(C({{0, 1}}, CmpOp::kGe, 0));
  solver.AddConstraint(C({{0, 1}}, CmpOp::kLe, 20));
  for (int64_t k = 0; k < 10; ++k) {
    solver.AddConstraint(C({{0, 1}}, CmpOp::kNe, k));
  }
  std::vector<int64_t> sol;
  ASSERT_EQ(solver.Solve(&sol), SolveResult::kSat);
  EXPECT_GE(sol[0], 10);
}

TEST(LinearSolverTest, OppositeMultiVarFormsRefutedWithoutBounds) {
  // a + b <= 5 and a + b >= 10: interval propagation alone cannot see
  // this (no variable has an absolute bound), bisection over the clamped
  // domain would give up — the pairwise opposite-form check must refute
  // it outright. This is exactly the shape implication checking produces
  // for weakened-threshold rule variants.
  LinearSolver solver(2);
  solver.AddConstraint(C({{0, 1}, {1, 1}}, CmpOp::kLe, 5));
  solver.AddConstraint(C({{0, 1}, {1, 1}}, CmpOp::kGe, 10));
  EXPECT_EQ(solver.Solve(), SolveResult::kUnsat);
  // Proportional forms count too: 2a + 2b <= 10 vs 3a + 3b >= 33.
  LinearSolver solver2(2);
  solver2.AddConstraint(C({{0, 2}, {1, 2}}, CmpOp::kLe, 10));
  solver2.AddConstraint(C({{0, 3}, {1, 3}}, CmpOp::kGe, 33));
  EXPECT_EQ(solver2.Solve(), SolveResult::kUnsat);
  // Compatible bounds stay satisfiable.
  LinearSolver solver3(2);
  solver3.AddConstraint(C({{0, 1}, {1, 1}}, CmpOp::kLe, 10));
  solver3.AddConstraint(C({{0, 1}, {1, 1}}, CmpOp::kGe, 5));
  std::vector<int64_t> sol;
  EXPECT_EQ(solver3.Solve(&sol), SolveResult::kSat);
  EXPECT_GE(sol[0] + sol[1], 5);
  EXPECT_LE(sol[0] + sol[1], 10);
}

// ---- Randomized property tests ---------------------------------------------
//
// Instances are BOXED (every variable carries |x| <= kBox constraints), so
// exhaustive enumeration over the box is an exact integer-feasibility
// reference and the solver has no honest excuse for kUnknown. A
// Fourier–Motzkin elimination over the rational relaxation supplies the
// second reference: FM-infeasible over Q forces kUnsat over Z, and a kSat
// witness forces FM-feasibility.

constexpr int64_t kBox = 6;

struct RandomSystem {
  int num_vars = 0;
  std::vector<LinConstraint> constraints;  // includes the box
};

RandomSystem MakeRandomSystem(Rng* rng, bool boundary_coefs) {
  RandomSystem sys;
  sys.num_vars = 1 + static_cast<int>(rng->UniformInt(0, 2));
  for (int v = 0; v < sys.num_vars; ++v) {
    sys.constraints.push_back(C({{v, 1}}, CmpOp::kLe, kBox));
    sys.constraints.push_back(C({{v, 1}}, CmpOp::kGe, -kBox));
  }
  const int extra = 1 + static_cast<int>(rng->UniformInt(0, 3));
  const CmpOp ops[] = {CmpOp::kEq, CmpOp::kNe, CmpOp::kLt,
                       CmpOp::kLe, CmpOp::kGt, CmpOp::kGe};
  const int64_t boundary[] = {INT64_MAX, INT64_MAX - 1, INT64_MIN,
                              INT64_MIN + 1, int64_t{1} << 62,
                              -(int64_t{1} << 62)};
  for (int k = 0; k < extra; ++k) {
    LinConstraint c;
    const int terms = 1 + static_cast<int>(
                              rng->UniformInt(0, sys.num_vars - 1));
    for (int t = 0; t < terms; ++t) {
      int64_t coef;
      if (boundary_coefs && rng->Bernoulli(0.5)) {
        coef = boundary[rng->UniformInt(0, 5)];
      } else {
        coef = rng->UniformInt(1, 5) * (rng->Bernoulli(0.5) ? 1 : -1);
      }
      c.terms.push_back(
          {static_cast<int>(rng->UniformInt(0, sys.num_vars - 1)), coef});
    }
    c.op = ops[rng->UniformInt(0, 5)];
    if (boundary_coefs && rng->Bernoulli(0.3)) {
      c.rhs = boundary[rng->UniformInt(0, 5)];
    } else {
      c.rhs = rng->UniformInt(-12, 12);
    }
    sys.constraints.push_back(std::move(c));
  }
  return sys;
}

bool Holds(const LinConstraint& c, const std::vector<int64_t>& x) {
  __int128 sum = 0;
  for (const LinTerm& t : c.terms) sum += __int128(t.coef) * x[t.var];
  const __int128 rhs = c.rhs;
  switch (c.op) {
    case CmpOp::kEq: return sum == rhs;
    case CmpOp::kNe: return sum != rhs;
    case CmpOp::kLt: return sum < rhs;
    case CmpOp::kLe: return sum <= rhs;
    case CmpOp::kGt: return sum > rhs;
    case CmpOp::kGe: return sum >= rhs;
  }
  return false;
}

/// Exact integer reference: enumerate the box.
bool ExhaustivelyFeasible(const RandomSystem& sys) {
  std::vector<int64_t> x(sys.num_vars, -kBox);
  while (true) {
    bool ok = true;
    for (const LinConstraint& c : sys.constraints) {
      if (!Holds(c, x)) {
        ok = false;
        break;
      }
    }
    if (ok) return true;
    int v = 0;
    while (v < sys.num_vars && x[v] == kBox) x[v++] = -kBox;
    if (v == sys.num_vars) return false;
    ++x[v];
  }
}

/// Brute-force Fourier–Motzkin over the rational relaxation of the
/// ≤-normalized system (strict/=/≠-free; ≠ constraints are simply
/// dropped, which only weakens the reference). Returns true iff the
/// relaxation is infeasible over Q — which implies integer infeasibility.
bool FourierMotzkinInfeasible(const RandomSystem& sys) {
  struct Row {
    std::vector<__int128> coef;  // per var
    __int128 rhs;
  };
  std::vector<Row> rows;
  auto add_row = [&](const LinConstraint& c, bool negate, __int128 shift) {
    Row r;
    r.coef.assign(static_cast<size_t>(sys.num_vars), 0);
    for (const LinTerm& t : c.terms) {
      r.coef[static_cast<size_t>(t.var)] +=
          negate ? -__int128(t.coef) : __int128(t.coef);
    }
    r.rhs = (negate ? -__int128(c.rhs) : __int128(c.rhs)) + shift;
    rows.push_back(std::move(r));
  };
  for (const LinConstraint& c : sys.constraints) {
    switch (c.op) {
      case CmpOp::kLe: add_row(c, false, 0); break;
      case CmpOp::kLt: add_row(c, false, -1); break;  // integer-equivalent
      case CmpOp::kGe: add_row(c, true, 0); break;
      case CmpOp::kGt: add_row(c, true, -1); break;
      case CmpOp::kEq:
        add_row(c, false, 0);
        add_row(c, true, 0);
        break;
      case CmpOp::kNe: break;  // dropped: weakens the reference only
    }
  }
  for (int v = 0; v < sys.num_vars; ++v) {
    std::vector<Row> pos, neg, rest;
    for (Row& r : rows) {
      if (r.coef[v] > 0) {
        pos.push_back(std::move(r));
      } else if (r.coef[v] < 0) {
        neg.push_back(std::move(r));
      } else {
        rest.push_back(std::move(r));
      }
    }
    rows = std::move(rest);
    for (const Row& p : pos) {
      for (const Row& n : neg) {
        // p.coef[v] * x_v <= ... and n.coef[v] * x_v <= ... combine with
        // multipliers -n.coef[v] > 0 and p.coef[v] > 0.
        const __int128 mp = -n.coef[v];
        const __int128 mn = p.coef[v];
        Row r;
        r.coef.assign(static_cast<size_t>(sys.num_vars), 0);
        for (int u = 0; u < sys.num_vars; ++u) {
          r.coef[u] = p.coef[u] * mp + n.coef[u] * mn;
        }
        r.rhs = p.rhs * mp + n.rhs * mn;
        rows.push_back(std::move(r));
      }
    }
  }
  for (const Row& r : rows) {
    if (r.rhs < 0) return true;  // 0 <= rhs < 0
  }
  return false;
}

TEST(LinearSolverPropertyTest, BoxedSystemsMatchExhaustiveReference) {
  Rng rng(20260730);
  size_t sat = 0, unsat = 0;
  for (int iter = 0; iter < 500; ++iter) {
    RandomSystem sys = MakeRandomSystem(&rng, /*boundary_coefs=*/false);
    LinearSolver solver(sys.num_vars);
    for (const LinConstraint& c : sys.constraints) solver.AddConstraint(c);
    std::vector<int64_t> witness;
    const SolveResult got = solver.Solve(&witness);
    const bool feasible = ExhaustivelyFeasible(sys);
    ASSERT_NE(got, SolveResult::kUnknown)
        << "boxed system undecided at iter " << iter;
    ASSERT_EQ(got == SolveResult::kSat, feasible)
        << "solver disagrees with exhaustive reference at iter " << iter;
    if (got == SolveResult::kSat) {
      ++sat;
      for (const LinConstraint& c : sys.constraints) {
        ASSERT_TRUE(Holds(c, witness))
            << "witness violates a constraint at iter " << iter;
      }
    } else {
      ++unsat;
    }
  }
  // The generator must produce a real mix, or the sweep proves little.
  EXPECT_GT(sat, 100u);
  EXPECT_GT(unsat, 100u);
}

TEST(LinearSolverPropertyTest, AgreesWithFourierMotzkinReference) {
  Rng rng(424242);
  size_t fm_infeasible = 0;
  for (int iter = 0; iter < 500; ++iter) {
    RandomSystem sys = MakeRandomSystem(&rng, /*boundary_coefs=*/false);
    LinearSolver solver(sys.num_vars);
    for (const LinConstraint& c : sys.constraints) solver.AddConstraint(c);
    std::vector<int64_t> witness;
    const SolveResult got = solver.Solve(&witness);
    if (FourierMotzkinInfeasible(sys)) {
      ++fm_infeasible;
      ASSERT_EQ(got, SolveResult::kUnsat)
          << "FM-infeasible over Q but solver says " << static_cast<int>(got)
          << " at iter " << iter;
    } else if (got == SolveResult::kSat) {
      // An integer witness is a rational witness; FM must agree. (The
      // converse gap — rational-feasible, integer-infeasible — is real
      // and covered by the exhaustive reference above.)
      for (const LinConstraint& c : sys.constraints) {
        ASSERT_TRUE(Holds(c, witness)) << "bad witness at iter " << iter;
      }
    }
  }
  EXPECT_GT(fm_infeasible, 50u);
}

TEST(LinearSolverPropertyTest, Int64BoundaryCoefficientsStaySound) {
  // The PR 1 overflow class: ±INT64 rim coefficients and bounds must
  // never wrap during normalization (negation for >=, rhs - 1 for <,
  // duplicate-term merging). Soundness contract under sanitizers: no UB,
  // kSat only with a verifying witness, kUnsat only when the exhaustive
  // boxed reference agrees.
  Rng rng(77007);
  size_t decided = 0;
  for (int iter = 0; iter < 300; ++iter) {
    RandomSystem sys = MakeRandomSystem(&rng, /*boundary_coefs=*/true);
    LinearSolver solver(sys.num_vars);
    for (const LinConstraint& c : sys.constraints) solver.AddConstraint(c);
    std::vector<int64_t> witness;
    const SolveResult got = solver.Solve(&witness);
    if (got == SolveResult::kSat) {
      ++decided;
      for (const LinConstraint& c : sys.constraints) {
        ASSERT_TRUE(Holds(c, witness))
            << "boundary-coefficient witness violates a constraint at iter "
            << iter;
      }
    } else if (got == SolveResult::kUnsat) {
      ++decided;
      ASSERT_FALSE(ExhaustivelyFeasible(sys))
          << "kUnsat but the box holds a solution at iter " << iter;
    }
    // kUnknown is honest at the rim (saturated working range).
  }
  EXPECT_GT(decided, 100u);
}

TEST(LinearSolverTest, BoundaryNormalizationRegression) {
  // x < INT64_MIN: satisfiable over Z but outside the representable
  // range — must not wrap `rhs - 1` into a huge positive bound (old
  // behavior) nor claim kUnsat (no witness ever exists in-range).
  {
    LinearSolver solver(1);
    solver.AddConstraint(C({{0, 1}}, CmpOp::kLt, INT64_MIN));
    EXPECT_EQ(solver.Solve(), SolveResult::kUnknown);
  }
  // coef INT64_MIN with >= : negation must widen, not wrap.
  {
    LinearSolver solver(1);
    solver.AddConstraint(C({{0, INT64_MIN}}, CmpOp::kGe, 0));
    std::vector<int64_t> sol;
    ASSERT_EQ(solver.Solve(&sol), SolveResult::kSat);
    EXPECT_LE(sol[0], 0);
  }
  // Duplicate terms summing past int64: INT64_MAX·x + INT64_MAX·x = 2.
  // Over integers there is no solution (the merged coefficient is even,
  // 2/(2·INT64_MAX) is not integral) — wrapping the merged coefficient
  // to -2 would instead "find" x = -1.
  {
    LinearSolver solver(1);
    solver.AddConstraint(
        C({{0, INT64_MAX}, {0, INT64_MAX}}, CmpOp::kEq, 2));
    std::vector<int64_t> sol;
    SolveResult r = solver.Solve(&sol);
    EXPECT_NE(r, SolveResult::kSat);
  }
  // x = INT64_MIN exactly: representable in int64 but beyond the
  // solver's saturating working range — kUnknown is the honest answer,
  // kUnsat would be fabricated.
  {
    LinearSolver solver(1);
    solver.AddConstraint(C({{0, 1}}, CmpOp::kEq, INT64_MIN));
    EXPECT_NE(solver.Solve(), SolveResult::kUnsat);
  }
  // Domain-clamp honesty: a bound beyond ±domain_bound is out of the
  // search space, not provably absent.
  {
    SolverOptions opts;
    opts.domain_bound = 1000;
    LinearSolver solver(1, opts);
    solver.AddConstraint(C({{0, 1}}, CmpOp::kGe, 5000));
    EXPECT_NE(solver.Solve(), SolveResult::kUnsat);
  }
  // Clamp honesty on the pinned-point path: x >= domain_bound pins x to
  // the clamped value; >12 disequalities (skipping the up-front ≠ split)
  // at exactly that value refute the point but not the system — x =
  // domain_bound + 1 is a solution, so kUnsat would be fabricated.
  {
    SolverOptions opts;
    opts.domain_bound = 1000;
    LinearSolver solver(1, opts);
    solver.AddConstraint(C({{0, 1}}, CmpOp::kGe, 1000));
    for (int k = 0; k < 13; ++k) {
      solver.AddConstraint(C({{0, 1}}, CmpOp::kNe, 1000));
    }
    EXPECT_NE(solver.Solve(), SolveResult::kUnsat);
  }
}

}  // namespace
}  // namespace ngd
