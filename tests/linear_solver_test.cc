#include <gtest/gtest.h>

#include "reason/linear_solver.h"

namespace ngd {
namespace {

LinConstraint C(std::vector<LinTerm> terms, CmpOp op, int64_t rhs) {
  return LinConstraint{std::move(terms), op, rhs};
}

TEST(LinearSolverTest, TrivialSystemIsSat) {
  LinearSolver solver(1);
  solver.AddConstraint(C({{0, 1}}, CmpOp::kGe, 3));
  solver.AddConstraint(C({{0, 1}}, CmpOp::kLe, 5));
  std::vector<int64_t> sol;
  ASSERT_EQ(solver.Solve(&sol), SolveResult::kSat);
  EXPECT_GE(sol[0], 3);
  EXPECT_LE(sol[0], 5);
}

TEST(LinearSolverTest, EmptyIntervalIsUnsat) {
  LinearSolver solver(1);
  solver.AddConstraint(C({{0, 1}}, CmpOp::kGe, 6));
  solver.AddConstraint(C({{0, 1}}, CmpOp::kLe, 5));
  EXPECT_EQ(solver.Solve(), SolveResult::kUnsat);
}

TEST(LinearSolverTest, StrictInequalitiesOnIntegers) {
  // 3 < x < 5 over Z forces x = 4.
  LinearSolver solver(1);
  solver.AddConstraint(C({{0, 1}}, CmpOp::kGt, 3));
  solver.AddConstraint(C({{0, 1}}, CmpOp::kLt, 5));
  std::vector<int64_t> sol;
  ASSERT_EQ(solver.Solve(&sol), SolveResult::kSat);
  EXPECT_EQ(sol[0], 4);
  // 3 < x < 4 over Z is empty.
  LinearSolver solver2(1);
  solver2.AddConstraint(C({{0, 1}}, CmpOp::kGt, 3));
  solver2.AddConstraint(C({{0, 1}}, CmpOp::kLt, 4));
  EXPECT_EQ(solver2.Solve(), SolveResult::kUnsat);
}

TEST(LinearSolverTest, EqualityPropagates) {
  // x = 7, x + y = 11 -> y = 4 (Example 5 arithmetic).
  LinearSolver solver(2);
  solver.AddConstraint(C({{0, 1}}, CmpOp::kEq, 7));
  solver.AddConstraint(C({{0, 1}, {1, 1}}, CmpOp::kEq, 11));
  std::vector<int64_t> sol;
  ASSERT_EQ(solver.Solve(&sol), SolveResult::kSat);
  EXPECT_EQ(sol[0], 7);
  EXPECT_EQ(sol[1], 4);
}

TEST(LinearSolverTest, Example5Conflict) {
  // x.A = 7, x.B = 7, x.A + x.B = 11: unsatisfiable (paper Example 5).
  LinearSolver solver(2);
  solver.AddConstraint(C({{0, 1}}, CmpOp::kEq, 7));
  solver.AddConstraint(C({{1, 1}}, CmpOp::kEq, 7));
  solver.AddConstraint(C({{0, 1}, {1, 1}}, CmpOp::kEq, 11));
  EXPECT_EQ(solver.Solve(), SolveResult::kUnsat);
}

TEST(LinearSolverTest, DisequalityForcesSplit) {
  // 0 <= x <= 1, x != 0, x != 1: unsat.
  LinearSolver solver(1);
  solver.AddConstraint(C({{0, 1}}, CmpOp::kGe, 0));
  solver.AddConstraint(C({{0, 1}}, CmpOp::kLe, 1));
  solver.AddConstraint(C({{0, 1}}, CmpOp::kNe, 0));
  solver.AddConstraint(C({{0, 1}}, CmpOp::kNe, 1));
  EXPECT_EQ(solver.Solve(), SolveResult::kUnsat);
  // Allowing x = 2 makes it sat.
  LinearSolver solver2(1);
  solver2.AddConstraint(C({{0, 1}}, CmpOp::kGe, 0));
  solver2.AddConstraint(C({{0, 1}}, CmpOp::kLe, 2));
  solver2.AddConstraint(C({{0, 1}}, CmpOp::kNe, 0));
  solver2.AddConstraint(C({{0, 1}}, CmpOp::kNe, 1));
  std::vector<int64_t> sol;
  ASSERT_EQ(solver2.Solve(&sol), SolveResult::kSat);
  EXPECT_EQ(sol[0], 2);
}

TEST(LinearSolverTest, NegativeCoefficients) {
  // 2x - 3y <= -1, x >= 2 -> y >= (2x+1)/3 >= 5/3 -> y >= 2.
  LinearSolver solver(2);
  solver.AddConstraint(C({{0, 2}, {1, -3}}, CmpOp::kLe, -1));
  solver.AddConstraint(C({{0, 1}}, CmpOp::kGe, 2));
  solver.AddConstraint(C({{1, 1}}, CmpOp::kLe, 10));
  std::vector<int64_t> sol;
  ASSERT_EQ(solver.Solve(&sol), SolveResult::kSat);
  EXPECT_GE(2 * sol[0] - 3 * sol[1], -100);
  EXPECT_LE(2 * sol[0] - 3 * sol[1], -1);
}

TEST(LinearSolverTest, WitnessSatisfiesAllConstraints) {
  LinearSolver solver(3);
  solver.AddConstraint(C({{0, 1}, {1, 1}, {2, 1}}, CmpOp::kEq, 10));
  solver.AddConstraint(C({{0, 1}}, CmpOp::kGe, 1));
  solver.AddConstraint(C({{1, 1}}, CmpOp::kGe, 2));
  solver.AddConstraint(C({{2, 1}}, CmpOp::kGe, 3));
  solver.AddConstraint(C({{0, 1}, {1, -1}}, CmpOp::kNe, 0));
  std::vector<int64_t> sol;
  ASSERT_EQ(solver.Solve(&sol), SolveResult::kSat);
  EXPECT_EQ(sol[0] + sol[1] + sol[2], 10);
  EXPECT_NE(sol[0], sol[1]);
}

TEST(LinearSolverTest, UnboundedSatFindsSmallWitness) {
  LinearSolver solver(1);
  solver.AddConstraint(C({{0, 1}}, CmpOp::kGe, -1000000));
  std::vector<int64_t> sol;
  EXPECT_EQ(solver.Solve(&sol), SolveResult::kSat);
}

TEST(LinearSolverTest, NoConstraintsIsSat) {
  LinearSolver solver(2);
  std::vector<int64_t> sol;
  EXPECT_EQ(solver.Solve(&sol), SolveResult::kSat);
  EXPECT_EQ(sol.size(), 2u);
}

TEST(LinearSolverTest, ConstantOnlyConstraints) {
  LinearSolver ok(0);
  ok.AddConstraint(C({}, CmpOp::kLe, 5));  // 0 <= 5
  EXPECT_EQ(ok.Solve(), SolveResult::kSat);
  LinearSolver bad(0);
  bad.AddConstraint(C({}, CmpOp::kGe, 5));  // 0 >= 5
  EXPECT_EQ(bad.Solve(), SolveResult::kUnsat);
}

TEST(LinearSolverTest, DuplicateVarTermsAreCombined) {
  // x + x <= 4 -> x <= 2.
  LinearSolver solver(1);
  solver.AddConstraint(C({{0, 1}, {0, 1}}, CmpOp::kLe, 4));
  solver.AddConstraint(C({{0, 1}}, CmpOp::kGe, 2));
  std::vector<int64_t> sol;
  ASSERT_EQ(solver.Solve(&sol), SolveResult::kSat);
  EXPECT_EQ(sol[0], 2);
}

TEST(LinearSolverTest, ChainPropagation) {
  // x0 = x1 + 1 = x2 + 2 = ... = x5 + 5, x5 = 0 -> x0 = 5.
  LinearSolver solver(6);
  for (int i = 0; i < 5; ++i) {
    solver.AddConstraint(C({{i, 1}, {i + 1, -1}}, CmpOp::kEq, 1));
  }
  solver.AddConstraint(C({{5, 1}}, CmpOp::kEq, 0));
  std::vector<int64_t> sol;
  ASSERT_EQ(solver.Solve(&sol), SolveResult::kSat);
  EXPECT_EQ(sol[0], 5);
}

TEST(LinearSolverTest, ManyDisequalitiesStillExact) {
  // x in [0, 20], x != 0..9 -> x >= 10 exists.
  LinearSolver solver(1);
  solver.AddConstraint(C({{0, 1}}, CmpOp::kGe, 0));
  solver.AddConstraint(C({{0, 1}}, CmpOp::kLe, 20));
  for (int64_t k = 0; k < 10; ++k) {
    solver.AddConstraint(C({{0, 1}}, CmpOp::kNe, k));
  }
  std::vector<int64_t> sol;
  ASSERT_EQ(solver.Solve(&sol), SolveResult::kSat);
  EXPECT_GE(sol[0], 10);
}

}  // namespace
}  // namespace ngd
