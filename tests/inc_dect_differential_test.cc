// Differential harness for incremental detection (paper §5.2 correctness
// criterion, made adversarial):
//
//   Vio(Σ, G) ⊕ ΔVio(Σ, G, ΔG) == Dect(Σ, G ⊕ ΔG)
//
// over thousands of randomized (graph, Σ, ΔG) workloads, for all four
// engine combinations: {live overlay, DeltaView} × {IncDect, PIncDect}.
// The live sequential engine with the affected-area prefilter off is the
// unchanged pre-DeltaView code path and doubles as the oracle: every
// other engine's ΔVio must match it exactly (added and removed sets),
// not just produce the same net violation set.
//
// Each seed derives its workload deterministically — graph size, |ΔG|/|E|
// (5%–40%), insert/delete ratio γ (all-delete .. all-insert), new-node
// probability, processor count, split/balance toggles — so a failure
// reproduces from the printed seed alone:
//
//   NGD_DIFF_SEED=<seed> ctest -R inc_dect_differential
//
// Case count: 1000 per engine combination by default (the acceptance
// floor); NGD_DIFF_CASES overrides (sanitizer CI uses a smaller sweep,
// release CI and local runs the full one).

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>

#include "detect/dect.h"
#include "detect/inc_dect.h"
#include "parallel/pinc_dect.h"
#include "test_util.h"

namespace ngd {
namespace {

size_t CaseCount() {
  const char* env = std::getenv("NGD_DIFF_CASES");
  if (env != nullptr) {
    const long n = std::strtol(env, nullptr, 10);
    if (n > 0) return static_cast<size_t>(n);
  }
  return 1000;
}

std::string Describe(const VioSet& set, const NgdSet& sigma) {
  std::ostringstream os;
  size_t shown = 0;
  for (const Violation& v : set.Sorted()) {
    if (++shown > 8) {
      os << "  ... (" << set.size() << " total)\n";
      break;
    }
    os << "  " << sigma[v.ngd_index].name() << " h=(";
    for (size_t i = 0; i < v.nodes.size(); ++i) {
      os << (i > 0 ? "," : "") << v.nodes[i];
    }
    os << ")\n";
  }
  return os.str();
}

/// Set equality with a readable diff; `repro` names the failing seed.
void ExpectSameVioSet(const VioSet& want, const VioSet& got,
                      const NgdSet& sigma, const std::string& what,
                      const std::string& repro) {
  VioSet missing, spurious;
  for (const Violation& v : want.items()) {
    if (!got.Contains(v)) missing.Add(v);
  }
  for (const Violation& v : got.items()) {
    if (!want.Contains(v)) spurious.Add(v);
  }
  EXPECT_TRUE(missing.empty() && spurious.empty())
      << what << " mismatch (" << repro << ")\nmissing:\n"
      << Describe(missing, sigma) << "spurious:\n"
      << Describe(spurious, sigma);
}

struct CaseOutcome {
  size_t effective_updates = 0;
  bool delta_nonempty = false;
};

/// One randomized differential case; everything derives from `seed`. The
/// (graph, Σ) pair comes from the shared generator in test_util.h — the
/// same workload space the Σ-optimizer differential harness sweeps.
CaseOutcome RunCase(uint64_t seed) {
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  testing_util::RandomWorkload w = testing_util::MakeRandomWorkload(seed, &rng);
  const double fractions[] = {0.05, 0.1, 0.2, 0.3, 0.4};
  const double gammas[] = {0.0, 0.25, 0.5, 0.75, 1.0};
  const double fraction = fractions[rng.UniformInt(0, 4)];
  const double insert_fraction = gammas[rng.UniformInt(0, 4)];
  const double new_node_prob = rng.Bernoulli(0.3) ? 0.2 : 0.0;
  const int processors = static_cast<int>(rng.UniformInt(2, 4));
  const bool enable_split = rng.Bernoulli(0.5);
  const bool enable_balance = rng.Bernoulli(0.5);
  const bool pass_base_snapshot = rng.Bernoulli(0.5);

  std::ostringstream repro_os;
  repro_os << "repro: NGD_DIFF_SEED=" << seed << " (nodes=" << w.nodes
           << " edges=" << w.edges << " dG=" << fraction
           << " gamma=" << insert_fraction << " p=" << processors << ")";
  const std::string repro = repro_os.str();

  std::unique_ptr<Graph>& g = w.graph;
  NgdSet& sigma = w.sigma;
  if (sigma.empty() || !ValidateForIncremental(sigma).ok()) return {};

  const VioSet before = Dect(*g, sigma);

  UpdateGenOptions up;
  up.fraction = fraction;
  up.insert_fraction = insert_fraction;
  up.new_node_prob = new_node_prob;
  up.seed = seed + 2;
  UpdateBatch batch = GenerateUpdateBatch(g.get(), up);

  // A base snapshot taken before the batch is applied — the production
  // shape (one snapshot per commit epoch, reused across batches). The
  // other half of the cases make the engines build their own from the
  // overlay's kOld view, covering both DeltaView construction paths.
  std::optional<GraphSnapshot> base;
  if (pass_base_snapshot) base.emplace(*g, GraphView::kOld);

  EXPECT_TRUE(ApplyUpdateBatch(g.get(), &batch).ok()) << repro;
  const VioSet after = Dect(*g, sigma);

  // Oracle: the pre-DeltaView sequential engine, byte-for-byte.
  IncDectOptions oracle_opts;
  oracle_opts.snapshot_mode = SnapshotMode::kNever;
  oracle_opts.affected_area_prefilter = false;
  auto oracle = IncDect(*g, sigma, batch, oracle_opts);
  EXPECT_TRUE(oracle.ok()) << repro << ": " << oracle.status().ToString();
  if (!oracle.ok()) return {};
  ExpectSameVioSet(after, ApplyDelta(before, *oracle), sigma,
                   "live IncDect vs batch Dect", repro);

  // Live sequential with the prefilter on: same ΔVio, less work.
  {
    IncDectOptions o;
    o.snapshot_mode = SnapshotMode::kNever;
    auto d = IncDect(*g, sigma, batch, o);
    EXPECT_TRUE(d.ok()) << repro;
    if (!d.ok()) return {};
    ExpectSameVioSet(oracle->added, d->added, sigma,
                     "live+prefilter ΔVio+", repro);
    ExpectSameVioSet(oracle->removed, d->removed, sigma,
                     "live+prefilter ΔVio-", repro);
  }

  // DeltaView sequential.
  {
    IncDectOptions o;
    o.snapshot_mode = SnapshotMode::kAlways;
    o.base_snapshot = base.has_value() ? &*base : nullptr;
    auto d = IncDect(*g, sigma, batch, o);
    EXPECT_TRUE(d.ok()) << repro;
    if (!d.ok()) return {};
    ExpectSameVioSet(oracle->added, d->added, sigma, "delta-view IncDect ΔVio+",
                     repro);
    ExpectSameVioSet(oracle->removed, d->removed, sigma,
                     "delta-view IncDect ΔVio-", repro);
  }

  // Parallel engines, live and DeltaView backends.
  for (const bool use_delta : {false, true}) {
    PIncDectOptions o;
    o.num_processors = processors;
    o.balance_interval_ms = 1;
    o.enable_split = enable_split;
    o.enable_balance = enable_balance;
    o.snapshot_mode =
        use_delta ? SnapshotMode::kAlways : SnapshotMode::kNever;
    o.base_snapshot = use_delta && base.has_value() ? &*base : nullptr;
    auto d = PIncDect(*g, sigma, batch, o);
    EXPECT_TRUE(d.ok()) << repro;
    if (!d.ok()) return {};
    const char* what_add =
        use_delta ? "delta-view PIncDect ΔVio+" : "live PIncDect ΔVio+";
    const char* what_rem =
        use_delta ? "delta-view PIncDect ΔVio-" : "live PIncDect ΔVio-";
    ExpectSameVioSet(oracle->added, d->delta.added, sigma, what_add, repro);
    ExpectSameVioSet(oracle->removed, d->delta.removed, sigma, what_rem,
                     repro);
  }

  CaseOutcome outcome;
  outcome.effective_updates = batch.size();
  outcome.delta_nonempty = !oracle->empty();
  return outcome;
}

TEST(IncDectDifferentialTest, AllEngineCombinationsAgreeWithBatchDect) {
  const char* pinned = std::getenv("NGD_DIFF_SEED");
  if (pinned != nullptr) {
    RunCase(static_cast<uint64_t>(std::strtoull(pinned, nullptr, 10)));
    return;
  }
  const size_t cases = CaseCount();
  size_t with_updates = 0, with_delta = 0;
  for (uint64_t seed = 1; seed <= cases; ++seed) {
    CaseOutcome o = RunCase(seed);
    if (HasFailure()) {
      FAIL() << "first failing case: NGD_DIFF_SEED=" << seed;
    }
    with_updates += o.effective_updates > 0 ? 1 : 0;
    with_delta += o.delta_nonempty ? 1 : 0;
  }
  // The sweep must actually exercise the machinery: most cases carry
  // effective updates and a healthy share produce a non-empty ΔVio.
  EXPECT_GT(with_updates, cases * 7 / 10);
  EXPECT_GT(with_delta, cases / 10);
}

}  // namespace
}  // namespace ngd
