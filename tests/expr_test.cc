#include <gtest/gtest.h>

#include "core/expr.h"

namespace ngd {
namespace {

class ExprTest : public ::testing::Test {
 protected:
  ExprTest() : schema_(Schema::Create()), g_(schema_) {
    v0_ = g_.AddNode("n");
    v1_ = g_.AddNode("n");
    a_ = schema_->InternAttr("a");
    b_ = schema_->InternAttr("b");
    g_.SetAttr(v0_, a_, Value(int64_t{10}));
    g_.SetAttr(v0_, b_, Value("text"));
    g_.SetAttr(v1_, a_, Value(int64_t{-4}));
    binding_ = {v0_, v1_};
  }

  Rational EvalInt(const Expr& e) {
    EvalResult r = e.Evaluate(g_, binding_);
    EXPECT_EQ(r.tag, EvalResult::Tag::kInt);
    return r.num;
  }

  SchemaPtr schema_;
  Graph g_;
  NodeId v0_, v1_;
  AttrId a_, b_;
  Binding binding_;
};

TEST_F(ExprTest, ConstantsEvaluate) {
  EXPECT_EQ(EvalInt(Expr::IntConst(7)), Rational(7));
  EvalResult s = Expr::StrConst("x").Evaluate(g_, binding_);
  ASSERT_EQ(s.tag, EvalResult::Tag::kStr);
  EXPECT_EQ(s.str, "x");
}

TEST_F(ExprTest, VarAttrEvaluates) {
  EXPECT_EQ(EvalInt(Expr::Var(0, a_)), Rational(10));
  EXPECT_EQ(EvalInt(Expr::Var(1, a_)), Rational(-4));
}

TEST_F(ExprTest, MissingAttributeIsMissing) {
  EvalResult r = Expr::Var(1, b_).Evaluate(g_, binding_);
  EXPECT_EQ(r.tag, EvalResult::Tag::kMissing);
}

TEST_F(ExprTest, UnboundVariableIsUnbound) {
  Binding partial = {v0_, kInvalidNode};
  EvalResult r = Expr::Var(1, a_).Evaluate(g_, partial);
  EXPECT_EQ(r.tag, EvalResult::Tag::kUnbound);
}

TEST_F(ExprTest, UnboundDominatesMissingInBinaryOps) {
  Binding partial = {v0_, kInvalidNode};
  // v0.b is a string (missing in arithmetic); v1 unbound. The combined
  // expression must report unbound so matching can continue.
  Expr e = Expr::Add(Expr::Var(0, b_), Expr::Var(1, a_));
  EXPECT_EQ(e.Evaluate(g_, partial).tag, EvalResult::Tag::kUnbound);
}

TEST_F(ExprTest, Arithmetic) {
  Expr sum = Expr::Add(Expr::Var(0, a_), Expr::Var(1, a_));
  EXPECT_EQ(EvalInt(sum), Rational(6));
  Expr diff = Expr::Sub(Expr::Var(0, a_), Expr::Var(1, a_));
  EXPECT_EQ(EvalInt(diff), Rational(14));
  Expr scaled = Expr::Mul(Expr::IntConst(3), Expr::Var(0, a_));
  EXPECT_EQ(EvalInt(scaled), Rational(30));
  Expr neg = Expr::Neg(Expr::Var(0, a_));
  EXPECT_EQ(EvalInt(neg), Rational(-10));
  Expr abs = Expr::Abs(Expr::Var(1, a_));
  EXPECT_EQ(EvalInt(abs), Rational(4));
}

TEST_F(ExprTest, DivisionIsExactRational) {
  Expr half = Expr::Div(Expr::Var(0, a_), Expr::IntConst(4));
  EXPECT_EQ(EvalInt(half), Rational(5, 2));  // 10/4, no truncation
  Expr restored = Expr::Mul(Expr::IntConst(4), half);
  EXPECT_EQ(EvalInt(restored), Rational(10));
}

TEST_F(ExprTest, DivisionByZeroIsMissing) {
  Expr e = Expr::Div(Expr::Var(0, a_), Expr::IntConst(0));
  EXPECT_EQ(e.Evaluate(g_, binding_).tag, EvalResult::Tag::kMissing);
}

TEST_F(ExprTest, StringInArithmeticIsMissing) {
  Expr e = Expr::Add(Expr::Var(0, b_), Expr::IntConst(1));
  EXPECT_EQ(e.Evaluate(g_, binding_).tag, EvalResult::Tag::kMissing);
  EXPECT_EQ(Expr::Abs(Expr::StrConst("s")).Evaluate(g_, binding_).tag,
            EvalResult::Tag::kMissing);
}

TEST_F(ExprTest, DegreeComputation) {
  EXPECT_EQ(Expr::IntConst(5).Degree(), 0);
  EXPECT_EQ(Expr::Var(0, a_).Degree(), 1);
  Expr linear = Expr::Add(Expr::Mul(Expr::IntConst(2), Expr::Var(0, a_)),
                          Expr::Var(1, a_));
  EXPECT_EQ(linear.Degree(), 1);
  Expr quadratic = Expr::Mul(Expr::Var(0, a_), Expr::Var(1, a_));
  EXPECT_EQ(quadratic.Degree(), 2);
  EXPECT_EQ(Expr::Mul(quadratic, Expr::Var(0, b_)).Degree(), 3);
}

TEST_F(ExprTest, LinearityFragment) {
  EXPECT_TRUE(Expr::Var(0, a_).IsLinear());
  EXPECT_TRUE(Expr::Mul(Expr::IntConst(2), Expr::Var(0, a_)).IsLinear());
  EXPECT_TRUE(Expr::Div(Expr::Var(0, a_), Expr::IntConst(2)).IsLinear());
  EXPECT_TRUE(Expr::Abs(Expr::Sub(Expr::Var(0, a_), Expr::Var(1, a_)))
                  .IsLinear());
  // Degree-2 product: outside the NGD fragment (Theorem 3).
  EXPECT_FALSE(Expr::Mul(Expr::Var(0, a_), Expr::Var(1, a_)).IsLinear());
  // Division by a variable: e ÷ c requires a constant divisor.
  EXPECT_FALSE(Expr::Div(Expr::IntConst(1), Expr::Var(0, a_)).IsLinear());
  EXPECT_FALSE(Expr::Div(Expr::Var(0, a_), Expr::Var(1, a_)).IsLinear());
}

TEST_F(ExprTest, CollectVarsDeduplicates) {
  Expr e = Expr::Add(Expr::Var(0, a_),
                     Expr::Sub(Expr::Var(1, a_), Expr::Var(0, b_)));
  std::vector<int> vars;
  e.CollectVars(&vars);
  EXPECT_EQ(vars, (std::vector<int>{0, 1}));
}

TEST_F(ExprTest, ToStringRendersReadably) {
  std::vector<std::string> names{"x", "y"};
  Expr e = Expr::Sub(Expr::Var(0, a_), Expr::Var(1, a_));
  EXPECT_EQ(e.ToString(names, schema_->attrs()), "(x.a - y.a)");
  EXPECT_EQ(Expr::Abs(Expr::Var(0, a_)).ToString(names, schema_->attrs()),
            "abs(x.a)");
  EXPECT_EQ(Expr::StrConst("v").ToString(names, schema_->attrs()), "\"v\"");
}

TEST_F(ExprTest, StructuralSharingCopiesAreCheapAndIndependent) {
  Expr e = Expr::Add(Expr::Var(0, a_), Expr::IntConst(1));
  Expr copy = e;
  EXPECT_EQ(EvalInt(copy), Rational(11));
  EXPECT_EQ(EvalInt(e), Rational(11));
}

}  // namespace
}  // namespace ngd
