#include <gtest/gtest.h>

#include "core/literal.h"

namespace ngd {
namespace {

class LiteralTest : public ::testing::Test {
 protected:
  LiteralTest() : schema_(Schema::Create()), g_(schema_) {
    v0_ = g_.AddNode("n");
    v1_ = g_.AddNode("n");
    a_ = schema_->InternAttr("a");
    s_ = schema_->InternAttr("s");
    g_.SetAttr(v0_, a_, Value(int64_t{5}));
    g_.SetAttr(v0_, s_, Value("alpha"));
    g_.SetAttr(v1_, a_, Value(int64_t{8}));
    binding_ = {v0_, v1_};
  }

  SchemaPtr schema_;
  Graph g_;
  NodeId v0_, v1_;
  AttrId a_, s_;
  Binding binding_;
};

TEST_F(LiteralTest, IntegerComparisons) {
  struct Case {
    CmpOp op;
    Truth expect;
  };
  // 5 ⊗ 8
  for (Case c : {Case{CmpOp::kEq, Truth::kFalse}, Case{CmpOp::kNe, Truth::kTrue},
                 Case{CmpOp::kLt, Truth::kTrue}, Case{CmpOp::kLe, Truth::kTrue},
                 Case{CmpOp::kGt, Truth::kFalse},
                 Case{CmpOp::kGe, Truth::kFalse}}) {
    Literal lit(Expr::Var(0, a_), c.op, Expr::Var(1, a_));
    EXPECT_EQ(lit.Evaluate(g_, binding_), c.expect)
        << "op " << CmpOpName(c.op);
  }
}

TEST_F(LiteralTest, ArithmeticLiteral) {
  // 2*x.a - y.a = 2 -> 10 - 8 = 2: true.
  Literal lit(Expr::Sub(Expr::Mul(Expr::IntConst(2), Expr::Var(0, a_)),
                        Expr::Var(1, a_)),
              CmpOp::kEq, Expr::IntConst(2));
  EXPECT_EQ(lit.Evaluate(g_, binding_), Truth::kTrue);
}

TEST_F(LiteralTest, RationalComparisonIsExact) {
  // x.a / 2 = 5/2 — holds exactly despite odd numerator.
  Literal lit(Expr::Div(Expr::Var(0, a_), Expr::IntConst(2)), CmpOp::kEq,
              Expr::Div(Expr::IntConst(5), Expr::IntConst(2)));
  EXPECT_EQ(lit.Evaluate(g_, binding_), Truth::kTrue);
}

TEST_F(LiteralTest, StringEquality) {
  Literal eq(Expr::Var(0, s_), CmpOp::kEq, Expr::StrConst("alpha"));
  EXPECT_EQ(eq.Evaluate(g_, binding_), Truth::kTrue);
  Literal ne(Expr::Var(0, s_), CmpOp::kNe, Expr::StrConst("beta"));
  EXPECT_EQ(ne.Evaluate(g_, binding_), Truth::kTrue);
  Literal eq2(Expr::Var(0, s_), CmpOp::kEq, Expr::StrConst("beta"));
  EXPECT_EQ(eq2.Evaluate(g_, binding_), Truth::kFalse);
}

TEST_F(LiteralTest, NoOrderOnStrings) {
  Literal lt(Expr::Var(0, s_), CmpOp::kLt, Expr::StrConst("zzz"));
  EXPECT_EQ(lt.Evaluate(g_, binding_), Truth::kFalse);
}

TEST_F(LiteralTest, TypeMismatchIsFalse) {
  // int attr vs string constant.
  Literal lit(Expr::Var(0, a_), CmpOp::kEq, Expr::StrConst("5"));
  EXPECT_EQ(lit.Evaluate(g_, binding_), Truth::kFalse);
  // string attr vs int constant.
  Literal lit2(Expr::Var(0, s_), CmpOp::kNe, Expr::IntConst(1));
  EXPECT_EQ(lit2.Evaluate(g_, binding_), Truth::kFalse);
}

TEST_F(LiteralTest, MissingAttributeIsFalse) {
  // v1 has no 's' attribute: condition (a) fails.
  Literal lit(Expr::Var(1, s_), CmpOp::kEq, Expr::StrConst("x"));
  EXPECT_EQ(lit.Evaluate(g_, binding_), Truth::kFalse);
  Literal lit2(Expr::Var(1, s_), CmpOp::kNe, Expr::StrConst("x"));
  EXPECT_EQ(lit2.Evaluate(g_, binding_), Truth::kFalse);
}

TEST_F(LiteralTest, UnboundVariableIsNotReady) {
  Binding partial = {v0_, kInvalidNode};
  Literal lit(Expr::Var(0, a_), CmpOp::kLt, Expr::Var(1, a_));
  EXPECT_EQ(lit.Evaluate(g_, partial), Truth::kNotReady);
}

TEST_F(LiteralTest, EvaluateAllConjunction) {
  Literal t(Expr::Var(0, a_), CmpOp::kLt, Expr::Var(1, a_));  // true
  Literal f(Expr::Var(0, a_), CmpOp::kGt, Expr::Var(1, a_));  // false
  EXPECT_EQ(EvaluateAll({t, t}, g_, binding_), Truth::kTrue);
  EXPECT_EQ(EvaluateAll({t, f}, g_, binding_), Truth::kFalse);
  EXPECT_EQ(EvaluateAll({}, g_, binding_), Truth::kTrue);  // empty = true
  Binding partial = {v0_, kInvalidNode};
  Literal nr(Expr::Var(1, a_), CmpOp::kEq, Expr::IntConst(8));
  // A bound-false literal short-circuits even with not-ready ones present.
  Literal bound_false(Expr::Var(0, a_), CmpOp::kGt, Expr::IntConst(100));
  EXPECT_EQ(EvaluateAll({bound_false, nr}, g_, partial), Truth::kFalse);
  EXPECT_EQ(EvaluateAll({nr}, g_, partial), Truth::kNotReady);
}

TEST_F(LiteralTest, NegateCmpOpInvolution) {
  for (CmpOp op : {CmpOp::kEq, CmpOp::kNe, CmpOp::kLt, CmpOp::kLe, CmpOp::kGt,
                   CmpOp::kGe}) {
    EXPECT_EQ(NegateCmpOp(NegateCmpOp(op)), op);
  }
  EXPECT_EQ(NegateCmpOp(CmpOp::kLt), CmpOp::kGe);
  EXPECT_EQ(NegateCmpOp(CmpOp::kEq), CmpOp::kNe);
}

TEST_F(LiteralTest, NegatedOpFlipsTruth) {
  for (CmpOp op : {CmpOp::kEq, CmpOp::kNe, CmpOp::kLt, CmpOp::kLe, CmpOp::kGt,
                   CmpOp::kGe}) {
    Literal lit(Expr::Var(0, a_), op, Expr::Var(1, a_));
    Literal neg(Expr::Var(0, a_), NegateCmpOp(op), Expr::Var(1, a_));
    Truth t = lit.Evaluate(g_, binding_);
    Truth n = neg.Evaluate(g_, binding_);
    EXPECT_NE(t, n);
  }
}

TEST_F(LiteralTest, GfdLiteralClassification) {
  EXPECT_TRUE(Literal(Expr::Var(0, a_), CmpOp::kEq, Expr::IntConst(5))
                  .IsGfdLiteral());
  EXPECT_TRUE(Literal(Expr::Var(0, a_), CmpOp::kEq, Expr::Var(1, a_))
                  .IsGfdLiteral());
  EXPECT_TRUE(Literal(Expr::Var(0, s_), CmpOp::kEq, Expr::StrConst("x"))
                  .IsGfdLiteral());
  // Comparison beyond '=' is not a GFD literal.
  EXPECT_FALSE(Literal(Expr::Var(0, a_), CmpOp::kLe, Expr::IntConst(5))
                   .IsGfdLiteral());
  // Arithmetic is not a GFD literal.
  EXPECT_FALSE(Literal(Expr::Add(Expr::Var(0, a_), Expr::IntConst(1)),
                       CmpOp::kEq, Expr::IntConst(6))
                   .IsGfdLiteral());
  // Constant-only equality is excluded from the fragment.
  EXPECT_FALSE(Literal(Expr::IntConst(1), CmpOp::kEq, Expr::IntConst(1))
                   .IsGfdLiteral());
}

TEST_F(LiteralTest, ToStringIncludesOperator) {
  Literal lit(Expr::Var(0, a_), CmpOp::kGe, Expr::IntConst(3));
  EXPECT_EQ(lit.ToString({"x", "y"}, schema_->attrs()), "x.a >= 3");
}

}  // namespace
}  // namespace ngd
