// Every worked example in the paper, verified end to end:
//   Example 1/3/4 — the four Fig. 1 inconsistencies and NGDs φ1–φ4;
//   Example 6     — update-driven violation removal on G4;
//   Example 7     — the 99-account parallel scenario;
//   Exp-5         — NGD1–NGD3 (living people, Olympic, F1 wins).

#include <gtest/gtest.h>

#include "detect/dect.h"
#include "detect/inc_dect.h"
#include "parallel/pinc_dect.h"
#include "test_util.h"

namespace ngd {
namespace {

using testing_util::BuildG1;
using testing_util::BuildG2;
using testing_util::BuildG3;
using testing_util::BuildG4;
using testing_util::MustParse;

TEST(PaperExample4Test, G1ViolatesPhi1) {
  auto g = BuildG1();
  NgdSet rules = MustParse(testing_util::kPhi1, g.schema);
  auto witness = FindAnyViolation(*g.graph, rules);
  ASSERT_TRUE(witness.has_value());
  // h(x) = BBC_Trust (node 0), h(y) = creation date, h(z) = destruction.
  EXPECT_EQ(witness->nodes[0], 0u);
}

TEST(PaperExample4Test, AllFourGraphsViolateTheirRules) {
  {
    auto g = BuildG1();
    EXPECT_FALSE(Validate(*g.graph, MustParse(testing_util::kPhi1, g.schema)));
  }
  {
    auto g = BuildG2();
    EXPECT_FALSE(Validate(*g.graph, MustParse(testing_util::kPhi2, g.schema)));
  }
  {
    auto g = BuildG3();
    EXPECT_FALSE(Validate(*g.graph, MustParse(testing_util::kPhi3, g.schema)));
  }
  {
    auto g = BuildG4();
    EXPECT_FALSE(Validate(*g.graph, MustParse(testing_util::kPhi4, g.schema)));
  }
}

TEST(PaperExample6Test, DeletionRemovesPhi4Violation) {
  testing_util::G4Nodes nodes;
  auto g = BuildG4(&nodes);
  NgdSet rules = MustParse(testing_util::kPhi4, g.schema);
  LabelId status = *g.schema->labels().Find("status");

  UpdateBatch batch;
  batch.updates.push_back(
      {UpdateKind::kDelete, nodes.fake_account, nodes.fake_status, status});
  ASSERT_TRUE(ApplyUpdateBatch(g.graph.get(), &batch).ok());

  auto delta = IncDect(*g.graph, rules, batch);
  ASSERT_TRUE(delta.ok());
  // "it returns violation hup(x̄) to be removed, ... and NatWest_Help is
  // found a fake account."
  ASSERT_EQ(delta->removed.size(), 1u);
  const Violation& v = *delta->removed.items().begin();
  int y = rules[0].pattern().FindVar("y");
  EXPECT_EQ(v.nodes[y], nodes.fake_account);
  EXPECT_TRUE(delta->added.empty());
}

TEST(PaperExample6Test, CleanAccountInsertionAddsNoViolations) {
  // "suppose that four edges are inserted into G4 to indicate that
  // another account NatWest_Help1 has 1 following and 2 followers, and
  // refers to company NatWest with status 1. ... there are no newly
  // introduced violations" — the new account has too small a deficit
  // cannot occur; here it IS below the threshold c = 10000 only if the
  // real account's numbers dominate; with 2 followers/1 following the
  // deficit exceeds c, so the paper's point is that the DELETED status
  // edge keeps x from matching: all insertion-pivot expansions are
  // pruned by literal validation.
  testing_util::G4Nodes nodes;
  auto g = BuildG4(&nodes);
  NgdSet rules = MustParse(testing_util::kPhi4, g.schema);
  LabelId status = *g.schema->labels().Find("status");
  LabelId keys = *g.schema->labels().Find("keys");
  LabelId follower = *g.schema->labels().Find("follower");
  LabelId following = *g.schema->labels().Find("following");

  // Batch: delete fake's status edge AND insert the new account.
  NodeId helper = g.graph->AddNode("account");
  NodeId f2 = g.graph->AddNode("integer");
  g.graph->SetAttr(f2, "val", Value(int64_t{2}));
  NodeId g2 = g.graph->AddNode("integer");
  g.graph->SetAttr(g2, "val", Value(int64_t{1}));
  NodeId s2 = g.graph->AddNode("boolean");
  g.graph->SetAttr(s2, "val", Value(int64_t{1}));

  UpdateBatch batch;
  batch.updates.push_back(
      {UpdateKind::kDelete, nodes.fake_account, nodes.fake_status, status});
  batch.updates.push_back({UpdateKind::kInsert, helper, nodes.company, keys});
  batch.updates.push_back({UpdateKind::kInsert, helper, f2, follower});
  batch.updates.push_back({UpdateKind::kInsert, helper, g2, following});
  batch.updates.push_back({UpdateKind::kInsert, helper, s2, status});
  ASSERT_TRUE(ApplyUpdateBatch(g.graph.get(), &batch).ok());

  auto delta = IncDect(*g.graph, rules, batch);
  ASSERT_TRUE(delta.ok());
  // The old fake-account violation is removed...
  EXPECT_EQ(delta->removed.size(), 1u);
  // ...and the helper account — whose deficit exceeds c with status 1 —
  // introduces exactly one new violation (y = helper, x = real account).
  ASSERT_EQ(delta->added.size(), 1u);
  int y = rules[0].pattern().FindVar("y");
  EXPECT_EQ(delta->added.items().begin()->nodes[y], helper);
}

TEST(PaperExample7Test, NinetyNineAccountsParallel) {
  // G revised from G4: 98 additional suspicious accounts, all keying
  // NatWest with 2 followers / 1 following / status 1; after deleting
  // the original fake's status edge... the paper instead finds 99
  // removals when every suspicious account's match is invalidated. We
  // reproduce the detection side: 99 violations exist (98 + original
  // fake), and PIncDect finds all of them as removals when the shared
  // company edge of the real account is deleted (killing every match).
  testing_util::G4Nodes nodes;
  auto g = BuildG4(&nodes);
  NgdSet rules = MustParse(testing_util::kPhi4, g.schema);
  for (int i = 0; i < 98; ++i) {
    NodeId acct = g.graph->AddNode("account");
    auto add_int = [&](const char* label, int64_t v) {
      NodeId n = g.graph->AddNode(label);
      g.graph->SetAttr(n, "val", Value(v));
      return n;
    };
    ASSERT_TRUE(g.graph->AddEdge(acct, nodes.company, "keys").ok());
    ASSERT_TRUE(
        g.graph->AddEdge(acct, add_int("integer", 2), "follower").ok());
    ASSERT_TRUE(
        g.graph->AddEdge(acct, add_int("integer", 1), "following").ok());
    ASSERT_TRUE(
        g.graph->AddEdge(acct, add_int("boolean", 1), "status").ok());
  }
  VioSet all = Dect(*g.graph, rules);
  EXPECT_EQ(all.size(), 99u);  // 98 clones + the original fake

  // Delete the real account's keys edge: every violation pairs with the
  // real account, so all 99 disappear.
  LabelId keys = *g.schema->labels().Find("keys");
  UpdateBatch batch;
  batch.updates.push_back(
      {UpdateKind::kDelete, nodes.real_account, nodes.company, keys});
  ASSERT_TRUE(ApplyUpdateBatch(g.graph.get(), &batch).ok());
  PIncDectOptions opts;
  opts.num_processors = 4;
  auto result = PIncDect(*g.graph, rules, batch, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->delta.removed.size(), 99u);
  EXPECT_TRUE(result->delta.added.empty());
}

// ---- Exp-5 rules NGD1–NGD3 ------------------------------------------------------

TEST(PaperExp5Test, Ngd1LivingPeople) {
  SchemaPtr schema = Schema::Create();
  Graph g(schema);
  NodeId person = g.AddNode("person");
  NodeId year = g.AddNode("year");
  g.SetAttr(year, "val", Value(int64_t{1713}));  // John Macpherson
  NodeId cat = g.AddNode("category");
  g.SetAttr(cat, "val", Value("living people"));
  ASSERT_TRUE(g.AddEdge(person, year, "birthYear").ok());
  ASSERT_TRUE(g.AddEdge(person, cat, "category").ok());
  NgdSet rules = MustParse(R"(
    ngd NGD1 {
      match (x:person)-[birthYear]->(y:year), (x)-[category]->(z:category)
      where y.val < 1800
      then z.val != "living people"
    })",
                           schema);
  EXPECT_EQ(Dect(g, rules).size(), 1u);
  // Born 1930: fine.
  g.SetAttr(year, "val", Value(int64_t{1930}));
  EXPECT_TRUE(Dect(g, rules).empty());
}

TEST(PaperExp5Test, Ngd2OlympicNations) {
  SchemaPtr schema = Schema::Create();
  Graph g(schema);
  NodeId event = g.AddNode("competition");
  g.SetAttr(event, "type", Value("Olympic"));
  NodeId nations = g.AddNode("integer");
  g.SetAttr(nations, "val", Value(int64_t{34}));  // Women's Sailboard 1992
  NodeId competitors = g.AddNode("integer");
  g.SetAttr(competitors, "val", Value(int64_t{24}));
  ASSERT_TRUE(g.AddEdge(event, nations, "nations").ok());
  ASSERT_TRUE(g.AddEdge(event, competitors, "competitors").ok());
  NgdSet rules = MustParse(R"(
    ngd NGD2 {
      match (x:competition)-[nations]->(z:integer),
            (x)-[competitors]->(y:integer)
      where x.type = "Olympic"
      then z.val <= y.val
    })",
                           schema);
  EXPECT_EQ(Dect(g, rules).size(), 1u);
  // Non-Olympic events are exempt (precondition).
  g.SetAttr(event, "type", Value("Regional"));
  EXPECT_TRUE(Dect(g, rules).empty());
}

TEST(PaperExp5Test, Ngd3F1TeamWins) {
  // Vettel + Verstappen won 1 race in 2016 but "their team" Ferrari won
  // none — caught because team wins must be >= the sum of driver wins.
  SchemaPtr schema = Schema::Create();
  Graph g(schema);
  NodeId team = g.AddNode("team");
  g.SetAttr(team, "numberOfWins", Value(int64_t{0}));
  NodeId d1 = g.AddNode("driver");
  g.SetAttr(d1, "numberOfWins", Value(int64_t{1}));
  NodeId d2 = g.AddNode("driver");
  g.SetAttr(d2, "numberOfWins", Value(int64_t{0}));
  NodeId year = g.AddNode("year");
  g.SetAttr(year, "val", Value(int64_t{2016}));
  ASSERT_TRUE(g.AddEdge(d1, team, "team").ok());
  ASSERT_TRUE(g.AddEdge(d2, team, "team").ok());
  ASSERT_TRUE(g.AddEdge(team, year, "year").ok());
  ASSERT_TRUE(g.AddEdge(d1, year, "year").ok());
  ASSERT_TRUE(g.AddEdge(d2, year, "year").ok());
  NgdSet rules = MustParse(R"(
    ngd NGD3 {
      match (w1:driver)-[team]->(x:team), (w2:driver)-[team]->(x:team),
            (x)-[year]->(y:year), (w1)-[year]->(y), (w2)-[year]->(y)
      then x.numberOfWins >= w1.numberOfWins + w2.numberOfWins
    })",
                           schema);
  VioSet vio = Dect(g, rules);
  // Violating matches: (w1,w2) ∈ {(d1,d1),(d1,d2),(d2,d1)} — homomorphism
  // permits w1 = w2 = d1 (1+1 > 0) as well as both orders of the pair.
  EXPECT_EQ(vio.size(), 3u);
  // Give Ferrari its wins back: clean.
  g.SetAttr(team, "numberOfWins", Value(int64_t{2}));
  EXPECT_TRUE(Dect(g, rules).empty());
}

TEST(PaperSection3Test, NgdsSubsumeCfdsViaConstantBindings) {
  // CFD-style rule with constant pattern: city.country = "NL" ->
  // city.code = 31 (relational tuples as vertices, paper §3).
  SchemaPtr schema = Schema::Create();
  Graph g(schema);
  NodeId c1 = g.AddNode("city");
  g.SetAttr(c1, "country", Value("NL"));
  g.SetAttr(c1, "code", Value(int64_t{31}));
  NodeId c2 = g.AddNode("city");
  g.SetAttr(c2, "country", Value("NL"));
  g.SetAttr(c2, "code", Value(int64_t{44}));  // wrong code
  NgdSet rules = MustParse(R"(
    ngd cfd { match (x:city) where x.country = "NL" then x.code = 31 })",
                           schema);
  VioSet vio = Dect(g, rules);
  ASSERT_EQ(vio.size(), 1u);
  EXPECT_EQ(vio.items().begin()->nodes[0], c2);
}

}  // namespace
}  // namespace ngd
