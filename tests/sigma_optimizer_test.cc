// Differential lockdown for the Σ-optimizer (reason/sigma_optimizer.h),
// PR 3 style: over randomized clean/dirty (graph, Σ) workloads — the same
// space the incremental differential harness sweeps, inflated with
// implied variants so minimization actually drops rules — assert against
// all four detection engines that
//
//   (a) FindAnyViolation(G, Σ).empty() == FindAnyViolation(G, Min(Σ)).empty()
//       (a dropped rule's violation always co-occurs with a kept rule's
//       violation — the soundness claim of the greedy implication cover,
//       probed here on concrete graphs rather than canonical models), and
//   (b) kept-rule violations are preserved EXACTLY: detection with
//       minimize_sigma on equals the full-Σ result filtered to kept rules,
//       element for element, for Dect/PDect (Vio) and IncDect/PIncDect
//       (ΔVio+ and ΔVio- separately).
//
// Each seed derives its workload deterministically; a failure reproduces
// from the printed seed alone:
//
//   NGD_DIFF_SEED=<seed> ctest -R sigma_optimizer
//
// Case count: 600 by default (the acceptance floor is 500 per engine;
// every case exercises all four engines); NGD_SIGMA_CASES overrides —
// the sanitizer CI job runs a reduced sweep, same convention as
// NGD_DIFF_CASES for the incremental harness.

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <unordered_set>

#include "detect/dect.h"
#include "detect/inc_dect.h"
#include "parallel/pdect.h"
#include "parallel/pinc_dect.h"
#include "reason/sigma_optimizer.h"
#include "test_util.h"

namespace ngd {
namespace {

size_t CaseCount() {
  const char* env = std::getenv("NGD_SIGMA_CASES");
  if (env != nullptr) {
    const long n = std::strtol(env, nullptr, 10);
    if (n > 0) return static_cast<size_t>(n);
  }
  return 600;
}

std::string Describe(const VioSet& set, const NgdSet& sigma) {
  std::ostringstream os;
  size_t shown = 0;
  for (const Violation& v : set.Sorted()) {
    if (++shown > 8) {
      os << "  ... (" << set.size() << " total)\n";
      break;
    }
    os << "  " << sigma[v.ngd_index].name() << " h=(";
    for (size_t i = 0; i < v.nodes.size(); ++i) {
      os << (i > 0 ? "," : "") << v.nodes[i];
    }
    os << ")\n";
  }
  return os.str();
}

void ExpectSameVioSet(const VioSet& want, const VioSet& got,
                      const NgdSet& sigma, const std::string& what,
                      const std::string& repro) {
  VioSet missing, spurious;
  for (const Violation& v : want.items()) {
    if (!got.Contains(v)) missing.Add(v);
  }
  for (const Violation& v : got.items()) {
    if (!want.Contains(v)) spurious.Add(v);
  }
  EXPECT_TRUE(missing.empty() && spurious.empty())
      << what << " mismatch (" << repro << ")\nmissing:\n"
      << Describe(missing, sigma) << "spurious:\n"
      << Describe(spurious, sigma);
}

/// Violations of the full-Σ run whose rule survived minimization — what
/// a minimized run must reproduce exactly.
VioSet FilterToKept(const VioSet& full, const std::vector<int>& kept) {
  std::unordered_set<int> keep(kept.begin(), kept.end());
  VioSet out;
  for (const Violation& v : full.items()) {
    if (keep.count(v.ngd_index) > 0) out.Add(v);
  }
  return out;
}

struct CaseOutcome {
  bool ran = false;
  bool dropped_any = false;
  bool graph_dirty = false;
};

CaseOutcome RunCase(uint64_t seed) {
  // Distinct stream constant from the incremental harness, so the two
  // sweeps cover different corners of the shared workload space.
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 7);
  const bool clean = rng.Bernoulli(0.4);
  testing_util::RandomWorkload w = testing_util::MakeRandomWorkload(
      seed, &rng, /*rule_count=*/4,
      /*violation_rate=*/clean ? 0.0 : 0.3);
  if (w.sigma.empty() || !ValidateForIncremental(w.sigma).ok()) return {};

  InflateOptions inf;
  inf.variants_per_rule = 1 + static_cast<size_t>(rng.UniformInt(0, 2));
  inf.duplicate_fraction = 0.3;
  inf.seed = seed + 3;
  const NgdSet sigma = InflateWithImpliedVariants(w.sigma, inf);
  Graph& g = *w.graph;

  std::ostringstream repro_os;
  repro_os << "repro: NGD_DIFF_SEED=" << seed << " (nodes=" << w.nodes
           << " edges=" << w.edges << " |sigma|=" << sigma.size()
           << (clean ? " clean" : " dirty") << ")";
  const std::string repro = repro_os.str();

  // ---- Optimizer invariants (report shape) -------------------------------
  const MinimizedSigma m = MinimizeSigma(sigma, w.schema);
  EXPECT_EQ(m.report.kept.size() + m.report.dropped.size(), sigma.size())
      << repro;
  EXPECT_EQ(m.sigma.size(), m.report.kept.size()) << repro;
  if (m.sigma.size() != m.report.kept.size()) return {};
  for (size_t k = 0; k < m.report.kept.size(); ++k) {
    if (k > 0) {
      EXPECT_LT(m.report.kept[k - 1], m.report.kept[k]) << repro;
    }
    // Kept rules are copied verbatim, in original relative order.
    EXPECT_EQ(m.sigma[k].name(),
              sigma[static_cast<size_t>(m.report.kept[k])].name())
        << repro;
  }
  // The same Σ resolved through the engine path must agree with the
  // direct call (and, second time around, with the cache).
  MinimizedSigma via_engine;
  if (ResolveMinimizedSigma(sigma, w.schema, MinimizeMode::kAlways, {},
                            &via_engine)) {
    EXPECT_EQ(via_engine.report.kept, m.report.kept) << repro;
  } else {
    EXPECT_TRUE(m.report.dropped.empty()) << repro;
  }

  DectOptions min_opts;
  min_opts.minimize_sigma = MinimizeMode::kAlways;

  // ---- Batch: Dect + FindAnyViolation ------------------------------------
  const VioSet full = Dect(g, sigma);
  const VioSet minimized = Dect(g, sigma, min_opts);
  ExpectSameVioSet(FilterToKept(full, m.report.kept), minimized, sigma,
                   "Dect kept-rule violations", repro);
  EXPECT_EQ(full.empty(), minimized.empty())
      << "Dect emptiness diverged under minimization (" << repro << ")\n"
      << "full-sigma violations:\n"
      << Describe(full, sigma) << "minimized-run violations:\n"
      << Describe(minimized, sigma);

  const bool any_full = FindAnyViolation(g, sigma).has_value();
  std::optional<Violation> any_min = FindAnyViolation(g, sigma, min_opts);
  EXPECT_EQ(any_full, any_min.has_value())
      << "FindAnyViolation emptiness diverged (" << repro << ")";
  if (any_min.has_value()) {
    // The witness's remapped index must point at a kept original rule
    // that the full run also saw violated.
    EXPECT_TRUE(FilterToKept(full, m.report.kept)
                    .Contains(*any_min))
        << "FindAnyViolation witness not a kept-rule violation (" << repro
        << ")";
  }

  // ---- Batch: PDect ------------------------------------------------------
  PDectOptions popts;
  popts.num_processors = static_cast<int>(rng.UniformInt(2, 4));
  const VioSet pfull = PDect(g, sigma, popts).vio;
  PDectOptions pmin = popts;
  pmin.minimize_sigma = MinimizeMode::kAlways;
  const VioSet pminimized = PDect(g, sigma, pmin).vio;
  ExpectSameVioSet(FilterToKept(pfull, m.report.kept), pminimized, sigma,
                   "PDect kept-rule violations", repro);
  EXPECT_EQ(pfull.empty(), pminimized.empty())
      << "PDect emptiness diverged (" << repro << ")";

  // ---- Incremental: IncDect + PIncDect -----------------------------------
  UpdateGenOptions up;
  up.fraction = rng.Bernoulli(0.5) ? 0.1 : 0.25;
  up.insert_fraction = 0.25 * static_cast<double>(rng.UniformInt(0, 4));
  up.new_node_prob = rng.Bernoulli(0.3) ? 0.2 : 0.0;
  up.seed = seed + 2;
  UpdateBatch batch = GenerateUpdateBatch(w.graph.get(), up);
  EXPECT_TRUE(ApplyUpdateBatch(w.graph.get(), &batch).ok()) << repro;

  auto oracle = IncDect(g, sigma, batch);
  EXPECT_TRUE(oracle.ok()) << repro << ": " << oracle.status().ToString();
  if (!oracle.ok()) return {};
  IncDectOptions imin;
  imin.minimize_sigma = MinimizeMode::kAlways;
  auto inc_min = IncDect(g, sigma, batch, imin);
  EXPECT_TRUE(inc_min.ok()) << repro << ": " << inc_min.status().ToString();
  if (!inc_min.ok()) return {};
  ExpectSameVioSet(FilterToKept(oracle->added, m.report.kept), inc_min->added,
                   sigma, "IncDect kept-rule dVio+", repro);
  ExpectSameVioSet(FilterToKept(oracle->removed, m.report.kept),
                   inc_min->removed, sigma, "IncDect kept-rule dVio-", repro);

  PIncDectOptions pi;
  pi.num_processors = popts.num_processors;
  pi.balance_interval_ms = 1;
  auto poracle = PIncDect(g, sigma, batch, pi);
  EXPECT_TRUE(poracle.ok()) << repro << ": " << poracle.status().ToString();
  if (!poracle.ok()) return {};
  PIncDectOptions pimin = pi;
  pimin.minimize_sigma = MinimizeMode::kAlways;
  auto pinc_min = PIncDect(g, sigma, batch, pimin);
  EXPECT_TRUE(pinc_min.ok()) << repro << ": "
                             << pinc_min.status().ToString();
  if (!pinc_min.ok()) return {};
  ExpectSameVioSet(FilterToKept(poracle->delta.added, m.report.kept),
                   pinc_min->delta.added, sigma, "PIncDect kept-rule dVio+",
                   repro);
  ExpectSameVioSet(FilterToKept(poracle->delta.removed, m.report.kept),
                   pinc_min->delta.removed, sigma, "PIncDect kept-rule dVio-",
                   repro);

  CaseOutcome outcome;
  outcome.ran = true;
  outcome.dropped_any = !m.report.dropped.empty();
  outcome.graph_dirty = !full.empty();
  return outcome;
}

TEST(SigmaOptimizerDifferentialTest, AllEnginesAgreeUnderMinimization) {
  const char* pinned = std::getenv("NGD_DIFF_SEED");
  if (pinned != nullptr) {
    RunCase(static_cast<uint64_t>(std::strtoull(pinned, nullptr, 10)));
    return;
  }
  const size_t cases = CaseCount();
  size_t ran = 0, with_drops = 0, dirty = 0;
  for (uint64_t seed = 1; seed <= cases; ++seed) {
    CaseOutcome o = RunCase(seed);
    if (HasFailure()) {
      FAIL() << "first failing case: NGD_DIFF_SEED=" << seed;
    }
    ran += o.ran ? 1 : 0;
    with_drops += o.dropped_any ? 1 : 0;
    dirty += o.graph_dirty ? 1 : 0;
  }
  // The sweep must bite: most cases run, the optimizer drops rules in a
  // solid majority (the inflated variants are there to be dropped), and
  // both clean and dirty graphs appear.
  EXPECT_GT(ran, cases * 8 / 10);
  EXPECT_GT(with_drops, cases / 2);
  EXPECT_GT(dirty, cases / 10);
  EXPECT_LT(dirty, ran);
}

// The fingerprint is the catalog's structural identity: invariant under
// rule renaming and schema intern order, sensitive to any constant.
TEST(SigmaOptimizerDifferentialTest, FingerprintIsStructural) {
  auto parse = [](const char* text, const SchemaPtr& schema) {
    return testing_util::MustParse(text, schema);
  };
  SchemaPtr s1 = Schema::Create();
  NgdSet a = parse("ngd r1 { match (x:t)-[e]->(y:u) then y.val <= 7 }", s1);
  // Different rule name, same structure: same fingerprint.
  NgdSet b = parse("ngd other { match (x:t)-[e]->(y:u) then y.val <= 7 }", s1);
  EXPECT_EQ(FingerprintSigma(a, s1), FingerprintSigma(b, s1));
  // Different schema with different intern order, same names: equal.
  SchemaPtr s2 = Schema::Create();
  s2->InternLabel("zzz");
  s2->InternAttr("zzz");
  NgdSet c = parse("ngd r1 { match (x:t)-[e]->(y:u) then y.val <= 7 }", s2);
  EXPECT_EQ(FingerprintSigma(a, s1), FingerprintSigma(c, s2));
  // Any constant change changes the identity.
  NgdSet d = parse("ngd r1 { match (x:t)-[e]->(y:u) then y.val <= 8 }", s1);
  EXPECT_NE(FingerprintSigma(a, s1), FingerprintSigma(d, s1));
}

// kAuto only pays the solver at or above the |Σ| threshold (below it the
// call does nothing at all — not even a cache probe); at the threshold a
// second call reuses the cached kept-set. Either way detection stays
// equivalent.
TEST(SigmaOptimizerDifferentialTest, AutoModeIsEquivalentAndCached) {
  ClearSigmaOptimizerCache();
  Rng rng(991);
  testing_util::RandomWorkload w =
      testing_util::MakeRandomWorkload(991, &rng, 4, 0.3);
  ASSERT_FALSE(w.sigma.empty());
  InflateOptions inf;
  inf.variants_per_rule = 2;
  inf.seed = 5;
  NgdSet sigma = InflateWithImpliedVariants(w.sigma, inf);

  DectOptions auto_opts;
  auto_opts.minimize_sigma = MinimizeMode::kAuto;
  // Below the threshold: a verbatim run, identical to kNever.
  auto_opts.sigma_optimizer.auto_min_rules = sigma.size() + 1;
  const VioSet full = Dect(*w.graph, sigma);
  ExpectSameVioSet(full, Dect(*w.graph, sigma, auto_opts), sigma,
                   "kAuto below threshold", "seed 991");
  MinimizedSigma probe;
  EXPECT_FALSE(ResolveMinimizedSigma(sigma, w.schema, MinimizeMode::kAuto,
                                     auto_opts.sigma_optimizer, &probe));
  // At the threshold the optimizer runs (and caches); a second call must
  // agree and come from the cache.
  auto_opts.sigma_optimizer.auto_min_rules = 1;
  const VioSet min1 = Dect(*w.graph, sigma, auto_opts);
  const VioSet min2 = Dect(*w.graph, sigma, auto_opts);
  ExpectSameVioSet(min1, min2, sigma, "kAuto cached reuse", "seed 991");
  MinimizedSigma cached;
  ASSERT_TRUE(ResolveMinimizedSigma(sigma, w.schema, MinimizeMode::kAuto,
                                    auto_opts.sigma_optimizer, &cached));
  EXPECT_TRUE(cached.report.from_cache);
}

}  // namespace
}  // namespace ngd
