#include <gtest/gtest.h>
#include <set>

#include "detect/dect.h"
#include "test_util.h"

namespace ngd {
namespace {

using testing_util::BuildG1;
using testing_util::BuildG2;
using testing_util::BuildG3;
using testing_util::BuildG4;
using testing_util::MustParse;

TEST(DectTest, CatchesFig1G1LifespanError) {
  auto g = BuildG1();
  NgdSet rules = MustParse(testing_util::kPhi1, g.schema);
  VioSet vio = Dect(*g.graph, rules);
  EXPECT_EQ(vio.size(), 1u);
  EXPECT_FALSE(Validate(*g.graph, rules));
}

TEST(DectTest, CatchesFig1G2PopulationError) {
  auto g = BuildG2();
  NgdSet rules = MustParse(testing_util::kPhi2, g.schema);
  VioSet vio = Dect(*g.graph, rules);
  EXPECT_EQ(vio.size(), 1u);  // 600 + 722 = 1322 != 1572
}

TEST(DectTest, CleanPopulationDataValidates) {
  auto g = BuildG2();
  // Fix the total: 600 + 722 = 1322.
  AttrId val = *g.schema->attrs().Find("val");
  LabelId tot = *g.schema->labels().Find("populationTotal");
  for (NodeId v = 0; v < g.graph->NumNodes(); ++v) {
    for (const auto& e : g.graph->OutEdges(v)) {
      if (e.label == tot) g.graph->SetAttr(e.other, val, Value(int64_t{1322}));
    }
  }
  NgdSet rules = MustParse(testing_util::kPhi2, g.schema);
  EXPECT_TRUE(Validate(*g.graph, rules));
  EXPECT_TRUE(Dect(*g.graph, rules).empty());
}

TEST(DectTest, CatchesFig1G3RankError) {
  auto g = BuildG3();
  NgdSet rules = MustParse(testing_util::kPhi3, g.schema);
  VioSet vio = Dect(*g.graph, rules);
  // Downey (smaller population) ranks ahead: exactly one violating match
  // (x = Downey, y = Corona).
  EXPECT_EQ(vio.size(), 1u);
}

TEST(DectTest, CatchesFig1G4FakeAccount) {
  testing_util::G4Nodes nodes;
  auto g = BuildG4(&nodes);
  NgdSet rules = MustParse(testing_util::kPhi4, g.schema);
  VioSet vio = Dect(*g.graph, rules);
  ASSERT_EQ(vio.size(), 1u);
  // The violating match maps y to the fake account.
  const Violation& v = *vio.items().begin();
  int y = rules[0].pattern().FindVar("y");
  EXPECT_EQ(v.nodes[y], nodes.fake_account);
}

TEST(DectTest, FlaggedFakeAccountValidates) {
  testing_util::G4Nodes nodes;
  auto g = BuildG4(&nodes);
  // Correct the data: flag the account as fake (status 0).
  g.graph->SetAttr(nodes.fake_status, "val", Value(int64_t{0}));
  NgdSet rules = MustParse(testing_util::kPhi4, g.schema);
  EXPECT_TRUE(Validate(*g.graph, rules));
}

TEST(DectTest, AllFourRulesAcrossCombinedGraph) {
  // One schema, all four violating structures in one graph.
  SchemaPtr schema = Schema::Create();
  Graph g(schema);
  auto import = [&](const testing_util::NamedGraph& src) {
    NodeId base = static_cast<NodeId>(g.NumNodes());
    for (NodeId v = 0; v < src.graph->NumNodes(); ++v) {
      NodeId nv = g.AddNode(src.graph->NodeLabelName(v));
      for (const auto& [attr, value] : src.graph->Attrs(v)) {
        g.SetAttr(nv, src.schema->attrs().NameOf(attr), value);
      }
    }
    for (NodeId v = 0; v < src.graph->NumNodes(); ++v) {
      for (const auto& e : src.graph->OutEdges(v)) {
        ASSERT_TRUE(g.AddEdge(base + v, base + e.other,
                              src.schema->labels().NameOf(e.label))
                        .ok());
      }
    }
  };
  import(BuildG1());
  import(BuildG2());
  import(BuildG3());
  import(BuildG4());
  NgdSet rules = MustParse(std::string(testing_util::kPhi1) +
                               testing_util::kPhi2 + testing_util::kPhi3 +
                               testing_util::kPhi4,
                           schema);
  VioSet vio = Dect(g, rules);
  EXPECT_EQ(vio.size(), 4u);
  // One violation per rule.
  std::set<int> rules_hit;
  for (const auto& v : vio.items()) rules_hit.insert(v.ngd_index);
  EXPECT_EQ(rules_hit.size(), 4u);
}

TEST(DectTest, FindAnyViolationStopsEarly) {
  auto g = BuildG2();
  NgdSet rules = MustParse(testing_util::kPhi2, g.schema);
  auto witness = FindAnyViolation(*g.graph, rules);
  ASSERT_TRUE(witness.has_value());
  EXPECT_EQ(witness->ngd_index, 0);
}

TEST(DectTest, MaxViolationsPerNgdCapsOutput) {
  SchemaPtr schema = Schema::Create();
  Graph g(schema);
  LabelId n = schema->InternLabel("n");
  LabelId e = schema->InternLabel("e");
  AttrId v = schema->InternAttr("v");
  // 20 violating edges.
  for (int i = 0; i < 20; ++i) {
    NodeId a = g.AddNode(n), b = g.AddNode(n);
    g.SetAttr(a, v, Value(int64_t{1}));
    g.SetAttr(b, v, Value(int64_t{1}));
    ASSERT_TRUE(g.AddEdge(a, b, e).ok());
  }
  NgdSet rules = MustParse(
      "ngd r { match (x:n)-[e]->(y:n) then x.v != y.v }", schema);
  DectOptions opts;
  opts.max_violations_per_ngd = 5;
  EXPECT_EQ(Dect(g, rules, opts).size(), 5u);
  EXPECT_EQ(Dect(g, rules).size(), 20u);
}

TEST(DectTest, ViolationToStringNamesRuleAndVars) {
  auto g = BuildG2();
  NgdSet rules = MustParse(testing_util::kPhi2, g.schema);
  VioSet vio = Dect(*g.graph, rules);
  ASSERT_EQ(vio.size(), 1u);
  std::string s = ViolationToString(*vio.items().begin(), rules, *g.graph);
  EXPECT_NE(s.find("phi2"), std::string::npos);
  EXPECT_NE(s.find("x->"), std::string::npos);
}

TEST(DectTest, GfdStyleConstantBindingRule) {
  SchemaPtr schema = Schema::Create();
  Graph g(schema);
  NodeId cap = g.AddNode("capital");
  NodeId country = g.AddNode("country");
  ASSERT_TRUE(g.AddEdge(cap, country, "locatedIn").ok());
  g.SetAttr(cap, "kind", Value("village"));  // wrong constant
  NgdSet rules = MustParse(R"(
    ngd capital_kind {
      match (x:capital)-[locatedIn]->(y:country)
      then x.kind = "capital-city"
    })",
                           schema);
  EXPECT_TRUE(rules[0].IsGfd());
  EXPECT_EQ(Dect(g, rules).size(), 1u);
  g.SetAttr(cap, "kind", Value("capital-city"));
  EXPECT_TRUE(Dect(g, rules).empty());
}

TEST(DectTest, VioSetMergeRemoveAndApplyDelta) {
  VioSet a, b;
  a.Add(Violation{0, {1, 2}});
  a.Add(Violation{0, {3, 4}});
  b.Add(Violation{0, {3, 4}});
  b.Add(Violation{1, {5}});
  VioSet merged;
  {
    VioSet tmp_a;
    for (const auto& v : a.items()) tmp_a.Add(v);
    merged.Merge(std::move(tmp_a));
  }
  {
    VioSet tmp_b;
    for (const auto& v : b.items()) tmp_b.Add(v);
    merged.Merge(std::move(tmp_b));
  }
  EXPECT_EQ(merged.size(), 3u);

  DeltaVio delta;
  delta.added.Add(Violation{2, {9}});
  delta.removed.Add(Violation{0, {1, 2}});
  VioSet updated = ApplyDelta(merged, delta);
  EXPECT_EQ(updated.size(), 3u);
  EXPECT_FALSE(updated.Contains(Violation{0, {1, 2}}));
  EXPECT_TRUE(updated.Contains(Violation{2, {9}}));
}

TEST(DectTest, SortedIsDeterministic) {
  VioSet s;
  s.Add(Violation{1, {5, 6}});
  s.Add(Violation{0, {7}});
  s.Add(Violation{1, {2, 3}});
  auto sorted = s.Sorted();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].ngd_index, 0);
  EXPECT_EQ(sorted[1].nodes, (std::vector<NodeId>{2, 3}));
}

}  // namespace
}  // namespace ngd
