// ngdbench: one-shot detection benchmark emitting BENCH JSON.
//
// Builds a pinned synthetic workload (generators.h + ngd_generator.h, so
// runs are reproducible from the seed alone), then times the batch
// detection pipeline stage by stage:
//
//   graph_build    — generator -> live overlay Graph
//   rule_gen       — Σ sampled against the graph
//   snapshot_build — Graph -> CSR GraphSnapshot (the amortized cost)
//   dect_live      — Dect against the live graph (pre-snapshot engine)
//   dect_snapshot  — Dect against the snapshot
//   pdect          — PDect over the shared snapshot
//
// Every timed engine stage (snapshot_build, dect_*, pdect) runs
// --repetitions times and reports the minimum (the standard noise floor
// for perf tracking); graph_build and rule_gen run once — they seed the
// fixed inputs the engine stages share. The result is a single JSON
// object written to --out (default BENCH_detect.json) and echoed to
// stdout. CI runs this on a pinned workload each push and uploads the
// JSON as an artifact, so the perf trajectory of the matching engine is
// recorded from PR 2 onward (see EXPERIMENTS.md).
//
// Unlike the bench/ binaries this tool links only libngd — no
// google-benchmark dependency — so it runs anywhere the library builds.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "detect/dect.h"
#include "discovery/ngd_generator.h"
#include "graph/generators.h"
#include "graph/snapshot.h"
#include "parallel/pdect.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace ngd {
namespace {

constexpr const char* kUsage = R"(usage: ngdbench [options]

Times NGD batch detection (live graph vs CSR snapshot) on a pinned
synthetic workload and writes the timings as BENCH JSON.

options:
  --nodes N          graph size (default 20000)
  --edges N          edge count (default 60000)
  --rules N          NGDs in Sigma (default 20)
  --wildcard-prob P  wildcard density in generated patterns (default 0.6)
  --pref-attach P    preferential-attachment fraction; higher = heavier
                     degree tail (default 0.85)
  --node-labels N    node-label alphabet size; smaller = larger candidate
                     sets (default 25)
  --edge-labels N    edge-label alphabet size; larger = more selective
                     label ranges (default 50)
  --violation-rate P fraction of rule thresholds tightened to violate
                     (default 0.02; note the pinned default workload is
                     still violation-heavy — wildcard-dense rules on a
                     heavy-tailed graph — so result materialization
                     dominates and the live/snapshot ratio hugs 1; see
                     EXPERIMENTS.md section 3)
  --seed S           workload seed (default 7)
  --parallel N       processors for the PDect stage (default 4)
  --repetitions R    timed repetitions per stage, minimum reported
                     (default 3)
  --out FILE         output path (default BENCH_detect.json; "-" = stdout
                     only)
  --help             show this message
)";

struct Options {
  size_t nodes = 20000;
  size_t edges = 60000;
  size_t rules = 20;
  double wildcard_prob = 0.6;
  double pref_attach = 0.85;
  size_t node_labels = 25;
  size_t edge_labels = 50;
  double violation_rate = 0.02;
  uint64_t seed = 7;
  int parallel = 4;
  int repetitions = 3;
  std::string out = "BENCH_detect.json";
};

bool ParseArgs(int argc, char** argv, Options* opts, std::string* error) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        *error = std::string(arg) + " requires a value";
        return nullptr;
      }
      return argv[++i];
    };
    auto parse_count = [&](size_t* dst) {
      const char* v = value();
      if (v == nullptr) return false;
      auto n = ParseInt64(v);
      if (!n || *n <= 0) {
        *error = std::string(arg) + " requires a positive count";
        return false;
      }
      *dst = static_cast<size_t>(*n);
      return true;
    };
    auto parse_prob = [&](double* dst) {
      const char* v = value();
      if (v == nullptr) return false;
      char* end = nullptr;
      double p = std::strtod(v, &end);
      if (end == v || *end != '\0' || p < 0.0 || p > 1.0) {
        *error = std::string(arg) + " requires a probability in [0, 1]";
        return false;
      }
      *dst = p;
      return true;
    };
    if (arg == "--help" || arg == "-h") {
      std::fputs(kUsage, stdout);
      std::exit(0);
    } else if (arg == "--nodes") {
      if (!parse_count(&opts->nodes)) return false;
    } else if (arg == "--edges") {
      if (!parse_count(&opts->edges)) return false;
    } else if (arg == "--rules") {
      if (!parse_count(&opts->rules)) return false;
    } else if (arg == "--wildcard-prob") {
      if (!parse_prob(&opts->wildcard_prob)) return false;
    } else if (arg == "--pref-attach") {
      if (!parse_prob(&opts->pref_attach)) return false;
    } else if (arg == "--node-labels") {
      if (!parse_count(&opts->node_labels)) return false;
    } else if (arg == "--edge-labels") {
      if (!parse_count(&opts->edge_labels)) return false;
    } else if (arg == "--violation-rate") {
      if (!parse_prob(&opts->violation_rate)) return false;
    } else if (arg == "--seed") {
      const char* v = value();
      if (v == nullptr) return false;
      auto n = ParseInt64(v);
      if (!n || *n < 0) {
        *error = "--seed requires a non-negative integer";
        return false;
      }
      opts->seed = static_cast<uint64_t>(*n);
    } else if (arg == "--parallel") {
      const char* v = value();
      if (v == nullptr) return false;
      auto n = ParseInt64(v);
      if (!n || *n <= 0 || *n > 1024) {
        *error = "--parallel requires a processor count in [1, 1024]";
        return false;
      }
      opts->parallel = static_cast<int>(*n);
    } else if (arg == "--repetitions") {
      const char* v = value();
      if (v == nullptr) return false;
      auto n = ParseInt64(v);
      if (!n || *n <= 0 || *n > 1000) {
        *error = "--repetitions requires a count in [1, 1000]";
        return false;
      }
      opts->repetitions = static_cast<int>(*n);
    } else if (arg == "--out") {
      const char* v = value();
      if (v == nullptr) return false;
      opts->out = v;
    } else {
      *error = "unknown argument: " + std::string(arg);
      return false;
    }
  }
  return true;
}

/// Minimum elapsed seconds of `reps` runs of fn().
template <typename Fn>
double TimeMin(int reps, Fn&& fn) {
  double best = -1.0;
  for (int r = 0; r < reps; ++r) {
    WallTimer t;
    fn();
    double s = t.ElapsedSeconds();
    if (best < 0.0 || s < best) best = s;
  }
  return best;
}

int Run(const Options& opts) {
  GraphGenConfig config = SyntheticConfig(opts.nodes, opts.edges, opts.seed);
  config.pref_attach = opts.pref_attach;
  config.num_node_labels = opts.node_labels;
  config.num_edge_labels = opts.edge_labels;

  SchemaPtr schema = Schema::Create();
  std::unique_ptr<Graph> graph;
  const double graph_build_s = TimeMin(1, [&]() {
    graph = GenerateGraph(config, schema);
  });

  NgdGenOptions gen;
  gen.count = opts.rules;
  gen.max_diameter = 3;
  gen.seed = opts.seed + 1;
  gen.violation_rate = opts.violation_rate;
  gen.wildcard_prob = opts.wildcard_prob;
  NgdSet sigma;
  const double rule_gen_s = TimeMin(1, [&]() {
    sigma = GenerateNgdSet(*graph, gen);
  });
  if (sigma.empty()) {
    std::cerr << "ngdbench: rule generation produced an empty Sigma\n";
    return 1;
  }

  const double snapshot_build_s = TimeMin(opts.repetitions, [&]() {
    GraphSnapshot snap(*graph, GraphView::kNew);
    if (snap.NumNodes() != graph->NumNodes()) std::abort();
  });

  size_t live_violations = 0;
  const double dect_live_s = TimeMin(opts.repetitions, [&]() {
    DectOptions d{GraphView::kNew, 0, SnapshotMode::kNever};
    live_violations = Dect(*graph, sigma, d).size();
  });

  size_t snapshot_violations = 0;
  const double dect_snapshot_s = TimeMin(opts.repetitions, [&]() {
    DectOptions d{GraphView::kNew, 0, SnapshotMode::kAlways};
    snapshot_violations = Dect(*graph, sigma, d).size();
  });

  size_t pdect_violations = 0;
  const double pdect_s = TimeMin(opts.repetitions, [&]() {
    PDectOptions p;
    p.num_processors = opts.parallel;
    p.snapshot_mode = SnapshotMode::kAlways;  // the metric is pinned
    pdect_violations = PDect(*graph, sigma, p).vio.size();
  });

  if (live_violations != snapshot_violations ||
      live_violations != pdect_violations) {
    std::cerr << "ngdbench: engines disagree: live=" << live_violations
              << " snapshot=" << snapshot_violations
              << " pdect=" << pdect_violations << "\n";
    return 1;
  }

  std::ostringstream js;
  js << "{\n";
  js << "  \"bench\": \"detect\",\n";
  js << "  \"workload\": {\n";
  js << "    \"nodes\": " << graph->NumNodes() << ",\n";
  js << "    \"edges\": " << graph->NumEdges(GraphView::kNew) << ",\n";
  js << "    \"rules\": " << sigma.size() << ",\n";
  js << "    \"wildcard_prob\": " << opts.wildcard_prob << ",\n";
  js << "    \"pref_attach\": " << opts.pref_attach << ",\n";
  js << "    \"node_labels\": " << opts.node_labels << ",\n";
  js << "    \"edge_labels\": " << opts.edge_labels << ",\n";
  js << "    \"seed\": " << opts.seed << "\n";
  js << "  },\n";
  js << "  \"repetitions\": " << opts.repetitions << ",\n";
  js << "  \"violations\": " << live_violations << ",\n";
  js << "  \"timings_seconds\": {\n";
  js << "    \"graph_build\": " << graph_build_s << ",\n";
  js << "    \"rule_gen\": " << rule_gen_s << ",\n";
  js << "    \"snapshot_build\": " << snapshot_build_s << ",\n";
  js << "    \"dect_live\": " << dect_live_s << ",\n";
  js << "    \"dect_snapshot\": " << dect_snapshot_s << ",\n";
  js << "    \"pdect_snapshot_p" << opts.parallel << "\": " << pdect_s
     << "\n";
  js << "  },\n";
  js << "  \"speedups\": {\n";
  js << "    \"dect_snapshot_vs_live\": "
     << (dect_snapshot_s > 0 ? dect_live_s / dect_snapshot_s : -1.0) << ",\n";
  // How many live-engine Dect calls one snapshot build is worth: the
  // build amortizes when this is large.
  js << "    \"dect_live_over_snapshot_build\": "
     << (snapshot_build_s > 0 ? dect_live_s / snapshot_build_s : -1.0)
     << "\n";
  js << "  }\n";
  js << "}\n";

  const std::string json = js.str();
  std::fputs(json.c_str(), stdout);
  if (opts.out != "-") {
    std::ofstream f(opts.out);
    if (!f.is_open()) {
      std::cerr << "ngdbench: cannot write " << opts.out << "\n";
      return 1;
    }
    f << json;
    f.flush();
    if (!f.good()) {
      std::cerr << "ngdbench: write failed for " << opts.out << "\n";
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace ngd

int main(int argc, char** argv) {
  ngd::Options opts;
  std::string error;
  if (!ngd::ParseArgs(argc, argv, &opts, &error)) {
    std::cerr << "ngdbench: " << error << "\n\n" << ngd::kUsage;
    return 1;
  }
  return ngd::Run(opts);
}
