// ngdbench: one-shot detection benchmark emitting BENCH JSON.
//
// Builds a pinned synthetic workload (generators.h + ngd_generator.h, so
// runs are reproducible from the seed alone), then times the batch
// detection pipeline stage by stage:
//
//   graph_build    — generator -> live overlay Graph
//   rule_gen       — Σ sampled against the graph
//   snapshot_build — Graph -> CSR GraphSnapshot (the amortized cost)
//   dect_live      — Dect against the live graph (pre-snapshot engine)
//   dect_snapshot  — Dect against the snapshot
//   fragment_runtime_build — partition + fragment CSRs + halos (amortized)
//   pdect          — fragment-native PDect over the pre-built runtime
//
// then applies a pinned update batch ΔG (--update-fraction of |E|, γ = 1)
// as the pending overlay and times the incremental path both ways:
//
//   base_snapshot_build  — Graph -> base CSR snapshot (kOld), the cost a
//                          deployment amortizes across batches per epoch
//   delta_view_build     — base snapshot ⊕ ΔG -> DeltaView (per batch)
//   inc_dect_live        — IncDect on the live overlay (baseline engine)
//   inc_dect_delta_view  — IncDect on the DeltaView over the shared base
//   pinc_dect_live_pN / pinc_dect_delta_view_pN — PIncDect, both backends
//
// then measures the ingest path (the `ingest` series) on generator-
// produced DBpedia/YAGO2/Pokec-like datasets (≥ 10× the pinned default
// workload at --ingest-scale 1): TSV write, sequential vs chunk-parallel
// TSV parse, CSR snapshot build, and binary snapshot save/load
// (snapshot_io.h). The three ingestion paths are cross-checked by
// snapshot fingerprint — a silent parse or codec divergence fails the
// run — and the headline `snapshot_load_vs_tsv_parse_largest` tracks the
// ≥ 5× binary-vs-text target on the largest dataset,
//
// and finally reproduces the Fig. 4(a)-(d) |ΔG| axis (5% -> 35%, γ = 1)
// on a second pinned workload — the incremental analogue of
// bench_micro_engine's high-degree/wildcard clean sweep: feeds-edge churn
// whose pivots expand THROUGH label-rich hub nodes, so the live engine
// rescans whole hub adjacency vectors while the DeltaView touches only
// the matching ~2-entry label range. This is the scan-bound regime where
// the DeltaView's ≥ 1.5x target is asserted (the generated default
// workload above is violation-heavy, where both engines tie on shared
// result materialization — see EXPERIMENTS.md),
//
// plus the Fig. 4(i)/(l) processor axis (`fig4_il`): fragment-native
// PDect/PIncDect at p ∈ {1, 2, 4, 8} fragments on a hub-heavy 10×
// workload, cross-checked against the sequential oracles, with the
// runtime build timed separately and ClusterMetrics (messages, halo
// replication, forwards/splits/steals) emitted per point.
//
// Every timed engine stage (snapshot_build, dect_*, pdect) runs
// --repetitions times and reports the minimum (the standard noise floor
// for perf tracking); graph_build and rule_gen run once — they seed the
// fixed inputs the engine stages share. The result is a single JSON
// object written to --out (default BENCH_detect.json) and echoed to
// stdout. CI runs this on a pinned workload each push and uploads the
// JSON as an artifact, so the perf trajectory of the matching engine is
// recorded from PR 2 onward (see EXPERIMENTS.md).
//
// Unlike the bench/ binaries this tool links only libngd — no
// google-benchmark dependency — so it runs anywhere the library builds.

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "detect/dect.h"
#include "detect/inc_dect.h"
#include "detect/vio_stream.h"
#include "discovery/ngd_generator.h"
#include "graph/delta_view.h"
#include "graph/generators.h"
#include "graph/graph_io.h"
#include "graph/snapshot.h"
#include "graph/snapshot_io.h"
#include "graph/update_log.h"
#include "graph/updates.h"
#include "parallel/pdect.h"
#include "parallel/pinc_dect.h"
#include "reason/sigma_optimizer.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace ngd {
namespace {

constexpr const char* kUsage = R"(usage: ngdbench [options]

Times NGD batch detection (live graph vs CSR snapshot) on a pinned
synthetic workload and writes the timings as BENCH JSON.

options:
  --nodes N          graph size (default 20000)
  --edges N          edge count (default 60000)
  --rules N          NGDs in Sigma (default 20)
  --wildcard-prob P  wildcard density in generated patterns (default 0.6)
  --pref-attach P    preferential-attachment fraction; higher = heavier
                     degree tail (default 0.85)
  --node-labels N    node-label alphabet size; smaller = larger candidate
                     sets (default 25)
  --edge-labels N    edge-label alphabet size; larger = more selective
                     label ranges (default 50)
  --violation-rate P fraction of rule thresholds tightened to violate
                     (default 0.02; note the pinned default workload is
                     still violation-heavy — wildcard-dense rules on a
                     heavy-tailed graph — so result materialization
                     dominates and the live/snapshot ratio hugs 1; see
                     EXPERIMENTS.md section 3)
  --seed S           workload seed (default 7)
  --update-fraction P  |dG| as a fraction of |E| for the incremental
                     stages (default 0.1; gamma = 1, no new nodes)
  --ingest-scale F   size multiplier for the ingest-series datasets
                     (default 1.0 = DBpedia/YAGO2/Pokec-like graphs at
                     >= 10x the pinned default workload; the ctest smoke
                     uses a small fraction)
  --tmpdir DIR       scratch directory for the ingest series' TSV and
                     snapshot files (default: the system temp directory)
  --parallel N       processors for the PDect/PIncDect stages and the
                     chunk-parallel TSV parse (default 4)
  --repetitions R    timed repetitions per stage, minimum reported
                     (default 3)
  --out FILE         output path (default BENCH_detect.json; "-" = stdout
                     only)
  --help             show this message
)";

struct Options {
  size_t nodes = 20000;
  size_t edges = 60000;
  size_t rules = 20;
  double wildcard_prob = 0.6;
  double pref_attach = 0.85;
  size_t node_labels = 25;
  size_t edge_labels = 50;
  double violation_rate = 0.02;
  double update_fraction = 0.1;
  double ingest_scale = 1.0;
  std::string tmpdir;
  uint64_t seed = 7;
  int parallel = 4;
  int repetitions = 3;
  std::string out = "BENCH_detect.json";
};

bool ParseArgs(int argc, char** argv, Options* opts, std::string* error) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        *error = std::string(arg) + " requires a value";
        return nullptr;
      }
      return argv[++i];
    };
    auto parse_count = [&](size_t* dst) {
      const char* v = value();
      if (v == nullptr) return false;
      auto n = ParseInt64(v);
      if (!n || *n <= 0) {
        *error = std::string(arg) + " requires a positive count";
        return false;
      }
      *dst = static_cast<size_t>(*n);
      return true;
    };
    auto parse_prob = [&](double* dst) {
      const char* v = value();
      if (v == nullptr) return false;
      char* end = nullptr;
      double p = std::strtod(v, &end);
      if (end == v || *end != '\0' || p < 0.0 || p > 1.0) {
        *error = std::string(arg) + " requires a probability in [0, 1]";
        return false;
      }
      *dst = p;
      return true;
    };
    if (arg == "--help" || arg == "-h") {
      std::fputs(kUsage, stdout);
      std::exit(0);
    } else if (arg == "--nodes") {
      if (!parse_count(&opts->nodes)) return false;
    } else if (arg == "--edges") {
      if (!parse_count(&opts->edges)) return false;
    } else if (arg == "--rules") {
      if (!parse_count(&opts->rules)) return false;
    } else if (arg == "--wildcard-prob") {
      if (!parse_prob(&opts->wildcard_prob)) return false;
    } else if (arg == "--pref-attach") {
      if (!parse_prob(&opts->pref_attach)) return false;
    } else if (arg == "--node-labels") {
      if (!parse_count(&opts->node_labels)) return false;
    } else if (arg == "--edge-labels") {
      if (!parse_count(&opts->edge_labels)) return false;
    } else if (arg == "--violation-rate") {
      if (!parse_prob(&opts->violation_rate)) return false;
    } else if (arg == "--update-fraction") {
      if (!parse_prob(&opts->update_fraction)) return false;
    } else if (arg == "--ingest-scale") {
      const char* v = value();
      if (v == nullptr) return false;
      char* end = nullptr;
      double p = std::strtod(v, &end);
      if (end == v || *end != '\0' || p <= 0.0 || p > 1000.0) {
        *error = "--ingest-scale requires a multiplier in (0, 1000]";
        return false;
      }
      opts->ingest_scale = p;
    } else if (arg == "--tmpdir") {
      const char* v = value();
      if (v == nullptr) return false;
      opts->tmpdir = v;
    } else if (arg == "--seed") {
      const char* v = value();
      if (v == nullptr) return false;
      auto n = ParseInt64(v);
      if (!n || *n < 0) {
        *error = "--seed requires a non-negative integer";
        return false;
      }
      opts->seed = static_cast<uint64_t>(*n);
    } else if (arg == "--parallel") {
      const char* v = value();
      if (v == nullptr) return false;
      auto n = ParseInt64(v);
      if (!n || *n <= 0 || *n > 1024) {
        *error = "--parallel requires a processor count in [1, 1024]";
        return false;
      }
      opts->parallel = static_cast<int>(*n);
    } else if (arg == "--repetitions") {
      const char* v = value();
      if (v == nullptr) return false;
      auto n = ParseInt64(v);
      if (!n || *n <= 0 || *n > 1000) {
        *error = "--repetitions requires a count in [1, 1000]";
        return false;
      }
      opts->repetitions = static_cast<int>(*n);
    } else if (arg == "--out") {
      const char* v = value();
      if (v == nullptr) return false;
      opts->out = v;
    } else {
      *error = "unknown argument: " + std::string(arg);
      return false;
    }
  }
  return true;
}

/// Minimum elapsed seconds of `reps` runs of fn().
template <typename Fn>
double TimeMin(int reps, Fn&& fn) {
  double best = -1.0;
  for (int r = 0; r < reps; ++r) {
    WallTimer t;
    fn();
    double s = t.ElapsedSeconds();
    if (best < 0.0 || s < best) best = s;
  }
  return best;
}

// The four incremental engine configurations, shared by the default
// workload's `incremental` section and the hub sweep so both series
// always measure the same engines. "Live" is the pre-DeltaView baseline
// (the differential-test oracle); the delta-view engines reuse a base
// snapshot the caller maintains across batches.
IncDectOptions LiveIncOptions() {
  IncDectOptions o;
  o.snapshot_mode = SnapshotMode::kNever;
  o.affected_area_prefilter = false;
  return o;
}

IncDectOptions DeltaViewIncOptions(const GraphSnapshot& base) {
  IncDectOptions o;
  o.snapshot_mode = SnapshotMode::kAlways;
  o.base_snapshot = &base;
  return o;
}

PIncDectOptions LivePIncOptions(int processors) {
  PIncDectOptions o;
  o.num_processors = processors;
  o.balance_interval_ms = 5;
  o.snapshot_mode = SnapshotMode::kNever;
  o.affected_area_prefilter = false;
  return o;
}

PIncDectOptions DeltaViewPIncOptions(int processors,
                                     const GraphSnapshot& base) {
  PIncDectOptions o = LivePIncOptions(processors);
  o.snapshot_mode = SnapshotMode::kAlways;
  o.base_snapshot = &base;
  o.affected_area_prefilter = true;
  return o;
}

/// All four incremental engines must agree element-for-element.
bool SameDelta(const DeltaVio& a, const DeltaVio& b) {
  if (a.added.size() != b.added.size() ||
      a.removed.size() != b.removed.size()) {
    return false;
  }
  for (const auto& v : a.added.items()) {
    if (!b.added.Contains(v)) return false;
  }
  for (const auto& v : a.removed.items()) {
    if (!b.removed.Contains(v)) return false;
  }
  return true;
}

bool SameVio(const VioSet& a, const VioSet& b) {
  if (a.size() != b.size()) return false;
  for (const auto& v : a.items()) {
    if (!b.Contains(v)) return false;
  }
  return true;
}

// ---- Pinned hub workload for the Fig. 4(a)-(d) incremental sweep -------
//
// 120 hub nodes each fan out 800 edges across 400 edge labels to 1500
// spokes; spokes feed hubs across a dedicated `feeds` label. Rules are
// 2-hop all-wildcard paths (x)-[feeds]->(y)-[e_r]->(z) whose Y literal
// holds everywhere, so detection certifies ~zero violations and the run
// measures pure update-driven matching: each feeds-edge pivot binds
// y = hub and expands z — the live engine walks the hub's ~800-entry
// adjacency vector per pivot, the DeltaView binary-searches to e_r's
// ~2-entry range.

struct HubSweepWorkload {
  SchemaPtr schema;
  std::unique_ptr<Graph> graph;
  NgdSet sigma;
  LabelId feeds = 0;
  std::vector<NodeId> hubs;
  std::vector<NodeId> spokes;
};

constexpr int kSweepHubs = 120;
constexpr int kSweepSpokes = 1500;
constexpr int kSweepFanOut = 800;
constexpr int kSweepEdgeLabels = 400;
constexpr int kSweepFeedsPerHub = 8;
constexpr int kSweepRules = 24;
constexpr double kSweepFractions[] = {0.05, 0.15, 0.25, 0.35};

HubSweepWorkload BuildHubSweepWorkload() {
  HubSweepWorkload w;
  w.schema = Schema::Create();
  w.graph = std::make_unique<Graph>(w.schema);
  Graph& g = *w.graph;
  const LabelId node_label = w.schema->InternLabel("n");
  w.feeds = w.schema->InternLabel("feeds");
  const AttrId val = w.schema->InternAttr("val");
  std::vector<LabelId> edge_labels;
  edge_labels.reserve(kSweepEdgeLabels);
  for (int l = 0; l < kSweepEdgeLabels; ++l) {
    edge_labels.push_back(w.schema->InternLabel("e" + std::to_string(l)));
  }
  for (int i = 0; i < kSweepHubs; ++i) {
    NodeId v = g.AddNode(node_label);
    g.SetAttr(v, val, Value(int64_t{1}));
    w.hubs.push_back(v);
  }
  for (int i = 0; i < kSweepSpokes; ++i) {
    NodeId v = g.AddNode(node_label);
    // A 2% sprinkle of violating spokes (val < 0) keeps ΔVio non-empty,
    // so the four-engine cross-check below compares real deltas — without
    // leaving the matching-bound regime.
    g.SetAttr(v, val, Value(int64_t{i % 50 == 0 ? -1 : 1}));
    w.spokes.push_back(v);
  }
  Rng rng(42);
  for (NodeId hub : w.hubs) {
    for (int k = 0; k < kSweepFanOut; ++k) {
      // Duplicate (src, dst, label) picks are rejected; fine to skip.
      (void)g.AddEdge(hub, rng.PickFrom(w.spokes),
                      edge_labels[k % kSweepEdgeLabels]);
    }
    for (int k = 0; k < kSweepFeedsPerHub; ++k) {
      (void)g.AddEdge(rng.PickFrom(w.spokes), hub, w.feeds);
    }
  }
  for (int r = 0; r < kSweepRules; ++r) {
    Pattern p;
    const int x = p.AddNode("x", kWildcardLabel);
    const int y = p.AddNode("y", kWildcardLabel);
    const int z = p.AddNode("z", kWildcardLabel);
    if (!p.AddEdge(x, y, w.feeds).ok()) std::abort();
    if (!p.AddEdge(y, z, edge_labels[(r * 7) % kSweepEdgeLabels]).ok()) {
      std::abort();
    }
    // z.val >= 0 holds everywhere: branches prune once z binds, nothing
    // is materialized, the measurement is the scans themselves.
    std::vector<Literal> Y{
        Literal(Expr::Var(z, val), CmpOp::kGe, Expr::IntConst(0))};
    w.sigma.Add(
        Ngd("hub_sweep_" + std::to_string(r), std::move(p), {}, std::move(Y)));
  }
  return w;
}

/// γ = 1 feeds-edge churn: |ΔG| = fraction·|E| split evenly between
/// deletions of existing spoke-[feeds]->hub edges and insertions of fresh
/// ones — every effective update pivots a rule through a hub.
UpdateBatch MakeFeedsChurn(const HubSweepWorkload& w, double fraction,
                           uint64_t seed) {
  const Graph& g = *w.graph;
  Rng rng(seed);
  UpdateBatch batch;
  const size_t want = static_cast<size_t>(
      fraction * static_cast<double>(g.NumEdges(GraphView::kNew)) / 2.0);
  std::vector<EdgeKey> feed_edges;
  for (NodeId s : w.spokes) {
    for (const AdjEntry& e : g.OutEdges(s)) {
      if (e.label == w.feeds && e.state == EdgeState::kBase) {
        feed_edges.push_back(EdgeKey{s, e.other, w.feeds});
      }
    }
  }
  const size_t num_deletes = std::min(want, feed_edges.size());
  for (size_t i = 0; i < num_deletes; ++i) {
    size_t j = static_cast<size_t>(rng.UniformInt(
        static_cast<int64_t>(i), static_cast<int64_t>(feed_edges.size()) - 1));
    std::swap(feed_edges[i], feed_edges[j]);
    batch.updates.push_back({UpdateKind::kDelete, feed_edges[i].src,
                             feed_edges[i].dst, w.feeds});
  }
  for (size_t i = 0; i < want; ++i) {
    NodeId s = rng.PickFrom(w.spokes);
    NodeId h = rng.PickFrom(w.hubs);
    if (g.HasEdge(s, h, w.feeds, GraphView::kNew)) continue;
    batch.updates.push_back({UpdateKind::kInsert, s, h, w.feeds});
  }
  return batch;
}

// ---- Ingest series: TSV parse vs binary snapshot load -------------------
//
// Three generator presets mirroring the paper's real datasets (label
// alphabets, density, skew; graph/generators.h), sized so the largest —
// pokec_like, the densest — carries ≥ 10× the edges of the pinned
// default detection workload at --ingest-scale 1. Each dataset is
// written as TSV, re-parsed sequentially (the pre-PR-5 loader's cost)
// and chunk-parallel, then persisted and re-loaded as a binary snapshot.
// All three ingestion paths must agree on the snapshot fingerprint.

struct IngestStat {
  std::string name;
  size_t nodes = 0;
  size_t edges = 0;
  uintmax_t tsv_bytes = 0;
  uintmax_t snapshot_bytes = 0;
  double generate_s = 0.0;
  double tsv_write_s = 0.0;
  double tsv_parse_seq_s = 0.0;
  double tsv_parse_par_s = 0.0;
  double snapshot_build_s = 0.0;
  double snapshot_save_s = 0.0;
  double snapshot_load_s = 0.0;
};

bool RunIngest(const Options& opts, std::vector<IngestStat>* out) {
  namespace fs = std::filesystem;
  std::error_code ec;
  const fs::path dir =
      opts.tmpdir.empty() ? fs::temp_directory_path(ec) : fs::path(opts.tmpdir);
  if (ec) {
    std::cerr << "ngdbench: no temp directory: " << ec.message() << "\n";
    return false;
  }
  struct Spec {
    const char* name;
    GraphGenConfig config;
  };
  const Spec specs[] = {
      {"dbpedia_like",
       DBpediaLikeConfig(0.008 * opts.ingest_scale, opts.seed + 10)},
      {"yago2_like", Yago2LikeConfig(0.05 * opts.ingest_scale, opts.seed + 11)},
      {"pokec_like", PokecLikeConfig(0.02 * opts.ingest_scale, opts.seed + 12)},
  };
  for (const Spec& spec : specs) {
    IngestStat st;
    st.name = spec.name;
    auto fail = [&](const std::string& what, const Status& s) {
      std::cerr << "ngdbench: ingest " << st.name << ": " << what << ": "
                << s.ToString() << "\n";
      return false;
    };
    SchemaPtr gen_schema = Schema::Create();
    std::unique_ptr<Graph> generated;
    st.generate_s = TimeMin(1, [&]() {
      generated = GenerateGraph(spec.config, gen_schema);
    });
    st.nodes = generated->NumNodes();
    st.edges = generated->NumEdges(GraphView::kNew);

    // PID in the tag: concurrent runs sharing a tmpdir (CI shards on one
    // host) must not rewrite each other's scratch files mid-run.
    const std::string tag = "ngdbench_ingest_" +
                            std::to_string(::getpid()) + "_" +
                            std::to_string(opts.seed) + "_" + st.name;
    const std::string tsv_path = (dir / (tag + ".tsv")).string();
    const std::string snap_path = (dir / (tag + ".ngds")).string();
    // Scope-exit cleanup: failure paths must not leave multi-MB scratch
    // files accumulating in a shared temp directory.
    struct ScratchGuard {
      const std::string& tsv;
      const std::string& snap;
      ~ScratchGuard() {
        std::error_code ignored;
        fs::remove(tsv, ignored);
        fs::remove(snap, ignored);
      }
    } guard{tsv_path, snap_path};

    Status w;
    st.tsv_write_s = TimeMin(1, [&]() { w = SaveGraphFile(*generated, tsv_path); });
    if (!w.ok()) return fail("tsv write", w);
    generated.reset();  // parsers are timed without the generator resident

    IngestOptions seq;
    seq.threads = 1;
    IngestOptions par;
    par.threads = opts.parallel;
    std::unique_ptr<Graph> parsed_seq, parsed_par;
    Status parse_status = Status::OK();
    st.tsv_parse_seq_s = TimeMin(opts.repetitions, [&]() {
      auto r = LoadGraphFile(tsv_path, Schema::Create(), seq);
      if (!r.ok()) {
        parse_status = r.status();
        return;
      }
      parsed_seq = std::move(r).value();
    });
    if (!parse_status.ok()) return fail("sequential tsv parse", parse_status);
    st.tsv_parse_par_s = TimeMin(opts.repetitions, [&]() {
      auto r = LoadGraphFile(tsv_path, Schema::Create(), par);
      if (!r.ok()) {
        parse_status = r.status();
        return;
      }
      parsed_par = std::move(r).value();
    });
    if (!parse_status.ok()) return fail("parallel tsv parse", parse_status);
    if (parsed_seq->NumNodes() != st.nodes ||
        parsed_seq->NumEdges(GraphView::kNew) != st.edges) {
      return fail("tsv round-trip size mismatch", Status::Internal(
          std::to_string(parsed_seq->NumNodes()) + " nodes / " +
          std::to_string(parsed_seq->NumEdges(GraphView::kNew)) + " edges"));
    }

    st.snapshot_build_s = TimeMin(opts.repetitions, [&]() {
      GraphSnapshot snap(*parsed_seq, GraphView::kNew);
      if (snap.NumNodes() != st.nodes) std::abort();
    });
    GraphSnapshot snap(*parsed_seq, GraphView::kNew);
    Status s;
    st.snapshot_save_s =
        TimeMin(1, [&]() { s = SaveSnapshotFile(snap, snap_path); });
    if (!s.ok()) return fail("snapshot save", s);
    std::unique_ptr<GraphSnapshot> loaded;
    st.snapshot_load_s = TimeMin(opts.repetitions, [&]() {
      auto r = LoadSnapshotFile(snap_path, Schema::Create());
      if (!r.ok()) {
        parse_status = r.status();
        return;
      }
      loaded = std::move(r).value();
    });
    if (!parse_status.ok()) return fail("snapshot load", parse_status);

    // The three ingestion paths must produce the same graph, bit for bit
    // in fingerprint terms (sequential parse is the oracle; its schema
    // intern order is the canonical file order both others reproduce).
    const uint64_t fp_seq = SnapshotFingerprint(snap);
    const GraphSnapshot snap_par(*parsed_par, GraphView::kNew);
    const uint64_t fp_par = SnapshotFingerprint(snap_par);
    const uint64_t fp_bin = SnapshotFingerprint(*loaded);
    if (fp_seq != fp_par || fp_seq != fp_bin) {
      std::cerr << "ngdbench: ingest " << st.name
                << ": ingestion paths disagree: seq=" << std::hex << fp_seq
                << " par=" << fp_par << " binary=" << fp_bin << std::dec
                << "\n";
      return false;
    }

    st.tsv_bytes = fs::file_size(tsv_path, ec);
    st.snapshot_bytes = fs::file_size(snap_path, ec);
    out->push_back(st);
  }
  return true;
}

// ---- wal_replay series: journal append throughput + recovery time ------
//
// The durability path of graph/update_log.h, measured the way a resident
// deployment pays it: a base snapshot plus a suffix of journaled epochs
// (batch churn with a sprinkle of new nodes). `journal_append` times only
// Append + Sync (the per-epoch durability tax on the commit path);
// `recover` times RecoverState — snapshot load + replay — against the
// `tsv_ingest` baseline of re-parsing the equivalent final graph from
// text, the recovery story before the journal existed. The recovered
// graph must match the never-crashed live graph by snapshot fingerprint.

struct WalStat {
  size_t epochs = 0;
  size_t replayed_records = 0;
  size_t final_nodes = 0;
  size_t final_edges = 0;
  uintmax_t wal_bytes = 0;
  uintmax_t snapshot_bytes = 0;
  uintmax_t tsv_bytes = 0;
  double journal_append_s = 0.0;
  double recover_s = 0.0;
  double tsv_ingest_s = 0.0;
};

bool RunWalReplay(const Options& opts, WalStat* out) {
  namespace fs = std::filesystem;
  std::error_code ec;
  const fs::path dir =
      opts.tmpdir.empty() ? fs::temp_directory_path(ec) : fs::path(opts.tmpdir);
  if (ec) {
    std::cerr << "ngdbench: no temp directory: " << ec.message() << "\n";
    return false;
  }
  auto fail = [](const std::string& what, const Status& s) {
    std::cerr << "ngdbench: wal_replay: " << what << ": " << s.ToString()
              << "\n";
    return false;
  };
  const std::string tag = "ngdbench_wal_" + std::to_string(::getpid()) + "_" +
                          std::to_string(opts.seed);
  const std::string snap_path = (dir / (tag + ".ngds")).string();
  const std::string wal_path = (dir / (tag + ".wal")).string();
  const std::string tsv_path = (dir / (tag + ".tsv")).string();
  struct ScratchGuard {
    const std::string& snap;
    const std::string& wal;
    const std::string& tsv;
    ~ScratchGuard() {
      std::error_code ignored;
      fs::remove(snap, ignored);
      fs::remove(wal, ignored);
      fs::remove(tsv, ignored);
    }
  } guard{snap_path, wal_path, tsv_path};

  GraphGenConfig config =
      SyntheticConfig(opts.nodes, opts.edges, opts.seed + 40);
  SchemaPtr schema = Schema::Create();
  std::unique_ptr<Graph> graph = GenerateGraph(config, schema);

  // Epoch 0 base: the latest-good snapshot a RotateState left behind.
  {
    GraphSnapshot snap(*graph, GraphView::kNew);
    Status s = SaveSnapshotFile(snap, snap_path);
    if (!s.ok()) return fail("snapshot save", s);
  }
  auto wal_or = UpdateLog::Create(wal_path, 0);
  if (!wal_or.ok()) return fail("journal create", wal_or.status());
  std::unique_ptr<UpdateLog> wal = std::move(*wal_or);

  constexpr int kWalEpochs = 8;
  out->epochs = kWalEpochs;
  UpdateGenOptions up;
  up.fraction = 0.05;
  up.insert_fraction = 0.7;
  up.new_node_prob = 0.05;
  double append_total = 0.0;
  for (int e = 1; e <= kWalEpochs; ++e) {
    up.seed = opts.seed + 41 + static_cast<uint64_t>(e);
    const NodeId first_new = static_cast<NodeId>(graph->NumNodes());
    UpdateBatch batch = GenerateUpdateBatch(graph.get(), up);
    Status applied = ApplyUpdateBatch(graph.get(), &batch);
    if (!applied.ok()) return fail("applying epoch batch", applied);
    const EpochRecord rec =
        EpochRecord::Capture(*graph, batch, first_new, wal->last_epoch() + 1);
    WallTimer t;
    Status a = wal->Append(rec);
    if (a.ok()) a = wal->Sync();
    append_total += t.ElapsedSeconds();
    if (!a.ok()) return fail("journal append", a);
    graph->Commit();
  }
  out->journal_append_s = append_total;

  Status rec_status = Status::OK();
  RecoverResult recovered;
  out->recover_s = TimeMin(opts.repetitions, [&]() {
    auto r = RecoverState(snap_path, wal_path, Schema::Create());
    if (!r.ok()) {
      rec_status = r.status();
      return;
    }
    recovered = std::move(*r);
  });
  if (!rec_status.ok()) return fail("recover", rec_status);
  out->replayed_records = recovered.replayed_records;
  const uint64_t live_fp =
      SnapshotFingerprint(GraphSnapshot(*graph, GraphView::kNew));
  const uint64_t rec_fp =
      SnapshotFingerprint(GraphSnapshot(*recovered.graph, GraphView::kNew));
  if (live_fp != rec_fp) {
    return fail("recovered graph diverges from the live graph",
                Status::Internal("snapshot fingerprint mismatch"));
  }

  Status w = SaveGraphFile(*graph, tsv_path);
  if (!w.ok()) return fail("tsv write", w);
  Status parse_status = Status::OK();
  out->tsv_ingest_s = TimeMin(opts.repetitions, [&]() {
    IngestOptions seq;
    seq.threads = 1;
    auto r = LoadGraphFile(tsv_path, Schema::Create(), seq);
    if (!r.ok()) parse_status = r.status();
  });
  if (!parse_status.ok()) return fail("tsv ingest", parse_status);

  out->final_nodes = graph->NumNodes();
  out->final_edges = graph->NumEdges(GraphView::kNew);
  out->wal_bytes = fs::file_size(wal_path, ec);
  out->snapshot_bytes = fs::file_size(snap_path, ec);
  out->tsv_bytes = fs::file_size(tsv_path, ec);
  return true;
}

struct SweepPoint {
  double fraction = 0.0;
  size_t updates = 0;
  size_t delta_added = 0;
  size_t delta_removed = 0;
  double inc_live_s = 0.0;
  double inc_dv_s = 0.0;
  double pinc_live_s = 0.0;
  double pinc_dv_s = 0.0;
};

/// Runs the sweep; returns false on an engine disagreement.
bool RunHubSweep(const Options& opts, std::vector<SweepPoint>* points) {
  HubSweepWorkload w = BuildHubSweepWorkload();
  for (double fraction : kSweepFractions) {
    UpdateBatch batch = MakeFeedsChurn(
        w, fraction, 9000 + static_cast<uint64_t>(fraction * 100));
    Status applied = ApplyUpdateBatch(w.graph.get(), &batch);
    if (!applied.ok()) {
      std::cerr << "ngdbench: hub sweep updates: " << applied.ToString()
                << "\n";
      return false;
    }
    GraphSnapshot base(*w.graph, GraphView::kOld);
    const IncDectOptions inc_live = LiveIncOptions();
    const IncDectOptions inc_dv = DeltaViewIncOptions(base);
    const PIncDectOptions pinc_live = LivePIncOptions(opts.parallel);
    const PIncDectOptions pinc_dv = DeltaViewPIncOptions(opts.parallel, base);

    SweepPoint pt;
    pt.fraction = fraction;
    pt.updates = batch.size();
    DeltaVio d_live, d_dv, pd_live, pd_dv;
    pt.inc_live_s = TimeMin(opts.repetitions, [&]() {
      auto d = IncDect(*w.graph, w.sigma, batch, inc_live);
      if (!d.ok()) std::abort();
      d_live = *std::move(d);
    });
    pt.inc_dv_s = TimeMin(opts.repetitions, [&]() {
      auto d = IncDect(*w.graph, w.sigma, batch, inc_dv);
      if (!d.ok()) std::abort();
      d_dv = *std::move(d);
    });
    pt.pinc_live_s = TimeMin(opts.repetitions, [&]() {
      auto d = PIncDect(*w.graph, w.sigma, batch, pinc_live);
      if (!d.ok()) std::abort();
      pd_live = std::move(d->delta);
    });
    pt.pinc_dv_s = TimeMin(opts.repetitions, [&]() {
      auto d = PIncDect(*w.graph, w.sigma, batch, pinc_dv);
      if (!d.ok()) std::abort();
      pd_dv = std::move(d->delta);
    });
    if (!SameDelta(d_live, d_dv) || !SameDelta(d_live, pd_live) ||
        !SameDelta(d_live, pd_dv)) {
      std::cerr << "ngdbench: hub sweep engines disagree at dG="
                << fraction << "\n";
      return false;
    }
    pt.delta_added = d_live.added.size();
    pt.delta_removed = d_live.removed.size();
    points->push_back(pt);
    w.graph->Rollback();
  }
  return true;
}

// ---- Fig. 4(i)/(l) processor-scaling series -----------------------------
//
// Fragment-native PDect and PIncDect across p ∈ {1, 2, 4, 8} fragments on
// a hub-heavy workload ≥ 10× the pinned default: FragmentRuntime
// construction (partition + per-fragment CSR + halo) is timed separately
// as the amortized per-epoch cost, detection over the pre-built runtime
// is the steady-state number, and every run is cross-checked against the
// sequential Dect/IncDect oracles. Communication metrics (messages,
// replicated halo nodes, forwards/splits/steals) come straight from
// ClusterMetrics, so the series shows the replication-vs-parallelism
// trade the paper plots, not just wall clock. NOTE: processors are
// simulated by threads; on machines with fewer cores than p the wall
// clock does not scale even though the work/communication split does.

struct ScalePoint {
  int processors = 0;
  double runtime_build_s = 0.0;
  double pdect_s = 0.0;
  double pinc_s = 0.0;
  size_t crossing_edges = 0;
  uint64_t replicated_nodes = 0;
  ClusterMetricsSnapshot pdect_metrics;
  uint64_t pinc_messages = 0;
  uint64_t pinc_replicated = 0;
  uint64_t pinc_work_units = 0;
  uint64_t pinc_splits = 0;
  uint64_t pinc_balance_moves = 0;
  uint64_t pinc_steals = 0;
};

struct ScaleSeries {
  size_t nodes = 0;
  size_t edges = 0;
  size_t violations = 0;
  size_t updates = 0;
  std::vector<ScalePoint> points;
};

bool RunProcessorScaling(const Options& opts, ScaleSeries* out) {
  GraphGenConfig config =
      SyntheticConfig(opts.nodes * 10, opts.edges * 10, opts.seed + 30);
  config.pref_attach = 0.95;  // heavy degree tail: real hubs to split over
  config.num_node_labels = opts.node_labels;
  config.num_edge_labels = opts.edge_labels;
  SchemaPtr schema = Schema::Create();
  std::unique_ptr<Graph> graph = GenerateGraph(config, schema);

  NgdGenOptions gen;
  gen.count = 6;
  gen.max_diameter = 3;
  gen.seed = opts.seed + 31;
  gen.violation_rate = 0.02;
  gen.wildcard_prob = opts.wildcard_prob;
  const NgdSet sigma = GenerateNgdSet(*graph, gen);
  if (sigma.empty()) {
    std::cerr << "ngdbench: processor scaling produced an empty Sigma\n";
    return false;
  }

  const VioSet oracle = Dect(*graph, sigma);
  out->nodes = graph->NumNodes();
  out->edges = graph->NumEdges(GraphView::kNew);
  out->violations = oracle.size();

  const int kProcessors[] = {1, 2, 4, 8};

  // Batch leg: runtimes are built against the committed graph and kept —
  // the incremental leg reuses their partitions for pivot placement.
  std::vector<FragmentRuntime> runtimes;
  runtimes.reserve(4);
  for (int p : kProcessors) {
    ScalePoint pt;
    pt.processors = p;
    WallTimer build_timer;
    runtimes.emplace_back(*graph, p, GraphView::kNew, sigma.MaxDiameter());
    const FragmentRuntime& rt = runtimes.back();
    pt.runtime_build_s = build_timer.ElapsedSeconds();
    pt.crossing_edges = rt.partition().crossing_edges;
    pt.replicated_nodes = rt.total_halo_nodes();

    PDectResult r;
    pt.pdect_s = TimeMin(opts.repetitions, [&]() {
      PDectOptions po;
      po.num_processors = p;
      po.runtime = &rt;
      r = PDect(*graph, sigma, po);
    });
    if (!SameVio(oracle, r.vio)) {
      std::cerr << "ngdbench: fragment PDect disagrees with Dect at p=" << p
                << ": " << r.vio.size() << " vs " << oracle.size() << "\n";
      return false;
    }
    pt.pdect_metrics = r.metrics;
    out->points.push_back(pt);
  }

  // Incremental leg: one pinned ΔG (no new nodes, so the pre-batch
  // partitions still cover every pivot endpoint) as the pending overlay.
  UpdateGenOptions up;
  up.fraction = 0.05;
  up.insert_fraction = 0.5;
  up.new_node_prob = 0.0;
  up.seed = opts.seed + 32;
  UpdateBatch batch = GenerateUpdateBatch(graph.get(), up);
  Status applied = ApplyUpdateBatch(graph.get(), &batch);
  if (!applied.ok()) {
    std::cerr << "ngdbench: processor scaling updates: " << applied.ToString()
              << "\n";
    return false;
  }
  out->updates = batch.size();

  auto inc_oracle = IncDect(*graph, sigma, batch, LiveIncOptions());
  if (!inc_oracle.ok()) {
    std::cerr << "ngdbench: processor scaling IncDect: "
              << inc_oracle.status().ToString() << "\n";
    return false;
  }

  for (size_t i = 0; i < out->points.size(); ++i) {
    ScalePoint& pt = out->points[i];
    PIncDectResult r;
    pt.pinc_s = TimeMin(opts.repetitions, [&]() {
      PIncDectOptions po = LivePIncOptions(pt.processors);
      po.runtime = &runtimes[i];
      po.enable_steal = true;
      po.balance_interval_ms = 5;
      auto d = PIncDect(*graph, sigma, batch, po);
      if (!d.ok()) std::abort();
      r = *std::move(d);
    });
    if (!SameDelta(*inc_oracle, r.delta)) {
      std::cerr << "ngdbench: fragment PIncDect disagrees with IncDect at p="
                << pt.processors << "\n";
      return false;
    }
    pt.pinc_messages = r.messages;
    pt.pinc_replicated = r.replicated_nodes;
    pt.pinc_work_units = r.work_units;
    pt.pinc_splits = r.splits;
    pt.pinc_balance_moves = r.balance_moves;
    pt.pinc_steals = r.steals;
  }
  graph->Rollback();
  return true;
}

// ---- violation_stream: bounded-memory result streaming -----------------
//
// The regime ISSUE 9 targets: a result set too large to keep resident.
// 30 hubs each observe `obs` integer nodes (val 0..obs-1); one pairwise
// rule `(x:hub)-[observes]->(y), (x)-[observes]->(z)` whose consequence
// `y.val - z.val > 1e9` holds for no pair, so every ordered (y, z) pair
// per hub is a violation — 30·obs² total, >= 1e6 at --ingest-scale 1
// (homomorphism semantics: y == z counts). The series times Dect
// materializing the whole VioSet against Dect spilling past an 8 MiB
// budget, verifies the cursor stream byte-identical to the resident
// Sorted() oracle, and reports both sides' honest resident footprint.

struct StreamStats {
  size_t nodes = 0;
  size_t edges = 0;
  size_t violations = 0;
  size_t budget_bytes = 0;
  size_t spill_segments = 0;
  uint64_t spilled_records = 0;
  size_t peak_resident_bytes = 0;          ///< spilled run's high-water mark
  size_t materialized_resident_bytes = 0;  ///< what streaming avoids holding
  bool peak_under_budget = false;
  bool stream_identical = false;
  double materialize_s = 0.0;
  double stream_s = 0.0;
};

bool RunViolationStream(const Options& opts, StreamStats* out) {
  namespace fs = std::filesystem;
  constexpr int kStreamHubs = 30;
  // obs scales with sqrt(--ingest-scale) so the obs² violation count
  // scales ~linearly with it (the ctest smoke shrinks the scale).
  const int obs = std::max(
      16, static_cast<int>(200.0 * std::sqrt(opts.ingest_scale)));
  SchemaPtr schema = Schema::Create();
  Graph g(schema);
  const LabelId hub_label = schema->InternLabel("hub");
  const LabelId obs_label = schema->InternLabel("reading");
  const LabelId observes = schema->InternLabel("observes");
  const AttrId val = schema->InternAttr("val");
  for (int h = 0; h < kStreamHubs; ++h) {
    const NodeId hv = g.AddNode(hub_label);
    for (int i = 0; i < obs; ++i) {
      const NodeId ov = g.AddNode(obs_label);
      g.SetAttr(ov, val, Value(int64_t{i}));
      (void)g.AddEdge(hv, ov, observes);  // fresh nodes: cannot fail
    }
  }
  NgdSet sigma;
  {
    Pattern p;
    const int x = p.AddNode("x", hub_label);
    const int y = p.AddNode("y", obs_label);
    const int z = p.AddNode("z", obs_label);
    if (!p.AddEdge(x, y, observes).ok()) std::abort();
    if (!p.AddEdge(x, z, observes).ok()) std::abort();
    std::vector<Literal> Y{Literal(
        Expr::Sub(Expr::Var(y, val), Expr::Var(z, val)), CmpOp::kGt,
        Expr::IntConst(int64_t{1000000000}))};
    sigma.Add(Ngd("pairwise_delta", std::move(p), {}, std::move(Y)));
  }
  out->nodes = g.NumNodes();
  out->edges = g.NumEdges(GraphView::kNew);

  DectOptions d;
  d.snapshot_mode = SnapshotMode::kAlways;
  VioSet resident;
  out->materialize_s = TimeMin(opts.repetitions, [&]() {
    resident = Dect(g, sigma, d);
  });
  out->violations = resident.size();
  out->materialized_resident_bytes = resident.resident_bytes();

  std::error_code ec;
  const fs::path dir =
      opts.tmpdir.empty() ? fs::temp_directory_path(ec) : fs::path(opts.tmpdir);
  if (ec) {
    std::cerr << "ngdbench: no temp directory: " << ec.message() << "\n";
    return false;
  }
  VioSpillOptions sp;
  sp.budget_bytes = size_t{8} << 20;
  sp.path_prefix =
      (dir / ("ngdbench_viostream_" + std::to_string(::getpid()) + "_" +
              std::to_string(opts.seed)))
          .string();
  out->budget_bytes = sp.budget_bytes;
  DectOptions ds = d;
  ds.spill = &sp;
  // Repetitions overwrite the same segment files; ~VioSet never unlinks,
  // so the surviving set's segments are exactly the last run's.
  VioSet spilled;
  out->stream_s = TimeMin(opts.repetitions, [&]() {
    spilled = Dect(g, sigma, ds);
  });
  if (!spilled.spill_status().ok()) {
    std::cerr << "ngdbench: violation_stream spill failed: "
              << spilled.spill_status().ToString() << "\n";
    return false;
  }
  out->spill_segments = spilled.num_spill_segments();
  out->spilled_records = spilled.spilled_records();
  out->peak_resident_bytes = spilled.peak_resident_bytes();
  out->peak_under_budget = out->peak_resident_bytes < sp.budget_bytes;

  // Byte-identity: the cursor's merged stream must replay the resident
  // oracle's Sorted() order record for record.
  const std::vector<Violation> want = resident.Sorted();
  bool same = spilled.size() == want.size();
  if (same) {
    StatusOr<VioCursor> cur = spilled.OpenCursor();
    same = cur.ok();
    if (same) {
      size_t i = 0;
      Violation v;
      while (same && cur->Next(&v)) {
        same = i < want.size() && v == want[i];
        ++i;
      }
      same = same && cur->status().ok() && i == want.size();
    }
  }
  out->stream_identical = same;

  for (size_t s = 0; s < out->spill_segments; ++s) {
    fs::remove(sp.path_prefix + ".seg" + std::to_string(s) + ".ngdvio", ec);
  }
  if (!same) {
    std::cerr << "ngdbench: violation_stream cursor diverged from the "
                 "resident Sorted() oracle\n";
    return false;
  }
  return true;
}

int Run(const Options& opts) {
  GraphGenConfig config = SyntheticConfig(opts.nodes, opts.edges, opts.seed);
  config.pref_attach = opts.pref_attach;
  config.num_node_labels = opts.node_labels;
  config.num_edge_labels = opts.edge_labels;

  SchemaPtr schema = Schema::Create();
  std::unique_ptr<Graph> graph;
  const double graph_build_s = TimeMin(1, [&]() {
    graph = GenerateGraph(config, schema);
  });

  NgdGenOptions gen;
  gen.count = opts.rules;
  gen.max_diameter = 3;
  gen.seed = opts.seed + 1;
  gen.violation_rate = opts.violation_rate;
  gen.wildcard_prob = opts.wildcard_prob;
  NgdSet sigma;
  const double rule_gen_s = TimeMin(1, [&]() {
    sigma = GenerateNgdSet(*graph, gen);
  });
  if (sigma.empty()) {
    std::cerr << "ngdbench: rule generation produced an empty Sigma\n";
    return 1;
  }

  const double snapshot_build_s = TimeMin(opts.repetitions, [&]() {
    GraphSnapshot snap(*graph, GraphView::kNew);
    if (snap.NumNodes() != graph->NumNodes()) std::abort();
  });

  size_t live_violations = 0;
  const double dect_live_s = TimeMin(opts.repetitions, [&]() {
    DectOptions d;
    d.snapshot_mode = SnapshotMode::kNever;
    live_violations = Dect(*graph, sigma, d).size();
  });

  size_t snapshot_violations = 0;
  const double dect_snapshot_s = TimeMin(opts.repetitions, [&]() {
    DectOptions d;
    d.snapshot_mode = SnapshotMode::kAlways;
    snapshot_violations = Dect(*graph, sigma, d).size();
  });

  // Fragment-native PDect over a pre-built runtime: partitioning and
  // fragment-CSR construction are the amortized per-epoch cost (timed as
  // runtime_build below), so the loop measures steady-state detection.
  WallTimer runtime_build_timer;
  const FragmentRuntime pdect_rt(*graph, opts.parallel, GraphView::kNew,
                                 sigma.MaxDiameter());
  const double runtime_build_s = runtime_build_timer.ElapsedSeconds();
  size_t pdect_violations = 0;
  const double pdect_s = TimeMin(opts.repetitions, [&]() {
    PDectOptions p;
    p.num_processors = opts.parallel;
    p.runtime = &pdect_rt;
    pdect_violations = PDect(*graph, sigma, p).vio.size();
  });

  if (live_violations != snapshot_violations ||
      live_violations != pdect_violations) {
    std::cerr << "ngdbench: engines disagree: live=" << live_violations
              << " snapshot=" << snapshot_violations
              << " pdect=" << pdect_violations << "\n";
    return 1;
  }

  // ---- Σ-optimizer series: the inflated-Σ (heavy rule catalog) regime --
  //
  // Production catalogs accumulate redundancy (merged sources, weakened
  // copies); model it by inflating a fresh base rule set with implied
  // variants and compare batch detection with minimization off vs on
  // (DectOptions::minimize_sigma = kAlways; the kept-set is fingerprint-
  // cached, so a warm-up call puts the timed runs in the production
  // steady state — one optimizer run per catalog version). The cold
  // optimizer cost is timed separately. Target: >= 1.5x with
  // minimization on. Cross-checked: the minimized run must reproduce the
  // kept rules' violations exactly and preserve emptiness.
  NgdGenOptions sig_gen = gen;
  sig_gen.count = 8;
  sig_gen.seed = opts.seed + 5;
  const NgdSet sigma_base = GenerateNgdSet(*graph, sig_gen);
  InflateOptions inflate;
  inflate.variants_per_rule = 4;
  inflate.duplicate_fraction = 0.25;
  inflate.seed = opts.seed + 6;
  const NgdSet sigma_inflated = InflateWithImpliedVariants(sigma_base, inflate);

  WallTimer sig_cold_timer;
  const MinimizedSigma sigma_min = MinimizeSigma(sigma_inflated, schema);
  const double minimize_cold_s = sig_cold_timer.ElapsedSeconds();

  DectOptions sig_full_opts;
  sig_full_opts.snapshot_mode = SnapshotMode::kAlways;
  DectOptions sig_min_opts = sig_full_opts;
  sig_min_opts.minimize_sigma = MinimizeMode::kAlways;

  VioSet sig_vio_full, sig_vio_min;
  const double dect_sigma_full_s = TimeMin(opts.repetitions, [&]() {
    sig_vio_full = Dect(*graph, sigma_inflated, sig_full_opts);
  });
  // Warm the kept-set cache so the timed loop measures steady state.
  (void)Dect(*graph, sigma_inflated, sig_min_opts);
  const double dect_sigma_min_s = TimeMin(opts.repetitions, [&]() {
    sig_vio_min = Dect(*graph, sigma_inflated, sig_min_opts);
  });

  {
    // Kept-rule violations must be preserved exactly.
    std::vector<bool> kept_rule(sigma_inflated.size(), false);
    for (int k : sigma_min.report.kept) {
      kept_rule[static_cast<size_t>(k)] = true;
    }
    VioSet expect;
    for (const Violation& v : sig_vio_full.items()) {
      if (kept_rule[static_cast<size_t>(v.ngd_index)]) expect.Add(v);
    }
    bool same = expect.size() == sig_vio_min.size();
    if (same) {
      for (const Violation& v : sig_vio_min.items()) {
        if (!expect.Contains(v)) {
          same = false;
          break;
        }
      }
    }
    if (!same || sig_vio_full.empty() != sig_vio_min.empty()) {
      std::cerr << "ngdbench: sigma_minimize engines disagree: full="
                << sig_vio_full.size() << " kept-filtered=" << expect.size()
                << " minimized=" << sig_vio_min.size() << "\n";
      return 1;
    }
  }

  // ---- Incremental path: ΔG as the pending overlay --------------------
  UpdateGenOptions up;
  up.fraction = opts.update_fraction;
  up.insert_fraction = 0.5;  // γ = 1, |G| unchanged (paper default)
  up.new_node_prob = 0.0;
  up.seed = opts.seed + 2;
  UpdateBatch batch = GenerateUpdateBatch(graph.get(), up);
  {
    Status applied = ApplyUpdateBatch(graph.get(), &batch);
    if (!applied.ok()) {
      std::cerr << "ngdbench: applying updates: " << applied.ToString()
                << "\n";
      return 1;
    }
  }

  const double base_snapshot_build_s = TimeMin(opts.repetitions, [&]() {
    GraphSnapshot base(*graph, GraphView::kOld);
    if (base.NumNodes() != graph->NumNodes()) std::abort();
  });
  // The base snapshot a deployment keeps per commit epoch; shared by the
  // delta-view stages below so they time exactly the per-batch cost.
  GraphSnapshot base(*graph, GraphView::kOld);
  const double delta_view_build_s = TimeMin(opts.repetitions, [&]() {
    DeltaView dv(base, *graph, batch);
    if (dv.NumNodes() != graph->NumNodes()) std::abort();
  });

  const IncDectOptions inc_live = LiveIncOptions();
  const IncDectOptions inc_dv = DeltaViewIncOptions(base);

  DeltaVio delta_live, delta_dv;
  const double inc_dect_live_s = TimeMin(opts.repetitions, [&]() {
    auto d = IncDect(*graph, sigma, batch, inc_live);
    if (!d.ok()) std::abort();
    delta_live = *std::move(d);
  });
  const double inc_dect_dv_s = TimeMin(opts.repetitions, [&]() {
    auto d = IncDect(*graph, sigma, batch, inc_dv);
    if (!d.ok()) std::abort();
    delta_dv = *std::move(d);
  });

  const PIncDectOptions pinc_live = LivePIncOptions(opts.parallel);
  const PIncDectOptions pinc_dv = DeltaViewPIncOptions(opts.parallel, base);

  DeltaVio pdelta_live, pdelta_dv;
  const double pinc_dect_live_s = TimeMin(opts.repetitions, [&]() {
    auto d = PIncDect(*graph, sigma, batch, pinc_live);
    if (!d.ok()) std::abort();
    pdelta_live = std::move(d->delta);
  });
  const double pinc_dect_dv_s = TimeMin(opts.repetitions, [&]() {
    auto d = PIncDect(*graph, sigma, batch, pinc_dv);
    if (!d.ok()) std::abort();
    pdelta_dv = std::move(d->delta);
  });

  // All four incremental engines must agree element-for-element.
  if (!SameDelta(delta_live, delta_dv) ||
      !SameDelta(delta_live, pdelta_live) ||
      !SameDelta(delta_live, pdelta_dv)) {
    std::cerr << "ngdbench: incremental engines disagree: live=("
              << delta_live.added.size() << "+," << delta_live.removed.size()
              << "-) delta_view=(" << delta_dv.added.size() << "+,"
              << delta_dv.removed.size() << "-) pinc_live=("
              << pdelta_live.added.size() << "+,"
              << pdelta_live.removed.size() << "-) pinc_delta_view=("
              << pdelta_dv.added.size() << "+," << pdelta_dv.removed.size()
              << "-)\n";
    return 1;
  }
  graph->Rollback();

  // The Fig. 4(a)-(d) |ΔG| sweep on the pinned hub workload.
  std::vector<SweepPoint> sweep;
  if (!RunHubSweep(opts, &sweep)) return 1;

  // The Fig. 4(i)/(l) processor-scaling series on the 10x workload.
  ScaleSeries scaling;
  if (!RunProcessorScaling(opts, &scaling)) return 1;

  // The ingest series: TSV parse vs binary snapshot load, cross-checked.
  std::vector<IngestStat> ingest;
  if (!RunIngest(opts, &ingest)) return 1;

  // The wal_replay series: journal append throughput + recovery time.
  WalStat wal;
  if (!RunWalReplay(opts, &wal)) return 1;

  // The violation_stream series: spill-to-disk VioSet vs materializing,
  // cursor stream cross-checked byte-identical against the oracle.
  StreamStats stream;
  if (!RunViolationStream(opts, &stream)) return 1;
  const IngestStat* largest = &ingest[0];
  for (const IngestStat& st : ingest) {
    if (st.edges > largest->edges) largest = &st;
  }
  const double ingest_headline =
      largest->snapshot_load_s > 0
          ? largest->tsv_parse_seq_s / largest->snapshot_load_s
          : -1.0;
  double min_dv_speedup = -1.0;
  for (const SweepPoint& pt : sweep) {
    const double s = pt.inc_dv_s > 0 ? pt.inc_live_s / pt.inc_dv_s : -1.0;
    if (min_dv_speedup < 0.0 || s < min_dv_speedup) min_dv_speedup = s;
  }

  std::ostringstream js;
  js << "{\n";
  js << "  \"bench\": \"detect\",\n";
  js << "  \"workload\": {\n";
  js << "    \"nodes\": " << graph->NumNodes() << ",\n";
  js << "    \"edges\": " << graph->NumEdges(GraphView::kNew) << ",\n";
  js << "    \"rules\": " << sigma.size() << ",\n";
  js << "    \"wildcard_prob\": " << opts.wildcard_prob << ",\n";
  js << "    \"pref_attach\": " << opts.pref_attach << ",\n";
  js << "    \"node_labels\": " << opts.node_labels << ",\n";
  js << "    \"edge_labels\": " << opts.edge_labels << ",\n";
  js << "    \"seed\": " << opts.seed << "\n";
  js << "  },\n";
  js << "  \"repetitions\": " << opts.repetitions << ",\n";
  js << "  \"violations\": " << live_violations << ",\n";
  js << "  \"timings_seconds\": {\n";
  js << "    \"graph_build\": " << graph_build_s << ",\n";
  js << "    \"rule_gen\": " << rule_gen_s << ",\n";
  js << "    \"snapshot_build\": " << snapshot_build_s << ",\n";
  js << "    \"dect_live\": " << dect_live_s << ",\n";
  js << "    \"dect_snapshot\": " << dect_snapshot_s << ",\n";
  js << "    \"fragment_runtime_build_p" << opts.parallel
     << "\": " << runtime_build_s << ",\n";
  js << "    \"pdect_fragment_p" << opts.parallel << "\": " << pdect_s
     << "\n";
  js << "  },\n";
  js << "  \"speedups\": {\n";
  js << "    \"dect_snapshot_vs_live\": "
     << (dect_snapshot_s > 0 ? dect_live_s / dect_snapshot_s : -1.0) << ",\n";
  // How many live-engine Dect calls one snapshot build is worth: the
  // build amortizes when this is large.
  js << "    \"dect_live_over_snapshot_build\": "
     << (snapshot_build_s > 0 ? dect_live_s / snapshot_build_s : -1.0)
     << "\n";
  js << "  },\n";
  js << "  \"sigma_minimize\": {\n";
  js << "    \"rules_base\": " << sigma_base.size() << ",\n";
  js << "    \"rules_inflated\": " << sigma_inflated.size() << ",\n";
  js << "    \"rules_kept\": " << sigma_min.report.kept.size() << ",\n";
  js << "    \"duplicate_drops\": " << sigma_min.report.duplicate_drops
     << ",\n";
  js << "    \"implication_checks\": "
     << sigma_min.report.implication_checks << ",\n";
  js << "    \"unknown_checks\": " << sigma_min.report.unknown << ",\n";
  js << "    \"violations_full\": " << sig_vio_full.size() << ",\n";
  js << "    \"violations_kept\": " << sig_vio_min.size() << ",\n";
  js << "    \"timings_seconds\": {\n";
  js << "      \"minimize_cold\": " << minimize_cold_s << ",\n";
  js << "      \"dect_full\": " << dect_sigma_full_s << ",\n";
  js << "      \"dect_minimized\": " << dect_sigma_min_s << "\n";
  js << "    },\n";
  js << "    \"speedups\": {\n";
  // The tracked headline: batch detection under the inflated catalog
  // with minimization on vs off (target >= 1.5x).
  js << "      \"dect_minimized_vs_full\": "
     << (dect_sigma_min_s > 0 ? dect_sigma_full_s / dect_sigma_min_s : -1.0)
     << ",\n";
  // How many full-catalog Dect calls one cold optimizer run costs: the
  // per-catalog-version minimization amortizes across this many calls.
  js << "      \"dect_full_over_minimize_cold\": "
     << (minimize_cold_s > 0 ? dect_sigma_full_s / minimize_cold_s : -1.0)
     << "\n";
  js << "    }\n";
  js << "  },\n";
  js << "  \"incremental\": {\n";
  js << "    \"update_fraction\": " << opts.update_fraction << ",\n";
  js << "    \"updates\": " << batch.size() << ",\n";
  js << "    \"delta_added\": " << delta_live.added.size() << ",\n";
  js << "    \"delta_removed\": " << delta_live.removed.size() << ",\n";
  js << "    \"timings_seconds\": {\n";
  js << "      \"base_snapshot_build\": " << base_snapshot_build_s << ",\n";
  js << "      \"delta_view_build\": " << delta_view_build_s << ",\n";
  js << "      \"inc_dect_live\": " << inc_dect_live_s << ",\n";
  js << "      \"inc_dect_delta_view\": " << inc_dect_dv_s << ",\n";
  js << "      \"pinc_dect_live_p" << opts.parallel
     << "\": " << pinc_dect_live_s << ",\n";
  js << "      \"pinc_dect_delta_view_p" << opts.parallel
     << "\": " << pinc_dect_dv_s << "\n";
  js << "    },\n";
  js << "    \"speedups\": {\n";
  js << "      \"inc_dect_delta_view_vs_live\": "
     << (inc_dect_dv_s > 0 ? inc_dect_live_s / inc_dect_dv_s : -1.0)
     << ",\n";
  js << "      \"pinc_dect_delta_view_vs_live\": "
     << (pinc_dect_dv_s > 0 ? pinc_dect_live_s / pinc_dect_dv_s : -1.0)
     << ",\n";
  // How many live IncDect calls one base-snapshot build costs: the
  // per-epoch build amortizes across this many batches.
  js << "      \"inc_dect_live_over_base_build\": "
     << (base_snapshot_build_s > 0
             ? inc_dect_live_s / base_snapshot_build_s
             : -1.0)
     << "\n";
  js << "    }\n";
  js << "  },\n";
  js << "  \"fig4ad_sweep\": {\n";
  js << "    \"workload\": {\n";
  js << "      \"hubs\": " << kSweepHubs << ",\n";
  js << "      \"spokes\": " << kSweepSpokes << ",\n";
  js << "      \"fan_out\": " << kSweepFanOut << ",\n";
  js << "      \"edge_labels\": " << kSweepEdgeLabels << ",\n";
  js << "      \"feeds_per_hub\": " << kSweepFeedsPerHub << ",\n";
  js << "      \"rules\": " << kSweepRules << "\n";
  js << "    },\n";
  js << "    \"points\": [\n";
  for (size_t i = 0; i < sweep.size(); ++i) {
    const SweepPoint& pt = sweep[i];
    js << "      {\n";
    js << "        \"fraction\": " << pt.fraction << ",\n";
    js << "        \"updates\": " << pt.updates << ",\n";
    js << "        \"delta_added\": " << pt.delta_added << ",\n";
    js << "        \"delta_removed\": " << pt.delta_removed << ",\n";
    js << "        \"timings_seconds\": {\n";
    js << "          \"inc_dect_live\": " << pt.inc_live_s << ",\n";
    js << "          \"inc_dect_delta_view\": " << pt.inc_dv_s << ",\n";
    js << "          \"pinc_dect_live_p" << opts.parallel
       << "\": " << pt.pinc_live_s << ",\n";
    js << "          \"pinc_dect_delta_view_p" << opts.parallel
       << "\": " << pt.pinc_dv_s << "\n";
    js << "        },\n";
    js << "        \"speedups\": {\n";
    js << "          \"inc_dect_delta_view_vs_live\": "
       << (pt.inc_dv_s > 0 ? pt.inc_live_s / pt.inc_dv_s : -1.0) << ",\n";
    js << "          \"pinc_dect_delta_view_vs_live\": "
       << (pt.pinc_dv_s > 0 ? pt.pinc_live_s / pt.pinc_dv_s : -1.0)
       << "\n";
    js << "        }\n";
    js << "      }" << (i + 1 < sweep.size() ? "," : "") << "\n";
  }
  js << "    ],\n";
  // The tracked headline: delta-view IncDect vs the live baseline across
  // the whole |dG| sweep (target >= 1.5x at every point).
  js << "    \"min_inc_dect_delta_view_vs_live\": " << min_dv_speedup
     << "\n";
  js << "  },\n";
  js << "  \"fig4_il\": {\n";
  js << "    \"workload\": {\n";
  js << "      \"nodes\": " << scaling.nodes << ",\n";
  js << "      \"edges\": " << scaling.edges << ",\n";
  js << "      \"violations\": " << scaling.violations << ",\n";
  js << "      \"updates\": " << scaling.updates << "\n";
  js << "    },\n";
  js << "    \"points\": [\n";
  for (size_t i = 0; i < scaling.points.size(); ++i) {
    const ScalePoint& pt = scaling.points[i];
    js << "      {\n";
    js << "        \"processors\": " << pt.processors << ",\n";
    js << "        \"crossing_edges\": " << pt.crossing_edges << ",\n";
    js << "        \"replicated_nodes\": " << pt.replicated_nodes << ",\n";
    js << "        \"timings_seconds\": {\n";
    js << "          \"runtime_build\": " << pt.runtime_build_s << ",\n";
    js << "          \"pdect\": " << pt.pdect_s << ",\n";
    js << "          \"pinc_dect\": " << pt.pinc_s << "\n";
    js << "        },\n";
    js << "        \"pdect_metrics\": {\n";
    js << "          \"messages\": " << pt.pdect_metrics.messages << ",\n";
    js << "          \"work_units\": " << pt.pdect_metrics.work_units
       << ",\n";
    js << "          \"splits\": " << pt.pdect_metrics.splits << ",\n";
    js << "          \"forwards\": " << pt.pdect_metrics.forwards << ",\n";
    js << "          \"steals\": " << pt.pdect_metrics.steals << "\n";
    js << "        },\n";
    js << "        \"pinc_dect_metrics\": {\n";
    js << "          \"messages\": " << pt.pinc_messages << ",\n";
    js << "          \"replicated_nodes\": " << pt.pinc_replicated << ",\n";
    js << "          \"work_units\": " << pt.pinc_work_units << ",\n";
    js << "          \"splits\": " << pt.pinc_splits << ",\n";
    js << "          \"balance_moves\": " << pt.pinc_balance_moves << ",\n";
    js << "          \"steals\": " << pt.pinc_steals << "\n";
    js << "        }\n";
    js << "      }" << (i + 1 < scaling.points.size() ? "," : "") << "\n";
  }
  js << "    ],\n";
  // The tracked headline: fragment-native PDect at p = 8 vs p = 1 on the
  // 10x hub workload (target >= 1.5x on a machine with >= 8 cores;
  // simulated processors cannot beat wall clock on fewer).
  {
    const ScalePoint& p1 = scaling.points.front();
    const ScalePoint& p8 = scaling.points.back();
    js << "    \"pdect_speedup_p8_vs_p1\": "
       << (p8.pdect_s > 0 ? p1.pdect_s / p8.pdect_s : -1.0) << ",\n";
    js << "    \"pinc_dect_speedup_p8_vs_p1\": "
       << (p8.pinc_s > 0 ? p1.pinc_s / p8.pinc_s : -1.0) << "\n";
  }
  js << "  },\n";
  js << "  \"ingest\": {\n";
  js << "    \"scale\": " << opts.ingest_scale << ",\n";
  js << "    \"parse_threads\": " << opts.parallel << ",\n";
  js << "    \"datasets\": [\n";
  for (size_t i = 0; i < ingest.size(); ++i) {
    const IngestStat& st = ingest[i];
    js << "      {\n";
    js << "        \"name\": \"" << st.name << "\",\n";
    js << "        \"nodes\": " << st.nodes << ",\n";
    js << "        \"edges\": " << st.edges << ",\n";
    js << "        \"tsv_bytes\": " << st.tsv_bytes << ",\n";
    js << "        \"snapshot_bytes\": " << st.snapshot_bytes << ",\n";
    js << "        \"timings_seconds\": {\n";
    js << "          \"generate\": " << st.generate_s << ",\n";
    js << "          \"tsv_write\": " << st.tsv_write_s << ",\n";
    js << "          \"tsv_parse_seq\": " << st.tsv_parse_seq_s << ",\n";
    js << "          \"tsv_parse_par_t" << opts.parallel
       << "\": " << st.tsv_parse_par_s << ",\n";
    js << "          \"snapshot_build\": " << st.snapshot_build_s << ",\n";
    js << "          \"snapshot_save\": " << st.snapshot_save_s << ",\n";
    js << "          \"snapshot_load\": " << st.snapshot_load_s << "\n";
    js << "        },\n";
    js << "        \"speedups\": {\n";
    // Binary persistence vs re-parsing the text, the cost every run paid
    // before snapshot files existed.
    js << "          \"snapshot_load_vs_tsv_parse_seq\": "
       << (st.snapshot_load_s > 0 ? st.tsv_parse_seq_s / st.snapshot_load_s
                                  : -1.0)
       << ",\n";
    js << "          \"snapshot_load_vs_tsv_parse_par\": "
       << (st.snapshot_load_s > 0 ? st.tsv_parse_par_s / st.snapshot_load_s
                                  : -1.0)
       << ",\n";
    js << "          \"tsv_parse_par_vs_seq\": "
       << (st.tsv_parse_par_s > 0 ? st.tsv_parse_seq_s / st.tsv_parse_par_s
                                  : -1.0)
       << "\n";
    js << "        }\n";
    js << "      }" << (i + 1 < ingest.size() ? "," : "") << "\n";
  }
  js << "    ],\n";
  // The tracked headline: binary snapshot load vs (sequential) TSV parse
  // on the largest dataset (target >= 5x).
  js << "    \"largest_dataset\": \"" << largest->name << "\",\n";
  js << "    \"snapshot_load_vs_tsv_parse_largest\": " << ingest_headline
     << "\n";
  js << "  },\n";
  js << "  \"wal_replay\": {\n";
  js << "    \"epochs\": " << wal.epochs << ",\n";
  js << "    \"replayed_records\": " << wal.replayed_records << ",\n";
  js << "    \"final_nodes\": " << wal.final_nodes << ",\n";
  js << "    \"final_edges\": " << wal.final_edges << ",\n";
  js << "    \"wal_bytes\": " << wal.wal_bytes << ",\n";
  js << "    \"snapshot_bytes\": " << wal.snapshot_bytes << ",\n";
  js << "    \"tsv_bytes\": " << wal.tsv_bytes << ",\n";
  js << "    \"timings_seconds\": {\n";
  // Append + Sync only: the per-epoch durability tax on the commit path.
  js << "      \"journal_append_sync\": " << wal.journal_append_s << ",\n";
  js << "      \"journal_append_sync_per_epoch\": "
     << (wal.epochs > 0 ? wal.journal_append_s / wal.epochs : -1.0) << ",\n";
  js << "      \"recover\": " << wal.recover_s << ",\n";
  js << "      \"tsv_ingest\": " << wal.tsv_ingest_s << "\n";
  js << "    },\n";
  js << "    \"append_mb_per_s\": "
     << (wal.journal_append_s > 0
             ? static_cast<double>(wal.wal_bytes) / 1e6 / wal.journal_append_s
             : -1.0)
     << ",\n";
  js << "    \"speedups\": {\n";
  // The tracked headline: snapshot + journal replay vs re-parsing the
  // equivalent final graph from TSV — the recovery cost before the
  // journal existed. Cross-checked by snapshot fingerprint against the
  // never-crashed live graph.
  js << "      \"recover_vs_tsv_ingest\": "
     << (wal.recover_s > 0 ? wal.tsv_ingest_s / wal.recover_s : -1.0) << "\n";
  js << "    }\n";
  js << "  },\n";
  // ---- violation_heavy: the emission-dominated regime ------------------
  //
  // The default workload (violation_rate high enough that the sweep
  // emits hundreds of thousands of violations) is exactly the regime the
  // arena-backed VioSet targets: matching is cheap, materializing
  // violations is the bill. The series re-reports the default-workload
  // batch and incremental measurements (taken above, with the engines
  // cross-checked violation-exact against the kNever oracle) as ratios
  // vs the live baseline. Tracked: snapshot Dect and delta-view IncDect
  // must not LOSE to live here (>= 1.0x) while the sparse-delta hub
  // sweep keeps its >= 2.7x / >= 3.7x wins.
  js << "  \"violation_heavy\": {\n";
  js << "    \"nodes\": " << graph->NumNodes() << ",\n";
  js << "    \"edges\": " << graph->NumEdges(GraphView::kNew) << ",\n";
  js << "    \"violations\": " << live_violations << ",\n";
  js << "    \"delta_added\": " << delta_live.added.size() << ",\n";
  js << "    \"delta_removed\": " << delta_live.removed.size() << ",\n";
  js << "    \"timings_seconds\": {\n";
  js << "      \"dect_live\": " << dect_live_s << ",\n";
  js << "      \"dect_snapshot\": " << dect_snapshot_s << ",\n";
  js << "      \"inc_dect_live\": " << inc_dect_live_s << ",\n";
  js << "      \"inc_dect_delta_view\": " << inc_dect_dv_s << "\n";
  js << "    },\n";
  js << "    \"speedups\": {\n";
  js << "      \"snapshot_vs_live\": "
     << (dect_snapshot_s > 0 ? dect_live_s / dect_snapshot_s : -1.0) << ",\n";
  js << "      \"deltaview_vs_live\": "
     << (inc_dect_dv_s > 0 ? inc_dect_live_s / inc_dect_dv_s : -1.0) << "\n";
  js << "    }\n";
  js << "  },\n";
  // ---- violation_stream: bounded-memory result streaming ---------------
  //
  // The >= 10^6-violation pairwise workload run twice: materializing the
  // whole VioSet vs spilling past an 8 MiB budget and replaying through
  // the cursor. stream_identical is the byte-identity cross-check against
  // the resident Sorted() oracle; peak_under_budget is the acceptance
  // bound on the spilled run's resident high-water mark.
  // stream_vs_materialize is the last key on purpose — the smoke test's
  // pass regex anchors on it, so a run only passes when the whole JSON
  // (this series included) was emitted.
  js << "  \"violation_stream\": {\n";
  js << "    \"workload\": {\n";
  js << "      \"nodes\": " << stream.nodes << ",\n";
  js << "      \"edges\": " << stream.edges << ",\n";
  js << "      \"violations\": " << stream.violations << "\n";
  js << "    },\n";
  js << "    \"budget_bytes\": " << stream.budget_bytes << ",\n";
  js << "    \"spill_segments\": " << stream.spill_segments << ",\n";
  js << "    \"spilled_records\": " << stream.spilled_records << ",\n";
  js << "    \"peak_resident_bytes\": " << stream.peak_resident_bytes << ",\n";
  js << "    \"materialized_resident_bytes\": "
     << stream.materialized_resident_bytes << ",\n";
  js << "    \"peak_under_budget\": "
     << (stream.peak_under_budget ? "true" : "false") << ",\n";
  js << "    \"stream_identical\": "
     << (stream.stream_identical ? "true" : "false") << ",\n";
  js << "    \"timings_seconds\": {\n";
  js << "      \"dect_materialize\": " << stream.materialize_s << ",\n";
  js << "      \"dect_stream\": " << stream.stream_s << "\n";
  js << "    },\n";
  // How much of the materializing run's wall clock streaming costs (or
  // saves): > 1.0 means spilling beat holding everything resident.
  js << "    \"stream_vs_materialize\": "
     << (stream.stream_s > 0 ? stream.materialize_s / stream.stream_s : -1.0)
     << "\n";
  js << "  }\n";
  js << "}\n";

  const std::string json = js.str();
  std::fputs(json.c_str(), stdout);
  if (opts.out != "-") {
    std::ofstream f(opts.out);
    if (!f.is_open()) {
      std::cerr << "ngdbench: cannot write " << opts.out << "\n";
      return 1;
    }
    f << json;
    f.flush();
    if (!f.good()) {
      std::cerr << "ngdbench: write failed for " << opts.out << "\n";
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace ngd

int main(int argc, char** argv) {
  ngd::Options opts;
  std::string error;
  if (!ngd::ParseArgs(argc, argv, &opts, &error)) {
    std::cerr << "ngdbench: " << error << "\n\n" << ngd::kUsage;
    return 1;
  }
  return ngd::Run(opts);
}
