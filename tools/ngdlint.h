// ngdlint: project-invariant linter for the ngd tree.
//
// Enforces rules no generic tool knows about (see tools/ngdlint.cc for
// the rule list). The scanning core is exposed here so ngdlint_test can
// drive it against fixture trees in-process; the CLI wrapper in
// ngdlint.cc formats findings as "file:line: [rule] message" and exits
// non-zero when any rule fires.

#ifndef NGD_TOOLS_NGDLINT_H_
#define NGD_TOOLS_NGDLINT_H_

#include <string>
#include <vector>

namespace ngdlint {

struct Finding {
  std::string file;  // path relative to the lint root, '/' separators
  int line = 0;      // 1-based; 0 for whole-tree findings
  std::string rule;  // stable rule id, e.g. "failpoint-unarmed"
  std::string message;
};

/// Lints the tree rooted at `root`, which must contain a src/ directory
/// (tests/ is optional but required for failpoint-arming checks to
/// pass). Returns all findings sorted by (file, line, rule).
std::vector<Finding> LintTree(const std::string& root);

/// "file:line: [rule] message" (whole-tree findings omit ":line").
std::string FormatFinding(const Finding& f);

}  // namespace ngdlint

#endif  // NGD_TOOLS_NGDLINT_H_
