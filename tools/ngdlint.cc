// ngdlint: dependency-free scanner enforcing ngd project invariants that
// no generic linter knows about. Rules:
//
//   failpoint-unarmed   every NGD_FAILPOINT("site") marker in src/ must
//                       be armed by at least one test under tests/ (an
//                       ArmSite call or an NGD_FAILPOINTS env string
//                       naming the site). A failpoint no test fires is
//                       untested crash handling.
//   magic-duplicate /   each binary-format magic (NGDWAL1, NGDSNAP1,
//   magic-missing       NGDVSEG1, NGDFRAG1) must be defined exactly once
//                       in src/ — a second copy is a fork of the format.
//                       Both char-array initializers and exact string
//                       literals count as definitions; substrings inside
//                       longer literals (error messages) do not.
//   naked-new           `new` outside a smart-pointer factory in src/.
//   banned-rand /       rand() (use util/rng.h), std::endl (use '\n'),
//   banned-endl /       time() (use util/timer.h) in library code.
//   banned-time
//   missing-include     a src/ header uses a std:: type but does not
//                       directly include the header that defines it —
//                       i.e. it compiles by include-order luck.
//   include-cycle       the `#include "..."` graph over src/ must be
//                       acyclic.
//   include-guard       every src/ header carries an NGD_*_H_ guard.
//
// Suppression: a line (or the line above it) containing
// `ngdlint:allow(<rule>)` in a comment silences that rule for the line.
//
// The tool reads sources only; it never executes or modifies anything.

#include "ngdlint.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace ngdlint {
namespace {

namespace fs = std::filesystem;

// ---- Source views --------------------------------------------------------

// One scanned file. `code` is the raw text with comments blanked to
// spaces (string/char literals intact); `blank` additionally blanks the
// bodies of string and char literals. Both preserve byte offsets and
// line structure, so positions map 1:1 onto the raw file.
struct Source {
  std::string path;  // relative to lint root, '/' separators
  std::string raw;
  std::string code;
  std::string blank;
};

void BuildViews(Source* s) {
  const std::string& in = s->raw;
  std::string code(in), blank(in);
  enum { kNormal, kLine, kBlock, kStr, kChar, kRawStr } st = kNormal;
  std::string raw_delim;  // for R"delim( ... )delim"
  for (size_t i = 0; i < in.size(); ++i) {
    const char c = in[i];
    const char next = i + 1 < in.size() ? in[i + 1] : '\0';
    switch (st) {
      case kNormal:
        if (c == '/' && next == '/') {
          st = kLine;
          code[i] = blank[i] = ' ';
        } else if (c == '/' && next == '*') {
          st = kBlock;
          code[i] = blank[i] = ' ';
        } else if (c == '"' && i >= 1 && in[i - 1] == 'R') {
          st = kRawStr;
          raw_delim = ")";
          for (size_t j = i + 1; j < in.size() && in[j] != '('; ++j) {
            raw_delim += in[j];
          }
          raw_delim += '"';
        } else if (c == '"') {
          st = kStr;
        } else if (c == '\'' && !(i >= 1 && (std::isalnum(in[i - 1]) ||
                                             in[i - 1] == '_'))) {
          // Apostrophe preceded by an identifier char is a digit
          // separator (1'000'000), not a char literal.
          st = kChar;
        }
        break;
      case kLine:
        if (c == '\n') {
          st = kNormal;
        } else {
          code[i] = blank[i] = ' ';
        }
        break;
      case kBlock:
        if (c == '*' && next == '/') {
          code[i] = blank[i] = ' ';
          code[i + 1] = blank[i + 1] = ' ';
          ++i;
          st = kNormal;
        } else if (c != '\n') {
          code[i] = blank[i] = ' ';
        }
        break;
      case kStr:
        if (c == '\\') {
          blank[i] = ' ';
          if (next != '\n') blank[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          st = kNormal;
        } else if (c != '\n') {
          blank[i] = ' ';
        }
        break;
      case kChar:
        if (c == '\\') {
          blank[i] = ' ';
          if (next != '\n') blank[i + 1] = ' ';
          ++i;
        } else if (c == '\'') {
          st = kNormal;
        } else {
          blank[i] = ' ';
        }
        break;
      case kRawStr:
        if (in.compare(i, raw_delim.size(), raw_delim) == 0) {
          i += raw_delim.size() - 1;
          st = kNormal;
        } else if (c != '\n') {
          blank[i] = ' ';
        }
        break;
    }
  }
  s->code = std::move(code);
  s->blank = std::move(blank);
}

int LineOf(const std::string& text, size_t pos) {
  return 1 + static_cast<int>(std::count(text.begin(), text.begin() +
                                             static_cast<long>(pos), '\n'));
}

std::string LineText(const std::string& text, int line) {
  std::istringstream in(text);
  std::string s;
  for (int i = 0; i < line && std::getline(in, s); ++i) {
  }
  return s;
}

// `ngdlint:allow(rule)` on the flagged line or the line above it.
bool Suppressed(const Source& s, int line, const std::string& rule) {
  const std::string marker = "ngdlint:allow(" + rule + ")";
  if (LineText(s.raw, line).find(marker) != std::string::npos) return true;
  return line > 1 &&
         LineText(s.raw, line - 1).find(marker) != std::string::npos;
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Position of each whole-word occurrence of `word` in `text`.
std::vector<size_t> FindWord(const std::string& text, const std::string& word) {
  std::vector<size_t> out;
  for (size_t p = text.find(word); p != std::string::npos;
       p = text.find(word, p + 1)) {
    const bool left = p == 0 || !IsIdentChar(text[p - 1]);
    const size_t end = p + word.size();
    const bool right = end >= text.size() || !IsIdentChar(text[end]);
    if (left && right) out.push_back(p);
  }
  return out;
}

// The quoted string starting at or after `pos` on the same literal.
std::string QuotedAfter(const std::string& code, size_t pos) {
  const size_t q0 = code.find('"', pos);
  if (q0 == std::string::npos) return "";
  const size_t q1 = code.find('"', q0 + 1);
  if (q1 == std::string::npos) return "";
  return code.substr(q0 + 1, q1 - q0 - 1);
}

// ---- Rules ---------------------------------------------------------------

const char* const kMagics[] = {"NGDWAL1", "NGDSNAP1", "NGDVSEG1", "NGDFRAG1"};

// Reconstructs every run of adjacent char literals ('N', 'G', ...) in the
// file — the form all format magics are defined in — plus every exact
// string literal, and reports where each known magic is defined.
void CollectMagicDefs(const Source& s,
                      std::map<std::string, std::vector<Finding>>* defs) {
  const std::string& code = s.code;
  std::string run;
  size_t run_start = 0;
  auto flush = [&](size_t at) {
    (void)at;
    for (const char* magic : kMagics) {
      if (run.find(magic) != std::string::npos) {
        (*defs)[magic].push_back(
            {s.path, LineOf(code, run_start), "magic", magic});
      }
    }
    run.clear();
  };
  for (size_t i = 0; i < code.size(); ++i) {
    if (code[i] != '\'') continue;
    if (i >= 1 && IsIdentChar(code[i - 1])) continue;  // digit separator
    const size_t close = code.find('\'', i + 1);
    if (close == std::string::npos) break;
    if (run.empty()) run_start = i;
    std::string body = code.substr(i + 1, close - i - 1);
    run += body == "\\0" ? '\0' : (body.empty() ? '\0' : body[0]);
    // A run continues across whitespace and commas (array initializers
    // wrap lines); anything else ends it.
    size_t j = close + 1;
    while (j < code.size() &&
           (std::isspace(static_cast<unsigned char>(code[j])) ||
            code[j] == ',')) {
      ++j;
    }
    if (j >= code.size() || code[j] != '\'') flush(i);
    i = close;
  }
  flush(code.size());
  // Exact string-literal definitions ("NGDWAL1") count too; substrings
  // inside longer literals (error messages) do not.
  for (size_t i = 0; i < code.size(); ++i) {
    if (code[i] != '"') continue;
    const size_t close = code.find('"', i + 1);
    if (close == std::string::npos) break;
    const std::string body = code.substr(i + 1, close - i - 1);
    for (const char* magic : kMagics) {
      if (body == magic) {
        (*defs)[magic].push_back({s.path, LineOf(code, i), "magic", magic});
      }
    }
    i = close;
  }
}

void RuleBanned(const Source& s, std::vector<Finding>* out) {
  struct Ban {
    const char* word;
    bool call_only;  // require '(' after the word
    const char* rule;
    const char* msg;
  };
  static const Ban kBans[] = {
      {"new", false, "naked-new",
       "naked new; use std::make_unique (ngdlint:allow(naked-new) for "
       "intentional leaks / private ctors)"},
      {"rand", true, "banned-rand", "rand(); use util/rng.h"},
      {"endl", false, "banned-endl", "std::endl; use '\\n' (no flush)"},
      {"time", true, "banned-time", "time(); use util/timer.h"},
  };
  for (const Ban& b : kBans) {
    for (size_t p : FindWord(s.blank, b.word)) {
      if (b.call_only) {
        size_t j = p + std::string(b.word).size();
        while (j < s.blank.size() && s.blank[j] == ' ') ++j;
        if (j >= s.blank.size() || s.blank[j] != '(') continue;
      }
      const int line = LineOf(s.blank, p);
      if (Suppressed(s, line, b.rule)) continue;
      out->push_back({s.path, line, b.rule, b.msg});
    }
  }
}

// std:: types a header must directly include the defining header for.
// Conservative by design: only unambiguous type -> header pairs.
const std::pair<const char*, const char*> kStdHeaders[] = {
    {"std::string_view", "<string_view>"},
    {"std::string", "<string>"},
    {"std::vector", "<vector>"},
    {"std::deque", "<deque>"},
    {"std::map", "<map>"},
    {"std::set", "<set>"},
    {"std::unordered_map", "<unordered_map>"},
    {"std::unordered_set", "<unordered_set>"},
    {"std::optional", "<optional>"},
    {"std::function", "<functional>"},
    {"std::atomic", "<atomic>"},
    {"std::mutex", "<mutex>"},
    {"std::thread", "<thread>"},
    {"std::unique_ptr", "<memory>"},
    {"std::shared_ptr", "<memory>"},
};

void RuleMissingInclude(const Source& s, std::vector<Finding>* out) {
  for (const auto& [sym, hdr] : kStdHeaders) {
    const std::string symbol(sym);
    const auto uses =
        FindWord(s.blank, symbol.substr(symbol.rfind(':') + 1));
    size_t first_use = std::string::npos;
    for (size_t p : uses) {
      // Require the full std:: qualification at this position.
      const size_t off = symbol.rfind(':') + 1;
      if (p >= off && s.blank.compare(p - off, off, symbol, 0, off) == 0) {
        first_use = p - off;
        break;
      }
    }
    if (first_use == std::string::npos) continue;
    if (s.code.find("#include " + std::string(hdr)) != std::string::npos) {
      continue;
    }
    const int line = LineOf(s.blank, first_use);
    if (Suppressed(s, line, "missing-include")) continue;
    out->push_back({s.path, line, "missing-include",
                    symbol + " used without #include " + hdr});
  }
}

void RuleIncludeGuard(const Source& s, std::vector<Finding>* out) {
  if (s.code.find("#ifndef NGD_") != std::string::npos &&
      s.code.find("#define NGD_") != std::string::npos) {
    return;
  }
  out->push_back({s.path, 1, "include-guard",
                  "header lacks an NGD_*_H_ include guard"});
}

// DFS over the quoted-include graph; reports each back-edge as a cycle.
void RuleIncludeCycles(const std::map<std::string, Source>& files,
                       std::vector<Finding>* out) {
  std::map<std::string, std::vector<std::pair<std::string, int>>> edges;
  for (const auto& [path, src] : files) {
    if (path.compare(0, 4, "src/") != 0) continue;
    const std::string& code = src.code;
    for (size_t p = code.find("#include \""); p != std::string::npos;
         p = code.find("#include \"", p + 1)) {
      const std::string target = "src/" + QuotedAfter(code, p);
      if (files.count(target) != 0) {
        edges[path].emplace_back(target, LineOf(code, p));
      }
    }
  }
  std::set<std::string> done, on_stack;
  std::vector<Finding>* sink = out;
  std::function<void(const std::string&)> visit =
      [&](const std::string& node) {
        on_stack.insert(node);
        for (const auto& [next, line] : edges[node]) {
          if (on_stack.count(next) != 0) {
            sink->push_back({node, line, "include-cycle",
                             "#include of \"" + next +
                                 "\" closes an include cycle"});
          } else if (done.count(next) == 0) {
            visit(next);
          }
        }
        on_stack.erase(node);
        done.insert(node);
      };
  for (const auto& [path, src] : edges) {
    (void)src;
    if (done.count(path) == 0) visit(path);
  }
}

}  // namespace

std::vector<Finding> LintTree(const std::string& root) {
  std::map<std::string, Source> files;
  for (const char* dir : {"src", "tests"}) {
    const fs::path base = fs::path(root) / dir;
    if (!fs::exists(base)) continue;
    for (const auto& ent : fs::recursive_directory_iterator(base)) {
      if (!ent.is_regular_file()) continue;
      const std::string ext = ent.path().extension().string();
      if (ext != ".h" && ext != ".cc") continue;
      Source s;
      s.path = fs::relative(ent.path(), root).generic_string();
      std::ifstream in(ent.path(), std::ios::binary);
      std::ostringstream buf;
      buf << in.rdbuf();
      s.raw = buf.str();
      BuildViews(&s);
      files.emplace(s.path, std::move(s));
    }
  }

  std::vector<Finding> out;

  // failpoint-unarmed: sites marked in src/, arming evidence in tests/.
  std::map<std::string, Finding> sites;
  std::string tests_corpus;
  for (const auto& [path, s] : files) {
    if (path.compare(0, 6, "tests/") == 0) {
      tests_corpus += s.code;
      continue;
    }
    if (path.compare(0, 4, "src/") != 0) continue;
    for (size_t p : FindWord(s.code, "NGD_FAILPOINT")) {
      const std::string site = QuotedAfter(s.code, p);
      if (site.empty()) continue;  // the macro definition itself
      sites.emplace(site, Finding{path, LineOf(s.code, p),
                                  "failpoint-unarmed", site});
    }
  }
  for (auto& [site, f] : sites) {
    // Armed when a test names the site in an ArmSite call or an
    // NGD_FAILPOINTS env string ("site=mode").
    if (tests_corpus.find("\"" + site + "\"") != std::string::npos ||
        tests_corpus.find(site + "=") != std::string::npos) {
      continue;
    }
    f.message = "failpoint site \"" + site +
                "\" is not armed by any test under tests/";
    out.push_back(f);
  }

  // magic definitions: exactly one per format.
  std::map<std::string, std::vector<Finding>> magic_defs;
  for (const auto& [path, s] : files) {
    if (path.compare(0, 4, "src/") == 0) CollectMagicDefs(s, &magic_defs);
  }
  for (const char* magic : kMagics) {
    const auto& defs = magic_defs[magic];
    if (defs.empty()) {
      out.push_back({"src", 0, "magic-missing",
                     std::string("format magic ") + magic +
                         " is not defined anywhere in src/"});
    }
    for (size_t i = 1; i < defs.size(); ++i) {
      out.push_back({defs[i].file, defs[i].line, "magic-duplicate",
                     std::string("format magic ") + magic +
                         " already defined at " + defs[0].file + ":" +
                         std::to_string(defs[0].line)});
    }
  }

  // Per-file rules.
  for (const auto& [path, s] : files) {
    if (path.compare(0, 4, "src/") != 0) continue;
    RuleBanned(s, &out);
    if (path.size() > 2 && path.compare(path.size() - 2, 2, ".h") == 0) {
      RuleMissingInclude(s, &out);
      RuleIncludeGuard(s, &out);
    }
  }
  RuleIncludeCycles(files, &out);

  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.file, a.line, a.rule) < std::tie(b.file, b.line, b.rule);
  });
  return out;
}

std::string FormatFinding(const Finding& f) {
  std::string s = f.file;
  if (f.line > 0) s += ":" + std::to_string(f.line);
  return s + ": [" + f.rule + "] " + f.message;
}

}  // namespace ngdlint

#ifndef NGDLINT_NO_MAIN
int main(int argc, char** argv) {
  std::string root = ".";
  if (argc == 2) {
    root = argv[1];
  } else if (argc > 2) {
    std::fprintf(stderr, "usage: ngdlint [repo-root]\n");
    return 2;
  }
  const auto findings = ngdlint::LintTree(root);
  for (const auto& f : findings) {
    std::fprintf(stdout, "%s\n", ngdlint::FormatFinding(f).c_str());
  }
  if (findings.empty()) {
    std::fprintf(stdout, "ngdlint: clean\n");
    return 0;
  }
  std::fprintf(stderr, "ngdlint: %zu finding(s)\n", findings.size());
  return 1;
}
#endif  // NGDLINT_NO_MAIN
