// ngdcheck: command-line NGD inconsistency checker.
//
// Loads a graph — TSV (graph_io.h format, parsed chunk-parallel) or a
// binary snapshot file (snapshot_io.h, detected by magic bytes) — and an
// NGD rule file (parser.h DSL), runs batch or incremental detection —
// sequential or parallel — and emits the violations as JSON on stdout.
// A snapshot input feeds the batch engines (Dect/PDect) directly as the
// pre-built CSR backend and the incremental engines (IncDect/PIncDect)
// as the DeltaView base snapshot; the violation output is identical to
// the TSV path either way.
//
//   ngdcheck --graph G.tsv --rules R.ngd                  # batch, Dect
//   ngdcheck --graph G.tsv --rules R.ngd --parallel 8     # batch, PDect
//   ngdcheck --graph G.tsv --rules R.ngd --updates D.tsv
//       --mode incremental                                # IncDect
//   ngdcheck --graph G.tsv --save-snapshot G.ngds         # TSV -> binary
//   ngdcheck --graph G.ngds --rules R.ngd                 # snapshot input
//
// Update files carry one unit update per line, whitespace-separated:
//   I <src> <dst> <label>     insert edge into ΔG+
//   D <src> <dst> <label>     delete edge into ΔG-
// '#' starts a comment. Node ids refer to the loaded graph; an insert may
// not reference nodes that do not exist (ngdcheck does not create nodes).
//
// Exit status: 0 on success (violations or not), 1 on usage/input errors,
// 2 if --fail-on-violations is given and any violation (or ΔVio+) exists,
// 3 if an input file is corrupt (snapshot/journal/update framing or
// checksum failures — Status code kCorruption).

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/parser.h"
#include "detect/dect.h"
#include "detect/inc_dect.h"
#include "detect/vio_stream.h"
#include "graph/graph_io.h"
#include "graph/snapshot.h"
#include "graph/snapshot_io.h"
#include "graph/update_log.h"
#include "graph/updates.h"
#include "parallel/pdect.h"
#include "parallel/pinc_dect.h"
#include "reason/sigma_optimizer.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace ngd {
namespace {

constexpr const char* kUsage = R"(usage: ngdcheck --graph FILE --rules FILE [options]

Detects violations of numeric graph dependencies (NGDs) and prints them
as JSON.

required:
  --graph FILE        graph: TSV (src/graph/graph_io.h) or a binary
                      snapshot file (src/graph/snapshot_io.h; detected by
                      magic bytes, typically *.ngds)
  --rules FILE        NGD rule file in the DSL (see src/core/parser.h);
                      optional when only --save-snapshot is requested

options:
  --save-snapshot FILE  write the loaded graph as a binary snapshot
                      (kNew view) to FILE; with --rules detection still
                      runs afterwards, without --rules ngdcheck converts
                      and exits
  --threads N         TSV parser threads (default: hardware concurrency)
  --mode MODE         batch (default) or incremental
  --updates FILE      unit-update file ("I|D <src> <dst> <label>" lines);
                      required for --mode incremental
  --parallel N        use the parallel engine (PDect / PIncDect) with N
                      simulated processors
  --max-violations N  stop collecting per NGD after N violations
                      (sequential batch mode only)
  --wal FILE          write-ahead journal. With --mode incremental the
                      update batch is appended (and fsynced) to FILE as
                      the next epoch before detection runs, so the batch
                      survives a crash; with --recover, FILE is the
                      journal replayed over the snapshot
  --recover           rebuild state instead of loading it: --graph names
                      the latest-good snapshot (missing = empty base) and
                      --wal the journal whose suffix is replayed onto it;
                      batch detection then runs on the recovered graph
  --deadline-ms N     best-effort time budget: detection stops expanding
                      when the deadline expires and reports the
                      violations found so far, with "truncated": true and
                      the count of fully-enumerated rules in the JSON
  --minimize-sigma    run the Sigma-optimizer before detection: rules the
                      remaining set implies are dropped (any violation of
                      a dropped rule co-occurs with a kept-rule violation)
                      and a "sigma_optimizer" report section is emitted.
                      In incremental mode added/removed cover the KEPT
                      rules only — a dropped rule's co-occurring kept
                      violation may predate the batch — so combining with
                      --fail-on-violations there is rejected (the exit-2
                      gate would weaken silently)
  --fail-on-violations  exit 2 if any violation (or ΔVio+) is found
  --help              show this message
)";

struct Options {
  std::string graph_path;
  std::string rules_path;
  std::string updates_path;
  std::string save_snapshot_path;
  std::string wal_path;
  std::string mode = "batch";
  int parallel = 0;  // 0 = sequential
  int threads = 0;   // TSV parser threads; 0 = hardware concurrency
  size_t max_violations = 0;
  int64_t deadline_ms = 0;  // 0 = no deadline
  bool recover = false;
  bool minimize_sigma = false;
  bool fail_on_violations = false;
};

bool ParseArgs(int argc, char** argv, Options* opts, std::string* error) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        *error = std::string(flag) + " requires a value";
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      std::fputs(kUsage, stdout);
      std::exit(0);
    } else if (arg == "--graph") {
      const char* v = need_value("--graph");
      if (v == nullptr) return false;
      opts->graph_path = v;
    } else if (arg == "--rules") {
      const char* v = need_value("--rules");
      if (v == nullptr) return false;
      opts->rules_path = v;
    } else if (arg == "--updates") {
      const char* v = need_value("--updates");
      if (v == nullptr) return false;
      opts->updates_path = v;
    } else if (arg == "--save-snapshot") {
      const char* v = need_value("--save-snapshot");
      if (v == nullptr) return false;
      opts->save_snapshot_path = v;
    } else if (arg == "--threads") {
      const char* v = need_value("--threads");
      if (v == nullptr) return false;
      auto n = ParseInt64(v);
      if (!n || *n <= 0 || *n > 1024) {
        *error = "--threads requires a thread count in [1, 1024], got " +
                 std::string(v);
        return false;
      }
      opts->threads = static_cast<int>(*n);
    } else if (arg == "--mode") {
      const char* v = need_value("--mode");
      if (v == nullptr) return false;
      opts->mode = v;
    } else if (arg == "--parallel") {
      const char* v = need_value("--parallel");
      if (v == nullptr) return false;
      auto n = ParseInt64(v);
      if (!n || *n <= 0 || *n > 1 << 20) {
        *error = "--parallel requires a positive processor count, got " +
                 std::string(v);
        return false;
      }
      opts->parallel = static_cast<int>(*n);
    } else if (arg == "--max-violations") {
      const char* v = need_value("--max-violations");
      if (v == nullptr) return false;
      auto n = ParseInt64(v);
      if (!n || *n < 0) {
        *error = "--max-violations requires a non-negative count, got " +
                 std::string(v);
        return false;
      }
      opts->max_violations = static_cast<size_t>(*n);
    } else if (arg == "--wal") {
      const char* v = need_value("--wal");
      if (v == nullptr) return false;
      opts->wal_path = v;
    } else if (arg == "--recover") {
      opts->recover = true;
    } else if (arg == "--deadline-ms") {
      const char* v = need_value("--deadline-ms");
      if (v == nullptr) return false;
      auto n = ParseInt64(v);
      if (!n || *n <= 0) {
        *error = "--deadline-ms requires a positive millisecond budget, "
                 "got " +
                 std::string(v);
        return false;
      }
      opts->deadline_ms = *n;
    } else if (arg == "--minimize-sigma") {
      opts->minimize_sigma = true;
    } else if (arg == "--fail-on-violations") {
      opts->fail_on_violations = true;
    } else {
      *error = "unknown argument: " + std::string(arg);
      return false;
    }
  }
  if (opts->graph_path.empty()) {
    *error = "--graph is required";
    return false;
  }
  if (opts->rules_path.empty() && opts->save_snapshot_path.empty()) {
    *error = "--rules is required (unless only --save-snapshot is given)";
    return false;
  }
  if (opts->mode != "batch" && opts->mode != "incremental") {
    *error = "--mode must be batch or incremental";
    return false;
  }
  if (opts->mode == "incremental" && opts->updates_path.empty()) {
    *error = "--mode incremental requires --updates";
    return false;
  }
  if (opts->recover && opts->wal_path.empty()) {
    *error = "--recover requires --wal (the journal to replay)";
    return false;
  }
  if (opts->recover && opts->mode != "batch") {
    *error = "--recover runs batch detection on the recovered graph; "
             "it cannot be combined with --mode incremental";
    return false;
  }
  if (!opts->wal_path.empty() && !opts->recover &&
      opts->mode != "incremental") {
    *error = "--wal journals update batches: it requires --mode "
             "incremental (or --recover)";
    return false;
  }
  if (opts->max_violations > 0 &&
      (opts->mode != "batch" || opts->parallel > 0)) {
    *error = "--max-violations is only supported by the sequential batch "
             "engine (no --parallel, no --mode incremental)";
    return false;
  }
  if (opts->minimize_sigma && opts->fail_on_violations &&
      opts->mode == "incremental") {
    // Minimization preserves Vio-emptiness but NOT dVio+-emptiness: a
    // dropped rule's newly-introduced violation is only guaranteed a
    // co-occurring kept-rule violation in the post-update graph as a
    // whole, which may predate the batch and thus be absent from
    // dVio+. Letting the combination through would silently weaken the
    // exit-2 gate pipelines rely on.
    *error = "--minimize-sigma cannot be combined with "
             "--fail-on-violations in incremental mode (dVio+ covers "
             "kept rules only; the gate would weaken)";
    return false;
  }
  return true;
}

/// Uniform failure reporting: every Status that aborts the run prints as
/// "ngdcheck: <context>: [CODE] message" on stderr, and data-integrity
/// failures get their own exit code so scripts can tell a corrupt
/// snapshot/journal (3) from a usage or missing-file error (1).
int FailWith(const std::string& context, const Status& s) {
  std::cerr << "ngdcheck: " << context << ": [" << StatusCodeName(s.code())
            << "] " << s.message() << "\n";
  return s.code() == StatusCode::kCorruption ? 3 : 1;
}

StatusOr<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::NotFound("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

StatusOr<UpdateBatch> ReadUpdateFile(const std::string& path, const Graph& g) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::NotFound("cannot open " + path);
  UpdateBatch batch;
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    auto err = [&](const std::string& msg) {
      return Status::Corruption(path + ":" + std::to_string(lineno) + ": " +
                                msg);
    };
    std::istringstream fields(line);
    std::string kind, label;
    uint64_t src = 0;
    uint64_t dst = 0;
    if (!(fields >> kind) || kind[0] == '#') continue;
    if (kind != "I" && kind != "D") {
      return err("update kind must be I or D, got " + kind);
    }
    if (!(fields >> src >> dst >> label)) {
      return err("expected: " + kind + " <src> <dst> <label>");
    }
    if (src >= g.NumNodes() || dst >= g.NumNodes()) {
      return err("edge endpoint out of range");
    }
    UnitUpdate u;
    u.kind = kind == "I" ? UpdateKind::kInsert : UpdateKind::kDelete;
    u.src = static_cast<NodeId>(src);
    u.dst = static_cast<NodeId>(dst);
    u.label = g.schema()->InternLabel(label);
    batch.updates.push_back(u);
  }
  return batch;
}

void JsonEscape(const std::string& s, std::ostream* os) {
  for (char c : s) {
    switch (c) {
      case '"':
        *os << "\\\"";
        break;
      case '\\':
        *os << "\\\\";
        break;
      case '\n':
        *os << "\\n";
        break;
      case '\t':
        *os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *os << buf;
        } else {
          *os << c;
        }
    }
  }
}

/// Partial-result shape of a (possibly deadline-bounded) detection run.
void WriteRunInfo(const DetectRunInfo& info, std::ostream* os) {
  size_t completed = 0;
  for (char c : info.rule_completed) completed += c != 0 ? 1 : 0;
  *os << "  \"truncated\": " << (info.truncated ? "true" : "false") << ",\n";
  *os << "  \"rules_completed\": " << completed << ",\n";
}

/// One violation as a JSON object: rule name plus the h(x̄) assignment
/// keyed by pattern variable.
void WriteViolation(const Violation& v, const NgdSet& sigma,
                    std::ostream* os, const char* indent) {
  const Ngd& ngd = sigma[v.ngd_index];
  *os << indent << "{\"rule\": \"";
  JsonEscape(ngd.name(), os);
  *os << "\", \"nodes\": {";
  const auto& nodes = ngd.pattern().nodes();
  for (size_t i = 0; i < v.nodes.size(); ++i) {
    if (i > 0) *os << ", ";
    *os << '"';
    JsonEscape(nodes[i].var, os);
    *os << "\": " << v.nodes[i];
  }
  *os << "}}";
}

void WriteVioArray(const VioSet& vio, const NgdSet& sigma,
                   std::ostream* os) {
  *os << "[";
  bool first = true;
  // Stream through the cursor instead of materializing Sorted(): same
  // (rule, nodes) order, but one Violation resident at a time — and the
  // only whole-set read that works on a spilled set.
  StatusOr<VioCursor> cursor = vio.OpenCursor();
  if (cursor.ok()) {
    Violation v;
    while (cursor->Next(&v)) {
      *os << (first ? "\n" : ",\n");
      first = false;
      WriteViolation(v, sigma, os, "    ");
    }
  }
  *os << (first ? "]" : "\n  ]");
}

int Run(const Options& opts) {
  SchemaPtr schema = Schema::Create();

  // Graph input: binary snapshot (by magic) or TSV. A snapshot loads
  // O(sections) into the CSR backend the batch engines match against;
  // the live overlay Graph every engine needs for schema/stats (and the
  // incremental path mutates) is materialized from it.
  std::unique_ptr<GraphSnapshot> loaded_snapshot;
  std::unique_ptr<Graph> owned_graph;
  RecoverResult recovery;
  const bool is_snapshot_input =
      !opts.recover && SniffSnapshotFile(opts.graph_path);
  if (opts.recover) {
    // --graph names the latest-good snapshot here (missing = empty base);
    // the journal suffix at --wal is replayed on top.
    auto rec = RecoverState(opts.graph_path, opts.wal_path, schema);
    if (!rec.ok()) return FailWith("recovering state", rec.status());
    recovery = std::move(*rec);
    owned_graph = std::move(recovery.graph);
  } else if (is_snapshot_input) {
    auto snap = LoadSnapshotFile(opts.graph_path, schema);
    if (!snap.ok()) {
      return FailWith("loading " + opts.graph_path, snap.status());
    }
    loaded_snapshot = std::move(snap).value();
    auto materialized = MaterializeGraph(*loaded_snapshot);
    if (!materialized.ok()) {
      return FailWith("materializing " + opts.graph_path,
                      materialized.status());
    }
    owned_graph = std::move(materialized).value();
  } else {
    IngestOptions ingest;
    ingest.threads = opts.threads;
    auto graph = LoadGraphFile(opts.graph_path, schema, ingest);
    if (!graph.ok()) {
      return FailWith("loading " + opts.graph_path, graph.status());
    }
    owned_graph = std::move(graph).value();
  }
  Graph& g = *owned_graph;

  // Built lazily for --save-snapshot on a TSV input; kept alive so batch
  // detection below reuses it instead of rebuilding an identical CSR.
  std::unique_ptr<GraphSnapshot> built_snapshot;
  if (!opts.save_snapshot_path.empty()) {
    Status saved;
    if (loaded_snapshot != nullptr &&
        loaded_snapshot->view() == GraphView::kNew) {
      saved = SaveSnapshotFile(*loaded_snapshot, opts.save_snapshot_path);
    } else {
      built_snapshot = std::make_unique<GraphSnapshot>(g, GraphView::kNew);
      saved = SaveSnapshotFile(*built_snapshot, opts.save_snapshot_path);
    }
    if (!saved.ok()) return FailWith("saving snapshot", saved);
    if (opts.rules_path.empty()) {
      std::ostream& os = std::cout;
      os << "{\n";
      os << "  \"graph\": \"";
      JsonEscape(opts.graph_path, &os);
      os << "\",\n";
      os << "  \"snapshot_saved\": \"";
      JsonEscape(opts.save_snapshot_path, &os);
      os << "\",\n";
      os << "  \"nodes\": " << g.NumNodes() << ",\n";
      os << "  \"edges\": " << g.NumEdges(GraphView::kNew) << "\n";
      os << "}\n";
      return 0;
    }
  }

  auto rules_text = ReadFile(opts.rules_path);
  if (!rules_text.ok()) {
    return FailWith("reading rules", rules_text.status());
  }
  auto sigma = ParseNgds(*rules_text, schema);
  if (!sigma.ok()) {
    return FailWith("parsing " + opts.rules_path, sigma.status());
  }

  std::ostream& os = std::cout;
  os << "{\n";
  os << "  \"graph\": \"";
  JsonEscape(opts.graph_path, &os);
  os << "\",\n";
  os << "  \"graph_format\": \""
     << (is_snapshot_input ? "snapshot" : "tsv") << "\",\n";
  os << "  \"nodes\": " << g.NumNodes() << ",\n";
  os << "  \"edges\": " << g.NumEdges(GraphView::kNew) << ",\n";
  os << "  \"rules\": " << sigma->size() << ",\n";
  os << "  \"mode\": \"" << opts.mode
     << (opts.parallel > 0 ? "-parallel" : "") << "\",\n";
  if (opts.recover) {
    os << "  \"recovery\": {\"snapshot_loaded\": "
       << (recovery.snapshot_loaded ? "true" : "false")
       << ", \"last_epoch\": " << recovery.last_epoch
       << ", \"replayed_records\": " << recovery.replayed_records
       << ", \"truncated_bytes\": " << recovery.truncated_bytes << "},\n";
  }

  // Σ-optimizer: minimize up front (rather than per engine call via
  // DectOptions::minimize_sigma) so the report is visible in the JSON,
  // then run detection on the kept rules — their names are preserved, so
  // the violation output below needs no remapping. Incremental mode
  // validates the FULL catalog first, exactly as the engine wiring does:
  // an optimization flag must never flip a rejected rules file into an
  // accepted run just because the offending rule happened to be implied.
  if (opts.minimize_sigma) {
    if (opts.mode == "incremental") {
      Status valid = ValidateForIncremental(*sigma);
      if (!valid.ok()) return FailWith("validating rules", valid);
    }
    WallTimer opt_timer;
    MinimizedSigma m = MinimizeSigma(*sigma, schema);
    os << "  \"sigma_optimizer\": {\n";
    // Structural catalog identity: equal values across runs mean the
    // kept-set cache would have served this Σ without re-solving.
    os << "    \"sigma_fingerprint\": \"" << std::hex
       << FingerprintSigma(*sigma, schema) << std::dec << "\",\n";
    os << "    \"rules_before\": " << sigma->size() << ",\n";
    os << "    \"rules_kept\": " << m.report.kept.size() << ",\n";
    os << "    \"dropped\": [";
    for (size_t i = 0; i < m.report.dropped.size(); ++i) {
      os << (i > 0 ? ", " : "") << '"';
      JsonEscape((*sigma)[static_cast<size_t>(m.report.dropped[i])].name(),
                 &os);
      os << '"';
    }
    os << "],\n";
    os << "    \"duplicate_drops\": " << m.report.duplicate_drops << ",\n";
    os << "    \"implication_checks\": " << m.report.implication_checks
       << ",\n";
    os << "    \"unknown_checks\": " << m.report.unknown << ",\n";
    os << "    \"prefilter_skips\": " << m.report.prefilter_skips << ",\n";
    os << "    \"solver_seconds\": " << m.report.solver_seconds << ",\n";
    os << "    \"elapsed_seconds\": " << opt_timer.ElapsedSeconds() << "\n";
    os << "  },\n";
    *sigma = std::move(m.sigma);
  }

  bool dirty = false;
  // Deadline-bounded detection: engines stop expanding when the budget
  // expires and report the partial-result shape through run_info.
  const Deadline deadline = opts.deadline_ms > 0
                                ? Deadline::After(opts.deadline_ms)
                                : Deadline();
  DetectRunInfo run_info;
  WallTimer timer;
  if (opts.mode == "batch") {
    // A loaded (or just-saved) kNew snapshot IS the batch search
    // backend — no rebuild.
    const GraphSnapshot* prebuilt =
        loaded_snapshot != nullptr &&
                loaded_snapshot->view() == GraphView::kNew
            ? loaded_snapshot.get()
            : built_snapshot.get();
    VioSet vio;
    if (opts.parallel > 0) {
      PDectOptions popts;
      popts.num_processors = opts.parallel;
      popts.snapshot = prebuilt;
      popts.deadline = deadline;
      popts.run_info = &run_info;
      vio = PDect(g, *sigma, popts).vio;
    } else {
      DectOptions dopts;
      dopts.max_violations_per_ngd = opts.max_violations;
      dopts.snapshot = prebuilt;
      dopts.deadline = deadline;
      dopts.run_info = &run_info;
      vio = Dect(g, *sigma, dopts);
    }
    double elapsed = timer.ElapsedSeconds();
    dirty = !vio.empty();
    os << "  \"violation_count\": " << vio.size() << ",\n";
    os << "  \"violations\": ";
    WriteVioArray(vio, *sigma, &os);
    os << ",\n";
    WriteRunInfo(run_info, &os);
    os << "  \"elapsed_seconds\": " << elapsed << "\n";
  } else {
    auto batch = ReadUpdateFile(opts.updates_path, g);
    if (!batch.ok()) {
      return FailWith("reading updates", batch.status());
    }
    Status applied = ApplyUpdateBatch(&g, &*batch);
    if (!applied.ok()) return FailWith("applying updates", applied);
    // Crash-safe epoch: journal the (effective) batch before detection,
    // following the mutate → Append+Sync → commit protocol of
    // graph/update_log.h. A crash from here on loses no updates.
    uint64_t journaled_epoch = 0;
    if (!opts.wal_path.empty()) {
      auto wal = UpdateLog::Open(opts.wal_path);
      if (!wal.ok()) {
        return FailWith("opening journal " + opts.wal_path, wal.status());
      }
      // ngdcheck updates never create nodes, so the epoch's first new
      // node id is just NumNodes().
      journaled_epoch = (*wal)->last_epoch() + 1;
      const EpochRecord rec = EpochRecord::Capture(
          g, *batch, static_cast<NodeId>(g.NumNodes()), journaled_epoch);
      Status journaled = (*wal)->Append(rec);
      if (journaled.ok()) journaled = (*wal)->Sync();
      if (!journaled.ok()) {
        return FailWith("journaling to " + opts.wal_path, journaled);
      }
      os << "  \"journal\": {\"path\": \"";
      JsonEscape(opts.wal_path, &os);
      os << "\", \"epoch\": " << journaled_epoch << "},\n";
    }
    // Time only the detection itself, matching batch mode (update-file
    // IO, journaling and overlay application are setup, not IncDect
    // work).
    timer.Restart();
    // A loaded snapshot is exactly the pre-update graph (ΔG was applied
    // as the overlay on the materialized copy), so it serves as the
    // DeltaView base the incremental engines never have to rebuild.
    DeltaVio delta;
    if (opts.parallel > 0) {
      PIncDectOptions popts;
      popts.num_processors = opts.parallel;
      popts.base_snapshot = loaded_snapshot != nullptr
                                ? loaded_snapshot.get()
                                : built_snapshot.get();
      popts.deadline = deadline;
      popts.run_info = &run_info;
      auto result = PIncDect(g, *sigma, *batch, popts);
      if (!result.ok()) {
        return FailWith("incremental detection", result.status());
      }
      delta = std::move(result->delta);
    } else {
      IncDectOptions iopts;
      iopts.base_snapshot = loaded_snapshot != nullptr
                                ? loaded_snapshot.get()
                                : built_snapshot.get();
      iopts.deadline = deadline;
      iopts.run_info = &run_info;
      auto result = IncDect(g, *sigma, *batch, iopts);
      if (!result.ok()) {
        return FailWith("incremental detection", result.status());
      }
      delta = std::move(*result);
    }
    double elapsed = timer.ElapsedSeconds();
    dirty = !delta.added.empty();
    os << "  \"updates\": " << batch->size() << ",\n";
    os << "  \"added_count\": " << delta.added.size() << ",\n";
    os << "  \"removed_count\": " << delta.removed.size() << ",\n";
    os << "  \"added\": ";
    WriteVioArray(delta.added, *sigma, &os);
    os << ",\n";
    os << "  \"removed\": ";
    WriteVioArray(delta.removed, *sigma, &os);
    os << ",\n";
    WriteRunInfo(run_info, &os);
    os << "  \"elapsed_seconds\": " << elapsed << "\n";
  }
  os << "}\n";

  if (opts.fail_on_violations && dirty) return 2;
  return 0;
}

}  // namespace
}  // namespace ngd

int main(int argc, char** argv) {
  ngd::Options opts;
  std::string error;
  if (!ngd::ParseArgs(argc, argv, &opts, &error)) {
    std::cerr << "ngdcheck: " << error << "\n\n" << ngd::kUsage;
    return 1;
  }
  return ngd::Run(opts);
}
