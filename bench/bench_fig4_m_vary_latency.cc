// Fig. 4(m): impact of the cost-model latency constant C on PIncDect and
// PIncDect_nb (Exp-4), Pokec-like graph, p = 4, |ΔG| = 15%.
//
// Paper: C from 20 to 100 in steps of 20; PIncDect is best at a
// mid-range C (80 on their cluster) — small C over-splits (communication
// dominates), large C under-splits (stragglers run sequentially). The
// shape to reproduce is the U-curve / split-count monotonicity.

#include "bench_common.h"

namespace {

using ngd::bench::CachedWorkload;
using ngd::bench::MakeBatch;
using ngd::bench::RegisterTimed;
using ngd::bench::RunPIncDect;
using ngd::bench::TimingStore;
using ngd::bench::Workload;
using ngd::bench::WorkloadSpec;

constexpr double kLatencies[] = {20, 40, 60, 80, 100};
constexpr double kFraction = 0.15;

WorkloadSpec Spec() {
  WorkloadSpec spec;
  // Pokec-like: heavy-tailed degrees make splitting decisions matter.
  spec.graph_config = ngd::PokecLikeConfig(1.0 / 400);
  spec.num_rules = 20;
  spec.max_diameter = 3;
  return spec;
}

std::string Key(const char* algo, double c) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "Fig4m/pokec-like/%s/C=%d", algo,
                static_cast<int>(c));
  return buf;
}

uint64_t g_splits_at_c20 = 0;
uint64_t g_splits_at_c100 = 0;

void RegisterAll() {
  for (double c : kLatencies) {
    for (bool balance : {true, false}) {
      const char* algo = balance ? "PIncDect" : "PIncDect_nb";
      RegisterTimed(Key(algo, c), [c, balance]() {
        Workload& w = CachedWorkload("pokec", Spec());
        ngd::UpdateBatch batch = MakeBatch(w.graph.get(), kFraction, 66);
        if (!ngd::ApplyUpdateBatch(w.graph.get(), &batch).ok()) std::abort();
        ngd::PIncDectOptions opts;
        opts.num_processors = 4;
        opts.latency_c = c;
        opts.enable_balance = balance;
        opts.balance_interval_ms = 5;
        ngd::PIncDectResult result;
        double s = RunPIncDect(w, batch, opts, &result);
        if (balance && c == 20) g_splits_at_c20 = result.splits;
        if (balance && c == 100) g_splits_at_c100 = result.splits;
        w.graph->Rollback();
        return s;
      });
    }
  }
}

void PrintShapeCheck() {
  TimingStore& store = TimingStore::Instance();
  std::printf("\n=== SHAPE CHECK vs paper Fig 4(m) ===\n");
  double best_c = -1, best_t = 1e18;
  for (double c : kLatencies) {
    double t = store.Get(Key("PIncDect", c));
    if (t > 0 && t < best_t) {
      best_t = t;
      best_c = c;
    }
  }
  std::printf("  best C on this host: %.0f (paper: 80 on their cluster)\n",
              best_c);
  std::printf("  splits at C=20: %llu, at C=100: %llu  (smaller C => more "
              "splitting) -> %s\n",
              static_cast<unsigned long long>(g_splits_at_c20),
              static_cast<unsigned long long>(g_splits_at_c100),
              g_splits_at_c20 >= g_splits_at_c100 ? "REPRODUCED"
                                                  : "NOT reproduced");
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  PrintShapeCheck();
  return 0;
}
