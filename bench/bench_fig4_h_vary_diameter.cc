// Fig. 4(h): impact of pattern diameter d_Σ (Exp-3), DBpedia-like graph,
// ||Σ|| fixed, |ΔG| = 15%.
//
// Paper: d_Σ from 2 to 6; all algorithms take longer with larger d_Σ
// (the d_Σ-neighborhood explored by incremental detection grows), yet
// PIncDect stays feasible.

#include "bench_common.h"

namespace {

using ngd::bench::CachedWorkload;
using ngd::bench::MakeBatch;
using ngd::bench::RegisterTimed;
using ngd::bench::RunDect;
using ngd::bench::RunIncDect;
using ngd::bench::RunPIncDect;
using ngd::bench::TimingStore;
using ngd::bench::VariantOptions;
using ngd::bench::Workload;
using ngd::bench::WorkloadSpec;

constexpr int kDiameters[] = {2, 3, 4, 5, 6};
constexpr double kFraction = 0.15;

WorkloadSpec SpecFor(int diameter) {
  WorkloadSpec spec;
  spec.graph_config = ngd::DBpediaLikeConfig(1.0 / 1000);
  spec.num_rules = 10;
  spec.max_diameter = diameter;
  spec.rule_seed = 60 + static_cast<uint64_t>(diameter);
  return spec;
}

std::string Key(const char* algo, int diameter) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "Fig4h/dbpedia-like/%s/dSigma=%d", algo,
                diameter);
  return buf;
}

void RegisterAll() {
  for (int d : kDiameters) {
    std::string cache_key = "d" + std::to_string(d);
    auto with_batch = [d, cache_key](auto run) {
      return [d, cache_key, run]() {
        Workload& w = CachedWorkload(cache_key, SpecFor(d));
        ngd::UpdateBatch batch = MakeBatch(w.graph.get(), kFraction, 99);
        if (!ngd::ApplyUpdateBatch(w.graph.get(), &batch).ok()) std::abort();
        double s = run(w, batch);
        w.graph->Rollback();
        return s;
      };
    };
    RegisterTimed(Key("Dect", d),
                  with_batch([](Workload& w, const ngd::UpdateBatch&) {
                    return RunDect(w);
                  }));
    RegisterTimed(Key("IncDect", d),
                  with_batch([](Workload& w, const ngd::UpdateBatch& b) {
                    return RunIncDect(w, b);
                  }));
    RegisterTimed(Key("PIncDect", d),
                  with_batch([](Workload& w, const ngd::UpdateBatch& b) {
                    return RunPIncDect(w, b, VariantOptions("PIncDect", 4));
                  }));
  }
}

void PrintShapeCheck() {
  TimingStore& store = TimingStore::Instance();
  std::printf("\n=== SHAPE CHECK vs paper Fig 4(h) ===\n");
  double growth = store.Speedup(Key("IncDect", 6), Key("IncDect", 2));
  std::printf("  IncDect time grows %.2fx from dSigma=2 to dSigma=6\n",
              growth);
  std::printf("  paper shape: cost increases with dSigma -> %s\n",
              growth > 1.0 ? "REPRODUCED" : "NOT reproduced");
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  PrintShapeCheck();
  return 0;
}
