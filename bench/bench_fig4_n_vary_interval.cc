// Fig. 4(n): impact of the balancing interval intvl on PIncDect and
// PIncDect_ns (Exp-4), YAGO2-like graph, p = 4, C = 60, |ΔG| = 15%.
//
// Paper: intvl from 15s to 65s at cluster scale (ms here, DESIGN.md §3);
// best at the middle (45), since too-frequent balancing pays
// communication and too-rare balancing leaves processors skewed.

#include "bench_common.h"

namespace {

using ngd::bench::CachedWorkload;
using ngd::bench::MakeBatch;
using ngd::bench::RegisterTimed;
using ngd::bench::RunPIncDect;
using ngd::bench::TimingStore;
using ngd::bench::Workload;
using ngd::bench::WorkloadSpec;

constexpr int kIntervalsMs[] = {2, 5, 15, 30, 65};
constexpr double kFraction = 0.15;

WorkloadSpec Spec() {
  WorkloadSpec spec;
  spec.graph_config = ngd::Yago2LikeConfig(1.0 / 200);
  spec.num_rules = 20;
  spec.max_diameter = 3;
  return spec;
}

std::string Key(const char* algo, int intvl) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "Fig4n/yago2-like/%s/intvl=%dms", algo,
                intvl);
  return buf;
}

void RegisterAll() {
  for (int intvl : kIntervalsMs) {
    for (bool split : {true, false}) {
      const char* algo = split ? "PIncDect" : "PIncDect_ns";
      RegisterTimed(Key(algo, intvl), [intvl, split]() {
        Workload& w = CachedWorkload("yago", Spec());
        ngd::UpdateBatch batch = MakeBatch(w.graph.get(), kFraction, 44);
        if (!ngd::ApplyUpdateBatch(w.graph.get(), &batch).ok()) std::abort();
        ngd::PIncDectOptions opts;
        opts.num_processors = 4;
        opts.latency_c = 60;
        opts.enable_split = split;
        opts.balance_interval_ms = intvl;
        double s = RunPIncDect(w, batch, opts);
        w.graph->Rollback();
        return s;
      });
    }
  }
}

void PrintShapeCheck() {
  TimingStore& store = TimingStore::Instance();
  std::printf("\n=== SHAPE CHECK vs paper Fig 4(n) ===\n");
  double best_i = -1, best_t = 1e18;
  for (int intvl : kIntervalsMs) {
    double t = store.Get(Key("PIncDect", intvl));
    if (t > 0 && t < best_t) {
      best_t = t;
      best_i = intvl;
    }
  }
  std::printf("  best intvl on this host: %.0f ms (paper: 45 s at cluster "
              "scale; the curve bottoms in the middle)\n",
              best_i);
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  PrintShapeCheck();
  return 0;
}
