// Fig. 4(f)/(g): impact of ||Σ|| on DBpedia-like and YAGO2-like graphs
// (Exp-3), |ΔG| fixed at 15%.
//
// Paper: ||Σ|| from 50 to 100 (50→100 here scaled 50→100 × 1/5 = 10→20
// rules; their industry collaborator uses ≤95 rules). Shape: all
// algorithms take longer with more NGDs; IncDect/PIncDect scale well
// (roughly linearly) with ||Σ||.

#include "bench_common.h"

namespace {

using ngd::bench::CachedWorkload;
using ngd::bench::MakeBatch;
using ngd::bench::RegisterTimed;
using ngd::bench::RunDect;
using ngd::bench::RunIncDect;
using ngd::bench::RunPDect;
using ngd::bench::RunPIncDect;
using ngd::bench::TimingStore;
using ngd::bench::VariantOptions;
using ngd::bench::Workload;
using ngd::bench::WorkloadSpec;

constexpr size_t kRuleCounts[] = {10, 12, 14, 16, 18, 20};  // 50..100 / 5
constexpr double kFraction = 0.15;

struct GraphCase {
  const char* name;
  char panel;
};
const GraphCase kGraphs[] = {{"dbpedia-like", 'f'}, {"yago2-like", 'g'}};

WorkloadSpec SpecFor(const std::string& name, size_t rules) {
  WorkloadSpec spec;
  spec.graph_config = name == "dbpedia-like"
                          ? ngd::DBpediaLikeConfig(1.0 / 1000)
                          : ngd::Yago2LikeConfig(1.0 / 500);
  spec.num_rules = rules;
  spec.max_diameter = 3;
  return spec;
}

std::string Key(const GraphCase& gc, const char* algo, size_t rules) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "Fig4%c/%s/%s/rules=%zu", gc.panel,
                gc.name, algo, rules);
  return buf;
}

void RegisterAll() {
  for (const GraphCase& gc : kGraphs) {
    for (size_t rules : kRuleCounts) {
      std::string cache_key = std::string(gc.name) + std::to_string(rules);
      auto with_batch = [gc, rules, cache_key](auto run) {
        return [gc, rules, cache_key, run]() {
          Workload& w = CachedWorkload(cache_key, SpecFor(gc.name, rules));
          ngd::UpdateBatch batch = MakeBatch(w.graph.get(), kFraction, 88);
          if (!ngd::ApplyUpdateBatch(w.graph.get(), &batch).ok()) {
            std::abort();
          }
          double s = run(w, batch);
          w.graph->Rollback();
          return s;
        };
      };
      RegisterTimed(Key(gc, "Dect", rules),
                    with_batch([](Workload& w, const ngd::UpdateBatch&) {
                      return RunDect(w);
                    }));
      RegisterTimed(Key(gc, "IncDect", rules),
                    with_batch([](Workload& w, const ngd::UpdateBatch& b) {
                      return RunIncDect(w, b);
                    }));
      RegisterTimed(Key(gc, "PIncDect", rules),
                    with_batch([](Workload& w, const ngd::UpdateBatch& b) {
                      return RunPIncDect(w, b,
                                         VariantOptions("PIncDect", 4));
                    }));
    }
  }
}

void PrintShapeCheck() {
  TimingStore& store = TimingStore::Instance();
  std::printf("\n=== SHAPE CHECK vs paper Fig 4(f)/(g) ===\n");
  for (const GraphCase& gc : kGraphs) {
    double growth = store.Speedup(Key(gc, "IncDect", 20),
                                  Key(gc, "IncDect", 10));
    std::printf("  [%s] IncDect time grows %.2fx as ||Sigma|| doubles "
                "(paper shape: scales well, near-linear)\n",
                gc.name, growth);
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  PrintShapeCheck();
  return 0;
}
