// Fig. 4(e): scalability with |G| on Synthetic graphs (Exp-2).
//
// Paper: |G| from (10M, 20M) to (80M, 100M) nodes/edges with |ΔG| fixed
// at 15%. Here the same sweep at 1/1000 scale. Shape to reproduce: all
// algorithms take longer on larger G; incremental algorithms are much
// LESS sensitive to |G| than their batch counterparts.

#include "bench_common.h"

namespace {

using ngd::bench::CachedWorkload;
using ngd::bench::MakeBatch;
using ngd::bench::RegisterTimed;
using ngd::bench::RunDect;
using ngd::bench::RunIncDect;
using ngd::bench::RunPDect;
using ngd::bench::RunPIncDect;
using ngd::bench::TimingStore;
using ngd::bench::VariantOptions;
using ngd::bench::Workload;
using ngd::bench::WorkloadSpec;

struct SizeCase {
  const char* name;
  size_t nodes;
  size_t edges;
};

// (10M,20M) ... (80M,100M) at 1/1000.
const SizeCase kSizes[] = {
    {"10k_20k", 10000, 20000},
    {"20k_40k", 20000, 40000},
    {"30k_60k", 30000, 60000},
    {"60k_80k", 60000, 80000},
    {"80k_100k", 80000, 100000},
};

constexpr double kFraction = 0.15;

std::string Key(const SizeCase& sc, const char* algo) {
  return std::string("Fig4e/G=") + sc.name + "/" + algo;
}

WorkloadSpec SpecFor(const SizeCase& sc) {
  WorkloadSpec spec;
  spec.graph_config = ngd::SyntheticConfig(sc.nodes, sc.edges);
  spec.num_rules = 15;
  spec.max_diameter = 3;
  return spec;
}

void RegisterAll() {
  for (const SizeCase& sc : kSizes) {
    auto with_batch = [sc](auto run) {
      return [sc, run]() {
        Workload& w = CachedWorkload(sc.name, SpecFor(sc));
        ngd::UpdateBatch batch = MakeBatch(w.graph.get(), kFraction, 77);
        if (!ngd::ApplyUpdateBatch(w.graph.get(), &batch).ok()) std::abort();
        double s = run(w, batch);
        w.graph->Rollback();
        return s;
      };
    };
    RegisterTimed(Key(sc, "Dect"),
                  with_batch([](Workload& w, const ngd::UpdateBatch&) {
                    return RunDect(w);
                  }));
    RegisterTimed(Key(sc, "IncDect"),
                  with_batch([](Workload& w, const ngd::UpdateBatch& b) {
                    return RunIncDect(w, b);
                  }));
    RegisterTimed(Key(sc, "PDect"),
                  with_batch([](Workload& w, const ngd::UpdateBatch&) {
                    return RunPDect(w, 4);
                  }));
    RegisterTimed(Key(sc, "PIncDect"),
                  with_batch([](Workload& w, const ngd::UpdateBatch& b) {
                    return RunPIncDect(w, b, VariantOptions("PIncDect", 4));
                  }));
  }
}

void PrintShapeCheck() {
  TimingStore& store = TimingStore::Instance();
  std::printf("\n=== SHAPE CHECK vs paper Fig 4(e) ===\n");
  const SizeCase& small = kSizes[0];
  const SizeCase& large = kSizes[4];
  double dect_growth = store.Speedup(Key(large, "Dect"), Key(small, "Dect"));
  double inc_growth =
      store.Speedup(Key(large, "IncDect"), Key(small, "IncDect"));
  // Speedup(large, small) = t_large / t_small = growth factor.
  std::printf("  Dect time grows %.1fx from %s to %s\n", dect_growth,
              small.name, large.name);
  std::printf("  IncDect time grows %.1fx over the same range\n", inc_growth);
  std::printf("  paper shape: incremental grows slower than batch -> %s\n",
              inc_growth < dect_growth ? "REPRODUCED" : "NOT reproduced");
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  PrintShapeCheck();
  return 0;
}
