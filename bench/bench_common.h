// Shared harness for the Fig. 4 reproduction benches.
//
// Every bench binary is a google-benchmark executable. Workloads are
// cached per configuration (building a graph once, reusing it across
// algorithm series); update batches are applied as the pending overlay
// and rolled back after each measurement so runs stay independent. A
// TimingStore collects the measured seconds so each binary can print a
// SHAPE-CHECK summary (who wins, by what factor, where crossovers fall)
// after RunSpecifiedBenchmarks — the quantity the paper's figures convey.
//
// Scale: the paper runs minutes-long jobs on a 20-machine cluster over
// graphs of 10⁷–10⁸ edges; these benches use the same generators at
// ~1/500 scale so the full suite completes in minutes on a laptop.
// EXPERIMENTS.md (repo root) records the scale mapping and the BENCH
// JSON workflow (tools/ngdbench emits BENCH_detect.json; CI uploads it
// as an artifact every push).

#ifndef NGD_BENCH_BENCH_COMMON_H_
#define NGD_BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <memory>
#include <string>

#include "detect/dect.h"
#include "detect/inc_dect.h"
#include "discovery/ngd_generator.h"
#include "graph/generators.h"
#include "graph/updates.h"
#include "parallel/pdect.h"
#include "parallel/pinc_dect.h"
#include "util/timer.h"

namespace ngd {
namespace bench {

struct Workload {
  SchemaPtr schema;
  std::unique_ptr<Graph> graph;
  NgdSet sigma;
};

struct WorkloadSpec {
  GraphGenConfig graph_config;
  size_t num_rules = 20;
  int max_diameter = 3;
  uint64_t rule_seed = 5;
  double violation_rate = 0.15;
  /// Wildcard density in generated patterns. The paper's rules carry
  /// generic-entity wildcards (φ1's x:_); wildcards make batch matching
  /// expensive (no selective start) while update-driven incremental
  /// search stays local — the regime Fig 4(a)-(d) measures.
  double wildcard_prob = 0.35;
};

inline Workload BuildWorkload(const WorkloadSpec& spec) {
  Workload w;
  w.schema = Schema::Create();
  w.graph = GenerateGraph(spec.graph_config, w.schema);
  NgdGenOptions gen;
  gen.count = spec.num_rules;
  gen.max_diameter = spec.max_diameter;
  gen.seed = spec.rule_seed;
  gen.violation_rate = spec.violation_rate;
  gen.wildcard_prob = spec.wildcard_prob;
  w.sigma = GenerateNgdSet(*w.graph, gen);
  return w;
}

/// Cache: workloads are expensive to build; benches reuse them by key.
inline Workload& CachedWorkload(const std::string& key,
                                const WorkloadSpec& spec) {
  static std::map<std::string, Workload>* cache =
      new std::map<std::string, Workload>();
  auto it = cache->find(key);
  if (it == cache->end()) {
    it = cache->emplace(key, BuildWorkload(spec)).first;
  }
  return it->second;
}

/// Update batches never create nodes in benches, so Rollback() restores
/// the workload exactly.
inline UpdateBatch MakeBatch(Graph* g, double fraction, uint64_t seed) {
  UpdateGenOptions up;
  up.fraction = fraction;
  up.insert_fraction = 0.5;  // γ = 1, |G| unchanged (paper default)
  up.new_node_prob = 0.0;
  up.seed = seed;
  return GenerateUpdateBatch(g, up);
}

// ---- Algorithm runners (return elapsed seconds; overlay left applied) ----

/// The default kAuto lets the cost model pick the engine (what callers
/// get in production); kAlways/kNever pin the CSR snapshot or the
/// live-overlay baseline so benches can compare the two.
inline double RunDect(Workload& w,
                      SnapshotMode mode = SnapshotMode::kAuto) {
  WallTimer t;
  VioSet vio =
      Dect(*w.graph, w.sigma, DectOptions{GraphView::kNew, 0, mode});
  ::benchmark::DoNotOptimize(vio.size());
  return t.ElapsedSeconds();
}

/// The live-overlay baseline (prefilter off): the pre-DeltaView engine,
/// kept so the IncDect series keeps its PR-2 meaning and the _dv series
/// measures the DeltaView against it.
inline IncDectOptions LiveIncOptions() {
  IncDectOptions opts;
  opts.snapshot_mode = SnapshotMode::kNever;
  opts.affected_area_prefilter = false;
  return opts;
}

/// DeltaView over a base snapshot the caller maintains across batches
/// (the production shape — the snapshot build is amortized, not paid per
/// IncDect call, so it stays outside the timed region).
inline IncDectOptions DeltaViewIncOptions(const GraphSnapshot& base) {
  IncDectOptions opts;
  opts.snapshot_mode = SnapshotMode::kAlways;
  opts.base_snapshot = &base;
  return opts;
}

inline double RunIncDect(Workload& w, const UpdateBatch& batch,
                         const IncDectOptions& opts = LiveIncOptions()) {
  WallTimer t;
  auto delta = IncDect(*w.graph, w.sigma, batch, opts);
  if (!delta.ok()) {
    std::fprintf(stderr, "IncDect failed: %s\n",
                 delta.status().ToString().c_str());
    std::abort();
  }
  ::benchmark::DoNotOptimize(delta->added.size());
  return t.ElapsedSeconds();
}

/// Times fragment-native PDect. Pass a pre-built `runtime` (the amortized
/// per-epoch partition + fragment CSRs) to keep its construction out of
/// the timed region; `metrics` receives the run's ClusterMetrics.
inline double RunPDect(Workload& w, int processors,
                       const FragmentRuntime* runtime = nullptr,
                       ClusterMetricsSnapshot* metrics = nullptr) {
  PDectOptions opts;
  opts.num_processors = processors;
  opts.view = GraphView::kNew;
  opts.runtime = runtime;
  WallTimer t;
  PDectResult r = PDect(*w.graph, w.sigma, opts);
  ::benchmark::DoNotOptimize(r.vio.size());
  if (metrics != nullptr) *metrics = r.metrics;
  return t.ElapsedSeconds();
}

inline double RunPIncDect(Workload& w, const UpdateBatch& batch,
                          const PIncDectOptions& opts,
                          PIncDectResult* out = nullptr) {
  WallTimer t;
  auto r = PIncDect(*w.graph, w.sigma, batch, opts);
  if (!r.ok()) {
    std::fprintf(stderr, "PIncDect failed: %s\n",
                 r.status().ToString().c_str());
    std::abort();
  }
  double s = t.ElapsedSeconds();
  ::benchmark::DoNotOptimize(r->delta.added.size());
  if (out != nullptr) *out = std::move(r).value();
  return s;
}

inline PIncDectOptions VariantOptions(const std::string& variant,
                                      int processors) {
  PIncDectOptions opts;
  opts.num_processors = processors;
  opts.balance_interval_ms = 5;  // scaled intvl (DESIGN.md §3)
  // The Fig. 4 series keep their historical meaning: the live-overlay
  // engine without the affected-area prefilter. The `_dv` series opt in
  // to the DeltaView via DeltaViewVariantOptions.
  opts.snapshot_mode = SnapshotMode::kNever;
  opts.affected_area_prefilter = false;
  if (variant == "PIncDect_ns" || variant == "PIncDect_NO") {
    opts.enable_split = false;
  }
  if (variant == "PIncDect_nb" || variant == "PIncDect_NO") {
    opts.enable_balance = false;
  }
  return opts;
}

inline PIncDectOptions DeltaViewVariantOptions(const std::string& variant,
                                               int processors,
                                               const GraphSnapshot& base) {
  PIncDectOptions opts = VariantOptions(variant, processors);
  opts.snapshot_mode = SnapshotMode::kAlways;
  opts.base_snapshot = &base;
  opts.affected_area_prefilter = true;
  return opts;
}

// ---- Timing store for shape checks -----------------------------------------

class TimingStore {
 public:
  static TimingStore& Instance() {
    static TimingStore* store = new TimingStore();
    return *store;
  }

  void Record(const std::string& key, double seconds) {
    times_[key] = seconds;
  }
  double Get(const std::string& key) const {
    auto it = times_.find(key);
    return it == times_.end() ? -1.0 : it->second;
  }
  bool Has(const std::string& key) const { return times_.count(key) > 0; }

  /// Ratio a/b, or -1 when either is missing.
  double Speedup(const std::string& slow, const std::string& fast) const {
    double s = Get(slow), f = Get(fast);
    if (s <= 0 || f <= 0) return -1.0;
    return s / f;
  }

 private:
  std::map<std::string, double> times_;
};

/// Registers a single-iteration manual-time benchmark; `fn` returns
/// elapsed seconds and is also recorded into the TimingStore under `name`.
template <typename Fn>
void RegisterTimed(const std::string& name, Fn fn) {
  ::benchmark::RegisterBenchmark(
      name.c_str(),
      [name, fn](::benchmark::State& state) {
        for (auto _ : state) {
          double s = fn();
          state.SetIterationTime(s);
          TimingStore::Instance().Record(name, s);
        }
      })
      ->UseManualTime()
      ->Unit(::benchmark::kMillisecond)
      ->Iterations(1);
}

}  // namespace bench
}  // namespace ngd

#endif  // NGD_BENCH_BENCH_COMMON_H_
