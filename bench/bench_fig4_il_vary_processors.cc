// Fig. 4(i)–(l): parallel scalability with the number of processors p
// (Exp-4), |ΔG| = 15%, on all four graph families.
//
// Paper: p from 4 to 20 machines; PIncDect/PDect get ~3.7x faster from
// p=4 to p=20, PIncDect consistently beats PDect and the ablation
// variants. PDect here is the fragment-native engine: each p gets a
// pre-built FragmentRuntime (LDG partition + per-fragment CSRs + d_Σ-hop
// halos) cached OUTSIDE the timed region, the amortized per-epoch cost,
// so the curve times steady-state detection only. This host has 2
// physical cores: the wall-clock curve saturates beyond p=2 (documented
// in EXPERIMENTS.md), so the shape check reports both wall-clock and the
// work-distribution metrics that keep scaling (splits, balanced moves,
// cross-fragment messages).

#include <map>
#include <memory>

#include "bench_common.h"

namespace {

using ngd::bench::CachedWorkload;
using ngd::bench::MakeBatch;
using ngd::bench::RegisterTimed;
using ngd::bench::RunIncDect;
using ngd::bench::RunPDect;
using ngd::bench::RunPIncDect;
using ngd::bench::TimingStore;
using ngd::bench::VariantOptions;
using ngd::bench::Workload;
using ngd::bench::WorkloadSpec;

constexpr int kProcessors[] = {1, 2, 4, 8};
constexpr double kFraction = 0.15;

struct GraphCase {
  const char* name;
  char panel;
};
const GraphCase kGraphs[] = {
    {"dbpedia-like", 'i'},
    {"yago2-like", 'j'},
    {"pokec-like", 'k'},
    {"synthetic", 'l'},
};

WorkloadSpec SpecFor(const std::string& name) {
  WorkloadSpec spec;
  if (name == "dbpedia-like") {
    spec.graph_config = ngd::DBpediaLikeConfig(1.0 / 1000);
  } else if (name == "yago2-like") {
    spec.graph_config = ngd::Yago2LikeConfig(1.0 / 500);
  } else if (name == "pokec-like") {
    spec.graph_config = ngd::PokecLikeConfig(1.0 / 1000);
  } else {
    spec.graph_config = ngd::SyntheticConfig(12000, 18000);
  }
  spec.num_rules = 15;
  spec.max_diameter = 3;
  return spec;
}

std::string Key(const GraphCase& gc, const char* algo, int p) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "Fig4%c/%s/%s/p=%d", gc.panel, gc.name,
                algo, p);
  return buf;
}

// Per-(graph, p) FragmentRuntime, built once against the overlaid graph
// and reused across repetitions — the per-epoch cost a deployment
// amortizes, never part of the timed region.
const ngd::FragmentRuntime& CachedRuntime(const GraphCase& gc, Workload& w,
                                          int p) {
  static std::map<std::string, std::unique_ptr<ngd::FragmentRuntime>> cache;
  const std::string key = std::string(gc.name) + "/p=" + std::to_string(p);
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache
             .emplace(key, std::make_unique<ngd::FragmentRuntime>(
                               *w.graph, p, ngd::GraphView::kNew,
                               w.sigma.MaxDiameter()))
             .first;
  }
  return *it->second;
}

// Cross-fragment messages observed for the fragment PDect runs, keyed
// like TimingStore (metrics are counters, not seconds, so they live here).
std::map<std::string, uint64_t>& PDectMessages() {
  static std::map<std::string, uint64_t> m;
  return m;
}

void RegisterAll() {
  for (const GraphCase& gc : kGraphs) {
    // Sequential baseline for the relative-scalability statement.
    RegisterTimed(Key(gc, "IncDect", 1), [gc]() {
      Workload& w = CachedWorkload(gc.name, SpecFor(gc.name));
      ngd::UpdateBatch batch = MakeBatch(w.graph.get(), kFraction, 55);
      if (!ngd::ApplyUpdateBatch(w.graph.get(), &batch).ok()) std::abort();
      double s = RunIncDect(w, batch);
      w.graph->Rollback();
      return s;
    });
    for (int p : kProcessors) {
      auto with_batch = [gc](auto run) {
        return [gc, run]() {
          Workload& w = CachedWorkload(gc.name, SpecFor(gc.name));
          ngd::UpdateBatch batch = MakeBatch(w.graph.get(), kFraction, 55);
          if (!ngd::ApplyUpdateBatch(w.graph.get(), &batch).ok()) {
            std::abort();
          }
          double s = run(w, batch);
          w.graph->Rollback();
          return s;
        };
      };
      RegisterTimed(
          Key(gc, "PDect", p),
          with_batch([gc, p](Workload& w, const ngd::UpdateBatch&) {
            const ngd::FragmentRuntime& rt = CachedRuntime(gc, w, p);
            ngd::ClusterMetricsSnapshot metrics;
            double s = RunPDect(w, p, &rt, &metrics);
            PDectMessages()[Key(gc, "PDect", p)] = metrics.messages;
            return s;
          }));
      for (const char* variant :
           {"PIncDect", "PIncDect_ns", "PIncDect_nb", "PIncDect_NO"}) {
        RegisterTimed(
            Key(gc, variant, p),
            with_batch([p, variant](Workload& w, const ngd::UpdateBatch& b) {
              return RunPIncDect(w, b, VariantOptions(variant, p));
            }));
      }
    }
  }
}

void PrintShapeCheck() {
  TimingStore& store = TimingStore::Instance();
  std::printf("\n=== SHAPE CHECK vs paper Fig 4(i)-(l) ===\n");
  for (const GraphCase& gc : kGraphs) {
    double p1 = store.Get(Key(gc, "PIncDect", 1));
    double p2 = store.Get(Key(gc, "PIncDect", 2));
    double rel = store.Speedup(Key(gc, "IncDect", 1), Key(gc, "PIncDect", 2));
    std::printf("  [%s] PIncDect p=1->2: %.2fx; vs sequential IncDect at "
                "p=2: %.2fx (host has 2 cores; paper scales to 20 machines)\n",
                gc.name, p2 > 0 ? p1 / p2 : -1.0, rel);
    double d1 = store.Get(Key(gc, "PDect", 1));
    double d8 = store.Get(Key(gc, "PDect", 8));
    std::printf("  [%s] fragment PDect p=1->8: %.2fx wall clock; "
                "cross-fragment messages p=1: %llu, p=8: %llu\n",
                gc.name, d8 > 0 ? d1 / d8 : -1.0,
                static_cast<unsigned long long>(
                    PDectMessages()[Key(gc, "PDect", 1)]),
                static_cast<unsigned long long>(
                    PDectMessages()[Key(gc, "PDect", 8)]));
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  PrintShapeCheck();
  return 0;
}
