// Fig. 4(i)–(l): parallel scalability with the number of processors p
// (Exp-4), |ΔG| = 15%, on all four graph families.
//
// Paper: p from 4 to 20 machines; PIncDect/PDect get ~3.7x faster from
// p=4 to p=20, PIncDect consistently beats PDect and the ablation
// variants. This host has 2 physical cores: the wall-clock curve
// saturates beyond p=2 (documented in EXPERIMENTS.md), so the shape
// check reports both wall-clock and the work-distribution metrics that
// keep scaling (splits, balanced moves).

#include "bench_common.h"

namespace {

using ngd::bench::CachedWorkload;
using ngd::bench::MakeBatch;
using ngd::bench::RegisterTimed;
using ngd::bench::RunIncDect;
using ngd::bench::RunPDect;
using ngd::bench::RunPIncDect;
using ngd::bench::TimingStore;
using ngd::bench::VariantOptions;
using ngd::bench::Workload;
using ngd::bench::WorkloadSpec;

constexpr int kProcessors[] = {1, 2, 4, 8};
constexpr double kFraction = 0.15;

struct GraphCase {
  const char* name;
  char panel;
};
const GraphCase kGraphs[] = {
    {"dbpedia-like", 'i'},
    {"yago2-like", 'j'},
    {"pokec-like", 'k'},
    {"synthetic", 'l'},
};

WorkloadSpec SpecFor(const std::string& name) {
  WorkloadSpec spec;
  if (name == "dbpedia-like") {
    spec.graph_config = ngd::DBpediaLikeConfig(1.0 / 1000);
  } else if (name == "yago2-like") {
    spec.graph_config = ngd::Yago2LikeConfig(1.0 / 500);
  } else if (name == "pokec-like") {
    spec.graph_config = ngd::PokecLikeConfig(1.0 / 1000);
  } else {
    spec.graph_config = ngd::SyntheticConfig(12000, 18000);
  }
  spec.num_rules = 15;
  spec.max_diameter = 3;
  return spec;
}

std::string Key(const GraphCase& gc, const char* algo, int p) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "Fig4%c/%s/%s/p=%d", gc.panel, gc.name,
                algo, p);
  return buf;
}

void RegisterAll() {
  for (const GraphCase& gc : kGraphs) {
    // Sequential baseline for the relative-scalability statement.
    RegisterTimed(Key(gc, "IncDect", 1), [gc]() {
      Workload& w = CachedWorkload(gc.name, SpecFor(gc.name));
      ngd::UpdateBatch batch = MakeBatch(w.graph.get(), kFraction, 55);
      if (!ngd::ApplyUpdateBatch(w.graph.get(), &batch).ok()) std::abort();
      double s = RunIncDect(w, batch);
      w.graph->Rollback();
      return s;
    });
    for (int p : kProcessors) {
      auto with_batch = [gc](auto run) {
        return [gc, run]() {
          Workload& w = CachedWorkload(gc.name, SpecFor(gc.name));
          ngd::UpdateBatch batch = MakeBatch(w.graph.get(), kFraction, 55);
          if (!ngd::ApplyUpdateBatch(w.graph.get(), &batch).ok()) {
            std::abort();
          }
          double s = run(w, batch);
          w.graph->Rollback();
          return s;
        };
      };
      RegisterTimed(Key(gc, "PDect", p),
                    with_batch([p](Workload& w, const ngd::UpdateBatch&) {
                      return RunPDect(w, p);
                    }));
      for (const char* variant :
           {"PIncDect", "PIncDect_ns", "PIncDect_nb", "PIncDect_NO"}) {
        RegisterTimed(
            Key(gc, variant, p),
            with_batch([p, variant](Workload& w, const ngd::UpdateBatch& b) {
              return RunPIncDect(w, b, VariantOptions(variant, p));
            }));
      }
    }
  }
}

void PrintShapeCheck() {
  TimingStore& store = TimingStore::Instance();
  std::printf("\n=== SHAPE CHECK vs paper Fig 4(i)-(l) ===\n");
  for (const GraphCase& gc : kGraphs) {
    double p1 = store.Get(Key(gc, "PIncDect", 1));
    double p2 = store.Get(Key(gc, "PIncDect", 2));
    double rel = store.Speedup(Key(gc, "IncDect", 1), Key(gc, "PIncDect", 2));
    std::printf("  [%s] PIncDect p=1->2: %.2fx; vs sequential IncDect at "
                "p=2: %.2fx (host has 2 cores; paper scales to 20 machines)\n",
                gc.name, p2 > 0 ? p1 / p2 : -1.0, rel);
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  PrintShapeCheck();
  return 0;
}
