// Engine micro-benchmarks supporting two in-text claims and one
// engineering claim of this repo:
//
//   - Exp-1(f): "the additional cost of checking linear arithmetic
//     expressions is negligible" — matching with literal evaluation vs
//     pure pattern matching;
//   - §6.2: localizability — IncDect cost tracks the d_Σ-neighborhood of
//     the update, not |G|: a single-edge update is detected in
//     microseconds on graphs 8x apart in size;
//   - CSR GraphSnapshot (graph/snapshot.h): on a high-degree/wildcard
//     clean sweep — hub nodes fanning out across many edge labels,
//     all-wildcard patterns, rules that hold — snapshot-based Dect must
//     beat live-graph Dect by ≥ 1.5x (label-partitioned adjacency
//     touches only the matching label range instead of scanning whole
//     hub adjacency vectors). A Fig. 4-style generated workload is also
//     timed both ways for the violation-heavy regime, where result
//     materialization (identical in both engines) dominates;
//   - Σ-optimizer (reason/sigma_optimizer.h): on an inflated redundant
//     catalog (base rules + implied variants), Dect with
//     minimize_sigma = kAlways and a warm kept-set cache must beat the
//     full-catalog sweep by ≥ 1.5x — the micro-scale twin of ngdbench's
//     sigma_minimize series.

#include "bench_common.h"

#include "discovery/ngd_generator.h"
#include "reason/sigma_optimizer.h"
#include "util/rng.h"

namespace {

using ngd::bench::CachedWorkload;
using ngd::bench::RegisterTimed;
using ngd::bench::TimingStore;
using ngd::bench::Workload;
using ngd::bench::WorkloadSpec;

WorkloadSpec Spec(size_t nodes, size_t edges, double violation_rate) {
  WorkloadSpec spec;
  spec.graph_config = ngd::SyntheticConfig(nodes, edges);
  spec.num_rules = 10;
  spec.max_diameter = 3;
  spec.violation_rate = violation_rate;
  return spec;
}

// High-degree/wildcard clean sweep: label-rich hub nodes (the paper's
// synthetic graphs use |Γ| = 500 labels) sit in the middle of 2-hop
// all-wildcard patterns (x)-[feeds]->(y)-[e_r]->(z) whose Y literal holds
// on every match. Dect must scan everything to certify ~zero violations,
// so the run measures pure matching. The step matching z re-scans the
// bound hub's adjacency once per (x, y) prefix: the live engine walks the
// hub's whole 1500-entry adjacency vector each time, the snapshot binary-
// searches the hub's group list and touches only e_r's ~3-entry range.
Workload& HighDegreeWildcardWorkload() {
  static Workload* w = []() {
    auto* wl = new Workload();
    wl->schema = ngd::Schema::Create();
    wl->graph = std::make_unique<ngd::Graph>(wl->schema);
    ngd::Graph& g = *wl->graph;

    constexpr int kHubs = 300;
    constexpr int kSpokes = 3300;
    constexpr int kFanOut = 1500;     // hub out-edges across the labels
    constexpr int kEdgeLabels = 500;  // paper's synthetic |Γ|
    constexpr int kFeedsPerHub = 10;  // (x)-[feeds]->(hub) prefix width
    constexpr size_t kRules = 40;

    const ngd::LabelId node_label = wl->schema->InternLabel("n");
    const ngd::LabelId feeds = wl->schema->InternLabel("feeds");
    const ngd::AttrId val = wl->schema->InternAttr("val");
    std::vector<ngd::LabelId> edge_labels;
    for (int l = 0; l < kEdgeLabels; ++l) {
      edge_labels.push_back(
          wl->schema->InternLabel("e" + std::to_string(l)));
    }

    std::vector<ngd::NodeId> hubs, spokes;
    for (int i = 0; i < kHubs; ++i) {
      ngd::NodeId v = g.AddNode(node_label);
      g.SetAttr(v, val, ngd::Value(int64_t{1}));
      hubs.push_back(v);
    }
    for (int i = 0; i < kSpokes; ++i) {
      ngd::NodeId v = g.AddNode(node_label);
      g.SetAttr(v, val, ngd::Value(int64_t{1}));
      spokes.push_back(v);
    }
    ngd::Rng rng(42);
    for (ngd::NodeId hub : hubs) {
      for (int k = 0; k < kFanOut; ++k) {
        // Duplicate (src, dst, label) picks are rejected; fine to skip.
        (void)g.AddEdge(hub, rng.PickFrom(spokes),
                        edge_labels[k % kEdgeLabels]);
      }
      for (int k = 0; k < kFeedsPerHub; ++k) {
        (void)g.AddEdge(rng.PickFrom(spokes), hub, feeds);
      }
    }

    for (size_t r = 0; r < kRules; ++r) {
      ngd::Pattern p;
      const int x = p.AddNode("x", ngd::kWildcardLabel);
      const int y = p.AddNode("y", ngd::kWildcardLabel);
      const int z = p.AddNode("z", ngd::kWildcardLabel);
      if (!p.AddEdge(x, y, feeds).ok()) std::abort();
      const ngd::LabelId hop = edge_labels[(r * 7) % kEdgeLabels];
      if (!p.AddEdge(y, z, hop).ok()) std::abort();
      // z.val >= 0 holds everywhere: the branch prunes once z is bound
      // and no violation is materialized.
      std::vector<ngd::Literal> Y{ngd::Literal(ngd::Expr::Var(z, val),
                                               ngd::CmpOp::kGe,
                                               ngd::Expr::IntConst(0))};
      wl->sigma.Add(ngd::Ngd("clean_sweep_" + std::to_string(r),
                             std::move(p), {}, std::move(Y)));
    }
    return wl;
  }();
  return *w;
}

// Redundancy-heavy catalog: the high-degree workload's 40 clean-sweep
// rules inflated with implied variants (weakened thresholds +
// duplicates) to 200. Built once; the Σ-optimizer reduces it back to a
// cover of the base rules, so the minimized run sweeps ~1/5 of the
// catalog — on a workload where each rule's sweep is expensive enough
// to measure.
const ngd::NgdSet& InflatedCatalog(Workload& w) {
  static ngd::NgdSet* catalog = [&]() {
    ngd::InflateOptions inflate;
    inflate.variants_per_rule = 4;
    inflate.duplicate_fraction = 0.25;
    inflate.seed = 99;
    return new ngd::NgdSet(
        ngd::InflateWithImpliedVariants(w.sigma, inflate));
  }();
  return *catalog;
}

double RunDectCatalog(Workload& w, const ngd::NgdSet& catalog,
                      ngd::MinimizeMode mode) {
  if (mode != ngd::MinimizeMode::kNever) {
    // One-off solve outside the timed region: the kept-set is cached per
    // catalog version, so production detection calls run against a warm
    // cache — that steady state is what this series measures.
    ngd::MinimizedSigma warm;
    (void)ngd::ResolveMinimizedSigma(catalog, w.schema, mode, {}, &warm);
  }
  ngd::WallTimer t;
  ngd::DectOptions opts;
  opts.snapshot_mode = ngd::SnapshotMode::kNever;  // same engine both sides
  opts.minimize_sigma = mode;
  ngd::VioSet vio = ngd::Dect(*w.graph, catalog, opts);
  ::benchmark::DoNotOptimize(vio.size());
  return t.ElapsedSeconds();
}

// Pure matching: same patterns, no literals.
double RunPatternOnly(Workload& w) {
  ngd::WallTimer t;
  size_t matches = 0;
  for (const auto& ngd : w.sigma.ngds()) {
    ngd::SearchConfig cfg;
    cfg.graph = w.graph.get();
    cfg.pattern = &ngd.pattern();
    cfg.find_violations = false;
    ngd::RunBatchSearch(cfg, [&](const ngd::Binding&) {
      ++matches;
      return true;
    });
  }
  ::benchmark::DoNotOptimize(matches);
  return t.ElapsedSeconds();
}

void RegisterAll() {
  // (1) Literal-evaluation overhead.
  RegisterTimed("Micro/match_only", []() {
    Workload& w = CachedWorkload("m", Spec(10000, 20000, 0.15));
    return RunPatternOnly(w);
  });
  // Live engine on both sides so the delta isolates literal evaluation
  // (the snapshot engine would add its per-call build to one side only).
  RegisterTimed("Micro/match_plus_literals", []() {
    Workload& w = CachedWorkload("m", Spec(10000, 20000, 0.15));
    return ngd::bench::RunDect(w, ngd::SnapshotMode::kNever);
  });

  // (2) CSR snapshot vs live overlay engine.
  RegisterTimed("Micro/dect_live/high_degree_wildcard", []() {
    Workload& w = HighDegreeWildcardWorkload();
    return ngd::bench::RunDect(w, ngd::SnapshotMode::kNever);
  });
  RegisterTimed("Micro/dect_snapshot/high_degree_wildcard", []() {
    Workload& w = HighDegreeWildcardWorkload();
    return ngd::bench::RunDect(w, ngd::SnapshotMode::kAlways);
  });
  // Fig. 4-style generated workload: rule starts are label-selective and
  // the search trivial, so the per-call snapshot build dominates — the
  // regime where the live engine stays preferable. (On violation-heavy
  // generated workloads both engines tie on the shared materialization
  // cost; tools/ngdbench tracks that regime.)
  RegisterTimed("Micro/dect_live/fig4_workload", []() {
    Workload& w = CachedWorkload("m", Spec(10000, 20000, 0.15));
    return ngd::bench::RunDect(w, ngd::SnapshotMode::kNever);
  });
  RegisterTimed("Micro/dect_snapshot/fig4_workload", []() {
    Workload& w = CachedWorkload("m", Spec(10000, 20000, 0.15));
    return ngd::bench::RunDect(w, ngd::SnapshotMode::kAlways);
  });

  // (3) Σ-optimizer: inflated redundant catalog over the high-degree
  // workload, minimization off vs on (warm kept-set cache — the one-off
  // solve happens untimed inside RunDectCatalog).
  RegisterTimed("Micro/dect_full_catalog", []() {
    Workload& w = HighDegreeWildcardWorkload();
    return RunDectCatalog(w, InflatedCatalog(w), ngd::MinimizeMode::kNever);
  });
  RegisterTimed("Micro/dect_minimized_catalog", []() {
    Workload& w = HighDegreeWildcardWorkload();
    return RunDectCatalog(w, InflatedCatalog(w), ngd::MinimizeMode::kAlways);
  });

  // (4) Localizability: one unit update on small vs large graph.
  for (auto [name, nodes, edges] :
       {std::tuple<const char*, size_t, size_t>{"small_10k", 10000, 20000},
        std::tuple<const char*, size_t, size_t>{"large_80k", 80000,
                                                160000}}) {
    std::string key = std::string("loc_") + name;
    std::string bench_name =
        std::string("Micro/single_update_incdect/") + name;
    size_t n = nodes, e = edges;
    RegisterTimed(bench_name, [key, n, e]() {
      Workload& w = CachedWorkload(key, Spec(n, e, 0.15));
      ngd::UpdateBatch batch = ngd::bench::MakeBatch(w.graph.get(), 0.0001, 7);
      if (batch.empty()) {
        // Guarantee at least one unit update.
        batch = ngd::bench::MakeBatch(w.graph.get(), 0.001, 7);
        batch.updates.resize(1);
      }
      if (!ngd::ApplyUpdateBatch(w.graph.get(), &batch).ok()) std::abort();
      double s = ngd::bench::RunIncDect(w, batch);
      w.graph->Rollback();
      return s;
    });
  }
}

void PrintShapeCheck() {
  TimingStore& store = TimingStore::Instance();
  std::printf("\n=== SHAPE CHECK (engine claims) ===\n");
  double overhead = store.Speedup("Micro/match_only",
                                  "Micro/match_plus_literals");
  // Speedup(match_only, with_literals) = t_match / t_with; with-literals
  // is typically FASTER than raw enumeration because literal pruning cuts
  // the search space — at worst it should be within ~2x.
  std::printf("  literal checking changes matching time by %.2fx "
              "(paper Exp-1(f): negligible overhead; pruning often wins)\n",
              overhead > 0 ? 1.0 / overhead : -1.0);
  double loc = store.Speedup("Micro/single_update_incdect/large_80k",
                             "Micro/single_update_incdect/small_10k");
  std::printf("  single-update IncDect on 8x larger graph costs %.2fx "
              "(localizable => near 1x, NOT 8x)\n",
              loc);
  double snap = store.Speedup("Micro/dect_live/high_degree_wildcard",
                              "Micro/dect_snapshot/high_degree_wildcard");
  std::printf("  snapshot Dect is %.2fx live Dect on the "
              "high-degree/wildcard sweep (ISSUE 2 target: >= 1.5x)\n",
              snap);
  double snap_fig4 = store.Speedup("Micro/dect_live/fig4_workload",
                                   "Micro/dect_snapshot/fig4_workload");
  std::printf("  snapshot Dect is %.2fx live Dect on the selective Fig. 4 "
              "workload (trivial search => build cost dominates, < 1x "
              "expected; amortizes only across big sweeps)\n",
              snap_fig4);
  double minimized = store.Speedup("Micro/dect_full_catalog",
                                   "Micro/dect_minimized_catalog");
  std::printf("  Sigma-minimized Dect is %.2fx the full inflated catalog "
              "(ISSUE 4 target: >= 1.5x with the kept-set cache warm)\n",
              minimized);
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  PrintShapeCheck();
  return 0;
}
