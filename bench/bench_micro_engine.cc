// Engine micro-benchmarks supporting two in-text claims:
//
//   - Exp-1(f): "the additional cost of checking linear arithmetic
//     expressions is negligible" — matching with literal evaluation vs
//     pure pattern matching;
//   - §6.2: localizability — IncDect cost tracks the d_Σ-neighborhood of
//     the update, not |G|: a single-edge update is detected in
//     microseconds on graphs 8x apart in size.

#include "bench_common.h"

namespace {

using ngd::bench::CachedWorkload;
using ngd::bench::RegisterTimed;
using ngd::bench::TimingStore;
using ngd::bench::Workload;
using ngd::bench::WorkloadSpec;

WorkloadSpec Spec(size_t nodes, size_t edges, double violation_rate) {
  WorkloadSpec spec;
  spec.graph_config = ngd::SyntheticConfig(nodes, edges);
  spec.num_rules = 10;
  spec.max_diameter = 3;
  spec.violation_rate = violation_rate;
  return spec;
}

// Pure matching: same patterns, no literals.
double RunPatternOnly(Workload& w) {
  ngd::WallTimer t;
  size_t matches = 0;
  for (const auto& ngd : w.sigma.ngds()) {
    ngd::SearchConfig cfg;
    cfg.graph = w.graph.get();
    cfg.pattern = &ngd.pattern();
    cfg.find_violations = false;
    ngd::RunBatchSearch(cfg, [&](const ngd::Binding&) {
      ++matches;
      return true;
    });
  }
  ::benchmark::DoNotOptimize(matches);
  return t.ElapsedSeconds();
}

void RegisterAll() {
  // (1) Literal-evaluation overhead.
  RegisterTimed("Micro/match_only", []() {
    Workload& w = CachedWorkload("m", Spec(10000, 20000, 0.15));
    return RunPatternOnly(w);
  });
  RegisterTimed("Micro/match_plus_literals", []() {
    Workload& w = CachedWorkload("m", Spec(10000, 20000, 0.15));
    return ngd::bench::RunDect(w);
  });

  // (2) Localizability: one unit update on small vs large graph.
  for (auto [name, nodes, edges] :
       {std::tuple<const char*, size_t, size_t>{"small_10k", 10000, 20000},
        std::tuple<const char*, size_t, size_t>{"large_80k", 80000,
                                                160000}}) {
    std::string key = std::string("loc_") + name;
    std::string bench_name =
        std::string("Micro/single_update_incdect/") + name;
    size_t n = nodes, e = edges;
    RegisterTimed(bench_name, [key, n, e]() {
      Workload& w = CachedWorkload(key, Spec(n, e, 0.15));
      ngd::UpdateBatch batch = ngd::bench::MakeBatch(w.graph.get(), 0.0001, 7);
      if (batch.empty()) {
        // Guarantee at least one unit update.
        batch = ngd::bench::MakeBatch(w.graph.get(), 0.001, 7);
        batch.updates.resize(1);
      }
      if (!ngd::ApplyUpdateBatch(w.graph.get(), &batch).ok()) std::abort();
      double s = ngd::bench::RunIncDect(w, batch);
      w.graph->Rollback();
      return s;
    });
  }
}

void PrintShapeCheck() {
  TimingStore& store = TimingStore::Instance();
  std::printf("\n=== SHAPE CHECK (engine claims) ===\n");
  double overhead = store.Speedup("Micro/match_only",
                                  "Micro/match_plus_literals");
  // Speedup(match_only, with_literals) = t_match / t_with; with-literals
  // is typically FASTER than raw enumeration because literal pruning cuts
  // the search space — at worst it should be within ~2x.
  std::printf("  literal checking changes matching time by %.2fx "
              "(paper Exp-1(f): negligible overhead; pruning often wins)\n",
              overhead > 0 ? 1.0 / overhead : -1.0);
  double loc = store.Speedup("Micro/single_update_incdect/large_80k",
                             "Micro/single_update_incdect/small_10k");
  std::printf("  single-update IncDect on 8x larger graph costs %.2fx "
              "(localizable => near 1x, NOT 8x)\n",
              loc);
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  PrintShapeCheck();
  return 0;
}
