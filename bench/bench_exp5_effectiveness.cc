// Exp-5: effectiveness of NGDs as data-quality rules.
//
// Paper: 415 / 212 / 568 errors caught in DBpedia / YAGO2 / Pokec, 92%
// of which are beyond GFDs. Here, three synthetic stand-ins are seeded
// with the same error motifs (lifespans, population sums/ranks, living
// people, Olympic events, F1 wins, fake accounts) plus GFD-catchable
// constant-binding errors; the bench reports errors caught, recall
// against planted ground truth, and the NGD-only percentage.

#include "bench_common.h"
#include "core/parser.h"
#include "graph/error_injector.h"

namespace {

using ngd::Dect;
using ngd::ErrorInjector;
using ngd::Graph;
using ngd::MotifStats;
using ngd::NgdSet;
using ngd::ParseNgds;
using ngd::Schema;
using ngd::SchemaPtr;
using ngd::VioSet;
using ngd::bench::RegisterTimed;

constexpr const char* kKbRules = R"(
ngd lifespan {
  match (x:org)-[wasCreatedOnDate]->(y:date),
        (x)-[wasDestroyedOnDate]->(z:date)
  then z.val - y.val >= 100
}
ngd population_sum {
  match (x:area)-[femalePopulation]->(y:integer),
        (x)-[malePopulation]->(z:integer),
        (x)-[populationTotal]->(w:integer)
  then y.val + z.val = w.val
}
ngd population_rank {
  match (x:place)-[partof]->(z:place), (y:place)-[partof]->(z:place),
        (x)-[population]->(m1:integer), (y)-[population]->(m2:integer),
        (x)-[populationRank]->(n1:integer), (y)-[populationRank]->(n2:integer),
        (m1)-[date]->(w:date), (m2)-[date]->(w:date)
  where m1.val < m2.val
  then n1.val > n2.val
}
ngd living_people {
  match (x:person)-[birthYear]->(y:year), (x)-[category]->(z:category)
  where y.val < 1800
  then z.val != "living people"
}
ngd olympic_nations {
  match (x:competition)-[nations]->(z:integer),
        (x)-[competitors]->(y:integer)
  where x.type = "Olympic"
  then z.val <= y.val
}
ngd capital_kind {
  match (x:capital)-[locatedIn]->(y:country)
  then x.kind = "capital-city"
}
)";

constexpr const char* kSocialRules = R"(
ngd fake_account {
  match (x:account)-[keys]->(w:company), (y:account)-[keys]->(w:company),
        (x)-[following]->(m1:integer), (y)-[following]->(m2:integer),
        (x)-[follower]->(n1:integer), (y)-[follower]->(n2:integer),
        (x)-[status]->(s1:boolean), (y)-[status]->(s2:boolean)
  where s1.val = 1,
        1 * (m1.val - m2.val) + 1 * (n1.val - n2.val) > 10000
  then s2.val = 0
}
ngd capital_kind {
  match (x:capital)-[locatedIn]->(y:country)
  then x.kind = "capital-city"
}
)";

struct DatasetReport {
  std::string name;
  size_t caught = 0;
  size_t planted = 0;
  size_t ngd_only = 0;  // caught by non-GFD rules
  size_t paper_caught = 0;
};

DatasetReport RunDataset(const char* name, uint64_t seed, const char* rules,
                         bool social, size_t paper_caught) {
  DatasetReport report;
  report.name = name;
  report.paper_caught = paper_caught;
  SchemaPtr schema = Schema::Create();
  Graph g(schema);
  ErrorInjector injector(&g, seed);
  double rate = 0.08;
  if (social) {
    report.planted += injector.PlantFakeAccounts(700, rate).errors;
    report.planted += injector.PlantConstantBinding(150, rate).errors;
  } else {
    report.planted += injector.PlantLifespan(300, rate).errors;
    report.planted += injector.PlantPopulation(300, rate).errors;
    report.planted += injector.PlantPopulationRank(200, rate).errors;
    report.planted += injector.PlantLivingPeople(200, rate).errors;
    report.planted += injector.PlantOlympicNations(200, rate).errors;
    report.planted += injector.PlantConstantBinding(150, rate).errors;
  }
  auto parsed = ParseNgds(rules, schema);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
    std::abort();
  }
  VioSet vio = Dect(g, *parsed);
  report.caught = vio.size();
  for (const auto& v : vio.items()) {
    if (!(*parsed)[v.ngd_index].IsGfd()) ++report.ngd_only;
  }
  return report;
}

std::vector<DatasetReport>& Reports() {
  static auto* reports = new std::vector<DatasetReport>();
  return *reports;
}

void RegisterAll() {
  struct Spec {
    const char* name;
    uint64_t seed;
    const char* rules;
    bool social;
    size_t paper;
  };
  static const Spec kSpecs[] = {
      {"dbpedia-like", 415, kKbRules, false, 415},
      {"yago2-like", 212, kKbRules, false, 212},
      {"pokec-like", 568, kSocialRules, true, 568},
  };
  for (const Spec& spec : kSpecs) {
    RegisterTimed(std::string("Exp5/") + spec.name + "/detect", [spec]() {
      ngd::WallTimer t;
      DatasetReport r = RunDataset(spec.name, spec.seed, spec.rules,
                                   spec.social, spec.paper);
      double s = t.ElapsedSeconds();
      Reports().push_back(r);
      return s;
    });
  }
}

void PrintShapeCheck() {
  std::printf("\n=== SHAPE CHECK vs paper Exp-5 ===\n");
  size_t total_caught = 0, total_ngd_only = 0;
  for (const DatasetReport& r : Reports()) {
    std::printf("  [%s] caught %zu (planted %zu; paper caught %zu on the "
                "real dataset) — recall %.0f%%\n",
                r.name.c_str(), r.caught, r.planted, r.paper_caught,
                r.planted ? 100.0 * static_cast<double>(r.caught) /
                                static_cast<double>(r.planted)
                          : 0.0);
    total_caught += r.caught;
    total_ngd_only += r.ngd_only;
  }
  if (total_caught > 0) {
    std::printf("  %.0f%% of caught errors are beyond GFDs (paper: 92%%)\n",
                100.0 * static_cast<double>(total_ngd_only) /
                    static_cast<double>(total_caught));
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  PrintShapeCheck();
  return 0;
}
