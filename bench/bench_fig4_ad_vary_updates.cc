// Fig. 4(a)–(d): incremental vs batch detection as |ΔG| grows from 5% to
// 35% of |G|, on DBpedia-like, YAGO2-like, Pokec-like and Synthetic
// graphs (Exp-1).
//
// Series per graph: Dect, IncDect, PDect, PIncDect and the ablations
// PIncDect_ns / _nb / _NO. Paper shape to reproduce: IncDect beats Dect
// ~8.8×→1.7× as |ΔG| goes 5%→25% and still wins at 33%; PIncDect beats
// PDect; the hybrid variants order PIncDect < ns ≈ nb < NO.

#include "bench_common.h"

namespace {

using ngd::bench::CachedWorkload;
using ngd::bench::DeltaViewIncOptions;
using ngd::bench::DeltaViewVariantOptions;
using ngd::bench::MakeBatch;
using ngd::bench::RegisterTimed;
using ngd::bench::RunDect;
using ngd::bench::RunIncDect;
using ngd::bench::RunPDect;
using ngd::bench::RunPIncDect;
using ngd::bench::TimingStore;
using ngd::bench::VariantOptions;
using ngd::bench::Workload;
using ngd::bench::WorkloadSpec;

constexpr double kFractions[] = {0.05, 0.15, 0.25, 0.35};
constexpr int kProcessors = 4;

struct GraphCase {
  const char* name;
  char panel;
};

const GraphCase kGraphs[] = {
    {"dbpedia-like", 'a'},
    {"yago2-like", 'b'},
    {"pokec-like", 'c'},
    {"synthetic", 'd'},
};

// One kOld base snapshot per graph case, built on first use and shared
// by every _dv measurement — the "one per commit epoch, reused across
// batches" shape. Batch-independent: bench batches create no nodes and
// Rollback restores the base graph after each measurement.
const ngd::GraphSnapshot& CachedBaseSnapshot(const std::string& key,
                                             const ngd::Graph& g) {
  static auto* cache = new std::map<std::string, ngd::GraphSnapshot>();
  auto it = cache->find(key);
  if (it == cache->end()) {
    it = cache->emplace(key, ngd::GraphSnapshot(g, ngd::GraphView::kOld))
             .first;
  }
  return it->second;
}

WorkloadSpec SpecFor(const std::string& name) {
  WorkloadSpec spec;
  if (name == "dbpedia-like") {
    spec.graph_config = ngd::DBpediaLikeConfig(1.0 / 1000);
  } else if (name == "yago2-like") {
    spec.graph_config = ngd::Yago2LikeConfig(1.0 / 500);
  } else if (name == "pokec-like") {
    spec.graph_config = ngd::PokecLikeConfig(1.0 / 1000);
  } else {
    spec.graph_config = ngd::SyntheticConfig(12000, 18000);
  }
  spec.num_rules = 15;  // ||Σ|| = 50 scaled (see EXPERIMENTS.md)
  spec.max_diameter = 3;
  return spec;
}

std::string Key(const GraphCase& gc, const char* algo, double fraction) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "Fig4%c/%s/%s/dG=%d%%", gc.panel, gc.name,
                algo, static_cast<int>(fraction * 100));
  return buf;
}

void RegisterAll() {
  for (const GraphCase& gc : kGraphs) {
    for (double fraction : kFractions) {
      auto with_batch = [gc, fraction](auto run) {
        return [gc, fraction, run]() {
          Workload& w = CachedWorkload(gc.name, SpecFor(gc.name));
          ngd::UpdateBatch batch =
              MakeBatch(w.graph.get(), fraction,
                        1000 + static_cast<uint64_t>(fraction * 100));
          if (!ngd::ApplyUpdateBatch(w.graph.get(), &batch).ok()) {
            std::abort();
          }
          double s = run(w, batch);
          w.graph->Rollback();
          return s;
        };
      };
      RegisterTimed(Key(gc, "Dect", fraction),
                    with_batch([](Workload& w, const ngd::UpdateBatch&) {
                      return RunDect(w);
                    }));
      RegisterTimed(Key(gc, "IncDect", fraction),
                    with_batch([](Workload& w, const ngd::UpdateBatch& b) {
                      return RunIncDect(w, b);
                    }));
      // Live vs DeltaView: the _dv series reuse a base snapshot built
      // outside the timed region (one per commit epoch in production),
      // so they measure exactly the per-batch incremental cost.
      RegisterTimed(Key(gc, "IncDect_dv", fraction),
                    with_batch([gc](Workload& w, const ngd::UpdateBatch& b) {
                      return RunIncDect(
                          w, b,
                          DeltaViewIncOptions(
                              CachedBaseSnapshot(gc.name, *w.graph)));
                    }));
      RegisterTimed(Key(gc, "PDect", fraction),
                    with_batch([](Workload& w, const ngd::UpdateBatch&) {
                      return RunPDect(w, kProcessors);
                    }));
      for (const char* variant :
           {"PIncDect", "PIncDect_ns", "PIncDect_nb", "PIncDect_NO"}) {
        RegisterTimed(
            Key(gc, variant, fraction),
            with_batch([variant](Workload& w, const ngd::UpdateBatch& b) {
              return RunPIncDect(w, b, VariantOptions(variant, kProcessors));
            }));
      }
      RegisterTimed(Key(gc, "PIncDect_dv", fraction),
                    with_batch([gc](Workload& w, const ngd::UpdateBatch& b) {
                      return RunPIncDect(
                          w, b,
                          DeltaViewVariantOptions(
                              "PIncDect", kProcessors,
                              CachedBaseSnapshot(gc.name, *w.graph)));
                    }));
    }
  }
}

void PrintShapeCheck() {
  TimingStore& store = TimingStore::Instance();
  std::printf("\n=== SHAPE CHECK vs paper Fig 4(a)-(d) ===\n");
  for (const GraphCase& gc : kGraphs) {
    std::printf("[%s]\n", gc.name);
    for (double fraction : kFractions) {
      double inc_speedup =
          store.Speedup(Key(gc, "Dect", fraction), Key(gc, "IncDect", fraction));
      double pinc_speedup = store.Speedup(Key(gc, "PDect", fraction),
                                          Key(gc, "PIncDect", fraction));
      std::printf(
          "  dG=%2d%%: IncDect %5.2fx faster than Dect | PIncDect %5.2fx "
          "faster than PDect %s\n",
          static_cast<int>(fraction * 100), inc_speedup, pinc_speedup,
          inc_speedup > 1.0 ? "[incremental wins]" : "[crossover passed]");
    }
    double no_over_full = store.Speedup(Key(gc, "PIncDect_NO", 0.15),
                                        Key(gc, "PIncDect", 0.15));
    std::printf("  hybrid gain at dG=15%%: PIncDect %.2fx faster than "
                "PIncDect_NO (paper: ~1.5-1.8x)\n",
                no_over_full);
    for (double fraction : kFractions) {
      double dv_inc = store.Speedup(Key(gc, "IncDect", fraction),
                                    Key(gc, "IncDect_dv", fraction));
      double dv_pinc = store.Speedup(Key(gc, "PIncDect", fraction),
                                     Key(gc, "PIncDect_dv", fraction));
      std::printf(
          "  dG=%2d%%: DeltaView IncDect %5.2fx over live | DeltaView "
          "PIncDect %5.2fx over live\n",
          static_cast<int>(fraction * 100), dv_inc, dv_pinc);
    }
  }
  std::printf(
      "paper shape: speedup shrinks as dG grows; crossover past ~33%%.\n"
      "DeltaView note: these 1/500-scale panels are sparse and "
      "cache-resident, so live whole-adjacency scans are near-free and "
      "the two backends roughly tie (~0.6-1.2x; EXPERIMENTS.md section "
      "4). The scan-bound regime that carries the >= 1.5x DeltaView "
      "target is the pinned hub sweep in BENCH_detect.json "
      "(tools/ngdbench, fig4ad_sweep: >= 2.5x seq, ~4x parallel).\n");
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  PrintShapeCheck();
  return 0;
}
