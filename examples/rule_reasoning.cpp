// Rule reasoning: the paper's §4 analyses on Example 5, as a user would
// run them before deploying a rule set.
//
//   - satisfiability: are the rules consistent with each other?
//   - strong satisfiability: can every rule's pattern coexist?
//   - implication: is a candidate rule redundant given Σ?
//   - the undecidability guard: non-linear rules are rejected outright.
//
// Run: ./rule_reasoning

#include <cstdio>

#include "core/parser.h"
#include "reason/implication.h"
#include "reason/satisfiability.h"

namespace {

const char* DecisionName(ngd::Decision d) {
  switch (d) {
    case ngd::Decision::kYes:
      return "YES";
    case ngd::Decision::kNo:
      return "NO";
    case ngd::Decision::kUnknown:
      return "UNKNOWN";
  }
  return "?";
}

}  // namespace

int main() {
  using namespace ngd;
  SchemaPtr schema = Schema::Create();

  // ---- Example 5: φ5 and φ6 conflict on a shared wildcard pattern. ----
  auto conflicting = ParseNgds(R"(
    ngd phi5 { match (x:_) then x.A = 7, x.B = 7 }
    ngd phi6 { match (x:_) then x.A + x.B = 11 }
  )",
                               schema);
  auto r1 = CheckSatisfiability(*conflicting, schema);
  std::printf("{phi5, phi6} satisfiable?          %s  (%s)\n",
              DecisionName(r1.satisfiable), r1.detail.c_str());

  // Re-labelling φ6's pattern to 'a' restores satisfiability (a model
  // labelled 'b' dodges it) but NOT strong satisfiability.
  auto labelled = ParseNgds(R"(
    ngd phi5 { match (x:_) then x.A = 7, x.B = 7 }
    ngd phi6a { match (x:a) then x.A + x.B = 11 }
  )",
                            schema);
  auto r2 = CheckSatisfiability(*labelled, schema);
  auto r3 = CheckStrongSatisfiability(*labelled, schema);
  std::printf("{phi5, phi6'} satisfiable?         %s  (%s)\n",
              DecisionName(r2.satisfiable), r2.detail.c_str());
  std::printf("{phi5, phi6'} strongly sat?        %s  (%s)\n",
              DecisionName(r3.satisfiable), r3.detail.c_str());

  // φ7, φ8, φ9: comparison predicates alone already conflict.
  auto trio = ParseNgds(R"(
    ngd phi7 { match (x:_) where x.A <= 3 then x.B > 6 }
    ngd phi8 { match (x:_) where x.A > 3 then x.B > 6 }
    ngd phi9 { match (x:_) then x.B < 6, x.A != 0 }
  )",
                        schema);
  auto r4 = CheckSatisfiability(*trio, schema);
  std::printf("{phi7, phi8, phi9} satisfiable?    %s  (%s)\n",
              DecisionName(r4.satisfiable), r4.detail.c_str());

  // ---- Implication: rule-set optimization. ----
  auto sigma = ParseNgds("ngd phi5 { match (x:_) then x.A = 7, x.B = 7 }",
                         schema);
  auto redundant =
      ParseNgd("ngd sum14 { match (x:_) then x.A + x.B = 14 }", schema);
  auto novel =
      ParseNgd("ngd sum15 { match (x:_) then x.A + x.B = 15 }", schema);
  auto i1 = CheckImplication(*sigma, *redundant, schema);
  auto i2 = CheckImplication(*sigma, *novel, schema);
  std::printf("{phi5} implies  A + B = 14?        %s  (%s)\n",
              DecisionName(i1.implied), i1.detail.c_str());
  std::printf("{phi5} implies  A + B = 15?        %s  (%s)\n",
              DecisionName(i2.implied), i2.detail.c_str());

  // ---- The undecidability guard (Theorem 3). ----
  auto nonlinear = ParseNgd(
      "ngd quad { match (x:t)-[e]->(y:t) then x.A * y.A = 100 }", schema);
  std::printf("degree-2 rule accepted?            %s\n",
              nonlinear.ok() ? "YES (bug!)" : "NO");
  if (!nonlinear.ok()) {
    std::printf("  parser says: %s\n", nonlinear.status().ToString().c_str());
  }
  return 0;
}
