// Knowledge-base cleaning: the DBpedia/YAGO workload of the paper's
// introduction and Exp-5, at laptop scale.
//
// A synthetic knowledge base is populated with the motifs the paper
// reports errors in — entity lifespans, population sums, population
// ranks, living-people categories, Olympic events, F1 teams — with a
// controlled error rate. One mixed rule set (NGDs φ1–φ3 plus Exp-5's
// NGD1–NGD3 plus one GFD-style constant binding) catches them all, and
// the report breaks down which errors needed arithmetic/comparison
// (beyond GFDs) to catch — the paper's "92% beyond GFDs" observation.
//
// Run: ./knowledge_base_cleaning [error_rate]

#include <cstdio>
#include <cstdlib>

#include "core/parser.h"
#include "detect/dect.h"
#include "graph/error_injector.h"

namespace {

constexpr const char* kRules = R"(
ngd lifespan {   # φ1: destroyed at least 100 days after creation
  match (x:org)-[wasCreatedOnDate]->(y:date),
        (x)-[wasDestroyedOnDate]->(z:date)
  then z.val - y.val >= 100
}
ngd population_sum {   # φ2
  match (x:area)-[femalePopulation]->(y:integer),
        (x)-[malePopulation]->(z:integer),
        (x)-[populationTotal]->(w:integer)
  then y.val + z.val = w.val
}
ngd population_rank {   # φ3
  match (x:place)-[partof]->(z:place), (y:place)-[partof]->(z:place),
        (x)-[population]->(m1:integer), (y)-[population]->(m2:integer),
        (x)-[populationRank]->(n1:integer), (y)-[populationRank]->(n2:integer),
        (m1)-[date]->(w:date), (m2)-[date]->(w:date)
  where m1.val < m2.val
  then n1.val > n2.val
}
ngd living_people {   # Exp-5 NGD1
  match (x:person)-[birthYear]->(y:year), (x)-[category]->(z:category)
  where y.val < 1800
  then z.val != "living people"
}
ngd olympic_nations {   # Exp-5 NGD2
  match (x:competition)-[nations]->(z:integer),
        (x)-[competitors]->(y:integer)
  where x.type = "Olympic"
  then z.val <= y.val
}
ngd f1_wins {   # Exp-5 NGD3
  match (w1:driver)-[team]->(x:team), (w2:driver)-[team]->(x:team),
        (x)-[year]->(y:year), (w1)-[year]->(y), (w2)-[year]->(y)
  then x.numberOfWins >= w1.numberOfWins + w2.numberOfWins
}
ngd capital_kind {   # GFD-expressible control rule
  match (x:capital)-[locatedIn]->(y:country)
  then x.kind = "capital-city"
}
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace ngd;
  double error_rate = argc > 1 ? std::atof(argv[1]) : 0.08;

  SchemaPtr schema = Schema::Create();
  Graph g(schema);
  ErrorInjector injector(&g, /*seed=*/2018);
  struct Planted {
    const char* what;
    MotifStats stats;
  };
  Planted planted[] = {
      {"entity lifespans", injector.PlantLifespan(400, error_rate)},
      {"population sums", injector.PlantPopulation(400, error_rate)},
      {"population ranks", injector.PlantPopulationRank(300, error_rate)},
      {"living people", injector.PlantLivingPeople(300, error_rate)},
      {"olympic events", injector.PlantOlympicNations(300, error_rate)},
      {"F1 seasons", injector.PlantF1Wins(200, error_rate)},
      {"capital kinds", injector.PlantConstantBinding(300, error_rate)},
  };
  std::printf("knowledge base: %zu nodes, %zu edges\n", g.NumNodes(),
              g.NumEdges(GraphView::kNew));
  size_t total_planted = 0;
  for (const auto& p : planted) {
    std::printf("  %-18s %4zu instances, %3zu erroneous\n", p.what,
                p.stats.instances, p.stats.errors);
    total_planted += p.stats.errors;
  }

  auto rules = ParseNgds(kRules, schema);
  if (!rules.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 rules.status().ToString().c_str());
    return 1;
  }
  std::printf("rule set: %zu NGDs (d_Sigma = %d)\n", rules->size(),
              rules->MaxDiameter());

  VioSet vio = Dect(g, *rules);
  std::printf("\nviolations caught: %zu (planted: %zu)\n", vio.size(),
              total_planted);

  // Which needed more than GFDs?
  size_t beyond_gfd = 0;
  std::vector<size_t> per_rule(rules->size(), 0);
  for (const auto& v : vio.items()) {
    ++per_rule[v.ngd_index];
    if (!(*rules)[v.ngd_index].IsGfd()) ++beyond_gfd;
  }
  for (size_t f = 0; f < rules->size(); ++f) {
    std::printf("  %-18s %4zu caught  [%s]\n", (*rules)[f].name().c_str(),
                per_rule[f],
                (*rules)[f].IsGfd() ? "GFD fragment"
                                    : "needs NGD arithmetic/comparison");
  }
  std::printf("%.0f%% of caught errors are beyond GFDs (paper: 92%%)\n",
              100.0 * static_cast<double>(beyond_gfd) /
                  static_cast<double>(vio.size() ? vio.size() : 1));
  return 0;
}
