// Social-network audit: fake-account detection under a live update
// stream (the paper's Twitter scenario, Example 1(4)/Example 6/7).
//
// A Pokec-like social graph is seeded with company accounts, some fake.
// The φ4 rule flags accounts whose follower/following deficit against a
// verified account exceeds a threshold while still claiming to be real.
// The audit then consumes a stream of update batches, maintaining the
// violation set incrementally — sequentially (IncDect) and in parallel
// (PIncDect) — and compares against batch recomputation (Dect), printing
// the speedups the incremental algorithms deliver.
//
// Run: ./social_network_audit [num_batches]

#include <cstdio>
#include <cstdlib>

#include "core/parser.h"
#include "detect/dect.h"
#include "detect/inc_dect.h"
#include "graph/error_injector.h"
#include "graph/generators.h"
#include "graph/updates.h"
#include "parallel/pinc_dect.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace ngd;
  int num_batches = argc > 1 ? std::atoi(argv[1]) : 3;

  // Background social network + fake-account motifs.
  SchemaPtr schema = Schema::Create();
  GraphGenConfig cfg = PokecLikeConfig(/*scale=*/0.002, /*seed=*/99);
  auto g = GenerateGraph(cfg, schema);
  ErrorInjector injector(g.get(), 7);
  MotifStats accounts = injector.PlantFakeAccounts(500, 0.06);
  std::printf("social graph: %zu nodes, %zu edges; %zu company-account "
              "pairs planted (%zu fake)\n",
              g->NumNodes(), g->NumEdges(GraphView::kNew),
              accounts.instances, accounts.errors);

  auto rules = ParseNgds(R"(
    ngd fake_account {   # φ4 with a = b = 1, c = 10000
      match (x:account)-[keys]->(w:company), (y:account)-[keys]->(w:company),
            (x)-[following]->(m1:integer), (y)-[following]->(m2:integer),
            (x)-[follower]->(n1:integer), (y)-[follower]->(n2:integer),
            (x)-[status]->(s1:boolean), (y)-[status]->(s2:boolean)
      where s1.val = 1,
            1 * (m1.val - m2.val) + 1 * (n1.val - n2.val) > 10000
      then s2.val = 0
    }
  )",
                         schema);
  if (!rules.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 rules.status().ToString().c_str());
    return 1;
  }

  WallTimer timer;
  VioSet vio = Dect(*g, *rules);
  std::printf("initial batch detection: %zu fake accounts in %.1f ms\n\n",
              vio.size(), timer.ElapsedMillis());

  for (int round = 0; round < num_batches; ++round) {
    UpdateGenOptions up;
    up.fraction = 0.02;
    up.seed = 1000 + static_cast<uint64_t>(round);
    UpdateBatch batch = GenerateUpdateBatch(g.get(), up);
    if (!ApplyUpdateBatch(g.get(), &batch).ok()) return 1;
    std::printf("batch %d: %zu insertions, %zu deletions\n", round,
                batch.NumInsertions(), batch.NumDeletions());

    timer.Restart();
    auto delta = IncDect(*g, *rules, batch);
    double inc_ms = timer.ElapsedMillis();
    if (!delta.ok()) {
      std::fprintf(stderr, "IncDect: %s\n", delta.status().ToString().c_str());
      return 1;
    }

    PIncDectOptions popts;
    popts.num_processors = 2;  // match this host; benches sweep p
    timer.Restart();
    auto pdelta = PIncDect(*g, *rules, batch, popts);
    double pinc_ms = timer.ElapsedMillis();
    if (!pdelta.ok()) return 1;

    timer.Restart();
    VioSet recomputed = Dect(*g, *rules);
    double batch_ms = timer.ElapsedMillis();

    vio = ApplyDelta(vio, *delta);
    g->Commit();

    std::printf(
        "  ΔVio: +%zu / -%zu  (now %zu fake)  IncDect %.1f ms | "
        "PIncDect(4) %.1f ms | batch Dect %.1f ms  -> incremental is "
        "%.1fx faster\n",
        delta->added.size(), delta->removed.size(), vio.size(), inc_ms,
        pinc_ms, batch_ms, batch_ms / (inc_ms > 0.01 ? inc_ms : 0.01));
    if (recomputed.size() != vio.size()) {
      std::fprintf(stderr, "  CONSISTENCY FAILURE: %zu vs %zu\n",
                   recomputed.size(), vio.size());
      return 1;
    }
  }
  std::printf("\nfinal audit: %zu accounts flagged fake\n", vio.size());
  return 0;
}
