// Quickstart: catch the paper's Fig. 1 inconsistencies in ~60 lines.
//
// Builds the Yago population graph (G2 of Fig. 1), declares the NGD
//   φ2 = Q2[w,x,y,z](∅ → y.val + z.val = w.val)
// in the rule DSL, runs batch detection, then fixes the data and
// revalidates.
//
// Run: ./quickstart

#include <cstdio>

#include "core/parser.h"
#include "detect/dect.h"
#include "graph/graph.h"

int main() {
  using namespace ngd;

  // 1. A schema (shared label/attribute alphabets) and a graph.
  SchemaPtr schema = Schema::Create();
  Graph g(schema);

  // Bhonpur: 600 female + 722 male, but total population recorded 1572.
  NodeId bhonpur = g.AddNode("area");
  auto add_int = [&](const char* label, int64_t value) {
    NodeId n = g.AddNode(label);
    g.SetAttr(n, "val", Value(value));
    return n;
  };
  NodeId female = add_int("integer", 600);
  NodeId male = add_int("integer", 722);
  NodeId total = add_int("integer", 1572);
  (void)g.AddEdge(bhonpur, female, "femalePopulation");
  (void)g.AddEdge(bhonpur, male, "malePopulation");
  (void)g.AddEdge(bhonpur, total, "populationTotal");

  // 2. The data-quality rule, in the NGD DSL.
  auto rules = ParseNgds(R"(
    # total population must equal female + male (paper Example 3, φ2)
    ngd population_sum {
      match (x:area)-[femalePopulation]->(y:integer),
            (x)-[malePopulation]->(z:integer),
            (x)-[populationTotal]->(w:integer)
      then y.val + z.val = w.val
    }
  )",
                         schema);
  if (!rules.ok()) {
    std::fprintf(stderr, "rule parse error: %s\n",
                 rules.status().ToString().c_str());
    return 1;
  }

  // 3. Detect: Vio(Σ, G).
  VioSet violations = Dect(g, *rules);
  std::printf("violations found: %zu\n", violations.size());
  for (const Violation& v : violations.Sorted()) {
    std::printf("  %s\n", ViolationToString(v, *rules, g).c_str());
  }

  // 4. Repair and revalidate.
  g.SetAttr(total, "val", Value(int64_t{600 + 722}));
  std::printf("after repair, graph %s\n",
              Validate(g, *rules) ? "satisfies the rules" : "still dirty");
  return 0;
}
