// Parameterized NGD generation for experiment workloads.
//
// §7 of the paper evaluates with 100 NGDs per graph discovered by the
// companion mining algorithm [22]: ≥90% distinct patterns spanning trees,
// DAGs and cyclic shapes, diameters 1–6, 1–4 literals, expression lengths
// up to 10. This generator reproduces that profile by SAMPLING concrete
// subgraphs of the target graph (so every pattern is guaranteed to have
// matches, as discovered rules do) and synthesizing literals calibrated
// against the sampled attribute values (so rules are mostly satisfied
// with a controllable violation rate — realistic data-quality rules).

#ifndef NGD_DISCOVERY_NGD_GENERATOR_H_
#define NGD_DISCOVERY_NGD_GENERATOR_H_

#include "core/ngd.h"
#include "graph/graph.h"

namespace ngd {

struct NgdGenOptions {
  size_t count = 50;
  /// Pattern diameters are drawn from [min_diameter, max_diameter].
  int min_diameter = 1;
  int max_diameter = 5;
  /// Literals per rule drawn from [1, max_literals]; X gets literals with
  /// probability x_literal_prob each once Y has one.
  size_t max_literals = 4;
  double x_literal_prob = 0.4;
  /// Maximum variables per arithmetic expression (expression "length").
  size_t max_expr_terms = 3;
  /// Probability a pattern node keeps the wildcard label.
  double wildcard_prob = 0.05;
  /// Fraction of thresholds tightened so the sampled instance itself
  /// violates the rule (seeds realistic violations).
  double violation_rate = 0.1;
  uint64_t seed = 11;
};

/// Generates rules against `g`'s topology and attribute population.
/// All returned NGDs pass Validate() and ValidateForIncremental().
NgdSet GenerateNgdSet(const Graph& g, const NgdGenOptions& opts);

struct InflateOptions {
  /// Implied variants appended per base rule (weakened-threshold copies;
  /// rules whose Y offers no weakenable comparison get exact duplicates).
  size_t variants_per_rule = 3;
  /// Fraction of variants that are exact duplicates instead of weakened
  /// copies (merged-catalog realism: the same rule arriving twice).
  double duplicate_fraction = 0.25;
  /// Weakening slack drawn from [1, max_weaken] per comparison literal.
  int64_t max_weaken = 50;
  uint64_t seed = 17;
};

/// Models a redundancy-heavy production catalog: appends, after the base
/// rules, variants each base rule IMPLIES — `e ⊗ c` comparisons relaxed by
/// a positive slack (≤/< raised, ≥/> lowered, = widened to ≤), or exact
/// duplicates. The Σ-optimizer (reason/sigma_optimizer.h) must be able to
/// reduce the result back to (a cover of) the base rules; the sigma
/// differential test and the `sigma_minimize` BENCH series both build
/// their inflated-Σ workloads here.
NgdSet InflateWithImpliedVariants(const NgdSet& base,
                                  const InflateOptions& opts);

}  // namespace ngd

#endif  // NGD_DISCOVERY_NGD_GENERATOR_H_
