#include "discovery/miner.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "detect/dect.h"
#include "reason/sigma_optimizer.h"

namespace ngd {

namespace {

/// Frequent edge shape (src label, edge label, dst label).
struct EdgeShape {
  LabelId src;
  LabelId edge;
  LabelId dst;
  bool operator<(const EdgeShape& o) const {
    return std::tie(src, edge, dst) < std::tie(o.src, o.edge, o.dst);
  }
};

std::map<EdgeShape, size_t> CountEdgeShapes(const Graph& g) {
  std::map<EdgeShape, size_t> counts;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    for (const auto& e : g.OutEdges(v)) {
      if (!EdgeInView(e.state, GraphView::kNew)) continue;
      ++counts[EdgeShape{g.NodeLabel(v), e.label, g.NodeLabel(e.other)}];
    }
  }
  return counts;
}

/// Enumerates up to `cap` matches of `pattern` in g.
std::vector<Binding> SampleMatches(const Graph& g, const Pattern& pattern,
                                   size_t cap) {
  std::vector<Binding> matches;
  SearchConfig cfg;
  cfg.graph = &g;
  cfg.pattern = &pattern;
  cfg.find_violations = false;
  RunBatchSearch(cfg, [&](const Binding& h) {
    matches.push_back(h);
    return matches.size() < cap;
  });
  return matches;
}

/// Numeric attributes common to ALL matched nodes of a variable.
std::vector<AttrId> CommonNumericAttrs(const Graph& g,
                                       const std::vector<Binding>& matches,
                                       int var) {
  std::unordered_map<AttrId, size_t> counts;
  for (const Binding& h : matches) {
    for (const auto& [attr, value] : g.Attrs(h[var])) {
      if (value.is_int()) ++counts[attr];
    }
  }
  std::vector<AttrId> out;
  for (const auto& [attr, n] : counts) {
    if (n == matches.size()) out.push_back(attr);
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// Confidence of `lit` over the matches.
double Confidence(const Graph& g, const std::vector<Binding>& matches,
                  const Literal& lit) {
  if (matches.empty()) return 0.0;
  size_t holds = 0;
  for (const Binding& h : matches) {
    if (lit.Evaluate(g, h) == Truth::kTrue) ++holds;
  }
  return static_cast<double>(holds) / static_cast<double>(matches.size());
}

struct MinerState {
  const Graph& g;
  const MinerOptions& opts;
  NgdSet rules;
  size_t rule_counter = 0;

  bool Full() const { return rules.size() >= opts.max_rules; }

  void MineLiterals(const Pattern& pattern,
                    const std::vector<Binding>& matches) {
    if (Full() || matches.size() < opts.min_support) return;
    const int n = static_cast<int>(pattern.NumNodes());
    std::vector<std::vector<AttrId>> attrs(n);
    for (int v = 0; v < n; ++v) {
      attrs[v] = CommonNumericAttrs(g, matches, v);
    }
    auto emit = [&](Literal lit) {
      if (Full()) return;
      Ngd ngd("mined" + std::to_string(rule_counter++), pattern, {},
              {std::move(lit)});
      if (ngd.Validate().ok()) rules.Add(std::move(ngd));
    };

    // Pairwise literals x.A ⊗ y.B across distinct (var, attr) pairs.
    for (int v1 = 0; v1 < n && !Full(); ++v1) {
      for (AttrId a1 : attrs[v1]) {
        for (int v2 = v1; v2 < n && !Full(); ++v2) {
          for (AttrId a2 : attrs[v2]) {
            if (v1 == v2 && a1 >= a2) continue;
            for (CmpOp op : {CmpOp::kEq, CmpOp::kLe, CmpOp::kGe}) {
              Literal lit(Expr::Var(v1, a1), op, Expr::Var(v2, a2));
              if (Confidence(g, matches, lit) >= opts.min_confidence) {
                emit(std::move(lit));
                break;  // = subsumes <= and >=; keep the strongest only
              }
            }
          }
        }
      }
    }

    // Sum literals x.A + y.B = z.C (the populationTotal shape).
    if (opts.mine_sum_literals && n >= 3) {
      for (int v1 = 0; v1 < n && !Full(); ++v1) {
        for (int v2 = v1; v2 < n; ++v2) {
          for (int v3 = 0; v3 < n; ++v3) {
            if (v3 == v1 || v3 == v2) continue;
            for (AttrId a1 : attrs[v1]) {
              for (AttrId a2 : attrs[v2]) {
                if (v1 == v2 && a1 == a2) continue;
                for (AttrId a3 : attrs[v3]) {
                  Literal lit(
                      Expr::Add(Expr::Var(v1, a1), Expr::Var(v2, a2)),
                      CmpOp::kEq, Expr::Var(v3, a3));
                  if (Confidence(g, matches, lit) >= opts.min_confidence) {
                    emit(std::move(lit));
                  }
                  if (Full()) return;
                }
              }
            }
          }
        }
      }
    }
  }
};

}  // namespace

NgdSet DiscoverNgds(const Graph& g, const MinerOptions& opts) {
  MinerState state{g, opts, {}, 0};

  // Vertical level 1: frequent single-edge patterns.
  std::map<EdgeShape, size_t> shapes = CountEdgeShapes(g);
  std::vector<EdgeShape> frequent;
  for (const auto& [shape, count] : shapes) {
    if (count >= opts.min_support) frequent.push_back(shape);
  }

  for (const EdgeShape& shape : frequent) {
    if (state.Full()) break;
    Pattern pattern;
    int x = pattern.AddNode("x", shape.src);
    int y = pattern.AddNode("y", shape.dst);
    Status s = pattern.AddEdge(x, y, shape.edge);
    if (!s.ok()) continue;
    std::vector<Binding> matches =
        SampleMatches(g, pattern, opts.max_matches_per_pattern);
    state.MineLiterals(pattern, matches);
  }

  // Vertical level 2: join two frequent shapes on a shared source
  // ("fan-out" patterns: (y) <-[e1]- (x) -[e2]-> (z)).
  if (opts.mine_two_edge_patterns) {
    for (size_t i = 0; i < frequent.size() && !state.Full(); ++i) {
      for (size_t j = i; j < frequent.size() && !state.Full(); ++j) {
        const EdgeShape& s1 = frequent[i];
        const EdgeShape& s2 = frequent[j];
        if (s1.src != s2.src) continue;
        if (i == j) continue;  // parallel identical edges are degenerate
        Pattern pattern;
        int x = pattern.AddNode("x", s1.src);
        int y = pattern.AddNode("y", s1.dst);
        int z = pattern.AddNode("z", s2.dst);
        if (!pattern.AddEdge(x, y, s1.edge).ok()) continue;
        if (!pattern.AddEdge(x, z, s2.edge).ok()) continue;
        std::vector<Binding> matches =
            SampleMatches(g, pattern, opts.max_matches_per_pattern);
        state.MineLiterals(pattern, matches);
      }
    }
  }

  // Vertical level 3: fan-outs with three distinct edges from one source —
  // the shape of sum dependencies (female + male = total).
  if (opts.mine_three_edge_fanouts) {
    for (size_t i = 0; i < frequent.size() && !state.Full(); ++i) {
      for (size_t j = i + 1; j < frequent.size() && !state.Full(); ++j) {
        for (size_t k = j + 1; k < frequent.size() && !state.Full(); ++k) {
          const EdgeShape& s1 = frequent[i];
          const EdgeShape& s2 = frequent[j];
          const EdgeShape& s3 = frequent[k];
          if (s1.src != s2.src || s2.src != s3.src) continue;
          Pattern pattern;
          int x = pattern.AddNode("x", s1.src);
          int y = pattern.AddNode("y", s1.dst);
          int z = pattern.AddNode("z", s2.dst);
          int w = pattern.AddNode("w", s3.dst);
          if (!pattern.AddEdge(x, y, s1.edge).ok()) continue;
          if (!pattern.AddEdge(x, z, s2.edge).ok()) continue;
          if (!pattern.AddEdge(x, w, s3.edge).ok()) continue;
          std::vector<Binding> matches =
              SampleMatches(g, pattern, opts.max_matches_per_pattern);
          state.MineLiterals(pattern, matches);
        }
      }
    }
  }

  // Levelwise mining rediscovers the same dependency through every pattern
  // that carries it (and through weaker comparisons on other samples); the
  // Σ-optimizer removes everything the kept rules already imply, so the
  // returned catalog is the set detection actually needs to run.
  if (opts.suppress_implied && state.rules.size() > 1) {
    MinimizedSigma m =
        MinimizeSigma(state.rules, g.schema(), SigmaOptimizerOptions{});
    return std::move(m.sigma);
  }
  return std::move(state.rules);
}

}  // namespace ngd
