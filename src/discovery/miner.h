// Levelwise NGD discovery (in the spirit of "Discovering Graph Functional
// Dependencies", Fan et al. SIGMOD'18 [22], which §7 uses to obtain rule
// sets).
//
// The miner interleaves:
//   - VERTICAL expansion: grow frequent patterns — single labelled edges
//     first, then two-edge patterns joined on a shared endpoint;
//   - HORIZONTAL expansion: over the matches of each frequent pattern,
//     mine literals (x.A ⊗ y.B, x.A ⊗ c, x.A + y.B = z.C) whose
//     confidence on the match sample meets the threshold.
// Rules discovered from a graph hold on (nearly) all of its subgraphs —
// exactly the "strongly satisfied" property the paper requires of its
// experiment rules.

#ifndef NGD_DISCOVERY_MINER_H_
#define NGD_DISCOVERY_MINER_H_

#include "core/ngd.h"
#include "graph/graph.h"

namespace ngd {

struct MinerOptions {
  size_t min_support = 8;      ///< minimum matches for a frequent pattern
  double min_confidence = 1.0; ///< fraction of matches satisfying Y
  size_t max_matches_per_pattern = 4000;  ///< sampling cap
  size_t max_rules = 50;
  bool mine_two_edge_patterns = true;
  /// Fan-out patterns with three edges from a shared source — needed for
  /// 3-leaf dependencies like femalePopulation + malePopulation =
  /// populationTotal.
  bool mine_three_edge_fanouts = true;
  bool mine_sum_literals = true;  ///< x.A + y.B = z.C (3-var equalities)
  /// Run the Σ-optimizer (reason/sigma_optimizer.h) over the mined set
  /// before returning: rules implied by other mined rules — inter-pattern
  /// duplicates and consequences the per-pair `=`-subsumes-`<=`/`>=`
  /// shortcut cannot see — are suppressed. Off returns the raw levelwise
  /// output.
  bool suppress_implied = true;
};

/// Mines NGDs that hold on `g` with the requested confidence.
NgdSet DiscoverNgds(const Graph& g, const MinerOptions& opts);

}  // namespace ngd

#endif  // NGD_DISCOVERY_MINER_H_
