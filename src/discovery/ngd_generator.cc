#include "discovery/ngd_generator.h"

#include <algorithm>
#include <unordered_map>

#include "util/rng.h"

namespace ngd {

namespace {

/// A sampled concrete subgraph: nodes (graph ids) and edges among them.
struct Sample {
  std::vector<NodeId> nodes;
  struct Edge {
    int src;  // index into nodes
    int dst;
    LabelId label;
  };
  std::vector<Edge> edges;

  int IndexOf(NodeId v) const {
    for (size_t i = 0; i < nodes.size(); ++i) {
      if (nodes[i] == v) return static_cast<int>(i);
    }
    return -1;
  }
};

/// Random-walks `g` from a random seed, collecting a connected subgraph
/// whose pattern diameter lands near `target_diameter`.
bool SampleSubgraph(const Graph& g, int target_diameter, Rng* rng,
                    Sample* out) {
  if (g.NumNodes() == 0) return false;
  for (int attempt = 0; attempt < 30; ++attempt) {
    NodeId seed =
        static_cast<NodeId>(rng->UniformInt(0, g.NumNodes() - 1));
    if (g.AdjSize(seed) == 0) continue;
    Sample s;
    s.nodes.push_back(seed);
    // Walk: extend a frontier node via a random incident edge; bias toward
    // path growth (reaching the diameter) then add closing edges.
    int want_edges = target_diameter + static_cast<int>(rng->UniformInt(0, 2));
    NodeId walker = seed;
    for (int step = 0; step < want_edges * 4 &&
                       static_cast<int>(s.edges.size()) < want_edges;
         ++step) {
      const auto& outs = g.OutEdges(walker);
      const auto& ins = g.InEdges(walker);
      size_t total = outs.size() + ins.size();
      if (total == 0) {
        walker = rng->PickFrom(s.nodes);
        continue;
      }
      size_t pick = static_cast<size_t>(rng->UniformInt(0, total - 1));
      bool is_out = pick < outs.size();
      const AdjEntry& e = is_out ? outs[pick] : ins[pick - outs.size()];
      if (e.state != EdgeState::kBase) continue;
      NodeId other = e.other;
      int oi = s.IndexOf(other);
      if (oi < 0) {
        if (s.nodes.size() >= 8) {  // keep patterns small
          walker = rng->PickFrom(s.nodes);
          continue;
        }
        s.nodes.push_back(other);
        oi = static_cast<int>(s.nodes.size()) - 1;
      }
      int wi = s.IndexOf(walker);
      Sample::Edge se = is_out ? Sample::Edge{wi, oi, e.label}
                               : Sample::Edge{oi, wi, e.label};
      bool dup = false;
      for (const auto& ex : s.edges) {
        if (ex.src == se.src && ex.dst == se.dst && ex.label == se.label) {
          dup = true;
          break;
        }
      }
      if (!dup) s.edges.push_back(se);
      walker = other;
    }
    if (s.edges.empty()) continue;
    *out = std::move(s);
    return true;
  }
  return false;
}

/// Numeric attributes available on a sampled node.
std::vector<std::pair<AttrId, int64_t>> NumericAttrs(const Graph& g,
                                                     NodeId v) {
  std::vector<std::pair<AttrId, int64_t>> out;
  for (const auto& [attr, value] : g.Attrs(v)) {
    if (value.is_int()) out.push_back({attr, value.AsInt()});
  }
  return out;
}

}  // namespace

NgdSet GenerateNgdSet(const Graph& g, const NgdGenOptions& opts) {
  Rng rng(opts.seed);
  NgdSet set;
  size_t guard = 0;
  while (set.size() < opts.count && ++guard < opts.count * 40) {
    int target_diameter = static_cast<int>(
        rng.UniformInt(opts.min_diameter, opts.max_diameter));
    Sample sample;
    if (!SampleSubgraph(g, target_diameter, &rng, &sample)) continue;

    Pattern pattern;
    for (size_t i = 0; i < sample.nodes.size(); ++i) {
      LabelId label = rng.Bernoulli(opts.wildcard_prob)
                          ? kWildcardLabel
                          : g.NodeLabel(sample.nodes[i]);
      pattern.AddNode("x" + std::to_string(i), label);
    }
    bool edges_ok = true;
    for (const auto& e : sample.edges) {
      if (!pattern.AddEdge(e.src, e.dst, e.label).ok()) {
        edges_ok = false;
        break;
      }
    }
    if (!edges_ok || !pattern.IsConnected()) continue;

    // Literal synthesis calibrated on the sampled instance: build linear
    // expressions over numeric attributes of the sampled nodes; thresholds
    // are the sampled value of the expression, possibly tightened to plant
    // a violation.
    auto make_expr = [&](int64_t* sampled_value) -> std::optional<Expr> {
      size_t terms = static_cast<size_t>(
          rng.UniformInt(1, static_cast<int64_t>(opts.max_expr_terms)));
      std::optional<Expr> expr;
      int64_t total = 0;
      for (size_t t = 0; t < terms; ++t) {
        int var = static_cast<int>(
            rng.UniformInt(0, static_cast<int64_t>(sample.nodes.size()) - 1));
        auto attrs = NumericAttrs(g, sample.nodes[var]);
        if (attrs.empty()) continue;
        auto [attr, value] = rng.PickFrom(attrs);
        int64_t coef = rng.UniformInt(1, 3);
        if (rng.Bernoulli(0.3)) coef = -coef;
        Expr term = Expr::Mul(Expr::IntConst(coef), Expr::Var(var, attr));
        total += coef * value;
        expr = expr.has_value() ? Expr::Add(*expr, std::move(term))
                                : std::move(term);
      }
      if (!expr.has_value()) return std::nullopt;
      *sampled_value = total;
      return expr;
    };

    size_t num_literals = static_cast<size_t>(
        rng.UniformInt(1, static_cast<int64_t>(opts.max_literals)));
    std::vector<Literal> x_lits, y_lits;
    for (size_t li = 0; li < num_literals; ++li) {
      int64_t sampled = 0;
      std::optional<Expr> expr = make_expr(&sampled);
      if (!expr.has_value()) continue;
      bool to_x = !x_lits.empty() || li + 1 < num_literals
                      ? rng.Bernoulli(opts.x_literal_prob)
                      : false;
      if (to_x && y_lits.empty() && li + 1 == num_literals) to_x = false;
      if (to_x) {
        // Precondition the sampled instance satisfies: expr <= sampled + s.
        x_lits.emplace_back(std::move(*expr), CmpOp::kLe,
                            Expr::IntConst(sampled + rng.UniformInt(0, 50)));
      } else {
        bool violated = rng.Bernoulli(opts.violation_rate);
        // Y literal: expr <= bound. Violated on the sample iff bound is
        // below the sampled value.
        int64_t bound = violated ? sampled - 1 - rng.UniformInt(0, 20)
                                 : sampled + rng.UniformInt(0, 100);
        CmpOp op = rng.Bernoulli(0.25) ? CmpOp::kNe : CmpOp::kLe;
        if (op == CmpOp::kNe) {
          bound = violated ? sampled : sampled + 1 + rng.UniformInt(0, 50);
        }
        y_lits.emplace_back(std::move(*expr), op, Expr::IntConst(bound));
      }
    }
    if (y_lits.empty()) continue;

    Ngd ngd("gen" + std::to_string(set.size()), std::move(pattern),
            std::move(x_lits), std::move(y_lits));
    if (!ngd.Validate().ok()) continue;
    set.Add(std::move(ngd));
  }
  return set;
}

namespace {

/// Relaxes a comparison literal by a positive slack so the original
/// literal implies the result; nullopt when the shape has no sound
/// constant-side weakening (≠, or = against a non-integer-constant side).
std::optional<Literal> WeakenLiteral(const Literal& lit, int64_t slack) {
  const bool rhs_const = lit.rhs().IsValid() &&
                         lit.rhs().kind() == Expr::Kind::kIntConst;
  auto shifted_rhs = [&](int64_t delta) -> std::optional<Expr> {
    if (rhs_const) {
      const int64_t v = lit.rhs().int_value();
      // Stay away from the int64 rim; callers fall back to a duplicate.
      if (delta > 0 && v > INT64_MAX - delta) return std::nullopt;
      if (delta < 0 && v < INT64_MIN - delta) return std::nullopt;
      return Expr::IntConst(v + delta);
    }
    return delta > 0
               ? Expr::Add(lit.rhs(), Expr::IntConst(delta))
               : Expr::Sub(lit.rhs(), Expr::IntConst(-delta));
  };
  switch (lit.op()) {
    case CmpOp::kLe:
    case CmpOp::kLt: {
      auto rhs = shifted_rhs(slack);
      if (!rhs.has_value()) return std::nullopt;
      return Literal(lit.lhs(), lit.op(), *std::move(rhs));
    }
    case CmpOp::kGe:
    case CmpOp::kGt: {
      auto rhs = shifted_rhs(-slack);
      if (!rhs.has_value()) return std::nullopt;
      return Literal(lit.lhs(), lit.op(), *std::move(rhs));
    }
    case CmpOp::kEq: {
      // e = c implies e <= c + slack; restricted to integer-constant
      // bounds so string equalities are never turned into order
      // comparisons (which are unsatisfiable on strings, not weaker).
      if (!rhs_const) return std::nullopt;
      auto rhs = shifted_rhs(slack);
      if (!rhs.has_value()) return std::nullopt;
      return Literal(lit.lhs(), CmpOp::kLe, *std::move(rhs));
    }
    case CmpOp::kNe:
      return std::nullopt;
  }
  return std::nullopt;
}

}  // namespace

NgdSet InflateWithImpliedVariants(const NgdSet& base,
                                  const InflateOptions& opts) {
  Rng rng(opts.seed);
  NgdSet out;
  for (const Ngd& ngd : base.ngds()) out.Add(ngd);
  for (size_t i = 0; i < base.size(); ++i) {
    const Ngd& b = base[i];
    for (size_t k = 0; k < opts.variants_per_rule; ++k) {
      const std::string name =
          b.name() + "_imp" + std::to_string(k);
      std::vector<Literal> y;
      bool weaken = !rng.Bernoulli(opts.duplicate_fraction);
      for (const Literal& lit : b.Y()) {
        std::optional<Literal> w;
        if (weaken) {
          w = WeakenLiteral(lit, rng.UniformInt(1, opts.max_weaken));
        }
        // Unweakenable literals ride along verbatim; a variant where
        // nothing weakened is an exact duplicate — implied all the same.
        y.push_back(w.has_value() ? *std::move(w) : lit);
      }
      out.Add(Ngd(name, b.pattern(), b.X(), std::move(y)));
    }
  }
  return out;
}

}  // namespace ngd
