#include "reason/linear_solver.h"

#include <algorithm>
#include <cassert>
#include <optional>

namespace ngd {

namespace {

using Int128 = __int128;

/// Internal normalized constraint: sum(terms) <= rhs.
struct LeConstraint {
  std::vector<LinTerm> terms;
  int64_t rhs;
};

/// Disequality: sum(terms) != rhs.
struct NeConstraint {
  std::vector<LinTerm> terms;
  int64_t rhs;
};

struct Interval {
  std::optional<int64_t> lo;
  std::optional<int64_t> hi;

  bool Empty() const { return lo && hi && *lo > *hi; }
};

/// Combines duplicate variables; drops zero coefficients.
std::vector<LinTerm> CanonicalTerms(const std::vector<LinTerm>& terms) {
  std::vector<LinTerm> out;
  for (const LinTerm& t : terms) {
    if (t.coef == 0) continue;
    bool merged = false;
    for (LinTerm& o : out) {
      if (o.var == t.var) {
        o.coef += t.coef;
        merged = true;
        break;
      }
    }
    if (!merged) out.push_back(t);
  }
  out.erase(std::remove_if(out.begin(), out.end(),
                           [](const LinTerm& t) { return t.coef == 0; }),
            out.end());
  return out;
}

class Search {
 public:
  Search(int num_vars, const SolverOptions& opts) : opts_(opts) {
    intervals_.resize(num_vars);
  }

  std::vector<LeConstraint> les;
  std::vector<NeConstraint> nes;

  SolveResult Run(std::vector<int64_t>* solution) {
    return Branch(intervals_, 0, solution);
  }

 private:
  /// Tightens intervals from the ≤-constraints to fixpoint.
  /// Returns false when some interval becomes empty or a constraint is
  /// unsatisfiable outright.
  bool Propagate(std::vector<Interval>* iv) const {
    for (int round = 0; round < 64; ++round) {
      bool changed = false;
      for (const LeConstraint& c : les) {
        // For each variable j: a_j x_j <= rhs - sum_{i != j} min(a_i x_i).
        // First check constant constraints.
        if (c.terms.empty()) {
          if (0 > c.rhs) return false;
          continue;
        }
        for (size_t j = 0; j < c.terms.size(); ++j) {
          Int128 rest_min = 0;
          bool rest_bounded = true;
          for (size_t i = 0; i < c.terms.size(); ++i) {
            if (i == j) continue;
            const LinTerm& t = c.terms[i];
            const Interval& x = (*iv)[t.var];
            if (t.coef > 0) {
              if (!x.lo) {
                rest_bounded = false;
                break;
              }
              rest_min += Int128(t.coef) * *x.lo;
            } else {
              if (!x.hi) {
                rest_bounded = false;
                break;
              }
              rest_min += Int128(t.coef) * *x.hi;
            }
          }
          if (!rest_bounded) continue;
          const LinTerm& t = c.terms[j];
          Interval& x = (*iv)[t.var];
          Int128 slack = Int128(c.rhs) - rest_min;
          if (t.coef > 0) {
            // x_j <= floor(slack / coef)
            Int128 bound = slack >= 0 ? slack / t.coef
                                      : -((-slack + t.coef - 1) / t.coef);
            int64_t b = Clamp(bound);
            if (!x.hi || *x.hi > b) {
              x.hi = b;
              changed = true;
            }
          } else {
            // x_j >= ceil(slack / coef), coef < 0.
            Int128 neg = -t.coef;
            Int128 bound = slack >= 0 ? -(slack / neg)
                                      : ((-slack) + neg - 1) / neg;
            int64_t b = Clamp(bound);
            if (!x.lo || *x.lo < b) {
              x.lo = b;
              changed = true;
            }
          }
          if (x.Empty()) return false;
        }
      }
      if (!changed) return true;
    }
    return true;  // fixpoint not reached within cap; intervals still sound
  }

  static int64_t Clamp(Int128 v) {
    const Int128 lo = INT64_MIN / 4, hi = INT64_MAX / 4;
    if (v < lo) return static_cast<int64_t>(lo);
    if (v > hi) return static_cast<int64_t>(hi);
    return static_cast<int64_t>(v);
  }

  bool AllAssigned(const std::vector<Interval>& iv) const {
    for (const Interval& x : iv) {
      if (!x.lo || !x.hi || *x.lo != *x.hi) return false;
    }
    return true;
  }

  bool CheckComplete(const std::vector<Interval>& iv) const {
    auto value_of = [&](int var) { return *iv[var].lo; };
    for (const LeConstraint& c : les) {
      Int128 sum = 0;
      for (const LinTerm& t : c.terms) sum += Int128(t.coef) * value_of(t.var);
      if (sum > c.rhs) return false;
    }
    for (const NeConstraint& c : nes) {
      Int128 sum = 0;
      for (const LinTerm& t : c.terms) sum += Int128(t.coef) * value_of(t.var);
      if (sum == c.rhs) return false;
    }
    return true;
  }

  /// Finds a violated disequality under the current point assignment of
  /// its variables; returns index or -1. Only fully-assigned disequalities
  /// are reported.
  int FindViolatedNe(const std::vector<Interval>& iv) const {
    for (size_t k = 0; k < nes.size(); ++k) {
      const NeConstraint& c = nes[k];
      Int128 sum = 0;
      bool assigned = true;
      for (const LinTerm& t : c.terms) {
        const Interval& x = iv[t.var];
        if (!x.lo || !x.hi || *x.lo != *x.hi) {
          assigned = false;
          break;
        }
        sum += Int128(t.coef) * *x.lo;
      }
      if (assigned && sum == c.rhs) return static_cast<int>(k);
    }
    return -1;
  }

  SolveResult Branch(std::vector<Interval> iv, int depth,
                     std::vector<int64_t>* solution) {
    if (++nodes_ > opts_.max_branch_nodes) return SolveResult::kUnknown;
    if (!Propagate(&iv)) return SolveResult::kUnsat;

    if (AllAssigned(iv)) {
      if (CheckComplete(iv)) {
        if (solution != nullptr) {
          solution->clear();
          for (const Interval& x : iv) solution->push_back(*x.lo);
        }
        return SolveResult::kSat;
      }
      return SolveResult::kUnsat;
    }

    // Violated disequality on assigned prefix: dead end (the split below
    // resolves disequalities only once both sides are assigned).
    if (FindViolatedNe(iv) >= 0) return SolveResult::kUnsat;

    // Pick the unassigned variable with the smallest range; clamp
    // unbounded sides to ±domain_bound (tracking clamping for kUnknown).
    int pick = -1;
    Int128 best_range = 0;
    bool clamped_pick = false;
    for (size_t v = 0; v < iv.size(); ++v) {
      Interval x = iv[v];
      if (x.lo && x.hi && *x.lo == *x.hi) continue;
      bool clamped = false;
      int64_t lo, hi;
      if (x.lo) {
        lo = *x.lo;
      } else {
        lo = -opts_.domain_bound;
        clamped = true;
      }
      if (x.hi) {
        hi = *x.hi;
      } else {
        hi = opts_.domain_bound;
        clamped = true;
      }
      Int128 range = Int128(hi) - lo;
      if (pick < 0 || range < best_range) {
        pick = static_cast<int>(v);
        best_range = range;
        clamped_pick = clamped;
      }
    }
    assert(pick >= 0);
    Interval px = iv[pick];
    int64_t lo = px.lo.value_or(-opts_.domain_bound);
    int64_t hi = px.hi.value_or(opts_.domain_bound);
    if (lo > hi) return SolveResult::kUnsat;

    bool saw_unknown = clamped_pick;
    if (lo == hi || best_range == 0) {
      iv[pick].lo = iv[pick].hi = lo;
      SolveResult r = Branch(iv, depth + 1, solution);
      return r;
    }
    // Bisect; try lower half first (small-magnitude witnesses).
    int64_t mid = lo + (hi - lo) / 2;
    {
      std::vector<Interval> left = iv;
      left[pick].lo = lo;
      left[pick].hi = mid;
      SolveResult r = Branch(std::move(left), depth + 1, solution);
      if (r == SolveResult::kSat) return r;
      if (r == SolveResult::kUnknown) saw_unknown = true;
    }
    {
      std::vector<Interval> right = iv;
      right[pick].lo = mid + 1;
      right[pick].hi = hi;
      SolveResult r = Branch(std::move(right), depth + 1, solution);
      if (r == SolveResult::kSat) return r;
      if (r == SolveResult::kUnknown) saw_unknown = true;
    }
    return saw_unknown ? SolveResult::kUnknown : SolveResult::kUnsat;
  }

  const SolverOptions& opts_;
  std::vector<Interval> intervals_;
  size_t nodes_ = 0;
};

}  // namespace

SolveResult LinearSolver::Solve(std::vector<int64_t>* solution) {
  Search search(num_vars_, opts_);
  for (const LinConstraint& c : input_) {
    std::vector<LinTerm> terms = CanonicalTerms(c.terms);
    auto add_le = [&](std::vector<LinTerm> t, int64_t rhs) {
      search.les.push_back(LeConstraint{std::move(t), rhs});
    };
    auto negated = [&]() {
      std::vector<LinTerm> t = terms;
      for (LinTerm& x : t) x.coef = -x.coef;
      return t;
    };
    switch (c.op) {
      case CmpOp::kLe:
        add_le(terms, c.rhs);
        break;
      case CmpOp::kLt:
        add_le(terms, c.rhs - 1);
        break;
      case CmpOp::kGe:
        add_le(negated(), -c.rhs);
        break;
      case CmpOp::kGt:
        add_le(negated(), -c.rhs - 1);
        break;
      case CmpOp::kEq:
        add_le(terms, c.rhs);
        add_le(negated(), -c.rhs);
        break;
      case CmpOp::kNe:
        search.nes.push_back(NeConstraint{terms, c.rhs});
        break;
    }
  }

  // Disequality case split: kNe constraints whose variables never get
  // point-assigned would otherwise stall, so split each ≠ into two
  // branches (< and >) up front when there are few of them; with many,
  // rely on the in-search dead-end detection plus bisection.
  if (!search.nes.empty() && search.nes.size() <= 12) {
    // Recursive expansion over ≠ constraints.
    std::vector<NeConstraint> nes = std::move(search.nes);
    search.nes.clear();
    // 2^|nes| sign patterns.
    size_t patterns = size_t{1} << nes.size();
    bool saw_unknown = false;
    for (size_t mask = 0; mask < patterns; ++mask) {
      Search branch(num_vars_, opts_);
      branch.les = search.les;
      for (size_t k = 0; k < nes.size(); ++k) {
        std::vector<LinTerm> t = nes[k].terms;
        if (mask & (size_t{1} << k)) {
          // sum < rhs  =>  sum <= rhs - 1
          branch.les.push_back(LeConstraint{t, nes[k].rhs - 1});
        } else {
          // sum > rhs  =>  -sum <= -rhs - 1
          for (LinTerm& x : t) x.coef = -x.coef;
          branch.les.push_back(LeConstraint{std::move(t), -nes[k].rhs - 1});
        }
      }
      SolveResult r = branch.Run(solution);
      if (r == SolveResult::kSat) return r;
      if (r == SolveResult::kUnknown) saw_unknown = true;
    }
    return saw_unknown ? SolveResult::kUnknown : SolveResult::kUnsat;
  }
  return search.Run(solution);
}

}  // namespace ngd
