#include "reason/linear_solver.h"

#include <algorithm>
#include <cassert>
#include <optional>
#include <string>
#include <unordered_map>

#include "util/int128.h"

namespace ngd {

namespace {

/// Internal term with a widened coefficient: input coefficients are
/// int64, but normalization (negation for ≥/>, duplicate-term merging)
/// must not wrap at the int64 rim — the PR 1 overflow class. Products
/// coef·bound stay within Int128 because bounds are clamped to
/// |INT64|/4 and |coef| ≤ 2^64.
struct ITerm {
  int var;
  Int128 coef;
};

/// Internal normalized constraint: sum(terms) <= rhs. rhs is widened for
/// the same reason: negating INT64_MIN or forming `rhs - 1` at the
/// boundary is UB in 64 bits.
struct LeConstraint {
  std::vector<ITerm> terms;
  Int128 rhs;
};

/// Disequality: sum(terms) != rhs.
struct NeConstraint {
  std::vector<ITerm> terms;
  Int128 rhs;
};

struct Interval {
  std::optional<int64_t> lo;
  std::optional<int64_t> hi;

  bool Empty() const { return lo && hi && *lo > *hi; }
};

/// Combines duplicate variables (in Int128, immune to coefficient-sum
/// wraparound); drops zero coefficients; sorts by variable so equal
/// linear forms are term-for-term identical.
std::vector<ITerm> CanonicalTerms(const std::vector<LinTerm>& terms) {
  std::vector<ITerm> out;
  for (const LinTerm& t : terms) {
    if (t.coef == 0) continue;
    bool merged = false;
    for (ITerm& o : out) {
      if (o.var == t.var) {
        o.coef += t.coef;
        merged = true;
        break;
      }
    }
    if (!merged) out.push_back(ITerm{t.var, t.coef});
  }
  out.erase(std::remove_if(out.begin(), out.end(),
                           [](const ITerm& t) { return t.coef == 0; }),
            out.end());
  std::sort(out.begin(), out.end(),
            [](const ITerm& a, const ITerm& b) { return a.var < b.var; });
  return out;
}

/// Pairwise opposite-form refutation — the one Fourier–Motzkin step
/// interval propagation cannot see. Two constraints whose term vectors
/// are proportional with opposite sign, `s·f ≤ r1` and `-t·f ≤ r2`
/// (s, t > 0), are jointly infeasible iff floor(r1/s) + floor(r2/t) < 0:
/// summing the normalized forms gives 0 ≤ floor(r1/s) + floor(r2/t).
/// This decides exactly the conjunctions redundancy reasoning produces —
/// a linear form asserted ≤ c by one rule and ≥ c' > c by another —
/// where bisection would grind through the whole clamped domain and give
/// up with kUnknown.
bool OppositePairInfeasible(const std::vector<LeConstraint>& les) {
  struct Bound {
    bool has_pos = false;  ///< f ≤ pos seen
    bool has_neg = false;  ///< -f ≤ neg seen (i.e. f ≥ -neg)
    Int128 pos = 0;
    Int128 neg = 0;
  };
  // Key: normalized term vector (divided by |gcd|, sign fixed so the
  // first coefficient is positive), rendered as a string of fixed-width
  // chunks. Systems here are tiny; simplicity over hashing finesse.
  std::unordered_map<std::string, Bound> forms;
  for (const LeConstraint& c : les) {
    if (c.terms.empty()) continue;
    Int128 g = 0;
    for (const ITerm& t : c.terms) g = Gcd128(g, t.coef);
    const bool flip = c.terms.front().coef < 0;
    std::string key;
    key.reserve(c.terms.size() * 24);
    for (const ITerm& t : c.terms) {
      Int128 coef = t.coef / g;
      if (flip) coef = -coef;
      key.append(std::to_string(t.var));
      key.push_back(':');
      key.append(Int128ToString(coef));
      key.push_back(',');
    }
    // Normalized rhs: sum' <= floor(rhs / g), integer-sound since g > 0.
    Int128 rhs = c.rhs;
    Int128 bound = rhs >= 0 ? rhs / g : -((-rhs + g - 1) / g);
    Bound& b = forms[key];
    if (flip) {
      if (!b.has_neg || bound < b.neg) b.neg = bound;
      b.has_neg = true;
    } else {
      if (!b.has_pos || bound < b.pos) b.pos = bound;
      b.has_pos = true;
    }
    if (b.has_pos && b.has_neg && b.pos + b.neg < 0) return true;
  }
  return false;
}

class Search {
 public:
  Search(int num_vars, const SolverOptions& opts) : opts_(opts) {
    intervals_.resize(num_vars);
  }

  std::vector<LeConstraint> les;
  std::vector<NeConstraint> nes;

  SolveResult Run(std::vector<int64_t>* solution) {
    if (OppositePairInfeasible(les)) return SolveResult::kUnsat;
    SolveResult r = Branch(intervals_, 0, solution);
    if (r == SolveResult::kUnsat && saturated_) return SolveResult::kUnknown;
    return r;
  }

 private:
  /// Tightens intervals from the ≤-constraints to fixpoint.
  /// Returns false when some interval becomes empty or a constraint is
  /// unsatisfiable outright.
  bool Propagate(std::vector<Interval>* iv) const {
    for (int round = 0; round < 64; ++round) {
      bool changed = false;
      for (const LeConstraint& c : les) {
        // For each variable j: a_j x_j <= rhs - sum_{i != j} min(a_i x_i).
        // First check constant constraints.
        if (c.terms.empty()) {
          if (0 > c.rhs) return false;
          continue;
        }
        for (size_t j = 0; j < c.terms.size(); ++j) {
          Int128 rest_min = 0;
          bool rest_bounded = true;
          for (size_t i = 0; i < c.terms.size(); ++i) {
            if (i == j) continue;
            const ITerm& t = c.terms[i];
            const Interval& x = (*iv)[t.var];
            if (t.coef > 0) {
              if (!x.lo) {
                rest_bounded = false;
                break;
              }
              rest_min += t.coef * *x.lo;
            } else {
              if (!x.hi) {
                rest_bounded = false;
                break;
              }
              rest_min += t.coef * *x.hi;
            }
          }
          if (!rest_bounded) continue;
          const ITerm& t = c.terms[j];
          Interval& x = (*iv)[t.var];
          Int128 slack = c.rhs - rest_min;
          if (t.coef > 0) {
            // x_j <= floor(slack / coef)
            Int128 bound = slack >= 0 ? slack / t.coef
                                      : -((-slack + t.coef - 1) / t.coef);
            int64_t b = Clamp(bound);
            if (!x.hi || *x.hi > b) {
              x.hi = b;
              changed = true;
            }
          } else {
            // x_j >= ceil(slack / coef), coef < 0.
            Int128 neg = -t.coef;
            Int128 bound = slack >= 0 ? -(slack / neg)
                                      : ((-slack) + neg - 1) / neg;
            int64_t b = Clamp(bound);
            if (!x.lo || *x.lo < b) {
              x.lo = b;
              changed = true;
            }
          }
          if (x.Empty()) return false;
        }
      }
      if (!changed) return true;
    }
    return true;  // fixpoint not reached within cap; intervals still sound
  }

  /// Narrows a derived bound into the representable working range. A
  /// saturating narrow LOOSENS the bound (sound), but any kUnsat reached
  /// afterwards may be an artifact of the loosened rim — Run() downgrades
  /// it to kUnknown, the honest answer outside the exact range.
  int64_t Clamp(Int128 v) const {
    const Int128 lo = INT64_MIN / 4, hi = INT64_MAX / 4;
    if (v < lo) {
      saturated_ = true;
      return static_cast<int64_t>(lo);
    }
    if (v > hi) {
      saturated_ = true;
      return static_cast<int64_t>(hi);
    }
    return static_cast<int64_t>(v);
  }

  bool AllAssigned(const std::vector<Interval>& iv) const {
    for (const Interval& x : iv) {
      if (!x.lo || !x.hi || *x.lo != *x.hi) return false;
    }
    return true;
  }

  bool CheckComplete(const std::vector<Interval>& iv) const {
    auto value_of = [&](int var) { return *iv[var].lo; };
    for (const LeConstraint& c : les) {
      Int128 sum = 0;
      for (const ITerm& t : c.terms) sum += t.coef * value_of(t.var);
      if (sum > c.rhs) return false;
    }
    for (const NeConstraint& c : nes) {
      Int128 sum = 0;
      for (const ITerm& t : c.terms) sum += t.coef * value_of(t.var);
      if (sum == c.rhs) return false;
    }
    return true;
  }

  /// Finds a violated disequality under the current point assignment of
  /// its variables; returns index or -1. Only fully-assigned disequalities
  /// are reported.
  int FindViolatedNe(const std::vector<Interval>& iv) const {
    for (size_t k = 0; k < nes.size(); ++k) {
      const NeConstraint& c = nes[k];
      Int128 sum = 0;
      bool assigned = true;
      for (const ITerm& t : c.terms) {
        const Interval& x = iv[t.var];
        if (!x.lo || !x.hi || *x.lo != *x.hi) {
          assigned = false;
          break;
        }
        sum += t.coef * *x.lo;
      }
      if (assigned && sum == c.rhs) return static_cast<int>(k);
    }
    return -1;
  }

  SolveResult Branch(std::vector<Interval> iv, int depth,
                     std::vector<int64_t>* solution) {
    if (++nodes_ > opts_.max_branch_nodes) return SolveResult::kUnknown;
    if (!Propagate(&iv)) return SolveResult::kUnsat;

    if (AllAssigned(iv)) {
      if (CheckComplete(iv)) {
        if (solution != nullptr) {
          solution->clear();
          for (const Interval& x : iv) solution->push_back(*x.lo);
        }
        return SolveResult::kSat;
      }
      return SolveResult::kUnsat;
    }

    // Violated disequality on assigned prefix: dead end (the split below
    // resolves disequalities only once both sides are assigned).
    if (FindViolatedNe(iv) >= 0) return SolveResult::kUnsat;

    // Pick the unassigned variable with the smallest range; clamp
    // unbounded sides to ±domain_bound (tracking clamping for kUnknown).
    int pick = -1;
    Int128 best_range = 0;
    bool clamped_pick = false;
    for (size_t v = 0; v < iv.size(); ++v) {
      Interval x = iv[v];
      if (x.lo && x.hi && *x.lo == *x.hi) continue;
      bool clamped = false;
      int64_t lo, hi;
      if (x.lo) {
        lo = *x.lo;
      } else {
        lo = -opts_.domain_bound;
        clamped = true;
      }
      if (x.hi) {
        hi = *x.hi;
      } else {
        hi = opts_.domain_bound;
        clamped = true;
      }
      Int128 range = Int128(hi) - lo;
      if (pick < 0 || range < best_range) {
        pick = static_cast<int>(v);
        best_range = range;
        clamped_pick = clamped;
      }
    }
    assert(pick >= 0);
    Interval px = iv[pick];
    int64_t lo = px.lo.value_or(-opts_.domain_bound);
    int64_t hi = px.hi.value_or(opts_.domain_bound);
    if (lo > hi) {
      // Empty only because an unbounded side was clamped to the search
      // domain (a genuinely empty interval dies in Propagate): beyond the
      // domain there may well be a solution, so kUnsat would be a
      // fabricated verdict.
      return px.lo.has_value() && px.hi.has_value() ? SolveResult::kUnsat
                                                    : SolveResult::kUnknown;
    }

    bool saw_unknown = clamped_pick;
    if (lo == hi || best_range == 0) {
      iv[pick].lo = iv[pick].hi = lo;
      SolveResult r = Branch(iv, depth + 1, solution);
      // Same honesty rule as the bisection merge below: when the point
      // only exists because an unbounded side was clamped to the search
      // domain, its refutation says nothing about values beyond the
      // domain — kUnsat here would be a fabricated verdict (e.g.
      // x >= domain_bound pins x to the clamp; a disequality at exactly
      // that value refutes the point, not the constraint system).
      if (r == SolveResult::kUnsat && clamped_pick) {
        return SolveResult::kUnknown;
      }
      return r;
    }
    // Bisect; try lower half first (small-magnitude witnesses).
    int64_t mid = lo + (hi - lo) / 2;
    {
      std::vector<Interval> left = iv;
      left[pick].lo = lo;
      left[pick].hi = mid;
      SolveResult r = Branch(std::move(left), depth + 1, solution);
      if (r == SolveResult::kSat) return r;
      if (r == SolveResult::kUnknown) saw_unknown = true;
    }
    {
      std::vector<Interval> right = iv;
      right[pick].lo = mid + 1;
      right[pick].hi = hi;
      SolveResult r = Branch(std::move(right), depth + 1, solution);
      if (r == SolveResult::kSat) return r;
      if (r == SolveResult::kUnknown) saw_unknown = true;
    }
    return saw_unknown ? SolveResult::kUnknown : SolveResult::kUnsat;
  }

  const SolverOptions& opts_;
  std::vector<Interval> intervals_;
  size_t nodes_ = 0;
  mutable bool saturated_ = false;
};

}  // namespace

SolveResult LinearSolver::Solve(std::vector<int64_t>* solution) {
  Search search(num_vars_, opts_);
  // All normalization arithmetic is Int128: `rhs - 1`, `-rhs` and
  // coefficient negation are exactly the operations that wrap at the
  // int64 rim (kLt with rhs = INT64_MIN, kGe/kEq with rhs = INT64_MIN,
  // coef = INT64_MIN), and a wrapped bound silently flips a constraint.
  for (const LinConstraint& c : input_) {
    std::vector<ITerm> terms = CanonicalTerms(c.terms);
    auto add_le = [&](std::vector<ITerm> t, Int128 rhs) {
      search.les.push_back(LeConstraint{std::move(t), rhs});
    };
    auto negated = [&]() {
      std::vector<ITerm> t = terms;
      for (ITerm& x : t) x.coef = -x.coef;
      return t;
    };
    const Int128 rhs = c.rhs;
    switch (c.op) {
      case CmpOp::kLe:
        add_le(terms, rhs);
        break;
      case CmpOp::kLt:
        add_le(terms, rhs - 1);
        break;
      case CmpOp::kGe:
        add_le(negated(), -rhs);
        break;
      case CmpOp::kGt:
        add_le(negated(), -rhs - 1);
        break;
      case CmpOp::kEq:
        add_le(terms, rhs);
        add_le(negated(), -rhs);
        break;
      case CmpOp::kNe:
        search.nes.push_back(NeConstraint{terms, rhs});
        break;
    }
  }

  // Disequality case split: kNe constraints whose variables never get
  // point-assigned would otherwise stall, so split each ≠ into two
  // branches (< and >) up front when there are few of them; with many,
  // rely on the in-search dead-end detection plus bisection.
  if (!search.nes.empty() && search.nes.size() <= 12) {
    // Recursive expansion over ≠ constraints.
    std::vector<NeConstraint> nes = std::move(search.nes);
    search.nes.clear();
    // 2^|nes| sign patterns.
    size_t patterns = size_t{1} << nes.size();
    bool saw_unknown = false;
    for (size_t mask = 0; mask < patterns; ++mask) {
      Search branch(num_vars_, opts_);
      branch.les = search.les;
      for (size_t k = 0; k < nes.size(); ++k) {
        std::vector<ITerm> t = nes[k].terms;
        if (mask & (size_t{1} << k)) {
          // sum < rhs  =>  sum <= rhs - 1
          branch.les.push_back(LeConstraint{t, nes[k].rhs - 1});
        } else {
          // sum > rhs  =>  -sum <= -rhs - 1
          for (ITerm& x : t) x.coef = -x.coef;
          branch.les.push_back(LeConstraint{std::move(t), -nes[k].rhs - 1});
        }
      }
      SolveResult r = branch.Run(solution);
      if (r == SolveResult::kSat) return r;
      if (r == SolveResult::kUnknown) saw_unknown = true;
    }
    return saw_unknown ? SolveResult::kUnknown : SolveResult::kUnsat;
  }
  return search.Run(solution);
}

}  // namespace ngd
