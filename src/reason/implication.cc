#include "reason/implication.h"

#include "detect/dect.h"

namespace ngd {

ImplicationReport CheckImplication(const NgdSet& sigma, const Ngd& phi,
                                   const SchemaPtr& schema,
                                   const ReasonOptions& opts) {
  ImplicationReport report;
  Status valid = phi.Validate();
  if (valid.ok()) valid = sigma.Validate();
  if (!valid.ok()) {
    report.implied = Decision::kUnknown;
    report.detail = valid.ToString();
    return report;
  }

  // Candidate witness model: the canonical graph of φ's pattern.
  std::vector<NodeId> offsets;
  std::unique_ptr<Graph> model =
      BuildCanonicalModel({&phi.pattern()}, schema, &offsets);

  std::vector<MatchObligation> obs;
  // The identity match of φ must be a violation.
  Binding identity(phi.pattern().NumNodes());
  for (size_t i = 0; i < identity.size(); ++i) {
    identity[i] = offsets[0] + static_cast<NodeId>(i);
  }
  obs.push_back(MatchObligation{&phi, identity, /*require_violation=*/true});

  // Every match of every NGD in Σ on the model must hold.
  for (size_t f = 0; f < sigma.size(); ++f) {
    const Ngd& ngd = sigma[f];
    SearchConfig cfg;
    cfg.graph = model.get();
    cfg.pattern = &ngd.pattern();
    cfg.find_violations = false;
    RunBatchSearch(cfg, [&](const Binding& h) {
      obs.push_back(MatchObligation{&ngd, h, false});
      return true;
    });
  }

  VarTable vars;
  ReasonOutcome outcome = SolveObligations(obs, &vars, *model, opts);
  switch (outcome.decision) {
    case Decision::kYes:
      report.implied = Decision::kNo;  // witness found: Σ ̸|= φ
      report.detail = "counterexample " + outcome.detail;
      break;
    case Decision::kNo:
      report.implied = Decision::kYes;
      report.detail = "no counterexample in the canonical-model family";
      break;
    case Decision::kUnknown:
      report.implied = Decision::kUnknown;
      report.detail = "solver budget exhausted";
      break;
  }
  return report;
}

}  // namespace ngd
