#include "reason/satisfiability.h"

#include <atomic>
#include <sstream>

#include "detect/dect.h"

namespace ngd {

namespace {

/// Fresh-label counter: canonical models must never reuse a fresh label
/// across calls, or patterns from different rules could accidentally
/// match each other's wildcard stand-ins.
std::atomic<uint64_t> g_fresh_label_counter{0};

class ObligationSolver {
 public:
  ObligationSolver(const std::vector<MatchObligation>& obs, VarTable* vars,
                   const Graph& model, const ReasonOptions& opts)
      : obs_(obs), vars_(vars), model_(model), opts_(opts) {}

  ReasonOutcome Run() {
    ConstraintSystem cs(opts_.solver);
    Decision d = Solve(0, cs, 0);
    ReasonOutcome out;
    out.decision = d;
    if (d == Decision::kYes) out.detail = witness_;
    return out;
  }

 private:
  /// Applies "literal lit must be TRUE under h": encodes, requires
  /// presence, branches over numeric alternatives via `cont`.
  template <typename Cont>
  Decision AssertTrue(const Literal& lit, const Binding& h,
                      const ConstraintSystem& cs, const Cont& cont) {
    auto enc = EncodeLiteral(lit, /*positive=*/true, h, vars_);
    if (!enc.ok()) return Decision::kUnknown;  // outside encoder fragment
    if (enc->cls == LitClass::kNeverTrue) return Decision::kNo;
    Decision result = Decision::kNo;
    if (enc->cls == LitClass::kString) {
      ConstraintSystem next = cs;
      for (int v : enc->attr_vars) {
        if (!next.RequirePresent(v)) return Decision::kNo;
      }
      if (!next.AddStringFact(*enc, true)) return Decision::kNo;
      return cont(next);
    }
    for (const NumericAlt& alt : enc->alts) {
      ConstraintSystem next = cs;
      bool ok = true;
      for (int v : enc->attr_vars) {
        if (!next.RequirePresent(v)) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      for (const LinConstraint& c : alt.constraints) next.AddNumeric(c);
      Decision d = cont(next);
      if (d == Decision::kYes) return d;
      if (d == Decision::kUnknown) result = Decision::kUnknown;
    }
    return result;
  }

  /// Applies "literal lit must be FALSE under h": either some attribute
  /// of the literal is absent, or all are present and the negated
  /// comparison holds.
  template <typename Cont>
  Decision AssertFalse(const Literal& lit, const Binding& h,
                       const ConstraintSystem& cs, const Cont& cont) {
    auto enc = EncodeLiteral(lit, /*positive=*/false, h, vars_);
    if (!enc.ok()) return Decision::kUnknown;
    Decision result = Decision::kNo;
    // Option (a): drop one attribute the literal needs.
    for (int v : enc->attr_vars) {
      ConstraintSystem next = cs;
      if (!next.RequireAbsent(v)) continue;
      Decision d = cont(next);
      if (d == Decision::kYes) return d;
      if (d == Decision::kUnknown) result = Decision::kUnknown;
    }
    // Option (b): attributes present, comparison negated.
    if (enc->cls == LitClass::kNeverTrue) return result;
    if (enc->cls == LitClass::kString) {
      ConstraintSystem next = cs;
      bool ok = true;
      for (int v : enc->attr_vars) {
        if (!next.RequirePresent(v)) {
          ok = false;
          break;
        }
      }
      if (ok && next.AddStringFact(*enc, false)) {
        Decision d = cont(next);
        if (d == Decision::kYes) return d;
        if (d == Decision::kUnknown) result = Decision::kUnknown;
      }
      return result;
    }
    for (const NumericAlt& alt : enc->alts) {
      ConstraintSystem next = cs;
      bool ok = true;
      for (int v : enc->attr_vars) {
        if (!next.RequirePresent(v)) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      for (const LinConstraint& c : alt.constraints) next.AddNumeric(c);
      Decision d = cont(next);
      if (d == Decision::kYes) return d;
      if (d == Decision::kUnknown) result = Decision::kUnknown;
    }
    return result;
  }

  /// Asserts every literal in `lits[from..]` true, then calls `done`.
  template <typename Done>
  Decision AssertAllTrue(const std::vector<Literal>& lits, size_t from,
                         const Binding& h, const ConstraintSystem& cs,
                         const Done& done) {
    if (from == lits.size()) return done(cs);
    return AssertTrue(lits[from], h, cs, [&](const ConstraintSystem& next) {
      return AssertAllTrue(lits, from + 1, h, next, done);
    });
  }

  /// `probed_numeric` is the numeric-constraint count at the last
  /// feasibility probe on this path — probing again is only worth the
  /// solver rebuild when an obligation actually added constraints.
  Decision Solve(size_t index, const ConstraintSystem& cs,
                 size_t probed_numeric) {
    if (++branches_ > opts_.max_branches) return Decision::kUnknown;
    // Early refutation: once an obligation has asserted new numeric
    // constraints, a starved feasibility probe (exact on kUnsat) kills
    // doomed branches here instead of at the leaves. Without it,
    // refuting an implied rule re-discovers the same contradiction under
    // every combination of the other obligations' alternatives —
    // exponentially many leaf solver calls for what propagation sees
    // immediately.
    if (index > 0 && index < obs_.size() &&
        cs.NumericCount() > probed_numeric) {
      if (cs.QuickCheck(*vars_) == SolveResult::kUnsat) {
        return Decision::kNo;
      }
      probed_numeric = cs.NumericCount();
    }
    if (index == obs_.size()) {
      SolveResult r = cs.Check(*vars_);
      if (r == SolveResult::kSat) {
        RecordWitness(cs);
        return Decision::kYes;
      }
      return r == SolveResult::kUnsat ? Decision::kNo : Decision::kUnknown;
    }
    const MatchObligation& ob = obs_[index];
    const auto& X = ob.ngd->X();
    const auto& Y = ob.ngd->Y();
    Decision result = Decision::kNo;
    auto merge = [&](Decision d) {
      if (d == Decision::kUnknown && result == Decision::kNo) {
        result = Decision::kUnknown;
      }
    };

    if (!ob.require_violation) {
      // X → Y must hold: (some X literal false) or (all Y literals true).
      for (const Literal& lx : X) {
        Decision d =
            AssertFalse(lx, ob.h, cs, [&](const ConstraintSystem& next) {
              return Solve(index + 1, next, probed_numeric);
            });
        if (d == Decision::kYes) return d;
        merge(d);
      }
      Decision d = AssertAllTrue(Y, 0, ob.h, cs,
                                 [&](const ConstraintSystem& next) {
                                   return Solve(index + 1, next,
                                                probed_numeric);
                                 });
      if (d == Decision::kYes) return d;
      merge(d);
      return result;
    }

    // Violation required: all of X true, some Y literal false.
    Decision d = AssertAllTrue(
        X, 0, ob.h, cs, [&](const ConstraintSystem& after_x) {
          Decision inner = Decision::kNo;
          for (const Literal& ly : Y) {
            Decision dy = AssertFalse(
                ly, ob.h, after_x, [&](const ConstraintSystem& next) {
                  return Solve(index + 1, next, probed_numeric);
                });
            if (dy == Decision::kYes) return dy;
            if (dy == Decision::kUnknown) inner = Decision::kUnknown;
          }
          return inner;
        });
    if (d == Decision::kYes) return d;
    merge(d);
    return result;
  }

  void RecordWitness(const ConstraintSystem& cs) {
    std::ostringstream os;
    auto witness = cs.BuildWitness(*vars_);
    os << "model: " << model_.NumNodes() << " nodes, "
       << model_.NumEdges(GraphView::kNew) << " edges";
    if (witness.has_value()) {
      os << "; attrs:";
      for (const auto& [var, value] : witness->ints) {
        const AttrVar& key = vars_->KeyOf(var);
        os << " n" << key.node << "."
           << model_.schema()->attrs().NameOf(key.attr) << "=" << value;
      }
      for (const auto& [var, value] : witness->strings) {
        const AttrVar& key = vars_->KeyOf(var);
        os << " n" << key.node << "."
           << model_.schema()->attrs().NameOf(key.attr) << "=\"" << value
           << "\"";
      }
    }
    witness_ = os.str();
  }

  const std::vector<MatchObligation>& obs_;
  VarTable* vars_;
  const Graph& model_;
  const ReasonOptions& opts_;
  size_t branches_ = 0;
  std::string witness_;
};

/// All matches of every NGD pattern on the candidate model, as hold-
/// obligations.
std::vector<MatchObligation> CollectObligations(const Graph& model,
                                                const NgdSet& sigma) {
  std::vector<MatchObligation> obs;
  for (size_t f = 0; f < sigma.size(); ++f) {
    const Ngd& ngd = sigma[f];
    SearchConfig cfg;
    cfg.graph = &model;
    cfg.pattern = &ngd.pattern();
    cfg.find_violations = false;
    RunBatchSearch(cfg, [&](const Binding& h) {
      obs.push_back(MatchObligation{&ngd, h, false});
      return true;
    });
  }
  return obs;
}

}  // namespace

ReasonOutcome SolveObligations(const std::vector<MatchObligation>& obs,
                               VarTable* vars, const Graph& model,
                               const ReasonOptions& opts) {
  if (opts.max_obligations > 0 && obs.size() > opts.max_obligations) {
    ReasonOutcome out;
    out.decision = Decision::kUnknown;
    out.detail = "obligation budget exceeded (" + std::to_string(obs.size()) +
                 " > " + std::to_string(opts.max_obligations) + ")";
    return out;
  }
  ObligationSolver solver(obs, vars, model, opts);
  return solver.Run();
}

std::unique_ptr<Graph> BuildCanonicalModel(
    const std::vector<const Pattern*>& patterns, const SchemaPtr& schema,
    std::vector<NodeId>* origin_offset) {
  auto model = std::make_unique<Graph>(schema);
  if (origin_offset != nullptr) origin_offset->clear();
  for (const Pattern* pattern : patterns) {
    NodeId base = static_cast<NodeId>(model->NumNodes());
    if (origin_offset != nullptr) origin_offset->push_back(base);
    for (const PatternNode& n : pattern->nodes()) {
      LabelId label = n.label;
      if (label == kWildcardLabel) {
        label = schema->InternLabel(
            "~fresh" +
            std::to_string(g_fresh_label_counter.fetch_add(1)));
      }
      model->AddNode(label);
    }
    for (const PatternEdge& e : pattern->edges()) {
      Status s = model->AddEdge(base + e.src, base + e.dst, e.label);
      (void)s;  // duplicate pattern edges are rejected at Pattern level
    }
  }
  return model;
}

namespace {

SatisfiabilityReport CheckOnCandidates(
    const NgdSet& sigma, const SchemaPtr& schema,
    const std::vector<std::vector<const Pattern*>>& candidates,
    const ReasonOptions& opts) {
  SatisfiabilityReport report;
  Status valid = sigma.Validate();
  if (!valid.ok()) {
    report.satisfiable = Decision::kUnknown;
    report.detail = valid.ToString();
    return report;
  }
  bool saw_unknown = false;
  for (const auto& patterns : candidates) {
    std::unique_ptr<Graph> model =
        BuildCanonicalModel(patterns, schema, nullptr);
    std::vector<MatchObligation> obs = CollectObligations(*model, sigma);
    VarTable vars;
    ReasonOutcome outcome = SolveObligations(obs, &vars, *model, opts);
    if (outcome.decision == Decision::kYes) {
      report.satisfiable = Decision::kYes;
      report.detail = outcome.detail;
      return report;
    }
    if (outcome.decision == Decision::kUnknown) saw_unknown = true;
  }
  report.satisfiable = saw_unknown ? Decision::kUnknown : Decision::kNo;
  report.detail = saw_unknown
                      ? "solver budget exhausted on some candidate model"
                      : "no model in the canonical-model family";
  return report;
}

}  // namespace

SatisfiabilityReport CheckSatisfiability(const NgdSet& sigma,
                                         const SchemaPtr& schema,
                                         const ReasonOptions& opts) {
  // One candidate per NGD: its own canonical pattern graph (condition (b):
  // that pattern has a match).
  std::vector<std::vector<const Pattern*>> candidates;
  for (size_t f = 0; f < sigma.size(); ++f) {
    candidates.push_back({&sigma[f].pattern()});
  }
  return CheckOnCandidates(sigma, schema, candidates, opts);
}

SatisfiabilityReport CheckStrongSatisfiability(const NgdSet& sigma,
                                               const SchemaPtr& schema,
                                               const ReasonOptions& opts) {
  // Single candidate: the disjoint union of all patterns (every pattern
  // finds a match).
  std::vector<const Pattern*> all;
  for (size_t f = 0; f < sigma.size(); ++f) {
    all.push_back(&sigma[f].pattern());
  }
  return CheckOnCandidates(sigma, schema, {all}, opts);
}

}  // namespace ngd
