// Bridging NGD literals to the linear solver (reasoning substrate).
//
// The satisfiability / implication checkers work on CANDIDATE MODELS:
// concrete small graphs (canonical pattern graphs) whose attribute values
// are symbolic. Each (node, attribute) pair becomes an integer solver
// variable; asserting a literal true or false under a match h contributes
// linear constraints. Absolute values |e| are eliminated by case analysis
// (e ≥ 0 / e ≤ 0 alternatives), so one assertion may expand into several
// linear ALTERNATIVES — the checker branches over them.
//
// Attribute EXISTENCE is part of the model (paper: a literal is satisfied
// only if its attributes exist): the ConstraintSystem tracks per-variable
// presence. Falsifying a literal can be done either by negating its
// comparison (attributes present) or by dropping one of its attributes.
//
// Strings: equality/disequality with string constants is supported via a
// per-variable string domain; a variable cannot be both string- and
// integer-typed (the conflict makes the branch infeasible).

#ifndef NGD_REASON_CONSTRAINT_ENCODER_H_
#define NGD_REASON_CONSTRAINT_ENCODER_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/ngd.h"
#include "reason/linear_solver.h"

namespace ngd {

/// Symbolic attribute variable: attribute `attr` of model node `node`.
struct AttrVar {
  NodeId node;
  AttrId attr;
  bool operator==(const AttrVar& o) const {
    return node == o.node && attr == o.attr;
  }
};

struct AttrVarHash {
  size_t operator()(const AttrVar& v) const {
    return (static_cast<size_t>(v.node) << 20) ^ v.attr;
  }
};

class VarTable {
 public:
  int IdOf(const AttrVar& key);
  size_t size() const { return keys_.size(); }
  const AttrVar& KeyOf(int id) const { return keys_[id]; }

 private:
  std::vector<AttrVar> keys_;
  std::unordered_map<AttrVar, int, AttrVarHash> index_;
};

/// One linear alternative produced by abs-elimination: the constraints to
/// assert together.
struct NumericAlt {
  std::vector<LinConstraint> constraints;
};

/// Classification of a literal under a match.
enum class LitClass : uint8_t {
  kNumeric,     ///< pure linear arithmetic over integer attr vars
  kString,      ///< =/!= involving a string constant or string-typed vars
  kNeverTrue,   ///< cannot be satisfied (e.g. order comparison on strings)
};

struct EncodedLiteral {
  LitClass cls = LitClass::kNumeric;
  /// kNumeric: disjunctive alternatives (from abs case splits).
  std::vector<NumericAlt> alts;
  /// kString (bare-term =/!= with a string constant or var):
  std::optional<int> str_lhs_var;  ///< solver var id of lhs if VarAttr
  std::optional<int> str_rhs_var;
  std::optional<std::string> str_lhs_const;
  std::optional<std::string> str_rhs_const;
  CmpOp op = CmpOp::kEq;
  /// Attribute variables the literal mentions (presence prerequisites).
  std::vector<int> attr_vars;
};

/// Encodes literal truth (positive) or falsity-by-comparison (negated)
/// under the node binding `h`. Fails with Unimplemented for shapes outside
/// the supported fragment (documented in DESIGN.md §5.6).
StatusOr<EncodedLiteral> EncodeLiteral(const Literal& lit, bool positive,
                                       const Binding& h, VarTable* vars);

/// A branchable conjunction context: numeric constraints + string facts +
/// attribute presence/absence. Copy to branch; Check() decides
/// feasibility of the current conjunction.
class ConstraintSystem {
 public:
  explicit ConstraintSystem(SolverOptions solver_opts = {})
      : solver_opts_(solver_opts) {}

  /// Marks an attribute variable as required-present / absent.
  /// Returns false on conflict (var both required and absent).
  bool RequirePresent(int var);
  bool RequireAbsent(int var);

  void AddNumeric(const LinConstraint& c) { numeric_.push_back(c); }

  /// Number of numeric constraints asserted so far. The obligation case
  /// split probes feasibility (QuickCheck) only when this grew since the
  /// last probe — presence and string conflicts are already detected
  /// eagerly by RequirePresent/RequireAbsent/AddStringFact.
  size_t NumericCount() const { return numeric_.size(); }

  /// Asserts a string fact; returns false on immediate conflict.
  bool AddStringFact(const EncodedLiteral& lit, bool positive);

  /// Decides feasibility of everything asserted so far.
  SolveResult Check(const VarTable& vars) const;

  /// Budget-starved feasibility probe for branch pruning: runs the same
  /// pipeline with the branch-node budget clamped to a handful, so the
  /// answer comes from bounds propagation (plus a token amount of
  /// search). kUnsat is exact — safe to prune on; kSat/kUnknown just mean
  /// "keep going". The obligation case split calls this at every
  /// obligation boundary, which turns refutations that the leaf-only
  /// check reached in exponential time into linear walks.
  SolveResult QuickCheck(const VarTable& vars) const;

  /// Extracts a witness assignment (after Check() == kSat): integer
  /// values for numeric vars, strings for string vars.
  struct Witness {
    std::unordered_map<int, int64_t> ints;
    std::unordered_map<int, std::string> strings;
  };
  std::optional<Witness> BuildWitness(const VarTable& vars) const;

  const std::unordered_set<int>& present() const { return present_; }
  const std::unordered_set<int>& absent() const { return absent_; }

 private:
  SolveResult CheckWith(const VarTable& vars,
                        const SolverOptions& solver_opts) const;

  struct StringFacts {
    /// var -> forced constant (from positive equality with a constant).
    std::unordered_map<int, std::string> equals;
    /// var -> constants it must differ from.
    std::unordered_map<int, std::unordered_set<std::string>> not_equals;
    /// positive var-var equalities (union-find applied at Check time).
    std::vector<std::pair<int, int>> var_eq;
    std::vector<std::pair<int, int>> var_ne;
  };

  bool CheckStrings() const;

  SolverOptions solver_opts_;
  std::vector<LinConstraint> numeric_;
  StringFacts strings_;
  std::unordered_set<int> present_;
  std::unordered_set<int> absent_;
  std::unordered_set<int> int_typed_;
  std::unordered_set<int> str_typed_;

  friend class ConstraintSystemTestPeer;
};

}  // namespace ngd

#endif  // NGD_REASON_CONSTRAINT_ENCODER_H_
