// Exact feasibility of linear integer constraint systems.
//
// The satisfiability / implication analyses of NGDs (paper §4) reduce to
// deciding whether conjunctions of linear constraints over INTEGER
// attribute variables are feasible — NP-complete over Z (the paper cites
// [47]), unlike the PTIME dense-order case. This solver decides small
// systems exactly:
//   - =, <, >, ≤, ≥ are normalized to ≤ over integers (strict ops shift
//     the bound by 1);
//   - ≠ is handled by case-splitting into < and >;
//   - feasibility of the ≤-system uses interval (bounds) propagation to a
//     fixpoint, then branch-and-prune bisection on the tightest variable.
// Variables left unbounded by propagation are clamped to ±domain_bound;
// exhausting a clamped search space yields kUnknown rather than kUnsat
// (the honest answer — a solution may exist beyond the clamp). Systems
// arising from data-quality rules have tiny coefficients and bounds, so
// in practice answers are exact.

#ifndef NGD_REASON_LINEAR_SOLVER_H_
#define NGD_REASON_LINEAR_SOLVER_H_

#include <cstdint>
#include <vector>

#include "core/literal.h"

namespace ngd {

struct LinTerm {
  int var = -1;
  int64_t coef = 0;
};

/// sum(terms) op rhs, integer coefficients.
struct LinConstraint {
  std::vector<LinTerm> terms;
  CmpOp op = CmpOp::kLe;
  int64_t rhs = 0;
};

enum class SolveResult : uint8_t { kSat, kUnsat, kUnknown };

struct SolverOptions {
  /// Clamp for variables propagation cannot bound.
  int64_t domain_bound = 1000000;
  /// Branch-node budget before giving up with kUnknown.
  size_t max_branch_nodes = 100000;
};

class LinearSolver {
 public:
  explicit LinearSolver(int num_vars, SolverOptions opts = {})
      : num_vars_(num_vars), opts_(opts) {}

  void AddConstraint(LinConstraint c) { input_.push_back(std::move(c)); }

  /// Decides feasibility; on kSat fills *solution (if non-null) with a
  /// witness assignment.
  SolveResult Solve(std::vector<int64_t>* solution = nullptr);

 private:
  int num_vars_;
  SolverOptions opts_;
  std::vector<LinConstraint> input_;
};

}  // namespace ngd

#endif  // NGD_REASON_LINEAR_SOLVER_H_
