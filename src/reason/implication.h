// Implication analysis Σ |= φ (paper §4, Πᵖ₂-complete).
//
// Σ |= φ iff no graph satisfies Σ while violating φ. The checker searches
// for a WITNESS of non-implication in the canonical-model family: the
// canonical graph of φ's pattern, whose identity match is required to
// violate φ (X true, some Y literal false) while every match of every NGD
// in Σ on that graph must hold. Finding a witness is a proof of
// non-implication (kNo, exact); exhausting the family yields kYes with
// the same family-relative caveat as satisfiability (DESIGN.md §5.6).

#ifndef NGD_REASON_IMPLICATION_H_
#define NGD_REASON_IMPLICATION_H_

#include <string>

#include "reason/satisfiability.h"

namespace ngd {

struct ImplicationReport {
  Decision implied = Decision::kUnknown;
  std::string detail;
};

ImplicationReport CheckImplication(const NgdSet& sigma, const Ngd& phi,
                                   const SchemaPtr& schema,
                                   const ReasonOptions& opts = {});

}  // namespace ngd

#endif  // NGD_REASON_IMPLICATION_H_
