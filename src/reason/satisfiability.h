// Satisfiability and strong satisfiability of NGD sets (paper §4).
//
// Both problems are Σᵖ₂-complete; the paper's decision procedure guesses a
// model of size ≤ 3(|Σ|+1)⁵ and validates it with a coNP oracle — far
// beyond practical enumeration. ngdlib implements an exact decision over
// the CANONICAL-MODEL FAMILY:
//
//   - plain satisfiability tries, for each NGD, the canonical graph of its
//     pattern (pattern nodes/edges materialized; wildcard labels replaced
//     by globally fresh labels, playing the role of the paper's "label
//     'b'" in Example 5);
//   - strong satisfiability tries the disjoint union of all canonical
//     pattern graphs (every pattern finds a match, condition (b));
//   - attribute values are symbolic: every match of every pattern in the
//     candidate contributes the obligation h |= X → Y, discharged by
//     case-splitting (falsify an X literal — by negated comparison or by
//     dropping an attribute — or satisfy all of Y) over the exact integer
//     linear solver.
//
// Soundness: a kYes answer always comes with a concrete witness model.
// kNo means no model exists in the canonical family — exact for rule
// sets whose conflicts are forced through their own patterns (all of the
// paper's examples, and typical data-quality rule sets); a conceivable
// exotic model outside the family is not ruled out, which is the
// documented trade-off against the Σᵖ₂ search space (DESIGN.md §5.6).
// kUnknown is returned when solver budgets are exhausted.

#ifndef NGD_REASON_SATISFIABILITY_H_
#define NGD_REASON_SATISFIABILITY_H_

#include <memory>
#include <string>
#include <vector>

#include "core/ngd.h"
#include "reason/constraint_encoder.h"

namespace ngd {

enum class Decision : uint8_t { kYes, kNo, kUnknown };

struct ReasonOptions {
  SolverOptions solver;
  /// Branch budget across the obligation case split.
  size_t max_branches = 200000;
  /// Obligation-count ceiling: candidates whose match set exceeds it are
  /// answered kUnknown up front (0 = unlimited). The Σ-optimizer caps
  /// this so one wildcard-dense pair cannot stall a detection call; the
  /// honest kUnknown just keeps the rule.
  size_t max_obligations = 0;
};

/// One per (NGD, match) pair on a candidate model: require X → Y to hold,
/// or (for implication witnesses) to be violated.
struct MatchObligation {
  const Ngd* ngd = nullptr;
  Binding h;
  bool require_violation = false;
};

struct ReasonOutcome {
  Decision decision = Decision::kUnknown;
  std::string detail;
};

/// Shared DPLL core: can all obligations hold simultaneously with some
/// assignment of (symbolic) attribute values / presence? kYes includes a
/// witness description in `detail`.
ReasonOutcome SolveObligations(const std::vector<MatchObligation>& obs,
                               VarTable* vars, const Graph& model,
                               const ReasonOptions& opts);

struct SatisfiabilityReport {
  Decision satisfiable = Decision::kUnknown;
  std::string detail;
};

/// Is there a graph G with G |= Σ and at least one pattern matched?
SatisfiabilityReport CheckSatisfiability(const NgdSet& sigma,
                                         const SchemaPtr& schema,
                                         const ReasonOptions& opts = {});

/// Is there a graph G with G |= Σ where EVERY pattern finds a match?
SatisfiabilityReport CheckStrongSatisfiability(const NgdSet& sigma,
                                               const SchemaPtr& schema,
                                               const ReasonOptions& opts = {});

/// Builds the canonical graph of the given patterns (disjoint union),
/// replacing wildcard labels with fresh labels. Exposed for the
/// implication checker and tests. `origin_offset[i]` receives the node id
/// where pattern i's nodes begin.
std::unique_ptr<Graph> BuildCanonicalModel(
    const std::vector<const Pattern*>& patterns, const SchemaPtr& schema,
    std::vector<NodeId>* origin_offset);

}  // namespace ngd

#endif  // NGD_REASON_SATISFIABILITY_H_
