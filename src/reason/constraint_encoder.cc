#include "reason/constraint_encoder.h"

#include <algorithm>
#include <numeric>

namespace ngd {

int VarTable::IdOf(const AttrVar& key) {
  auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  int id = static_cast<int>(keys_.size());
  keys_.push_back(key);
  index_.emplace(key, id);
  return id;
}

namespace {

/// Rational linear form: sum(coefs[v] * x_v) + constant.
struct RatForm {
  std::unordered_map<int, Rational> coefs;
  Rational constant;
};

RatForm NegateForm(const RatForm& f) {
  RatForm out;
  out.constant = -f.constant;
  for (const auto& [v, c] : f.coefs) out.coefs.emplace(v, -c);
  return out;
}

RatForm ScaleForm(const RatForm& f, const Rational& s) {
  RatForm out;
  out.constant = f.constant * s;
  for (const auto& [v, c] : f.coefs) out.coefs.emplace(v, c * s);
  return out;
}

RatForm AddForms(const RatForm& a, const RatForm& b, bool subtract) {
  RatForm out = a;
  out.constant = subtract ? out.constant - b.constant
                          : out.constant + b.constant;
  for (const auto& [v, c] : b.coefs) {
    Rational delta = subtract ? -c : c;
    auto it = out.coefs.find(v);
    if (it == out.coefs.end()) {
      out.coefs.emplace(v, delta);
    } else {
      it->second = it->second + delta;
    }
  }
  return out;
}

/// One abs-elimination case of an expression.
struct FormCase {
  RatForm form;
  /// Side conditions (form ⊗ 0) accumulated by abs elimination.
  std::vector<std::pair<RatForm, CmpOp>> side;
};

/// Converts `form ⊗ 0` to an integer-coefficient LinConstraint by scaling
/// with the LCM of denominators.
LinConstraint ToConstraint(const RatForm& form, CmpOp op) {
  int64_t lcm = form.constant.den();
  for (const auto& [v, c] : form.coefs) {
    (void)v;
    lcm = std::lcm(lcm, c.den());
  }
  LinConstraint out;
  out.op = op;
  for (const auto& [v, c] : form.coefs) {
    int64_t coef = c.num() * (lcm / c.den());
    if (coef != 0) out.terms.push_back(LinTerm{v, coef});
  }
  // sum + constant*lcm ⊗ 0  =>  sum ⊗ -constant*lcm
  out.rhs = -(form.constant.num() * (lcm / form.constant.den()));
  return out;
}

/// Recursive abs-eliminating linearization. Requires the expression to be
/// linear (guaranteed by Ngd::Validate).
Status Linearize(const Expr& e, const Binding& h, VarTable* vars,
                 std::vector<FormCase>* out) {
  switch (e.kind()) {
    case Expr::Kind::kIntConst: {
      FormCase c;
      c.form.constant = Rational(e.int_value());
      out->push_back(std::move(c));
      return Status::OK();
    }
    case Expr::Kind::kStrConst:
      return Status::InvalidArgument(
          "string constant inside arithmetic expression");
    case Expr::Kind::kVarAttr: {
      FormCase c;
      const NodeId node = h[e.var_index()];
      c.form.coefs.emplace(vars->IdOf(AttrVar{node, e.attr()}), Rational(1));
      out->push_back(std::move(c));
      return Status::OK();
    }
    case Expr::Kind::kNeg: {
      std::vector<FormCase> sub;
      NGD_RETURN_IF_ERROR(Linearize(e.lhs(), h, vars, &sub));
      for (FormCase& c : sub) {
        c.form = NegateForm(c.form);
        out->push_back(std::move(c));
      }
      return Status::OK();
    }
    case Expr::Kind::kAbs: {
      std::vector<FormCase> sub;
      NGD_RETURN_IF_ERROR(Linearize(e.lhs(), h, vars, &sub));
      for (const FormCase& c : sub) {
        FormCase pos = c;
        pos.side.push_back({c.form, CmpOp::kGe});  // e >= 0, |e| = e
        out->push_back(std::move(pos));
        FormCase neg;
        neg.form = NegateForm(c.form);
        neg.side = c.side;
        neg.side.push_back({c.form, CmpOp::kLe});  // e <= 0, |e| = -e
        out->push_back(std::move(neg));
      }
      return Status::OK();
    }
    case Expr::Kind::kAdd:
    case Expr::Kind::kSub:
    case Expr::Kind::kMul:
    case Expr::Kind::kDiv: {
      std::vector<FormCase> ls, rs;
      NGD_RETURN_IF_ERROR(Linearize(e.lhs(), h, vars, &ls));
      NGD_RETURN_IF_ERROR(Linearize(e.rhs(), h, vars, &rs));
      for (const FormCase& l : ls) {
        for (const FormCase& r : rs) {
          FormCase c;
          c.side = l.side;
          c.side.insert(c.side.end(), r.side.begin(), r.side.end());
          if (e.kind() == Expr::Kind::kAdd ||
              e.kind() == Expr::Kind::kSub) {
            c.form =
                AddForms(l.form, r.form, e.kind() == Expr::Kind::kSub);
          } else if (e.kind() == Expr::Kind::kMul) {
            if (r.form.coefs.empty()) {
              c.form = ScaleForm(l.form, r.form.constant);
            } else if (l.form.coefs.empty()) {
              c.form = ScaleForm(r.form, l.form.constant);
            } else {
              return Status::InvalidArgument(
                  "non-linear product in reasoning encoder");
            }
          } else {  // kDiv
            if (!r.form.coefs.empty()) {
              return Status::InvalidArgument(
                  "non-constant divisor in reasoning encoder");
            }
            if (r.form.constant == Rational(0)) {
              return Status::InvalidArgument(
                  "division by zero constant in rule");
            }
            c.form = ScaleForm(l.form, Rational(1) / r.form.constant);
          }
          out->push_back(std::move(c));
        }
      }
      return Status::OK();
    }
  }
  return Status::Internal("unhandled expression kind");
}

void CollectAttrVars(const Expr& e, const Binding& h, VarTable* vars,
                     std::vector<int>* out) {
  switch (e.kind()) {
    case Expr::Kind::kVarAttr: {
      int id = vars->IdOf(AttrVar{h[e.var_index()], e.attr()});
      if (std::find(out->begin(), out->end(), id) == out->end()) {
        out->push_back(id);
      }
      return;
    }
    case Expr::Kind::kIntConst:
    case Expr::Kind::kStrConst:
      return;
    case Expr::Kind::kNeg:
    case Expr::Kind::kAbs:
      CollectAttrVars(e.lhs(), h, vars, out);
      return;
    default:
      CollectAttrVars(e.lhs(), h, vars, out);
      CollectAttrVars(e.rhs(), h, vars, out);
      return;
  }
}

bool IsBareVar(const Expr& e) { return e.kind() == Expr::Kind::kVarAttr; }
bool IsStrConst(const Expr& e) { return e.kind() == Expr::Kind::kStrConst; }

}  // namespace

StatusOr<EncodedLiteral> EncodeLiteral(const Literal& lit, bool positive,
                                       const Binding& h, VarTable* vars) {
  EncodedLiteral out;
  out.op = positive ? lit.op() : NegateCmpOp(lit.op());
  CollectAttrVars(lit.lhs(), h, vars, &out.attr_vars);
  CollectAttrVars(lit.rhs(), h, vars, &out.attr_vars);

  const bool lhs_str = IsStrConst(lit.lhs());
  const bool rhs_str = IsStrConst(lit.rhs());
  if (lhs_str || rhs_str) {
    const bool is_equality = lit.op() == CmpOp::kEq || lit.op() == CmpOp::kNe;
    if (lhs_str && rhs_str) {
      // Constant/constant: decide immediately.
      bool value;
      if (lit.op() == CmpOp::kEq) {
        value = lit.lhs().str_value() == lit.rhs().str_value();
      } else if (lit.op() == CmpOp::kNe) {
        value = lit.lhs().str_value() != lit.rhs().str_value();
      } else {
        value = false;  // no order on strings
      }
      if (value == positive) {
        out.cls = LitClass::kNumeric;
        out.alts.push_back(NumericAlt{});  // trivially consistent
      } else {
        out.cls = LitClass::kNeverTrue;
      }
      return out;
    }
    const Expr& other = lhs_str ? lit.rhs() : lit.lhs();
    if (!is_equality || !IsBareVar(other)) {
      // Order comparison with a string, or string vs arithmetic: the
      // literal can never be satisfied. Negating it always succeeds.
      out.cls = positive ? LitClass::kNeverTrue : LitClass::kNumeric;
      if (!positive) out.alts.push_back(NumericAlt{});
      return out;
    }
    out.cls = LitClass::kString;
    int var = vars->IdOf(AttrVar{h[other.var_index()], other.attr()});
    if (lhs_str) {
      out.str_lhs_const = lit.lhs().str_value();
      out.str_rhs_var = var;
    } else {
      out.str_lhs_var = var;
      out.str_rhs_const = lit.rhs().str_value();
    }
    return out;
  }

  // Numeric literal: linearize both sides, cross the abs cases.
  std::vector<FormCase> ls, rs;
  NGD_RETURN_IF_ERROR(Linearize(lit.lhs(), h, vars, &ls));
  NGD_RETURN_IF_ERROR(Linearize(lit.rhs(), h, vars, &rs));
  out.cls = LitClass::kNumeric;
  for (const FormCase& l : ls) {
    for (const FormCase& r : rs) {
      NumericAlt alt;
      RatForm diff = AddForms(l.form, r.form, /*subtract=*/true);
      alt.constraints.push_back(ToConstraint(diff, out.op));
      for (const auto& [form, op] : l.side) {
        alt.constraints.push_back(ToConstraint(form, op));
      }
      for (const auto& [form, op] : r.side) {
        alt.constraints.push_back(ToConstraint(form, op));
      }
      out.alts.push_back(std::move(alt));
    }
  }
  return out;
}

bool ConstraintSystem::RequirePresent(int var) {
  if (absent_.count(var) > 0) return false;
  present_.insert(var);
  return true;
}

bool ConstraintSystem::RequireAbsent(int var) {
  if (present_.count(var) > 0) return false;
  absent_.insert(var);
  return true;
}

bool ConstraintSystem::AddStringFact(const EncodedLiteral& lit,
                                     bool positive) {
  // Effective operator after polarity: lit.op was already negated by the
  // encoder when positive == false, so apply as-is.
  CmpOp op = lit.op;
  int var = lit.str_lhs_var.value_or(lit.str_rhs_var.value_or(-1));
  const std::string& constant =
      lit.str_lhs_const.has_value() ? *lit.str_lhs_const
                                    : *lit.str_rhs_const;
  (void)positive;
  if (var < 0) return false;
  str_typed_.insert(var);
  if (op == CmpOp::kEq) {
    auto it = strings_.equals.find(var);
    if (it != strings_.equals.end() && it->second != constant) return false;
    strings_.equals.emplace(var, constant);
    if (strings_.not_equals.count(var) > 0 &&
        strings_.not_equals[var].count(constant) > 0) {
      return false;
    }
    return true;
  }
  if (op == CmpOp::kNe) {
    auto it = strings_.equals.find(var);
    if (it != strings_.equals.end() && it->second == constant) return false;
    strings_.not_equals[var].insert(constant);
    return true;
  }
  return false;  // no order on strings
}

bool ConstraintSystem::CheckStrings() const {
  for (const auto& [var, value] : strings_.equals) {
    auto it = strings_.not_equals.find(var);
    if (it != strings_.not_equals.end() && it->second.count(value) > 0) {
      return false;
    }
  }
  return true;
}

SolveResult ConstraintSystem::Check(const VarTable& vars) const {
  return CheckWith(vars, solver_opts_);
}

SolveResult ConstraintSystem::QuickCheck(const VarTable& vars) const {
  SolverOptions quick = solver_opts_;
  if (quick.max_branch_nodes > 32) quick.max_branch_nodes = 32;
  return CheckWith(vars, quick);
}

SolveResult ConstraintSystem::CheckWith(const VarTable& vars,
                                        const SolverOptions& solver_opts) const {
  // Type conflicts: a variable used both arithmetically and as a string.
  std::unordered_set<int> int_typed = int_typed_;
  for (const LinConstraint& c : numeric_) {
    for (const LinTerm& t : c.terms) int_typed.insert(t.var);
  }
  for (int v : int_typed) {
    if (str_typed_.count(v) > 0) return SolveResult::kUnsat;
  }
  if (!CheckStrings()) return SolveResult::kUnsat;

  LinearSolver solver(static_cast<int>(vars.size()), solver_opts);
  for (const LinConstraint& c : numeric_) solver.AddConstraint(c);
  return solver.Solve(nullptr);
}

std::optional<ConstraintSystem::Witness> ConstraintSystem::BuildWitness(
    const VarTable& vars) const {
  LinearSolver solver(static_cast<int>(vars.size()), solver_opts_);
  for (const LinConstraint& c : numeric_) solver.AddConstraint(c);
  std::vector<int64_t> values;
  if (solver.Solve(&values) != SolveResult::kSat) return std::nullopt;
  Witness w;
  for (size_t v = 0; v < vars.size(); ++v) {
    if (absent_.count(static_cast<int>(v)) > 0) continue;
    if (str_typed_.count(static_cast<int>(v)) > 0) {
      auto it = strings_.equals.find(static_cast<int>(v));
      if (it != strings_.equals.end()) {
        w.strings.emplace(static_cast<int>(v), it->second);
      } else {
        // Fresh string distinct from every excluded constant.
        w.strings.emplace(static_cast<int>(v),
                          "fresh#" + std::to_string(v));
      }
      continue;
    }
    w.ints.emplace(static_cast<int>(v),
                   v < values.size() ? values[v] : 0);
  }
  return w;
}

}  // namespace ngd
