#include "reason/sigma_optimizer.h"

#include <algorithm>
#include <unordered_map>

#include "util/thread_annotations.h"
#include "util/timer.h"

namespace ngd {

namespace {

// ---- Structural serialization -------------------------------------------
//
// Rules serialize to strings over label/attr NAMES (not interned ids), so
// equal strings mean detection-equivalent rules regardless of which Schema
// instance interned what in which order. Two variants share the code path:
// exact (constants included — duplicate detection, fingerprints, cache
// keys) and wiped (integer/string constants replaced by '#' — the
// isomorphism-modulo-constants bucketing key).

void AppendExpr(const Expr& e, const Dictionary& attrs, bool wipe_constants,
                std::string* out) {
  if (!e.IsValid()) {
    out->append("<nil>");
    return;
  }
  switch (e.kind()) {
    case Expr::Kind::kIntConst:
      out->push_back('i');
      out->append(wipe_constants ? "#" : std::to_string(e.int_value()));
      return;
    case Expr::Kind::kStrConst:
      out->push_back('s');
      if (wipe_constants) {
        out->push_back('#');
      } else {
        out->append(e.str_value());
      }
      out->push_back('\x01');
      return;
    case Expr::Kind::kVarAttr:
      out->push_back('v');
      out->append(std::to_string(e.var_index()));
      out->push_back('.');
      out->append(attrs.NameOf(e.attr()));
      out->push_back('\x01');
      return;
    case Expr::Kind::kAdd:
    case Expr::Kind::kSub:
    case Expr::Kind::kMul:
    case Expr::Kind::kDiv: {
      const char op = e.kind() == Expr::Kind::kAdd   ? '+'
                      : e.kind() == Expr::Kind::kSub ? '-'
                      : e.kind() == Expr::Kind::kMul ? '*'
                                                     : '/';
      out->push_back('(');
      AppendExpr(e.lhs(), attrs, wipe_constants, out);
      out->push_back(op);
      AppendExpr(e.rhs(), attrs, wipe_constants, out);
      out->push_back(')');
      return;
    }
    case Expr::Kind::kNeg:
      out->append("(~");
      AppendExpr(e.lhs(), attrs, wipe_constants, out);
      out->push_back(')');
      return;
    case Expr::Kind::kAbs:
      out->append("(|");
      AppendExpr(e.lhs(), attrs, wipe_constants, out);
      out->append("|)");
      return;
  }
}

void AppendLiteral(const Literal& lit, const Dictionary& attrs,
                   bool wipe_constants, std::string* out) {
  AppendExpr(lit.lhs(), attrs, wipe_constants, out);
  out->push_back(' ');
  out->append(CmpOpName(lit.op()));
  out->push_back(' ');
  AppendExpr(lit.rhs(), attrs, wipe_constants, out);
}

void AppendRule(const Ngd& ngd, const SchemaPtr& schema, bool wipe_constants,
                std::string* out) {
  const Dictionary& labels = schema->labels();
  const Dictionary& attrs = schema->attrs();
  const Pattern& p = ngd.pattern();
  out->push_back('P');
  for (const PatternNode& n : p.nodes()) {
    out->push_back('n');
    out->append(n.label == kWildcardLabel ? "_" : labels.NameOf(n.label));
    out->push_back('\x01');
  }
  for (const PatternEdge& e : p.edges()) {
    out->push_back('e');
    out->append(std::to_string(e.src));
    out->push_back('>');
    out->append(std::to_string(e.dst));
    out->push_back(':');
    out->append(labels.NameOf(e.label));
    out->push_back('\x01');
  }
  out->push_back('X');
  for (const Literal& l : ngd.X()) {
    AppendLiteral(l, attrs, wipe_constants, out);
    out->push_back(';');
  }
  out->push_back('Y');
  for (const Literal& l : ngd.Y()) {
    AppendLiteral(l, attrs, wipe_constants, out);
    out->push_back(';');
  }
}

std::string SerializeSigma(const NgdSet& sigma, const SchemaPtr& schema) {
  std::string out;
  for (const Ngd& ngd : sigma.ngds()) {
    AppendRule(ngd, schema, /*wipe_constants=*/false, &out);
    out.push_back('\n');
  }
  return out;
}

uint64_t Fnv1a(const std::string& s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

void CollectLiteralAttrs(const std::vector<Literal>& lits,
                         std::vector<AttrId>* out) {
  // Walks each literal's expressions for VarAttr leaves.
  struct Walker {
    static void Walk(const Expr& e, std::vector<AttrId>* out) {
      if (!e.IsValid()) return;
      switch (e.kind()) {
        case Expr::Kind::kVarAttr:
          out->push_back(e.attr());
          return;
        case Expr::Kind::kIntConst:
        case Expr::Kind::kStrConst:
          return;
        case Expr::Kind::kNeg:
        case Expr::Kind::kAbs:
          Walk(e.lhs(), out);
          return;
        default:
          Walk(e.lhs(), out);
          Walk(e.rhs(), out);
          return;
      }
    }
  };
  for (const Literal& l : lits) {
    Walker::Walk(l.lhs(), out);
    Walker::Walk(l.rhs(), out);
  }
}

/// Precomputed per-rule structural facts for the pre-filter.
struct RuleInfo {
  std::string serialized;  ///< exact (duplicate detection)
  std::string shape_key;   ///< constants wiped (bucketing)
  std::vector<AttrId> attrs;  ///< sorted distinct attrs of X ∪ Y
  bool valid = false;
  bool has_consequence = false;  ///< Y non-empty — can constrain anything
};

RuleInfo MakeRuleInfo(const Ngd& ngd, const SchemaPtr& schema) {
  RuleInfo info;
  info.valid = ngd.Validate().ok();
  AppendRule(ngd, schema, /*wipe_constants=*/false, &info.serialized);
  AppendRule(ngd, schema, /*wipe_constants=*/true, &info.shape_key);
  CollectLiteralAttrs(ngd.X(), &info.attrs);
  CollectLiteralAttrs(ngd.Y(), &info.attrs);
  std::sort(info.attrs.begin(), info.attrs.end());
  info.attrs.erase(std::unique(info.attrs.begin(), info.attrs.end()),
                   info.attrs.end());
  info.has_consequence = !ngd.Y().empty();
  return info;
}

bool AttrsIntersect(const std::vector<AttrId>& a,
                    const std::vector<AttrId>& b) {
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) return true;
    if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}

/// Can a helper-pattern node labelled `hl` map onto a target-pattern node
/// labelled `tl` in the target's CANONICAL model? Target wildcards become
/// globally fresh labels there, so only a helper wildcard reaches them.
bool NodeLabelCompatible(LabelId hl, LabelId tl) {
  if (hl == kWildcardLabel) return true;
  return tl != kWildcardLabel && hl == tl;
}

/// Necessary condition for the helper's pattern to have ANY match on the
/// canonical graph of the target's pattern: every helper edge finds a
/// label-compatible target edge, and (for edge-less helpers) every helper
/// node finds a compatible target node. Incomplete on purpose — it only
/// guards the exact solver, and restricting helpers is implication-
/// monotone-sound.
bool PatternCanEmbed(const Pattern& helper, const Pattern& target) {
  if (helper.NumEdges() == 0) {
    for (const PatternNode& hn : helper.nodes()) {
      bool found = false;
      for (const PatternNode& tn : target.nodes()) {
        if (NodeLabelCompatible(hn.label, tn.label)) {
          found = true;
          break;
        }
      }
      if (!found) return false;
    }
    return true;
  }
  for (const PatternEdge& he : helper.edges()) {
    bool found = false;
    for (const PatternEdge& te : target.edges()) {
      if (he.label == te.label &&
          NodeLabelCompatible(helper.node(he.src).label,
                              target.node(te.src).label) &&
          NodeLabelCompatible(helper.node(he.dst).label,
                              target.node(te.dst).label)) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

/// Structural pre-filter: can rule j plausibly participate in implying
/// rule i?
bool CompatibleHelper(const RuleInfo& helper_info, const RuleInfo& target_info,
                      const Ngd& helper, const Ngd& target) {
  if (!helper_info.valid || !helper_info.has_consequence) return false;
  if (!AttrsIntersect(helper_info.attrs, target_info.attrs)) return false;
  return PatternCanEmbed(helper.pattern(), target.pattern());
}

// ---- Process-wide kept-set cache ----------------------------------------

struct SigmaCacheEntry {
  std::vector<int> kept;
  // The implication cover travels with the kept-set so cache-served runs
  // remap DetectRunInfo as precisely as solver-backed ones.
  std::vector<std::vector<int>> implied_by;
};

struct SigmaCache {
  Mutex mu;
  // serialized Σ -> minimization result. Bounded: cleared wholesale when
  // it outgrows the cap (randomized test sweeps would otherwise grow it
  // without limit; production catalogs hold a handful of entries).
  std::unordered_map<std::string, SigmaCacheEntry> entries NGD_GUARDED_BY(mu);
  static constexpr size_t kMaxEntries = 256;
};

SigmaCache& Cache() {
  // Leaked process-lifetime singleton: no destructor-order hazard at exit.
  static SigmaCache* cache = new SigmaCache();  // ngdlint:allow(naked-new)
  return *cache;
}

MinimizedSigma FromKept(const NgdSet& sigma, std::vector<int> kept) {
  MinimizedSigma out;
  size_t next = 0;
  for (size_t i = 0; i < sigma.size(); ++i) {
    if (next < kept.size() && kept[next] == static_cast<int>(i)) {
      out.sigma.Add(sigma[i]);
      ++next;
    } else {
      out.report.dropped.push_back(static_cast<int>(i));
    }
  }
  out.report.kept = std::move(kept);
  return out;
}

}  // namespace

uint64_t FingerprintSigma(const NgdSet& sigma, const SchemaPtr& schema) {
  return Fnv1a(SerializeSigma(sigma, schema));
}

MinimizedSigma MinimizeSigma(const NgdSet& sigma, const SchemaPtr& schema,
                             const SigmaOptimizerOptions& opts) {
  // The implication checker interns fresh wildcard stand-in labels into
  // whatever schema it is given (BuildCanonicalModel). Detection calls
  // reach here with the graph's SHARED schema, possibly from several
  // threads at once (per-request detection, cold cache), and a detection
  // call must not mutate it — so the solver runs against a private copy.
  // Label/attr ids stay aligned (dictionaries are copied id-for-id), and
  // nothing schema-bound escapes: the report carries indices only.
  SchemaPtr scratch = Schema::Create();
  scratch->labels() = schema->labels();
  scratch->attrs() = schema->attrs();

  const size_t n = sigma.size();
  std::vector<RuleInfo> info;
  info.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    info.push_back(MakeRuleInfo(sigma[i], scratch));
  }

  std::vector<bool> alive(n, true);
  OptimizeReport report;
  report.implied_by.assign(n, {});

  // Pass 0: exact structural duplicates. The later copy is implied by the
  // earlier one (self-implication), no solver needed.
  std::unordered_map<std::string, int> first_with;
  for (size_t i = 0; i < n; ++i) {
    if (!info[i].valid) continue;
    auto [it, inserted] =
        first_with.emplace(info[i].serialized, static_cast<int>(i));
    if (!inserted) {
      alive[i] = false;
      ++report.duplicate_drops;
      report.implied_by[i] = {it->second};
    }
  }

  // Pass 1: greedy implication cover over the survivors. Checking against
  // the CURRENT alive set keeps the greedy sound: by reverse induction on
  // drop order, the final kept set implies every dropped rule.
  for (size_t i = 0; i < n; ++i) {
    if (!alive[i] || !info[i].valid) continue;
    // Helper selection: same-bucket rules (isomorphic-modulo-constants —
    // the weakened-variant / near-duplicate shape) first, then any other
    // structurally compatible rule, capped.
    std::vector<int> helpers;
    std::vector<int> others;
    for (size_t j = 0; j < n; ++j) {
      if (j == i || !alive[j]) continue;
      if (!CompatibleHelper(info[j], info[i], sigma[j], sigma[i])) continue;
      if (info[j].shape_key == info[i].shape_key) {
        helpers.push_back(static_cast<int>(j));
      } else {
        others.push_back(static_cast<int>(j));
      }
    }
    helpers.insert(helpers.end(), others.begin(), others.end());
    if (helpers.empty()) {
      ++report.prefilter_skips;
      continue;
    }
    if (helpers.size() > opts.max_helpers) helpers.resize(opts.max_helpers);

    NgdSet helper_set;
    for (int j : helpers) helper_set.Add(sigma[j]);
    WallTimer timer;
    ImplicationReport imp =
        CheckImplication(helper_set, sigma[i], scratch, opts.reason);
    report.solver_seconds += timer.ElapsedSeconds();
    ++report.implication_checks;
    if (imp.implied == Decision::kYes) {
      alive[i] = false;
      // The cover edge records the exact helper set behind the kYes —
      // every helper was alive at this point, so transitive resolution
      // from any dropped rule bottoms out in kept rules.
      report.implied_by[i] = std::move(helpers);
    } else if (imp.implied == Decision::kUnknown) {
      ++report.unknown;
    }
  }

  std::vector<int> kept;
  for (size_t i = 0; i < n; ++i) {
    if (alive[i]) kept.push_back(static_cast<int>(i));
  }
  MinimizedSigma out = FromKept(sigma, std::move(kept));
  report.kept = out.report.kept;
  report.dropped = out.report.dropped;
  out.report = std::move(report);
  return out;
}

bool ResolveMinimizedSigma(const NgdSet& sigma, const SchemaPtr& schema,
                           MinimizeMode mode,
                           const SigmaOptimizerOptions& opts,
                           MinimizedSigma* out) {
  if (mode == MinimizeMode::kNever || sigma.empty()) return false;
  // kAuto below the |Σ| threshold skips entirely — no serialization, no
  // cache probe, no global lock. Small catalogs are the per-call hot
  // path the threshold exists to protect; a cache probe there would be a
  // recurring guaranteed miss (below-threshold results are never
  // solved, hence never cached).
  if (mode == MinimizeMode::kAuto && sigma.size() < opts.auto_min_rules) {
    return false;
  }
  if (!sigma.Validate().ok()) return false;

  const std::string key = SerializeSigma(sigma, schema);
  if (opts.use_cache) {
    SigmaCache& cache = Cache();
    MutexLock lock(&cache.mu);
    auto it = cache.entries.find(key);
    if (it != cache.entries.end()) {
      if (it->second.kept.size() == sigma.size()) {
        return false;  // no-op cached
      }
      *out = FromKept(sigma, it->second.kept);
      out->report.implied_by = it->second.implied_by;
      out->report.from_cache = true;
      return true;
    }
  }
  MinimizedSigma m = MinimizeSigma(sigma, schema, opts);
  if (opts.use_cache) {
    SigmaCache& cache = Cache();
    MutexLock lock(&cache.mu);
    if (cache.entries.size() >= SigmaCache::kMaxEntries) {
      cache.entries.clear();
    }
    cache.entries.emplace(key,
                          SigmaCacheEntry{m.report.kept, m.report.implied_by});
  }
  if (m.report.dropped.empty()) return false;
  *out = std::move(m);
  return true;
}

void ClearSigmaOptimizerCache() {
  SigmaCache& cache = Cache();
  MutexLock lock(&cache.mu);
  cache.entries.clear();
}

VioSet RemapViolations(VioSet vio, const std::vector<int>& kept) {
  // In place: kept[] is strictly increasing, so distinct minimized
  // indices stay distinct — set-ness is preserved without a rehash, and
  // the arena moves through untouched.
  vio.RemapNgdIndices(kept);
  return vio;
}

DeltaVio RemapDelta(DeltaVio delta, const std::vector<int>& kept) {
  DeltaVio out;
  out.added = RemapViolations(std::move(delta.added), kept);
  out.removed = RemapViolations(std::move(delta.removed), kept);
  return out;
}

}  // namespace ngd
