// Σ-optimizer: implication-driven rule-set minimization (paper §4 made
// load-bearing for detection).
//
// Heavy rule catalogs accumulate redundancy — weakened copies of a rule,
// exact duplicates from merged sources, consequences of rule pairs. Every
// redundant φ costs a full homomorphism sweep in Dect/PDect and spawns
// pivot tasks in IncDect/PIncDect, yet changes nothing about which graphs
// are clean: if Σ∖{φ} |= φ, any violation of φ is accompanied by a
// violation of some kept rule. MinimizeSigma computes a GREEDY IMPLICATION
// COVER: scan Σ in index order and drop φ whenever CheckImplication finds
// the remaining alive rules imply it, under a per-rule solver budget.
//
// Soundness: a rule is dropped only on an exact kYes (budget exhaustion
// keeps it), and implication is monotone in Σ, so by reverse induction on
// drop order the final kept set implies every dropped rule. Detection on
// the minimized set therefore preserves (a) graph cleanliness
// (FindAnyViolation(G, Σ) empty ⟺ empty on Minimize(Σ)) and (b) the
// violations of every kept rule, exactly. kYes carries the same
// canonical-model-family caveat as the implication checker itself
// (satisfiability.h); the randomized differential harness
// (tests/sigma_optimizer_test.cc) locks the end-to-end equivalence down
// against all four detection engines.
//
// Cost control: the Σᵖ₂-flavoured solver only runs on PLAUSIBLE pairs.
//   - exact structural duplicates are dropped with no solver call at all;
//   - a structural pre-filter keeps, per candidate φ, only helper rules
//     whose pattern can embed into φ's canonical pattern graph (per-edge
//     label compatibility, wildcards one-sided: a helper wildcard matches
//     anything, a helper constant never matches φ's wildcard nodes — those
//     become fresh labels in the canonical model) and whose literals share
//     an attribute with φ's;
//   - helpers are ranked same-bucket-first (pattern-isomorphism-modulo-
//     constants bucketing over a shape key with literal constants wiped)
//     and capped, bounding the obligation blow-up per check.
// Restricting helpers is sound: implication is monotone, so a kYes from a
// subset is a kYes from Σ∖{φ}; the pre-filter can only miss drops.
//
// Engines consume the optimizer through the tri-state `minimize_sigma`
// in DectOptions/IncDectOptions/PDectOptions/PIncDectOptions:
//   kNever  — detection runs Σ verbatim (the default and the oracle);
//   kAlways — minimize, run the kept rules, remap indices back to Σ;
//   kAuto   — minimize only when |Σ| ≥ auto_min_rules; below the
//             threshold the call does nothing at all (no serialization,
//             no cache probe — small catalogs are the per-call hot
//             path), at or above it the kept-set cache makes repeat
//             calls pay a serialization and a lookup only.
// The cache keys on a schema-independent structural serialization of Σ
// (label/attr NAMES, not interned ids), so production callers that detect
// per request against a stable catalog pay the solver once per catalog
// version and reuse the kept-set thereafter.

#ifndef NGD_REASON_SIGMA_OPTIMIZER_H_
#define NGD_REASON_SIGMA_OPTIMIZER_H_

#include <string>
#include <vector>

#include "core/ngd.h"
#include "detect/violation.h"
#include "reason/implication.h"

namespace ngd {

/// When detection engines minimize Σ before running.
enum class MinimizeMode : uint8_t {
  kNever = 0,  ///< run Σ verbatim (default; the equivalence oracle)
  kAlways,     ///< always minimize (first call pays, cache reuses)
  kAuto,       ///< minimize when |Σ| ≥ auto_min_rules (cache reused there)
};

struct SigmaOptimizerOptions {
  /// Per-rule solver budget for each implication check. Deliberately far
  /// below the ReasonOptions defaults: one stubborn pair must not stall a
  /// detection call, and kUnknown just keeps the rule.
  ReasonOptions reason = {{/*domain_bound=*/1000000,
                           /*max_branch_nodes=*/2000},
                          /*max_branches=*/4000,
                          /*max_obligations=*/64};
  /// Cap on helper rules passed to one implication check (obligations grow
  /// with every helper's matches on the canonical model).
  size_t max_helpers = 6;
  /// kAuto threshold on |Σ|.
  size_t auto_min_rules = 12;
  /// Consult / fill the process-wide fingerprint cache (ResolveMinimizedSigma).
  bool use_cache = true;
};

struct OptimizeReport {
  /// Original Σ indices of kept rules, ascending. Detection remaps the
  /// minimized set's rule indices through this table.
  std::vector<int> kept;
  /// Original Σ indices of dropped (implied) rules, ascending.
  std::vector<int> dropped;
  /// The implication cover, indexed by ORIGINAL Σ index: for each dropped
  /// rule d, implied_by[d] lists the original indices of the rules whose
  /// conjunction implied it (the single earlier copy for a duplicate
  /// drop; the helper set that produced the solver's kYes otherwise).
  /// Kept rules have empty lists. Edges always point to rules alive at
  /// drop time, so following them transitively from any dropped rule
  /// terminates in kept rules (a DAG ordered by drop order). Empty
  /// when the report came from a cache entry predating this field.
  /// RemapRunInfo walks it to propagate per-rule completion honestly.
  std::vector<std::vector<int>> implied_by;
  /// Implication checks that exhausted the budget (rule kept — an
  /// honest kUnknown is never treated as implied).
  size_t unknown = 0;
  /// Exact-duplicate drops (no solver run).
  size_t duplicate_drops = 0;
  /// Solver-backed implication checks actually run.
  size_t implication_checks = 0;
  /// Candidates resolved by the structural pre-filter alone (no helper
  /// survived, rule kept without a solver call).
  size_t prefilter_skips = 0;
  /// Wall-clock spent inside CheckImplication.
  double solver_seconds = 0.0;
  /// True when ResolveMinimizedSigma served the kept-set from the cache.
  bool from_cache = false;
};

struct MinimizedSigma {
  NgdSet sigma;  ///< the kept rules, in original relative order
  OptimizeReport report;
};

/// Computes the greedy implication cover of `sigma`. Always runs the
/// optimizer (no cache); engines go through ResolveMinimizedSigma instead.
/// Rules that fail Validate() are kept unconditionally.
MinimizedSigma MinimizeSigma(const NgdSet& sigma, const SchemaPtr& schema,
                             const SigmaOptimizerOptions& opts = {});

/// 64-bit digest of Σ's schema-independent structural serialization
/// (label/attr names, shapes, constants — not interned ids and not rule
/// names). Equal serializations ⟹ equal fingerprints ⟹ detection-
/// equivalent rule sets. The kept-set cache keys on the full
/// serialization (collision-free); this digest is the compact identity
/// for logs, reports and tests.
uint64_t FingerprintSigma(const NgdSet& sigma, const SchemaPtr& schema);

/// Engine entry point: resolves a MinimizeMode against |Σ| and the
/// process-wide cache. Returns true and fills *out when detection should
/// run the minimized set (something was actually dropped); false when Σ
/// should run verbatim (mode kNever, kAuto below threshold — which skips
/// even the cache probe — invalid Σ, or nothing droppable; the no-op
/// case skips the copy).
bool ResolveMinimizedSigma(const NgdSet& sigma, const SchemaPtr& schema,
                           MinimizeMode mode,
                           const SigmaOptimizerOptions& opts,
                           MinimizedSigma* out);

/// Test hook: drops every cached kept-set.
void ClearSigmaOptimizerCache();

/// Shared engine boilerplate: for any options struct carrying
/// `minimize_sigma` + `sigma_optimizer` (DectOptions, IncDectOptions,
/// PDectOptions, PIncDectOptions), resolves minimization and — when
/// detection should run the minimized set — fills *inner with a copy of
/// `opts` whose mode is cleared, so the engine can re-enter itself once
/// and apply its type-specific remap. Keeping this in ONE place means a
/// change to the resolve contract cannot drift across the five engines.
template <typename Options>
bool BeginMinimizedDetection(const NgdSet& sigma, const SchemaPtr& schema,
                             const Options& opts, Options* inner,
                             MinimizedSigma* minimized) {
  if (opts.minimize_sigma == MinimizeMode::kNever) return false;
  if (!ResolveMinimizedSigma(sigma, schema, opts.minimize_sigma,
                             opts.sigma_optimizer, minimized)) {
    return false;
  }
  *inner = opts;
  inner->minimize_sigma = MinimizeMode::kNever;
  return true;
}

/// Remaps rule indices of violations found against a minimized Σ back to
/// the original catalog via OptimizeReport::kept.
VioSet RemapViolations(VioSet vio, const std::vector<int>& kept);
DeltaVio RemapDelta(DeltaVio delta, const std::vector<int>& kept);

}  // namespace ngd

#endif  // NGD_REASON_SIGMA_OPTIMIZER_H_
