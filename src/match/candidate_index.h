// Candidate selection C(u) for pattern nodes (Matchn step 1, paper §6.2).
//
// Candidates are label-indexed: a pattern node labelled l can only match
// graph nodes labelled l; the wildcard '_' matches every node. The start
// node of a batch search is chosen to minimize |C(u)| (selectivity). All
// primitives run against a GraphAccessor, so they serve both the live
// overlay Graph and a CSR GraphSnapshot; the Graph overloads below are
// thin wrappers kept for the incremental paths and tests.

#ifndef NGD_MATCH_CANDIDATE_INDEX_H_
#define NGD_MATCH_CANDIDATE_INDEX_H_

#include <vector>

#include "core/pattern.h"
#include "graph/accessor.h"
#include "graph/graph.h"

namespace ngd {

/// True iff graph node v can match a pattern node with label `label`.
inline bool NodeMatchesLabel(const Graph& g, NodeId v, LabelId label) {
  return label == kWildcardLabel || g.NodeLabel(v) == label;
}

/// |C(u)| for a pattern-node label.
inline size_t CandidateCount(const GraphAccessor& g, LabelId label) {
  return g.CandidateCount(label);
}
inline size_t CandidateCount(const Graph& g, LabelId label) {
  return GraphAccessor(g, GraphView::kNew).CandidateCount(label);
}

/// Invokes fn(NodeId) -> bool for every candidate of `label`; fn
/// returning false aborts the scan. Returns false iff aborted.
template <typename Fn>
bool ForEachCandidate(const GraphAccessor& g, LabelId label, Fn&& fn) {
  return g.ForEachCandidate(label, std::forward<Fn>(fn));
}
template <typename Fn>
bool ForEachCandidate(const Graph& g, LabelId label, Fn&& fn) {
  return GraphAccessor(g, GraphView::kNew)
      .ForEachCandidate(label, std::forward<Fn>(fn));
}

/// The pattern node with the fewest candidates in g (batch search start).
/// Label-count ties — including the all-wildcard pattern, where every
/// count is |V| — fall back to the highest-degree pattern node (most
/// immediate edge constraints on the first expansion).
int ChooseStartNode(const Pattern& pattern, const GraphAccessor& g);
inline int ChooseStartNode(const Pattern& pattern, const Graph& g) {
  return ChooseStartNode(pattern, GraphAccessor(g, GraphView::kNew));
}

/// Candidate enumeration scoped to one fragment: the label-indexed C(u)
/// arrays restricted to the nodes the fragment OWNS. The fragment CSR
/// keeps the full-width candidate arrays of the binary snapshot format
/// (graph/snapshot.h), so owner-computes seeding — each match is seeded
/// exactly once cluster-wide, by the fragment owning its start node —
/// needs this separate owned-only index. Built once per fragment from any
/// accessor backend; O(|members|) space.
class FragmentCandidates {
 public:
  FragmentCandidates() = default;

  /// `owned` must be ascending (Partition::members order). Node labels
  /// are read through `acc`.
  FragmentCandidates(const GraphAccessor& acc,
                     const std::vector<NodeId>& owned);

  /// Owned candidates of `label`, ascending. kWildcardLabel -> every
  /// owned node.
  GraphSnapshot::IdRange Range(LabelId label) const {
    if (label == kWildcardLabel) {
      return GraphSnapshot::IdRange{owned_.data(), owned_.size()};
    }
    if (static_cast<size_t>(label) + 1 >= label_off_.size()) {
      return GraphSnapshot::IdRange{};
    }
    return GraphSnapshot::IdRange{
        by_label_.data() + label_off_[label],
        static_cast<size_t>(label_off_[label + 1] - label_off_[label])};
  }

  size_t Count(LabelId label) const { return Range(label).size(); }
  size_t NumOwned() const { return owned_.size(); }

  /// Invokes fn(NodeId) -> bool per owned candidate of `label`; fn
  /// returning false aborts. Returns false iff aborted.
  template <typename Fn>
  bool ForEach(LabelId label, Fn&& fn) const {
    for (NodeId v : Range(label)) {
      if (!fn(v)) return false;
    }
    return true;
  }

 private:
  std::vector<NodeId> owned_;     // ascending
  std::vector<NodeId> by_label_;  // owned_, grouped by label, id-ascending
  std::vector<uint32_t> label_off_;
};

}  // namespace ngd

#endif  // NGD_MATCH_CANDIDATE_INDEX_H_
