// Candidate selection C(u) for pattern nodes (Matchn step 1, paper §6.2).
//
// Candidates are label-indexed: a pattern node labelled l can only match
// graph nodes labelled l; the wildcard '_' matches every node. The start
// node of a batch search is chosen to minimize |C(u)| (selectivity). All
// primitives run against a GraphAccessor, so they serve both the live
// overlay Graph and a CSR GraphSnapshot; the Graph overloads below are
// thin wrappers kept for the incremental paths and tests.

#ifndef NGD_MATCH_CANDIDATE_INDEX_H_
#define NGD_MATCH_CANDIDATE_INDEX_H_

#include "core/pattern.h"
#include "graph/accessor.h"
#include "graph/graph.h"

namespace ngd {

/// True iff graph node v can match a pattern node with label `label`.
inline bool NodeMatchesLabel(const Graph& g, NodeId v, LabelId label) {
  return label == kWildcardLabel || g.NodeLabel(v) == label;
}

/// |C(u)| for a pattern-node label.
inline size_t CandidateCount(const GraphAccessor& g, LabelId label) {
  return g.CandidateCount(label);
}
inline size_t CandidateCount(const Graph& g, LabelId label) {
  return GraphAccessor(g, GraphView::kNew).CandidateCount(label);
}

/// Invokes fn(NodeId) -> bool for every candidate of `label`; fn
/// returning false aborts the scan. Returns false iff aborted.
template <typename Fn>
bool ForEachCandidate(const GraphAccessor& g, LabelId label, Fn&& fn) {
  return g.ForEachCandidate(label, std::forward<Fn>(fn));
}
template <typename Fn>
bool ForEachCandidate(const Graph& g, LabelId label, Fn&& fn) {
  return GraphAccessor(g, GraphView::kNew)
      .ForEachCandidate(label, std::forward<Fn>(fn));
}

/// The pattern node with the fewest candidates in g (batch search start).
/// Label-count ties — including the all-wildcard pattern, where every
/// count is |V| — fall back to the highest-degree pattern node (most
/// immediate edge constraints on the first expansion).
int ChooseStartNode(const Pattern& pattern, const GraphAccessor& g);
inline int ChooseStartNode(const Pattern& pattern, const Graph& g) {
  return ChooseStartNode(pattern, GraphAccessor(g, GraphView::kNew));
}

}  // namespace ngd

#endif  // NGD_MATCH_CANDIDATE_INDEX_H_
