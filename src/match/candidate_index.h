// Candidate selection C(u) for pattern nodes (Matchn step 1, paper §6.2).
//
// Candidates are label-indexed: a pattern node labelled l can only match
// graph nodes labelled l; the wildcard '_' matches every node. The start
// node of a batch search is chosen to minimize |C(u)| (selectivity).

#ifndef NGD_MATCH_CANDIDATE_INDEX_H_
#define NGD_MATCH_CANDIDATE_INDEX_H_

#include "core/pattern.h"
#include "graph/graph.h"

namespace ngd {

/// True iff graph node v can match a pattern node with label `label`.
inline bool NodeMatchesLabel(const Graph& g, NodeId v, LabelId label) {
  return label == kWildcardLabel || g.NodeLabel(v) == label;
}

/// |C(u)| for a pattern-node label.
size_t CandidateCount(const Graph& g, LabelId label);

/// Invokes fn(NodeId) for every candidate of `label`.
template <typename Fn>
void ForEachCandidate(const Graph& g, LabelId label, Fn&& fn) {
  if (label == kWildcardLabel) {
    for (NodeId v = 0; v < g.NumNodes(); ++v) fn(v);
    return;
  }
  for (NodeId v : g.NodesWithLabel(label)) fn(v);
}

/// The pattern node with the fewest candidates in g (batch search start).
int ChooseStartNode(const Pattern& pattern, const Graph& g);

}  // namespace ngd

#endif  // NGD_MATCH_CANDIDATE_INDEX_H_
