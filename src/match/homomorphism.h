// The Matchn / SubMatchn homomorphism search engine (paper §6.2).
//
// A single recursive engine serves all four detection algorithms:
//   - Dect/PDect seed it with one candidate of the most selective pattern
//     node and let it expand;
//   - IncDect/PIncDect seed it with an update pivot h(u,u') = (v,v') and
//     drive the expansion from the update (update-driven evaluation), with
//     an EdgeFilter enforcing the ΔVio+/ΔVio- view discipline and the
//     minimal-pivot duplicate suppression.
//
// The engine prunes with literals (paper §6.2 step (3)) soundly:
//   - any fully-bound X literal evaluating false prunes the branch (no
//     extension can satisfy X, hence none can violate X → Y);
//   - once ALL Y literals are bound and true the branch is pruned (every
//     extension satisfies Y, hence none violates).
// Callbacks receive full matches h(x̄) that are violations (X true, Y not
// all true), or every match when find_violations is off.

#ifndef NGD_MATCH_HOMOMORPHISM_H_
#define NGD_MATCH_HOMOMORPHISM_H_

#include <functional>
#include <vector>

#include "core/ngd.h"
#include "detect/violation.h"
#include "graph/accessor.h"
#include "graph/neighborhood.h"
#include "graph/snapshot.h"
#include "match/candidate_index.h"
#include "match/match_order.h"
#include "util/cancel.h"

namespace ngd {

/// Per-edge admissibility hook. Incremental detection uses it to (a) keep
/// ΔVio+ searches off update edges with smaller indices than the pivot
/// (duplicate avoidance across pivots) and (b) keep ΔVio- searches off
/// inserted edges / ΔVio+ searches off deleted edges.
class EdgeFilter {
 public:
  virtual ~EdgeFilter() = default;
  virtual bool Admit(int pattern_edge, NodeId src, NodeId dst,
                     LabelId label) const = 0;
};

/// Return false to abort the entire search (early-exit validation).
using MatchCallback = std::function<bool(const Binding&)>;

struct SearchConfig {
  /// At least one of `graph` / `snapshot` / `delta_view` must be set;
  /// precedence is snapshot > delta_view > graph. Batch detection matches
  /// against the CSR snapshot's label-partitioned adjacency; incremental
  /// detection passes either the live overlay graph plus `view`, or a
  /// DeltaView (base snapshot ⊕ ΔG) plus `view`.
  const Graph* graph = nullptr;
  const GraphSnapshot* snapshot = nullptr;
  const DeltaView* delta_view = nullptr;
  const Pattern* pattern = nullptr;
  const std::vector<Literal>* x = nullptr;
  const std::vector<Literal>* y = nullptr;
  GraphView view = GraphView::kNew;  ///< live-graph / delta-view searches
  const EdgeFilter* edge_filter = nullptr;   ///< optional
  const NodeSet* node_scope = nullptr;       ///< optional candidate scope
  /// true: emit only violations (X true, Y violated), with literal
  /// pruning; false: emit every match of the pattern.
  bool find_violations = true;
  /// Optional cooperative stop (util/cancel.h), polled in the expansion
  /// inner loop. When it trips the search unwinds and returns false, like
  /// a callback-requested stop; callers that need to tell the two apart
  /// check cancel->Stopped() afterwards.
  CancelCheck* cancel = nullptr;
  /// Optional batched emission sink. When set, full matches bypass the
  /// MatchCallback entirely: the engine appends h(x̄) to the emitter's
  /// staging buffer (flushed into its VioSet in blocks), and an emitter
  /// limit stop behaves like a callback-requested stop. Only valid for
  /// enumerations that provably cannot produce duplicate bindings (batch
  /// detection per rule — see VioSet::AppendUnchecked).
  VioEmitter* emitter = nullptr;

  /// The accessor the engine actually matches against.
  GraphAccessor MakeAccessor() const {
    if (snapshot != nullptr) return GraphAccessor(*snapshot);
    if (delta_view != nullptr) return GraphAccessor(*delta_view, view);
    return GraphAccessor(*graph, view);
  }
};

/// Literal evaluation against whichever backend the accessor wraps.
inline Truth EvalLiteral(const GraphAccessor& g, const Literal& lit,
                         const Binding& binding) {
  if (g.is_snapshot()) return lit.Evaluate(*g.snapshot(), binding);
  if (g.is_delta_view()) return lit.Evaluate(*g.delta_view(), binding);
  return lit.Evaluate(*g.live_graph(), binding);
}

/// Runs the plan from pre-seeded `binding` (plan.seeds already bound).
/// Verifies seed edges/literals first. Returns false iff a callback
/// requested stop.
bool RunSeededSearch(const SearchConfig& config, const MatchPlan& plan,
                     Binding* binding, const MatchCallback& callback);

/// Full batch search for one NGD: picks the most selective start node,
/// iterates its candidates, expands each. Returns false iff stopped.
bool RunBatchSearch(const SearchConfig& config,
                    const MatchCallback& callback);

/// Batch search with a caller-chosen start node and prebuilt plan
/// (plan.seeds must be {start}). Dect and PDect hoist start/plan
/// selection out of the per-candidate loop so a rule's plan is built
/// once per detection call. Returns false iff stopped.
bool RunBatchSearchWithPlan(const SearchConfig& config, int start,
                            const MatchPlan& plan,
                            const MatchCallback& callback);

}  // namespace ngd

#endif  // NGD_MATCH_HOMOMORPHISM_H_
