#include "match/candidate_index.h"

namespace ngd {

int ChooseStartNode(const Pattern& pattern, const GraphAccessor& g) {
  int best = 0;
  size_t best_count = static_cast<size_t>(-1);
  // Cache the incumbent's degree: Pattern::Adjacency is a lazily built
  // per-node vector, and recomputing the incumbent's size on every
  // tie-break made the loop quadratic in fan-out for wildcard-heavy
  // patterns where every node ties at |V| candidates.
  size_t best_degree = 0;
  for (size_t i = 0; i < pattern.NumNodes(); ++i) {
    const int node = static_cast<int>(i);
    const size_t c = CandidateCount(g, pattern.node(node).label);
    const size_t degree = pattern.Adjacency(node).size();
    // Prefer selective labels; among ties — notably all-wildcard
    // patterns, where every count is |V| — prefer higher pattern degree
    // (more immediate edge constraints) instead of defaulting to index 0.
    if (c < best_count || (c == best_count && degree > best_degree)) {
      best = node;
      best_count = c;
      best_degree = degree;
    }
  }
  return best;
}

}  // namespace ngd
