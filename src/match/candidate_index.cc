#include "match/candidate_index.h"

#include <algorithm>

namespace ngd {

FragmentCandidates::FragmentCandidates(const GraphAccessor& acc,
                                       const std::vector<NodeId>& owned)
    : owned_(owned) {
  // Counting sort of the owned nodes by label; ids stay ascending within
  // each label because owned_ is ascending.
  LabelId max_label = 0;
  for (NodeId v : owned_) max_label = std::max(max_label, acc.NodeLabel(v));
  const size_t num_labels = owned_.empty() ? 0 : max_label + size_t{1};
  label_off_.assign(num_labels + 1, 0);
  for (NodeId v : owned_) ++label_off_[acc.NodeLabel(v) + 1];
  for (size_t l = 0; l < num_labels; ++l) label_off_[l + 1] += label_off_[l];
  by_label_.resize(owned_.size());
  std::vector<uint32_t> cursor(label_off_.begin(), label_off_.end() - 1);
  for (NodeId v : owned_) by_label_[cursor[acc.NodeLabel(v)]++] = v;
}

int ChooseStartNode(const Pattern& pattern, const GraphAccessor& g) {
  int best = 0;
  size_t best_count = static_cast<size_t>(-1);
  // Cache the incumbent's degree: Pattern::Adjacency is a lazily built
  // per-node vector, and recomputing the incumbent's size on every
  // tie-break made the loop quadratic in fan-out for wildcard-heavy
  // patterns where every node ties at |V| candidates.
  size_t best_degree = 0;
  for (size_t i = 0; i < pattern.NumNodes(); ++i) {
    const int node = static_cast<int>(i);
    const size_t c = CandidateCount(g, pattern.node(node).label);
    const size_t degree = pattern.Adjacency(node).size();
    // Prefer selective labels; among ties — notably all-wildcard
    // patterns, where every count is |V| — prefer higher pattern degree
    // (more immediate edge constraints) instead of defaulting to index 0.
    if (c < best_count || (c == best_count && degree > best_degree)) {
      best = node;
      best_count = c;
      best_degree = degree;
    }
  }
  return best;
}

}  // namespace ngd
