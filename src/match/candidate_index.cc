#include "match/candidate_index.h"

namespace ngd {

size_t CandidateCount(const Graph& g, LabelId label) {
  if (label == kWildcardLabel) return g.NumNodes();
  return g.NodesWithLabel(label).size();
}

int ChooseStartNode(const Pattern& pattern, const Graph& g) {
  int best = 0;
  size_t best_count = static_cast<size_t>(-1);
  for (size_t i = 0; i < pattern.NumNodes(); ++i) {
    size_t c = CandidateCount(g, pattern.node(static_cast<int>(i)).label);
    // Prefer selective labels; among ties prefer higher pattern degree
    // (more immediate edge constraints).
    if (c < best_count ||
        (c == best_count &&
         pattern.Adjacency(static_cast<int>(i)).size() >
             pattern.Adjacency(best).size())) {
      best = static_cast<int>(i);
      best_count = c;
    }
  }
  return best;
}

}  // namespace ngd
