#include "match/homomorphism.h"

#include <algorithm>
#include <cassert>
#include <cstdint>

namespace ngd {

namespace {

/// Literal bookkeeping carried down the recursion (by value: cheap, and
/// backtracking restores it for free).
struct LiteralState {
  bool y_false = false;     ///< some bound Y literal is false
  size_t y_ready = 0;       ///< number of Y literals bound so far
};

enum class StepOutcome : uint8_t { kContinue, kPrune, kStop };

/// Evaluates the literals that became ready; decides pruning.
StepOutcome EvalReadyLiterals(const SearchConfig& cfg, const GraphAccessor& g,
                              const std::vector<int>& ready_x,
                              const std::vector<int>& ready_y,
                              const Binding& binding, LiteralState* ls) {
  if (!cfg.find_violations) return StepOutcome::kContinue;
  for (int i : ready_x) {
    Truth t = EvalLiteral(g, (*cfg.x)[i], binding);
    assert(t != Truth::kNotReady);
    if (t == Truth::kFalse) return StepOutcome::kPrune;  // h ̸|= X forever
  }
  for (int i : ready_y) {
    Truth t = EvalLiteral(g, (*cfg.y)[i], binding);
    assert(t != Truth::kNotReady);
    ++ls->y_ready;
    if (t == Truth::kFalse) ls->y_false = true;
  }
  if (!ls->y_false && ls->y_ready == cfg.y->size()) {
    // All Y literals bound and true: every extension satisfies Y.
    return StepOutcome::kPrune;
  }
  return StepOutcome::kContinue;
}

bool Expand(const SearchConfig& cfg, const GraphAccessor& g,
            const MatchPlan& plan, size_t step_idx, Binding* binding,
            LiteralState ls, const MatchCallback& callback) {
  if (cfg.cancel != nullptr && cfg.cancel->ShouldStop()) return false;
  if (step_idx == plan.steps.size()) {
    // Full match. In violation mode the literal pruning above guarantees
    // X is satisfied and Y is not (y_false), except for the empty-Y
    // degenerate case which can never be violated. With an emitter the
    // binding goes straight into its staging buffer — no std::function
    // dispatch, no per-match allocation.
    if (cfg.emitter != nullptr) return cfg.emitter->Emit(*binding);
    return callback(*binding);
  }
  const ExpansionStep& step = plan.steps[step_idx];
  const Pattern& pattern = *cfg.pattern;

  // Candidate generation: scan the cheapest anchor among the step's
  // options, measured by the adjacency range the scan will touch (exact
  // label-range length on a snapshot, total adjacency on the live
  // graph). The edges not chosen are verified as closure edges below.
  size_t chosen_idx = 0;
  if (step.anchor_options.size() > 1) {
    size_t best_cost = SIZE_MAX;
    for (size_t k = 0; k < step.anchor_options.size(); ++k) {
      const AnchorOption& o = step.anchor_options[k];
      const size_t cost =
          g.NeighborScanCost((*binding)[o.anchor_node], o.anchor_out,
                             pattern.edge(o.edge).label);
      if (cost < best_cost) {
        best_cost = cost;
        chosen_idx = k;
      }
    }
  }
  const AnchorOption& chosen = step.anchor_options[chosen_idx];
  const LabelId anchor_label = pattern.edge(chosen.edge).label;
  const NodeId anchor = (*binding)[chosen.anchor_node];
  const LabelId want_label = pattern.node(step.node).label;

  // Everything past the label test for one label-matching candidate:
  // scope/filter admission, closure-edge verification, literal pruning,
  // and the recursive descent. Returns false to abort the whole scan.
  auto visit = [&](NodeId cand) {
    if (cfg.node_scope != nullptr && !cfg.node_scope->Contains(cand)) {
      return true;
    }
    if (cfg.edge_filter != nullptr) {
      const NodeId src = chosen.anchor_out ? anchor : cand;
      const NodeId dst = chosen.anchor_out ? cand : anchor;
      if (!cfg.edge_filter->Admit(chosen.edge, src, dst, anchor_label)) {
        return true;
      }
    }
    // Verify the remaining pattern edges into the matched prefix.
    auto edge_holds = [&](int ce) {
      const PatternEdge& pe = pattern.edge(ce);
      const NodeId s = pe.src == step.node ? cand : (*binding)[pe.src];
      const NodeId d = pe.dst == step.node ? cand : (*binding)[pe.dst];
      return g.HasEdge(s, d, pe.label) &&
             (cfg.edge_filter == nullptr ||
              cfg.edge_filter->Admit(ce, s, d, pe.label));
    };
    bool ok = true;
    for (int ce : step.check_edges) {
      if (ce == chosen.edge) continue;  // promoted to anchor this step
      if (!edge_holds(ce)) {
        ok = false;
        break;
      }
    }
    // A non-default anchor choice demotes the default anchor edge to
    // a closure check.
    if (ok && chosen_idx != 0 && !edge_holds(step.anchor_edge)) {
      ok = false;
    }
    if (!ok) return true;

    (*binding)[step.node] = cand;
    LiteralState child = ls;
    StepOutcome out = EvalReadyLiterals(cfg, g, step.ready_x,
                                        step.ready_y, *binding, &child);
    bool keep_going = true;
    if (out == StepOutcome::kContinue) {
      keep_going =
          Expand(cfg, g, plan, step_idx + 1, binding, child, callback);
    }
    (*binding)[step.node] = kInvalidNode;
    return keep_going;
  };

  // Snapshot fast path: the candidate label filter over a contiguous CSR
  // label range is a gather + compare against the flat node-label array,
  // so run it block-compacted — branch-free `m += (label == want)` keeps
  // the filter auto-vectorizable and the survivors (usually a small
  // minority on selective labels) get the expensive per-candidate body
  // from a dense stack buffer. Scope/filter configs and wildcard labels
  // fall through to the generic scan, which needs per-candidate calls
  // anyway.
  if (g.is_snapshot() && cfg.edge_filter == nullptr &&
      cfg.node_scope == nullptr && want_label != kWildcardLabel) {
    const GraphSnapshot& snap = *g.snapshot();
    const GraphSnapshot::IdRange r =
        chosen.anchor_out ? snap.OutNeighbors(anchor, anchor_label)
                          : snap.InNeighbors(anchor, anchor_label);
    const LabelId* labels = snap.node_labels_data();
    constexpr size_t kBlock = 256;
    NodeId cands[kBlock];
    for (size_t base = 0; base < r.size(); base += kBlock) {
      // Bounded response even on a hub anchor's long adjacency scan:
      // one cancellation poll per block.
      if (cfg.cancel != nullptr && cfg.cancel->ShouldStop()) return false;
      const size_t n = std::min(kBlock, r.size() - base);
      size_t m = 0;
      for (size_t i = 0; i < n; ++i) {
        const NodeId w = r.ptr[base + i];
        cands[m] = w;
        m += static_cast<size_t>(labels[w] == want_label);
      }
      for (size_t i = 0; i < m; ++i) {
        if (!visit(cands[i])) return false;
      }
    }
    return true;
  }

  return g.ForEachNeighbor(
      anchor, chosen.anchor_out, anchor_label, [&](NodeId cand) {
        // Bounded response even on a hub anchor's long adjacency scan.
        if (cfg.cancel != nullptr && cfg.cancel->ShouldStop()) return false;
        if (!g.NodeMatchesLabel(cand, want_label)) return true;
        return visit(cand);
      });
}

bool SeededSearchImpl(const SearchConfig& config, const GraphAccessor& g,
                      const MatchPlan& plan, Binding* binding,
                      const MatchCallback& callback) {
  // Seeds must satisfy labels and scope.
  for (int s : plan.seeds) {
    const NodeId v = (*binding)[s];
    assert(v != kInvalidNode);
    if (!g.NodeMatchesLabel(v, config.pattern->node(s).label)) return true;
    if (config.node_scope != nullptr && !config.node_scope->Contains(v)) {
      return true;
    }
  }
  // Seed-internal edges.
  for (int ce : plan.seed_check_edges) {
    const PatternEdge& pe = config.pattern->edge(ce);
    const NodeId s = (*binding)[pe.src];
    const NodeId d = (*binding)[pe.dst];
    if (!g.HasEdge(s, d, pe.label)) return true;
    if (config.edge_filter != nullptr &&
        !config.edge_filter->Admit(ce, s, d, pe.label)) {
      return true;
    }
  }
  LiteralState ls;
  StepOutcome out = EvalReadyLiterals(config, g, plan.seed_ready_x,
                                      plan.seed_ready_y, *binding, &ls);
  if (out == StepOutcome::kPrune) return true;
  return Expand(config, g, plan, 0, binding, ls, callback);
}

}  // namespace

bool RunSeededSearch(const SearchConfig& config, const MatchPlan& plan,
                     Binding* binding, const MatchCallback& callback) {
  assert((config.graph != nullptr || config.snapshot != nullptr ||
          config.delta_view != nullptr) &&
         config.pattern != nullptr);
  assert(!config.find_violations ||
         (config.x != nullptr && config.y != nullptr));
  return SeededSearchImpl(config, config.MakeAccessor(), plan, binding,
                          callback);
}

bool RunBatchSearchWithPlan(const SearchConfig& config, int start,
                            const MatchPlan& plan,
                            const MatchCallback& callback) {
  assert((config.graph != nullptr || config.snapshot != nullptr ||
          config.delta_view != nullptr) &&
         config.pattern != nullptr);
  assert(plan.seeds.size() == 1 && plan.seeds[0] == start);
  const GraphAccessor g = config.MakeAccessor();
  Binding binding(config.pattern->NumNodes(), kInvalidNode);
  return g.ForEachCandidate(config.pattern->node(start).label, [&](NodeId v) {
    binding[start] = v;
    const bool keep_going = SeededSearchImpl(config, g, plan, &binding, callback);
    binding[start] = kInvalidNode;
    return keep_going;
  });
}

bool RunBatchSearch(const SearchConfig& config,
                    const MatchCallback& callback) {
  assert((config.graph != nullptr || config.snapshot != nullptr ||
          config.delta_view != nullptr) &&
         config.pattern != nullptr);
  const Pattern& pattern = *config.pattern;
  const int start = ChooseStartNode(pattern, config.MakeAccessor());
  const MatchPlan plan =
      BuildMatchPlan(pattern, {start}, config.x, config.y);
  return RunBatchSearchWithPlan(config, start, plan, callback);
}

}  // namespace ngd
