#include "match/homomorphism.h"

#include <cassert>

namespace ngd {

namespace {

/// Literal bookkeeping carried down the recursion (by value: cheap, and
/// backtracking restores it for free).
struct LiteralState {
  bool y_false = false;     ///< some bound Y literal is false
  size_t y_ready = 0;       ///< number of Y literals bound so far
};

enum class StepOutcome : uint8_t { kContinue, kPrune, kStop };

/// Evaluates the literals that became ready; decides pruning.
StepOutcome EvalReadyLiterals(const SearchConfig& cfg,
                              const std::vector<int>& ready_x,
                              const std::vector<int>& ready_y,
                              const Binding& binding, LiteralState* ls) {
  if (!cfg.find_violations) return StepOutcome::kContinue;
  for (int i : ready_x) {
    Truth t = (*cfg.x)[i].Evaluate(*cfg.graph, binding);
    assert(t != Truth::kNotReady);
    if (t == Truth::kFalse) return StepOutcome::kPrune;  // h ̸|= X forever
  }
  for (int i : ready_y) {
    Truth t = (*cfg.y)[i].Evaluate(*cfg.graph, binding);
    assert(t != Truth::kNotReady);
    ++ls->y_ready;
    if (t == Truth::kFalse) ls->y_false = true;
  }
  if (!ls->y_false && ls->y_ready == cfg.y->size()) {
    // All Y literals bound and true: every extension satisfies Y.
    return StepOutcome::kPrune;
  }
  return StepOutcome::kContinue;
}

bool Expand(const SearchConfig& cfg, const MatchPlan& plan, size_t step_idx,
            Binding* binding, LiteralState ls,
            const MatchCallback& callback) {
  if (step_idx == plan.steps.size()) {
    // Full match. In violation mode the literal pruning above guarantees
    // X is satisfied and Y is not (y_false), except for the empty-Y
    // degenerate case which can never be violated.
    return callback(*binding);
  }
  const ExpansionStep& step = plan.steps[step_idx];
  const Pattern& pattern = *cfg.pattern;
  const Graph& g = *cfg.graph;
  const PatternEdge& anchor_edge = pattern.edge(step.anchor_edge);
  const NodeId anchor = (*binding)[step.anchor_node];
  const LabelId want_label = pattern.node(step.node).label;

  const auto& adj = step.anchor_out ? g.OutEdges(anchor) : g.InEdges(anchor);
  for (const AdjEntry& e : adj) {
    if (e.label != anchor_edge.label) continue;
    if (!EdgeInView(e.state, cfg.view)) continue;
    const NodeId cand = e.other;
    if (!NodeMatchesLabel(g, cand, want_label)) continue;
    if (cfg.node_scope != nullptr && !cfg.node_scope->Contains(cand)) {
      continue;
    }
    if (cfg.edge_filter != nullptr) {
      const NodeId src = step.anchor_out ? anchor : cand;
      const NodeId dst = step.anchor_out ? cand : anchor;
      if (!cfg.edge_filter->Admit(step.anchor_edge, src, dst, e.label)) {
        continue;
      }
    }
    // Verify the remaining pattern edges into the matched prefix.
    bool ok = true;
    for (int ce : step.check_edges) {
      const PatternEdge& pe = pattern.edge(ce);
      const NodeId s = pe.src == step.node ? cand : (*binding)[pe.src];
      const NodeId d = pe.dst == step.node ? cand : (*binding)[pe.dst];
      if (!g.HasEdge(s, d, pe.label, cfg.view) ||
          (cfg.edge_filter != nullptr &&
           !cfg.edge_filter->Admit(ce, s, d, pe.label))) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;

    (*binding)[step.node] = cand;
    LiteralState child = ls;
    StepOutcome out =
        EvalReadyLiterals(cfg, step.ready_x, step.ready_y, *binding, &child);
    if (out == StepOutcome::kContinue) {
      if (!Expand(cfg, plan, step_idx + 1, binding, child, callback)) {
        (*binding)[step.node] = kInvalidNode;
        return false;
      }
    }
    (*binding)[step.node] = kInvalidNode;
  }
  return true;
}

}  // namespace

bool RunSeededSearch(const SearchConfig& config, const MatchPlan& plan,
                     Binding* binding, const MatchCallback& callback) {
  assert(config.graph != nullptr && config.pattern != nullptr);
  assert(!config.find_violations ||
         (config.x != nullptr && config.y != nullptr));
  const Graph& g = *config.graph;

  // Seeds must satisfy labels and scope.
  for (int s : plan.seeds) {
    const NodeId v = (*binding)[s];
    assert(v != kInvalidNode);
    if (!NodeMatchesLabel(g, v, config.pattern->node(s).label)) return true;
    if (config.node_scope != nullptr && !config.node_scope->Contains(v)) {
      return true;
    }
  }
  // Seed-internal edges.
  for (int ce : plan.seed_check_edges) {
    const PatternEdge& pe = config.pattern->edge(ce);
    const NodeId s = (*binding)[pe.src];
    const NodeId d = (*binding)[pe.dst];
    if (!g.HasEdge(s, d, pe.label, config.view)) return true;
    if (config.edge_filter != nullptr &&
        !config.edge_filter->Admit(ce, s, d, pe.label)) {
      return true;
    }
  }
  LiteralState ls;
  StepOutcome out = EvalReadyLiterals(config, plan.seed_ready_x,
                                      plan.seed_ready_y, *binding, &ls);
  if (out == StepOutcome::kPrune) return true;
  return Expand(config, plan, 0, binding, ls, callback);
}

bool RunBatchSearch(const SearchConfig& config,
                    const MatchCallback& callback) {
  assert(config.graph != nullptr && config.pattern != nullptr);
  const Pattern& pattern = *config.pattern;
  const int start = ChooseStartNode(pattern, *config.graph);
  const MatchPlan plan =
      BuildMatchPlan(pattern, {start}, config.x, config.y);
  Binding binding(pattern.NumNodes(), kInvalidNode);
  bool keep_going = true;
  ForEachCandidate(*config.graph, pattern.node(start).label,
                   [&](NodeId v) {
                     if (!keep_going) return;
                     binding[start] = v;
                     if (!RunSeededSearch(config, plan, &binding,
                                          callback)) {
                       keep_going = false;
                     }
                     binding[start] = kInvalidNode;
                   });
  return keep_going;
}

}  // namespace ngd
