// Matching-order planning (the SubMatchn "matching order selection" of
// paper §6.2).
//
// Given a pattern and a set of pre-matched seed nodes (one node for batch
// search; the two endpoints of an update pivot for incremental search), a
// MatchPlan fixes the order in which the remaining pattern nodes are
// matched. Each ExpansionStep records:
//   - the anchor: an already-matched neighbor whose graph adjacency is
//     scanned for candidates (data locality — candidates never come from
//     a global scan once seeded);
//   - the remaining pattern edges to the matched prefix that must be
//     verified;
//   - which X / Y literals become fully bound ("ready") at this step, for
//     sound literal-based pruning (paper §6.2 step (3)).

#ifndef NGD_MATCH_MATCH_ORDER_H_
#define NGD_MATCH_MATCH_ORDER_H_

#include <vector>

#include "core/literal.h"
#include "core/pattern.h"

namespace ngd {

/// One way to drive a step's candidate generation: scan the adjacency of
/// an already-matched pattern node across the given pattern edge.
struct AnchorOption {
  int edge = -1;        ///< pattern edge index anchor<->node
  int anchor_node = -1; ///< previously matched pattern node
  bool anchor_out = false;  ///< true: anchor -> node in the graph
};

struct ExpansionStep {
  int node = -1;         ///< pattern node matched at this step
  int anchor_node = -1;  ///< previously matched pattern node
  int anchor_edge = -1;  ///< pattern edge index anchor<->node
  bool anchor_out = false;  ///< true: anchor -> node
  /// Pattern edge indices (between `node` and the matched prefix, or
  /// self-loops on `node`) verified after candidate selection, anchor edge
  /// excluded.
  std::vector<int> check_edges;
  /// Every non-self-loop edge between `node` and the prefix, each a valid
  /// anchor; [0] is the default (anchor_node/anchor_edge/anchor_out
  /// above). When several exist, Expand picks the one with the shortest
  /// adjacency range at runtime and verifies the rest as closure edges.
  std::vector<AnchorOption> anchor_options;
  std::vector<int> ready_x;  ///< X-literal indices becoming bound here
  std::vector<int> ready_y;  ///< Y-literal indices becoming bound here
};

struct MatchPlan {
  std::vector<int> seeds;  ///< pre-matched pattern nodes
  /// Pattern edges among the seeds themselves (verified before expansion).
  std::vector<int> seed_check_edges;
  std::vector<int> seed_ready_x;
  std::vector<int> seed_ready_y;
  std::vector<ExpansionStep> steps;
};

/// Builds a connected expansion order covering all pattern nodes from the
/// given seeds. x/y may be null when literal pruning is not wanted.
/// Requires: pattern connected, seeds non-empty.
MatchPlan BuildMatchPlan(const Pattern& pattern, std::vector<int> seeds,
                         const std::vector<Literal>* x,
                         const std::vector<Literal>* y);

}  // namespace ngd

#endif  // NGD_MATCH_MATCH_ORDER_H_
