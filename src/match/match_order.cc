#include "match/match_order.h"

#include <algorithm>
#include <cassert>

namespace ngd {

namespace {

/// Literal indices whose variables are all in `bound` but were not all in
/// `bound` before `newly` was added.
std::vector<int> NewlyReady(const std::vector<Literal>* lits,
                            const std::vector<char>& bound, int newly) {
  std::vector<int> ready;
  if (lits == nullptr) return ready;
  for (size_t i = 0; i < lits->size(); ++i) {
    std::vector<int> vars;
    (*lits)[i].CollectVars(&vars);
    bool all_bound = true;
    bool uses_newly = newly < 0;  // seed phase: any fully-bound literal
    for (int v : vars) {
      if (!bound[v]) all_bound = false;
      if (v == newly) uses_newly = true;
    }
    // Variable-free literals are handled in the seed phase only.
    if (vars.empty()) uses_newly = newly < 0;
    if (all_bound && uses_newly) ready.push_back(static_cast<int>(i));
  }
  return ready;
}

}  // namespace

MatchPlan BuildMatchPlan(const Pattern& pattern, std::vector<int> seeds,
                         const std::vector<Literal>* x,
                         const std::vector<Literal>* y) {
  assert(!seeds.empty());
  MatchPlan plan;
  plan.seeds = seeds;

  const size_t n = pattern.NumNodes();
  std::vector<char> bound(n, 0);
  for (int s : seeds) bound[s] = 1;

  // Pattern edges with both endpoints seeded must be verified up front
  // (e.g. a pivot edge plus a parallel edge between the same endpoints).
  std::vector<char> edge_used(pattern.NumEdges(), 0);
  for (size_t e = 0; e < pattern.NumEdges(); ++e) {
    const PatternEdge& pe = pattern.edge(static_cast<int>(e));
    if (bound[pe.src] && bound[pe.dst]) {
      plan.seed_check_edges.push_back(static_cast<int>(e));
      edge_used[e] = 1;
    }
  }
  plan.seed_ready_x = NewlyReady(x, bound, -1);
  plan.seed_ready_y = NewlyReady(y, bound, -1);

  // Greedy connected order: repeatedly pick the unmatched node adjacent to
  // the bound prefix with (a) the most edges into the prefix (maximum
  // pruning), (b) a concrete label over a wildcard, (c) lowest index.
  size_t remaining = 0;
  for (size_t i = 0; i < n; ++i) remaining += bound[i] ? 0 : 1;

  while (remaining > 0) {
    int best = -1;
    int best_edges = -1;
    bool best_concrete = false;
    for (size_t i = 0; i < n; ++i) {
      if (bound[i]) continue;
      int edges_to_prefix = 0;
      for (const auto& adj : pattern.Adjacency(static_cast<int>(i))) {
        if (bound[adj.other]) ++edges_to_prefix;
      }
      if (edges_to_prefix == 0) continue;  // not yet connected
      bool concrete =
          pattern.node(static_cast<int>(i)).label != kWildcardLabel;
      if (edges_to_prefix > best_edges ||
          (edges_to_prefix == best_edges && concrete && !best_concrete)) {
        best = static_cast<int>(i);
        best_edges = edges_to_prefix;
        best_concrete = concrete;
      }
    }
    assert(best >= 0 && "pattern must be connected to the seeds");

    ExpansionStep step;
    step.node = best;
    for (const auto& adj : pattern.Adjacency(best)) {
      if (!bound[adj.other] && adj.other != best) continue;
      if (edge_used[adj.edge_index]) continue;
      if (adj.other != best) {
        // adj.out is from `best`'s perspective: best -> other. The anchor
        // scans from `other`, so the anchor's outgoing direction is the
        // reverse.
        step.anchor_options.push_back(
            AnchorOption{adj.edge_index, adj.other, !adj.out});
        if (step.anchor_edge < 0) {
          step.anchor_node = adj.other;
          step.anchor_edge = adj.edge_index;
          step.anchor_out = !adj.out;
        } else {
          step.check_edges.push_back(adj.edge_index);
        }
      } else {
        step.check_edges.push_back(adj.edge_index);
      }
      edge_used[adj.edge_index] = 1;
    }
    // Self-loop edges on `best` appear twice in its adjacency; dedup.
    std::sort(step.check_edges.begin(), step.check_edges.end());
    step.check_edges.erase(
        std::unique(step.check_edges.begin(), step.check_edges.end()),
        step.check_edges.end());
    assert(step.anchor_edge >= 0);

    bound[best] = 1;
    --remaining;
    step.ready_x = NewlyReady(x, bound, best);
    step.ready_y = NewlyReady(y, bound, best);
    plan.steps.push_back(std::move(step));
  }
  return plan;
}

}  // namespace ngd
