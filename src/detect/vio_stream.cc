#include "detect/vio_stream.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "util/failpoint.h"
#include "util/fs.h"
#include "util/hash.h"
#include "util/thread_annotations.h"

namespace ngd {

namespace {

// Segment wire format ("<prefix>.seg<N>.ngdvio"):
//   header (48 bytes):
//     char     magic[8]        "NGDVSEG1"
//     uint32   version         1
//     uint32   flags           0
//     uint64   record_count
//     uint64   payload_bytes
//     uint64   payload_fnv1a
//     uint64   header_fnv1a    over the preceding 40 bytes
//   payload: records back-to-back, already in Sorted() order:
//     int32 ngd_index, uint32 len, uint32 nodes[len]
constexpr char kSegMagic[8] = {'N', 'G', 'D', 'V', 'S', 'E', 'G', '1'};
constexpr uint32_t kSegVersion = 1;
constexpr size_t kSegHeaderBytes = 48;

/// Resident floor before a flush is worthwhile: one page. A budget below
/// this still spills, just never in sub-page segments (which would turn
/// per-record appends into per-record fsyncs).
constexpr size_t kMinSpillBytes = 4096;

/// Flush this far *before* the budget so the resident footprint stays
/// strictly under it (an append block is far smaller than the headroom).
constexpr size_t kSpillHeadroomBytes = size_t{256} << 10;

/// Per-segment read buffer for the cursor — the "bounded resident
/// memory" unit of the k-way merge.
constexpr size_t kSegReadBufBytes = size_t{64} << 10;

/// Sanity cap when parsing a record header back (a tuple is one node per
/// pattern variable; anything near this is corruption).
constexpr uint32_t kMaxTupleLen = 1u << 20;

static_assert(sizeof(NodeId) == 4, "segment codec assumes 32-bit NodeId");

void AppendRaw(std::string* out, const void* p, size_t n) {
  out->append(static_cast<const char*>(p), n);
}

/// (ngd_index, nodes lexicographic) — exactly VioSet::Sorted()'s order.
bool TupleLess(int32_t ai, const NodeId* an, uint32_t al, int32_t bi,
               const NodeId* bn, uint32_t bl) {
  if (ai != bi) return ai < bi;
  return std::lexicographical_compare(an, an + al, bn, bn + bl);
}

}  // namespace

// ---- Spill state (VioSet's pimpl) ----------------------------------------

struct VioSpillState {
  struct Segment {
    std::string path;
    uint64_t records = 0;
    /// remaps[remap_from..) were recorded after this segment was written
    /// and must be applied to its records at read time.
    size_t remap_from = 0;
  };

  /// Set once by EnableSpill before any spill activity; read-only after.
  VioSpillOptions opts;

  /// Guards the segment registry. The resident arrays (recs_/arena_) stay
  /// single-owner like the rest of VioSet; the lock exists so stat
  /// accessors and cursor opens — the ngdd admin surface — stay coherent
  /// against a concurrent flush finishing on the owner thread. All
  /// critical sections are segment-granular (never per record).
  Mutex mu;
  std::vector<Segment> segments NGD_GUARDED_BY(mu);
  uint64_t spilled_records NGD_GUARDED_BY(mu) = 0;
  uint64_t next_segment_id NGD_GUARDED_BY(mu) = 0;
  size_t peak_resident_bytes NGD_GUARDED_BY(mu) = 0;
  /// Sticky: a failed flush stops further spill attempts (the records
  /// stay resident, correct but over budget) and surfaces here.
  bool flush_failed NGD_GUARDED_BY(mu) = false;
  Status status NGD_GUARDED_BY(mu);
  /// RemapNgdIndices history (Σ-minimized runs remap once, at the end).
  std::vector<std::vector<int>> remaps NGD_GUARDED_BY(mu);
};

// ---- VioSet special members (here: VioSpillState is complete) ------------

VioSet::VioSet() = default;
VioSet::~VioSet() = default;
VioSet::VioSet(VioSet&& other) noexcept = default;
VioSet& VioSet::operator=(VioSet&& other) noexcept = default;

VioSet::VioSet(const VioSet& other)
    : recs_(other.recs_),
      arena_(other.arena_),
      table_(other.table_),
      table_used_(other.table_used_),
      indexed_(other.indexed_),
      size_(other.size_) {
  // Segment files are single-owner; a copy is always a plain resident set.
  assert(other.AllResident() && "cannot copy a spilled VioSet");
}

VioSet& VioSet::operator=(const VioSet& other) {
  assert(other.AllResident() && "cannot copy a spilled VioSet");
  if (this == &other) return *this;
  recs_ = other.recs_;
  arena_ = other.arena_;
  table_ = other.table_;
  table_used_ = other.table_used_;
  indexed_ = other.indexed_;
  size_ = other.size_;
  spill_.reset();
  return *this;
}

// ---- Spill surface -------------------------------------------------------

bool VioSet::AllResident() const {
  if (spill_ == nullptr) return true;
  MutexLock lock(&spill_->mu);
  return spill_->segments.empty();
}

void VioSet::EnableSpill(const VioSpillOptions& opts) {
  assert(!opts.path_prefix.empty());
  if (spill_ == nullptr) spill_ = std::make_unique<VioSpillState>();
  spill_->opts = opts;
  CheckSpill();  // honor the budget immediately when enabled late
}

size_t VioSet::spilled_records() const {
  if (spill_ == nullptr) return 0;
  MutexLock lock(&spill_->mu);
  return static_cast<size_t>(spill_->spilled_records);
}

size_t VioSet::num_spill_segments() const {
  if (spill_ == nullptr) return 0;
  MutexLock lock(&spill_->mu);
  return spill_->segments.size();
}

size_t VioSet::peak_resident_bytes() const {
  const size_t now = resident_bytes();
  if (spill_ == nullptr) return now;
  MutexLock lock(&spill_->mu);
  return std::max(spill_->peak_resident_bytes, now);
}

Status VioSet::spill_status() const {
  if (spill_ == nullptr) return Status::OK();
  MutexLock lock(&spill_->mu);
  return spill_->status;
}

Status VioSet::FlushSpill() {
  if (spill_ == nullptr) return Status::OK();
  VioSpillState& s = *spill_;
  bool failed;
  {
    MutexLock lock(&s.mu);
    failed = s.flush_failed;
  }
  if (!failed && !recs_.empty()) {
    Status st = SpillResidentSegment();
    if (!st.ok()) {
      MutexLock lock(&s.mu);
      s.flush_failed = true;
      s.status = st;
    }
  }
  MutexLock lock(&s.mu);
  return s.status;
}

void VioSet::MaybeSpill() {
  VioSpillState& s = *spill_;
  const size_t bytes = resident_bytes();
  {
    MutexLock lock(&s.mu);
    if (bytes > s.peak_resident_bytes) s.peak_resident_bytes = bytes;
    if (s.flush_failed) return;
  }
  const size_t trigger =
      std::max(kMinSpillBytes, s.opts.budget_bytes > kSpillHeadroomBytes
                                   ? s.opts.budget_bytes - kSpillHeadroomBytes
                                   : s.opts.budget_bytes);
  if (bytes < trigger) return;
  Status st = SpillResidentSegment();
  if (!st.ok()) {
    MutexLock lock(&s.mu);
    s.flush_failed = true;
    s.status = st;
  }
}

Status VioSet::SpillResidentSegment() {
  VioSpillState& s = *spill_;
  // Each segment is one sorted run for the cursor's k-way merge.
  std::vector<uint32_t> order;
  order.reserve(recs_.size());
  for (uint32_t i = 0; i < recs_.size(); ++i) {
    if (!recs_[i].dead) order.push_back(i);
  }
  if (order.empty()) return Status::OK();
  std::sort(order.begin(), order.end(), [this](uint32_t a, uint32_t b) {
    const Rec& ra = recs_[a];
    const Rec& rb = recs_[b];
    return TupleLess(ra.ngd_index, NodesOf(ra), ra.len, rb.ngd_index,
                     NodesOf(rb), rb.len);
  });

  std::string blob;
  blob.reserve(kSegHeaderBytes + recs_.size() * sizeof(Rec) +
               arena_.size() * sizeof(NodeId));
  blob.append(kSegMagic, sizeof(kSegMagic));
  const uint32_t version = kSegVersion;
  const uint32_t flags = 0;
  AppendRaw(&blob, &version, sizeof(version));
  AppendRaw(&blob, &flags, sizeof(flags));
  const uint64_t count = order.size();
  AppendRaw(&blob, &count, sizeof(count));
  // payload_bytes / payload_fnv / header_fnv are back-patched below.
  const size_t patch_at = blob.size();
  blob.resize(kSegHeaderBytes);
  for (uint32_t i : order) {
    const Rec& r = recs_[i];
    AppendRaw(&blob, &r.ngd_index, sizeof(int32_t));
    const uint32_t len = r.len;
    AppendRaw(&blob, &len, sizeof(len));
    AppendRaw(&blob, NodesOf(r), size_t{len} * sizeof(NodeId));
  }
  const uint64_t payload_bytes = blob.size() - kSegHeaderBytes;
  const uint64_t payload_fnv =
      Fnv1a64(blob.data() + kSegHeaderBytes, payload_bytes);
  std::memcpy(&blob[patch_at], &payload_bytes, sizeof(payload_bytes));
  std::memcpy(&blob[patch_at + 8], &payload_fnv, sizeof(payload_fnv));
  const uint64_t header_fnv = Fnv1a64(blob.data(), kSegHeaderBytes - 8);
  std::memcpy(&blob[patch_at + 16], &header_fnv, sizeof(header_fnv));

  uint64_t segment_id;
  size_t remap_from;
  {
    MutexLock lock(&s.mu);
    // Reserve the id up front: a failed write leaves a gap in the
    // numbering, which is harmless (readers walk the registry, not the
    // directory).
    segment_id = s.next_segment_id++;
    remap_from = s.remaps.size();
  }
  std::string path =
      s.opts.path_prefix + ".seg" + std::to_string(segment_id) + ".ngdvio";
  NGD_RETURN_IF_ERROR(WriteFileAtomic(path, blob, NGD_FAILPOINT("vioseg_write")));
  {
    MutexLock lock(&s.mu);
    s.segments.push_back(
        VioSpillState::Segment{std::move(path), count, remap_from});
    s.spilled_records += count;
  }

  // Release the resident storage outright (capacity included — the
  // budget is about memory, not vector size). size_ keeps counting the
  // spilled records.
  recs_.clear();
  recs_.shrink_to_fit();
  arena_.clear();
  arena_.shrink_to_fit();
  table_.clear();
  table_.shrink_to_fit();
  table_used_ = 0;
  indexed_ = 0;
  return Status::OK();
}

void VioSet::AdoptSpillFrom(VioSet&& other) {
  if (spill_ == nullptr) {
    // Take the whole state (budget and prefix included); `other`'s
    // resident records stay behind for the caller to merge.
    spill_ = std::move(other.spill_);
    return;
  }
  VioSpillState& ours = *spill_;
  VioSpillState& theirs = *other.spill_;
  MutexLock our_lock(&ours.mu);
  MutexLock their_lock(&theirs.mu);
  // Engines merge worker-local results before any Σ-remap runs, so the
  // per-segment remap_from offsets stay valid across the adoption.
  assert(ours.remaps.empty() && theirs.remaps.empty());
  for (auto& seg : theirs.segments) ours.segments.push_back(std::move(seg));
  theirs.segments.clear();
  ours.spilled_records += theirs.spilled_records;
  ours.peak_resident_bytes =
      std::max(ours.peak_resident_bytes, theirs.peak_resident_bytes);
  if (theirs.flush_failed && !ours.flush_failed) {
    ours.flush_failed = true;
    ours.status = theirs.status;
  }
}

void VioSet::ComposeSpillRemap(const std::vector<int>& kept) {
  // Segments written after this call hold already-remapped indices and
  // record remap_from past this entry, so they skip it at read time.
  MutexLock lock(&spill_->mu);
  spill_->remaps.push_back(kept);
}

// ---- Cursor --------------------------------------------------------------

struct VioCursorImpl {
  /// One sorted source: a segment file stream with its current record.
  struct SegSource {
    std::ifstream in;
    std::vector<char> iobuf;  ///< stream buffer backing (bounded memory)
    uint64_t remaining = 0;
    size_t remap_from = 0;
    bool done = false;
    int32_t ngd_index = -1;  ///< current record, remap already applied
    std::vector<NodeId> nodes;
  };

  const VioSet* set = nullptr;
  std::vector<std::unique_ptr<SegSource>> segs;
  std::vector<uint32_t> resident_order;  ///< live resident recs, sorted
  size_t resident_pos = 0;
  const std::vector<std::vector<int>>* remaps = nullptr;
  uint64_t total = 0;
  uint64_t position = 0;
  Status status;

  Status AdvanceSeg(SegSource* s) {
    if (s->remaining == 0) {
      s->done = true;
      return Status::OK();
    }
    int32_t ngd = 0;
    uint32_t len = 0;
    s->in.read(reinterpret_cast<char*>(&ngd), sizeof(ngd));
    s->in.read(reinterpret_cast<char*>(&len), sizeof(len));
    if (!s->in || len > kMaxTupleLen) {
      return Status::Corruption("violation segment: truncated record");
    }
    s->nodes.resize(len);
    s->in.read(reinterpret_cast<char*>(s->nodes.data()),
               std::streamsize{len} * sizeof(NodeId));
    if (!s->in) {
      return Status::Corruption("violation segment: truncated tuple");
    }
    if (remaps != nullptr) {
      for (size_t ri = s->remap_from; ri < remaps->size(); ++ri) {
        const std::vector<int>& map = (*remaps)[ri];
        assert(ngd >= 0 && static_cast<size_t>(ngd) < map.size());
        ngd = map[static_cast<size_t>(ngd)];
      }
    }
    s->ngd_index = ngd;
    --s->remaining;
    return Status::OK();
  }

  bool Next(Violation* out) {
    if (!status.ok()) return false;
    // Loop-min over the live sources: segment count is small (segments
    // are at least budget-sized), so a heap buys nothing here.
    SegSource* best = nullptr;
    for (auto& sp : segs) {
      SegSource* s = sp.get();
      if (s->done) continue;
      if (best == nullptr ||
          TupleLess(s->ngd_index, s->nodes.data(),
                    static_cast<uint32_t>(s->nodes.size()), best->ngd_index,
                    best->nodes.data(),
                    static_cast<uint32_t>(best->nodes.size()))) {
        best = s;
      }
    }
    bool take_resident = false;
    if (resident_pos < resident_order.size()) {
      const VioSet::Rec& r = set->recs_[resident_order[resident_pos]];
      if (best == nullptr ||
          TupleLess(r.ngd_index, set->NodesOf(r), r.len, best->ngd_index,
                    best->nodes.data(),
                    static_cast<uint32_t>(best->nodes.size()))) {
        take_resident = true;
      }
    }
    if (take_resident) {
      const VioSet::Rec& r = set->recs_[resident_order[resident_pos]];
      out->ngd_index = r.ngd_index;
      const NodeId* p = set->NodesOf(r);
      out->nodes.assign(p, p + r.len);
      ++resident_pos;
      ++position;
      return true;
    }
    if (best == nullptr) return false;  // drained
    out->ngd_index = best->ngd_index;
    out->nodes.assign(best->nodes.begin(), best->nodes.end());
    Status st = AdvanceSeg(best);
    if (!st.ok()) {
      status = st;
      return false;
    }
    ++position;
    return true;
  }
};

namespace {

/// Opens a segment, validates magic/version/checksums with one streamed
/// pass (bounded memory), and leaves the stream positioned at the first
/// record.
Status OpenSegSource(const VioSpillState::Segment& seg,
                     VioCursorImpl::SegSource* s) {
  s->iobuf.resize(kSegReadBufBytes);
  s->in.rdbuf()->pubsetbuf(s->iobuf.data(),
                           static_cast<std::streamsize>(s->iobuf.size()));
  s->in.open(seg.path, std::ios::binary);
  if (!s->in.is_open()) {
    return Status::NotFound("violation segment missing: " + seg.path);
  }
  char header[kSegHeaderBytes];
  s->in.read(header, sizeof(header));
  if (!s->in || std::memcmp(header, kSegMagic, sizeof(kSegMagic)) != 0) {
    return Status::Corruption("violation segment: bad magic: " + seg.path);
  }
  uint32_t version = 0;
  uint64_t count = 0;
  uint64_t payload_bytes = 0;
  uint64_t payload_fnv = 0;
  uint64_t header_fnv = 0;
  std::memcpy(&version, header + 8, sizeof(version));
  std::memcpy(&count, header + 16, sizeof(count));
  std::memcpy(&payload_bytes, header + 24, sizeof(payload_bytes));
  std::memcpy(&payload_fnv, header + 32, sizeof(payload_fnv));
  std::memcpy(&header_fnv, header + 40, sizeof(header_fnv));
  if (version != kSegVersion) {
    return Status::Corruption("violation segment: unsupported version");
  }
  if (Fnv1a64(header, kSegHeaderBytes - 8) != header_fnv) {
    return Status::Corruption("violation segment: header checksum mismatch");
  }
  if (count != seg.records) {
    return Status::Corruption("violation segment: record count mismatch");
  }
  // Streamed checksum pass: fail before the merge emits a single record,
  // without ever holding the payload in memory.
  uint64_t fnv = kFnv1aOffset;
  uint64_t seen = 0;
  std::vector<char> chunk(kSegReadBufBytes);
  while (seen < payload_bytes) {
    const uint64_t want =
        std::min<uint64_t>(chunk.size(), payload_bytes - seen);
    s->in.read(chunk.data(), static_cast<std::streamsize>(want));
    if (s->in.gcount() != static_cast<std::streamsize>(want)) {
      return Status::Corruption("violation segment: truncated payload");
    }
    fnv = Fnv1a64(chunk.data(), static_cast<size_t>(want), fnv);
    seen += want;
  }
  if (s->in.peek() != std::char_traits<char>::eof()) {
    return Status::Corruption("violation segment: trailing bytes");
  }
  if (fnv != payload_fnv) {
    return Status::Corruption("violation segment: payload checksum mismatch");
  }
  s->in.clear();
  s->in.seekg(kSegHeaderBytes, std::ios::beg);
  if (!s->in) {
    return Status::Internal("violation segment: seek failed");
  }
  s->remaining = count;
  s->remap_from = seg.remap_from;
  return Status::OK();
}

}  // namespace

StatusOr<VioCursor> VioSet::OpenCursor(uint64_t start_offset) const {
  auto impl = std::make_unique<VioCursorImpl>();
  impl->set = this;
  impl->total = size_;
  if (spill_ != nullptr) {
    // Snapshot the registry under the lock; the cursor then reads segment
    // FILES and the resident arrays lock-free, which is sound because a
    // cursor requires a quiescent set for its whole lifetime (the same
    // contract Sorted() has — segments are immutable once registered, and
    // the remap history only grows, never rewrites, while unreferenced).
    MutexLock lock(&spill_->mu);
    impl->remaps = &spill_->remaps;
    impl->segs.reserve(spill_->segments.size());
    for (const auto& seg : spill_->segments) {
      auto src = std::make_unique<VioCursorImpl::SegSource>();
      NGD_RETURN_IF_ERROR(OpenSegSource(seg, src.get()));
      NGD_RETURN_IF_ERROR(impl->AdvanceSeg(src.get()));  // prime
      impl->segs.push_back(std::move(src));
    }
  }
  impl->resident_order.reserve(recs_.size());
  for (uint32_t i = 0; i < recs_.size(); ++i) {
    if (!recs_[i].dead) impl->resident_order.push_back(i);
  }
  std::sort(impl->resident_order.begin(), impl->resident_order.end(),
            [this](uint32_t a, uint32_t b) {
              const Rec& ra = recs_[a];
              const Rec& rb = recs_[b];
              return TupleLess(ra.ngd_index, NodesOf(ra), ra.len,
                               rb.ngd_index, NodesOf(rb), rb.len);
            });
  // Resume: linear skip (segments interleave arbitrarily, so there is no
  // per-segment shortcut; a skip is one sequential read, no allocation
  // churn past the reused tuple buffer).
  Violation scratch;
  for (uint64_t i = 0; i < start_offset; ++i) {
    if (!impl->Next(&scratch)) break;
  }
  if (!impl->status.ok()) return impl->status;
  return VioCursor(std::move(impl));
}

VioCursor::VioCursor(std::unique_ptr<VioCursorImpl> impl)
    : impl_(std::move(impl)) {}
VioCursor::VioCursor(VioCursor&&) noexcept = default;
VioCursor& VioCursor::operator=(VioCursor&&) noexcept = default;
VioCursor::~VioCursor() = default;

bool VioCursor::Next(Violation* out) { return impl_->Next(out); }
const Status& VioCursor::status() const { return impl_->status; }
uint64_t VioCursor::position() const { return impl_->position; }
uint64_t VioCursor::total() const { return impl_->total; }

// ---- VioSink -------------------------------------------------------------

VioSink::VioSink(VioSpillOptions opts) { set_.EnableSpill(opts); }

Status VioSink::Finish() { return set_.FlushSpill(); }

StatusOr<VioCursor> VioSink::OpenCursor(uint64_t offset) const {
  return set_.OpenCursor(offset);
}

StatusOr<uint64_t> VioSink::ReadPage(uint64_t offset, size_t max_records,
                                     std::vector<Violation>* out) const {
  NGD_ASSIGN_OR_RETURN(VioCursor cursor, set_.OpenCursor(offset));
  Violation v;
  for (size_t i = 0; i < max_records && cursor.Next(&v); ++i) {
    out->push_back(v);
  }
  NGD_RETURN_IF_ERROR(cursor.status());
  return cursor.position();
}

}  // namespace ngd
