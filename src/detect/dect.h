// Batch error detection with NGDs (paper §5.1).
//
// Dect computes Vio(Σ, G) by full homomorphism enumeration per NGD — the
// sequential baseline extended from the GFD batch algorithm of [24].
// Validation (G |= Σ?) is the coNP decision version: an NP witness search
// that stops at the first violation.

#ifndef NGD_DETECT_DECT_H_
#define NGD_DETECT_DECT_H_

#include <optional>

#include "detect/violation.h"
#include "match/homomorphism.h"

namespace ngd {

struct DectOptions {
  GraphView view = GraphView::kNew;
  /// Safety valve for adversarial rule sets: stop collecting per NGD after
  /// this many violations (0 = unlimited).
  size_t max_violations_per_ngd = 0;
};

/// Vio(Σ, G): all violations of all NGDs in Σ.
VioSet Dect(const Graph& g, const NgdSet& sigma, const DectOptions& opts = {});

/// First violation found, or nullopt if G |= Σ (early exit).
std::optional<Violation> FindAnyViolation(const Graph& g, const NgdSet& sigma,
                                          GraphView view = GraphView::kNew);

/// The validation problem: G |= Σ.
inline bool Validate(const Graph& g, const NgdSet& sigma,
                     GraphView view = GraphView::kNew) {
  return !FindAnyViolation(g, sigma, view).has_value();
}

}  // namespace ngd

#endif  // NGD_DETECT_DECT_H_
