// Batch error detection with NGDs (paper §5.1).
//
// Dect computes Vio(Σ, G) by full homomorphism enumeration per NGD — the
// sequential baseline extended from the GFD batch algorithm of [24].
// Validation (G |= Σ?) is the coNP decision version: an NP witness search
// that stops at the first violation.
//
// Both entry points can build one CSR GraphSnapshot of the requested
// view per call and amortize it across every rule in Σ
// (label-partitioned adjacency makes the Matchn expansion memory-lean;
// see graph/snapshot.h). The default SnapshotMode::kAuto decides by a
// cost model: the O(|E|) build only pays off when the live engine would
// stream a multiple of the adjacency, so selective rule sets on small
// graphs keep the live engine. kNever selects the pre-snapshot
// live-graph engine unconditionally — kept as the equivalence-test
// oracle and the benchmark baseline; kAlways forces the snapshot.

#ifndef NGD_DETECT_DECT_H_
#define NGD_DETECT_DECT_H_

#include <optional>
#include <vector>

#include "detect/violation.h"
#include "match/homomorphism.h"
#include "reason/sigma_optimizer.h"
#include "util/cancel.h"

namespace ngd {

enum class SnapshotMode : uint8_t {
  kAuto = 0,  ///< cost model decides (WantSnapshot)
  kAlways,    ///< always build + match against the CSR snapshot
  kNever,     ///< always match against the live overlay graph
};

/// Honest-partial-result report of one detection run (all engines). When
/// a run is cancelled or hits its deadline it returns the violations
/// found so far with `truncated` set; `rule_completed[f]` says whether
/// rule f's enumeration finished, i.e. whether its reported violations
/// are the complete set for that rule. An untruncated run marks every
/// rule completed. Under Σ-minimization the marks are remapped to the
/// caller's catalog through the implication cover: a dropped (implied)
/// rule counts completed exactly when every rule that (transitively)
/// implied it finished enumerating (see RemapRunInfo).
struct DetectRunInfo {
  bool truncated = false;
  std::vector<char> rule_completed;  // indexed by the caller's Σ

  void StartFull(size_t num_rules) {
    truncated = false;
    rule_completed.assign(num_rules, 1);
  }
};

struct DectOptions {
  GraphView view = GraphView::kNew;
  /// Safety valve for adversarial rule sets: stop collecting per NGD after
  /// this many violations (0 = unlimited).
  size_t max_violations_per_ngd = 0;
  SnapshotMode snapshot_mode = SnapshotMode::kAuto;
  /// Pre-built CSR snapshot to match against — e.g. loaded from a binary
  /// snapshot file (graph/snapshot_io.h) or reused across calls. Must
  /// describe `view` of `g`. When set it overrides snapshot_mode: the
  /// engine skips its own build and never falls back to the live graph.
  const GraphSnapshot* snapshot = nullptr;
  /// Σ-optimizer (reason/sigma_optimizer.h): kNever runs Σ verbatim (the
  /// default and the equivalence oracle); kAlways/kAuto detect against the
  /// implication-minimized rule set and remap violation indices back to Σ.
  /// Kept-rule violations are preserved exactly; dropped (implied) rules
  /// report none — any graph violating them also violates a kept rule.
  MinimizeMode minimize_sigma = MinimizeMode::kNever;
  SigmaOptimizerOptions sigma_optimizer = {};
  /// Graceful degradation: an externally cancellable run and/or a time
  /// budget. When either trips mid-sweep the engine stops expanding,
  /// returns the violations found so far, and reports the partial-result
  /// shape through `run_info`. The process never aborts.
  CancelToken* cancel = nullptr;
  Deadline deadline = {};
  /// Optional out-param (must outlive the call): filled on every run,
  /// truncated or not. Engines re-entering under Σ-minimization remap it.
  DetectRunInfo* run_info = nullptr;
  /// Streaming results: when set, the returned VioSet spills sorted
  /// checksummed segments past opts->budget_bytes instead of holding
  /// everything resident; read it back with VioSet::OpenCursor (the
  /// checked/whole-set surface is then off limits — see
  /// detect/vio_stream.h).
  const VioSpillOptions* spill = nullptr;
};

/// Remaps a DetectRunInfo produced against a minimized Σ back to the
/// caller's catalog: kept rules copy their marks; a dropped (implied)
/// rule is complete iff every rule on its implication cover
/// (OptimizeReport::implied_by, followed transitively to kept rules)
/// completed — its violations are covered by exactly those rules, so a
/// truncation elsewhere in the sweep does not poison its mark. Reports
/// without a recorded cover (e.g. served from a pre-upgrade cache entry)
/// fall back to the conservative whole-run mark.
void RemapRunInfo(const DetectRunInfo& inner, const OptimizeReport& report,
                  size_t original_rules, DetectRunInfo* out);

/// The kAuto cost model, two regimes, both evaluated on `view` — the view
/// detection will actually match (a pending-heavy overlay graph must not
/// be judged by the other view's edges):
///   1. matching-dominated: the seed-candidate volume of Σ (the adjacency
///      the live engine would stream) must be large enough to amortize
///      the O(|E|) snapshot build within this one call;
///   2. emission-dominated: if a bounded density probe then finds the
///      graph violation-dense, materializing violations dominates either
///      engine and the build never pays for itself — stay live.
bool WantSnapshot(const Graph& g, const NgdSet& sigma,
                  GraphView view = GraphView::kNew);

/// Resolves a SnapshotMode to a concrete build-the-snapshot decision
/// (kAuto defers to WantSnapshot on `view`). Shared by Dect,
/// FindAnyViolation and PDect so all engines make the same choice for the
/// same options.
bool ResolveSnapshot(const Graph& g, const NgdSet& sigma, SnapshotMode mode,
                     GraphView view = GraphView::kNew);

/// Vio(Σ, G): all violations of all NGDs in Σ.
VioSet Dect(const Graph& g, const NgdSet& sigma, const DectOptions& opts = {});

/// First violation found, or nullopt if G |= Σ (early exit). Honors
/// opts.snapshot_mode (kNever skips the snapshot build callers who expect
/// an early witness would waste) and opts.minimize_sigma — minimization
/// preserves emptiness exactly, which makes it a pure win for validation:
/// the full sweep over a clean graph shrinks to the kept rules.
std::optional<Violation> FindAnyViolation(const Graph& g, const NgdSet& sigma,
                                          const DectOptions& opts);

inline std::optional<Violation> FindAnyViolation(
    const Graph& g, const NgdSet& sigma, GraphView view = GraphView::kNew,
    SnapshotMode mode = SnapshotMode::kAuto) {
  DectOptions opts;
  opts.view = view;
  opts.snapshot_mode = mode;
  return FindAnyViolation(g, sigma, opts);
}

/// The validation problem: G |= Σ.
inline bool Validate(const Graph& g, const NgdSet& sigma,
                     GraphView view = GraphView::kNew,
                     SnapshotMode mode = SnapshotMode::kAuto) {
  return !FindAnyViolation(g, sigma, view, mode).has_value();
}

}  // namespace ngd

#endif  // NGD_DETECT_DECT_H_
