#include "detect/inc_dect.h"

#include <algorithm>

namespace ngd {

UpdateIndex::UpdateIndex(const Graph& g, const UpdateBatch& batch) {
  for (const UnitUpdate& u : batch.updates) {
    EdgeKey key{u.src, u.dst, u.label};
    std::optional<EdgeState> state = g.EdgeStateOf(u.src, u.dst, u.label);
    // Only updates whose effect survives in the overlay count: an insert
    // record must correspond to a kInserted edge, a delete record to a
    // kDeleted edge. Anything else cancelled out within the batch.
    if (u.kind == UpdateKind::kInsert) {
      if (!state.has_value() || *state != EdgeState::kInserted) continue;
      if (insert_index_.count(key) > 0) continue;  // duplicate record
      insert_index_.emplace(key, static_cast<int>(updates_.size()));
    } else {
      if (!state.has_value() || *state != EdgeState::kDeleted) continue;
      if (delete_index_.count(key) > 0) continue;
      delete_index_.emplace(key, static_cast<int>(updates_.size()));
    }
    updates_.push_back(EffectiveUpdate{u.kind, key});
  }
}

std::optional<int> UpdateIndex::IndexOf(UpdateKind kind,
                                        const EdgeKey& key) const {
  const auto& map =
      kind == UpdateKind::kInsert ? insert_index_ : delete_index_;
  auto it = map.find(key);
  if (it == map.end()) return std::nullopt;
  return it->second;
}

std::vector<PivotTask> EnumeratePivotTasks(const Graph& g,
                                           const NgdSet& sigma,
                                           const UpdateIndex& index) {
  std::vector<PivotTask> tasks;
  const auto& updates = index.updates();
  for (size_t j = 0; j < updates.size(); ++j) {
    const EffectiveUpdate& u = updates[j];
    for (size_t f = 0; f < sigma.size(); ++f) {
      const Pattern& pattern = sigma[f].pattern();
      for (size_t p = 0; p < pattern.NumEdges(); ++p) {
        const PatternEdge& pe = pattern.edge(static_cast<int>(p));
        if (pe.label != u.edge.label) continue;
        if (!NodeMatchesLabel(g, u.edge.src, pattern.node(pe.src).label)) {
          continue;
        }
        if (!NodeMatchesLabel(g, u.edge.dst, pattern.node(pe.dst).label)) {
          continue;
        }
        // A self-loop pattern edge can only match a self-loop graph edge.
        if (pe.src == pe.dst && u.edge.src != u.edge.dst) continue;
        tasks.push_back(PivotTask{static_cast<int>(f), static_cast<int>(p),
                                  static_cast<int>(j)});
      }
    }
  }
  return tasks;
}

bool IsCanonicalPivot(const Graph& g, const Pattern& pattern,
                      const Binding& binding, const UpdateIndex& index,
                      UpdateKind kind, int update_index, int pattern_edge) {
  (void)g;
  int best_update = update_index;
  int best_edge = pattern_edge;
  for (size_t p = 0; p < pattern.NumEdges(); ++p) {
    const PatternEdge& pe = pattern.edge(static_cast<int>(p));
    EdgeKey key{binding[pe.src], binding[pe.dst], pe.label};
    std::optional<int> idx = index.IndexOf(kind, key);
    if (!idx.has_value()) continue;
    if (*idx < best_update ||
        (*idx == best_update && static_cast<int>(p) < best_edge)) {
      best_update = *idx;
      best_edge = static_cast<int>(p);
    }
  }
  return best_update == update_index && best_edge == pattern_edge;
}

Status ValidateForIncremental(const NgdSet& sigma) {
  for (size_t f = 0; f < sigma.size(); ++f) {
    const Pattern& pattern = sigma[f].pattern();
    if (pattern.NumEdges() == 0) {
      return Status::InvalidArgument(
          "incremental detection: NGD '" + sigma[f].name() +
          "' has an edge-less pattern; edge updates cannot pivot it "
          "(use batch Dect for such rules)");
    }
    if (!pattern.IsConnected()) {
      return Status::InvalidArgument(
          "incremental detection: NGD '" + sigma[f].name() +
          "' has a disconnected pattern; split it into connected "
          "components (paper §6, discussion of disconnected patterns)");
    }
  }
  return Status::OK();
}

StatusOr<DeltaVio> IncDect(const Graph& g, const NgdSet& sigma,
                           const UpdateBatch& batch) {
  NGD_RETURN_IF_ERROR(ValidateForIncremental(sigma));

  UpdateIndex index(g, batch);
  std::vector<PivotTask> tasks = EnumeratePivotTasks(g, sigma, index);

  // Plan cache: one expansion order per (NGD, pattern edge) seed pair.
  std::unordered_map<int64_t, MatchPlan> plans;
  auto plan_for = [&](int f, int p) -> const MatchPlan& {
    int64_t key = (static_cast<int64_t>(f) << 32) | static_cast<uint32_t>(p);
    auto it = plans.find(key);
    if (it != plans.end()) return it->second;
    const Ngd& ngd = sigma[f];
    const PatternEdge& pe = ngd.pattern().edge(p);
    std::vector<int> seeds{pe.src};
    if (pe.dst != pe.src) seeds.push_back(pe.dst);
    MatchPlan plan =
        BuildMatchPlan(ngd.pattern(), std::move(seeds), &ngd.X(), &ngd.Y());
    return plans.emplace(key, std::move(plan)).first->second;
  };

  DeltaVio delta;
  for (const PivotTask& task : tasks) {
    const Ngd& ngd = sigma[task.ngd_index];
    const EffectiveUpdate& u = index.updates()[task.update_index];
    const PatternEdge& pe = ngd.pattern().edge(task.pattern_edge);

    PivotEdgeFilter filter(&index, u.kind, task.update_index);
    SearchConfig cfg;
    cfg.graph = &g;
    cfg.pattern = &ngd.pattern();
    cfg.x = &ngd.X();
    cfg.y = &ngd.Y();
    cfg.view =
        u.kind == UpdateKind::kInsert ? GraphView::kNew : GraphView::kOld;
    cfg.edge_filter = &filter;
    cfg.find_violations = true;

    Binding binding(ngd.pattern().NumNodes(), kInvalidNode);
    binding[pe.src] = u.edge.src;
    binding[pe.dst] = u.edge.dst;

    VioSet& target =
        u.kind == UpdateKind::kInsert ? delta.added : delta.removed;
    RunSeededSearch(cfg, plan_for(task.ngd_index, task.pattern_edge),
                    &binding, [&](const Binding& match) {
                      if (IsCanonicalPivot(g, ngd.pattern(), match, index,
                                           u.kind, task.update_index,
                                           task.pattern_edge)) {
                        target.Add(Violation{task.ngd_index, match});
                      }
                      return true;
                    });
  }
  return delta;
}

}  // namespace ngd
