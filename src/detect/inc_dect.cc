#include "detect/inc_dect.h"

#include <algorithm>

namespace ngd {

UpdateIndex::UpdateIndex(const Graph& g, const UpdateBatch& batch) {
  for (const UnitUpdate& u : batch.updates) {
    EdgeKey key{u.src, u.dst, u.label};
    std::optional<EdgeState> state = g.EdgeStateOf(u.src, u.dst, u.label);
    // Only updates whose effect survives in the overlay count: an insert
    // record must correspond to a kInserted edge, a delete record to a
    // kDeleted edge. Anything else cancelled out within the batch.
    if (u.kind == UpdateKind::kInsert) {
      if (!state.has_value() || *state != EdgeState::kInserted) continue;
      if (insert_index_.count(key) > 0) continue;  // duplicate record
      insert_index_.emplace(key, static_cast<int>(updates_.size()));
    } else {
      if (!state.has_value() || *state != EdgeState::kDeleted) continue;
      if (delete_index_.count(key) > 0) continue;
      delete_index_.emplace(key, static_cast<int>(updates_.size()));
    }
    updates_.push_back(EffectiveUpdate{u.kind, key});
  }
}

std::optional<int> UpdateIndex::IndexOf(UpdateKind kind,
                                        const EdgeKey& key) const {
  const auto& map =
      kind == UpdateKind::kInsert ? insert_index_ : delete_index_;
  auto it = map.find(key);
  if (it == map.end()) return std::nullopt;
  return it->second;
}

std::vector<PivotTask> EnumeratePivotTasks(const Graph& g,
                                           const NgdSet& sigma,
                                           const UpdateIndex& index) {
  std::vector<PivotTask> tasks;
  const auto& updates = index.updates();
  for (size_t j = 0; j < updates.size(); ++j) {
    const EffectiveUpdate& u = updates[j];
    for (size_t f = 0; f < sigma.size(); ++f) {
      const Pattern& pattern = sigma[f].pattern();
      for (size_t p = 0; p < pattern.NumEdges(); ++p) {
        const PatternEdge& pe = pattern.edge(static_cast<int>(p));
        if (pe.label != u.edge.label) continue;
        if (!NodeMatchesLabel(g, u.edge.src, pattern.node(pe.src).label)) {
          continue;
        }
        if (!NodeMatchesLabel(g, u.edge.dst, pattern.node(pe.dst).label)) {
          continue;
        }
        // A self-loop pattern edge can only match a self-loop graph edge.
        if (pe.src == pe.dst && u.edge.src != u.edge.dst) continue;
        tasks.push_back(PivotTask{static_cast<int>(f), static_cast<int>(p),
                                  static_cast<int>(j)});
      }
    }
  }
  return tasks;
}

namespace {

/// The one copy of the (update, pattern-edge) tie-break that defines
/// exactly-once emission; `maybe_update(src, dst, label)` lets a backend
/// skip edges it can prove are not update records before the hash lookup.
template <typename MaybeUpdate>
bool IsCanonicalPivotImpl(const Pattern& pattern, const Binding& binding,
                          const UpdateIndex& index, UpdateKind kind,
                          int update_index, int pattern_edge,
                          const MaybeUpdate& maybe_update) {
  int best_update = update_index;
  int best_edge = pattern_edge;
  for (size_t p = 0; p < pattern.NumEdges(); ++p) {
    const PatternEdge& pe = pattern.edge(static_cast<int>(p));
    const NodeId src = binding[pe.src];
    const NodeId dst = binding[pe.dst];
    if (!maybe_update(src, dst, pe.label)) continue;
    std::optional<int> idx =
        index.IndexOf(kind, EdgeKey{src, dst, pe.label});
    if (!idx.has_value()) continue;
    if (*idx < best_update ||
        (*idx == best_update && static_cast<int>(p) < best_edge)) {
      best_update = *idx;
      best_edge = static_cast<int>(p);
    }
  }
  return best_update == update_index && best_edge == pattern_edge;
}

}  // namespace

bool IsCanonicalPivot(const Graph& g, const Pattern& pattern,
                      const Binding& binding, const UpdateIndex& index,
                      UpdateKind kind, int update_index, int pattern_edge) {
  (void)g;
  return IsCanonicalPivotImpl(pattern, binding, index, kind, update_index,
                              pattern_edge,
                              [](NodeId, NodeId, LabelId) { return true; });
}

bool IsCanonicalPivot(const DeltaView& dv, const Pattern& pattern,
                      const Binding& binding, const UpdateIndex& index,
                      UpdateKind kind, int update_index, int pattern_edge) {
  // DeltaView and UpdateIndex apply the same effectiveness predicate, so
  // the span check is exactly IndexOf(...).has_value() — at the cost of
  // one bitmap byte for the base edges that dominate.
  const bool insert_side = kind == UpdateKind::kInsert;
  return IsCanonicalPivotImpl(
      pattern, binding, index, kind, update_index, pattern_edge,
      [&dv, insert_side](NodeId src, NodeId dst, LabelId label) {
        return dv.IsDeltaEdge(insert_side, src, dst, label);
      });
}

Status ValidateForIncremental(const NgdSet& sigma) {
  for (size_t f = 0; f < sigma.size(); ++f) {
    const Pattern& pattern = sigma[f].pattern();
    if (pattern.NumEdges() == 0) {
      return Status::InvalidArgument(
          "incremental detection: NGD '" + sigma[f].name() +
          "' has an edge-less pattern; edge updates cannot pivot it "
          "(use batch Dect for such rules)");
    }
    if (!pattern.IsConnected()) {
      return Status::InvalidArgument(
          "incremental detection: NGD '" + sigma[f].name() +
          "' has a disconnected pattern; split it into connected "
          "components (paper §6, discussion of disconnected patterns)");
    }
  }
  return Status::OK();
}

namespace {

/// Budgeted BFS ball over the union of both views (every adjacency entry,
/// any overlay state — a superset of each view's ball, so it is a sound
/// scope for ΔVio+ and ΔVio- searches alike). Returns false and leaves
/// the ball partial once more than `budget` nodes are visited.
bool BoundedUnionBall(const Graph& g, const std::vector<NodeId>& seeds,
                      int d, size_t budget, NodeSet* ball) {
  std::vector<NodeId> frontier;
  for (NodeId v : seeds) {
    if (ball->Contains(v)) continue;
    ball->Add(v);
    frontier.push_back(v);
    if (ball->size() > budget) return false;
  }
  for (int hop = 0; hop < d && !frontier.empty(); ++hop) {
    std::vector<NodeId> next;
    for (NodeId v : frontier) {
      for (const auto* adj : {&g.OutEdges(v), &g.InEdges(v)}) {
        for (const AdjEntry& e : *adj) {
          if (ball->Contains(e.other)) continue;
          ball->Add(e.other);
          next.push_back(e.other);
          if (ball->size() > budget) return false;
        }
      }
    }
    frontier = std::move(next);
  }
  return true;
}

}  // namespace

AffectedArea::AffectedArea(const Graph& g, const NgdSet& sigma,
                           const UpdateIndex& index) {
  std::vector<NodeId> seeds;
  seeds.reserve(index.updates().size() * 2);
  for (const EffectiveUpdate& u : index.updates()) {
    seeds.push_back(u.edge.src);
    seeds.push_back(u.edge.dst);
  }
  const size_t budget = std::max<size_t>(256, g.NumNodes() / 8);

  // One ball per distinct diameter; each with the set of node labels it
  // contains, for the candidate-array intersection below.
  std::vector<int> diameter_of_ball;
  std::vector<std::vector<uint8_t>> labels_in_ball;
  const size_t num_labels = g.schema()->labels().size();
  ball_of_rule_.resize(sigma.size());
  for (size_t f = 0; f < sigma.size(); ++f) {
    const int d = sigma[f].pattern().Diameter();
    auto it = std::find(diameter_of_ball.begin(), diameter_of_ball.end(), d);
    if (it != diameter_of_ball.end()) {
      ball_of_rule_[f] = static_cast<int>(it - diameter_of_ball.begin());
      continue;
    }
    diameter_of_ball.push_back(d);
    NodeSet ball(g.NumNodes());
    const bool bounded = BoundedUnionBall(g, seeds, d, budget, &ball);
    labels_in_ball.emplace_back();
    if (bounded) {
      labels_in_ball.back().assign(num_labels, 0);
      for (NodeId v : ball.members()) {
        labels_in_ball.back()[g.NodeLabel(v)] = 1;
      }
    }
    balls_.push_back(std::move(ball));
    bounded_.push_back(bounded);
    ball_of_rule_[f] = static_cast<int>(balls_.size()) - 1;
  }

  rule_can_match_.resize(sigma.size());
  for (size_t f = 0; f < sigma.size(); ++f) {
    const Pattern& pattern = sigma[f].pattern();
    const int b = ball_of_rule_[f];
    if (!bounded_[b]) {
      rule_can_match_[f] = true;  // saturated ball: prune nothing
      continue;
    }
    const std::vector<uint8_t>& present = labels_in_ball[b];
    bool ok = !balls_[b].empty();
    for (size_t u = 0; ok && u < pattern.NumNodes(); ++u) {
      const LabelId l = pattern.node(static_cast<int>(u)).label;
      if (l == kWildcardLabel) continue;
      if (l >= present.size() || !present[l]) ok = false;
    }
    rule_can_match_[f] = ok;
  }
}

bool WantDeltaView(const Graph& g, const UpdateIndex& index,
                   const std::vector<PivotTask>& tasks) {
  // Depth-1 frontier: every pivot task streams the adjacency of both of
  // its endpoints at least once before any recursion — a lower bound on
  // what the live engine scans. The base-snapshot build streams
  // |V| + 2|E| entries with a sort-like constant; require the frontier to
  // exceed a small multiple of that before paying the build.
  const size_t build_cost = g.NumNodes() + g.NumEdges(GraphView::kOld) +
                            g.NumEdges(GraphView::kNew);
  const size_t threshold = 2 * build_cost;
  size_t frontier = 0;
  for (const PivotTask& t : tasks) {
    const EffectiveUpdate& u = index.updates()[t.update_index];
    frontier += g.AdjSize(u.edge.src) + g.AdjSize(u.edge.dst);
    if (frontier >= threshold) return true;
  }
  return false;
}

bool ResolveDeltaView(const Graph& g, const UpdateIndex& index,
                      const std::vector<PivotTask>& tasks, SnapshotMode mode,
                      bool base_snapshot_provided) {
  switch (mode) {
    case SnapshotMode::kAlways:
      return true;
    case SnapshotMode::kNever:
      return false;
    case SnapshotMode::kAuto:
      break;
  }
  return base_snapshot_provided || WantDeltaView(g, index, tasks);
}

StatusOr<DeltaVio> IncDect(const Graph& g, const NgdSet& sigma,
                           const UpdateBatch& batch,
                           const IncDectOptions& opts) {
  NGD_RETURN_IF_ERROR(ValidateForIncremental(sigma));

  // Σ-optimizer wiring (after validation, so rejection behavior matches
  // the oracle even when the offending rule would have been dropped):
  // dropped (implied) rules spawn no pivot tasks; kept-rule deltas are
  // computed verbatim and remapped back to Σ.
  IncDectOptions inner;
  MinimizedSigma m;
  if (BeginMinimizedDetection(sigma, g.schema(), opts, &inner, &m)) {
    DetectRunInfo inner_info;
    inner.run_info = &inner_info;
    auto delta = IncDect(g, m.sigma, batch, inner);
    if (!delta.ok()) return delta;
    if (opts.run_info != nullptr) {
      RemapRunInfo(inner_info, m.report, sigma.size(), opts.run_info);
    }
    return RemapDelta(*std::move(delta), m.report.kept);
  }

  UpdateIndex index(g, batch);
  std::vector<PivotTask> tasks = EnumeratePivotTasks(g, sigma, index);

  std::optional<AffectedArea> area;
  if (opts.affected_area_prefilter) area.emplace(g, sigma, index);

  // Backend: live overlay graph, or DeltaView over the base snapshot
  // (owned when the caller does not maintain one across batches).
  std::optional<GraphSnapshot> owned_base;
  std::optional<DeltaView> dv;
  if (ResolveDeltaView(g, index, tasks, opts.snapshot_mode,
                       opts.base_snapshot != nullptr)) {
    const GraphSnapshot* base = opts.base_snapshot;
    if (base == nullptr) {
      owned_base.emplace(g, GraphView::kOld);
      base = &*owned_base;
    }
    dv.emplace(*base, g, batch);
  }

  // Plan cache: one expansion order per (NGD, pattern edge) seed pair.
  std::unordered_map<int64_t, MatchPlan> plans;
  auto plan_for = [&](int f, int p) -> const MatchPlan& {
    int64_t key = (static_cast<int64_t>(f) << 32) | static_cast<uint32_t>(p);
    auto it = plans.find(key);
    if (it != plans.end()) return it->second;
    const Ngd& ngd = sigma[f];
    const PatternEdge& pe = ngd.pattern().edge(p);
    std::vector<int> seeds{pe.src};
    if (pe.dst != pe.src) seeds.push_back(pe.dst);
    MatchPlan plan =
        BuildMatchPlan(ngd.pattern(), std::move(seeds), &ngd.X(), &ngd.Y());
    return plans.emplace(key, std::move(plan)).first->second;
  };

  DetectRunInfo local_info;
  DetectRunInfo* info = opts.run_info != nullptr ? opts.run_info : &local_info;
  info->StartFull(sigma.size());
  CancelCheck check(opts.cancel, opts.deadline);
  CancelCheck* cancel = check.active() ? &check : nullptr;

  DeltaVio delta;
  if (opts.spill != nullptr) {
    VioSpillOptions side = *opts.spill;
    side.path_prefix = opts.spill->path_prefix + ".add";
    delta.added.EnableSpill(side);
    side.path_prefix = opts.spill->path_prefix + ".rem";
    delta.removed.EnableSpill(side);
  }
  for (size_t t = 0; t < tasks.size(); ++t) {
    const PivotTask& task = tasks[t];
    if (cancel != nullptr && cancel->ShouldStop()) {
      // A rule's delta is complete only when all its pivot tasks ran; the
      // interrupted task and everything after it mark their rules.
      info->truncated = true;
      for (size_t r = t; r < tasks.size(); ++r) {
        info->rule_completed[static_cast<size_t>(tasks[r].ngd_index)] = 0;
      }
      break;
    }
    if (area.has_value() && !area->RuleCanMatch(task.ngd_index)) continue;
    const Ngd& ngd = sigma[task.ngd_index];
    const EffectiveUpdate& u = index.updates()[task.update_index];
    const PatternEdge& pe = ngd.pattern().edge(task.pattern_edge);

    PivotEdgeFilter live_filter(&index, u.kind, task.update_index);
    DeltaViewPivotEdgeFilter dv_filter(dv.has_value() ? &*dv : nullptr,
                                       &index, u.kind, task.update_index);
    SearchConfig cfg;
    cfg.graph = &g;
    cfg.delta_view = dv.has_value() ? &*dv : nullptr;
    cfg.pattern = &ngd.pattern();
    cfg.x = &ngd.X();
    cfg.y = &ngd.Y();
    cfg.view =
        u.kind == UpdateKind::kInsert ? GraphView::kNew : GraphView::kOld;
    cfg.edge_filter =
        dv.has_value() ? static_cast<const EdgeFilter*>(&dv_filter)
                       : static_cast<const EdgeFilter*>(&live_filter);
    cfg.node_scope =
        area.has_value() ? area->ScopeOf(task.ngd_index) : nullptr;
    cfg.find_violations = true;
    cfg.cancel = cancel;

    Binding binding(ngd.pattern().NumNodes(), kInvalidNode);
    binding[pe.src] = u.edge.src;
    binding[pe.dst] = u.edge.dst;

    VioSet& target =
        u.kind == UpdateKind::kInsert ? delta.added : delta.removed;
    RunSeededSearch(cfg, plan_for(task.ngd_index, task.pattern_edge),
                    &binding, [&](const Binding& match) {
                      const bool canonical =
                          dv.has_value()
                              ? IsCanonicalPivot(*dv, ngd.pattern(), match,
                                                 index, u.kind,
                                                 task.update_index,
                                                 task.pattern_edge)
                              : IsCanonicalPivot(g, ngd.pattern(), match,
                                                 index, u.kind,
                                                 task.update_index,
                                                 task.pattern_edge);
                      if (canonical) {
                        // Minimal-pivot canonicality already guarantees
                        // exactly-once emission per match per update
                        // kind; the checked insert's hash probe would
                        // only re-prove it.
                        target.AppendUnchecked(task.ngd_index, match.data(),
                                               match.size());
                      }
                      return true;
                    });
    if (cancel != nullptr && cancel->Stopped()) {
      info->truncated = true;
      for (size_t r = t; r < tasks.size(); ++r) {
        info->rule_completed[static_cast<size_t>(tasks[r].ngd_index)] = 0;
      }
      break;
    }
  }
  return delta;
}

}  // namespace ngd
