#include "detect/violation.h"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace ngd {

namespace {

size_t NextPow2(size_t n) {
  size_t p = 16;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

size_t VioSet::ProbeSlot(int32_t ngd_index, const NodeId* nodes,
                         uint32_t len) const {
  const size_t mask = table_.size() - 1;
  size_t slot = static_cast<size_t>(HashTuple(ngd_index, nodes, len)) & mask;
  while (true) {
    const uint32_t rec = table_[slot];
    if (rec == kEmptySlot) return slot;
    if (RecEquals(recs_[rec], ngd_index, nodes, len)) return slot;
    slot = (slot + 1) & mask;
  }
}

void VioSet::GrowTable(size_t min_live) {
  // Max load 1/2: the probe sequences stay short even on adversarial
  // tuple families (and the FNV-1a record hash spreads structured ids).
  table_.assign(NextPow2(2 * std::max<size_t>(min_live, 8)), kEmptySlot);
  table_used_ = 0;
  const size_t mask = table_.size() - 1;
  for (uint32_t i = 0; i < indexed_; ++i) {
    const Rec& r = recs_[i];
    // A rebuild forgets dead records: their slots are reclaimed, and a
    // re-added equal tuple simply appends a fresh record.
    if (r.dead) continue;
    size_t slot =
        static_cast<size_t>(HashTuple(r.ngd_index, NodesOf(r), r.len)) & mask;
    while (table_[slot] != kEmptySlot) slot = (slot + 1) & mask;
    table_[slot] = i;
    ++table_used_;
  }
}

void VioSet::EnsureIndex() {
  if (indexed_ == recs_.size()) return;
  if (table_used_ + (recs_.size() - indexed_) > table_.size() / 2) {
    const size_t live_estimate = size_ + (recs_.size() - indexed_);
    // Index the prefix as-is, then catch up below.
    const size_t old_indexed = indexed_;
    GrowTable(live_estimate);
    indexed_ = old_indexed;
  }
  for (size_t i = indexed_; i < recs_.size(); ++i) {
    Rec& r = recs_[i];
    if (r.dead) continue;
    // Catch-up doubles as the single batched dedup pass: a duplicate
    // appended unchecked (contract breach, or the documented deferred
    // dedup of a checked op after unchecked appends) is repaired here.
    indexed_ = i;  // ProbeSlot ignores records >= indexed_ only via table_
    const size_t slot = ProbeSlot(r.ngd_index, NodesOf(r), r.len);
    if (table_[slot] != kEmptySlot) {
      if (!recs_[table_[slot]].dead) {
        r.dead = 1;
        --size_;
        continue;
      }
      // The tabled equal record is dead: this tuple was removed and then
      // re-appended unchecked. The newer live record supersedes it (the
      // batched analogue of AddTuple's revive path); the slot stays
      // occupied, so table_used_ is unchanged.
      table_[slot] = static_cast<uint32_t>(i);
      continue;
    }
    table_[slot] = static_cast<uint32_t>(i);
    ++table_used_;
    if (table_used_ * 2 > table_.size()) {
      indexed_ = i + 1;
      GrowTable(size_);
    }
  }
  indexed_ = recs_.size();
}

bool VioSet::AddTuple(int ngd_index, const NodeId* nodes, size_t len) {
  assert(AllResident() &&
         "checked ops see only the resident tail of a spilled VioSet");
  EnsureIndex();
  if (table_used_ * 2 >= table_.size()) GrowTable(size_ + 1);
  const size_t slot =
      ProbeSlot(static_cast<int32_t>(ngd_index), nodes,
                static_cast<uint32_t>(len));
  if (table_[slot] != kEmptySlot) {
    Rec& r = recs_[table_[slot]];
    if (!r.dead) return false;
    // Re-adding a tuple removed earlier revives its record in place.
    r.dead = 0;
    ++size_;
    return true;
  }
  AppendUnchecked(ngd_index, nodes, len);
  table_[slot] = static_cast<uint32_t>(recs_.size() - 1);
  ++table_used_;
  indexed_ = recs_.size();
  return true;
}

void VioSet::AppendUnchecked(int ngd_index, const NodeId* nodes, size_t len) {
  Rec r;
  r.ngd_index = static_cast<int32_t>(ngd_index);
  r.len = static_cast<uint32_t>(len);
  if (len <= kInlineNodes) {
    for (size_t k = 0; k < len; ++k) r.inl[k] = nodes[k];
  } else {
    r.offset = static_cast<uint32_t>(arena_.size());
    arena_.insert(arena_.end(), nodes, nodes + len);
  }
  recs_.push_back(r);
  ++size_;
  CheckSpill();
}

void VioSet::AppendBlockUnchecked(int ngd_index, size_t tuple_len,
                                  const NodeId* flat, size_t count) {
  // One capacity check per block — but never a bare reserve(size + count):
  // an exact-fit reserve on every flushed block would defeat geometric
  // growth and turn a long emission run quadratic (the default workload
  // emits 669k violations in 256-tuple blocks).
  if (recs_.size() + count > recs_.capacity()) {
    recs_.reserve(std::max(recs_.size() + count, 2 * recs_.capacity()));
  }
  if (tuple_len > kInlineNodes) {
    const size_t need = arena_.size() + tuple_len * count;
    if (need > arena_.capacity()) {
      arena_.reserve(std::max(need, 2 * arena_.capacity()));
    }
  }
  for (size_t i = 0; i < count; ++i) {
    AppendUnchecked(ngd_index, flat + i * tuple_len, tuple_len);
  }
}

bool VioSet::Contains(const Violation& v) const {
  assert(AllResident() &&
         "checked ops see only the resident tail of a spilled VioSet");
  if (size_ == 0) return false;
  // Logically const: building the index changes no observable state (the
  // catch-up repair only collapses duplicates a checked insert would
  // have collapsed at append time).
  const_cast<VioSet*>(this)->EnsureIndex();
  if (table_.empty()) return false;
  const size_t slot =
      ProbeSlot(static_cast<int32_t>(v.ngd_index), v.nodes.data(),
                static_cast<uint32_t>(v.nodes.size()));
  return table_[slot] != kEmptySlot && !recs_[table_[slot]].dead;
}

void VioSet::Merge(VioSet&& other) {
  assert(AllResident() && other.AllResident() &&
         "checked ops see only the resident tail of a spilled VioSet");
  if (recs_.empty() && spill_ == nullptr) {
    *this = std::move(other);
    return;
  }
  EnsureIndex();
  for (size_t i = 0; i < other.recs_.size(); ++i) {
    const Rec& r = other.recs_[i];
    if (r.dead) continue;
    AddTuple(r.ngd_index, other.NodesOf(r), r.len);
  }
}

void VioSet::MergeDisjointUnchecked(VioSet&& other) {
  if (recs_.empty() && spill_ == nullptr) {
    *this = std::move(other);
    return;
  }
  // Segment files (and a sticky flush error) transfer wholesale; the
  // cursor's k-way merge does not care which set wrote which segment.
  if (other.spill_ != nullptr) AdoptSpillFrom(std::move(other));
  const uint32_t base = static_cast<uint32_t>(arena_.size());
  arena_.insert(arena_.end(), other.arena_.begin(), other.arena_.end());
  recs_.reserve(recs_.size() + other.recs_.size());
  for (const Rec& r : other.recs_) {
    if (r.dead) continue;
    Rec copy = r;
    if (copy.len > kInlineNodes) copy.offset += base;
    recs_.push_back(copy);
  }
  size_ += other.size_;
  // Appended records sit beyond indexed_; the next indexed operation
  // catches them up in one pass (and would repair any overlap, though
  // disjointness is the caller's contract).
  CheckSpill();
}

void VioSet::Remove(const VioSet& other) {
  assert(AllResident() && other.AllResident() &&
         "checked ops see only the resident tail of a spilled VioSet");
  if (size_ == 0 || other.size_ == 0) return;
  EnsureIndex();
  for (size_t i = 0; i < other.recs_.size(); ++i) {
    const Rec& r = other.recs_[i];
    if (r.dead) continue;
    const size_t slot = ProbeSlot(r.ngd_index, other.NodesOf(r), r.len);
    if (table_[slot] == kEmptySlot) continue;
    Rec& mine = recs_[table_[slot]];
    if (mine.dead) continue;
    mine.dead = 1;
    --size_;
  }
}

void VioSet::RemapNgdIndices(const std::vector<int>& kept) {
  for (Rec& r : recs_) {
    if (r.dead) continue;
    assert(r.ngd_index >= 0 &&
           static_cast<size_t>(r.ngd_index) < kept.size());
    r.ngd_index = kept[static_cast<size_t>(r.ngd_index)];
  }
  // Record hashes changed wholesale; drop the index and rebuild lazily.
  table_.clear();
  table_used_ = 0;
  indexed_ = 0;
  // Spilled segments keep their raw indices on disk; the cursor applies
  // the (strictly increasing, hence order-preserving) map at read time.
  if (spill_ != nullptr) ComposeSpillRemap(kept);
}

std::vector<Violation> VioSet::Sorted() const {
  assert(AllResident() &&
         "Sorted() sees only the resident tail; use OpenCursor()");
  std::vector<Violation> out;
  out.reserve(size_);
  for (size_t i = 0; i < recs_.size(); ++i) {
    if (!recs_[i].dead) out.push_back(Materialize(i));
  }
  std::sort(out.begin(), out.end(),
            [](const Violation& a, const Violation& b) {
              if (a.ngd_index != b.ngd_index) {
                return a.ngd_index < b.ngd_index;
              }
              return a.nodes < b.nodes;
            });
  return out;
}

VioSet ApplyDelta(const VioSet& base, const DeltaVio& delta) {
  VioSet result;
  for (const auto& v : base.items()) {
    if (!delta.removed.Contains(v)) result.Add(v);
  }
  for (const auto& v : delta.added.items()) result.Add(v);
  return result;
}

std::string ViolationToString(const Violation& v, const NgdSet& sigma,
                              const Graph& g) {
  std::ostringstream os;
  const Ngd& ngd = sigma[v.ngd_index];
  os << ngd.name() << "{";
  const auto& nodes = ngd.pattern().nodes();
  for (size_t i = 0; i < v.nodes.size(); ++i) {
    if (i > 0) os << ", ";
    os << nodes[i].var << "->" << v.nodes[i] << ":"
       << g.NodeLabelName(v.nodes[i]);
  }
  os << "}";
  return os.str();
}

}  // namespace ngd
