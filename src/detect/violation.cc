#include "detect/violation.h"

#include <algorithm>
#include <sstream>

namespace ngd {

void VioSet::Merge(VioSet&& other) {
  if (set_.empty()) {
    set_ = std::move(other.set_);
    return;
  }
  for (auto it = other.set_.begin(); it != other.set_.end();) {
    set_.insert(std::move(other.set_.extract(it++).value()));
  }
}

void VioSet::Remove(const VioSet& other) {
  for (const auto& v : other.set_) set_.erase(v);
}

std::vector<Violation> VioSet::Sorted() const {
  std::vector<Violation> out(set_.begin(), set_.end());
  std::sort(out.begin(), out.end(),
            [](const Violation& a, const Violation& b) {
              if (a.ngd_index != b.ngd_index) {
                return a.ngd_index < b.ngd_index;
              }
              return a.nodes < b.nodes;
            });
  return out;
}

VioSet ApplyDelta(const VioSet& base, const DeltaVio& delta) {
  VioSet result;
  for (const auto& v : base.items()) {
    if (!delta.removed.Contains(v)) result.Add(v);
  }
  for (const auto& v : delta.added.items()) result.Add(v);
  return result;
}

std::string ViolationToString(const Violation& v, const NgdSet& sigma,
                              const Graph& g) {
  std::ostringstream os;
  const Ngd& ngd = sigma[v.ngd_index];
  os << ngd.name() << "{";
  const auto& nodes = ngd.pattern().nodes();
  for (size_t i = 0; i < v.nodes.size(); ++i) {
    if (i > 0) os << ", ";
    os << nodes[i].var << "->" << v.nodes[i] << ":"
       << g.NodeLabelName(v.nodes[i]);
  }
  os << "}";
  return os.str();
}

}  // namespace ngd
