// Violations and violation sets (paper §5.1).
//
// A violation of φ = Q[x̄](X → Y) in G is a match h(x̄) with Gh ̸|= φ,
// identified by the NGD index and the node tuple h(x̄) in pattern-node
// order. Vio(Σ, G) collects violations of all NGDs in Σ; incremental
// detection computes the delta (ΔVio+, ΔVio-).
//
// Storage layout: VioSet is arena-backed SoA, not a node-per-violation
// hash set. Each violation is one flat record (ngd_index, len, nodes);
// tuples of up to kInlineNodes nodes live inside the record itself, and
// longer tuples spill into one shared NodeId arena. On the violation-
// heavy regime (the default 20k-node benchmark workload emits 669k
// violations) this removes the per-match heap allocation and the
// per-match hash-set insert that used to dominate enumeration:
//   - enumerators that provably cannot emit duplicates (batch Dect per
//     rule, the canonical-pivot incremental engines, the disjoint
//     per-worker partitions of PDect/PIncDect) append records without
//     hashing at all (AppendUnchecked / VioEmitter);
//   - set-semantics operations (Add, Contains, Merge, Remove) maintain an
//     open-addressing index over the flat records, built lazily and
//     caught up in one batched pass over whatever was appended since the
//     last indexed operation (EnsureIndex);
//   - per-worker results concatenate arena-to-arena without rehashing
//     (MergeDisjointUnchecked).
// The observable surface — Add/Contains/Merge/Remove/Sorted/items and
// ApplyDelta — keeps the exact semantics of the previous
// unordered_set<Violation> layout; the randomized differential sweep in
// tests/vio_set_test.cc locks the equivalence down across all four
// engines.

#ifndef NGD_DETECT_VIOLATION_H_
#define NGD_DETECT_VIOLATION_H_

#include <cassert>
#include <cstdint>
#include <cstring>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "core/ngd.h"
#include "graph/graph.h"
#include "util/hash.h"
#include "util/status.h"

namespace ngd {

class VioCursor;
struct VioSpillState;

/// Spill-to-disk configuration for a VioSet (detect/vio_stream.{h,cc}).
/// Once enabled, resident records are sorted and flushed into checksummed
/// segment files ("<path_prefix>.seg<N>.ngdvio") whenever the resident
/// footprint approaches `budget_bytes`; VioSet::OpenCursor merges the
/// segments and the resident tail back into one globally sorted stream.
struct VioSpillOptions {
  std::string path_prefix;
  /// 64 MiB default. Budgets at or below one page still spill, floored at
  /// page-sized segments (vio_stream.cc's kMinSpillBytes).
  size_t budget_bytes = size_t{64} << 20;
};

struct Violation {
  int ngd_index = -1;
  std::vector<NodeId> nodes;  ///< h(x̄), indexed by pattern-node index

  bool operator==(const Violation& o) const {
    return ngd_index == o.ngd_index && nodes == o.nodes;
  }
};

/// FNV-1a over (ngd_index, nodes). The previous ad-hoc mix seeded with
/// ngd_index * golden-ratio degenerated for ngd_index == 0 (seed 0, so
/// single-node tuples hashed to n + const and structured node-id families
/// clustered into few buckets — exactly the shape of a violation-heavy
/// sweep where one rule emits most tuples). FNV-1a mixes every byte
/// through the prime, so sequential/strided node ids spread regardless of
/// the rule index. VioSet's internal index hashes records with the same
/// function, so the two views of a tuple always agree.
struct ViolationHash {
  size_t operator()(const Violation& v) const {
    uint64_t h = Fnv1a64(&v.ngd_index, sizeof(v.ngd_index));
    h = Fnv1a64(v.nodes.data(), v.nodes.size() * sizeof(NodeId), h);
    return static_cast<size_t>(h);
  }
};

class VioSet {
 public:
  // Out-of-line: spill_ is a pimpl (vio_stream.cc owns the definition),
  // so every special member — even the default ctor, whose unwind path
  // destroys spill_ — needs the complete type.
  VioSet();
  ~VioSet();
  VioSet(VioSet&& other) noexcept;
  VioSet& operator=(VioSet&& other) noexcept;
  /// Copying is allowed only while nothing has spilled (segment files are
  /// single-owner); asserted in debug builds.
  VioSet(const VioSet& other);
  VioSet& operator=(const VioSet& other);

  /// Checked insert (set semantics). Returns true if newly added.
  bool Add(const Violation& v) {
    return AddTuple(v.ngd_index, v.nodes.data(), v.nodes.size());
  }
  bool AddTuple(int ngd_index, const NodeId* nodes, size_t len);

  /// Append WITHOUT a duplicate check — the emission hot path. The caller
  /// must guarantee the tuple is not already present (the enumerator
  /// proofs: batch Dect emits each binding once per rule; the
  /// canonical-pivot discipline makes IncDect/PIncDect exactly-once per
  /// match; PDect's owner-computes seeding plus disjoint slice splits
  /// never revisit a match). No hashing, no allocation beyond amortized
  /// arena growth. A duplicate appended in breach of the contract is
  /// repaired (dropped) by the next indexed operation, but may be visible
  /// to Sorted()/items() before that.
  void AppendUnchecked(int ngd_index, const NodeId* nodes, size_t len);

  /// AppendUnchecked for `count` same-length tuples stored back-to-back
  /// in `flat` (VioEmitter's block flush): one capacity check per block.
  void AppendBlockUnchecked(int ngd_index, size_t tuple_len,
                            const NodeId* flat, size_t count);

  bool Contains(const Violation& v) const;
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Set union (duplicates across the two sets collapse).
  void Merge(VioSet&& other);

  /// Arena concatenation for provably disjoint sets (per-worker results
  /// of the parallel engines): no hashing, no per-record probe. Falls
  /// back to nothing clever — records and arena are appended, spilled
  /// offsets rebased.
  void MergeDisjointUnchecked(VioSet&& other);

  /// Erases every violation of `other` present in this set.
  void Remove(const VioSet& other);

  /// In-place rule-index remap through a strictly increasing table
  /// (Σ-optimizer: minimized index -> original index). Injective, so the
  /// set property is preserved; the hash index is invalidated and
  /// rebuilt lazily.
  void RemapNgdIndices(const std::vector<int>& kept);

  /// Deterministic ordering (for tests and diffing).
  std::vector<Violation> Sorted() const;

  // ---- Iteration -----------------------------------------------------
  // items() yields Violation BY VALUE (records materialize on demand);
  // `for (const Violation& v : set.items())` binds each temporary per
  // iteration, and `items().begin()->nodes[i]` goes through ArrowProxy.

  struct ArrowProxy {
    Violation v;
    const Violation* operator->() const { return &v; }
  };

  class const_iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = Violation;
    using difference_type = std::ptrdiff_t;
    using pointer = ArrowProxy;
    using reference = Violation;

    const_iterator() = default;
    const_iterator(const VioSet* set, size_t i) : set_(set), i_(i) {
      if (set_ != nullptr) i_ = set_->NextLive(i_);
    }
    Violation operator*() const { return set_->Materialize(i_); }
    ArrowProxy operator->() const { return ArrowProxy{set_->Materialize(i_)}; }
    const_iterator& operator++() {
      i_ = set_->NextLive(i_ + 1);
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator tmp = *this;
      ++*this;
      return tmp;
    }
    // Both fields: iterators over *different* sets must never compare
    // equal just because their indices coincide.
    bool operator==(const const_iterator& o) const {
      return set_ == o.set_ && i_ == o.i_;
    }
    bool operator!=(const const_iterator& o) const { return !(*this == o); }

   private:
    const VioSet* set_ = nullptr;
    size_t i_ = 0;
  };

  struct ItemsView {
    const VioSet* set;
    const_iterator begin() const { return const_iterator(set, 0); }
    const_iterator end() const {
      return const_iterator(set, set->recs_.size());
    }
  };

  ItemsView items() const { return ItemsView{this}; }

  /// Reserve capacity for `count` more records whose tuples spill
  /// `spill_nodes` arena entries in total (0 when all inline).
  void Reserve(size_t count, size_t spill_nodes = 0) {
    recs_.reserve(recs_.size() + count);
    if (spill_nodes > 0) arena_.reserve(arena_.size() + spill_nodes);
  }

  // ---- Spill-to-disk backend (detect/vio_stream.{h,cc}) --------------
  //
  // A spill-enabled set trades the resident guarantee for a byte budget:
  // the unchecked append paths (the only emission paths the engines use)
  // flush sorted, checksummed segments through WriteFileAtomic once the
  // resident footprint nears budget_bytes, and OpenCursor streams the
  // union back in Sorted() order with bounded resident memory. Once a
  // record has spilled, the checked/set-semantics surface (Add, Contains,
  // Merge, Remove) and Sorted()/items() see only the resident tail and
  // are disallowed (asserted in debug builds); size() stays total.
  // A failed flush is sticky in spill_status() and degrades the set to
  // resident-over-budget — no appended record is ever silently lost.

  void EnableSpill(const VioSpillOptions& opts);
  bool spill_enabled() const { return spill_ != nullptr; }
  /// Records flushed to segment files so far (0 until the budget trips).
  size_t spilled_records() const;
  size_t num_spill_segments() const;
  /// High-water mark of resident_bytes() observed by the spill checks.
  size_t peak_resident_bytes() const;
  /// First flush error, sticky (OK while everything has worked).
  [[nodiscard]] Status spill_status() const;
  /// Forces the resident tail into a final segment (e.g. before handing
  /// the segment files to another process). Not required for OpenCursor.
  [[nodiscard]] Status FlushSpill();

  /// Bytes held by the resident record/arena/index storage.
  size_t resident_bytes() const {
    return recs_.size() * sizeof(Rec) + arena_.size() * sizeof(NodeId) +
           table_.size() * sizeof(uint32_t);
  }

  /// Opens a pull cursor over the full set — spilled segments and the
  /// resident tail — in exactly Sorted() order (the stable paging order:
  /// ngd_index, then nodes lexicographically). `start_offset` resumes a
  /// prior stream at that record index (linear skip). The set must
  /// outlive the cursor and must not be mutated while it is open. Fails
  /// with kCorruption when a segment file fails its checksum.
  [[nodiscard]] StatusOr<VioCursor> OpenCursor(uint64_t start_offset = 0) const;

 private:
  friend struct ItemsView;
  friend class const_iterator;
  friend struct VioCursorImpl;

  /// Tuples up to this length are stored inside the record; longer ones
  /// spill into arena_. sizeof(Rec) stays at 24 bytes either way.
  static constexpr uint32_t kInlineNodes = 4;
  static constexpr uint32_t kEmptySlot = UINT32_MAX;

  struct Rec {
    int32_t ngd_index = -1;
    uint32_t len : 31;
    uint32_t dead : 1;
    union {
      uint32_t offset;               // arena offset when len > kInlineNodes
      NodeId inl[kInlineNodes];      // the tuple itself otherwise
    };
    Rec() : len(0), dead(0) { offset = 0; }
  };

  const NodeId* NodesOf(const Rec& r) const {
    return r.len <= kInlineNodes ? r.inl : arena_.data() + r.offset;
  }

  Violation Materialize(size_t i) const {
    const Rec& r = recs_[i];
    const NodeId* p = NodesOf(r);
    return Violation{r.ngd_index, std::vector<NodeId>(p, p + r.len)};
  }

  size_t NextLive(size_t i) const {
    while (i < recs_.size() && recs_[i].dead) ++i;
    return i;
  }

  static uint64_t HashTuple(int32_t ngd_index, const NodeId* nodes,
                            uint32_t len) {
    // Identical byte stream to ViolationHash, so the public hash functor
    // and the internal index can never disagree about a tuple.
    const int as_int = static_cast<int>(ngd_index);
    uint64_t h = Fnv1a64(&as_int, sizeof(as_int));
    return Fnv1a64(nodes, static_cast<size_t>(len) * sizeof(NodeId), h);
  }

  bool RecEquals(const Rec& r, int32_t ngd_index, const NodeId* nodes,
                 uint32_t len) const {
    if (r.ngd_index != ngd_index || r.len != len) return false;
    return len == 0 ||
           std::memcmp(NodesOf(r), nodes, len * sizeof(NodeId)) == 0;
  }

  /// Probes for (ngd_index, nodes, len). Returns the table slot that
  /// either holds an equal record (live or dead) or is the empty slot
  /// where the tuple would be inserted. Requires a non-empty table and
  /// indexed_ == recs_.size().
  size_t ProbeSlot(int32_t ngd_index, const NodeId* nodes,
                   uint32_t len) const;

  /// Brings the open-addressing index up to date with every record
  /// appended since the last indexed operation, repairing (marking dead)
  /// any contract-breaching duplicate among them. Amortized: one batched
  /// pass, not a per-append probe.
  void EnsureIndex();
  void GrowTable(size_t min_live);

  /// True while the checked/whole-set surface still sees every record
  /// (nothing has been flushed to disk).
  bool AllResident() const;

  /// Spill trigger, called from the append paths. Out of line so the
  /// non-spilling hot path pays only the null check in CheckSpill().
  void MaybeSpill();
  void CheckSpill() {
    if (spill_ != nullptr) MaybeSpill();
  }

  /// Sorts the resident live records and flushes them as one segment.
  [[nodiscard]] Status SpillResidentSegment();

  /// MergeDisjointUnchecked's spill half: takes over `other`'s segment
  /// files and sticky status before the resident records are merged
  /// (`other`'s resident storage is left intact for the caller).
  void AdoptSpillFrom(VioSet&& other);

  /// Records a RemapNgdIndices map for already-written segments; the
  /// cursor applies it at read time (order-preserving: `kept` is
  /// strictly increasing).
  void ComposeSpillRemap(const std::vector<int>& kept);

  std::vector<Rec> recs_;
  std::vector<NodeId> arena_;    ///< spill storage for long tuples
  std::vector<uint32_t> table_;  ///< open addressing: record indices
  size_t table_used_ = 0;        ///< occupied table slots (live + dead recs)
  size_t indexed_ = 0;           ///< recs_[0, indexed_) are in table_
  size_t size_ = 0;              ///< live records
  std::unique_ptr<VioSpillState> spill_;  ///< null = plain resident set
};

/// ΔVio = (ΔVio+, ΔVio-): violations introduced / removed by ΔG.
struct DeltaVio {
  VioSet added;
  VioSet removed;

  bool empty() const { return added.empty() && removed.empty(); }
};

/// Vio(Σ, G ⊕ ΔG) = (Vio(Σ, G) ∪ ΔVio+) \ ΔVio-. The paper's correctness
/// criterion; used by tests to cross-check IncDect against batch Dect.
VioSet ApplyDelta(const VioSet& base, const DeltaVio& delta);

std::string ViolationToString(const Violation& v, const NgdSet& sigma,
                              const Graph& g);

/// Batched emission sink for a single rule: stages fixed-length tuples in
/// a flat buffer and flushes them into the target VioSet in blocks via
/// AppendBlockUnchecked. Used where the enumerator provably cannot emit
/// duplicates (see VioSet::AppendUnchecked); the homomorphism engine
/// writes full matches here directly when SearchConfig::emitter is set,
/// bypassing the std::function callback on the hot path.
class VioEmitter {
 public:
  /// `limit` caps emissions (0 = unlimited): Emit returns false once the
  /// cap is reached, which aborts the enumeration like a callback stop.
  VioEmitter(VioSet* out, int ngd_index, size_t tuple_len, size_t limit = 0)
      : out_(out), ngd_index_(ngd_index), tuple_len_(tuple_len),
        limit_(limit) {
    buf_.reserve(tuple_len_ * kFlushTuples);
  }
  VioEmitter(const VioEmitter&) = delete;
  VioEmitter& operator=(const VioEmitter&) = delete;
  ~VioEmitter() { Flush(); }

  /// Appends h(x̄) (must have exactly tuple_len nodes). Returns false
  /// when the emission limit is reached.
  bool Emit(const Binding& binding) {
    assert(binding.size() == tuple_len_ &&
           "VioEmitter: binding length must match the rule's tuple_len");
    buf_.insert(buf_.end(), binding.begin(), binding.end());
    if (buf_.size() >= tuple_len_ * kFlushTuples) Flush();
    ++emitted_;
    return limit_ == 0 || emitted_ < limit_;
  }

  void Flush() {
    if (buf_.empty()) return;
    out_->AppendBlockUnchecked(ngd_index_, tuple_len_, buf_.data(),
                               buf_.size() / tuple_len_);
    buf_.clear();
  }

  size_t emitted() const { return emitted_; }

 private:
  static constexpr size_t kFlushTuples = 256;

  VioSet* out_;
  int ngd_index_;
  size_t tuple_len_;
  size_t limit_;
  size_t emitted_ = 0;
  std::vector<NodeId> buf_;
};

}  // namespace ngd

#endif  // NGD_DETECT_VIOLATION_H_
