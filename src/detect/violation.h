// Violations and violation sets (paper §5.1).
//
// A violation of φ = Q[x̄](X → Y) in G is a match h(x̄) with Gh ̸|= φ,
// identified by the NGD index and the node tuple h(x̄) in pattern-node
// order. Vio(Σ, G) collects violations of all NGDs in Σ; incremental
// detection computes the delta (ΔVio+, ΔVio-).

#ifndef NGD_DETECT_VIOLATION_H_
#define NGD_DETECT_VIOLATION_H_

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/ngd.h"
#include "graph/graph.h"

namespace ngd {

struct Violation {
  int ngd_index = -1;
  std::vector<NodeId> nodes;  ///< h(x̄), indexed by pattern-node index

  bool operator==(const Violation& o) const {
    return ngd_index == o.ngd_index && nodes == o.nodes;
  }
};

struct ViolationHash {
  size_t operator()(const Violation& v) const {
    uint64_t h = static_cast<uint64_t>(v.ngd_index) * 0x9e3779b97f4a7c15ULL;
    for (NodeId n : v.nodes) {
      h ^= n + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return static_cast<size_t>(h);
  }
};

class VioSet {
 public:
  VioSet() = default;

  /// Returns true if newly added.
  bool Add(Violation v) { return set_.insert(std::move(v)).second; }
  bool Contains(const Violation& v) const { return set_.count(v) > 0; }
  size_t size() const { return set_.size(); }
  bool empty() const { return set_.empty(); }

  void Merge(VioSet&& other);
  void Remove(const VioSet& other);

  const std::unordered_set<Violation, ViolationHash>& items() const {
    return set_;
  }

  /// Deterministic ordering (for tests and diffing).
  std::vector<Violation> Sorted() const;

 private:
  std::unordered_set<Violation, ViolationHash> set_;
};

/// ΔVio = (ΔVio+, ΔVio-): violations introduced / removed by ΔG.
struct DeltaVio {
  VioSet added;
  VioSet removed;

  bool empty() const { return added.empty() && removed.empty(); }
};

/// Vio(Σ, G ⊕ ΔG) = (Vio(Σ, G) ∪ ΔVio+) \ ΔVio-. The paper's correctness
/// criterion; used by tests to cross-check IncDect against batch Dect.
VioSet ApplyDelta(const VioSet& base, const DeltaVio& delta);

std::string ViolationToString(const Violation& v, const NgdSet& sigma,
                              const Graph& g);

}  // namespace ngd

#endif  // NGD_DETECT_VIOLATION_H_
