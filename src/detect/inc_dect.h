// IncDect: sequential localizable incremental error detection (paper §6.2).
//
// Given G with a pending batch update ΔG (the edge-state overlay), IncDect
// computes ΔVio(Σ, G, ΔG) = (ΔVio+, ΔVio-) by update-driven evaluation:
//
//   1. Every effective unit update (v,v') that can match some pattern edge
//      (u,u') of an NGD in Σ forms an UPDATE PIVOT hup(u,u') = (v,v').
//   2. IncMatch expands each pivot recursively (IncSubMatch), drawing
//      candidates only from neighbors of already-matched nodes — never
//      from a global scan. All work is confined to the d_Σ-neighborhood
//      of ΔG, which makes the algorithm localizable (§6.1).
//   3. View discipline: pivots from insertions search G ⊕ ΔG (kNew, which
//      excludes deleted edges); pivots from deletions search G (kOld,
//      which excludes inserted edges). Insertions only add violations,
//      deletions only remove them.
//   4. Duplicate suppression ("marks the combination of update pivots"):
//      a match found from pivot (update j, pattern edge p) is emitted only
//      if (j, p) is the lexicographically minimal update incidence of the
//      match; expansion additionally refuses update edges with index < j,
//      so each violation is enumerated exactly once across all pivots.
//
// The pieces (UpdateIndex, pivot tasks, filters, canonicality) are exposed
// so PIncDect can distribute the same work units across processors.

#ifndef NGD_DETECT_INC_DECT_H_
#define NGD_DETECT_INC_DECT_H_

#include <optional>
#include <unordered_map>
#include <vector>

#include "detect/violation.h"
#include "graph/updates.h"
#include "match/homomorphism.h"

namespace ngd {

/// An update that actually changed the graph (cancelled-out records like
/// delete+reinsert of one edge are filtered against the overlay state).
struct EffectiveUpdate {
  UpdateKind kind;
  EdgeKey edge;
};

/// Index over the effective updates of a batch; positions define the pivot
/// order used for duplicate suppression.
class UpdateIndex {
 public:
  UpdateIndex(const Graph& g, const UpdateBatch& batch);

  const std::vector<EffectiveUpdate>& updates() const { return updates_; }

  /// Position of an inserted/deleted edge in the pivot order.
  std::optional<int> IndexOf(UpdateKind kind, const EdgeKey& key) const;

 private:
  std::vector<EffectiveUpdate> updates_;
  std::unordered_map<EdgeKey, int, EdgeKeyHash> insert_index_;
  std::unordered_map<EdgeKey, int, EdgeKeyHash> delete_index_;
};

/// Rejects update edges with pivot order below the current pivot, so each
/// match is reached from its minimal update edge only.
class PivotEdgeFilter : public EdgeFilter {
 public:
  PivotEdgeFilter(const UpdateIndex* index, UpdateKind kind, int pivot_index)
      : index_(index), kind_(kind), pivot_index_(pivot_index) {}

  bool Admit(int /*pattern_edge*/, NodeId src, NodeId dst,
             LabelId label) const override {
    auto i = index_->IndexOf(kind_, EdgeKey{src, dst, label});
    return !i.has_value() || *i >= pivot_index_;
  }

 private:
  const UpdateIndex* index_;
  UpdateKind kind_;
  int pivot_index_;
};

/// One unit of update-driven work: expand pivot hup(u,u') = (v,v') where
/// pattern edge `pattern_edge` of NGD `ngd_index` matches effective update
/// `update_index`.
struct PivotTask {
  int ngd_index;
  int pattern_edge;
  int update_index;
};

/// All pivot tasks for (Σ, ΔG): label-compatible (update, pattern-edge)
/// pairs.
std::vector<PivotTask> EnumeratePivotTasks(const Graph& g,
                                           const NgdSet& sigma,
                                           const UpdateIndex& index);

/// True iff (update_index, pattern_edge) is the minimal update incidence
/// of the full match `binding` — the emission-side duplicate check.
bool IsCanonicalPivot(const Graph& g, const Pattern& pattern,
                      const Binding& binding, const UpdateIndex& index,
                      UpdateKind kind, int update_index, int pattern_edge);

/// Incremental detection requires every pattern to be connected with at
/// least one edge (edge updates cannot pivot edge-less patterns; the
/// paper's §6 preliminaries make the same connectivity assumption).
Status ValidateForIncremental(const NgdSet& sigma);

/// Computes ΔVio(Σ, G, ΔG). `g` must carry ΔG as its pending overlay
/// (apply via ApplyUpdateBatch before calling; Commit afterwards).
/// Requires every pattern in Σ to be connected with ≥ 1 edge.
StatusOr<DeltaVio> IncDect(const Graph& g, const NgdSet& sigma,
                           const UpdateBatch& batch);

}  // namespace ngd

#endif  // NGD_DETECT_INC_DECT_H_
