// IncDect: sequential localizable incremental error detection (paper §6.2).
//
// Given G with a pending batch update ΔG (the edge-state overlay), IncDect
// computes ΔVio(Σ, G, ΔG) = (ΔVio+, ΔVio-) by update-driven evaluation:
//
//   1. Every effective unit update (v,v') that can match some pattern edge
//      (u,u') of an NGD in Σ forms an UPDATE PIVOT hup(u,u') = (v,v').
//   2. IncMatch expands each pivot recursively (IncSubMatch), drawing
//      candidates only from neighbors of already-matched nodes — never
//      from a global scan. All work is confined to the d_Σ-neighborhood
//      of ΔG, which makes the algorithm localizable (§6.1).
//   3. View discipline: pivots from insertions search G ⊕ ΔG (kNew, which
//      excludes deleted edges); pivots from deletions search G (kOld,
//      which excludes inserted edges). Insertions only add violations,
//      deletions only remove them.
//   4. Duplicate suppression ("marks the combination of update pivots"):
//      a match found from pivot (update j, pattern edge p) is emitted only
//      if (j, p) is the lexicographically minimal update incidence of the
//      match; expansion additionally refuses update edges with index < j,
//      so each violation is enumerated exactly once across all pivots.
//
// The pieces (UpdateIndex, pivot tasks, filters, canonicality) are exposed
// so PIncDect can distribute the same work units across processors.

#ifndef NGD_DETECT_INC_DECT_H_
#define NGD_DETECT_INC_DECT_H_

#include <optional>
#include <unordered_map>
#include <vector>

#include "detect/dect.h"
#include "detect/violation.h"
#include "graph/delta_view.h"
#include "graph/neighborhood.h"
#include "graph/updates.h"
#include "match/homomorphism.h"

namespace ngd {

/// An update that actually changed the graph (cancelled-out records like
/// delete+reinsert of one edge are filtered against the overlay state).
struct EffectiveUpdate {
  UpdateKind kind;
  EdgeKey edge;
};

/// Index over the effective updates of a batch; positions define the pivot
/// order used for duplicate suppression.
class UpdateIndex {
 public:
  UpdateIndex(const Graph& g, const UpdateBatch& batch);

  const std::vector<EffectiveUpdate>& updates() const { return updates_; }

  /// Position of an inserted/deleted edge in the pivot order.
  std::optional<int> IndexOf(UpdateKind kind, const EdgeKey& key) const;

 private:
  std::vector<EffectiveUpdate> updates_;
  std::unordered_map<EdgeKey, int, EdgeKeyHash> insert_index_;
  std::unordered_map<EdgeKey, int, EdgeKeyHash> delete_index_;
};

/// Rejects update edges with pivot order below the current pivot, so each
/// match is reached from its minimal update edge only.
class PivotEdgeFilter : public EdgeFilter {
 public:
  PivotEdgeFilter(const UpdateIndex* index, UpdateKind kind, int pivot_index)
      : index_(index), kind_(kind), pivot_index_(pivot_index) {}

  bool Admit(int /*pattern_edge*/, NodeId src, NodeId dst,
             LabelId label) const override {
    auto i = index_->IndexOf(kind_, EdgeKey{src, dst, label});
    return !i.has_value() || *i >= pivot_index_;
  }

 private:
  const UpdateIndex* index_;
  UpdateKind kind_;
  int pivot_index_;
};

/// PivotEdgeFilter for the DeltaView backend. Duplicate suppression only
/// has to rank *update* edges, and the DeltaView knows structurally which
/// edges those are: anything outside its delta spans is a base edge and
/// is admitted with one CSR span check — no hash probe. Only genuine
/// delta entries (a |ΔG|-sized minority of everything a search touches)
/// fall through to the UpdateIndex lookup.
class DeltaViewPivotEdgeFilter : public EdgeFilter {
 public:
  DeltaViewPivotEdgeFilter(const DeltaView* dv, const UpdateIndex* index,
                           UpdateKind kind, int pivot_index)
      : dv_(dv), index_(index), kind_(kind), pivot_index_(pivot_index) {}

  bool Admit(int /*pattern_edge*/, NodeId src, NodeId dst,
             LabelId label) const override {
    if (!dv_->IsDeltaEdge(kind_ == UpdateKind::kInsert, src, dst, label)) {
      return true;
    }
    auto i = index_->IndexOf(kind_, EdgeKey{src, dst, label});
    return !i.has_value() || *i >= pivot_index_;
  }

 private:
  const DeltaView* dv_;
  const UpdateIndex* index_;
  UpdateKind kind_;
  int pivot_index_;
};

/// One unit of update-driven work: expand pivot hup(u,u') = (v,v') where
/// pattern edge `pattern_edge` of NGD `ngd_index` matches effective update
/// `update_index`.
struct PivotTask {
  int ngd_index;
  int pattern_edge;
  int update_index;
};

/// All pivot tasks for (Σ, ΔG): label-compatible (update, pattern-edge)
/// pairs.
std::vector<PivotTask> EnumeratePivotTasks(const Graph& g,
                                           const NgdSet& sigma,
                                           const UpdateIndex& index);

/// True iff (update_index, pattern_edge) is the minimal update incidence
/// of the full match `binding` — the emission-side duplicate check.
bool IsCanonicalPivot(const Graph& g, const Pattern& pattern,
                      const Binding& binding, const UpdateIndex& index,
                      UpdateKind kind, int update_index, int pattern_edge);

/// DeltaView-backed canonicality: ranking only ever concerns *update*
/// edges, so pattern edges whose bound graph edge is not a delta entry
/// are skipped with one CSR span check; only the (typically one) real
/// update edge of the match pays an UpdateIndex hash lookup. This is the
/// emission hot path — every violating match of every pivot runs it —
/// and the structural skip is a key part of the DeltaView speedup.
bool IsCanonicalPivot(const DeltaView& dv, const Pattern& pattern,
                      const Binding& binding, const UpdateIndex& index,
                      UpdateKind kind, int update_index, int pattern_edge);

/// Incremental detection requires every pattern to be connected with at
/// least one edge (edge updates cannot pivot edge-less patterns; the
/// paper's §6 preliminaries make the same connectivity assumption).
Status ValidateForIncremental(const NgdSet& sigma);

/// Affected-area prefilter (the localizability of paper §6.1 made
/// actionable before any pivot spawns): per rule Q, the d_Q-ball around
/// ΔG's endpoints — over the union of both views, so it bounds ΔVio+ and
/// ΔVio- searches alike — intersected with the label→nodes candidate
/// arrays. A rule whose ball lacks a candidate for some non-wildcard
/// pattern-node label cannot complete any match, so all its pivot tasks
/// are skipped; rules that survive get their ball as the search's node
/// scope. Balls are shared across rules of equal diameter.
///
/// The prefilter must never cost more than the localized searches it
/// guards, so ball extraction is budgeted: once a ball's BFS has visited
/// max(256, |V|/8) nodes it is abandoned as "unbounded" — ΔG saturates
/// the graph at that diameter, nothing would be pruned anyway — and the
/// affected rules run unscoped, exactly as with the prefilter off. Large
/// batches therefore pay O(budget) for the prefilter, small batches on
/// large graphs (the production regime) get real pruning.
class AffectedArea {
 public:
  AffectedArea(const Graph& g, const NgdSet& sigma, const UpdateIndex& index);

  /// d_Q-ball for rule `ngd_index` as a search scope, or nullptr when the
  /// ball exceeded the budget (valid while this object lives).
  const NodeSet* ScopeOf(int ngd_index) const {
    const int b = ball_of_rule_[ngd_index];
    return bounded_[b] ? &balls_[b] : nullptr;
  }
  /// False when some non-wildcard pattern-node label of the rule has no
  /// candidate inside its (bounded) ball.
  bool RuleCanMatch(int ngd_index) const { return rule_can_match_[ngd_index]; }

 private:
  std::vector<NodeSet> balls_;   // one per distinct pattern diameter
  std::vector<bool> bounded_;    // per ball: finished within budget
  std::vector<int> ball_of_rule_;
  std::vector<bool> rule_can_match_;
};

struct IncDectOptions {
  /// Mirrors DectOptions::snapshot_mode for the incremental path:
  ///   kNever  — match the live overlay graph (the pre-DeltaView engine,
  ///             kept as the equivalence oracle and benchmark baseline);
  ///   kAlways — match a DeltaView (base CSR snapshot ⊕ ΔG);
  ///   kAuto   — use the DeltaView when `base_snapshot` is provided (the
  ///             build is already paid), else when the cost model
  ///             (WantDeltaView) expects the pivot searches to amortize
  ///             an owned base-snapshot build.
  SnapshotMode snapshot_mode = SnapshotMode::kAuto;
  /// Optional pre-built snapshot of the base graph G — GraphView::kOld of
  /// `g`, or a snapshot taken before the batch was applied. Production
  /// keeps one per commit epoch and reuses it across batches, so the
  /// incremental path never rebuilds CSR state per call.
  const GraphSnapshot* base_snapshot = nullptr;
  /// Enable the AffectedArea prefilter + per-rule search scope. Off
  /// reproduces the pre-prefilter engine exactly (the oracle config).
  bool affected_area_prefilter = true;
  /// Σ-optimizer (reason/sigma_optimizer.h): kAlways/kAuto run the pivot
  /// machinery on the implication-minimized rule set — dropped rules spawn
  /// no pivot tasks at all — and remap ΔVio indices back to Σ. Per-rule
  /// deltas are independent, so kept-rule deltas are preserved exactly.
  /// kNever (default) is the oracle.
  MinimizeMode minimize_sigma = MinimizeMode::kNever;
  SigmaOptimizerOptions sigma_optimizer = {};
  /// Graceful degradation (see DectOptions): cancelled/deadlined runs
  /// return the ΔVio prefix found so far; `run_info` reports `truncated`
  /// and which rules' deltas are complete (a rule is complete when every
  /// one of its pivot tasks finished).
  CancelToken* cancel = nullptr;
  Deadline deadline = {};
  DetectRunInfo* run_info = nullptr;
  /// Streaming results: ΔVio+ spills under "<path_prefix>.add", ΔVio-
  /// under "<path_prefix>.rem" (see DectOptions::spill and
  /// detect/vio_stream.h).
  const VioSpillOptions* spill = nullptr;
};

/// The kAuto cost model: true when the depth-1 frontier the pivot tasks
/// would stream (a lower bound on the live engine's scan volume) already
/// exceeds a small multiple of what the O(|V| + |E|) base-snapshot build
/// streams.
bool WantDeltaView(const Graph& g, const UpdateIndex& index,
                   const std::vector<PivotTask>& tasks);

/// Resolves IncDectOptions to a concrete use-the-DeltaView decision.
/// Shared by IncDect and PIncDect so both engines make the same choice.
bool ResolveDeltaView(const Graph& g, const UpdateIndex& index,
                      const std::vector<PivotTask>& tasks, SnapshotMode mode,
                      bool base_snapshot_provided);

/// Computes ΔVio(Σ, G, ΔG). `g` must carry ΔG as its pending overlay
/// (apply via ApplyUpdateBatch before calling; Commit afterwards).
/// Requires every pattern in Σ to be connected with ≥ 1 edge.
StatusOr<DeltaVio> IncDect(const Graph& g, const NgdSet& sigma,
                           const UpdateBatch& batch,
                           const IncDectOptions& opts = {});

}  // namespace ngd

#endif  // NGD_DETECT_INC_DECT_H_
