// Streaming results: the pull side of the violation subsystem.
//
// PR 8 made the violation *store* cheap; this layer makes storing
// optional. A spill-enabled VioSet (detect/violation.h) flushes sorted,
// checksummed segment files once its resident footprint nears a byte
// budget — the segment codec follows the snapshot_io idiom (magic +
// version + checksummed payload) and every segment is written through
// WriteFileAtomic under the "vioseg_write" failpoint site, so a killed
// flush never leaves a torn segment and never loses a record (a failed
// flush keeps the records resident and the error sticky).
//
// VioCursor is the read side: a k-way merge over the sorted segments
// plus the sorted resident tail, streaming the full result in exactly
// Sorted() order — the stable paging order — one record at a time with
// bounded resident memory (one buffered block per segment). Cursors are
// resumable: OpenCursor(offset) continues a prior stream, and
// position() is the offset to resume from.
//
// VioSink packages the pair for result serving (ROADMAP item 1's ngdd):
// engines emit into sink.set() (wired via the engines' spill options),
// clients page out of ReadPage/OpenCursor. The future daemon hangs a
// socket off this surface unchanged.

#ifndef NGD_DETECT_VIO_STREAM_H_
#define NGD_DETECT_VIO_STREAM_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "detect/violation.h"
#include "util/status.h"

namespace ngd {

struct VioCursorImpl;

/// Pull cursor over one VioSet's full result (spilled segments + the
/// resident tail) in Sorted() order. Obtained from VioSet::OpenCursor;
/// the source set must outlive the cursor and stay unmodified while the
/// cursor is open.
class VioCursor {
 public:
  VioCursor(VioCursor&&) noexcept;
  VioCursor& operator=(VioCursor&&) noexcept;
  ~VioCursor();

  /// Streams the next violation into *out (reusing its nodes capacity).
  /// Returns false at end of stream or on error — check status().
  bool Next(Violation* out);

  /// OK, or the first stream error (kCorruption on a checksum mismatch).
  const Status& status() const;

  /// Absolute record offset of the next record — pass this back to
  /// OpenCursor to resume the stream later.
  uint64_t position() const;

  /// Total records in the stream (== the set's size()).
  uint64_t total() const;

 private:
  friend class VioSet;
  explicit VioCursor(std::unique_ptr<VioCursorImpl> impl);

  std::unique_ptr<VioCursorImpl> impl_;
};

/// Owning streaming result store: a spill-enabled VioSet plus the paging
/// surface. Engines emit into set() (pass `&sink.options()`-style spill
/// options through the engine's options, or append directly); clients
/// drain with ReadPage or a raw cursor.
class VioSink {
 public:
  explicit VioSink(VioSpillOptions opts);

  VioSet* set() { return &set_; }
  const VioSet& set() const { return set_; }

  /// Flushes the resident tail into a final segment and reports the
  /// sticky spill status. Optional: cursors do not require it.
  [[nodiscard]] Status Finish();

  /// See VioSet::OpenCursor.
  [[nodiscard]] StatusOr<VioCursor> OpenCursor(uint64_t offset = 0) const;

  /// Appends up to `max_records` violations starting at record `offset`
  /// to *out. Returns the offset to resume from (== total when the
  /// stream is drained).
  [[nodiscard]] StatusOr<uint64_t> ReadPage(uint64_t offset, size_t max_records,
                              std::vector<Violation>* out) const;

 private:
  VioSet set_;
};

}  // namespace ngd

#endif  // NGD_DETECT_VIO_STREAM_H_
