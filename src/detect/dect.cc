#include "detect/dect.h"

namespace ngd {

VioSet Dect(const Graph& g, const NgdSet& sigma, const DectOptions& opts) {
  VioSet vio;
  for (size_t f = 0; f < sigma.size(); ++f) {
    const Ngd& ngd = sigma[f];
    SearchConfig cfg;
    cfg.graph = &g;
    cfg.pattern = &ngd.pattern();
    cfg.x = &ngd.X();
    cfg.y = &ngd.Y();
    cfg.view = opts.view;
    cfg.find_violations = true;
    size_t found = 0;
    RunBatchSearch(cfg, [&](const Binding& binding) {
      vio.Add(Violation{static_cast<int>(f), binding});
      ++found;
      return opts.max_violations_per_ngd == 0 ||
             found < opts.max_violations_per_ngd;
    });
  }
  return vio;
}

std::optional<Violation> FindAnyViolation(const Graph& g, const NgdSet& sigma,
                                          GraphView view) {
  for (size_t f = 0; f < sigma.size(); ++f) {
    const Ngd& ngd = sigma[f];
    SearchConfig cfg;
    cfg.graph = &g;
    cfg.pattern = &ngd.pattern();
    cfg.x = &ngd.X();
    cfg.y = &ngd.Y();
    cfg.view = view;
    cfg.find_violations = true;
    std::optional<Violation> witness;
    RunBatchSearch(cfg, [&](const Binding& binding) {
      witness = Violation{static_cast<int>(f), binding};
      return false;  // stop at first violation
    });
    if (witness.has_value()) return witness;
  }
  return std::nullopt;
}

}  // namespace ngd
