#include "detect/dect.h"

#include <optional>

namespace ngd {

namespace {

/// Runs `callback` over the violations of every rule in Σ against one
/// materialized search backend. The start node and MatchPlan are hoisted
/// out of the candidate loop: one plan per rule per detection call,
/// shared across all of that rule's seed candidates (and, via the
/// snapshot, across all rules of the call). A callback returning false
/// ends that rule's search; it aborts the remaining rules too only when
/// `stop_sweep_on_false` is set (the first-witness early exit).
///
/// `cancel` (optional) is polled between rules and inside the expansion
/// loops; a trip marks the interrupted rule and every rule after it
/// incomplete in `info` and sets info->truncated. `info` must be sized
/// to sigma already (StartFull).
template <typename PerViolation>
void SweepRules(const Graph& g, const GraphSnapshot* snap,
                const NgdSet& sigma, GraphView view,
                bool stop_sweep_on_false, CancelCheck* cancel,
                DetectRunInfo* info, const PerViolation& callback) {
  auto mark_truncated_from = [&](size_t f) {
    info->truncated = true;
    for (size_t r = f; r < sigma.size(); ++r) info->rule_completed[r] = 0;
  };
  for (size_t f = 0; f < sigma.size(); ++f) {
    if (cancel != nullptr && cancel->ShouldStop()) {
      mark_truncated_from(f);
      return;
    }
    const Ngd& ngd = sigma[f];
    SearchConfig cfg;
    cfg.graph = &g;
    cfg.snapshot = snap;
    cfg.pattern = &ngd.pattern();
    cfg.x = &ngd.X();
    cfg.y = &ngd.Y();
    cfg.view = view;
    cfg.find_violations = true;
    cfg.cancel = cancel;
    const int start = ChooseStartNode(ngd.pattern(), cfg.MakeAccessor());
    const MatchPlan plan =
        BuildMatchPlan(ngd.pattern(), {start}, &ngd.X(), &ngd.Y());
    const bool completed = RunBatchSearchWithPlan(
        cfg, start, plan, [&](const Binding& binding) {
          return callback(static_cast<int>(f), binding);
        });
    if (cancel != nullptr && cancel->Stopped()) {
      // Cancel/deadline stop, not a callback stop: rule f is incomplete.
      mark_truncated_from(f);
      return;
    }
    if (!completed && stop_sweep_on_false) return;
  }
}

}  // namespace

void RemapRunInfo(const DetectRunInfo& inner, const std::vector<int>& kept,
                  size_t original_rules, DetectRunInfo* out) {
  out->truncated = inner.truncated;
  out->rule_completed.assign(original_rules, inner.truncated ? 0 : 1);
  for (size_t i = 0; i < kept.size(); ++i) {
    out->rule_completed[static_cast<size_t>(kept[i])] =
        i < inner.rule_completed.size() ? inner.rule_completed[i] : 0;
  }
}

bool WantSnapshot(const Graph& g, const NgdSet& sigma) {
  if (g.NumEdges(GraphView::kNew) + g.NumEdges(GraphView::kOld) == 0) {
    return false;
  }
  // Σ_f |C(start_f)| approximates how many seed expansions the sweep
  // performs; each streams an adjacency of average length 2|E|/|V|, while
  // the snapshot build streams the adjacency a constant number of times
  // with a sort-like constant. Seed volume ≥ 8|V| ⇒ the live engine
  // would touch well over an order of magnitude more entries than the
  // build, so the snapshot amortizes within this call.
  const GraphAccessor acc(g, GraphView::kNew);
  size_t seed_candidates = 0;
  const size_t threshold = 8 * g.NumNodes();
  for (size_t f = 0; f < sigma.size(); ++f) {
    const Pattern& pattern = sigma[f].pattern();
    seed_candidates += acc.CandidateCount(
        pattern.node(ChooseStartNode(pattern, acc)).label);
    if (seed_candidates >= threshold) return true;
  }
  return false;
}

bool ResolveSnapshot(const Graph& g, const NgdSet& sigma, SnapshotMode mode) {
  switch (mode) {
    case SnapshotMode::kAlways:
      return true;
    case SnapshotMode::kNever:
      return false;
    case SnapshotMode::kAuto:
      break;
  }
  return WantSnapshot(g, sigma);
}

VioSet Dect(const Graph& g, const NgdSet& sigma, const DectOptions& opts) {
  // Σ-optimizer wiring: detect against the implication-minimized rule set
  // and remap rule indices back to the caller's Σ. One re-entry, with the
  // mode cleared, keeps the engine body oblivious to minimization.
  DectOptions inner;
  MinimizedSigma m;
  if (BeginMinimizedDetection(sigma, g.schema(), opts, &inner, &m)) {
    DetectRunInfo inner_info;
    inner.run_info = &inner_info;
    VioSet vio = RemapViolations(Dect(g, m.sigma, inner), m.report.kept);
    if (opts.run_info != nullptr) {
      RemapRunInfo(inner_info, m.report.kept, sigma.size(), opts.run_info);
    }
    return vio;
  }

  std::optional<GraphSnapshot> snap;
  const GraphSnapshot* use_snap = opts.snapshot;
  if (use_snap == nullptr && ResolveSnapshot(g, sigma, opts.snapshot_mode)) {
    snap.emplace(g, opts.view);
    use_snap = &*snap;
  }

  DetectRunInfo local_info;
  DetectRunInfo* info = opts.run_info != nullptr ? opts.run_info : &local_info;
  info->StartFull(sigma.size());
  CancelCheck check(opts.cancel, opts.deadline);
  CancelCheck* cancel = check.active() ? &check : nullptr;

  VioSet vio;
  int current_ngd = -1;
  size_t found = 0;
  SweepRules(g, use_snap, sigma, opts.view,
             /*stop_sweep_on_false=*/false, cancel, info,
             [&](int f, const Binding& binding) {
               if (f != current_ngd) {
                 current_ngd = f;
                 found = 0;
               }
               // The engine reuses `binding` as its backtracking buffer,
               // so the violation keeps a copy of h(x̄); VioSet::Add then
               // moves the Violation in without another copy.
               vio.Add(Violation{f, binding});
               ++found;
               return opts.max_violations_per_ngd == 0 ||
                      found < opts.max_violations_per_ngd;
             });
  return vio;
}

std::optional<Violation> FindAnyViolation(const Graph& g, const NgdSet& sigma,
                                          const DectOptions& opts) {
  // Minimization preserves emptiness (a dropped rule's violation always
  // comes with a kept rule's violation), so validation may sweep the kept
  // rules only; the witness index is remapped back to the caller's Σ.
  DectOptions inner;
  MinimizedSigma m;
  if (BeginMinimizedDetection(sigma, g.schema(), opts, &inner, &m)) {
    DetectRunInfo inner_info;
    inner.run_info = &inner_info;
    std::optional<Violation> witness = FindAnyViolation(g, m.sigma, inner);
    if (witness.has_value()) {
      witness->ngd_index =
          m.report.kept[static_cast<size_t>(witness->ngd_index)];
    }
    if (opts.run_info != nullptr) {
      RemapRunInfo(inner_info, m.report.kept, sigma.size(), opts.run_info);
    }
    return witness;
  }

  // Worst case (G |= Σ, the common validation outcome) is a full sweep,
  // so the same kAuto cost model applies as for Dect; callers who know
  // violations are common pass kNever to skip the O(|E|) build an early
  // witness would waste.
  std::optional<GraphSnapshot> snap;
  const GraphSnapshot* use_snap = opts.snapshot;
  if (use_snap == nullptr && ResolveSnapshot(g, sigma, opts.snapshot_mode)) {
    snap.emplace(g, opts.view);
    use_snap = &*snap;
  }
  DetectRunInfo local_info;
  DetectRunInfo* info = opts.run_info != nullptr ? opts.run_info : &local_info;
  info->StartFull(sigma.size());
  CancelCheck check(opts.cancel, opts.deadline);
  CancelCheck* cancel = check.active() ? &check : nullptr;

  std::optional<Violation> witness;
  SweepRules(g, use_snap, sigma, opts.view,
             /*stop_sweep_on_false=*/true, cancel, info,
             [&](int f, const Binding& binding) {
               witness = Violation{f, binding};
               return false;  // stop at first violation
             });
  return witness;
}

}  // namespace ngd
