#include "detect/dect.h"

#include <algorithm>
#include <optional>

namespace ngd {

namespace {

/// Runs one detection sweep over every rule in Σ against one
/// materialized search backend. The start node and MatchPlan are hoisted
/// out of the candidate loop: one plan per rule per detection call,
/// shared across all of that rule's seed candidates (and, via the
/// snapshot, across all rules of the call).
///
/// Emission has two modes:
///   - `sink != nullptr` (Dect): full matches stream straight into the
///     sink through a per-rule VioEmitter — batched block appends, no
///     std::function dispatch, no per-match allocation and no per-match
///     dedup (batch enumeration emits each binding exactly once per
///     rule). `per_rule_limit` caps emissions per NGD (0 = unlimited),
///     matching the old callback-counting semantics.
///   - `sink == nullptr` (FindAnyViolation): `callback` receives each
///     violation; returning false ends that rule's search and — with
///     `stop_sweep_on_false` — the whole sweep (first-witness exit).
///
/// `cancel` (optional) is polled between rules and inside the expansion
/// loops; a trip marks the interrupted rule and every rule after it
/// incomplete in `info` and sets info->truncated. `info` must be sized
/// to sigma already (StartFull).
template <typename PerViolation>
void SweepRules(const Graph& g, const GraphSnapshot* snap,
                const NgdSet& sigma, GraphView view,
                bool stop_sweep_on_false, CancelCheck* cancel,
                DetectRunInfo* info, VioSet* sink, size_t per_rule_limit,
                const PerViolation& callback) {
  auto mark_truncated_from = [&](size_t f) {
    info->truncated = true;
    for (size_t r = f; r < sigma.size(); ++r) info->rule_completed[r] = 0;
  };
  for (size_t f = 0; f < sigma.size(); ++f) {
    if (cancel != nullptr && cancel->ShouldStop()) {
      mark_truncated_from(f);
      return;
    }
    const Ngd& ngd = sigma[f];
    SearchConfig cfg;
    cfg.graph = &g;
    cfg.snapshot = snap;
    cfg.pattern = &ngd.pattern();
    cfg.x = &ngd.X();
    cfg.y = &ngd.Y();
    cfg.view = view;
    cfg.find_violations = true;
    cfg.cancel = cancel;
    std::optional<VioEmitter> emitter;
    if (sink != nullptr) {
      emitter.emplace(sink, static_cast<int>(f), ngd.pattern().NumNodes(),
                      per_rule_limit);
      cfg.emitter = &*emitter;
    }
    const int start = ChooseStartNode(ngd.pattern(), cfg.MakeAccessor());
    const MatchPlan plan =
        BuildMatchPlan(ngd.pattern(), {start}, &ngd.X(), &ngd.Y());
    const bool completed = RunBatchSearchWithPlan(
        cfg, start, plan, [&](const Binding& binding) {
          return callback(static_cast<int>(f), binding);
        });
    if (emitter.has_value()) emitter->Flush();
    if (cancel != nullptr && cancel->Stopped()) {
      // Cancel/deadline stop, not a callback/limit stop: rule f is
      // incomplete.
      mark_truncated_from(f);
      return;
    }
    if (!completed && stop_sweep_on_false) return;
  }
}

/// Regime probe for the kAuto cost model: samples a few seed expansions
/// on the live graph and counts the violations they emit. When emission
/// dominates (violation-dense graphs), matching speed is not the
/// bottleneck and the O(|E|) snapshot build is pure overhead — the live
/// engine wins. The probe is bounded: at most kProbeRules rules (spread
/// across Σ), kProbeSeeds seed candidates each, and it stops the moment
/// kProbeMatchCap violations are seen (already decisively dense). Work
/// done here is a small prefix of what the live engine would do anyway,
/// and it only runs once the seed-volume test has said "big sweep".
bool EmissionDominated(const Graph& g, const NgdSet& sigma, GraphView view) {
  constexpr size_t kProbeRules = 4;
  constexpr size_t kProbeSeeds = 4;
  constexpr size_t kProbeMatchCap = 256;
  // Dense ⇔ sampled violations ≥ kDensePerSeed per probed seed.
  constexpr size_t kDensePerSeed = 4;

  const GraphAccessor acc(g, view);
  const size_t stride = std::max<size_t>(1, sigma.size() / kProbeRules);
  size_t seeds_probed = 0;
  size_t violations = 0;
  for (size_t f = 0; f < sigma.size() && violations < kProbeMatchCap;
       f += stride) {
    const Ngd& ngd = sigma[f];
    SearchConfig cfg;
    cfg.graph = &g;
    cfg.pattern = &ngd.pattern();
    cfg.x = &ngd.X();
    cfg.y = &ngd.Y();
    cfg.view = view;
    cfg.find_violations = true;
    const int start = ChooseStartNode(ngd.pattern(), acc);
    const MatchPlan plan =
        BuildMatchPlan(ngd.pattern(), {start}, &ngd.X(), &ngd.Y());
    Binding binding(ngd.pattern().NumNodes(), kInvalidNode);
    size_t rule_seeds = 0;
    acc.ForEachCandidate(
        ngd.pattern().node(start).label, [&](NodeId v) {
          ++seeds_probed;
          std::fill(binding.begin(), binding.end(), kInvalidNode);
          binding[start] = v;
          RunSeededSearch(cfg, plan, &binding, [&](const Binding&) {
            ++violations;
            return violations < kProbeMatchCap;
          });
          return ++rule_seeds < kProbeSeeds && violations < kProbeMatchCap;
        });
  }
  if (seeds_probed == 0) return false;
  return violations >= kDensePerSeed * seeds_probed;
}

}  // namespace

void RemapRunInfo(const DetectRunInfo& inner, const OptimizeReport& report,
                  size_t original_rules, DetectRunInfo* out) {
  out->truncated = inner.truncated;
  // Kept rules copy their marks from the minimized run.
  std::vector<int8_t> mark(original_rules, -1);  // -1 unresolved, 0/1 known
  for (size_t i = 0; i < report.kept.size(); ++i) {
    const size_t orig = static_cast<size_t>(report.kept[i]);
    mark[orig] = i < inner.rule_completed.size() && inner.rule_completed[i]
                     ? 1
                     : (inner.truncated ? 0 : 1);
  }
  // Dropped rules propagate completion through the implication cover:
  // rule d's violations are covered by the rules that implied it, so d's
  // report is complete exactly when every (transitive) implier finished
  // enumerating. The implied_by edges always point to rules that were
  // alive at drop time, so the relation is a DAG rooted at kept rules.
  const bool have_cover = report.implied_by.size() == original_rules;
  std::vector<int> stack;
  for (int d : report.dropped) {
    if (mark[static_cast<size_t>(d)] != -1) continue;
    if (!have_cover || report.implied_by[static_cast<size_t>(d)].empty()) {
      // No recorded cover (defensive): fall back to the conservative
      // whole-run mark.
      mark[static_cast<size_t>(d)] = inner.truncated ? 0 : 1;
      continue;
    }
    stack.push_back(d);
    while (!stack.empty()) {
      const size_t r = static_cast<size_t>(stack.back());
      bool ready = true;
      bool all_complete = true;
      for (int j : report.implied_by[r]) {
        const int8_t m = mark[static_cast<size_t>(j)];
        if (m == -1) {
          if (!have_cover || report.implied_by[static_cast<size_t>(j)].empty()) {
            mark[static_cast<size_t>(j)] = inner.truncated ? 0 : 1;
            if (mark[static_cast<size_t>(j)] == 0) all_complete = false;
            continue;
          }
          stack.push_back(j);
          ready = false;
        } else if (m == 0) {
          all_complete = false;
        }
      }
      if (!ready) continue;
      mark[r] = all_complete ? 1 : 0;
      stack.pop_back();
    }
  }
  out->rule_completed.assign(original_rules, 0);
  for (size_t r = 0; r < original_rules; ++r) {
    out->rule_completed[r] = mark[r] == 1 ? 1 : 0;
  }
}

bool WantSnapshot(const Graph& g, const NgdSet& sigma, GraphView view) {
  // Regime guard and seed counting agree on the view being detected: a
  // graph whose edges are all pending in the OTHER view must not pay a
  // build for an edge-empty snapshot.
  if (g.NumEdges(view) == 0) return false;
  // Regime 1 — matching-dominated. Σ_f |C(start_f)| approximates how many
  // seed expansions the sweep performs; each streams an adjacency of
  // average length 2|E|/|V|, while the snapshot build streams the
  // adjacency a constant number of times with a sort-like constant. Seed
  // volume ≥ 8|V| ⇒ the live engine would touch well over an order of
  // magnitude more entries than the build, so the snapshot amortizes
  // within this call.
  const GraphAccessor acc(g, view);
  size_t seed_candidates = 0;
  const size_t threshold = 8 * g.NumNodes();
  bool big_sweep = false;
  for (size_t f = 0; f < sigma.size(); ++f) {
    const Pattern& pattern = sigma[f].pattern();
    seed_candidates += acc.CandidateCount(
        pattern.node(ChooseStartNode(pattern, acc)).label);
    if (seed_candidates >= threshold) {
      big_sweep = true;
      break;
    }
  }
  if (!big_sweep) return false;
  // Regime 2 — emission-dominated. A big sweep over a violation-dense
  // graph spends its time materializing violations, which both engines
  // pay identically; the build no longer amortizes against the (small)
  // matching share. Sample the violation density before committing.
  return !EmissionDominated(g, sigma, view);
}

bool ResolveSnapshot(const Graph& g, const NgdSet& sigma, SnapshotMode mode,
                     GraphView view) {
  switch (mode) {
    case SnapshotMode::kAlways:
      return true;
    case SnapshotMode::kNever:
      return false;
    case SnapshotMode::kAuto:
      break;
  }
  return WantSnapshot(g, sigma, view);
}

VioSet Dect(const Graph& g, const NgdSet& sigma, const DectOptions& opts) {
  // Σ-optimizer wiring: detect against the implication-minimized rule set
  // and remap rule indices back to the caller's Σ. One re-entry, with the
  // mode cleared, keeps the engine body oblivious to minimization.
  DectOptions inner;
  MinimizedSigma m;
  if (BeginMinimizedDetection(sigma, g.schema(), opts, &inner, &m)) {
    DetectRunInfo inner_info;
    inner.run_info = &inner_info;
    VioSet vio = RemapViolations(Dect(g, m.sigma, inner), m.report.kept);
    if (opts.run_info != nullptr) {
      RemapRunInfo(inner_info, m.report, sigma.size(), opts.run_info);
    }
    return vio;
  }

  std::optional<GraphSnapshot> snap;
  const GraphSnapshot* use_snap = opts.snapshot;
  if (use_snap == nullptr &&
      ResolveSnapshot(g, sigma, opts.snapshot_mode, opts.view)) {
    snap.emplace(g, opts.view);
    use_snap = &*snap;
  }

  DetectRunInfo local_info;
  DetectRunInfo* info = opts.run_info != nullptr ? opts.run_info : &local_info;
  info->StartFull(sigma.size());
  CancelCheck check(opts.cancel, opts.deadline);
  CancelCheck* cancel = check.active() ? &check : nullptr;

  VioSet vio;
  if (opts.spill != nullptr) vio.EnableSpill(*opts.spill);
  SweepRules(g, use_snap, sigma, opts.view,
             /*stop_sweep_on_false=*/false, cancel, info, &vio,
             opts.max_violations_per_ngd,
             [](int, const Binding&) { return true; });
  return vio;
}

std::optional<Violation> FindAnyViolation(const Graph& g, const NgdSet& sigma,
                                          const DectOptions& opts) {
  // Minimization preserves emptiness (a dropped rule's violation always
  // comes with a kept rule's violation), so validation may sweep the kept
  // rules only; the witness index is remapped back to the caller's Σ.
  DectOptions inner;
  MinimizedSigma m;
  if (BeginMinimizedDetection(sigma, g.schema(), opts, &inner, &m)) {
    DetectRunInfo inner_info;
    inner.run_info = &inner_info;
    std::optional<Violation> witness = FindAnyViolation(g, m.sigma, inner);
    if (witness.has_value()) {
      witness->ngd_index =
          m.report.kept[static_cast<size_t>(witness->ngd_index)];
    }
    if (opts.run_info != nullptr) {
      RemapRunInfo(inner_info, m.report, sigma.size(), opts.run_info);
    }
    return witness;
  }

  // Worst case (G |= Σ, the common validation outcome) is a full sweep,
  // so the same kAuto cost model applies as for Dect; callers who know
  // violations are common pass kNever to skip the O(|E|) build an early
  // witness would waste.
  std::optional<GraphSnapshot> snap;
  const GraphSnapshot* use_snap = opts.snapshot;
  if (use_snap == nullptr &&
      ResolveSnapshot(g, sigma, opts.snapshot_mode, opts.view)) {
    snap.emplace(g, opts.view);
    use_snap = &*snap;
  }
  DetectRunInfo local_info;
  DetectRunInfo* info = opts.run_info != nullptr ? opts.run_info : &local_info;
  info->StartFull(sigma.size());
  CancelCheck check(opts.cancel, opts.deadline);
  CancelCheck* cancel = check.active() ? &check : nullptr;

  std::optional<Violation> witness;
  SweepRules(g, use_snap, sigma, opts.view,
             /*stop_sweep_on_false=*/true, cancel, info, /*sink=*/nullptr,
             /*per_rule_limit=*/0, [&](int f, const Binding& binding) {
               witness = Violation{f, binding};
               return false;  // stop at first violation
             });
  return witness;
}

}  // namespace ngd
