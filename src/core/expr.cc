#include "core/expr.h"

#include <algorithm>

#include "graph/delta_view.h"
#include "graph/snapshot.h"

namespace ngd {

Expr Expr::IntConst(int64_t v) {
  auto n = std::make_shared<Node>();
  n->kind = Kind::kIntConst;
  n->int_value = v;
  return Expr(std::move(n));
}

Expr Expr::StrConst(std::string s) {
  auto n = std::make_shared<Node>();
  n->kind = Kind::kStrConst;
  n->str_value = std::move(s);
  return Expr(std::move(n));
}

Expr Expr::Var(int var_index, AttrId attr) {
  auto n = std::make_shared<Node>();
  n->kind = Kind::kVarAttr;
  n->var_index = var_index;
  n->attr = attr;
  return Expr(std::move(n));
}

Expr Expr::Add(Expr l, Expr r) {
  auto n = std::make_shared<Node>();
  n->kind = Kind::kAdd;
  n->lhs = std::move(l.node_);
  n->rhs = std::move(r.node_);
  return Expr(std::move(n));
}

Expr Expr::Sub(Expr l, Expr r) {
  auto n = std::make_shared<Node>();
  n->kind = Kind::kSub;
  n->lhs = std::move(l.node_);
  n->rhs = std::move(r.node_);
  return Expr(std::move(n));
}

Expr Expr::Mul(Expr l, Expr r) {
  auto n = std::make_shared<Node>();
  n->kind = Kind::kMul;
  n->lhs = std::move(l.node_);
  n->rhs = std::move(r.node_);
  return Expr(std::move(n));
}

Expr Expr::Div(Expr l, Expr r) {
  auto n = std::make_shared<Node>();
  n->kind = Kind::kDiv;
  n->lhs = std::move(l.node_);
  n->rhs = std::move(r.node_);
  return Expr(std::move(n));
}

Expr Expr::Neg(Expr e) {
  auto n = std::make_shared<Node>();
  n->kind = Kind::kNeg;
  n->lhs = std::move(e.node_);
  return Expr(std::move(n));
}

Expr Expr::Abs(Expr e) {
  auto n = std::make_shared<Node>();
  n->kind = Kind::kAbs;
  n->lhs = std::move(e.node_);
  return Expr(std::move(n));
}

int Expr::Degree() const {
  switch (node_->kind) {
    case Kind::kIntConst:
    case Kind::kStrConst:
      return 0;
    case Kind::kVarAttr:
      return 1;
    case Kind::kAdd:
    case Kind::kSub:
      return std::max(lhs().Degree(), rhs().Degree());
    case Kind::kMul:
    case Kind::kDiv:
      return lhs().Degree() + rhs().Degree();
    case Kind::kNeg:
    case Kind::kAbs:
      return lhs().Degree();
  }
  return 0;
}

bool Expr::IsLinear() const {
  if (Degree() > 1) return false;
  switch (node_->kind) {
    case Kind::kIntConst:
    case Kind::kStrConst:
    case Kind::kVarAttr:
      return true;
    case Kind::kAdd:
    case Kind::kSub:
    case Kind::kMul:
      return lhs().IsLinear() && rhs().IsLinear();
    case Kind::kDiv:
      // e ÷ c: divisor must be constant (degree 0).
      return lhs().IsLinear() && rhs().Degree() == 0 &&
             rhs().IsLinear();
    case Kind::kNeg:
    case Kind::kAbs:
      return lhs().IsLinear();
  }
  return false;
}

void Expr::CollectVars(std::vector<int>* vars) const {
  switch (node_->kind) {
    case Kind::kIntConst:
    case Kind::kStrConst:
      return;
    case Kind::kVarAttr:
      if (std::find(vars->begin(), vars->end(), node_->var_index) ==
          vars->end()) {
        vars->push_back(node_->var_index);
      }
      return;
    case Kind::kAdd:
    case Kind::kSub:
    case Kind::kMul:
    case Kind::kDiv:
      lhs().CollectVars(vars);
      rhs().CollectVars(vars);
      return;
    case Kind::kNeg:
    case Kind::kAbs:
      lhs().CollectVars(vars);
      return;
  }
}

namespace {

/// Shared evaluation body; G supplies GetAttr(NodeId, AttrId) and is
/// either the live Graph or a GraphSnapshot.
template <typename G>
EvalResult EvaluateImpl(const Expr& e, const G& g, const Binding& binding) {
  switch (e.kind()) {
    case Expr::Kind::kIntConst:
      return EvalResult::Int(Rational(e.int_value()));
    case Expr::Kind::kStrConst:
      return EvalResult::Str(e.str_value());
    case Expr::Kind::kVarAttr: {
      int x = e.var_index();
      if (x < 0 || static_cast<size_t>(x) >= binding.size() ||
          binding[x] == kInvalidNode) {
        return EvalResult::Unbound();
      }
      const Value* v = g.GetAttr(binding[x], e.attr());
      if (v == nullptr) return EvalResult::Missing();
      if (v->is_int()) return EvalResult::Int(Rational(v->AsInt()));
      return EvalResult::Str(v->AsString());
    }
    case Expr::Kind::kNeg:
    case Expr::Kind::kAbs: {
      EvalResult l = EvaluateImpl(e.lhs(), g, binding);
      if (l.tag == EvalResult::Tag::kUnbound) return l;
      if (l.tag != EvalResult::Tag::kInt) return EvalResult::Missing();
      return EvalResult::Int(e.kind() == Expr::Kind::kNeg ? -l.num
                                                          : l.num.Abs());
    }
    default: {
      EvalResult l = EvaluateImpl(e.lhs(), g, binding);
      EvalResult r = EvaluateImpl(e.rhs(), g, binding);
      // Unbound dominates Missing: the literal may still become evaluable
      // once more variables are matched.
      if (l.tag == EvalResult::Tag::kUnbound ||
          r.tag == EvalResult::Tag::kUnbound) {
        return EvalResult::Unbound();
      }
      if (l.tag != EvalResult::Tag::kInt || r.tag != EvalResult::Tag::kInt) {
        return EvalResult::Missing();
      }
      switch (e.kind()) {
        case Expr::Kind::kAdd:
          return EvalResult::Int(l.num + r.num);
        case Expr::Kind::kSub:
          return EvalResult::Int(l.num - r.num);
        case Expr::Kind::kMul:
          return EvalResult::Int(l.num * r.num);
        case Expr::Kind::kDiv:
          if (r.num == Rational(0)) return EvalResult::Missing();
          return EvalResult::Int(l.num / r.num);
        default:
          return EvalResult::Missing();
      }
    }
  }
}

}  // namespace

EvalResult Expr::Evaluate(const Graph& g, const Binding& binding) const {
  return EvaluateImpl(*this, g, binding);
}

EvalResult Expr::Evaluate(const GraphSnapshot& g,
                          const Binding& binding) const {
  return EvaluateImpl(*this, g, binding);
}

EvalResult Expr::Evaluate(const DeltaView& g, const Binding& binding) const {
  return EvaluateImpl(*this, g, binding);
}

std::string Expr::ToString(const std::vector<std::string>& var_names,
                           const Dictionary& attr_dict) const {
  switch (node_->kind) {
    case Kind::kIntConst:
      return std::to_string(node_->int_value);
    case Kind::kStrConst:
      return "\"" + node_->str_value + "\"";
    case Kind::kVarAttr: {
      std::string var =
          node_->var_index >= 0 &&
                  static_cast<size_t>(node_->var_index) < var_names.size()
              ? var_names[node_->var_index]
              : "$" + std::to_string(node_->var_index);
      return var + "." + attr_dict.NameOf(node_->attr);
    }
    case Kind::kAdd:
      return "(" + lhs().ToString(var_names, attr_dict) + " + " +
             rhs().ToString(var_names, attr_dict) + ")";
    case Kind::kSub:
      return "(" + lhs().ToString(var_names, attr_dict) + " - " +
             rhs().ToString(var_names, attr_dict) + ")";
    case Kind::kMul:
      return "(" + lhs().ToString(var_names, attr_dict) + " * " +
             rhs().ToString(var_names, attr_dict) + ")";
    case Kind::kDiv:
      return "(" + lhs().ToString(var_names, attr_dict) + " / " +
             rhs().ToString(var_names, attr_dict) + ")";
    case Kind::kNeg:
      return "-" + lhs().ToString(var_names, attr_dict);
    case Kind::kAbs:
      return "abs(" + lhs().ToString(var_names, attr_dict) + ")";
  }
  return "?";
}

}  // namespace ngd
