#include "core/parser.h"

#include <cctype>
#include <optional>
#include <vector>

namespace ngd {

namespace {

enum class Tok : uint8_t {
  kEof,
  kIdent,
  kInt,
  kString,
  kLParen,
  kRParen,
  kLBrace,
  kRBrace,
  kLBracket,
  kRBracket,
  kComma,
  kColon,
  kDot,
  kArrow,  // ->
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kEq,  // = or ==
  kNe,  // != or <>
  kLt,
  kLe,
  kGt,
  kGe,
};

struct Token {
  Tok kind;
  std::string text;
  int64_t int_value = 0;
  size_t line = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  StatusOr<std::vector<Token>> Tokenize() {
    std::vector<Token> tokens;
    while (pos_ < src_.size()) {
      char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      if (c == '#' || (c == '/' && Peek(1) == '/')) {
        while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t start = pos_;
        while (pos_ < src_.size() &&
               (std::isalnum(static_cast<unsigned char>(src_[pos_])) ||
                src_[pos_] == '_')) {
          ++pos_;
        }
        tokens.push_back(
            {Tok::kIdent, std::string(src_.substr(start, pos_ - start)), 0,
             line_});
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c))) {
        size_t start = pos_;
        while (pos_ < src_.size() &&
               std::isdigit(static_cast<unsigned char>(src_[pos_]))) {
          ++pos_;
        }
        Token t{Tok::kInt, std::string(src_.substr(start, pos_ - start)), 0,
                line_};
        t.int_value = std::stoll(t.text);
        tokens.push_back(t);
        continue;
      }
      if (c == '"') {
        ++pos_;
        size_t start = pos_;
        while (pos_ < src_.size() && src_[pos_] != '"') ++pos_;
        if (pos_ >= src_.size()) {
          return Status::InvalidArgument("line " + std::to_string(line_) +
                                         ": unterminated string");
        }
        tokens.push_back(
            {Tok::kString, std::string(src_.substr(start, pos_ - start)), 0,
             line_});
        ++pos_;
        continue;
      }
      auto two = [&](char a, char b) {
        return c == a && Peek(1) == b;
      };
      if (two('-', '>')) {
        tokens.push_back({Tok::kArrow, "->", 0, line_});
        pos_ += 2;
        continue;
      }
      if (two('!', '=') || two('<', '>')) {
        tokens.push_back({Tok::kNe, "!=", 0, line_});
        pos_ += 2;
        continue;
      }
      if (two('<', '=')) {
        tokens.push_back({Tok::kLe, "<=", 0, line_});
        pos_ += 2;
        continue;
      }
      if (two('>', '=')) {
        tokens.push_back({Tok::kGe, ">=", 0, line_});
        pos_ += 2;
        continue;
      }
      if (two('=', '=')) {
        tokens.push_back({Tok::kEq, "==", 0, line_});
        pos_ += 2;
        continue;
      }
      Tok kind;
      switch (c) {
        case '(': kind = Tok::kLParen; break;
        case ')': kind = Tok::kRParen; break;
        case '{': kind = Tok::kLBrace; break;
        case '}': kind = Tok::kRBrace; break;
        case '[': kind = Tok::kLBracket; break;
        case ']': kind = Tok::kRBracket; break;
        case ',': kind = Tok::kComma; break;
        case ':': kind = Tok::kColon; break;
        case '.': kind = Tok::kDot; break;
        case '+': kind = Tok::kPlus; break;
        case '-': kind = Tok::kMinus; break;
        case '*': kind = Tok::kStar; break;
        case '/': kind = Tok::kSlash; break;
        case '=': kind = Tok::kEq; break;
        case '<': kind = Tok::kLt; break;
        case '>': kind = Tok::kGt; break;
        default:
          return Status::InvalidArgument("line " + std::to_string(line_) +
                                         ": unexpected character '" +
                                         std::string(1, c) + "'");
      }
      tokens.push_back({kind, std::string(1, c), 0, line_});
      ++pos_;
    }
    tokens.push_back({Tok::kEof, "", 0, line_});
    return tokens;
  }

 private:
  char Peek(size_t ahead) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  std::string_view src_;
  size_t pos_ = 0;
  size_t line_ = 1;
};

class Parser {
 public:
  Parser(std::vector<Token> tokens, SchemaPtr schema)
      : tokens_(std::move(tokens)), schema_(std::move(schema)) {}

  StatusOr<NgdSet> ParseFile() {
    NgdSet set;
    while (Cur().kind != Tok::kEof) {
      NGD_ASSIGN_OR_RETURN(Ngd ngd, ParseOne());
      set.Add(std::move(ngd));
    }
    return set;
  }

  StatusOr<Ngd> ParseOne() {
    NGD_RETURN_IF_ERROR(ExpectIdent("ngd"));
    if (Cur().kind != Tok::kIdent) return Err("expected NGD name");
    std::string name = Cur().text;
    Advance();
    NGD_RETURN_IF_ERROR(Expect(Tok::kLBrace, "{"));
    NGD_RETURN_IF_ERROR(ExpectIdent("match"));

    pattern_ = Pattern();
    NGD_RETURN_IF_ERROR(ParseElement());
    while (Cur().kind == Tok::kComma) {
      Advance();
      NGD_RETURN_IF_ERROR(ParseElement());
    }

    std::vector<Literal> x;
    if (Cur().kind == Tok::kIdent && Cur().text == "where") {
      Advance();
      if (Cur().kind == Tok::kIdent && Cur().text == "true") {
        Advance();
      } else {
        NGD_ASSIGN_OR_RETURN(x, ParseLiteralList());
      }
    }
    NGD_RETURN_IF_ERROR(ExpectIdent("then"));
    NGD_ASSIGN_OR_RETURN(std::vector<Literal> y, ParseLiteralList());
    NGD_RETURN_IF_ERROR(Expect(Tok::kRBrace, "}"));

    Ngd ngd(std::move(name), std::move(pattern_), std::move(x), std::move(y));
    NGD_RETURN_IF_ERROR(ngd.Validate());
    return ngd;
  }

 private:
  const Token& Cur() const { return tokens_[index_]; }
  void Advance() {
    if (index_ + 1 < tokens_.size()) ++index_;
  }

  Status Err(const std::string& msg) const {
    return Status::InvalidArgument("line " + std::to_string(Cur().line) +
                                   ": " + msg + " (got '" + Cur().text +
                                   "')");
  }

  Status Expect(Tok kind, const char* what) {
    if (Cur().kind != kind) return Err(std::string("expected '") + what + "'");
    Advance();
    return Status::OK();
  }

  Status ExpectIdent(const std::string& word) {
    if (Cur().kind != Tok::kIdent || Cur().text != word) {
      return Err("expected '" + word + "'");
    }
    Advance();
    return Status::OK();
  }

  /// label := IDENT | STRING | '_'
  StatusOr<LabelId> ParseLabel() {
    if (Cur().kind != Tok::kIdent && Cur().kind != Tok::kString) {
      return Err("expected label");
    }
    std::string text = Cur().text;
    Advance();
    if (text == "_") return kWildcardLabel;
    return schema_->InternLabel(text);
  }

  /// node := '(' IDENT [':' label] ')'; returns the pattern node index.
  StatusOr<int> ParseNode() {
    NGD_RETURN_IF_ERROR(Expect(Tok::kLParen, "("));
    if (Cur().kind != Tok::kIdent) return Err("expected variable name");
    std::string var = Cur().text;
    Advance();
    std::optional<LabelId> label;
    if (Cur().kind == Tok::kColon) {
      Advance();
      NGD_ASSIGN_OR_RETURN(LabelId l, ParseLabel());
      label = l;
    }
    NGD_RETURN_IF_ERROR(Expect(Tok::kRParen, ")"));

    int idx = pattern_.FindVar(var);
    if (idx < 0) {
      idx = pattern_.AddNode(var, label.value_or(kWildcardLabel));
    } else if (label.has_value()) {
      LabelId existing = pattern_.nodes()[idx].label;
      if (existing == kWildcardLabel && *label != kWildcardLabel) {
        // Refine a wildcard introduced by an earlier bare mention.
        pattern_.SetNodeLabel(idx, *label);
      } else if (existing != *label) {
        return Err("variable '" + var + "' relabelled inconsistently");
      }
    }
    return idx;
  }

  /// element := node | node '-[' label ']->' node
  Status ParseElement() {
    NGD_ASSIGN_OR_RETURN(int src, ParseNode());
    if (Cur().kind != Tok::kMinus) return Status::OK();  // isolated node
    Advance();
    NGD_RETURN_IF_ERROR(Expect(Tok::kLBracket, "["));
    NGD_ASSIGN_OR_RETURN(LabelId label, ParseLabel());
    NGD_RETURN_IF_ERROR(Expect(Tok::kRBracket, "]"));
    NGD_RETURN_IF_ERROR(Expect(Tok::kArrow, "->"));
    NGD_ASSIGN_OR_RETURN(int dst, ParseNode());
    if (label == kWildcardLabel) {
      return Err("edge labels cannot be the wildcard '_'");
    }
    return pattern_.AddEdge(src, dst, label);
  }

  StatusOr<std::vector<Literal>> ParseLiteralList() {
    std::vector<Literal> lits;
    NGD_ASSIGN_OR_RETURN(Literal first, ParseLiteral());
    lits.push_back(std::move(first));
    while (Cur().kind == Tok::kComma) {
      Advance();
      NGD_ASSIGN_OR_RETURN(Literal next, ParseLiteral());
      lits.push_back(std::move(next));
    }
    return lits;
  }

  StatusOr<Literal> ParseLiteral() {
    NGD_ASSIGN_OR_RETURN(Expr lhs, ParseExpr());
    CmpOp op;
    switch (Cur().kind) {
      case Tok::kEq: op = CmpOp::kEq; break;
      case Tok::kNe: op = CmpOp::kNe; break;
      case Tok::kLt: op = CmpOp::kLt; break;
      case Tok::kLe: op = CmpOp::kLe; break;
      case Tok::kGt: op = CmpOp::kGt; break;
      case Tok::kGe: op = CmpOp::kGe; break;
      default:
        return Err("expected comparison operator");
    }
    Advance();
    NGD_ASSIGN_OR_RETURN(Expr rhs, ParseExpr());
    return Literal(std::move(lhs), op, std::move(rhs));
  }

  StatusOr<Expr> ParseExpr() {
    NGD_ASSIGN_OR_RETURN(Expr e, ParseTerm());
    while (Cur().kind == Tok::kPlus || Cur().kind == Tok::kMinus) {
      bool plus = Cur().kind == Tok::kPlus;
      Advance();
      NGD_ASSIGN_OR_RETURN(Expr r, ParseTerm());
      e = plus ? Expr::Add(std::move(e), std::move(r))
               : Expr::Sub(std::move(e), std::move(r));
    }
    return e;
  }

  StatusOr<Expr> ParseTerm() {
    NGD_ASSIGN_OR_RETURN(Expr e, ParseUnary());
    while (Cur().kind == Tok::kStar || Cur().kind == Tok::kSlash) {
      bool mul = Cur().kind == Tok::kStar;
      Advance();
      NGD_ASSIGN_OR_RETURN(Expr r, ParseUnary());
      e = mul ? Expr::Mul(std::move(e), std::move(r))
              : Expr::Div(std::move(e), std::move(r));
    }
    return e;
  }

  StatusOr<Expr> ParseUnary() {
    if (Cur().kind == Tok::kMinus) {
      Advance();
      NGD_ASSIGN_OR_RETURN(Expr e, ParseUnary());
      return Expr::Neg(std::move(e));
    }
    return ParsePrimary();
  }

  StatusOr<Expr> ParsePrimary() {
    if (Cur().kind == Tok::kInt) {
      int64_t v = Cur().int_value;
      Advance();
      return Expr::IntConst(v);
    }
    if (Cur().kind == Tok::kString) {
      std::string s = Cur().text;
      Advance();
      return Expr::StrConst(std::move(s));
    }
    if (Cur().kind == Tok::kLParen) {
      Advance();
      NGD_ASSIGN_OR_RETURN(Expr e, ParseExpr());
      NGD_RETURN_IF_ERROR(Expect(Tok::kRParen, ")"));
      return e;
    }
    if (Cur().kind == Tok::kIdent) {
      if (Cur().text == "abs") {
        Advance();
        NGD_RETURN_IF_ERROR(Expect(Tok::kLParen, "("));
        NGD_ASSIGN_OR_RETURN(Expr e, ParseExpr());
        NGD_RETURN_IF_ERROR(Expect(Tok::kRParen, ")"));
        return Expr::Abs(std::move(e));
      }
      std::string var = Cur().text;
      Advance();
      NGD_RETURN_IF_ERROR(Expect(Tok::kDot, "."));
      if (Cur().kind != Tok::kIdent) return Err("expected attribute name");
      std::string attr = Cur().text;
      Advance();
      int idx = pattern_.FindVar(var);
      if (idx < 0) {
        return Err("unknown pattern variable '" + var + "'");
      }
      return Expr::Var(idx, schema_->InternAttr(attr));
    }
    return Err("expected expression");
  }

  std::vector<Token> tokens_;
  size_t index_ = 0;
  SchemaPtr schema_;
  Pattern pattern_;
};

}  // namespace

StatusOr<NgdSet> ParseNgds(std::string_view text, const SchemaPtr& schema) {
  Lexer lexer(text);
  NGD_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens), schema);
  return parser.ParseFile();
}

StatusOr<Ngd> ParseNgd(std::string_view text, const SchemaPtr& schema) {
  Lexer lexer(text);
  NGD_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens), schema);
  return parser.ParseOne();
}

}  // namespace ngd
