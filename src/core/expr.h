// Arithmetic expressions over pattern variables (paper §3).
//
//   e ::= t | |e| | e + e | e − e | c × e | e ÷ c
//
// where a term t is an integer constant or x.A for a pattern variable x and
// attribute A. NGDs restrict e to be LINEAR (degree ≤ 1): Theorem 3 shows
// that permitting degree-2 expressions already makes satisfiability and
// implication undecidable, so Ngd::Validate and the parser reject
// non-linear expressions. The AST itself can represent e × e / e ÷ e with
// arbitrary degree — the reasoning tests exercise the rejection path.
//
// Expressions are immutable trees with structural sharing (cheap copies).
// Evaluation is exact over Q (see util/rational.h); string constants are
// admitted as bare leaves so =/!= literals cover GFD/CFD constant bindings.

#ifndef NGD_CORE_EXPR_H_
#define NGD_CORE_EXPR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/rational.h"

namespace ngd {

class GraphSnapshot;
class DeltaView;

/// A (possibly partial) homomorphism: var index -> node id, kInvalidNode
/// when the variable is not yet matched.
using Binding = std::vector<NodeId>;

/// Three-valued evaluation outcome.
struct EvalResult {
  enum class Tag : uint8_t {
    kInt,      ///< numeric value in `num`
    kStr,      ///< string value in `str`
    kMissing,  ///< bound node lacks the attribute / type error / div by 0
    kUnbound,  ///< some referenced variable is not yet matched
  };
  Tag tag = Tag::kMissing;
  Rational num;
  // Owned copy: a pointer into the Expr node (or the graph) here would
  // dangle as soon as the expression or value it came from is destroyed.
  std::string str;

  static EvalResult Int(Rational r) {
    EvalResult e;
    e.tag = Tag::kInt;
    e.num = r;
    return e;
  }
  static EvalResult Str(std::string s) {
    EvalResult e;
    e.tag = Tag::kStr;
    e.str = std::move(s);
    return e;
  }
  static EvalResult Missing() { return EvalResult{}; }
  static EvalResult Unbound() {
    EvalResult e;
    e.tag = Tag::kUnbound;
    return e;
  }
};

class Expr {
 public:
  enum class Kind : uint8_t {
    kIntConst,
    kStrConst,
    kVarAttr,  ///< x.A
    kAdd,
    kSub,
    kMul,
    kDiv,
    kNeg,
    kAbs,
  };

  Expr() = default;  // empty expression; only valid as a placeholder

  static Expr IntConst(int64_t v);
  static Expr StrConst(std::string s);
  static Expr Var(int var_index, AttrId attr);
  static Expr Add(Expr l, Expr r);
  static Expr Sub(Expr l, Expr r);
  static Expr Mul(Expr l, Expr r);
  static Expr Div(Expr l, Expr r);
  static Expr Neg(Expr e);
  static Expr Abs(Expr e);

  bool IsValid() const { return node_ != nullptr; }
  Kind kind() const { return node_->kind; }

  /// Degree of the polynomial: 0 for constants, 1 for x.A, additive under
  /// ×. Division contributes the degree of both sides (a non-constant
  /// divisor is never linear). String constants have degree 0.
  int Degree() const;

  /// True iff Degree() <= 1 and every divisor subexpression is constant —
  /// the exact fragment NGDs admit (paper §3 / Theorem 3).
  bool IsLinear() const;

  /// Appends the distinct variable indices referenced, in first-use order.
  void CollectVars(std::vector<int>* vars) const;

  /// Exact evaluation under the (partial) binding. The overloads differ
  /// only in where x.A terms read attributes from: the live overlay
  /// graph, an immutable CSR snapshot of one view, or a batch-update
  /// delta view over a base snapshot.
  EvalResult Evaluate(const Graph& g, const Binding& binding) const;
  EvalResult Evaluate(const GraphSnapshot& g, const Binding& binding) const;
  EvalResult Evaluate(const DeltaView& g, const Binding& binding) const;

  /// Renders with the given variable names (pattern-provided) and schema
  /// attribute names.
  std::string ToString(const std::vector<std::string>& var_names,
                       const Dictionary& attr_dict) const;

  // Introspection for the reasoning module.
  int64_t int_value() const { return node_->int_value; }
  const std::string& str_value() const { return node_->str_value; }
  int var_index() const { return node_->var_index; }
  AttrId attr() const { return node_->attr; }
  Expr lhs() const { return Expr(node_->lhs); }
  Expr rhs() const { return Expr(node_->rhs); }

 private:
  struct Node {
    Kind kind;
    int64_t int_value = 0;
    std::string str_value;
    int var_index = -1;
    AttrId attr = 0;
    std::shared_ptr<const Node> lhs;
    std::shared_ptr<const Node> rhs;
  };

  explicit Expr(std::shared_ptr<const Node> node) : node_(std::move(node)) {}

  std::shared_ptr<const Node> node_;
};

}  // namespace ngd

#endif  // NGD_CORE_EXPR_H_
