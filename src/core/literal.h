// Literals l = e1 ⊗ e2 with ⊗ ∈ {=, ≠, <, ≤, >, ≥} (paper §3).
//
// Satisfaction of a literal by a match h (paper semantics):
//   (a) every term x.A must be carried by node h(x), and
//   (b) h(e1) ⊗ h(e2) must hold.
// Order comparisons are defined on integers; =/≠ additionally on strings.
// A type mismatch or missing attribute makes the literal UNSATISFIED —
// exactly condition (a). During backtracking search variables may still be
// unbound, so evaluation is three-valued (kTrue / kFalse / kNotReady).

#ifndef NGD_CORE_LITERAL_H_
#define NGD_CORE_LITERAL_H_

#include <string>
#include <vector>

#include "core/expr.h"

namespace ngd {

enum class CmpOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CmpOpName(CmpOp op);
CmpOp NegateCmpOp(CmpOp op);

enum class Truth : uint8_t {
  kTrue,
  kFalse,
  kNotReady,  ///< some variable unbound; re-evaluate later
};

class Literal {
 public:
  Literal() = default;
  Literal(Expr lhs, CmpOp op, Expr rhs)
      : lhs_(std::move(lhs)), op_(op), rhs_(std::move(rhs)) {}

  const Expr& lhs() const { return lhs_; }
  const Expr& rhs() const { return rhs_; }
  CmpOp op() const { return op_; }

  /// True iff both sides are linear (the NGD fragment).
  bool IsLinear() const { return lhs_.IsLinear() && rhs_.IsLinear(); }
  int Degree() const;

  /// GFD-form literal: x.A = c or x.A = y.B (equality between bare terms).
  /// NGDs restricted to such literals are exactly the GFDs of [23, 24].
  bool IsGfdLiteral() const;

  void CollectVars(std::vector<int>* vars) const;

  /// Three-valued evaluation under a partial binding. kFalse includes the
  /// attribute-missing and type-mismatch cases (condition (a)). The
  /// snapshot / delta-view overloads read attributes from those backends
  /// instead of the live overlay graph.
  Truth Evaluate(const Graph& g, const Binding& binding) const;
  Truth Evaluate(const GraphSnapshot& g, const Binding& binding) const;
  Truth Evaluate(const DeltaView& g, const Binding& binding) const;

  std::string ToString(const std::vector<std::string>& var_names,
                       const Dictionary& attr_dict) const;

 private:
  Expr lhs_;
  CmpOp op_ = CmpOp::kEq;
  Expr rhs_;
};

/// Conjunction over a literal set Z: kTrue iff all true; kFalse if any
/// false; otherwise kNotReady.
Truth EvaluateAll(const std::vector<Literal>& literals, const Graph& g,
                  const Binding& binding);

}  // namespace ngd

#endif  // NGD_CORE_LITERAL_H_
