#include "core/literal.h"

#include <algorithm>

namespace ngd {

const char* CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "!=";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

CmpOp NegateCmpOp(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return CmpOp::kNe;
    case CmpOp::kNe:
      return CmpOp::kEq;
    case CmpOp::kLt:
      return CmpOp::kGe;
    case CmpOp::kLe:
      return CmpOp::kGt;
    case CmpOp::kGt:
      return CmpOp::kLe;
    case CmpOp::kGe:
      return CmpOp::kLt;
  }
  return CmpOp::kEq;
}

int Literal::Degree() const {
  return std::max(lhs_.Degree(), rhs_.Degree());
}

bool Literal::IsGfdLiteral() const {
  if (op_ != CmpOp::kEq) return false;
  auto is_term = [](const Expr& e) {
    return e.kind() == Expr::Kind::kVarAttr ||
           e.kind() == Expr::Kind::kIntConst ||
           e.kind() == Expr::Kind::kStrConst;
  };
  if (!is_term(lhs_) || !is_term(rhs_)) return false;
  // At least one side must reference a variable (c = c' is degenerate but
  // harmless; keep it out of the GFD fragment for clarity).
  return lhs_.kind() == Expr::Kind::kVarAttr ||
         rhs_.kind() == Expr::Kind::kVarAttr;
}

void Literal::CollectVars(std::vector<int>* vars) const {
  lhs_.CollectVars(vars);
  rhs_.CollectVars(vars);
}

namespace {

/// Compares two evaluated sides under `op` (the type/missing discipline
/// of paper §3); shared by all backend overloads.
Truth CompareResults(const EvalResult& l, const EvalResult& r, CmpOp op);

}  // namespace

Truth Literal::Evaluate(const Graph& g, const Binding& binding) const {
  return CompareResults(lhs_.Evaluate(g, binding), rhs_.Evaluate(g, binding),
                        op_);
}

Truth Literal::Evaluate(const GraphSnapshot& g, const Binding& binding) const {
  return CompareResults(lhs_.Evaluate(g, binding), rhs_.Evaluate(g, binding),
                        op_);
}

Truth Literal::Evaluate(const DeltaView& g, const Binding& binding) const {
  return CompareResults(lhs_.Evaluate(g, binding), rhs_.Evaluate(g, binding),
                        op_);
}

namespace {

Truth CompareResults(const EvalResult& l, const EvalResult& r, CmpOp op) {
  if (l.tag == EvalResult::Tag::kUnbound ||
      r.tag == EvalResult::Tag::kUnbound) {
    return Truth::kNotReady;
  }
  if (l.tag == EvalResult::Tag::kMissing ||
      r.tag == EvalResult::Tag::kMissing) {
    return Truth::kFalse;  // condition (a): attribute must exist
  }
  if (l.tag == EvalResult::Tag::kStr && r.tag == EvalResult::Tag::kStr) {
    switch (op) {
      case CmpOp::kEq:
        return l.str == r.str ? Truth::kTrue : Truth::kFalse;
      case CmpOp::kNe:
        return l.str != r.str ? Truth::kTrue : Truth::kFalse;
      default:
        return Truth::kFalse;  // no order on strings in NGDs
    }
  }
  if (l.tag != EvalResult::Tag::kInt || r.tag != EvalResult::Tag::kInt) {
    return Truth::kFalse;  // int vs string type mismatch
  }
  bool holds = false;
  switch (op) {
    case CmpOp::kEq:
      holds = l.num == r.num;
      break;
    case CmpOp::kNe:
      holds = l.num != r.num;
      break;
    case CmpOp::kLt:
      holds = l.num < r.num;
      break;
    case CmpOp::kLe:
      holds = l.num <= r.num;
      break;
    case CmpOp::kGt:
      holds = l.num > r.num;
      break;
    case CmpOp::kGe:
      holds = l.num >= r.num;
      break;
  }
  return holds ? Truth::kTrue : Truth::kFalse;
}

}  // namespace

std::string Literal::ToString(const std::vector<std::string>& var_names,
                              const Dictionary& attr_dict) const {
  return lhs_.ToString(var_names, attr_dict) + " " + CmpOpName(op_) + " " +
         rhs_.ToString(var_names, attr_dict);
}

Truth EvaluateAll(const std::vector<Literal>& literals, const Graph& g,
                  const Binding& binding) {
  bool not_ready = false;
  for (const Literal& l : literals) {
    switch (l.Evaluate(g, binding)) {
      case Truth::kFalse:
        return Truth::kFalse;
      case Truth::kNotReady:
        not_ready = true;
        break;
      case Truth::kTrue:
        break;
    }
  }
  return not_ready ? Truth::kNotReady : Truth::kTrue;
}

}  // namespace ngd
