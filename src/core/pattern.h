// Graph patterns Q[x̄] (paper §2).
//
// A pattern is a small directed graph whose nodes are bijectively named by
// variables x̄; node labels may be the wildcard '_' which matches any node
// label. Matching semantics is graph HOMOMORPHISM (following GEDs [23]):
// distinct pattern nodes may map to the same graph node, labels must agree
// (wildcard excepted), and every pattern edge must map onto a graph edge
// with the same label.

#ifndef NGD_CORE_PATTERN_H_
#define NGD_CORE_PATTERN_H_

#include <string>
#include <string_view>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace ngd {

struct PatternNode {
  std::string var;
  LabelId label;  // kWildcardLabel for '_'
};

struct PatternEdge {
  int src;  // pattern-node index
  int dst;
  LabelId label;
};

/// Undirected adjacency record used by matching-order selection and
/// update-driven expansion.
struct PatternAdj {
  int other;       ///< neighbouring pattern node
  int edge_index;  ///< index into edges()
  bool out;        ///< true: this -> other, false: other -> this
};

class Pattern {
 public:
  Pattern() = default;

  /// Adds a node; `var` must be distinct from existing variables.
  int AddNode(std::string var, LabelId label);

  /// Adds a directed labelled edge between pattern node indices.
  Status AddEdge(int src, int dst, LabelId label);

  /// Replaces node i's label (the parser uses this to refine a wildcard
  /// once a later mention supplies the concrete label).
  void SetNodeLabel(int i, LabelId label) { nodes_[i].label = label; }

  int FindVar(std::string_view var) const;  // -1 if absent

  size_t NumNodes() const { return nodes_.size(); }
  size_t NumEdges() const { return edges_.size(); }
  const std::vector<PatternNode>& nodes() const { return nodes_; }
  const std::vector<PatternEdge>& edges() const { return edges_; }
  const PatternNode& node(int i) const { return nodes_[i]; }
  const PatternEdge& edge(int i) const { return edges_[i]; }

  const std::vector<std::string> VarNames() const;

  /// Undirected adjacency of pattern node i (built lazily, cached).
  const std::vector<PatternAdj>& Adjacency(int i) const;

  bool IsConnected() const;

  /// d_Q: the maximum pairwise shortest-path distance treating Q as
  /// undirected; 0 for single-node patterns. Returns -1 if disconnected.
  int Diameter() const;

  std::string ToString(const Dictionary& label_dict) const;

 private:
  void BuildAdjacency() const;

  std::vector<PatternNode> nodes_;
  std::vector<PatternEdge> edges_;
  mutable std::vector<std::vector<PatternAdj>> adj_;  // lazy cache
  mutable bool adj_built_ = false;
};

}  // namespace ngd

#endif  // NGD_CORE_PATTERN_H_
