// Text DSL for NGDs.
//
// Example (φ2 from the paper, Fig 2 / Example 3):
//
//   # total population must equal female + male
//   ngd population_sum {
//     match (x:area), (x)-[femalePopulation]->(y:integer),
//           (x)-[malePopulation]->(z:integer),
//           (x)-[populationTotal]->(w:integer)
//     then y.val + z.val = w.val
//   }
//
// Grammar (EBNF, '#'/'//' comments to end of line):
//   file     := ngd*
//   ngd      := 'ngd' IDENT '{' 'match' element (',' element)*
//               ['where' ('true' | literals)] 'then' literals '}'
//   element  := node | node '-[' label ']->' node
//   node     := '(' IDENT [':' label] ')'
//   label    := IDENT | STRING | '_'
//   literals := literal (',' literal)*
//   literal  := expr cmp expr
//   cmp      := '=' | '==' | '!=' | '<>' | '<' | '<=' | '>' | '>='
//   expr     := term (('+'|'-') term)*
//   term     := unary (('*'|'/') unary)*
//   unary    := '-' unary | primary
//   primary  := INT | STRING | 'abs' '(' expr ')' | IDENT '.' IDENT
//               | '(' expr ')'
//
// A node's label may be given at any mention; conflicting labels are an
// error. Unlabeled nodes default to the wildcard '_'. Parsed NGDs are
// validated (linearity, variable scoping) before being returned.

#ifndef NGD_CORE_PARSER_H_
#define NGD_CORE_PARSER_H_

#include <string>
#include <string_view>

#include "core/ngd.h"
#include "util/status.h"

namespace ngd {

/// Parses all `ngd` blocks in `text`, interning labels/attrs into `schema`.
StatusOr<NgdSet> ParseNgds(std::string_view text, const SchemaPtr& schema);

/// Parses exactly one NGD.
StatusOr<Ngd> ParseNgd(std::string_view text, const SchemaPtr& schema);

}  // namespace ngd

#endif  // NGD_CORE_PARSER_H_
