#include "core/pattern.h"

#include <algorithm>
#include <queue>
#include <sstream>

namespace ngd {

int Pattern::AddNode(std::string var, LabelId label) {
  adj_built_ = false;
  nodes_.push_back(PatternNode{std::move(var), label});
  return static_cast<int>(nodes_.size()) - 1;
}

Status Pattern::AddEdge(int src, int dst, LabelId label) {
  if (src < 0 || dst < 0 || static_cast<size_t>(src) >= nodes_.size() ||
      static_cast<size_t>(dst) >= nodes_.size()) {
    return Status::InvalidArgument("pattern edge endpoint out of range");
  }
  for (const auto& e : edges_) {
    if (e.src == src && e.dst == dst && e.label == label) {
      return Status::AlreadyExists("duplicate pattern edge");
    }
  }
  adj_built_ = false;
  edges_.push_back(PatternEdge{src, dst, label});
  return Status::OK();
}

int Pattern::FindVar(std::string_view var) const {
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].var == var) return static_cast<int>(i);
  }
  return -1;
}

const std::vector<std::string> Pattern::VarNames() const {
  std::vector<std::string> names;
  names.reserve(nodes_.size());
  for (const auto& n : nodes_) names.push_back(n.var);
  return names;
}

void Pattern::BuildAdjacency() const {
  adj_.assign(nodes_.size(), {});
  for (size_t i = 0; i < edges_.size(); ++i) {
    const PatternEdge& e = edges_[i];
    adj_[e.src].push_back({e.dst, static_cast<int>(i), true});
    adj_[e.dst].push_back({e.src, static_cast<int>(i), false});
  }
  adj_built_ = true;
}

const std::vector<PatternAdj>& Pattern::Adjacency(int i) const {
  if (!adj_built_) BuildAdjacency();
  return adj_[i];
}

bool Pattern::IsConnected() const {
  if (nodes_.empty()) return false;
  if (!adj_built_) BuildAdjacency();
  std::vector<char> seen(nodes_.size(), 0);
  std::queue<int> q;
  q.push(0);
  seen[0] = 1;
  size_t visited = 1;
  while (!q.empty()) {
    int v = q.front();
    q.pop();
    for (const auto& a : adj_[v]) {
      if (!seen[a.other]) {
        seen[a.other] = 1;
        ++visited;
        q.push(a.other);
      }
    }
  }
  return visited == nodes_.size();
}

int Pattern::Diameter() const {
  if (nodes_.empty()) return -1;
  if (!adj_built_) BuildAdjacency();
  int diameter = 0;
  for (size_t s = 0; s < nodes_.size(); ++s) {
    std::vector<int> dist(nodes_.size(), -1);
    std::queue<int> q;
    q.push(static_cast<int>(s));
    dist[s] = 0;
    size_t visited = 1;
    while (!q.empty()) {
      int v = q.front();
      q.pop();
      for (const auto& a : adj_[v]) {
        if (dist[a.other] < 0) {
          dist[a.other] = dist[v] + 1;
          diameter = std::max(diameter, dist[a.other]);
          ++visited;
          q.push(a.other);
        }
      }
    }
    if (visited != nodes_.size()) return -1;  // disconnected
  }
  return diameter;
}

std::string Pattern::ToString(const Dictionary& label_dict) const {
  std::ostringstream os;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (i > 0) os << ", ";
    os << "(" << nodes_[i].var << ":" << label_dict.NameOf(nodes_[i].label)
       << ")";
  }
  for (const auto& e : edges_) {
    os << ", (" << nodes_[e.src].var << ")-[" << label_dict.NameOf(e.label)
       << "]->(" << nodes_[e.dst].var << ")";
  }
  return os.str();
}

}  // namespace ngd
