// Numeric graph dependencies φ = Q[x̄](X → Y) (paper §3).
//
// An NGD combines a topological constraint Q (matched by homomorphism)
// with an attribute dependency X → Y over linear-arithmetic literals. A
// match h(x̄) of Q VIOLATES φ when h(x̄) |= X but h(x̄) ̸|= Y.
//
// GFDs are the special case where every literal has the form x.A = c or
// x.A = y.B; NGDs therefore catch everything GFDs/CFDs catch plus numeric
// inconsistencies. Validate() enforces the linear fragment — Theorem 3
// shows degree-2 expressions make static analyses undecidable.

#ifndef NGD_CORE_NGD_H_
#define NGD_CORE_NGD_H_

#include <string>
#include <vector>

#include "core/literal.h"
#include "core/pattern.h"

namespace ngd {

class Ngd {
 public:
  Ngd() = default;
  Ngd(std::string name, Pattern pattern, std::vector<Literal> x,
      std::vector<Literal> y)
      : name_(std::move(name)),
        pattern_(std::move(pattern)),
        x_(std::move(x)),
        y_(std::move(y)) {}

  const std::string& name() const { return name_; }
  const Pattern& pattern() const { return pattern_; }
  const std::vector<Literal>& X() const { return x_; }
  const std::vector<Literal>& Y() const { return y_; }

  /// Structural well-formedness + the NGD fragment:
  ///  - pattern non-empty, variables distinct;
  ///  - every literal variable index refers to a pattern node;
  ///  - every expression is LINEAR with constant divisors
  ///    (otherwise: InvalidArgument citing Theorem 3 undecidability).
  Status Validate() const;

  /// True iff φ lies in the GFD fragment of [23, 24]: only equalities
  /// between bare terms.
  bool IsGfd() const;

  /// True iff any literal uses arithmetic (+,-,*,/,abs) — the capability
  /// axis separating NGDs from GFDs in Exp-5.
  bool UsesArithmetic() const;

  /// True iff any literal uses a comparison other than '='.
  bool UsesComparison() const;

  std::string ToString(const Dictionary& label_dict,
                       const Dictionary& attr_dict) const;

 private:
  std::string name_;
  Pattern pattern_;
  std::vector<Literal> x_;
  std::vector<Literal> y_;
};

/// A rule set Σ.
class NgdSet {
 public:
  NgdSet() = default;
  explicit NgdSet(std::vector<Ngd> ngds) : ngds_(std::move(ngds)) {}

  void Add(Ngd ngd) { ngds_.push_back(std::move(ngd)); }
  size_t size() const { return ngds_.size(); }
  bool empty() const { return ngds_.empty(); }
  const Ngd& operator[](size_t i) const { return ngds_[i]; }
  const std::vector<Ngd>& ngds() const { return ngds_; }
  std::vector<Ngd>& ngds() { return ngds_; }

  /// d_Σ: max pattern diameter over the set (paper §6.1); localizable
  /// incremental detection explores d_Σ-neighborhoods of ΔG only.
  int MaxDiameter() const;

  Status Validate() const;

 private:
  std::vector<Ngd> ngds_;
};

}  // namespace ngd

#endif  // NGD_CORE_NGD_H_
