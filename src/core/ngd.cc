#include "core/ngd.h"

#include <algorithm>
#include <unordered_set>

namespace ngd {

Status Ngd::Validate() const {
  if (pattern_.NumNodes() == 0) {
    return Status::InvalidArgument("NGD '" + name_ + "': empty pattern");
  }
  std::unordered_set<std::string> vars;
  for (const auto& n : pattern_.nodes()) {
    if (n.var.empty()) {
      return Status::InvalidArgument("NGD '" + name_ +
                                     "': unnamed pattern node");
    }
    if (!vars.insert(n.var).second) {
      return Status::InvalidArgument("NGD '" + name_ +
                                     "': duplicate variable " + n.var);
    }
  }
  auto check_literals = [&](const std::vector<Literal>& lits,
                            const char* side) -> Status {
    for (const Literal& l : lits) {
      std::vector<int> used;
      l.CollectVars(&used);
      for (int v : used) {
        if (v < 0 || static_cast<size_t>(v) >= pattern_.NumNodes()) {
          return Status::InvalidArgument(
              "NGD '" + name_ + "': literal in " + side +
              " references variable index " + std::to_string(v) +
              " outside the pattern");
        }
      }
      if (!l.IsLinear()) {
        return Status::InvalidArgument(
            "NGD '" + name_ + "': non-linear expression in " + side +
            " (degree " + std::to_string(l.Degree()) +
            "); NGDs admit linear arithmetic only — satisfiability and "
            "implication are undecidable beyond degree 1 (Theorem 3)");
      }
    }
    return Status::OK();
  };
  NGD_RETURN_IF_ERROR(check_literals(x_, "X"));
  NGD_RETURN_IF_ERROR(check_literals(y_, "Y"));
  return Status::OK();
}

bool Ngd::IsGfd() const {
  auto all_gfd = [](const std::vector<Literal>& lits) {
    return std::all_of(lits.begin(), lits.end(),
                       [](const Literal& l) { return l.IsGfdLiteral(); });
  };
  return all_gfd(x_) && all_gfd(y_);
}

namespace {

bool ExprUsesArithmetic(const Expr& e) {
  switch (e.kind()) {
    case Expr::Kind::kIntConst:
    case Expr::Kind::kStrConst:
    case Expr::Kind::kVarAttr:
      return false;
    default:
      return true;
  }
}

}  // namespace

bool Ngd::UsesArithmetic() const {
  auto any = [](const std::vector<Literal>& lits) {
    return std::any_of(lits.begin(), lits.end(), [](const Literal& l) {
      return ExprUsesArithmetic(l.lhs()) || ExprUsesArithmetic(l.rhs());
    });
  };
  return any(x_) || any(y_);
}

bool Ngd::UsesComparison() const {
  auto any = [](const std::vector<Literal>& lits) {
    return std::any_of(lits.begin(), lits.end(), [](const Literal& l) {
      return l.op() != CmpOp::kEq;
    });
  };
  return any(x_) || any(y_);
}

std::string Ngd::ToString(const Dictionary& label_dict,
                          const Dictionary& attr_dict) const {
  std::string out = "ngd " + name_ + " {\n  match ";
  out += pattern_.ToString(label_dict);
  const auto var_names = pattern_.VarNames();
  out += "\n  where ";
  if (x_.empty()) {
    out += "true";
  } else {
    for (size_t i = 0; i < x_.size(); ++i) {
      if (i > 0) out += ", ";
      out += x_[i].ToString(var_names, attr_dict);
    }
  }
  out += "\n  then ";
  for (size_t i = 0; i < y_.size(); ++i) {
    if (i > 0) out += ", ";
    out += y_[i].ToString(var_names, attr_dict);
  }
  out += "\n}";
  return out;
}

int NgdSet::MaxDiameter() const {
  int d = 0;
  for (const auto& ngd : ngds_) {
    d = std::max(d, ngd.pattern().Diameter());
  }
  return d;
}

Status NgdSet::Validate() const {
  for (const auto& ngd : ngds_) {
    NGD_RETURN_IF_ERROR(ngd.Validate());
  }
  return Status::OK();
}

}  // namespace ngd
