#include "parallel/pinc_dect.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <optional>
#include <thread>
#include <unordered_map>

#include "graph/neighborhood.h"
#include "util/thread_annotations.h"
#include "util/timer.h"

namespace ngd {

namespace {

class PIncDectEngine {
 public:
  PIncDectEngine(const Graph& g, const NgdSet& sigma,
                 const UpdateBatch& batch, const PIncDectOptions& opts)
      : g_(g),
        sigma_(sigma),
        batch_(batch),
        opts_(opts),
        p_(std::max(1, opts.num_processors)),
        index_(g, batch),
        nc_(0),
        pool_(p_, &metrics_, opts.enable_steal && p_ > 1,
              opts.max_queue_depth),
        local_added_(p_),
        local_removed_(p_) {
    // Streaming results: each worker-local delta half spills under its
    // own prefix with an equal share of the budget; the merged delta
    // adopts the segments under ".add"/".rem" (see Run()).
    if (opts.spill != nullptr) {
      VioSpillOptions wopts = *opts.spill;
      wopts.budget_bytes = opts.spill->budget_bytes / static_cast<size_t>(p_);
      for (int i = 0; i < p_; ++i) {
        wopts.path_prefix =
            opts.spill->path_prefix + ".add.w" + std::to_string(i);
        local_added_[i].EnableSpill(wopts);
        wopts.path_prefix =
            opts.spill->path_prefix + ".rem.w" + std::to_string(i);
        local_removed_[i].EnableSpill(wopts);
      }
    }
    // Cancellation: one shared broadcast token (engine-owned when only a
    // deadline is given), one CancelCheck per worker.
    if (opts.cancel != nullptr || opts.deadline.armed()) {
      token_ = opts.cancel != nullptr ? opts.cancel : &owned_token_;
      checks_.reserve(p_);
      for (int i = 0; i < p_; ++i) checks_.emplace_back(token_, opts.deadline);
    }
    pending_ = std::make_unique<std::atomic<uint32_t>[]>(sigma.size());
    for (size_t r = 0; r < sigma.size(); ++r) {
      pending_[r].store(0, std::memory_order_relaxed);
    }
  }

  StatusOr<PIncDectResult> Run() {
    NGD_RETURN_IF_ERROR(ValidateForIncremental(sigma_));
    WallTimer timer;

    // Step 1: pivots, prefiltered by the per-rule affected area (rules
    // whose d_Q-ball cannot supply every pattern-node label spawn no
    // work units at all).
    std::vector<PivotTask> tasks = EnumeratePivotTasks(g_, sigma_, index_);
    std::optional<AffectedArea> area;
    if (opts_.affected_area_prefilter) {
      area.emplace(g_, sigma_, index_);
      tasks.erase(std::remove_if(tasks.begin(), tasks.end(),
                                 [&](const PivotTask& t) {
                                   return !area->RuleCanMatch(t.ngd_index);
                                 }),
                  tasks.end());
    }

    // Backend: the same resolution as IncDect. The base snapshot (and
    // the DeltaView over it) is immutable, so all p processors share it
    // read-only — it counts as replicated state, like N_C below.
    if (ResolveDeltaView(g_, index_, tasks, opts_.snapshot_mode,
                         opts_.base_snapshot != nullptr)) {
      const GraphSnapshot* base = opts_.base_snapshot;
      if (base == nullptr) {
        owned_base_.emplace(g_, GraphView::kOld);
        base = &*owned_base_;
      }
      dv_.emplace(*base, g_, batch_);
      acc_old_ = GraphAccessor(*dv_, GraphView::kOld);
      acc_new_ = GraphAccessor(*dv_, GraphView::kNew);
    } else {
      acc_old_ = GraphAccessor(g_, GraphView::kOld);
      acc_new_ = GraphAccessor(g_, GraphView::kNew);
    }

    // Step 2: candidate neighborhood N_C(ΔG, Σ) = union of d_Σ-balls
    // around update endpoints, over the union of both views (safe for
    // ΔVio+ and ΔVio- searches alike), replicated at all processors.
    std::vector<NodeId> seeds;
    for (const auto& u : index_.updates()) {
      seeds.push_back(u.edge.src);
      seeds.push_back(u.edge.dst);
    }
    const int d_sigma = sigma_.MaxDiameter();
    NodeSet ball_old = DHopNeighborhood(g_, seeds, d_sigma, GraphView::kOld);
    nc_ = DHopNeighborhood(g_, seeds, d_sigma, GraphView::kNew);
    for (NodeId v : ball_old.members()) nc_.Add(v);
    metrics_.replicated_nodes +=
        static_cast<uint64_t>(nc_.size()) * (p_ > 1 ? p_ - 1 : 0);
    metrics_.messages += p_ > 1 ? p_ : 0;  // one broadcast round

    // Plans per (NGD, pattern edge).
    for (const PivotTask& t : tasks) {
      int64_t key = PlanKey(t.ngd_index, t.pattern_edge);
      if (plans_.count(key) > 0) continue;
      const Ngd& ngd = sigma_[t.ngd_index];
      const PatternEdge& pe = ngd.pattern().edge(t.pattern_edge);
      std::vector<int> plan_seeds{pe.src};
      if (pe.dst != pe.src) plan_seeds.push_back(pe.dst);
      plans_.emplace(key, BuildMatchPlan(ngd.pattern(), std::move(plan_seeds),
                                         &ngd.X(), &ngd.Y()));
    }

    // Step 3: partition the pivots across BVio_i — fragment-affine when a
    // matching runtime is supplied (the unit starts where its pivot's
    // source lives), round-robin otherwise. Both are free initial
    // placements (seeds are born, not sent).
    {
      const FragmentRuntime* rt =
          opts_.runtime != nullptr && opts_.runtime->num_fragments() == p_
              ? opts_.runtime
              : nullptr;
      size_t i = 0;
      for (const PivotTask& t : tasks) {
        const Ngd& ngd = sigma_[t.ngd_index];
        const EffectiveUpdate& u = index_.updates()[t.update_index];
        const PatternEdge& pe = ngd.pattern().edge(t.pattern_edge);
        PWorkUnit unit;
        unit.ngd_index = t.ngd_index;
        unit.pattern_edge = t.pattern_edge;
        unit.update_index = t.update_index;
        unit.depth = 0;
        unit.binding.assign(ngd.pattern().NumNodes(), kInvalidNode);
        unit.binding[pe.src] = u.edge.src;
        unit.binding[pe.dst] = u.edge.dst;
        int target = static_cast<int>(i % p_);
        // New nodes created by ΔG postdate the partition; they fall back
        // to round-robin.
        if (rt != nullptr &&
            u.edge.src < rt->partition().fragment_of.size()) {
          target = rt->OwnerOf(u.edge.src);
        }
        unit.home_fragment = target;
        pending_[t.ngd_index].fetch_add(1, std::memory_order_relaxed);
        pool_.Seed(target, std::move(unit));
        ++i;
      }
    }

    // Step 4+5: workers expand (stealing when enabled); the caller thread
    // runs the skew balancer at its interval via the pool tick.
    {
      using namespace std::chrono;
      auto last_balance = steady_clock::now();
      // Workers hand their local delta halves to the guarded merge list
      // on their own threads as they exit the pool — an explicit critical
      // section instead of join-order visibility (see PDect).
      pool_.Run(
          [this](int worker, PWorkUnit& unit) { ProcessUnit(worker, unit); },
          [&]() {
            if (!opts_.enable_balance) return;
            auto now = steady_clock::now();
            if (duration_cast<milliseconds>(now - last_balance).count() <
                opts_.balance_interval_ms) {
              return;
            }
            last_balance = now;
            BalanceOnce();
          },
          token_, [this](int worker) { RetireWorker(worker); });
    }

    PIncDectResult result;
    // Per-worker deltas are globally disjoint (exactly-once canonical
    // emission), so the merges are rehash-free arena concatenations.
    // Result-side spill first, so the merged halves keep the caller's
    // ".add"/".rem" prefixes and full budget shares.
    if (opts_.spill != nullptr) {
      VioSpillOptions side = *opts_.spill;
      side.path_prefix = opts_.spill->path_prefix + ".add";
      result.delta.added.EnableSpill(side);
      side.path_prefix = opts_.spill->path_prefix + ".rem";
      result.delta.removed.EnableSpill(side);
    }
    {
      MutexLock lock(&merge_mu_);
      // Worker-order merge keeps the result arenas deterministic.
      std::sort(finished_.begin(), finished_.end(),
                [](const FinishedDelta& a, const FinishedDelta& b) {
                  return a.worker < b.worker;
                });
      for (auto& f : finished_) {
        result.delta.added.MergeDisjointUnchecked(std::move(f.added));
        result.delta.removed.MergeDisjointUnchecked(std::move(f.removed));
      }
      finished_.clear();
    }
    result.candidate_neighborhood_nodes = nc_.size();
    result.messages = metrics_.messages.load();
    result.replicated_nodes = metrics_.replicated_nodes.load();
    result.work_units = metrics_.work_units.load();
    result.splits = metrics_.splits.load();
    result.balance_moves = metrics_.balance_moves.load();
    result.steals = metrics_.steals.load();
    result.elapsed_seconds = timer.ElapsedSeconds();
    // Per-rule completion: units retire their pending count only when
    // fully processed, so anything drained unprocessed by a cancelled
    // pool — or aborted mid-expansion — leaves its rule incomplete.
    DetectRunInfo local_info;
    DetectRunInfo* info =
        opts_.run_info != nullptr ? opts_.run_info : &local_info;
    info->StartFull(sigma_.size());
    for (size_t r = 0; r < sigma_.size(); ++r) {
      if (pending_[r].load(std::memory_order_relaxed) != 0) {
        info->rule_completed[r] = 0;
        info->truncated = true;
      }
    }
    result.truncated = info->truncated;
    return result;
  }

 private:
  static int64_t PlanKey(int ngd_index, int pattern_edge) {
    return (static_cast<int64_t>(ngd_index) << 32) |
           static_cast<uint32_t>(pattern_edge);
  }

  const GraphAccessor& AccessorFor(GraphView view) const {
    return view == GraphView::kNew ? acc_new_ : acc_old_;
  }

  void BalanceOnce() {
    std::vector<size_t> sizes = pool_.QueueSizes();
    std::vector<double> skew = ComputeSkewness(sizes);
    std::vector<int> receivers;
    for (int i = 0; i < p_; ++i) {
      if (skew[i] < opts_.receiver_threshold) receivers.push_back(i);
    }
    if (receivers.empty()) return;
    for (int i = 0; i < p_; ++i) {
      if (skew[i] <= opts_.skew_threshold) continue;
      std::vector<PWorkUnit> moved = pool_.HarvestFront(i, sizes[i] / 2);
      if (moved.empty()) continue;
      metrics_.balance_moves += moved.size();
      metrics_.messages += moved.size();
      // Distribute round-robin over the lightly loaded processors.
      std::vector<std::vector<PWorkUnit>> shares(receivers.size());
      for (size_t k = 0; k < moved.size(); ++k) {
        shares[k % receivers.size()].push_back(std::move(moved[k]));
      }
      for (size_t r = 0; r < receivers.size(); ++r) {
        if (!shares[r].empty()) {
          pool_.PushMany(receivers[r], std::move(shares[r]));
        }
      }
    }
  }

  void ProcessUnit(int worker, PWorkUnit& unit) {
    CancelCheck* check = token_ != nullptr ? &checks_[worker] : nullptr;
    if (check != nullptr && check->ShouldStop()) {
      return;  // dropped: the unit's pending count keeps its rule incomplete
    }
    metrics_.work_units.fetch_add(1, std::memory_order_relaxed);
    const Ngd& ngd = sigma_[unit.ngd_index];
    const Pattern& pattern = ngd.pattern();
    const MatchPlan& plan =
        plans_.at(PlanKey(unit.ngd_index, unit.pattern_edge));
    const EffectiveUpdate& u = index_.updates()[unit.update_index];
    const GraphView view =
        u.kind == UpdateKind::kInsert ? GraphView::kNew : GraphView::kOld;
    // The DeltaView backend gets the span-check filter (base edges admit
    // without a hash probe); the live backend keeps the classic one.
    PivotEdgeFilter live_filter(&index_, u.kind, unit.update_index);
    DeltaViewPivotEdgeFilter dv_filter(dv_.has_value() ? &*dv_ : nullptr,
                                       &index_, u.kind, unit.update_index);
    const EdgeFilter& filter =
        dv_.has_value() ? static_cast<const EdgeFilter&>(dv_filter)
                        : static_cast<const EdgeFilter&>(live_filter);

    // Seed validation for fresh pivot units (split/child units have
    // already passed it).
    if (unit.depth == 0 && unit.slice_begin < 0) {
      if (!ValidateSeeds(plan, pattern, unit, view, filter)) {
        Retire(unit);  // fully processed: the pivot never matched
        return;
      }
    }
    ExpandUnit(worker, unit, plan, pattern, ngd, u.kind, view, filter, check);
    if (check == nullptr || !check->Stopped()) Retire(unit);
  }

  /// A unit retires only on full processing; dropped or aborted units
  /// leave their rule's pending count nonzero → incomplete.
  void Retire(const PWorkUnit& unit) {
    pending_[unit.ngd_index].fetch_sub(1, std::memory_order_relaxed);
  }

  bool ValidateSeeds(const MatchPlan& plan, const Pattern& pattern,
                     PWorkUnit& unit, GraphView view,
                     const EdgeFilter& filter) {
    const GraphAccessor& acc = AccessorFor(view);
    for (int s : plan.seeds) {
      const NodeId v = unit.binding[s];
      if (!acc.NodeMatchesLabel(v, pattern.node(s).label)) return false;
      if (!nc_.Contains(v)) return false;
    }
    for (int ce : plan.seed_check_edges) {
      const PatternEdge& pe = pattern.edge(ce);
      const NodeId s = unit.binding[pe.src];
      const NodeId d = unit.binding[pe.dst];
      if (!acc.HasEdge(s, d, pe.label)) return false;
      if (!filter.Admit(ce, s, d, pe.label)) return false;
    }
    const Ngd& ngd = sigma_[unit.ngd_index];
    for (int i : plan.seed_ready_x) {
      if (EvalLiteral(acc, ngd.X()[i], unit.binding) == Truth::kFalse) {
        return false;
      }
    }
    for (int i : plan.seed_ready_y) {
      ++unit.y_ready;
      if (EvalLiteral(acc, ngd.Y()[i], unit.binding) == Truth::kFalse) {
        unit.y_false = true;
      }
    }
    if (!unit.y_false && unit.y_ready == ngd.Y().size()) return false;
    return true;
  }

  void ExpandUnit(int worker, PWorkUnit& unit, const MatchPlan& plan,
                  const Pattern& pattern, const Ngd& ngd, UpdateKind kind,
                  GraphView view, const EdgeFilter& filter,
                  CancelCheck* check) {
    if (check != nullptr && check->ShouldStop()) return;
    if (static_cast<size_t>(unit.depth) == plan.steps.size()) {
      EmitIfCanonical(worker, unit, pattern, kind);
      return;
    }
    const GraphAccessor& acc = AccessorFor(view);
    const ExpansionStep& step = plan.steps[unit.depth];
    const PatternEdge& anchor_edge = pattern.edge(step.anchor_edge);
    const NodeId anchor = unit.binding[step.anchor_node];
    // The logical adjacency list being partitioned: the raw overlay
    // adjacency on the live backend, the base label range plus delta
    // entries on the DeltaView (see GraphAccessor::NeighborSeqLen).
    const size_t seq_len =
        acc.NeighborSeqLen(anchor, step.anchor_out, anchor_edge.label);

    size_t begin = 0;
    size_t end = seq_len;
    if (unit.slice_begin >= 0) {
      begin = static_cast<size_t>(unit.slice_begin);
      end = std::min(static_cast<size_t>(unit.slice_end), seq_len);
    } else if (opts_.enable_split && p_ > 1 &&
               seq_len >= opts_.min_split_adjacency) {
      // Hybrid cost model: sequential |adj| vs C·(k+1) + |adj|/p, where k
      // is the number of already-matched pattern nodes.
      const double k = static_cast<double>(plan.seeds.size() + unit.depth);
      const double seq_cost = static_cast<double>(seq_len);
      const double par_cost =
          opts_.latency_c * (k + 1.0) +
          static_cast<double>(seq_len) / static_cast<double>(p_);
      if (par_cost < seq_cost) {
        SplitUnit(worker, unit, seq_len);
        return;
      }
    }

    const LabelId want_label = pattern.node(step.node).label;
    acc.ForEachNeighborSlice(
        anchor, step.anchor_out, anchor_edge.label, begin, end,
        [&](NodeId cand) {
          // Bounded response even on a hub anchor's long adjacency scan.
          if (check != nullptr && check->ShouldStop()) return false;
          if (!acc.NodeMatchesLabel(cand, want_label)) return true;
          if (!nc_.Contains(cand)) return true;
          {
            const NodeId src = step.anchor_out ? anchor : cand;
            const NodeId dst = step.anchor_out ? cand : anchor;
            if (!filter.Admit(step.anchor_edge, src, dst,
                              anchor_edge.label)) {
              return true;
            }
          }
          for (int ce : step.check_edges) {
            const PatternEdge& pe = pattern.edge(ce);
            const NodeId s =
                pe.src == step.node ? cand : unit.binding[pe.src];
            const NodeId d =
                pe.dst == step.node ? cand : unit.binding[pe.dst];
            if (!acc.HasEdge(s, d, pe.label) ||
                !filter.Admit(ce, s, d, pe.label)) {
              return true;
            }
          }

          PWorkUnit child;
          child.ngd_index = unit.ngd_index;
          child.pattern_edge = unit.pattern_edge;
          child.update_index = unit.update_index;
          child.home_fragment = unit.home_fragment;
          child.depth = unit.depth + 1;
          child.y_false = unit.y_false;
          child.y_ready = unit.y_ready;
          child.binding = unit.binding;
          child.binding[step.node] = cand;

          bool prune = false;
          for (int i : step.ready_x) {
            if (EvalLiteral(acc, ngd.X()[i], child.binding) ==
                Truth::kFalse) {
              prune = true;
              break;
            }
          }
          if (!prune) {
            for (int i : step.ready_y) {
              ++child.y_ready;
              if (EvalLiteral(acc, ngd.Y()[i], child.binding) ==
                  Truth::kFalse) {
                child.y_false = true;
              }
            }
            if (!child.y_false && child.y_ready == ngd.Y().size()) {
              prune = true;
            }
          }
          if (prune) return true;

          if (static_cast<size_t>(child.depth) == plan.steps.size()) {
            EmitIfCanonical(worker, child, pattern, kind);
          } else {
            pending_[child.ngd_index].fetch_add(1, std::memory_order_relaxed);
            pool_.SpawnLocal(worker, std::move(child));
          }
          return true;
        });
  }

  void SplitUnit(int worker, const PWorkUnit& unit, size_t seq_len) {
    metrics_.splits.fetch_add(1, std::memory_order_relaxed);
    metrics_.messages.fetch_add(p_, std::memory_order_relaxed);
    const size_t chunk = (seq_len + p_ - 1) / p_;
    for (int i = 0; i < p_; ++i) {
      const size_t b = static_cast<size_t>(i) * chunk;
      if (b >= seq_len) break;
      PWorkUnit slice = unit;
      slice.slice_begin = static_cast<int32_t>(b);
      slice.slice_end = static_cast<int32_t>(std::min(b + chunk, seq_len));
      pending_[slice.ngd_index].fetch_add(1, std::memory_order_relaxed);
      // Spawn, not Seed: mid-run broadcasts respect the depth bound, so a
      // saturated receiver's slice runs inline here (N_C is replicated —
      // any worker can expand any unit).
      pool_.Spawn(worker, i, std::move(slice));
    }
  }

  /// Emits a full-depth unit's binding into the worker-local delta.
  void EmitIfCanonical(int worker, PWorkUnit& unit, const Pattern& pattern,
                       UpdateKind kind) {
    const bool canonical =
        dv_.has_value()
            ? IsCanonicalPivot(*dv_, pattern, unit.binding, index_, kind,
                               unit.update_index, unit.pattern_edge)
            : IsCanonicalPivot(g_, pattern, unit.binding, index_, kind,
                               unit.update_index, unit.pattern_edge);
    if (!canonical) {
      return;
    }
    // Minimal-pivot canonicality emits each match exactly once per
    // update kind, and disjoint slice splits keep that one emission on a
    // single worker — the append never needs the hash probe.
    VioSet& target = kind == UpdateKind::kInsert ? local_added_[worker]
                                                 : local_removed_[worker];
    target.AppendUnchecked(unit.ngd_index, unit.binding.data(),
                           unit.binding.size());
  }

  /// Pool-exit handoff (see PDect's RetireWorker): worker `w` moves both
  /// halves of its finished delta into the guarded merge list.
  void RetireWorker(int worker) NGD_EXCLUDES(merge_mu_) {
    MutexLock lock(&merge_mu_);
    finished_.push_back(FinishedDelta{worker, std::move(local_added_[worker]),
                                      std::move(local_removed_[worker])});
  }

  const Graph& g_;
  const NgdSet& sigma_;
  const UpdateBatch& batch_;
  const PIncDectOptions opts_;
  const int p_;
  UpdateIndex index_;
  std::optional<GraphSnapshot> owned_base_;
  std::optional<DeltaView> dv_;
  GraphAccessor acc_old_;
  GraphAccessor acc_new_;
  NodeSet nc_;
  std::unordered_map<int64_t, MatchPlan> plans_;
  WorkStealingPool<PWorkUnit> pool_;
  /// Worker-local delta halves: slot i is thread-confined to worker i
  /// while the pool runs (inline runs execute on the producing worker),
  /// then handed off via RetireWorker.
  std::vector<VioSet> local_added_;
  std::vector<VioSet> local_removed_;
  /// One finished worker's delta, moved under merge_mu_ at pool exit.
  struct FinishedDelta {
    int worker;
    VioSet added;
    VioSet removed;
  };
  Mutex merge_mu_;
  std::vector<FinishedDelta> finished_ NGD_GUARDED_BY(merge_mu_);
  ClusterMetrics metrics_;
  /// Cancellation state (null token_ = not cancellable) and per-rule
  /// outstanding work-unit counts (see PDect for the accounting scheme).
  CancelToken owned_token_;
  CancelToken* token_ = nullptr;
  std::vector<CancelCheck> checks_;  // one per worker
  std::unique_ptr<std::atomic<uint32_t>[]> pending_;
};

}  // namespace

StatusOr<PIncDectResult> PIncDect(const Graph& g, const NgdSet& sigma,
                                  const UpdateBatch& batch,
                                  const PIncDectOptions& opts) {
  // Σ-optimizer wiring: validate the full Σ first (rejection behavior
  // matches the oracle), then run the whole pivot/replicate/balance
  // pipeline on the minimized set and remap ΔVio back to Σ.
  if (opts.minimize_sigma != MinimizeMode::kNever) {
    NGD_RETURN_IF_ERROR(ValidateForIncremental(sigma));
    PIncDectOptions inner;
    MinimizedSigma m;
    if (BeginMinimizedDetection(sigma, g.schema(), opts, &inner, &m)) {
      DetectRunInfo inner_info;
      inner.run_info = &inner_info;
      auto result = PIncDect(g, m.sigma, batch, inner);
      if (!result.ok()) return result;
      result->delta = RemapDelta(std::move(result->delta), m.report.kept);
      if (opts.run_info != nullptr) {
        RemapRunInfo(inner_info, m.report, sigma.size(), opts.run_info);
      }
      return result;
    }
  }

  PIncDectEngine engine(g, sigma, batch, opts);
  return engine.Run();
}

}  // namespace ngd
