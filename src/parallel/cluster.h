// Simulated cluster runtime for the parallel detection algorithms.
//
// The paper runs on up to 20 machines exchanging messages; ngdlib
// simulates p processors with p worker threads, per-worker work-unit
// deques (BVio_i), and explicit communication accounting. The knobs the
// paper studies — latency constant C (Fig 4(m)) and balancing interval
// intvl (Fig 4(n)) — are first-class here: C steers the split/local
// decision in the cost model, intvl the balancer's wake-up period.

#ifndef NGD_PARALLEL_CLUSTER_H_
#define NGD_PARALLEL_CLUSTER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

namespace ngd {

/// Communication / balancing counters (all simulated-message based).
struct ClusterMetrics {
  std::atomic<uint64_t> messages{0};        ///< simulated messages sent
  std::atomic<uint64_t> replicated_nodes{0};///< N_C replication volume
  std::atomic<uint64_t> work_units{0};      ///< units processed
  std::atomic<uint64_t> splits{0};          ///< hybrid splits performed
  std::atomic<uint64_t> balance_moves{0};   ///< units moved by balancer
};

/// A mutex-guarded deque of work units. Owners push/pop at the back
/// (depth-first locality); the balancer harvests from the front (the
/// shallowest, largest-subtree units travel best).
template <typename T>
class WorkQueue {
 public:
  void Push(T unit) {
    std::lock_guard<std::mutex> lock(mu_);
    items_.push_back(std::move(unit));
  }

  void PushMany(std::vector<T>&& units) {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& u : units) items_.push_back(std::move(u));
  }

  bool TryPopBack(T* out) {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return false;
    *out = std::move(items_.back());
    items_.pop_back();
    return true;
  }

  /// Harvests up to `max_units` from the front (balancer side).
  std::vector<T> HarvestFront(size_t max_units) {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<T> out;
    size_t take = std::min(max_units, items_.size());
    out.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      out.push_back(std::move(items_.front()));
      items_.pop_front();
    }
    return out;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

 private:
  mutable std::mutex mu_;
  std::deque<T> items_;
};

}  // namespace ngd

#endif  // NGD_PARALLEL_CLUSTER_H_
