// Simulated cluster runtime for the parallel detection algorithms.
//
// The paper runs on up to 20 machines exchanging messages; ngdlib
// simulates p processors with p worker threads, per-worker work-unit
// deques (BVio_i), and explicit communication accounting. The knobs the
// paper studies — latency constant C (Fig 4(m)) and balancing interval
// intvl (Fig 4(n)) — are first-class here: C steers the split/local
// decision in the cost model, intvl the balancer's wake-up period.
//
// Three layers:
//   - WorkQueue<T>: one processor's deque of work units.
//   - WorkStealingPool<T>: p queues + p worker threads with in-flight
//     termination, cross-fragment forwarding, and idle-time work
//     stealing; every unit that changes queues is charged one simulated
//     message.
//   - FragmentRuntime: the fragmented graph itself — p FragmentSnapshots
//     (induced CSR + halo, parallel/fragment.h) built from one Partition,
//     with per-fragment warm-start persistence.
//
// PDect runs fragment-native on a FragmentRuntime + WorkStealingPool;
// PIncDect uses the pool with fragment ownership for pivot placement and
// the paper's skew balancer layered on top (its candidate neighborhood
// N_C is replicated at every processor, so its units run anywhere).

#ifndef NGD_PARALLEL_CLUSTER_H_
#define NGD_PARALLEL_CLUSTER_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "parallel/fragment.h"
#include "util/cancel.h"
#include "util/thread_annotations.h"

namespace ngd {

/// Communication / balancing counters (all simulated-message based).
struct ClusterMetrics {
  std::atomic<uint64_t> messages{0};        ///< simulated messages sent
  std::atomic<uint64_t> replicated_nodes{0};///< halo / N_C replication volume
  std::atomic<uint64_t> work_units{0};      ///< units processed
  std::atomic<uint64_t> splits{0};          ///< hybrid splits performed
  std::atomic<uint64_t> forwards{0};        ///< units shipped to their owner
  std::atomic<uint64_t> steals{0};          ///< units taken by idle workers
  std::atomic<uint64_t> balance_moves{0};   ///< units moved by balancer
  std::atomic<uint64_t> peak_queue_depth{0};///< deepest queue ever observed
  std::atomic<uint64_t> inline_runs{0};     ///< spawns run inline (backpressure)
};

/// Plain-value copy of ClusterMetrics for results and JSON emission.
struct ClusterMetricsSnapshot {
  uint64_t messages = 0;
  uint64_t replicated_nodes = 0;
  uint64_t work_units = 0;
  uint64_t splits = 0;
  uint64_t forwards = 0;
  uint64_t steals = 0;
  uint64_t balance_moves = 0;
  uint64_t peak_queue_depth = 0;
  uint64_t inline_runs = 0;
};

inline ClusterMetricsSnapshot SnapshotOf(const ClusterMetrics& m) {
  ClusterMetricsSnapshot s;
  s.messages = m.messages.load(std::memory_order_relaxed);
  s.replicated_nodes = m.replicated_nodes.load(std::memory_order_relaxed);
  s.work_units = m.work_units.load(std::memory_order_relaxed);
  s.splits = m.splits.load(std::memory_order_relaxed);
  s.forwards = m.forwards.load(std::memory_order_relaxed);
  s.steals = m.steals.load(std::memory_order_relaxed);
  s.balance_moves = m.balance_moves.load(std::memory_order_relaxed);
  s.peak_queue_depth = m.peak_queue_depth.load(std::memory_order_relaxed);
  s.inline_runs = m.inline_runs.load(std::memory_order_relaxed);
  return s;
}

/// A mutex-guarded deque of work units. Owners push/pop at the back
/// (depth-first locality); the balancer and thieves harvest from the
/// front (the shallowest, largest-subtree units travel best).
template <typename T>
class WorkQueue {
 public:
  /// Returns the queue depth after the push (the backpressure signal).
  size_t Push(T unit) NGD_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    items_.push_back(std::move(unit));
    return items_.size();
  }

  size_t PushMany(std::vector<T>&& units) NGD_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    for (auto& u : units) items_.push_back(std::move(u));
    return items_.size();
  }

  bool TryPopBack(T* out) NGD_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    if (items_.empty()) return false;
    *out = std::move(items_.back());
    items_.pop_back();
    return true;
  }

  /// Harvests up to `max_units` from the front (balancer/thief side).
  std::vector<T> HarvestFront(size_t max_units) NGD_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    std::vector<T> out;
    size_t take = std::min(max_units, items_.size());
    out.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      out.push_back(std::move(items_.front()));
      items_.pop_front();
    }
    return out;
  }

  size_t size() const NGD_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return items_.size();
  }

 private:
  mutable Mutex mu_;
  std::deque<T> items_ NGD_GUARDED_BY(mu_);
};

/// p work queues + p workers, with unit-count termination, work stealing
/// and message accounting. Every unit that crosses a queue boundary after
/// its initial placement — forwarded to an owner fragment, stolen by an
/// idle worker, or moved by an external balancer — is one simulated
/// message; locally spawned children are free.
template <typename T>
class WorkStealingPool {
 public:
  /// `max_queue_depth` bounds queue state with producer backpressure:
  /// once a target queue holds that many units, a mid-run Spawn/Forward
  /// executes its unit inline on the calling worker instead of
  /// enqueueing it (0 = unbounded). The bound is soft by at most one
  /// concurrent producer per queue (the size check and the push are not
  /// one atomic step — peak_queue_depth records the honest high-water
  /// mark). Without it, a starved consumer (e.g. p threads on one core)
  /// lets splits/steals accumulate unbounded queue state.
  WorkStealingPool(int p, ClusterMetrics* metrics, bool enable_steal,
                   size_t max_queue_depth = 0)
      : queues_(p),
        metrics_(metrics),
        enable_steal_(enable_steal),
        max_queue_depth_(max_queue_depth) {}

  int num_queues() const { return static_cast<int>(queues_.size()); }

  /// Initial placement of a unit on fragment `target`'s queue (no
  /// message: seeds are born where their data lives). Exempt from the
  /// depth bound — before Run there is no consumer to starve and no
  /// worker to run inline on; the seed volume itself bounds the queues.
  void Seed(int target, T unit) {
    in_flight_.fetch_add(1, std::memory_order_relaxed);
    NotePeak(queues_[target].Push(std::move(unit)));
  }

  /// Mid-run spawn of a unit onto `target`'s queue, subject to the depth
  /// bound: a saturated target pushes back and the unit runs inline on
  /// the calling worker instead. Correct for the same reason stealing
  /// is: any worker may process any unit (a unit carries its home
  /// fragment).
  void Spawn(int calling_worker, int target, T unit) {
    if (ShouldInline(target)) {
      RunInline(calling_worker, unit);
      return;
    }
    Seed(target, std::move(unit));
  }

  /// Child unit spawned onto the processing worker's own queue.
  void SpawnLocal(int worker, T unit) { Spawn(worker, worker, std::move(unit)); }

  /// Ships a unit to another fragment's queue: one simulated message
  /// carrying the partial match. A saturated target pushes back like
  /// Spawn — the unit runs inline on the calling worker (reading the
  /// target fragment the way a thief would), with no message charged.
  void Forward(int calling_worker, int target, T unit) {
    if (ShouldInline(target)) {
      RunInline(calling_worker, unit);
      return;
    }
    metrics_->forwards.fetch_add(1, std::memory_order_relaxed);
    metrics_->messages.fetch_add(1, std::memory_order_relaxed);
    Seed(target, std::move(unit));
  }

  std::vector<size_t> QueueSizes() const {
    std::vector<size_t> sizes(queues_.size());
    for (size_t i = 0; i < queues_.size(); ++i) sizes[i] = queues_[i].size();
    return sizes;
  }

  /// Balancer primitives: moved units stay in flight; the caller charges
  /// its own metrics (balance_moves + messages).
  std::vector<T> HarvestFront(int from, size_t max_units) {
    return queues_[from].HarvestFront(max_units);
  }
  void PushMany(int to, std::vector<T>&& units) {
    NotePeak(queues_[to].PushMany(std::move(units)));
  }

  /// Runs `process(worker, unit)` on p workers until every unit (and
  /// every unit they spawn) has drained. `tick()` runs on the calling
  /// thread every ~200µs while workers are live — the balancer hook.
  /// `cancel` (optional): once it trips, remaining queued units are
  /// drained *without* processing, so a cancelled run still terminates
  /// through the normal in-flight accounting — engines report whatever
  /// their workers completed, with the truncation marked.
  /// `worker_finish` (optional) runs on each worker's own thread exactly
  /// once, after that worker has processed its last unit — the hook
  /// engines use to hand worker-local result sets to a mutex-guarded
  /// merge list instead of relying on join-order visibility.
  template <typename ProcessFn, typename TickFn>
  void Run(ProcessFn&& process, TickFn&& tick,
           const CancelToken* cancel = nullptr,
           const std::function<void(int)>& worker_finish = {}) {
    done_.store(false, std::memory_order_release);
    // Stored so backpressured Spawn/Forward can execute units inline on
    // the producing worker. The process fn must tolerate re-entry (a unit
    // spawning a unit that runs inline) — recursion depth is bounded by
    // the expansion plan's depth.
    process_ = [&process](int worker, T& unit) { process(worker, unit); };
    std::vector<std::thread> workers;
    workers.reserve(queues_.size());
    for (int i = 0; i < num_queues(); ++i) {
      workers.emplace_back([this, i, &process, cancel, &worker_finish]() {
        WorkerLoop(i, process, cancel);
        if (worker_finish) worker_finish(i);
      });
    }
    while (in_flight_.load(std::memory_order_acquire) > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      tick();
    }
    done_.store(true, std::memory_order_release);
    for (auto& w : workers) w.join();
    process_ = nullptr;
  }

 private:
  bool ShouldInline(int target) const {
    return max_queue_depth_ > 0 && process_ != nullptr &&
           queues_[target].size() >= max_queue_depth_;
  }

  /// Executes a pushed-back unit on the calling worker's thread, outside
  /// any queue: no in_flight_ bump (it was never enqueued), no message
  /// (nothing crossed a queue boundary). The process fn does its own
  /// cancel check and work_units accounting, same as the queued path.
  void RunInline(int calling_worker, T& unit) {
    metrics_->inline_runs.fetch_add(1, std::memory_order_relaxed);
    process_(calling_worker, unit);
  }

  void NotePeak(size_t depth) {
    uint64_t prev = metrics_->peak_queue_depth.load(std::memory_order_relaxed);
    while (prev < depth &&
           !metrics_->peak_queue_depth.compare_exchange_weak(
               prev, depth, std::memory_order_relaxed)) {
    }
  }

  template <typename ProcessFn>
  void WorkerLoop(int worker, ProcessFn& process, const CancelToken* cancel) {
    while (true) {
      T unit;
      if (queues_[worker].TryPopBack(&unit)) {
        if (cancel == nullptr || !cancel->IsCancelled()) {
          process(worker, unit);
        }
        in_flight_.fetch_sub(1, std::memory_order_acq_rel);
        continue;
      }
      if (enable_steal_ && TrySteal(worker)) continue;
      if (done_.load(std::memory_order_acquire)) return;
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }

  /// Steals half of the longest other queue (front side) into the idle
  /// worker's queue; each stolen unit is one simulated message.
  bool TrySteal(int worker) {
    int victim = -1;
    size_t longest = 0;
    for (int i = 0; i < num_queues(); ++i) {
      if (i == worker) continue;
      const size_t s = queues_[i].size();
      if (s > longest) {
        longest = s;
        victim = i;
      }
    }
    if (victim < 0) return false;
    std::vector<T> moved =
        queues_[victim].HarvestFront(std::max<size_t>(1, longest / 2));
    if (moved.empty()) return false;
    metrics_->steals.fetch_add(moved.size(), std::memory_order_relaxed);
    metrics_->messages.fetch_add(moved.size(), std::memory_order_relaxed);
    NotePeak(queues_[worker].PushMany(std::move(moved)));
    return true;
  }

  std::vector<WorkQueue<T>> queues_;
  ClusterMetrics* metrics_;
  const bool enable_steal_;
  const size_t max_queue_depth_;
  std::function<void(int, T&)> process_;
  std::atomic<size_t> in_flight_{0};
  std::atomic<bool> done_{false};
};

/// The fragmented graph: p FragmentSnapshots over one Partition. Owns the
/// per-fragment CSRs (built in parallel) and answers ownership queries.
/// Thread-compatible by immutability: every member is written during
/// construction (or Load) and only read afterwards, so all p workers share
/// a runtime with no capability to hold — the thread-safety analysis has
/// nothing to check here by design;
/// per-call engines own their ClusterMetrics and charge replication from
/// total_halo_nodes(). A runtime outlives rule sets whose max pattern
/// diameter fits halo_hops(), so benchmarks and the future ngdd daemon
/// build (or Load) it once and amortize across detection calls.
class FragmentRuntime {
 public:
  /// Partitions `view` of `g` into p fragments (label/degree-aware LDG)
  /// and builds every FragmentSnapshot with `halo_hops`-hop halos.
  FragmentRuntime(const Graph& g, int p, GraphView view, int halo_hops,
                  const PartitionOptions& popts = {});

  /// Builds fragments over a caller-supplied partition.
  FragmentRuntime(const Graph& g, Partition part, GraphView view,
                  int halo_hops);

  int num_fragments() const { return static_cast<int>(fragments_.size()); }
  GraphView view() const { return view_; }
  int halo_hops() const { return halo_hops_; }
  const Partition& partition() const { return partition_; }
  const FragmentSnapshot& fragment(int f) const { return fragments_[f]; }
  int OwnerOf(NodeId v) const { return partition_.fragment_of[v]; }

  /// Σ_f |halo(f)| — the honest replicated_nodes figure.
  uint64_t total_halo_nodes() const;

  /// Warm-start persistence: fragment f goes to "<prefix>.f<f>.ngdfrag".
  [[nodiscard]] Status Save(const std::string& prefix) const;
  /// Loads p fragment files saved by Save, revalidating that they form a
  /// consistent fragmentation (every node owned exactly once, matching
  /// halo depth/view). Partition stats (boundary sets, crossing edges)
  /// are reconstructed from the fragment CSRs — exact when halo_hops >= 1.
  [[nodiscard]] static StatusOr<FragmentRuntime> Load(const std::string& prefix,
                                                      int p, SchemaPtr schema);

 private:
  FragmentRuntime() = default;

  GraphView view_ = GraphView::kNew;
  int halo_hops_ = 0;
  Partition partition_;
  std::vector<FragmentSnapshot> fragments_;
};

}  // namespace ngd

#endif  // NGD_PARALLEL_CLUSTER_H_
