#include "parallel/partitioner.h"

#include <algorithm>
#include <cassert>

namespace ngd {

PartitionResult PartitionGraph(const Graph& g, int p) {
  assert(p >= 1);
  PartitionResult result;
  const size_t n = g.NumNodes();
  result.fragment_of.assign(n, -1);
  result.fragment_sizes.assign(p, 0);
  const double capacity =
      static_cast<double>(n) / p + 1.0;  // slack keeps placement feasible

  std::vector<double> score(p);
  for (NodeId v = 0; v < n; ++v) {
    std::fill(score.begin(), score.end(), 0.0);
    auto tally = [&](const AdjEntry& e) {
      if (!EdgeInView(e.state, GraphView::kNew)) return;
      if (e.other < v && result.fragment_of[e.other] >= 0) {
        score[result.fragment_of[e.other]] += 1.0;
      }
    };
    for (const auto& e : g.OutEdges(v)) tally(e);
    for (const auto& e : g.InEdges(v)) tally(e);

    int best = 0;
    double best_score = -1.0;
    for (int f = 0; f < p; ++f) {
      double penalty =
          1.0 - static_cast<double>(result.fragment_sizes[f]) / capacity;
      if (penalty <= 0.0) continue;  // fragment full
      double s = (score[f] + 0.01) * penalty;  // +eps: ties by capacity
      if (s > best_score) {
        best_score = s;
        best = f;
      }
    }
    result.fragment_of[v] = best;
    ++result.fragment_sizes[best];
  }

  for (NodeId v = 0; v < n; ++v) {
    for (const auto& e : g.OutEdges(v)) {
      if (!EdgeInView(e.state, GraphView::kNew)) continue;
      if (result.fragment_of[v] != result.fragment_of[e.other]) {
        ++result.crossing_edges;
      }
    }
  }
  return result;
}

}  // namespace ngd
