#include "parallel/partitioner.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace ngd {

Partition PartitionGraph(const Graph& g, int p, GraphView view,
                         const PartitionOptions& opts) {
  assert(p >= 1);
  Partition result;
  result.num_fragments = p;
  const size_t n = g.NumNodes();
  result.fragment_of.assign(n, -1);
  result.fragment_sizes.assign(p, 0);
  result.members.resize(p);
  result.boundary.resize(p);
  const double capacity = opts.capacity > 0.0
                              ? opts.capacity
                              : static_cast<double>(n) / p + 1.0;

  // Stream order: descending degree (ties by id) places hubs first, so
  // they spread over fragments while all fragments are still empty and
  // their spokes then follow them via the neighbor score.
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), NodeId{0});
  if (opts.degree_order) {
    std::vector<uint32_t> degree(n, 0);
    for (NodeId v = 0; v < n; ++v) {
      for (const auto& e : g.OutEdges(v)) {
        if (!EdgeInView(e.state, view)) continue;
        ++degree[v];
        ++degree[e.other];
      }
    }
    std::stable_sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
      return degree[a] > degree[b];
    });
  }

  // Per-fragment per-label population for the affinity bonus; sized
  // lazily only when label awareness is on.
  const size_t num_labels = g.schema()->labels().size();
  std::vector<uint32_t> label_count;
  if (opts.label_affinity > 0.0 && num_labels > 0) {
    label_count.assign(static_cast<size_t>(p) * num_labels, 0);
  }

  std::vector<double> score(p);
  for (NodeId v : order) {
    std::fill(score.begin(), score.end(), 0.0);
    auto tally = [&](const AdjEntry& e) {
      if (!EdgeInView(e.state, view)) return;
      if (result.fragment_of[e.other] >= 0) {
        score[result.fragment_of[e.other]] += 1.0;
      }
    };
    for (const auto& e : g.OutEdges(v)) tally(e);
    for (const auto& e : g.InEdges(v)) tally(e);
    if (!label_count.empty()) {
      const LabelId l = g.NodeLabel(v);
      for (int f = 0; f < p; ++f) {
        const double placed =
            static_cast<double>(result.fragment_sizes[f]) + 1.0;
        score[f] += opts.label_affinity *
                    (label_count[static_cast<size_t>(f) * num_labels + l] /
                     placed);
      }
    }

    int best = -1;
    double best_score = 0.0;
    for (int f = 0; f < p; ++f) {
      double penalty =
          1.0 - static_cast<double>(result.fragment_sizes[f]) / capacity;
      if (penalty <= 0.0) continue;  // fragment full
      double s = (score[f] + 0.01) * penalty;  // +eps: ties by capacity
      if (best < 0 || s > best_score) {
        best_score = s;
        best = f;
      }
    }
    if (best < 0) {
      // Every fragment is at capacity: overflow goes to the least-loaded
      // fragment, not silently to fragment 0.
      best = 0;
      for (int f = 1; f < p; ++f) {
        if (result.fragment_sizes[f] < result.fragment_sizes[best]) best = f;
      }
    }
    result.fragment_of[v] = best;
    ++result.fragment_sizes[best];
    if (!label_count.empty()) {
      ++label_count[static_cast<size_t>(best) * num_labels + g.NodeLabel(v)];
    }
  }

  // Ownership arrays and boundary sets; iterating v ascending keeps both
  // member and boundary lists sorted.
  for (int f = 0; f < p; ++f) {
    result.members[f].reserve(result.fragment_sizes[f]);
  }
  for (NodeId v = 0; v < n; ++v) {
    const int home = result.fragment_of[v];
    result.members[home].push_back(v);
    bool crossing = false;
    for (const auto& e : g.OutEdges(v)) {
      if (!EdgeInView(e.state, view)) continue;
      if (result.fragment_of[e.other] != home) {
        ++result.crossing_edges;
        crossing = true;
      }
    }
    if (!crossing) {
      for (const auto& e : g.InEdges(v)) {
        if (!EdgeInView(e.state, view)) continue;
        if (result.fragment_of[e.other] != home) {
          crossing = true;
          break;
        }
      }
    }
    if (crossing) result.boundary[home].push_back(v);
  }
  return result;
}

}  // namespace ngd
