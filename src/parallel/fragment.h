// FragmentSnapshot: one fragment of a fragmented graph, materialized as
// an induced-subgraph CSR (paper §7).
//
// The paper's parallel algorithms run over a graph fragmented across p
// workers by METIS; each worker holds its fragment F_i plus the d_Q-hop
// halo of replicated boundary nodes it needs to evaluate any match whose
// start node it owns without a per-candidate remote fetch. We reproduce
// that shape exactly:
//
//   - `csr` is the induced subgraph over members ∪ halo in GLOBAL node
//     ids (graph/snapshot.h induced constructor) — bindings, violations
//     and cross-fragment messages need no id translation;
//   - `members` are the owned nodes (Partition::members[f]); `halo` the
//     replicated non-owned nodes, each tagged with its owner fragment;
//   - the halo is the d-hop ball around the fragment's BOUNDARY members:
//     any node within d hops of an owned node is within d hops of the
//     last owned node on that path, so d = max_Σ diameter(Q) makes every
//     match anchored at an owned node fully local (homomorphisms
//     contract distances, so all nodes of a match lie within d of every
//     other matched node);
//   - `candidates` scope seed enumeration to owned nodes
//     (owner-computes: each match is seeded exactly once cluster-wide).
//
// Fragments persist individually ("NGDFRAG1" container embedding the
// snapshot_io image plus the ownership arrays) so a cluster warm-starts
// without re-partitioning or re-building CSRs.

#ifndef NGD_PARALLEL_FRAGMENT_H_
#define NGD_PARALLEL_FRAGMENT_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "graph/neighborhood.h"
#include "graph/snapshot.h"
#include "match/candidate_index.h"
#include "parallel/partitioner.h"
#include "util/status.h"

namespace ngd {

inline constexpr uint32_t kFragmentFormatVersion = 1;
inline constexpr char kFragmentMagic[8] = {'N', 'G', 'D', 'F',
                                           'R', 'A', 'G', '1'};

struct FragmentSnapshot {
  int fragment_id = 0;
  int num_fragments = 1;
  /// Halo depth d the fragment was built with; serves any rule set whose
  /// max pattern diameter is <= halo_hops.
  int halo_hops = 0;
  /// Induced CSR over members ∪ halo, global node ids.
  std::unique_ptr<GraphSnapshot> csr;
  std::vector<NodeId> members;      ///< owned nodes, ascending
  std::vector<NodeId> halo;         ///< replicated nodes, ascending
  std::vector<int32_t> halo_owner;  ///< owner fragment of halo[i]
  NodeSet owned = NodeSet(0);       ///< mask over global ids
  FragmentCandidates candidates;    ///< owned-only C(u) index

  bool Owns(NodeId v) const { return owned.Contains(v); }
};

/// Builds fragment `fragment_id` of `part` over `view` of `g` with a
/// `halo_hops`-hop halo around its boundary members.
FragmentSnapshot BuildFragmentSnapshot(const Graph& g, const Partition& part,
                                       int fragment_id, GraphView view,
                                       int halo_hops);

/// "NGDFRAG1" container image: header + ownership arrays + the embedded
/// snapshot_io image of `csr` (all sections FNV-1a checksummed there).
[[nodiscard]] StatusOr<std::string> SerializeFragment(const FragmentSnapshot& frag);

/// Parses a fragment image, revalidating the embedded snapshot and every
/// ownership invariant (sorted disjoint member/halo sets, in-range owner
/// tags). Schema contract matches DeserializeSnapshot.
[[nodiscard]] StatusOr<FragmentSnapshot> DeserializeFragment(std::string_view bytes,
                                               SchemaPtr schema);

[[nodiscard]] Status SaveFragmentFile(const FragmentSnapshot& frag,
                        const std::string& path);
[[nodiscard]] StatusOr<FragmentSnapshot> LoadFragmentFile(const std::string& path,
                                            SchemaPtr schema);

}  // namespace ngd

#endif  // NGD_PARALLEL_FRAGMENT_H_
