// Work units for PIncDect (paper §6.3).
//
// A work unit is a partial solution hup(u0..uk) awaiting expansion: the
// pivot identity (NGD, pattern edge, update index), the partial binding,
// the literal bookkeeping, and — for units produced by hybrid splitting —
// the slice [slice_begin, slice_end) of the anchor adjacency list this
// processor is responsible for (its "partial copy v.adj_i").

#ifndef NGD_PARALLEL_WORK_UNIT_H_
#define NGD_PARALLEL_WORK_UNIT_H_

#include <cstdint>
#include <vector>

#include "core/expr.h"

namespace ngd {

struct PWorkUnit {
  int32_t ngd_index = -1;
  int32_t pattern_edge = -1;
  int32_t update_index = -1;
  /// Fragment whose CSR serves this unit's expansion (fragment-native
  /// PDect; stolen units keep their home and read the victim's fragment —
  /// the steal message paid for the remote access).
  int32_t home_fragment = 0;
  /// Number of plan steps already applied (the unit expands step `depth`).
  int32_t depth = 0;
  /// Slice of the anchor adjacency to scan; (-1,-1) means the full list.
  int32_t slice_begin = -1;
  int32_t slice_end = -1;
  /// Literal bookkeeping mirrored from the sequential engine.
  bool y_false = false;
  uint32_t y_ready = 0;
  Binding binding;

  /// Rough serialized size for communication accounting (bytes).
  size_t WireSize() const { return 32 + binding.size() * sizeof(NodeId); }
};

/// ||BVio_i|| / avg_t ||BVio_t|| — the skewness measure of paper §6.3.
std::vector<double> ComputeSkewness(const std::vector<size_t>& queue_sizes);

}  // namespace ngd

#endif  // NGD_PARALLEL_WORK_UNIT_H_
