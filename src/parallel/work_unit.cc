#include "parallel/work_unit.h"

namespace ngd {

std::vector<double> ComputeSkewness(const std::vector<size_t>& queue_sizes) {
  std::vector<double> skew(queue_sizes.size(), 0.0);
  if (queue_sizes.empty()) return skew;
  double total = 0.0;
  for (size_t s : queue_sizes) total += static_cast<double>(s);
  double avg = total / static_cast<double>(queue_sizes.size());
  if (avg <= 0.0) return skew;
  for (size_t i = 0; i < queue_sizes.size(); ++i) {
    skew[i] = static_cast<double>(queue_sizes[i]) / avg;
  }
  return skew;
}

}  // namespace ngd
