// PDect: parallel batch detection (the baseline of paper §5.1 / §7,
// extended from the GFD algorithms of Fan-Wu-Xu SIGMOD'16 [24]).
//
// Seeds (candidates of each NGD's most selective pattern node) are
// STATICALLY assigned to processors by the fragment of the seed node —
// faithfully reproducing the static workload partitioning that the paper
// points out "hampers the parallel scalability of the batch algorithms
// when being incrementalized" (§5.2). Each processor expands its seeds
// recursively and the local violation sets are unioned.

#ifndef NGD_PARALLEL_PDECT_H_
#define NGD_PARALLEL_PDECT_H_

#include "detect/dect.h"
#include "parallel/partitioner.h"

namespace ngd {

struct PDectOptions {
  int num_processors = 4;
  GraphView view = GraphView::kNew;
  /// kAuto (default): build one CSR GraphSnapshot shared by all workers
  /// when the Dect cost model says the build amortizes; kAlways/kNever
  /// force the choice.
  SnapshotMode snapshot_mode = SnapshotMode::kAuto;
  /// Pre-built CSR snapshot shared by all workers (e.g. loaded from a
  /// binary snapshot file, graph/snapshot_io.h). Must describe `view` of
  /// `g`; overrides snapshot_mode when set.
  const GraphSnapshot* snapshot = nullptr;
  /// Σ-optimizer (reason/sigma_optimizer.h): kAlways/kAuto seed workers
  /// from the implication-minimized rule set only (dropped rules assign no
  /// seeds to any processor) and remap violation indices back to Σ.
  MinimizeMode minimize_sigma = MinimizeMode::kNever;
  SigmaOptimizerOptions sigma_optimizer = {};
};

struct PDectResult {
  VioSet vio;
  double elapsed_seconds = 0.0;
  size_t crossing_edges = 0;  ///< edge-cut of the fragmentation used
};

PDectResult PDect(const Graph& g, const NgdSet& sigma,
                  const PDectOptions& opts);

}  // namespace ngd

#endif  // NGD_PARALLEL_PDECT_H_
