// PDect: parallel batch detection, fragment-native (paper §5.1 / §7,
// extended from the GFD algorithms of Fan-Wu-Xu SIGMOD'16 [24]).
//
// The graph is fragmented across p processors (FragmentRuntime,
// parallel/cluster.h): each fragment holds the induced CSR of its owned
// nodes plus a d_Σ-hop halo of replicated boundary neighbors. Detection
// is owner-computes: every match is seeded exactly once cluster-wide, by
// the fragment that OWNS the candidate bound to the rule's start node
// (FragmentCandidates enumerates owned candidates only). Expansion runs
// against the fragment CSR; because every two nodes of one match are
// within graph distance d_Σ of each other, the halo makes local
// expansion exact (see parallel/fragment.h for the argument).
//
// Boundary-crossing matches are resolved by the paper's §7 hybrid
// policy, per expansion step with a non-owned (halo) anchor:
//   - read the halo adjacency locally — one simulated message per
//     halo-anchored adjacency scan (the replica must be fetched); or
//   - forward the partial match to the anchor's owner when the cost
//     model C·(k+1) + |adj|/p < |adj| says shipping k+1 bound nodes
//     beats shipping the scan — one message, counted in `forwards`.
// Large owned adjacencies split into p slice units under the same cost
// model (work-unit splitting, as in PIncDect), and idle processors steal
// seed chunks across fragments; every stolen or forwarded unit is one
// simulated message (ClusterMetrics, surfaced in PDectResult).

#ifndef NGD_PARALLEL_PDECT_H_
#define NGD_PARALLEL_PDECT_H_

#include "detect/dect.h"
#include "parallel/cluster.h"

namespace ngd {

struct PDectOptions {
  int num_processors = 4;
  GraphView view = GraphView::kNew;
  /// Pre-built shared CSR snapshot (e.g. loaded from a binary snapshot
  /// file): selects the LEGACY shared-memory path — static owner-computes
  /// seed assignment over one snapshot all workers read, no halos, no
  /// communication accounting. Kept for callers that already hold a full
  /// snapshot (ngdcheck) and as the shared-memory baseline.
  const GraphSnapshot* snapshot = nullptr;
  /// Pre-built fragment runtime to amortize partitioning + fragment CSR
  /// builds across calls (benchmarks, warm starts via FragmentRuntime::
  /// Load). Used when it matches: num_fragments == num_processors, same
  /// view, halo_hops >= max pattern diameter of Σ; otherwise the engine
  /// builds its own.
  const FragmentRuntime* runtime = nullptr;
  /// Communication-latency constant C of the hybrid cost model (the
  /// paper fixes 60; Fig. 4(m) varies it).
  double latency_c = 60.0;
  /// Halo-anchored expansions never forward below this adjacency length.
  size_t min_forward_adjacency = 8;
  /// Owned adjacencies never split below this length.
  size_t min_split_adjacency = 64;
  /// Seed candidates per work unit (steal/balance granularity).
  size_t seed_chunk = 256;
  bool enable_steal = true;    ///< idle workers steal across fragments
  bool enable_forward = true;  ///< hybrid forward-to-owner at halos
  bool enable_split = true;    ///< work-unit splitting of hub adjacency
  /// Σ-optimizer (reason/sigma_optimizer.h): kAlways/kAuto seed fragments
  /// from the implication-minimized rule set only (dropped rules spawn no
  /// work units) and remap violation indices back to Σ.
  MinimizeMode minimize_sigma = MinimizeMode::kNever;
  SigmaOptimizerOptions sigma_optimizer = {};
  /// Graceful degradation (see DectOptions): when the token trips or the
  /// deadline expires, workers stop expanding and the pool drains the
  /// remaining queued units unprocessed. The call returns the violations
  /// found so far with `truncated` set; `run_info` (optional, must
  /// outlive the call) reports which rules' enumerations still finished —
  /// a rule is complete when every one of its work units (seed chunks,
  /// forwards, splits) was fully processed.
  CancelToken* cancel = nullptr;
  Deadline deadline = {};
  DetectRunInfo* run_info = nullptr;
  /// Streaming results: each worker-local set spills under
  /// "<path_prefix>.w<i>" with budget_bytes/p, and the merged result
  /// keeps spilling under "<path_prefix>" (see DectOptions::spill and
  /// detect/vio_stream.h). Read result.vio back with OpenCursor.
  const VioSpillOptions* spill = nullptr;
  /// Producer backpressure: a worker whose mid-run spawn (split slice,
  /// forward, child unit) targets a queue at or past this depth executes
  /// the unit inline instead of enqueueing it, bounding queue state under
  /// core starvation (ROADMAP item 3's 1-core fig4_il bug). 0 disables
  /// the bound. Initial seeding is exempt (bounded by the seed volume).
  size_t max_queue_depth = 4096;
};

struct PDectResult {
  VioSet vio;
  /// True iff the run was cut short by cancel/deadline and some rule's
  /// enumeration is incomplete (per-rule detail in opts.run_info).
  bool truncated = false;
  double elapsed_seconds = 0.0;
  size_t crossing_edges = 0;  ///< edge-cut of the fragmentation used
  int fragments = 1;          ///< p actually used
  /// Communication / balancing counters. replicated_nodes = Σ_f |halo(f)|
  /// (actual replica volume); messages = halo scans + forwards + steals +
  /// split broadcasts. Zero on the legacy shared-snapshot path, which
  /// models a shared-memory machine.
  ClusterMetricsSnapshot metrics;
};

PDectResult PDect(const Graph& g, const NgdSet& sigma,
                  const PDectOptions& opts);

}  // namespace ngd

#endif  // NGD_PARALLEL_PDECT_H_
