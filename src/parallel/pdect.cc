#include "parallel/pdect.h"

#include <optional>
#include <thread>

#include "util/timer.h"

namespace ngd {

PDectResult PDect(const Graph& g, const NgdSet& sigma,
                  const PDectOptions& opts) {
  // Σ-optimizer wiring: minimize before partitioning, so dropped rules
  // never assign seeds to any processor. elapsed_seconds of the re-entry
  // covers the parallel detection itself; the (cached, amortized)
  // minimization cost is the caller's setup, as with snapshot builds.
  PDectOptions inner;
  MinimizedSigma m;
  if (BeginMinimizedDetection(sigma, g.schema(), opts, &inner, &m)) {
    PDectResult result = PDect(g, m.sigma, inner);
    result.vio = RemapViolations(std::move(result.vio), m.report.kept);
    return result;
  }

  WallTimer timer;
  const int p = std::max(1, opts.num_processors);
  PartitionResult partition = PartitionGraph(g, p);

  // One immutable CSR snapshot shared (read-only) by all processors;
  // built before the clock-relevant matching work starts and amortized
  // across every rule in Σ.
  std::optional<GraphSnapshot> snap;
  const GraphSnapshot* use_snap = opts.snapshot;
  if (use_snap == nullptr && ResolveSnapshot(g, sigma, opts.snapshot_mode)) {
    snap.emplace(g, opts.view);
    use_snap = &*snap;
  }
  const GraphAccessor acc = use_snap ? GraphAccessor(*use_snap)
                                     : GraphAccessor(g, opts.view);

  // Static seed assignment: per NGD, candidates of the start node go to
  // the processor owning their fragment.
  struct Seed {
    int ngd_index;
    int start;
    NodeId node;
  };
  std::vector<std::vector<Seed>> assigned(p);
  std::vector<int> start_of(sigma.size());
  for (size_t f = 0; f < sigma.size(); ++f) {
    const Pattern& pattern = sigma[f].pattern();
    const int start = ChooseStartNode(pattern, acc);
    start_of[f] = start;
    ForEachCandidate(acc, pattern.node(start).label, [&](NodeId v) {
      assigned[partition.fragment_of[v]].push_back(
          Seed{static_cast<int>(f), start, v});
      return true;
    });
  }

  // Pre-build one plan per NGD (shared, read-only).
  std::vector<MatchPlan> plans;
  plans.reserve(sigma.size());
  for (size_t f = 0; f < sigma.size(); ++f) {
    plans.push_back(BuildMatchPlan(sigma[f].pattern(), {start_of[f]},
                                   &sigma[f].X(), &sigma[f].Y()));
  }

  std::vector<VioSet> local(p);
  std::vector<std::thread> workers;
  workers.reserve(p);
  for (int i = 0; i < p; ++i) {
    workers.emplace_back([&, i]() {
      for (const Seed& seed : assigned[i]) {
        const Ngd& ngd = sigma[seed.ngd_index];
        SearchConfig cfg;
        cfg.graph = &g;
        cfg.snapshot = use_snap;
        cfg.pattern = &ngd.pattern();
        cfg.x = &ngd.X();
        cfg.y = &ngd.Y();
        cfg.view = opts.view;
        cfg.find_violations = true;
        Binding binding(ngd.pattern().NumNodes(), kInvalidNode);
        binding[seed.start] = seed.node;
        RunSeededSearch(cfg, plans[seed.ngd_index], &binding,
                        [&](const Binding& match) {
                          local[i].Add(Violation{seed.ngd_index, match});
                          return true;
                        });
      }
    });
  }
  for (auto& w : workers) w.join();

  PDectResult result;
  for (int i = 0; i < p; ++i) result.vio.Merge(std::move(local[i]));
  result.crossing_edges = partition.crossing_edges;
  result.elapsed_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace ngd
